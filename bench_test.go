// Benchmarks regenerating every table and figure of the paper, one
// testing.B target per artifact (run with -benchtime=1x for a single
// regeneration), plus micro-benchmarks of the core operations and the
// concurrent pools. The reported custom metrics carry the headline
// numbers of each artifact so a bench run doubles as a smoke
// reproduction; cmd/paperfigs renders the full tables.
package lmbalance_test

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"lmbalance"
	"lmbalance/internal/bnb"
	"lmbalance/internal/core"
	"lmbalance/internal/experiments"
	"lmbalance/internal/netsim"
	"lmbalance/internal/pool"
	"lmbalance/internal/rng"
	"lmbalance/internal/sim"
	"lmbalance/internal/theory"
	"lmbalance/internal/topology"
	"lmbalance/internal/workload"
)

// BenchmarkFig6VariationDensity regenerates Fig. 6 (variation density
// curves over δ, f, n, steps).
func BenchmarkFig6VariationDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(experiments.ScaleQuick, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		last := len(res.Ns) - 1
		b.ReportMetric(res.Final(0, last), "VD(δ=1,f=1.1)")
		b.ReportMetric(res.Final(2, last), "VD(δ=4,f=1.1)")
	}
}

// BenchmarkFig7BalancingQualityDelta1 regenerates Fig. 7 (δ=1 panels).
func BenchmarkFig7BalancingQualityDelta1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig78(experiments.Fig7Configs, "7", experiments.ScaleQuick, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanSpreadTail(0), "spread(f=1.1)")
		b.ReportMetric(res.MeanSpreadTail(1), "spread(f=1.8)")
	}
}

// BenchmarkFig8BalancingQualityDelta4 regenerates Fig. 8 (δ=4 panels).
func BenchmarkFig8BalancingQualityDelta4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig78(experiments.Fig8Configs, "8", experiments.ScaleQuick, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanSpreadTail(0), "spread(f=1.1)")
		b.ReportMetric(res.MeanSpreadTail(1), "spread(f=1.8)")
	}
}

// BenchmarkFig9DistributionDelta1 regenerates Fig. 9 (distribution
// snapshots, δ=1).
func BenchmarkFig9DistributionDelta1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig910(experiments.Fig7Configs, "9", experiments.ScaleQuick, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EnvelopeWidth(0, 400), "envelope@400(f=1.1)")
	}
}

// BenchmarkFig10DistributionDelta4 regenerates Fig. 10 (distribution
// snapshots, δ=4).
func BenchmarkFig10DistributionDelta4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig910(experiments.Fig8Configs, "10", experiments.ScaleQuick, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.EnvelopeWidth(0, 400), "envelope@400(f=1.1)")
	}
}

// BenchmarkTable1BorrowStats regenerates Table 1 (borrowing statistics
// for C ∈ {4,8,16,32}).
func BenchmarkTable1BorrowStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(experiments.ScaleQuick, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Metrics[0].TotalBorrow, "totalBorrow(C=4)")
		b.ReportMetric(res.Metrics[0].RemoteBorrow, "remoteBorrow(C=4)")
		b.ReportMetric(res.Metrics[3].RemoteBorrow, "remoteBorrow(C=32)")
	}
}

// BenchmarkTheorem1Convergence regenerates the §3 validation table
// (measured expected-load ratio vs G^t(1)/FIX bounds).
func BenchmarkTheorem1Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TheoremCheck(experiments.ScaleQuick, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[1].MeasuredRatio, "ratio(n=64,δ=1,f=1.1)")
		b.ReportMetric(res.Rows[1].Fix, "FIX(n=64,δ=1,f=1.1)")
	}
}

// BenchmarkLemma5DecreaseCost regenerates the §6 decrease-cost comparison
// (Lemma 5/6 bounds vs simulation).
func BenchmarkLemma5DecreaseCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.DecreaseCost(experiments.ScaleQuick, uint64(i)+1)
		b.ReportMetric(res.Rows[0].SimMean, "sim(f=1.1)")
		b.ReportMetric(float64(res.Rows[0].Improved), "lemma6(f=1.1)")
	}
}

// BenchmarkBaselines regenerates the extension comparison against the
// baseline algorithms.
func BenchmarkBaselines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.BaselineComparison(experiments.ScaleQuick, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Name == "LM(f=1.1,δ=1)" {
				b.ReportMetric(row.MeanSpreadTail, "spreadLM")
			}
			if row.Name == "nobalance" {
				b.ReportMetric(row.MeanSpreadTail, "spreadNoBalance")
			}
		}
	}
}

// BenchmarkAblations regenerates the design-choice ablation tables.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablations(experiments.ScaleQuick, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ParamSweep[0].MeanSpreadTail, "spread(δ=1,f=1.1)")
	}
}

// BenchmarkGrowthCost regenerates the §6 distribution-cost table
// (Lemma 4 reconstruction).
func BenchmarkGrowthCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.GrowthCost(experiments.ScaleQuick, uint64(i)+1)
		b.ReportMetric(res.Rows[0].SimMean, "ops(f=1.1)")
		b.ReportMetric(float64(res.Rows[0].Predicted), "closedform(f=1.1)")
	}
}

// BenchmarkScaling regenerates the Theorem 2 network-size-independence
// table (n = 16..4096).
func BenchmarkScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Scaling(experiments.ScaleQuick, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
		b.ReportMetric(first.RatioOneProducer, fmt.Sprintf("ratio(n=%d)", first.N))
		b.ReportMetric(last.RatioOneProducer, fmt.Sprintf("ratio(n=%d)", last.N))
	}
}

// BenchmarkShardedEngine measures the sharded within-run engine on the
// mixed workload at workers = 1 and workers = GOMAXPROCS. The two
// sub-benchmarks simulate the exact same (seed, shards) system — worker
// count is pure execution parallelism — so their ratio is the within-run
// speedup (cmd/shardbench sweeps this properly and records
// results/BENCH_shard.json).
func BenchmarkShardedEngine(b *testing.B) {
	const n, steps, shards = 16384, 30, 64
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					N: n, Steps: steps, Runs: 1, Seed: 1,
					Shards: shards, Workers: workers, StatsEvery: steps,
					NewBalancer: func(run int, r *rng.RNG) (sim.Balancer, error) {
						return core.NewSystem(n, core.Params{F: 1.1, Delta: 1, C: 4}, topology.NewGlobal(n), r)
					},
					NewPattern: func(run int, r *rng.RNG) (workload.Pattern, error) {
						return workload.Uniform{GenP: 0.5, ConP: 0.4}, nil
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Avg.At(steps-1).Mean(), "finalAvg")
			}
			b.ReportMetric(float64(n*steps)/(float64(b.Elapsed().Nanoseconds())/float64(b.N))*1e9, "procSteps/sec")
		})
	}
}

// benchNs are the network sizes of the core micro-benchmarks. The sparse
// class storage keeps per-operation cost tied to the participants' active
// classes rather than n; the n=4096 cases were unusable with the dense
// O(n²) representation (results/BENCH_sparse.json records both).
var benchNs = []int{64, 256, 1024, 4096}

// BenchmarkBalanceOp measures one full δ+1-way balancing operation
// (selection, snake redistribution of the participants' active classes,
// trigger/marker bookkeeping) on a warmed-up system.
func BenchmarkBalanceOp(b *testing.B) {
	for _, n := range benchNs {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, err := core.NewSystem(n, core.Params{F: 1.1, Delta: 1, C: 4}, topology.NewGlobal(n), rng.New(1))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n*8; i++ {
				s.Generate(i % n)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ForceBalance(i % n)
			}
			b.StopTimer()
			b.ReportMetric(float64(s.NNZ())/float64(n), "activeClasses/proc")
		})
	}
}

// BenchmarkGenerateConsume measures the steady-state generate/consume mix
// (55% generate), including any balancing operations the factor-f trigger
// fires along the way.
func BenchmarkGenerateConsume(b *testing.B) {
	for _, n := range benchNs {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			s, err := core.NewSystem(n, core.Params{F: 1.1, Delta: 1, C: 4}, topology.NewGlobal(n), rng.New(1))
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(2)
			for i := 0; i < n*4; i++ {
				s.Generate(i % n)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := i % n
				if r.Bernoulli(0.55) {
					s.Generate(p)
				} else {
					s.Consume(p)
				}
			}
		})
	}
}

// BenchmarkNewSystem measures system construction. With sparse storage it
// allocates O(n) bookkeeping instead of two n×n matrices (268 MB at
// n=4096 before the rework).
func BenchmarkNewSystem(b *testing.B) {
	for _, n := range benchNs {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			sel := topology.NewGlobal(n)
			r := rng.New(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.NewSystem(n, core.Params{F: 1.1, Delta: 1, C: 4}, sel, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNetsimMessageCost measures the message-passing realization:
// wall time and messages per completed balancing protocol.
func BenchmarkNetsimMessageCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := netsim.Run(netsim.Config{
			N: 32, Delta: 1, F: 1.2, Steps: 2000,
			GenP: []float64{0.6}, ConP: []float64{0.4}, Seed: uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		var completed int64
		for _, n := range res.Nodes {
			completed += n.Completed
		}
		if completed > 0 {
			b.ReportMetric(float64(res.Messages())/float64(completed), "msgs/op")
		}
	}
}

// BenchmarkSimulatePaperRun measures one full §7 simulation run (64
// processors, 500 steps).
func BenchmarkSimulatePaperRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := lmbalance.SimulatePaper(lmbalance.DefaultParams(), 1, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVDMonteCarloFig6Cell measures one Fig. 6 cell (n=35, δ=4,
// f=1.1, 150 steps, 1000 graphs).
func BenchmarkVDMonteCarloFig6Cell(b *testing.B) {
	cfg := theory.VDConfig{N: 35, Delta: 4, F: 1.1, Steps: 150, Mode: theory.VDTrue}
	for i := 0; i < b.N; i++ {
		if _, err := theory.VDMonteCarlo(cfg, 1000, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoolsTaskTree compares the LM pool and the stealing pool on a
// recursively generated task tree (the B&B-shaped workload).
func BenchmarkPoolsTaskTree(b *testing.B) {
	b.Run("luling-monien", func(b *testing.B) {
		p, err := pool.New(pool.Config{Workers: 8, F: 1.2, Delta: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		var n atomic.Int64
		var spawn func(d int) pool.Task
		spawn = func(d int) pool.Task {
			return func(w *pool.Worker) {
				n.Add(1)
				if d > 0 {
					w.Submit(spawn(d - 1))
					w.Submit(spawn(d - 1))
				}
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Submit(spawn(10))
			p.Wait()
		}
	})
	b.Run("stealing", func(b *testing.B) {
		p, err := pool.NewStealing(8, 1, 0)
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		var n atomic.Int64
		var spawn func(d int) pool.StealTask
		spawn = func(d int) pool.StealTask {
			return func(r *pool.StealWorkerRef) {
				n.Add(1)
				if d > 0 {
					r.Submit(spawn(d - 1))
					r.Submit(spawn(d - 1))
				}
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Submit(spawn(10))
			p.Wait()
		}
	})
}

// BenchmarkParallelTSP measures the flagship application end to end.
func BenchmarkParallelTSP(b *testing.B) {
	ins := bnb.RandomInstance(12, rng.New(42))
	p, err := pool.New(pool.Config{Workers: 8, F: 1.2, Delta: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := bnb.SolveParallel(ins, p, 3)
		b.ReportMetric(float64(res.Nodes), "nodes")
	}
}
