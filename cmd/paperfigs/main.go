// Command paperfigs regenerates every table and figure of the paper's
// evaluation (plus the validation and ablation tables listed in
// DESIGN.md) and writes them to stdout or a directory.
//
//	paperfigs               # everything, quick scale (10 runs)
//	paperfigs -full         # the paper's scale (100 runs)
//	paperfigs -only fig6    # one artifact
//	paperfigs -out results  # one text file per artifact
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"lmbalance/internal/experiments"
)

// artifact is one reproducible table/figure.
type artifact struct {
	name string
	desc string
	run  func(scale experiments.Scale, seed uint64) (experiments.Renderer, error)
}

var artifacts = []artifact{
	{"fig6", "variation density curves (§5)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.Fig6(s, seed)
	}},
	{"fig7", "balancing quality over time, δ=1 (§7)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.Fig78(experiments.Fig7Configs, "7", s, seed)
	}},
	{"fig8", "balancing quality over time, δ=4 (§7)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.Fig78(experiments.Fig8Configs, "8", s, seed)
	}},
	{"fig9", "per-processor distribution, δ=1 (§7)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.Fig910(experiments.Fig7Configs, "9", s, seed)
	}},
	{"fig10", "per-processor distribution, δ=4 (§7)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.Fig910(experiments.Fig8Configs, "10", s, seed)
	}},
	{"table1", "borrowing statistics vs C (§7)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.Table1(s, seed)
	}},
	{"theorems", "Theorems 1-3 validation (§3)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.TheoremCheck(s, seed)
	}},
	{"decrease", "Lemma 5/6 decrease-cost bounds vs simulation (§6)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.DecreaseCost(s, seed), nil
	}},
	{"growth", "Lemma 4 reconstruction: distribution cost (§6)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.GrowthCost(s, seed), nil
	}},
	{"scaling", "Theorem 2: network-size independence (extension)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.Scaling(s, seed)
	}},
	{"baselines", "comparison vs baseline algorithms (extension)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.BaselineComparison(s, seed)
	}},
	{"starvation", "processor starvation under a hotspot (extension)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.Starvation(s, seed)
	}},
	{"adversary", "randomized search against Theorem 4 (extension)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.Adversary(s, seed)
	}},
	{"netcost", "message-passing communication cost (extension)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.NetCost(s, seed)
	}},
	{"faults", "fault sensitivity of the trigger protocol (extension)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.FaultSweep(s, seed)
	}},
	{"wirecost", "wire-level cluster cost, inproc vs TCP (extension)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.WireCost(s, seed)
	}},
	{"abortanatomy", "per-reason anatomy of the TCP abort fraction (extension)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.AbortAnatomy(s, seed)
	}},
	{"vdtraj", "variation-density trajectory: §5 convergence in t (extension)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.VDTrajectory(s, seed)
	}},
	{"ablations", "design-choice ablations (extension)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.Ablations(s, seed)
	}},
	{"pacer", "initiation pacing: off vs fixed vs adaptive AIMD (extension)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.PacerSweep(s, seed)
	}},
	{"serve", "serving SLO: sojourn tails, balanced vs no-balancing (extension)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.ServeSLO(s, seed)
	}},
	{"anatomy", "sojourn anatomy: journey decomposition + burn-rate alerts (extension)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.SojournAnatomy(s, seed)
	}},
	{"postmortem", "black-box post-mortem: record, snapshot on alert, replay to a verdict (extension)", func(s experiments.Scale, seed uint64) (experiments.Renderer, error) {
		return experiments.PostMortem(s, seed)
	}},
}

func main() {
	var (
		full = flag.Bool("full", false, "use the paper's statistical effort (100 runs)")
		only = flag.String("only", "", "run a single artifact (comma-separated list); default all")
		out  = flag.String("out", "", "write one text file per artifact into this directory")
		seed = flag.Uint64("seed", 1993, "master seed")
	)
	flag.Parse()
	if err := run(*full, *only, *out, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

func run(full bool, only, out string, seed uint64) error {
	scale := experiments.ScaleQuick
	if full {
		scale = experiments.ScaleFull
	}
	selected := map[string]bool{}
	if only != "" {
		for _, name := range strings.Split(only, ",") {
			selected[strings.TrimSpace(name)] = true
		}
		for name := range selected {
			if !known(name) {
				return fmt.Errorf("unknown artifact %q (known: %s)", name, names())
			}
		}
	}
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
	}
	for _, a := range artifacts {
		if len(selected) > 0 && !selected[a.name] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %-9s — %s\n", a.name, a.desc)
		res, err := a.run(scale, seed)
		if err != nil {
			return fmt.Errorf("%s: %w", a.name, err)
		}
		var w io.Writer = os.Stdout
		var file *os.File
		if out != "" {
			file, err = os.Create(filepath.Join(out, a.name+".txt"))
			if err != nil {
				return err
			}
			w = file
		}
		if err := res.Render(w); err != nil {
			return fmt.Errorf("%s: render: %w", a.name, err)
		}
		if file != nil {
			if err := file.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

func known(name string) bool {
	for _, a := range artifacts {
		if a.name == name {
			return true
		}
	}
	return false
}

func names() string {
	out := make([]string, len(artifacts))
	for i, a := range artifacts {
		out[i] = a.name
	}
	return strings.Join(out, ", ")
}
