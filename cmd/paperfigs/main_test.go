package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestKnownNames(t *testing.T) {
	for _, a := range artifacts {
		if !known(a.name) {
			t.Fatalf("artifact %q not known to itself", a.name)
		}
	}
	if known("nonsense") {
		t.Fatal("unknown artifact reported known")
	}
	if names() == "" {
		t.Fatal("empty artifact list")
	}
}

func TestRunRejectsUnknownArtifact(t *testing.T) {
	if err := run(false, "nonsense", "", 1); err == nil {
		t.Fatal("unknown -only value accepted")
	}
}

func TestRunSingleArtifactToDir(t *testing.T) {
	dir := t.TempDir()
	// decrease is the fastest artifact (pure closed forms + tiny MC).
	if err := run(false, "decrease", dir, 1); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "decrease.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty artifact file")
	}
	// Only the selected artifact is produced.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected 1 file, found %d", len(entries))
	}
}

func TestRunMultipleSelection(t *testing.T) {
	dir := t.TempDir()
	if err := run(false, "decrease,growth", dir, 1); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"decrease.txt", "growth.txt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
}
