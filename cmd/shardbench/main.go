// Command shardbench measures the sharded engine's within-run scaling:
// processor-steps per second versus worker count, at fixed (Seed, Shards).
// Because worker count is pure execution parallelism — the engine's
// results are keyed on (Seed, Shards) only — the sweep doubles as a
// determinism check: the run fails if any worker count produces different
// core metrics or final-load statistics than workers=1.
//
// Examples:
//
//	shardbench                              # mixed workload, n=16384, workers 1,2,4,...
//	shardbench -sizes 65536,1000000         # the BENCH_shard.json capture
//	shardbench -out results/BENCH_shard.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"lmbalance/internal/core"
	"lmbalance/internal/rng"
	"lmbalance/internal/sim"
	"lmbalance/internal/topology"
	"lmbalance/internal/trace"
	"lmbalance/internal/workload"
)

func main() {
	var (
		sizes      = flag.String("sizes", "16384", "comma-separated processor counts to sweep")
		steps      = flag.Int("steps", 60, "global time steps")
		runs       = flag.Int("runs", 1, "independent runs per worker count")
		shards     = flag.Int("shards", 64, "shard count (fixed across the sweep; part of the result key)")
		seed       = flag.Uint64("seed", 1, "master seed")
		maxWorkers = flag.Int("maxworkers", 0, "top of the worker sweep (0 = GOMAXPROCS)")
		out        = flag.String("out", "", "also write the sweeps as JSON to this file")
	)
	flag.Parse()
	var ns []int
	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "shardbench: bad -sizes entry %q\n", s)
			os.Exit(1)
		}
		ns = append(ns, n)
	}
	if err := run(ns, *steps, *runs, *shards, *seed, *maxWorkers, *out); err != nil {
		fmt.Fprintln(os.Stderr, "shardbench:", err)
		os.Exit(1)
	}
}

// row is one worker count's measurement.
type row struct {
	Workers         int     `json:"workers"`
	Seconds         float64 `json:"seconds"`
	ProcStepsPerSec float64 `json:"proc_steps_per_sec"`
	Speedup         float64 `json:"speedup_vs_1"`
}

// sweep is one processor count's worker sweep.
type sweepResult struct {
	N         int   `json:"n"`
	Identical bool  `json:"results_identical_across_workers"`
	Rows      []row `json:"rows"`
}

// report is the JSON document -out writes.
type report struct {
	Description string        `json:"description"`
	Note        string        `json:"note"`
	Machine     string        `json:"machine"`
	Date        string        `json:"date"`
	Steps       int           `json:"steps"`
	Runs        int           `json:"runs"`
	Shards      int           `json:"shards"`
	Sweeps      []sweepResult `json:"sweeps"`
}

// fingerprint is the cross-worker identity check: every field is read
// from the run result, so two runs agreeing here agree on everything the
// engine reports.
type fingerprint struct {
	metrics core.Metrics
	vd      float64
	avg     float64
}

func take(res *sim.Result, steps int) fingerprint {
	return fingerprint{
		metrics: res.CoreMetrics,
		vd:      res.FinalLoadVD,
		avg:     res.Avg.At(steps - 1).Mean(),
	}
}

// workerSweep runs the identical (seed, shards) simulation at n under
// each worker count and returns the timings plus whether every worker
// count produced bit-identical results.
func workerSweep(n, steps, runs, shards int, seed uint64, workers []int) (sweepResult, error) {
	params := core.Params{F: 1.1, Delta: 1, C: 4}
	cfgFor := func(w int) sim.Config {
		return sim.Config{
			N: n, Steps: steps, Runs: runs, Seed: seed,
			Shards: shards, Workers: w, StatsEvery: steps,
			NewBalancer: func(run int, r *rng.RNG) (sim.Balancer, error) {
				return core.NewSystem(n, params, topology.NewGlobal(n), r)
			},
			NewPattern: func(run int, r *rng.RNG) (workload.Pattern, error) {
				return workload.Uniform{GenP: 0.5, ConP: 0.4}, nil
			},
		}
	}

	tb := trace.NewTable(
		fmt.Sprintf("sharded engine scaling | mixed workload | n=%d steps=%d runs=%d shards=%d",
			n, steps, runs, shards),
		"workers", "seconds", "proc-steps/sec", "speedup")
	out := sweepResult{N: n, Identical: true}
	var ref fingerprint
	for i, w := range workers {
		start := time.Now()
		res, err := sim.Run(cfgFor(w))
		if err != nil {
			return out, err
		}
		secs := time.Since(start).Seconds()
		fp := take(res, steps)
		if i == 0 {
			ref = fp
		} else if fp != ref {
			out.Identical = false
		}
		r := row{
			Workers:         w,
			Seconds:         secs,
			ProcStepsPerSec: float64(n) * float64(steps) * float64(runs) / secs,
			Speedup:         1,
		}
		if len(out.Rows) > 0 {
			r.Speedup = out.Rows[0].Seconds / secs
		}
		out.Rows = append(out.Rows, r)
		tb.AddRow(w, secs, r.ProcStepsPerSec, r.Speedup)
	}
	if err := tb.WriteText(os.Stdout); err != nil {
		return out, err
	}
	if !out.Identical {
		return out, fmt.Errorf("n=%d: determinism violation: results differ across worker counts (must be keyed on seed and shards only)", n)
	}
	fmt.Printf("\nn=%d: results bit-identical across worker counts: yes (final avg %.4f, vd %.4f)\n\n", n, ref.avg, ref.vd)
	return out, nil
}

func run(ns []int, steps, runs, shards int, seed uint64, maxWorkers int, out string) error {
	if maxWorkers <= 0 {
		maxWorkers = runtime.GOMAXPROCS(0)
	}
	var workers []int
	for w := 1; w <= maxWorkers; w *= 2 {
		workers = append(workers, w)
	}
	if last := workers[len(workers)-1]; last != maxWorkers {
		workers = append(workers, maxWorkers)
	}

	var sweeps []sweepResult
	for _, n := range ns {
		sw, err := workerSweep(n, steps, runs, shards, seed, workers)
		if err != nil {
			return err
		}
		sweeps = append(sweeps, sw)
	}

	if out != "" {
		note := "speedup is bounded by physical cores"
		if runtime.NumCPU() == 1 {
			note = "captured on a single-CPU machine: the sweep verifies cross-worker bit-identity (the determinism contract) rather than scaling; runners with more cores show the speedup — see the bench-shard artifact of any CI run"
		}
		doc := report{
			Description: "Sharded engine within-run scaling: wall-clock of the identical (seed, shards) simulation under increasing worker counts, mixed uniform(0.5,0.4) workload. The run fails before reporting unless the results are bit-identical across each sweep. go run ./cmd/shardbench -sizes 65536,1000000 -out results/BENCH_shard.json",
			Note:        note,
			Machine:     fmt.Sprintf("%s/%s, %d CPU, %s", runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version()),
			Date:        time.Now().Format("2006-01-02"),
			Steps:       steps, Runs: runs, Shards: shards,
			Sweeps: sweeps,
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}
