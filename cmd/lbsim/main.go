// Command lbsim runs one configurable simulation of the Lüling–Monien
// load balancing algorithm (or a baseline) under a synthetic workload and
// prints the balancing-quality series and activity counters.
//
// Examples:
//
//	lbsim -n 64 -steps 500 -f 1.1 -delta 1 -c 4 -runs 100
//	lbsim -algo rsu -pattern hotspot -n 64
//	lbsim -topology torus -delta 4
package main

import (
	"flag"
	"fmt"
	"os"

	"lmbalance/internal/baseline"
	"lmbalance/internal/core"
	"lmbalance/internal/rng"
	"lmbalance/internal/sim"
	"lmbalance/internal/topology"
	"lmbalance/internal/trace"
	"lmbalance/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 64, "number of processors")
		steps   = flag.Int("steps", 500, "global time steps")
		runs    = flag.Int("runs", 10, "independent runs")
		seed    = flag.Uint64("seed", 1, "master seed")
		f       = flag.Float64("f", 1.1, "trigger factor f")
		delta   = flag.Int("delta", 1, "neighborhood size δ")
		c       = flag.Int("c", 4, "borrow capacity C")
		algo    = flag.String("algo", "lm", "algorithm: lm, nobalance, scatter, rsu, diffusion, gradient")
		topo    = flag.String("topology", "global", "candidate selection: global, ring, torus, hypercube, debruijn")
		pattern = flag.String("pattern", "paper", "workload: paper, uniform, hotspot, burst, oneproducer")
		every   = flag.Int("every", 25, "print the series every k steps")
		record  = flag.String("record", "", "sample the workload into a CSV trace file and exit")
		replay  = flag.String("replay", "", "replay a CSV trace file as the workload (overrides -pattern)")
	)
	flag.Parse()

	o := options{
		n: *n, steps: *steps, runs: *runs, seed: *seed,
		f: *f, delta: *delta, c: *c,
		algo: *algo, topo: *topo, pattern: *pattern, every: *every,
		record: *record, replay: *replay,
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(1)
	}
}

// options carries the parsed flags.
type options struct {
	n, steps, runs      int
	seed                uint64
	f                   float64
	delta, c            int
	algo, topo, pattern string
	every               int
	record, replay      string
}

func run(o options) error {
	n, steps, runs, seed := o.n, o.steps, o.runs, o.seed
	f, delta, c := o.f, o.delta, o.c
	algo, topo, pattern, every := o.algo, o.topo, o.pattern, o.every
	selector := func() (topology.Selector, error) {
		switch topo {
		case "global":
			return topology.NewGlobal(n), nil
		case "ring":
			return topology.NewNeighborhood(topology.Ring(n)), nil
		case "torus":
			side := 1
			for side*side < n {
				side++
			}
			if side*side != n {
				return nil, fmt.Errorf("torus needs a square processor count, got %d", n)
			}
			return topology.NewNeighborhood(topology.Torus2D(side, side)), nil
		case "hypercube":
			dim := 0
			for 1<<dim < n {
				dim++
			}
			if 1<<dim != n {
				return nil, fmt.Errorf("hypercube needs a power-of-two processor count, got %d", n)
			}
			return topology.NewNeighborhood(topology.Hypercube(dim)), nil
		case "debruijn":
			dim := 0
			for 1<<dim < n {
				dim++
			}
			if 1<<dim != n {
				return nil, fmt.Errorf("de Bruijn needs a power-of-two processor count, got %d", n)
			}
			return topology.NewNeighborhood(topology.DeBruijn(dim)), nil
		default:
			return nil, fmt.Errorf("unknown topology %q", topo)
		}
	}

	newPattern := func(run int, r *rng.RNG) (workload.Pattern, error) {
		if o.replay != "" {
			file, err := os.Open(o.replay)
			if err != nil {
				return nil, err
			}
			defer file.Close()
			tr, err := workload.ReadTrace(file)
			if err != nil {
				return nil, err
			}
			if tr.Procs() > n {
				return nil, fmt.Errorf("trace addresses %d processors, simulation has %d", tr.Procs(), n)
			}
			return tr, nil
		}
		switch pattern {
		case "paper":
			b := workload.PaperBounds()
			b.Horizon = steps
			return workload.NewPhases(n, b, r)
		case "uniform":
			return workload.Uniform{GenP: 0.5, ConP: 0.4}, nil
		case "hotspot":
			return workload.Hotspot{Hot: 1 + n/16, GenP: 0.9, ConP: 0.3}, nil
		case "burst":
			return workload.Burst{BurstLen: 50, DrainLen: 50, HighG: 0.8, HighC: 0.8}, nil
		case "oneproducer":
			return workload.OneProducer{}, nil
		default:
			return nil, fmt.Errorf("unknown pattern %q", pattern)
		}
	}

	newBalancer := func(run int, r *rng.RNG) (sim.Balancer, error) {
		switch algo {
		case "lm":
			sel, err := selector()
			if err != nil {
				return nil, err
			}
			return core.NewSystem(n, core.Params{F: f, Delta: delta, C: c}, sel, r)
		case "nobalance":
			return baseline.NewNoBalance(n), nil
		case "scatter":
			return baseline.NewRandomScatter(n, r), nil
		case "rsu":
			return baseline.NewRSU(n, 1, r), nil
		case "diffusion":
			side := 1
			for side*side < n {
				side++
			}
			if side*side != n {
				return nil, fmt.Errorf("diffusion torus needs a square processor count")
			}
			return baseline.NewDiffusion(topology.Torus2D(side, side), 1, 0)
		case "gradient":
			side := 1
			for side*side < n {
				side++
			}
			if side*side != n {
				return nil, fmt.Errorf("gradient torus needs a square processor count")
			}
			return baseline.NewGradient(topology.Torus2D(side, side), 2, 8, 1)
		default:
			return nil, fmt.Errorf("unknown algorithm %q", algo)
		}
	}

	if o.record != "" {
		pat, err := newPattern(0, rng.New(seed))
		if err != nil {
			return err
		}
		events := workload.Record(pat, n, steps, rng.New(seed).Split())
		file, err := os.Create(o.record)
		if err != nil {
			return err
		}
		if err := workload.WriteTrace(file, events); err != nil {
			file.Close()
			return err
		}
		if err := file.Close(); err != nil {
			return err
		}
		fmt.Printf("recorded %d events to %s\n", len(events), o.record)
		return nil
	}

	cfg := sim.Config{
		N: n, Steps: steps, Runs: runs, Seed: seed,
		NewBalancer: newBalancer,
		NewPattern:  newPattern,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}

	tb := trace.NewTable(
		fmt.Sprintf("%s | %s workload | n=%d steps=%d runs=%d", algo, pattern, n, steps, runs),
		"step", "avg", "min", "max", "spread")
	for s := every - 1; s < steps; s += every {
		tb.AddRow(s+1,
			res.Avg.At(s).Mean(), res.Min.At(s).Min(), res.Max.At(s).Max(),
			res.Spread.At(s).Mean())
	}
	if err := tb.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nfinal-load variation density: %.4f\n", res.FinalLoadVD)
	if algo == "lm" {
		m := res.CoreMetrics.Scale(runs)
		fmt.Printf("per-run: balance ops %.1f, migrations %.1f, total borrow %.2f, remote borrow %.3f, borrow fail %.3f, decrease sim %.2f\n",
			m.BalanceOps, m.Migrations, m.TotalBorrow, m.RemoteBorrow, m.BorrowFail, m.DecreaseSim)
	}
	return nil
}
