// Command lbsim runs one configurable simulation of the Lüling–Monien
// load balancing algorithm (or a baseline) under a synthetic workload and
// prints the balancing-quality series and activity counters.
//
// Examples:
//
//	lbsim -n 64 -steps 500 -f 1.1 -delta 1 -c 4 -runs 100
//	lbsim -algo rsu -pattern hotspot -n 64
//	lbsim -topology torus -delta 4
//	lbsim -algo netsim -drop 0.2 -crash 4        # asynchronous run with faults
//	lbsim -algo netsim -metrics-dump             # JSON metrics registry after the run
//	lbsim -n 1000000 -shards 64 -pattern oneproducer -stats-every 8000000
//	lbsim -n 4096 -cpuprofile cpu.out            # profile the hot path
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"lmbalance/internal/baseline"
	"lmbalance/internal/core"
	"lmbalance/internal/netsim"
	"lmbalance/internal/obs"
	"lmbalance/internal/rng"
	"lmbalance/internal/sim"
	"lmbalance/internal/topology"
	"lmbalance/internal/trace"
	"lmbalance/internal/workload"
)

func main() {
	var (
		n       = flag.Int("n", 64, "number of processors")
		steps   = flag.Int("steps", 500, "global time steps")
		runs    = flag.Int("runs", 10, "independent runs")
		seed    = flag.Uint64("seed", 1, "master seed")
		f       = flag.Float64("f", 1.1, "trigger factor f")
		delta   = flag.Int("delta", 1, "neighborhood size δ")
		c       = flag.Int("c", 4, "borrow capacity C")
		algo    = flag.String("algo", "lm", "algorithm: lm, nobalance, scatter, rsu, diffusion, gradient, netsim")
		topo    = flag.String("topology", "global", "candidate selection: global, ring, torus, hypercube, debruijn")
		pattern = flag.String("pattern", "paper", "workload: paper, uniform, hotspot, burst, oneproducer")
		every   = flag.Int("every", 25, "print the series every k steps")
		record  = flag.String("record", "", "sample the workload into a CSV trace file and exit")
		replay  = flag.String("replay", "", "replay a CSV trace file as the workload (overrides -pattern)")
		drop    = flag.Float64("drop", 0, "netsim only: control-message drop probability in [0,1]")
		delay   = flag.Int("delay", 0, "netsim only: maximum per-message delivery delay in ticks")
		crash   = flag.Int("crash", 0, "netsim only: number of staggered fail-stop crashes per run")
		dump    = flag.Bool("metrics-dump", false, "print the run's metrics registry as JSON after the run")

		shards     = flag.Int("shards", 0, "partition each run into this many shards stepped in parallel (0 = sequential engine; requires -algo lm)")
		workers    = flag.Int("workers", 0, "cap worker goroutines (0 = GOMAXPROCS); never changes results")
		statsEvery = flag.Int("stats-every", 0, "sample the per-step load scan every k steps (0 = every step)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file after the run")
	)
	flag.Parse()

	o := options{
		n: *n, steps: *steps, runs: *runs, seed: *seed,
		f: *f, delta: *delta, c: *c,
		algo: *algo, topo: *topo, pattern: *pattern, every: *every,
		record: *record, replay: *replay,
		drop: *drop, delay: *delay, crash: *crash,
		metricsDump: *dump,
		shards:      *shards,
		workers:     *workers,
		statsEvery:  *statsEvery,
	}
	if *cpuprofile != "" {
		file, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(1)
	}
	if *memprofile != "" {
		file, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		runtime.GC() // surface live allocations, not transient garbage
		if err := pprof.WriteHeapProfile(file); err != nil {
			fmt.Fprintln(os.Stderr, "lbsim:", err)
			os.Exit(1)
		}
		file.Close()
	}
}

// options carries the parsed flags.
type options struct {
	n, steps, runs      int
	seed                uint64
	f                   float64
	delta, c            int
	algo, topo, pattern string
	every               int
	record, replay      string
	drop                float64
	delay, crash        int
	metricsDump         bool
	shards, workers     int
	statsEvery          int
}

// metricsOut is where -metrics-dump writes; a variable so tests can
// capture the dump without redirecting the process stdout.
var metricsOut io.Writer = os.Stdout

// dumpMetrics writes the registry as JSON when -metrics-dump asked for
// one (reg is nil otherwise).
func dumpMetrics(reg *obs.Registry) error {
	if reg == nil {
		return nil
	}
	return reg.WriteJSON(metricsOut)
}

// graphFor maps a topology name to its graph; global selection has none.
func graphFor(topo string, n int) (*topology.Graph, error) {
	switch topo {
	case "global":
		return nil, nil
	case "ring":
		return topology.Ring(n), nil
	case "torus":
		side := 1
		for side*side < n {
			side++
		}
		if side*side != n {
			return nil, fmt.Errorf("torus needs a square processor count, got %d", n)
		}
		return topology.Torus2D(side, side), nil
	case "hypercube":
		dim := 0
		for 1<<dim < n {
			dim++
		}
		if 1<<dim != n {
			return nil, fmt.Errorf("hypercube needs a power-of-two processor count, got %d", n)
		}
		return topology.Hypercube(dim), nil
	case "debruijn":
		dim := 0
		for 1<<dim < n {
			dim++
		}
		if 1<<dim != n {
			return nil, fmt.Errorf("de Bruijn needs a power-of-two processor count, got %d", n)
		}
		return topology.DeBruijn(dim), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", topo)
	}
}

func run(o options) error {
	var reg *obs.Registry
	if o.metricsDump {
		reg = obs.NewRegistry()
	}
	if o.algo == "netsim" {
		if o.shards != 0 || o.statsEvery != 0 {
			return fmt.Errorf("-shards/-stats-every drive the synchronous engine; -algo netsim has neither")
		}
		if err := runNetsim(o, reg); err != nil {
			return err
		}
		return dumpMetrics(reg)
	}
	if o.drop != 0 || o.delay != 0 || o.crash != 0 {
		return fmt.Errorf("-drop/-delay/-crash require -algo netsim (the synchronous simulator has no network to fault)")
	}
	if o.shards != 0 && o.algo != "lm" {
		return fmt.Errorf("-shards requires -algo lm (the sharded engine steps the core system's lanes directly)")
	}
	n, steps, runs, seed := o.n, o.steps, o.runs, o.seed
	f, delta, c := o.f, o.delta, o.c
	algo, topo, pattern, every := o.algo, o.topo, o.pattern, o.every
	selector := func() (topology.Selector, error) {
		g, err := graphFor(topo, n)
		if err != nil {
			return nil, err
		}
		if g == nil {
			return topology.NewGlobal(n), nil
		}
		return topology.NewNeighborhood(g), nil
	}

	newPattern := func(run int, r *rng.RNG) (workload.Pattern, error) {
		if o.replay != "" {
			file, err := os.Open(o.replay)
			if err != nil {
				return nil, err
			}
			defer file.Close()
			tr, err := workload.ReadTrace(file)
			if err != nil {
				return nil, err
			}
			if tr.Procs() > n {
				return nil, fmt.Errorf("trace addresses %d processors, simulation has %d", tr.Procs(), n)
			}
			return tr, nil
		}
		switch pattern {
		case "paper":
			b := workload.PaperBounds()
			b.Horizon = steps
			return workload.NewPhases(n, b, r)
		case "uniform":
			return workload.Uniform{GenP: 0.5, ConP: 0.4}, nil
		case "hotspot":
			return workload.Hotspot{Hot: 1 + n/16, GenP: 0.9, ConP: 0.3}, nil
		case "burst":
			return workload.Burst{BurstLen: 50, DrainLen: 50, HighG: 0.8, HighC: 0.8}, nil
		case "oneproducer":
			return workload.OneProducer{}, nil
		default:
			return nil, fmt.Errorf("unknown pattern %q", pattern)
		}
	}

	newBalancer := func(run int, r *rng.RNG) (sim.Balancer, error) {
		switch algo {
		case "lm":
			sel, err := selector()
			if err != nil {
				return nil, err
			}
			return core.NewSystem(n, core.Params{F: f, Delta: delta, C: c}, sel, r)
		case "nobalance":
			return baseline.NewNoBalance(n), nil
		case "scatter":
			return baseline.NewRandomScatter(n, r), nil
		case "rsu":
			return baseline.NewRSU(n, 1, r), nil
		case "diffusion":
			side := 1
			for side*side < n {
				side++
			}
			if side*side != n {
				return nil, fmt.Errorf("diffusion torus needs a square processor count")
			}
			return baseline.NewDiffusion(topology.Torus2D(side, side), 1, 0)
		case "gradient":
			side := 1
			for side*side < n {
				side++
			}
			if side*side != n {
				return nil, fmt.Errorf("gradient torus needs a square processor count")
			}
			return baseline.NewGradient(topology.Torus2D(side, side), 2, 8, 1)
		default:
			return nil, fmt.Errorf("unknown algorithm %q", algo)
		}
	}

	if o.record != "" {
		pat, err := newPattern(0, rng.New(seed))
		if err != nil {
			return err
		}
		events := workload.Record(pat, n, steps, rng.New(seed).Split())
		file, err := os.Create(o.record)
		if err != nil {
			return err
		}
		if err := workload.WriteTrace(file, events); err != nil {
			file.Close()
			return err
		}
		if err := file.Close(); err != nil {
			return err
		}
		fmt.Printf("recorded %d events to %s\n", len(events), o.record)
		return nil
	}

	cfg := sim.Config{
		N: n, Steps: steps, Runs: runs, Seed: seed,
		Shards: o.shards, Workers: o.workers, StatsEvery: o.statsEvery,
		NewBalancer: newBalancer,
		NewPattern:  newPattern,
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return err
	}

	tb := trace.NewTable(
		fmt.Sprintf("%s | %s workload | n=%d steps=%d runs=%d", algo, pattern, n, steps, runs),
		"step", "avg", "min", "max", "spread")
	for s := every - 1; s < steps; s += every {
		if !res.Avg.Sampled(s) {
			continue
		}
		tb.AddRow(s+1,
			res.Avg.At(s).Mean(), res.Min.At(s).Min(), res.Max.At(s).Max(),
			res.Spread.At(s).Mean())
	}
	if err := tb.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nfinal-load variation density: %.4f\n", res.FinalLoadVD)
	if algo == "lm" {
		m := res.CoreMetrics.Scale(runs)
		fmt.Printf("per-run: balance ops %.1f, migrations %.1f, total borrow %.2f, remote borrow %.3f, borrow fail %.3f, decrease sim %.2f\n",
			m.BalanceOps, m.Migrations, m.TotalBorrow, m.RemoteBorrow, m.BorrowFail, m.DecreaseSim)
	}
	if reg != nil {
		// The synchronous engine has no live instrumentation hooks, so
		// the dump publishes the aggregate outcome: run count, total
		// balancing activity, and the final-load variation density (a
		// single-sample histogram whose mean is the value).
		reg.Counter("sim_runs_total").Add(int64(runs))
		reg.Counter("sim_balance_ops_total").Add(int64(res.CoreMetrics.BalanceOps))
		reg.Counter("sim_migrations_total").Add(int64(res.CoreMetrics.Migrations))
		reg.Histogram("sim_final_load_vd", obs.ExpBuckets(0.01, 2, 12)).Observe(res.FinalLoadVD)
	}
	return dumpMetrics(reg)
}

// netsimRates maps a workload pattern name to per-node generate/consume
// probability vectors for the asynchronous simulator, which has no notion
// of the engine's time-phased patterns.
func netsimRates(pattern string, n int) (gen, con []float64, err error) {
	switch pattern {
	case "uniform":
		return []float64{0.5}, []float64{0.4}, nil
	case "hotspot":
		gen = make([]float64, n)
		con = make([]float64, n)
		hot := 1 + n/16
		for i := range gen {
			if i < hot {
				gen[i], con[i] = 0.9, 0.1
			} else {
				gen[i], con[i] = 0.1, 0.3
			}
		}
		return gen, con, nil
	default:
		return nil, nil, fmt.Errorf("pattern %q not supported by -algo netsim (use uniform or hotspot)", pattern)
	}
}

// runNetsim drives the asynchronous message-passing realization, with the
// optional fault layer (-drop, -delay, -crash). A non-nil registry
// accumulates every run's netsim_* totals for -metrics-dump.
func runNetsim(o options, reg *obs.Registry) error {
	if o.record != "" || o.replay != "" {
		return fmt.Errorf("-record/-replay are engine workload traces; -algo netsim does not support them")
	}
	if o.crash < 0 {
		return fmt.Errorf("-crash = %d, need >= 0", o.crash)
	}
	graph, err := graphFor(o.topo, o.n)
	if err != nil {
		return err
	}
	gen, con, err := netsimRates(o.pattern, o.n)
	if err != nil {
		return err
	}
	tb := trace.NewTable(
		fmt.Sprintf("netsim | %s workload | n=%d steps=%d drop=%g delay=%d crash=%d",
			o.pattern, o.n, o.steps, o.drop, o.delay, o.crash),
		"run", "spread", "msgs per op", "abort frac", "timeouts", "self-releases", "msgs lost", "conserved")
	var sumSpread, sumMsgs, sumAbort float64
	for run := 0; run < o.runs; run++ {
		crashes := make([]netsim.Crash, o.crash)
		for i := range crashes {
			// Stagger the crashes over nodes and over the middle half of
			// the run so recovery overlaps ongoing balancing.
			crashes[i] = netsim.Crash{
				Node:   (i*7 + 3) % o.n,
				AtStep: o.steps/4 + i*(o.steps/2)/o.crash,
			}
		}
		res, err := netsim.Run(netsim.Config{
			N: o.n, Delta: o.delta, F: o.f, Steps: o.steps,
			GenP: gen, ConP: con, Graph: graph, Obs: reg,
			Seed: rng.Mix64(o.seed, uint64(run)),
			Faults: netsim.Faults{
				DropP:    o.drop,
				DelayMax: o.delay,
				Crashes:  crashes,
				Seed:     rng.Mix64(o.seed^0xfa17fa17fa17fa17, uint64(run)),
			},
		})
		if err != nil {
			return err
		}
		var initiated, completed, timeouts, selfRel, lost int64
		for _, nd := range res.Nodes {
			initiated += nd.Initiated
			completed += nd.Completed
			timeouts += nd.Timeouts
			selfRel += nd.FreezeExpired
			lost += nd.Dropped + nd.LostAtCrash
		}
		msgsPerOp, abortFrac := 0.0, 0.0
		if completed > 0 {
			msgsPerOp = float64(res.Messages()) / float64(completed)
		}
		if initiated > 0 {
			abortFrac = float64(initiated-completed) / float64(initiated)
		}
		conserved := "yes"
		if !res.Conserved() {
			conserved = "NO"
		}
		tb.AddRow(run, res.Spread(), msgsPerOp, abortFrac, timeouts, selfRel, lost, conserved)
		sumSpread += float64(res.Spread())
		sumMsgs += msgsPerOp
		sumAbort += abortFrac
	}
	if err := tb.WriteText(os.Stdout); err != nil {
		return err
	}
	r := float64(o.runs)
	fmt.Printf("\nmean over %d runs: spread %.1f, msgs per op %.2f, abort frac %.3f\n",
		o.runs, sumSpread/r, sumMsgs/r, sumAbort/r)
	return nil
}
