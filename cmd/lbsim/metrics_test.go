package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// captureMetrics redirects the -metrics-dump output for one run.
func captureMetrics(t *testing.T, o options) map[string]any {
	t.Helper()
	var sb strings.Builder
	old := metricsOut
	metricsOut = &sb
	defer func() { metricsOut = old }()
	o.metricsDump = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("-metrics-dump output is not JSON: %v\n%s", err, sb.String())
	}
	return doc
}

func TestMetricsDumpNetsim(t *testing.T) {
	o := opts(16, 60, 2, "netsim", "global", "uniform")
	doc := captureMetrics(t, o)
	for _, key := range []string{
		"netsim_generated_total", "netsim_msgs_total",
		"netsim_protocols_initiated_total", "netsim_final_load",
	} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("dump missing %q: %v", key, doc)
		}
	}
	if v, ok := doc["netsim_generated_total"].(float64); !ok || v <= 0 {
		t.Fatalf("netsim_generated_total = %v, want > 0", doc["netsim_generated_total"])
	}
	// Two runs against one registry: the final-load histogram holds one
	// sample per node per run.
	hist, ok := doc["netsim_final_load"].(map[string]any)
	if !ok {
		t.Fatalf("netsim_final_load is not a histogram object: %v", doc["netsim_final_load"])
	}
	if got := hist["count"].(float64); got != float64(2*16) {
		t.Fatalf("final-load samples = %v, want %d", got, 2*16)
	}
}

func TestMetricsDumpEngine(t *testing.T) {
	o := opts(16, 40, 2, "lm", "global", "uniform")
	o.every = 10
	doc := captureMetrics(t, o)
	if v, ok := doc["sim_runs_total"].(float64); !ok || v != 2 {
		t.Fatalf("sim_runs_total = %v, want 2", doc["sim_runs_total"])
	}
	if _, ok := doc["sim_balance_ops_total"]; !ok {
		t.Fatalf("dump missing sim_balance_ops_total: %v", doc)
	}
	if _, ok := doc["sim_final_load_vd"]; !ok {
		t.Fatalf("dump missing sim_final_load_vd: %v", doc)
	}
}
