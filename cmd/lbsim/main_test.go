package main

import (
	"path/filepath"
	"testing"
)

func opts(n, steps, runs int, algo, topo, pattern string) options {
	return options{
		n: n, steps: steps, runs: runs, seed: 1,
		f: 1.1, delta: 1, c: 4,
		algo: algo, topo: topo, pattern: pattern, every: 25,
	}
}

func TestRunDefaults(t *testing.T) {
	if err := run(opts(16, 50, 2, "lm", "global", "paper")); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"lm", "nobalance", "scatter", "rsu", "diffusion", "gradient"} {
		o := opts(16, 30, 1, algo, "global", "uniform")
		o.every = 10
		if err := run(o); err != nil {
			t.Fatalf("algo %s: %v", algo, err)
		}
	}
}

func TestRunAllPatterns(t *testing.T) {
	for _, pat := range []string{"paper", "uniform", "hotspot", "burst", "oneproducer"} {
		o := opts(16, 30, 1, "lm", "global", pat)
		o.every = 10
		if err := run(o); err != nil {
			t.Fatalf("pattern %s: %v", pat, err)
		}
	}
}

func TestRunAllTopologies(t *testing.T) {
	for _, topo := range []string{"global", "ring", "torus", "hypercube", "debruijn"} {
		o := opts(16, 30, 1, "lm", topo, "uniform")
		o.every = 10
		if err := run(o); err != nil {
			t.Fatalf("topology %s: %v", topo, err)
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	if err := run(opts(16, 30, 1, "nope", "global", "uniform")); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run(opts(16, 30, 1, "lm", "nope", "uniform")); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if err := run(opts(16, 30, 1, "lm", "global", "nope")); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

func TestRunRejectsNonSquareTorus(t *testing.T) {
	if err := run(opts(12, 30, 1, "lm", "torus", "uniform")); err == nil {
		t.Fatal("non-square torus accepted")
	}
	if err := run(opts(12, 30, 1, "lm", "hypercube", "uniform")); err == nil {
		t.Fatal("non-power-of-two hypercube accepted")
	}
}

func TestRunNetsimWithFaults(t *testing.T) {
	o := opts(16, 200, 1, "netsim", "global", "uniform")
	o.delta = 2
	o.drop, o.delay, o.crash = 0.2, 2, 2
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunNetsimPatternsAndTopologies(t *testing.T) {
	for _, pat := range []string{"uniform", "hotspot"} {
		o := opts(16, 150, 1, "netsim", "hypercube", pat)
		if err := run(o); err != nil {
			t.Fatalf("pattern %s: %v", pat, err)
		}
	}
}

func TestRunNetsimRejections(t *testing.T) {
	// Fault flags demand the netsim algorithm.
	o := opts(16, 30, 1, "lm", "global", "uniform")
	o.drop = 0.1
	if err := run(o); err == nil {
		t.Fatal("-drop accepted without -algo netsim")
	}
	// Engine-only patterns have no netsim rate mapping.
	if err := run(opts(16, 30, 1, "netsim", "global", "paper")); err == nil {
		t.Fatal("paper pattern accepted by netsim")
	}
	// Bad fault parameters surface netsim's validation.
	o = opts(16, 30, 1, "netsim", "global", "uniform")
	o.drop = 1.5
	if err := run(o); err == nil {
		t.Fatal("drop=1.5 accepted")
	}
	o = opts(16, 30, 1, "netsim", "global", "uniform")
	o.crash = -1
	if err := run(o); err == nil {
		t.Fatal("negative crash count accepted")
	}
	// Workload traces are an engine feature.
	o = opts(16, 30, 1, "netsim", "global", "uniform")
	o.record = "x.csv"
	if err := run(o); err == nil {
		t.Fatal("-record accepted by netsim")
	}
}

func TestRecordAndReplay(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.csv")
	o := opts(8, 40, 1, "lm", "global", "uniform")
	o.record = trace
	if err := run(o); err != nil {
		t.Fatalf("record: %v", err)
	}
	o = opts(8, 40, 2, "lm", "global", "ignored")
	o.replay = trace
	if err := run(o); err != nil {
		t.Fatalf("replay: %v", err)
	}
	// Replaying on a smaller machine than the trace addresses must fail.
	o = opts(4, 40, 1, "lm", "global", "ignored")
	o.replay = trace
	if err := run(o); err == nil {
		t.Fatal("undersized replay accepted")
	}
	// Missing file.
	o = opts(8, 40, 1, "lm", "global", "ignored")
	o.replay = filepath.Join(t.TempDir(), "missing.csv")
	if err := run(o); err == nil {
		t.Fatal("missing trace accepted")
	}
}
