// Command pacebench measures what each initiation-pacing policy costs
// and buys on the pathological configuration: n=16 over real TCP
// sockets, hot-quarter workload. For off, fixed (1ms), and adaptive it
// reports the completion rate, wire traffic per completed op, and
// wall-clock — the bench-sized version of the full PacerSweep
// (results/pacer.txt). The run fails if any cell violates packet
// conservation or if the adaptive policy does not beat the free-running
// completion rate.
//
// Examples:
//
//	pacebench                                # CI-sized run, table to stdout
//	pacebench -out results/BENCH_pace.json   # the checked-in capture
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"lmbalance/internal/cluster"
	"lmbalance/internal/trace"
	"lmbalance/internal/wire"
)

func main() {
	var (
		n     = flag.Int("n", 16, "cluster size")
		steps = flag.Int("steps", 20000, "workload steps per node")
		seed  = flag.Uint64("seed", 1993, "cluster-wide seed")
		gap   = flag.Duration("gap", time.Millisecond, "the fixed policy's gap")
		out   = flag.String("out", "", "also write the measurements as JSON to this file")
	)
	flag.Parse()
	if err := run(*n, *steps, *seed, *gap, *out); err != nil {
		fmt.Fprintln(os.Stderr, "pacebench:", err)
		os.Exit(1)
	}
}

// row is one pacing policy's measurement.
type row struct {
	Pace      string  `json:"pace"`
	Initiated int64   `json:"initiated"`
	Completed int64   `json:"completed"`
	Rate      float64 `json:"completion_rate"`
	Messages  int64   `json:"messages"`
	MsgsPerOp float64 `json:"msgs_per_completed_op"`
	MeanGapUS int64   `json:"mean_final_gap_us"`
	Seconds   float64 `json:"seconds"`
}

// report is the JSON document -out writes.
type report struct {
	Description string  `json:"description"`
	Machine     string  `json:"machine"`
	Date        string  `json:"date"`
	N           int     `json:"n"`
	Steps       int     `json:"steps"`
	FixedGapUS  int64   `json:"fixed_gap_us"`
	Rows        []row   `json:"rows"`
	AdaptiveVs  float64 `json:"adaptive_rate_vs_off"`
}

func run(n, steps int, seed uint64, gap time.Duration, out string) error {
	gen := make([]float64, n)
	con := make([]float64, n)
	for i := range gen {
		if i < n/4 {
			gen[i], con[i] = 0.9, 0.1
		} else {
			gen[i], con[i] = 0.1, 0.3
		}
	}

	tb := trace.NewTable(
		fmt.Sprintf("initiation pacing on tcp | hot-quarter | n=%d steps=%d seed=%d", n, steps, seed),
		"pace", "initiated", "completed", "rate", "messages", "msgs/op", "mean gap", "seconds")
	var rows []row
	for _, mode := range []cluster.PaceMode{cluster.PaceOff, cluster.PaceFixed, cluster.PaceAdaptive} {
		ts, err := wire.NewLocalCluster(n)
		if err != nil {
			return err
		}
		transports := make([]wire.Transport, n)
		for i, t := range ts {
			transports[i] = t
		}
		cfg := cluster.ClusterConfig{
			N: n, Delta: 2, F: 1.2, Steps: steps,
			GenP: gen, ConP: con, Seed: seed, Pace: mode,
		}
		if mode == cluster.PaceFixed {
			cfg.MinInitGap = gap
		}
		start := time.Now()
		res, err := cluster.RunCluster(cfg, transports)
		if err != nil {
			return fmt.Errorf("%s: %w", mode, err)
		}
		secs := time.Since(start).Seconds()
		if !res.Conserved() {
			return fmt.Errorf("%s: packet conservation violated", mode)
		}
		r := row{
			Pace:      mode.String(),
			Initiated: res.Initiated(),
			Completed: res.Completed(),
			Messages:  res.Messages(),
			MeanGapUS: res.MeanPaceGap().Microseconds(),
			Seconds:   secs,
			Rate:      1,
		}
		if r.Initiated > 0 {
			r.Rate = float64(r.Completed) / float64(r.Initiated)
		}
		if r.Completed > 0 {
			r.MsgsPerOp = float64(r.Messages) / float64(r.Completed)
		}
		rows = append(rows, r)
		tb.AddRow(r.Pace, r.Initiated, r.Completed, r.Rate, r.Messages,
			r.MsgsPerOp, res.MeanPaceGap().String(), secs)
	}
	if err := tb.WriteText(os.Stdout); err != nil {
		return err
	}

	off, adapt := rows[0], rows[2]
	vs := adapt.Rate
	if off.Rate > 0 {
		vs = adapt.Rate / off.Rate
	}
	if adapt.Rate <= off.Rate {
		return fmt.Errorf("adaptive pacing did not beat the free-running completion rate: %.4f vs %.4f", adapt.Rate, off.Rate)
	}
	fmt.Printf("\nadaptive completion rate %.3f vs free-running %.3f (%.1f×), msgs/op %.0f vs %.0f\n",
		adapt.Rate, off.Rate, vs, adapt.MsgsPerOp, off.MsgsPerOp)

	if out != "" {
		doc := report{
			Description: "Initiation pacing on real TCP sockets at the pathological size: completion rate and traffic per completed op under off, fixed, and adaptive AIMD pacing, hot-quarter workload. The run fails before reporting unless conservation holds in every cell and adaptive beats free-running. go run ./cmd/pacebench -out results/BENCH_pace.json",
			Machine:     fmt.Sprintf("%s/%s, %d CPU, %s", runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version()),
			Date:        time.Now().Format("2006-01-02"),
			N:           n, Steps: steps, FixedGapUS: gap.Microseconds(),
			Rows:       rows,
			AdaptiveVs: vs,
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}
