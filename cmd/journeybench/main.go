// Command journeybench measures what job journey tracing costs on the
// two paths it touches: the wire (journey stamps carried on
// JobMove/JobDone frames under codec v3) and the control plane (the
// health monitor's poll against a node's debug endpoint). It reports
// frame bytes for stamped vs unstamped job records, encode/decode
// throughput for the stamped path, and the monitor's metrics-only poll
// latency against a full aggregator scrape over the same endpoint —
// the bench-sized record of why Monitor.Poll skips /series and /trace.
//
// The run fails if a stamped job record costs more than 32 bytes of
// marginal payload, or if the metrics-only poll is not cheaper than the
// full scrape it replaces.
//
// Examples:
//
//	journeybench                                  # table to stdout
//	journeybench -out results/BENCH_journey.json  # the checked-in capture
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"lmbalance/internal/obs"
	"lmbalance/internal/serve"
	"lmbalance/internal/wire"
)

func main() {
	var (
		nodes  = flag.Int("nodes", 8, "nodes' worth of serving metrics behind the scraped endpoint")
		events = flag.Int("events", 4096, "trace events in the scraped node's ring")
		out    = flag.String("out", "", "also write the measurements as JSON to this file")
	)
	flag.Parse()
	if err := run(*nodes, *events, *out); err != nil {
		fmt.Fprintln(os.Stderr, "journeybench:", err)
		os.Exit(1)
	}
}

// frameRow is one frame shape's byte cost.
type frameRow struct {
	Frame    string  `json:"frame"`
	Records  int     `json:"records"`
	Bytes    int     `json:"bytes"`
	PerRec   float64 `json:"marginal_bytes_per_record,omitempty"`
	EncNsOp  float64 `json:"encode_ns_op"`
	DecNsOp  float64 `json:"decode_ns_op"`
	EncAlloc int64   `json:"encode_allocs_op"`
}

// pollRow is one scrape flavor's latency.
type pollRow struct {
	Mode   string  `json:"mode"`
	MsPoll float64 `json:"ms_per_poll"`
}

type report struct {
	Description string     `json:"description"`
	Machine     string     `json:"machine"`
	Date        string     `json:"date"`
	Frames      []frameRow `json:"frames"`
	Polls       []pollRow  `json:"polls"`
}

func journeyMove(records int, stamped bool) wire.Msg {
	now := int64(1_700_000_000_000_000_000)
	m := wire.Msg{Kind: wire.JobMove, From: 3, Seq: 17, Op: 0xdeadbeef}
	if stamped {
		m.SentNS = now
	}
	for i := 0; i < records; i++ {
		r := wire.JobRef{Origin: i % 8, ID: uint64(1000 + i)}
		if stamped {
			r.IngestNS = now - int64(i+1)*300_000
			r.Hops = i % 3
			r.TransferNS = int64(i) * 40_000
		}
		m.Jobs = append(m.Jobs, r)
	}
	return m
}

func journeyDone(stamped bool) wire.Msg {
	now := int64(1_700_000_000_000_000_000)
	m := wire.Msg{Kind: wire.JobDone, From: 5, Seq: 9, Job: 4242}
	if stamped {
		m.IngestNS = now - 2_000_000
		m.ConsumeNS = now
		m.Hops = 2
		m.TransferNS = 150_000
	}
	return m
}

func measureFrame(name string, m wire.Msg) frameRow {
	payload := wire.AppendMsg(nil, m)
	enc := testing.Benchmark(func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = wire.AppendMsg(buf[:0], m)
		}
		_ = buf
	})
	dec := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := wire.DecodeMsg(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	return frameRow{
		Frame: name, Records: len(m.Jobs), Bytes: len(payload),
		EncNsOp:  float64(enc.NsPerOp()),
		DecNsOp:  float64(dec.NsPerOp()),
		EncAlloc: enc.AllocsPerOp(),
	}
}

// seedRegistry populates a registry with nodes' worth of serving
// metrics — the journey histograms a real server family exposes — plus
// a filled trace ring, so the scrape pays realistic serialization.
func seedRegistry(nodes, events int) *obs.Registry {
	reg := obs.NewRegistry()
	comps := []string{"ingest_wait", "queue", "transfer", "service"}
	for n := 0; n < nodes; n++ {
		reg.Gauge(fmt.Sprintf("cluster_node_load{node=%q}", fmt.Sprint(n))).Set(int64(10 + n))
		soj := reg.Histogram(serve.SojournMetric(n), obs.SojournBuckets)
		unit := reg.Histogram(serve.UnitSojournMetric(n), obs.SojournBuckets)
		hops := reg.Histogram(serve.HopsMetric(n), serve.HopBuckets)
		for i := 0; i < 500; i++ {
			v := float64(i%97+1) * 50e-6
			soj.Observe(v)
			unit.Observe(v)
			hops.Observe(float64(i % 4))
		}
		for _, comp := range comps {
			h := reg.Histogram(serve.JourneyMetric(n, comp), obs.SojournBuckets)
			for i := 0; i < 500; i++ {
				h.Observe(float64(i%89+1) * 20e-6)
			}
		}
	}
	for i := 0; i < events; i++ {
		reg.Tracer().RecordOp(i%nodes, uint64(i/4+1), "bench_event",
			fmt.Sprintf("seq=%d detail=journeybench filler line %d", i, i))
	}
	return reg
}

func timePolls(label string, f func() error) (pollRow, error) {
	const polls = 50
	f() // warm connections and caches
	start := time.Now()
	for i := 0; i < polls; i++ {
		if err := f(); err != nil {
			return pollRow{}, fmt.Errorf("%s poll: %w", label, err)
		}
	}
	return pollRow{Mode: label, MsPoll: time.Since(start).Seconds() * 1e3 / polls}, nil
}

func run(nodes, events int, out string) error {
	frames := []frameRow{
		measureFrame("JobMove unstamped", journeyMove(16, false)),
		measureFrame("JobMove stamped", journeyMove(1, true)),
		measureFrame("JobMove stamped", journeyMove(4, true)),
		measureFrame("JobMove stamped", journeyMove(16, true)),
		measureFrame("JobDone unstamped", journeyDone(false)),
		measureFrame("JobDone stamped", journeyDone(true)),
	}
	// Marginal payload per stamped record: stamped minus unstamped at
	// the same record count, spread over the records.
	unstamped16 := frames[0].Bytes
	for i := range frames {
		f := &frames[i]
		if f.Frame == "JobMove stamped" && f.Records == 16 {
			f.PerRec = float64(f.Bytes-unstamped16) / float64(f.Records)
			if f.PerRec > 32 {
				return fmt.Errorf("stamped record costs %.1f marginal bytes, budget 32", f.PerRec)
			}
		}
	}

	reg := seedRegistry(nodes, events)
	srv, err := obs.ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		return err
	}
	defer srv.Close()
	urls := []string{srv.URL()}
	slo, err := obs.ParseSLO("p95 < 25ms over 5s/30s")
	if err != nil {
		return err
	}
	mon := obs.NewMonitor(obs.MonitorConfig{URLs: urls, SLO: slo, Base: obs.DefaultSLOBase})

	full, err := timePolls("full scrape (/metrics + /series + /trace)", func() error {
		_, err := obs.AggregateOpts(urls, obs.AggOptions{})
		return err
	})
	if err != nil {
		return err
	}
	monOnly, err := timePolls("monitor poll (metrics only)", func() error {
		mon.Poll()
		return nil
	})
	if err != nil {
		return err
	}
	if monOnly.MsPoll >= full.MsPoll {
		return fmt.Errorf("metrics-only poll (%.3fms) not cheaper than the full scrape (%.3fms)",
			monOnly.MsPoll, full.MsPoll)
	}
	polls := []pollRow{full, monOnly}

	fmt.Printf("journey frame costs (codec v%d):\n", wire.Version)
	fmt.Printf("  %-20s %7s %7s %9s %9s %9s %7s\n",
		"frame", "records", "bytes", "B/record", "enc ns", "dec ns", "allocs")
	for _, f := range frames {
		per := ""
		if f.PerRec > 0 {
			per = fmt.Sprintf("%.1f", f.PerRec)
		}
		fmt.Printf("  %-20s %7d %7d %9s %9.1f %9.1f %7d\n",
			f.Frame, f.Records, f.Bytes, per, f.EncNsOp, f.DecNsOp, f.EncAlloc)
	}
	fmt.Printf("\nhealth-monitor poll cost (%d nodes' metrics, %d trace events behind one endpoint):\n",
		nodes, events)
	for _, p := range polls {
		fmt.Printf("  %-42s %8.3f ms/poll\n", p.Mode, p.MsPoll)
	}
	fmt.Printf("  metrics-only saves %.1f%% of the scrape\n", (1-monOnly.MsPoll/full.MsPoll)*100)

	if out != "" {
		rep := report{
			Description: "Job journey tracing cost: stamped vs unstamped JobMove/JobDone frame bytes and codec throughput under wire v3, plus the health monitor's metrics-only poll latency against the full aggregator scrape (/metrics + /series + /trace) it deliberately avoids. Acceptance: a stamped record costs <= 32 marginal payload bytes and the metrics-only poll is cheaper than the full scrape. make bench-journey",
			Machine:     fmt.Sprintf("%s/%s, %s", runtime.GOOS, runtime.GOARCH, runtime.Version()),
			Date:        time.Now().Format("2006-01-02"),
			Frames:      frames,
			Polls:       polls,
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
