package main

import "testing"

func TestRunSolvesAndAgrees(t *testing.T) {
	// run() itself cross-checks parallel vs sequential optima and returns
	// an error on mismatch.
	if err := run(10, 4, 1.2, 1, 1, 3, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadPool(t *testing.T) {
	if err := run(10, 1, 1.2, 1, 1, 3, 1); err == nil {
		t.Fatal("1-worker pool accepted")
	}
	if err := run(10, 4, 1.0, 1, 1, 3, 1); err == nil {
		t.Fatal("f=1.0 accepted")
	}
}
