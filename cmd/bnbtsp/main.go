// Command bnbtsp solves random symmetric TSP instances by branch & bound,
// sequentially and on the Lüling–Monien task pool, and reports costs,
// node counts, timings and the pool's work distribution — the paper's
// flagship application class.
//
//	bnbtsp -cities 14 -workers 8 -f 1.2 -delta 1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lmbalance/internal/bnb"
	"lmbalance/internal/pool"
	"lmbalance/internal/rng"
)

func main() {
	var (
		cities  = flag.Int("cities", 13, "number of cities")
		workers = flag.Int("workers", 4, "pool workers")
		f       = flag.Float64("f", 1.2, "trigger factor f")
		delta   = flag.Int("delta", 1, "neighborhood size δ")
		seed    = flag.Uint64("seed", 1, "instance seed")
		depth   = flag.Int("depth", 3, "tree depth below which subtrees run sequentially")
		trials  = flag.Int("trials", 1, "number of instances")
	)
	flag.Parse()
	if err := run(*cities, *workers, *f, *delta, *seed, *depth, *trials); err != nil {
		fmt.Fprintln(os.Stderr, "bnbtsp:", err)
		os.Exit(1)
	}
}

func run(cities, workers int, f float64, delta int, seed uint64, depth, trials int) error {
	p, err := pool.New(pool.Config{Workers: workers, F: f, Delta: delta, Seed: seed})
	if err != nil {
		return err
	}
	defer p.Close()
	r := rng.New(seed)
	for trial := 0; trial < trials; trial++ {
		ins := bnb.RandomInstance(cities, r)

		t0 := time.Now()
		seq := bnb.SolveSequential(ins)
		seqDur := time.Since(t0)

		t0 = time.Now()
		par := bnb.SolveParallel(ins, p, depth)
		parDur := time.Since(t0)

		if par.Cost != seq.Cost {
			return fmt.Errorf("trial %d: parallel cost %d != sequential %d", trial, par.Cost, seq.Cost)
		}
		fmt.Printf("instance %d: %d cities, optimum %d\n", trial, cities, seq.Cost)
		fmt.Printf("  sequential: %8d nodes in %v\n", seq.Nodes, seqDur)
		fmt.Printf("  parallel:   %8d nodes in %v (%d workers)\n", par.Nodes, parDur, workers)
		s := p.Stats()
		fmt.Printf("  pool: %d tasks, %d balances, %d migrated, executed per worker %v (spread %d)\n",
			s.Submitted, s.Balances, s.Migrated, s.Executed, s.Spread())
		fmt.Printf("  tour: %v\n", seq.Tour)
	}
	return nil
}
