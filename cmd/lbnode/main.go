// Command lbnode runs the wire-level cluster: nodes that speak the
// balancing protocol over real TCP sockets (or in-memory loopback).
//
// Two modes:
//
//   - Spawn mode launches an n-node cluster in one command, each node
//     on its own loopback-TCP socket (or over the in-memory transport
//     with -transport inproc), and prints the per-node accounting and
//     the conservation check:
//
//     lbnode -spawn 8
//     lbnode -spawn 16 -transport inproc -steps 5000
//
//   - Daemon mode runs a single node of a multi-process (or
//     multi-host) cluster; every process gets the same static peer
//     table and its own id. Node 0 coordinates the shutdown:
//
//     lbnode -id 0 -listen :7100 -peers 0=host0:7100,1=host1:7101,2=host2:7102
//     lbnode -id 1 -listen :7101 -peers 0=host0:7100,1=host1:7101,2=host2:7102
//     lbnode -id 2 -listen :7102 -peers 0=host0:7100,1=host1:7101,2=host2:7102
//
// In either mode -debug-addr serves live debug endpoints while the run
// executes: Prometheus /metrics (per-reason abort counters, per-phase
// protocol latency histograms, the live load distribution, wire
// traffic), expvar-style /debug/vars, the protocol event /trace
// (JSONL), /healthz, and net/http/pprof:
//
//	lbnode -spawn 16 -debug-addr 127.0.0.1:7200 &
//	curl -s http://127.0.0.1:7200/metrics | grep cluster_aborts_total
//
// The exit status is nonzero if the node (or, in spawn mode, the
// cluster) observed a packet-conservation violation — which would be a
// bug, not a tunable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"lmbalance/internal/cluster"
	"lmbalance/internal/obs"
	"lmbalance/internal/trace"
	"lmbalance/internal/wire"
)

func main() {
	var (
		spawn     = flag.Int("spawn", 0, "spawn an n-node cluster in this process (0 = daemon mode)")
		transport = flag.String("transport", "tcp", "spawn mode: tcp or inproc")
		id        = flag.Int("id", 0, "daemon mode: this node's id")
		listen    = flag.String("listen", "", "daemon mode: listen address, e.g. :7100")
		peers     = flag.String("peers", "", "daemon mode: static peer table, id=host:port comma-separated (must include every node)")
		f         = flag.Float64("f", 1.2, "trigger factor f")
		delta     = flag.Int("delta", 2, "neighborhood size δ")
		steps     = flag.Int("steps", 2000, "workload steps per node")
		gen       = flag.Float64("gen", 0.5, "per-step generate probability")
		con       = flag.Float64("con", 0.4, "per-step consume probability")
		hot       = flag.Int("hot", -1, "first k nodes generate hot (0.9/0.1); -1 = n/4 in spawn mode, 0 in daemon mode")
		seed      = flag.Uint64("seed", 1993, "cluster-wide seed")
		timeout   = flag.Duration("timeout", 0, "initiator reply timeout (0 = default)")
		quiet     = flag.Bool("quiet", false, "suppress the per-node table")
		debugAddr = flag.String("debug-addr", "", "serve live /metrics, /debug/vars, /trace and /debug/pprof on this address during the run (e.g. 127.0.0.1:7200)")
	)
	flag.Parse()
	o := options{
		spawn: *spawn, transport: *transport, id: *id, listen: *listen, peers: *peers,
		f: *f, delta: *delta, steps: *steps, gen: *gen, con: *con, hot: *hot,
		seed: *seed, timeout: *timeout, quiet: *quiet, debugAddr: *debugAddr,
	}
	conserved, err := run(o, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbnode:", err)
		os.Exit(1)
	}
	if !conserved {
		fmt.Fprintln(os.Stderr, "lbnode: PACKET CONSERVATION VIOLATED")
		os.Exit(1)
	}
}

type options struct {
	spawn            int
	transport        string
	id               int
	listen, peers    string
	f                float64
	delta, steps     int
	gen, con         float64
	hot              int
	seed             uint64
	timeout          time.Duration
	quiet            bool
	debugAddr        string
}

func run(o options, w io.Writer) (conserved bool, err error) {
	// -debug-addr turns on instrumentation: one registry shared by
	// every node in this process (spawn mode aggregates cluster-wide),
	// served over HTTP for the lifetime of the run.
	var reg *obs.Registry
	if o.debugAddr != "" {
		reg = obs.NewRegistry()
		srv, err := obs.ServeDebug(o.debugAddr, reg)
		if err != nil {
			return false, err
		}
		defer srv.Close()
		fmt.Fprintf(w, "debug endpoints at %s: /metrics /debug/vars /trace /debug/pprof/\n", srv.URL())
	}
	if o.spawn > 0 {
		return runSpawn(o, reg, w)
	}
	return runDaemon(o, reg, w)
}

// clampDelta caps δ at n−1 (the whole cluster), matching lbsim: a
// 2-node cluster with the default -delta 2 should just balance pairs.
func clampDelta(delta, n int) int {
	if delta > n-1 {
		return n - 1
	}
	return delta
}

// hotProbs builds the per-node generate/consume vectors: the first
// `hot` nodes are producers (0.9/0.1), the rest use -gen/-con.
func hotProbs(n, hot int, gen, con float64) (gp, cp []float64) {
	gp = make([]float64, n)
	cp = make([]float64, n)
	for i := range gp {
		if i < hot {
			gp[i], cp[i] = 0.9, 0.1
		} else {
			gp[i], cp[i] = gen, con
		}
	}
	return gp, cp
}

// runSpawn launches a whole cluster in-process and reports it.
func runSpawn(o options, reg *obs.Registry, w io.Writer) (bool, error) {
	n := o.spawn
	if n < 2 {
		return false, fmt.Errorf("-spawn %d: need at least 2 nodes", n)
	}
	var transports []wire.Transport
	switch o.transport {
	case "tcp":
		ts, err := wire.NewLocalCluster(n)
		if err != nil {
			return false, err
		}
		transports = make([]wire.Transport, n)
		for i, t := range ts {
			t.Register(reg)
			transports[i] = t
		}
	case "inproc":
		net := wire.NewLoopback(n)
		transports = make([]wire.Transport, n)
		for i := range transports {
			ep := net.Transport(i)
			ep.Register(reg)
			transports[i] = ep
		}
	default:
		return false, fmt.Errorf("unknown -transport %q (tcp, inproc)", o.transport)
	}
	hot := o.hot
	if hot < 0 {
		hot = n / 4
	}
	gp, cp := hotProbs(n, hot, o.gen, o.con)
	res, err := cluster.RunCluster(cluster.ClusterConfig{
		N: n, Delta: clampDelta(o.delta, n), F: o.f, Steps: o.steps,
		GenP: gp, ConP: cp, Seed: o.seed, Timeout: o.timeout,
		Obs: reg,
	}, transports)
	if err != nil {
		return false, err
	}
	if !o.quiet {
		tb := trace.NewTable(fmt.Sprintf("%d-node cluster over %s (f=%g δ=%d, %d steps)",
			n, o.transport, o.f, o.delta, o.steps),
			"node", "final load", "generated", "consumed", "completed", "aborted", "timeouts", "bytes sent")
		for _, nd := range res.Nodes {
			tb.AddRow(nd.ID, nd.FinalLoad, nd.Generated, nd.Consumed,
				nd.Completed, nd.Aborted, nd.Timeouts, nd.BytesSent)
		}
		if err := tb.WriteText(w); err != nil {
			return false, err
		}
	}
	ok := res.Conserved() && res.Summary.Conserved()
	fmt.Fprintf(w, "total load %d  spread %d  ops %d  messages %d  wire bytes %d  elapsed %v\n",
		res.TotalLoad(), res.Spread(), res.Completed(), res.Messages(), res.Bytes(), res.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "conservation: %s (generated %d − consumed %d = held %d)\n",
		okString(ok), res.Summary.Generated, res.Summary.Consumed, res.Summary.TotalLoad)
	return ok, nil
}

// runDaemon runs one node of a distributed cluster.
func runDaemon(o options, reg *obs.Registry, w io.Writer) (bool, error) {
	table, err := parsePeers(o.peers)
	if err != nil {
		return false, err
	}
	n := len(table)
	if n < 2 {
		return false, fmt.Errorf("-peers lists %d nodes, need at least 2", n)
	}
	if _, ok := table[o.id]; !ok {
		return false, fmt.Errorf("-id %d is not in the peer table", o.id)
	}
	listen := o.listen
	if listen == "" {
		listen = table[o.id]
	}
	peers := make(map[int]string, n-1)
	for pid, addr := range table {
		if pid != o.id {
			peers[pid] = addr
		}
	}
	tp, err := wire.ListenTCP(o.id, listen, peers)
	if err != nil {
		return false, err
	}
	tp.Register(reg)
	hot := o.hot
	if hot < 0 {
		hot = 0
	}
	genP, conP := o.gen, o.con
	if o.id < hot {
		genP, conP = 0.9, 0.1
	}
	fmt.Fprintf(w, "lbnode %d/%d listening on %v, peers %v\n", o.id, n, tp.Addr(), o.peers)
	rep, err := cluster.Run(cluster.Config{
		ID: o.id, N: n, Delta: clampDelta(o.delta, n), F: o.f, Steps: o.steps,
		GenP: genP, ConP: conP, Seed: o.seed, Transport: tp, Timeout: o.timeout,
		Obs: reg,
	})
	if err != nil {
		return false, err
	}
	s := rep.Stats
	fmt.Fprintf(w, "node %d done: load %d  generated %d  consumed %d  completed %d  aborted %d  sent %dB  recv %dB\n",
		s.ID, s.FinalLoad, s.Generated, s.Consumed, s.Completed, s.Aborted, s.BytesSent, s.BytesRecv)
	if rep.Summary == nil {
		return true, nil // only the coordinator can check the cluster
	}
	ok := rep.Summary.Conserved()
	fmt.Fprintf(w, "cluster conservation: %s (%d nodes, generated %d − consumed %d = held %d)\n",
		okString(ok), rep.Summary.Nodes, rep.Summary.Generated, rep.Summary.Consumed, rep.Summary.TotalLoad)
	return ok, nil
}

// parsePeers parses "0=host:port,1=host:port,..." into an id→addr
// table and checks it is dense: ids 0..n-1, no gaps, no duplicates.
func parsePeers(s string) (map[int]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-peers is required in daemon mode (or use -spawn)")
	}
	table := make(map[int]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("peer entry %q is not id=host:port", part)
		}
		pid, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil {
			return nil, fmt.Errorf("peer entry %q: bad id: %v", part, err)
		}
		if _, dup := table[pid]; dup {
			return nil, fmt.Errorf("peer id %d listed twice", pid)
		}
		addr = strings.TrimSpace(addr)
		if addr == "" {
			return nil, fmt.Errorf("peer entry %q has an empty address", part)
		}
		table[pid] = addr
	}
	ids := make([]int, 0, len(table))
	for pid := range table {
		ids = append(ids, pid)
	}
	sort.Ints(ids)
	for i, pid := range ids {
		if pid != i {
			return nil, fmt.Errorf("peer ids must be dense 0..%d, got %v", len(table)-1, ids)
		}
	}
	return table, nil
}

func okString(ok bool) string {
	if ok {
		return "EXACT"
	}
	return "VIOLATED"
}
