// Command lbnode runs the wire-level cluster: nodes that speak the
// balancing protocol over real TCP sockets (or in-memory loopback).
//
// Three modes:
//
//   - Spawn mode launches an n-node cluster in one command, each node
//     on its own loopback-TCP socket (or over the in-memory transport
//     with -transport inproc), and prints the per-node accounting and
//     the conservation check:
//
//     lbnode -spawn 8
//     lbnode -spawn 16 -transport inproc -steps 5000
//
//   - Daemon mode runs a single node of a multi-process (or
//     multi-host) cluster; every process gets the same static peer
//     table and its own id. Node 0 coordinates the shutdown:
//
//     lbnode -id 0 -listen :7100 -peers 0=host0:7100,1=host1:7101,2=host2:7102
//     lbnode -id 1 -listen :7101 -peers 0=host0:7100,1=host1:7101,2=host2:7102
//     lbnode -id 2 -listen :7102 -peers 0=host0:7100,1=host1:7101,2=host2:7102
//
//   - Aggregator mode scrapes the debug endpoints of running nodes and
//     merges them into one cluster-wide view: summed counters, the
//     cluster load distribution and global variation density, and
//     cross-node balancing-operation timelines stitched by op id. One
//     shot by default; with -debug-addr it serves the merged view live:
//
//     lbnode -aggregate http://host0:7200,http://host1:7201
//     lbnode -aggregate http://host0:7200,http://host1:7201 -debug-addr :7300
//
// In spawn and daemon mode -debug-addr serves live debug endpoints
// while the run executes: Prometheus /metrics (per-reason abort
// counters, per-phase protocol latency histograms, the live load
// distribution, wire traffic), expvar-style /debug/vars, the protocol
// event /trace (JSONL, ?op= filters one operation), the time-series
// /series (recorder snapshots every -series-period), /healthz (node
// identity and current protocol epoch), and net/http/pprof:
//
//	lbnode -spawn 16 -debug-addr 127.0.0.1:7200 &
//	curl -s http://127.0.0.1:7200/metrics | grep cluster_aborts_total
//
// Spawn mode with -debug-per-node gives every node its own registry and
// endpoint (ports -debug-addr+i) — the multi-process observability
// shape in one command, ready for -aggregate to scrape.
//
// With -serve-addr the cluster also takes client work over the wire:
// node i listens for job submissions (the wire client codec, see
// internal/serve and cmd/lbload) on port+i of the base address (the
// daemon's single node uses the address as given). Serving clusters
// generate no spontaneous load (-gen is ignored; submissions are the
// only source), usually want -step-interval to give consumption a real
// service rate, -steps high enough to outlast the workload, and stop
// early on SIGINT/SIGTERM with a clean drain of the balancing
// protocol:
//
//	lbnode -spawn 8 -serve-addr 127.0.0.1:7400 -step-interval 200us -steps 100000000
//	lbnode -spawn 8 -serve-addr 127.0.0.1:7400 -step-interval 200us -balance=false  # control arm
//
// The exit status is nonzero if the node (or, in spawn mode, the
// cluster) observed a packet-conservation violation — which would be a
// bug, not a tunable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"lmbalance/internal/cluster"
	"lmbalance/internal/flight"
	"lmbalance/internal/obs"
	"lmbalance/internal/serve"
	"lmbalance/internal/trace"
	"lmbalance/internal/wire"
)

func main() {
	var (
		spawn     = flag.Int("spawn", 0, "spawn an n-node cluster in this process (0 = daemon mode)")
		transport = flag.String("transport", "tcp", "spawn mode: tcp or inproc")
		id        = flag.Int("id", 0, "daemon mode: this node's id")
		listen    = flag.String("listen", "", "daemon mode: listen address, e.g. :7100")
		peers     = flag.String("peers", "", "daemon mode: static peer table, id=host:port comma-separated (must include every node)")
		f         = flag.Float64("f", 1.2, "trigger factor f")
		delta     = flag.Int("delta", 2, "neighborhood size δ")
		steps     = flag.Int("steps", 2000, "workload steps per node")
		gen       = flag.Float64("gen", 0.5, "per-step generate probability")
		con       = flag.Float64("con", 0.4, "per-step consume probability")
		hot       = flag.Int("hot", -1, "first k nodes generate hot (0.9/0.1); -1 = n/4 in spawn mode, 0 in daemon mode")
		seed      = flag.Uint64("seed", 1993, "cluster-wide seed")
		timeout   = flag.Duration("timeout", 0, "initiator reply timeout (0 = default)")
		minGap    = flag.Duration("min-initiate-gap", 0, "minimum interval between a node's own balance initiations (fixed: the whole policy, 0 = off; adaptive: the controller's lower bound)")
		pace      = flag.String("pace", "fixed", "initiation pacing policy: off, fixed (-min-initiate-gap floor), or adaptive (AIMD controller)")
		paceMax   = flag.Duration("pace-max-gap", 0, "adaptive pacing: cap on the dynamic initiation gap (0 = default)")
		paceMult  = flag.Float64("pace-mult", 0, "adaptive pacing: multiplicative gap increase per peer_frozen abort (0 = default)")
		paceDec   = flag.Duration("pace-dec", 0, "adaptive pacing: additive gap decrease per successful collect (0 = default)")
		quiet     = flag.Bool("quiet", false, "suppress the per-node table")
		debugAddr = flag.String("debug-addr", "", "serve live /metrics, /debug/vars, /trace, /series and /debug/pprof on this address during the run (e.g. 127.0.0.1:7200)")
		perNode   = flag.Bool("debug-per-node", false, "spawn mode: per-node registries and debug endpoints on ports debug-addr+i (requires -debug-addr)")
		seriesP   = flag.Duration("series-period", 100*time.Millisecond, "time-series recorder sampling period (with -debug-addr)")
		aggregate = flag.String("aggregate", "", "aggregator mode: comma-separated upstream debug URLs to scrape and merge")
		serveAddr = flag.String("serve-addr", "", "accept client job submissions: spawn mode node i listens on port+i of this base address, daemon mode on the address as given (disables -gen)")
		stepIv    = flag.Duration("step-interval", 0, "wall-clock pacing per workload step (0 = free-running); with -serve-addr this sets the service rate con/interval units/s")
		balance   = flag.Bool("balance", true, "run the balancing protocol (false = control arm: nodes still answer partners but never initiate)")
		slo       = flag.String("slo", "", `run the continuous health monitor against this latency objective, e.g. "p99<20ms over 30s/5m" (requires -debug-addr; serves /health)`)
		monPeriod = flag.Duration("monitor-period", time.Second, "health monitor poll interval (with -slo)")
		scrapeTO  = flag.Duration("scrape-timeout", 0, "per-upstream scrape timeout for the aggregator and health monitor (0 = default 3s)")
		flightDir = flag.String("flight-dir", "", "record every frame and protocol decision into per-node flight-recorder rings under this directory (replay with lbflight); aggregator mode instead snapshots upstream recorders on SLO alerts")
		flightMax = flag.Int64("flight-max-bytes", 0, "per-node flight-recorder ring size in bytes (0 = default 8 MiB)")
	)
	flag.Parse()
	paceMode, err := cluster.ParsePaceMode(*pace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbnode: -pace:", err)
		os.Exit(1)
	}
	o := options{
		spawn: *spawn, transport: *transport, id: *id, listen: *listen, peers: *peers,
		f: *f, delta: *delta, steps: *steps, gen: *gen, con: *con, hot: *hot,
		seed: *seed, timeout: *timeout, minInitGap: *minGap, quiet: *quiet,
		pace: paceMode, paceMaxGap: *paceMax, paceMult: *paceMult, paceDec: *paceDec,
		debugAddr: *debugAddr, debugPerNode: *perNode, seriesPeriod: *seriesP,
		aggregate: *aggregate,
		serveAddr: *serveAddr, stepInterval: *stepIv, noBalance: !*balance,
		slo: *slo, monitorPeriod: *monPeriod, scrapeTimeout: *scrapeTO,
		flightDir: *flightDir, flightMaxBytes: *flightMax,
	}
	conserved, err := run(o, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbnode:", err)
		os.Exit(1)
	}
	if !conserved {
		fmt.Fprintln(os.Stderr, "lbnode: PACKET CONSERVATION VIOLATED")
		os.Exit(1)
	}
}

type options struct {
	spawn         int
	transport     string
	id            int
	listen, peers string
	f             float64
	delta, steps  int
	gen, con      float64
	hot           int
	seed          uint64
	timeout       time.Duration
	minInitGap    time.Duration
	pace          cluster.PaceMode
	paceMaxGap    time.Duration
	paceMult      float64
	paceDec       time.Duration
	quiet         bool
	debugAddr     string
	debugPerNode  bool
	seriesPeriod  time.Duration
	aggregate     string
	serveAddr     string
	stepInterval  time.Duration
	noBalance     bool
	slo            string
	monitorPeriod  time.Duration
	scrapeTimeout  time.Duration
	flightDir      string
	flightMaxBytes int64

	// stop, when non-nil, ends a serving aggregator as if interrupted
	// (test hook; main leaves it nil and serves until SIGINT/SIGTERM).
	stop <-chan struct{}
}

func run(o options, w io.Writer) (conserved bool, err error) {
	if o.aggregate != "" {
		return runAggregate(o, w)
	}
	if o.spawn > 0 {
		return runSpawn(o, w)
	}
	return runDaemon(o, w)
}

// clampDelta caps δ at n−1 (the whole cluster), matching lbsim: a
// 2-node cluster with the default -delta 2 should just balance pairs.
func clampDelta(delta, n int) int {
	if delta > n-1 {
		return n - 1
	}
	return delta
}

// hotProbs builds the per-node generate/consume vectors: the first
// `hot` nodes are producers (0.9/0.1), the rest use -gen/-con.
func hotProbs(n, hot int, gen, con float64) (gp, cp []float64) {
	gp = make([]float64, n)
	cp = make([]float64, n)
	for i := range gp {
		if i < hot {
			gp[i], cp[i] = 0.9, 0.1
		} else {
			gp[i], cp[i] = gen, con
		}
	}
	return gp, cp
}

// nodeHealth builds the /healthz identity callback for one node: its
// cluster id and live protocol epoch, so a probe learns which node
// answered and whether its protocol state is advancing.
func nodeHealth(nd *cluster.Node) func() map[string]string {
	return func() map[string]string {
		return map[string]string{
			"node":  strconv.Itoa(nd.ID()),
			"epoch": strconv.FormatUint(nd.Epoch(), 10),
		}
	}
}

// healthProxy lets /health mount on a debug server before the monitor
// exists: the monitor scrapes the server's (possibly ephemeral) URL, so
// it can only be created after the server is already listening.
type healthProxy struct{ mon atomic.Pointer[obs.Monitor] }

func (p *healthProxy) handler(w http.ResponseWriter, r *http.Request) {
	m := p.mon.Load()
	if m == nil {
		http.Error(w, "health monitor not running", http.StatusServiceUnavailable)
		return
	}
	m.Handler()(w, r)
}

// openFlight opens one node's flight recorder ring under -flight-dir
// and registers its counters with the node's registry.
func openFlight(o options, node int, reg *obs.Registry) (*flight.Recorder, error) {
	rec, err := flight.Open(flight.Options{
		Dir:      filepath.Join(o.flightDir, fmt.Sprintf("node-%d", node)),
		Node:     node,
		MaxBytes: o.flightMaxBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("-flight-dir node %d: %w", node, err)
	}
	rec.Register(reg)
	return rec, nil
}

// flightSnapHandler serves /flightsnap: seal and copy the given
// recorders' rings into snapshot artifacts and report the paths. The
// health monitor's OnAlert hook and remote aggregators both hit this.
func flightSnapHandler(recs ...*flight.Recorder) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reason := r.URL.Query().Get("reason")
		if reason == "" {
			reason = "manual"
		}
		type row struct {
			Dir  string `json:"dir"`
			Path string `json:"path,omitempty"`
			Err  string `json:"err,omitempty"`
		}
		rows := make([]row, 0, len(recs))
		status := http.StatusOK
		for _, rec := range recs {
			path, err := rec.Snapshot(reason)
			rw := row{Dir: rec.Dir(), Path: path}
			if err != nil {
				rw.Err = err.Error()
				status = http.StatusInternalServerError
			}
			rows = append(rows, rw)
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(rows)
	}
}

// snapshotOnAlert is the monitor hook for nodes with local recorders:
// every clear→firing SLO transition cuts a replayable incident
// artifact under each node's flight dir (flight_snapshots_total counts
// them; failures land in the recorder's error state, not the run).
func snapshotOnAlert(recs []*flight.Recorder) func(obs.HealthDoc) {
	return func(obs.HealthDoc) {
		for _, rec := range recs {
			rec.Snapshot("slo_alert")
		}
	}
}

// snapshotUpstreams is the aggregator's OnAlert hook: the recorders
// live with the nodes, so on an alert it asks every upstream to cut
// its own incident artifact via /flightsnap. Unreachable upstreams are
// skipped — the dead node may be the incident; the others still
// preserve their evidence.
func snapshotUpstreams(urls []string, timeout time.Duration) func(obs.HealthDoc) {
	if timeout <= 0 {
		timeout = obs.DefaultScrapeTimeout
	}
	client := &http.Client{Timeout: timeout}
	return func(obs.HealthDoc) {
		for _, u := range urls {
			resp, err := client.Get(u + "/flightsnap?reason=slo_alert")
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
}

// parseSLOFlag validates the -slo flag and its -debug-addr dependency.
func parseSLOFlag(o options) (obs.SLO, bool, error) {
	if o.slo == "" {
		return obs.SLO{}, false, nil
	}
	if o.debugAddr == "" {
		return obs.SLO{}, false, fmt.Errorf("-slo requires -debug-addr (the monitor scrapes the debug endpoints)")
	}
	s, err := obs.ParseSLO(o.slo)
	if err != nil {
		return obs.SLO{}, false, err
	}
	return s, true, nil
}

// perNodeAddr derives node i's address from a base flag value: same
// host, port+i (port 0 stays 0 — every node gets an ephemeral port).
// flagName only labels errors.
func perNodeAddr(flagName, base string, i int) (string, error) {
	host, ps, err := net.SplitHostPort(base)
	if err != nil {
		return "", fmt.Errorf("%s %q: %w", flagName, base, err)
	}
	port, err := strconv.Atoi(ps)
	if err != nil {
		return "", fmt.Errorf("%s %q: port is not numeric: %w", flagName, base, err)
	}
	if port != 0 {
		port += i
	}
	return net.JoinHostPort(host, strconv.Itoa(port)), nil
}

// runSpawn launches a whole cluster in-process and reports it.
func runSpawn(o options, w io.Writer) (bool, error) {
	n := o.spawn
	if n < 2 {
		return false, fmt.Errorf("-spawn %d: need at least 2 nodes", n)
	}
	if o.debugPerNode && o.debugAddr == "" {
		return false, fmt.Errorf("-debug-per-node requires -debug-addr")
	}
	sloObj, wantMon, err := parseSLOFlag(o)
	if err != nil {
		return false, err
	}
	// Registries: one shared (cluster-aggregated) by default, one per
	// node with -debug-per-node — the multi-process shape in one
	// process, each node scrape-able on its own endpoint.
	var shared *obs.Registry
	var regs []*obs.Registry
	if o.debugAddr != "" {
		if o.debugPerNode {
			regs = make([]*obs.Registry, n)
			for i := range regs {
				regs[i] = obs.NewRegistry()
			}
		} else {
			shared = obs.NewRegistry()
		}
	}
	regFor := func(i int) *obs.Registry {
		if regs != nil {
			return regs[i]
		}
		return shared
	}
	var transports []wire.Transport
	switch o.transport {
	case "tcp":
		ts, err := wire.NewLocalCluster(n)
		if err != nil {
			return false, err
		}
		transports = make([]wire.Transport, n)
		for i, t := range ts {
			t.Register(regFor(i))
			transports[i] = t
		}
	case "inproc":
		lnet := wire.NewLoopback(n)
		transports = make([]wire.Transport, n)
		for i := range transports {
			ep := lnet.Transport(i)
			ep.Register(regFor(i))
			transports[i] = ep
		}
	default:
		return false, fmt.Errorf("unknown -transport %q (tcp, inproc)", o.transport)
	}
	hot := o.hot
	if hot < 0 {
		hot = n / 4
	}
	gp, cp := hotProbs(n, hot, o.gen, o.con)
	closeTransports := func() {
		for _, tr := range transports {
			tr.Close()
		}
	}
	// Flight recorders tap the transports before anything else wraps
	// them, so every frame a node sends or receives is on the record.
	var frecs []*flight.Recorder
	closeFlight := func() {
		for _, fr := range frecs {
			fr.Close()
		}
	}
	if o.flightDir != "" {
		frecs = make([]*flight.Recorder, n)
		for i := range transports {
			fr, err := openFlight(o, i, regFor(i))
			if err != nil {
				closeFlight()
				closeTransports()
				return false, err
			}
			frecs[i] = fr
			transports[i] = fr.Tap(transports[i])
		}
	}
	// Client-facing front-ends come up before the nodes so a bound port
	// fails the run early; submissions queue in the servers until the
	// node loops start.
	var (
		servers []*serve.Server
		hooks   []*cluster.ServeHooks
		stop    chan struct{}
	)
	closeServers := func() {
		for _, s := range servers {
			if s != nil {
				s.Close()
			}
		}
	}
	if o.serveAddr != "" {
		for i := range gp {
			gp[i] = 0 // submissions are the only load source
		}
		servers = make([]*serve.Server, n)
		hooks = make([]*cluster.ServeHooks, n)
		for i := range servers {
			addr, err := perNodeAddr("-serve-addr", o.serveAddr, i)
			if err != nil {
				closeServers()
				closeFlight()
				closeTransports()
				return false, err
			}
			srv, err := serve.NewServer(i, addr, regFor(i))
			if err != nil {
				closeServers()
				closeFlight()
				closeTransports()
				return false, err
			}
			servers[i] = srv
			hooks[i] = srv.Hooks()
		}
		stop = make(chan struct{})
	}
	nodes, err := cluster.NewNodes(cluster.ClusterConfig{
		N: n, Delta: clampDelta(o.delta, n), F: o.f, Steps: o.steps,
		GenP: gp, ConP: cp, Seed: o.seed, Timeout: o.timeout,
		MinInitGap: o.minInitGap, Pace: o.pace,
		PaceMaxGap: o.paceMaxGap, PaceMult: o.paceMult, PaceDec: o.paceDec,
		Obs: shared, ObsPerNode: regs,
		StepInterval: o.stepInterval, NoBalance: o.noBalance,
		Stop: stop, ServePerNode: hooks,
		Flight: frecs,
	}, transports)
	if err != nil {
		closeServers()
		closeFlight()
		return false, err
	}
	// Debug servers and recorders come up after the nodes exist (the
	// health callback reports live node state) but before any node
	// starts: a bound port fails the run before cluster work begins.
	var recs []*obs.Recorder
	stopRecs := func() {
		for _, rec := range recs {
			rec.Stop()
		}
	}
	hp := &healthProxy{}
	var debugURLs []string
	if o.debugAddr != "" {
		if o.debugPerNode {
			ids := make([]int, 1)
			for i, nd := range nodes {
				ids[0] = i
				rec := cluster.NewRecorder(regs[i], ids, 0)
				rec.Start(o.seriesPeriod)
				recs = append(recs, rec)
				addr, err := perNodeAddr("-debug-addr", o.debugAddr, i)
				if err != nil {
					stopRecs()
					closeServers()
					closeFlight()
					closeTransports()
					return false, err
				}
				extra := make(map[string]http.HandlerFunc)
				if wantMon {
					extra["/health"] = hp.handler
				}
				if frecs != nil {
					extra["/flightsnap"] = flightSnapHandler(frecs[i])
				}
				if servers != nil {
					extra["/jobs"] = serve.JourneysHandler(servers[i].Journeys())
				}
				srv, err := obs.ServeDebugOpts(addr, regs[i], obs.DebugOptions{Health: nodeHealth(nd), Extra: extra})
				if err != nil {
					stopRecs()
					closeServers()
					closeFlight()
					closeTransports()
					return false, fmt.Errorf("node %d: %w", i, err)
				}
				defer srv.Close()
				debugURLs = append(debugURLs, srv.URL())
				fmt.Fprintf(w, "node %d debug endpoints at %s: /metrics /series /trace /healthz\n", i, srv.URL())
			}
		} else {
			ids := make([]int, n)
			for i := range ids {
				ids[i] = i
			}
			rec := cluster.NewRecorder(shared, ids, 0)
			rec.Start(o.seriesPeriod)
			recs = append(recs, rec)
			extra := make(map[string]http.HandlerFunc)
			if wantMon {
				extra["/health"] = hp.handler
			}
			if frecs != nil {
				extra["/flightsnap"] = flightSnapHandler(frecs...)
			}
			if servers != nil {
				logs := make([]*serve.JourneyLog, len(servers))
				for i, s := range servers {
					logs[i] = s.Journeys()
				}
				extra["/jobs"] = serve.JourneysHandler(logs...)
			}
			srv, err := obs.ServeDebugOpts(o.debugAddr, shared, obs.DebugOptions{
				Health: func() map[string]string {
					return map[string]string{"mode": "spawn", "nodes": strconv.Itoa(n)}
				},
				Extra: extra,
			})
			if err != nil {
				stopRecs()
				closeServers()
				closeFlight()
				closeTransports()
				return false, err
			}
			defer srv.Close()
			debugURLs = append(debugURLs, srv.URL())
			fmt.Fprintf(w, "debug endpoints at %s: /metrics /debug/vars /trace /series /debug/pprof/\n", srv.URL())
		}
	}
	if wantMon {
		cfg := obs.MonitorConfig{
			URLs: debugURLs, SLO: sloObj,
			Period: o.monitorPeriod, Timeout: o.scrapeTimeout,
			Tracer: regFor(0).Tracer(), Obs: regFor(0),
		}
		if frecs != nil {
			cfg.OnAlert = snapshotOnAlert(frecs)
		}
		mon := obs.NewMonitor(cfg)
		hp.mon.Store(mon)
		mon.Start()
		defer mon.Stop()
		fmt.Fprintf(w, "health monitor: %s (poll %v, /health on the debug endpoints)\n", sloObj, o.monitorPeriod)
	}
	if o.serveAddr != "" {
		for i, s := range servers {
			fmt.Fprintf(w, "node %d serving clients at %s\n", i, s.Addr())
		}
		// SIGINT/SIGTERM (or the test hook) ends the run early with a
		// clean drain through the balancing shutdown.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		sigDone := make(chan struct{})
		go func() {
			defer signal.Stop(sig)
			select {
			case <-sig:
				close(stop)
			case <-o.stop:
				close(stop)
			case <-sigDone:
			}
		}()
		defer close(sigDone)
	}
	res, err := cluster.RunNodes(nodes)
	stopRecs()
	closeServers()
	if err != nil {
		closeFlight()
		return false, err
	}
	if frecs != nil {
		var fRecords, fDropped int64
		for i, fr := range frecs {
			fRecords += fr.Records()
			fDropped += fr.Dropped()
			if cerr := fr.Close(); cerr != nil {
				return false, fmt.Errorf("flight recorder node %d: %w", i, cerr)
			}
		}
		fmt.Fprintf(w, "flight recording: %d records (%d dropped) under %s — replay with lbflight\n",
			fRecords, fDropped, o.flightDir)
	}
	if !o.quiet {
		tb := trace.NewTable(fmt.Sprintf("%d-node cluster over %s (f=%g δ=%d, %d steps)",
			n, o.transport, o.f, o.delta, o.steps),
			"node", "final load", "generated", "consumed", "completed", "aborted", "timeouts", "bytes sent")
		for _, nd := range res.Nodes {
			tb.AddRow(nd.ID, nd.FinalLoad, nd.Generated, nd.Consumed,
				nd.Completed, nd.Aborted, nd.Timeouts, nd.BytesSent)
		}
		if err := tb.WriteText(w); err != nil {
			return false, err
		}
	}
	ok := res.Conserved() && res.Summary.Conserved()
	if o.serveAddr != "" {
		ok = ok && res.JobsConserved()
		fmt.Fprintf(w, "serving: ingested %d units  completed %d  records held %d  job conservation: %s\n",
			res.Ingested(), res.UnitsDone(), res.RecordsHeld(), okString(res.JobsConserved()))
	}
	fmt.Fprintf(w, "total load %d  spread %d  ops %d  messages %d  wire bytes %d  elapsed %v\n",
		res.TotalLoad(), res.Spread(), res.Completed(), res.Messages(), res.Bytes(), res.Elapsed.Round(time.Millisecond))
	if o.pace == cluster.PaceAdaptive || o.minInitGap > 0 {
		episodes, steps := res.RateLimited()
		var backoffs, recovers int64
		for _, nd := range res.Nodes {
			backoffs += nd.PaceBackoffs
			recovers += nd.PaceRecovers
		}
		fmt.Fprintf(w, "initiation pacing: %s  deferral episodes %d (%d trigger firings)  backoffs %d  recoveries %d  mean final gap %v\n",
			o.pace, episodes, steps, backoffs, recovers, res.MeanPaceGap().Round(time.Microsecond))
	}
	fmt.Fprintf(w, "conservation: %s (generated %d − consumed %d = held %d)\n",
		okString(ok), res.Summary.Generated, res.Summary.Consumed, res.Summary.TotalLoad)
	return ok, nil
}

// runDaemon runs one node of a distributed cluster.
func runDaemon(o options, w io.Writer) (bool, error) {
	table, err := parsePeers(o.peers)
	if err != nil {
		return false, err
	}
	n := len(table)
	if n < 2 {
		return false, fmt.Errorf("-peers lists %d nodes, need at least 2", n)
	}
	if _, ok := table[o.id]; !ok {
		return false, fmt.Errorf("-id %d is not in the peer table", o.id)
	}
	listen := o.listen
	if listen == "" {
		listen = table[o.id]
	}
	peers := make(map[int]string, n-1)
	for pid, addr := range table {
		if pid != o.id {
			peers[pid] = addr
		}
	}
	var reg *obs.Registry
	if o.debugAddr != "" {
		reg = obs.NewRegistry()
	}
	tp, err := wire.ListenTCP(o.id, listen, peers)
	if err != nil {
		return false, err
	}
	tp.Register(reg)
	var transport wire.Transport = tp
	var frec *flight.Recorder
	if o.flightDir != "" {
		frec, err = openFlight(o, o.id, reg)
		if err != nil {
			tp.Close()
			return false, err
		}
		transport = frec.Tap(tp)
	}
	hot := o.hot
	if hot < 0 {
		hot = 0
	}
	genP, conP := o.gen, o.con
	if o.id < hot {
		genP, conP = 0.9, 0.1
	}
	var (
		server *serve.Server
		hooks  *cluster.ServeHooks
		stop   chan struct{}
	)
	if o.serveAddr != "" {
		genP = 0 // submissions are the only load source
		server, err = serve.NewServer(o.id, o.serveAddr, reg)
		if err != nil {
			frec.Close()
			tp.Close()
			return false, err
		}
		hooks = server.Hooks()
		stop = make(chan struct{})
		defer server.Close()
	}
	nd, err := cluster.New(cluster.Config{
		ID: o.id, N: n, Delta: clampDelta(o.delta, n), F: o.f, Steps: o.steps,
		GenP: genP, ConP: conP, Seed: o.seed, Transport: transport, Timeout: o.timeout,
		MinInitGap: o.minInitGap, Pace: o.pace,
		PaceMaxGap: o.paceMaxGap, PaceMult: o.paceMult, PaceDec: o.paceDec,
		Obs:          reg,
		StepInterval: o.stepInterval, NoBalance: o.noBalance,
		Stop: stop, Serve: hooks,
		Flight: frec,
	})
	if err != nil {
		frec.Close()
		tp.Close()
		return false, err
	}
	sloObj, wantMon, err := parseSLOFlag(o)
	if err != nil {
		frec.Close()
		tp.Close()
		return false, err
	}
	if o.debugAddr != "" {
		rec := cluster.NewRecorder(reg, []int{o.id}, 0)
		rec.Start(o.seriesPeriod)
		defer rec.Stop()
		hp := &healthProxy{}
		extra := make(map[string]http.HandlerFunc)
		if wantMon {
			extra["/health"] = hp.handler
		}
		if frec != nil {
			extra["/flightsnap"] = flightSnapHandler(frec)
		}
		if server != nil {
			extra["/jobs"] = serve.JourneysHandler(server.Journeys())
		}
		// Fail fast, naming the node: a daemon that silently ran without
		// its endpoints would be invisible to the aggregator.
		srv, err := obs.ServeDebugOpts(o.debugAddr, reg, obs.DebugOptions{Health: nodeHealth(nd), Extra: extra})
		if err != nil {
			frec.Close()
			tp.Close()
			return false, fmt.Errorf("node %d: %w", o.id, err)
		}
		defer srv.Close()
		fmt.Fprintf(w, "debug endpoints at %s: /metrics /debug/vars /trace /series /debug/pprof/\n", srv.URL())
		if wantMon {
			cfg := obs.MonitorConfig{
				URLs: []string{srv.URL()}, SLO: sloObj,
				Period: o.monitorPeriod, Timeout: o.scrapeTimeout,
				Tracer: reg.Tracer(), Obs: reg,
			}
			if frec != nil {
				cfg.OnAlert = snapshotOnAlert([]*flight.Recorder{frec})
			}
			mon := obs.NewMonitor(cfg)
			hp.mon.Store(mon)
			mon.Start()
			defer mon.Stop()
			fmt.Fprintf(w, "health monitor: %s (poll %v, /health)\n", sloObj, o.monitorPeriod)
		}
	}
	fmt.Fprintf(w, "lbnode %d/%d listening on %v, peers %v\n", o.id, n, tp.Addr(), o.peers)
	if server != nil {
		fmt.Fprintf(w, "node %d serving clients at %s\n", o.id, server.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		sigDone := make(chan struct{})
		go func() {
			defer signal.Stop(sig)
			select {
			case <-sig:
				close(stop)
			case <-o.stop:
				close(stop)
			case <-sigDone:
			}
		}()
		defer close(sigDone)
	}
	nd.Start()
	rep, err := nd.Wait()
	if err != nil {
		frec.Close()
		return false, err
	}
	if frec != nil {
		records, dropped := frec.Records(), frec.Dropped()
		if cerr := frec.Close(); cerr != nil {
			return false, fmt.Errorf("flight recorder: %w", cerr)
		}
		fmt.Fprintf(w, "flight recording: %d records (%d dropped) under %s — replay with lbflight\n",
			records, dropped, o.flightDir)
	}
	s := rep.Stats
	fmt.Fprintf(w, "node %d done: load %d  generated %d  consumed %d  completed %d  aborted %d  sent %dB  recv %dB\n",
		s.ID, s.FinalLoad, s.Generated, s.Consumed, s.Completed, s.Aborted, s.BytesSent, s.BytesRecv)
	if server != nil {
		fmt.Fprintf(w, "node %d serving: ingested %d units  done for this origin %d  records held %d\n",
			s.ID, s.Ingested, s.UnitsDone, s.RecordsHeld)
	}
	if rep.Summary == nil {
		return true, nil // only the coordinator can check the cluster
	}
	ok := rep.Summary.Conserved()
	fmt.Fprintf(w, "cluster conservation: %s (%d nodes, generated %d − consumed %d = held %d)\n",
		okString(ok), rep.Summary.Nodes, rep.Summary.Generated, rep.Summary.Consumed, rep.Summary.TotalLoad)
	return ok, nil
}

// runAggregate scrapes the upstream debug endpoints and reports the
// merged cluster view. With -debug-addr it serves the merged view live
// (every request re-scrapes) until interrupted; otherwise it is a one
// shot: scrape, print, exit.
func runAggregate(o options, w io.Writer) (bool, error) {
	var urls []string
	for _, u := range strings.Split(o.aggregate, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		urls = append(urls, strings.TrimRight(u, "/"))
	}
	if len(urls) == 0 {
		return false, fmt.Errorf("-aggregate lists no upstream URLs")
	}
	sloObj, wantMon, err := parseSLOFlag(o)
	if err != nil {
		return false, err
	}
	if o.debugAddr != "" {
		aggOpts := obs.AggOptions{Timeout: o.scrapeTimeout}
		if wantMon {
			cfg := obs.MonitorConfig{
				URLs: urls, SLO: sloObj,
				Period: o.monitorPeriod, Timeout: o.scrapeTimeout,
			}
			if o.flightDir != "" {
				// The recorders live with the nodes; on an alert ask every
				// upstream to seal its own incident artifact.
				cfg.OnAlert = snapshotUpstreams(urls, o.scrapeTimeout)
			}
			mon := obs.NewMonitor(cfg)
			mon.Start()
			defer mon.Stop()
			aggOpts.Extra = map[string]http.HandlerFunc{"/health": mon.Handler()}
			fmt.Fprintf(w, "health monitor: %s (poll %v, /health)\n", sloObj, o.monitorPeriod)
		}
		srv, err := obs.ServeAggregatorOpts(o.debugAddr, urls, aggOpts)
		if err != nil {
			return false, err
		}
		defer srv.Close()
		fmt.Fprintf(w, "aggregator endpoints at %s: /cluster /metrics /series /trace /healthz (%d upstreams)\n",
			srv.URL(), len(urls))
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		select {
		case <-sig:
		case <-o.stop:
		}
		return true, nil
	}
	v, err := obs.AggregateOpts(urls, obs.AggOptions{Timeout: o.scrapeTimeout})
	if err != nil {
		return false, err
	}
	tb := trace.NewTable(fmt.Sprintf("aggregated cluster view (%d upstreams)", len(urls)),
		"upstream", "status")
	for i := range v.Nodes {
		status := "ok"
		if v.Nodes[i].Err != nil {
			status = v.Nodes[i].Err.Error()
		}
		tb.AddRow(v.Nodes[i].URL, status)
	}
	if err := tb.WriteText(w); err != nil {
		return false, err
	}
	dn, mean, std, vd := v.Dist(obs.LoadGaugeBase)
	fmt.Fprintf(w, "cluster load: %d nodes  mean %.2f  std %.2f  VD %.3f\n", dn, mean, std, vd)
	fmt.Fprintf(w, "stitched operations: %d\n", len(v.Ops))
	// Conservation, re-derived from the scrapes alone. Mid-run the
	// totals legitimately differ by the load in flight, so the check is
	// reported, not enforced.
	sumBase := func(base string) (sum float64, series int) {
		for name, val := range v.Metrics {
			if strings.HasPrefix(name, base+"{") {
				sum += val
				series++
			}
		}
		return sum, series
	}
	loads, _ := sumBase("cluster_node_load")
	gens, nGen := sumBase("cluster_node_generated_total")
	cons, nCon := sumBase("cluster_node_consumed_total")
	if nGen > 0 && nCon > 0 {
		if diff := gens - cons - loads; diff == 0 {
			fmt.Fprintf(w, "conservation: EXACT (generated %.0f − consumed %.0f = held %.0f)\n", gens, cons, loads)
		} else {
			fmt.Fprintf(w, "conservation: %.0f in flight (generated %.0f − consumed %.0f vs held %.0f)\n",
				diff, gens, cons, loads)
		}
	}
	return true, nil
}

// parsePeers parses "0=host:port,1=host:port,..." into an id→addr
// table and checks it is dense: ids 0..n-1, no gaps, no duplicates.
func parsePeers(s string) (map[int]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-peers is required in daemon mode (or use -spawn)")
	}
	table := make(map[int]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		id, addr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("peer entry %q is not id=host:port", part)
		}
		pid, err := strconv.Atoi(strings.TrimSpace(id))
		if err != nil {
			return nil, fmt.Errorf("peer entry %q: bad id: %v", part, err)
		}
		if _, dup := table[pid]; dup {
			return nil, fmt.Errorf("peer id %d listed twice", pid)
		}
		addr = strings.TrimSpace(addr)
		if addr == "" {
			return nil, fmt.Errorf("peer entry %q has an empty address", part)
		}
		table[pid] = addr
	}
	ids := make([]int, 0, len(table))
	for pid := range table {
		ids = append(ids, pid)
	}
	sort.Ints(ids)
	for i, pid := range ids {
		if pid != i {
			return nil, fmt.Errorf("peer ids must be dense 0..%d, got %v", len(table)-1, ids)
		}
	}
	return table, nil
}

func okString(ok bool) string {
	if ok {
		return "EXACT"
	}
	return "VIOLATED"
}
