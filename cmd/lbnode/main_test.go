package main

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

func TestParsePeers(t *testing.T) {
	table, err := parsePeers("0=127.0.0.1:7100, 1=127.0.0.1:7101,2=host:7102")
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 3 || table[2] != "host:7102" {
		t.Fatalf("parsed %v", table)
	}
	for _, bad := range []string{
		"",            // empty
		"0=a:1,0=b:2", // duplicate id
		"0=a:1,2=b:2", // gap
		"1=a:1,2=b:2", // not starting at 0
		"0=a:1,x=b:2", // non-numeric id
		"0=a:1,1",     // missing =
		"0=a:1,1=",    // empty address
	} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}

func TestSpawnTCP(t *testing.T) {
	var buf strings.Builder
	ok, err := run(options{spawn: 4, transport: "tcp", f: 1.2, delta: 1,
		steps: 300, gen: 0.5, con: 0.4, hot: -1, seed: 7}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("conservation violated:\n%s", buf.String())
	}
	out := buf.String()
	for _, want := range []string{"4-node cluster over tcp", "conservation: EXACT", "wire bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSpawnInproc(t *testing.T) {
	var buf strings.Builder
	ok, err := run(options{spawn: 6, transport: "inproc", f: 1.1, delta: 2,
		steps: 300, gen: 0.5, con: 0.4, hot: 2, seed: 8, quiet: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("conservation violated:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "cluster over inproc") {
		t.Fatal("-quiet still printed the per-node table")
	}
}

// TestSpawnClampsDelta: a 2-node cluster with the default -delta 2
// must run (δ clamped to n−1 = 1), like lbsim.
func TestSpawnClampsDelta(t *testing.T) {
	var buf strings.Builder
	ok, err := run(options{spawn: 2, transport: "inproc", f: 1.2, delta: 2,
		steps: 200, gen: 0.5, con: 0.4, hot: 1, seed: 9, quiet: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("conservation violated:\n%s", buf.String())
	}
}

func TestSpawnRejectsBadOptions(t *testing.T) {
	if _, err := run(options{spawn: 1}, &strings.Builder{}); err == nil {
		t.Fatal("1-node spawn accepted")
	}
	if _, err := run(options{spawn: 4, transport: "carrier-pigeon"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown transport accepted")
	}
	if _, err := run(options{peers: ""}, &strings.Builder{}); err == nil {
		t.Fatal("daemon mode without peers accepted")
	}
}

// TestDaemonModeMultiNode drives the daemon path as a real multi-node
// cluster: three nodes, each with its own listener and the same static
// peer table, exactly as three separate processes would run.
func TestDaemonModeMultiNode(t *testing.T) {
	// Reserve three ports.
	const n = 3
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var parts []string
	for i, a := range addrs {
		parts = append(parts, fmt.Sprintf("%d=%s", i, a))
	}
	peerFlag := strings.Join(parts, ",")
	for _, ln := range lns {
		ln.Close() // free the ports for the daemons (dial retry covers the gap)
	}

	var wg sync.WaitGroup
	outs := make([]strings.Builder, n)
	oks := make([]bool, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			oks[i], errs[i] = run(options{
				id: i, listen: addrs[i], peers: peerFlag,
				f: 1.2, delta: 1, steps: 300, gen: 0.5, con: 0.4, hot: 1, seed: 11,
			}, &outs[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("node %d: %v\n%s", i, errs[i], outs[i].String())
		}
		if !oks[i] {
			t.Fatalf("node %d reported violation:\n%s", i, outs[i].String())
		}
	}
	if !strings.Contains(outs[0].String(), "cluster conservation: EXACT") {
		t.Fatalf("coordinator output missing conservation line:\n%s", outs[0].String())
	}
}
