package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"lmbalance/internal/serve"
)

func TestParsePeers(t *testing.T) {
	table, err := parsePeers("0=127.0.0.1:7100, 1=127.0.0.1:7101,2=host:7102")
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 3 || table[2] != "host:7102" {
		t.Fatalf("parsed %v", table)
	}
	for _, bad := range []string{
		"",            // empty
		"0=a:1,0=b:2", // duplicate id
		"0=a:1,2=b:2", // gap
		"1=a:1,2=b:2", // not starting at 0
		"0=a:1,x=b:2", // non-numeric id
		"0=a:1,1",     // missing =
		"0=a:1,1=",    // empty address
	} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}

func TestSpawnTCP(t *testing.T) {
	var buf strings.Builder
	ok, err := run(options{spawn: 4, transport: "tcp", f: 1.2, delta: 1,
		steps: 300, gen: 0.5, con: 0.4, hot: -1, seed: 7}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("conservation violated:\n%s", buf.String())
	}
	out := buf.String()
	for _, want := range []string{"4-node cluster over tcp", "conservation: EXACT", "wire bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSpawnInproc(t *testing.T) {
	var buf strings.Builder
	ok, err := run(options{spawn: 6, transport: "inproc", f: 1.1, delta: 2,
		steps: 300, gen: 0.5, con: 0.4, hot: 2, seed: 8, quiet: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("conservation violated:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "cluster over inproc") {
		t.Fatal("-quiet still printed the per-node table")
	}
}

// TestSpawnClampsDelta: a 2-node cluster with the default -delta 2
// must run (δ clamped to n−1 = 1), like lbsim.
func TestSpawnClampsDelta(t *testing.T) {
	var buf strings.Builder
	ok, err := run(options{spawn: 2, transport: "inproc", f: 1.2, delta: 2,
		steps: 200, gen: 0.5, con: 0.4, hot: 1, seed: 9, quiet: true}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("conservation violated:\n%s", buf.String())
	}
}

func TestSpawnRejectsBadOptions(t *testing.T) {
	if _, err := run(options{spawn: 1}, &strings.Builder{}); err == nil {
		t.Fatal("1-node spawn accepted")
	}
	if _, err := run(options{spawn: 4, transport: "carrier-pigeon"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown transport accepted")
	}
	if _, err := run(options{peers: ""}, &strings.Builder{}); err == nil {
		t.Fatal("daemon mode without peers accepted")
	}
}

// syncBuf lets the test read run()'s incremental output while the run
// is still going.
type syncBuf struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// TestSpawnServeWithMonitor: a serving spawn cluster with -slo runs the
// health monitor and mounts /jobs and /health on the debug endpoint;
// submitted jobs show up as journey samples and the monitor reports on
// the live cluster.
func TestSpawnServeWithMonitor(t *testing.T) {
	stop := make(chan struct{})
	buf := &syncBuf{}
	done := make(chan struct{})
	var ok bool
	var runErr error
	go func() {
		defer close(done)
		ok, runErr = run(options{
			spawn: 3, transport: "inproc", f: 1.2, delta: 1,
			steps: 50_000_000, con: 0.4, hot: -1, seed: 21, quiet: true,
			stepInterval: 100 * time.Microsecond,
			serveAddr:    "127.0.0.1:0", debugAddr: "127.0.0.1:0",
			slo: "p99 < 5s over 200ms/600ms", monitorPeriod: 25 * time.Millisecond,
			stop: stop,
		}, buf)
	}()

	// Wait for the serve and debug endpoints to announce themselves.
	var serveAddr, debugURL string
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && (serveAddr == "" || debugURL == "") {
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(line, "node 0 serving clients at ") {
				serveAddr = strings.TrimPrefix(line, "node 0 serving clients at ")
			}
			if strings.HasPrefix(line, "debug endpoints at ") {
				debugURL = strings.Fields(strings.TrimPrefix(line, "debug endpoints at "))[0]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if serveAddr == "" || debugURL == "" {
		close(stop)
		<-done
		t.Fatalf("endpoints never announced (err=%v):\n%s", runErr, buf.String())
	}

	c, err := serve.Dial(serveAddr)
	if err != nil {
		close(stop)
		<-done
		t.Fatal(err)
	}
	const jobs = 20
	for i := 0; i < jobs; i++ {
		if err := c.Submit(2); err != nil {
			t.Fatal(err)
		}
	}
	deadline = time.Now().Add(10 * time.Second)
	for c.Completed() < jobs && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if c.Completed() < jobs {
		close(stop)
		<-done
		t.Fatalf("only %d/%d jobs completed:\n%s", c.Completed(), jobs, buf.String())
	}

	httpGet := func(path string) string {
		resp, err := http.Get(debugURL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	// /jobs carries the completed journeys with their decomposition.
	jobsBody := httpGet("/jobs")
	lines := strings.Split(strings.TrimSpace(jobsBody), "\n")
	if len(lines) < jobs {
		t.Fatalf("/jobs has %d lines, want >= %d:\n%s", len(lines), jobs, jobsBody)
	}
	var sample struct {
		Sojourn float64 `json:"sojourn_s"`
		Units   int     `json:"units"`
		Stamped bool    `json:"stamped"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &sample); err != nil {
		t.Fatalf("/jobs line not JSON: %v: %s", err, lines[0])
	}
	if sample.Units != 2 || !sample.Stamped || sample.Sojourn <= 0 {
		t.Fatalf("/jobs sample = %+v", sample)
	}

	// /health serves the monitor's document over the live cluster.
	var doc struct {
		SLO    string `json:"slo"`
		Status string `json:"status"`
		Nodes  []struct {
			Verdict string `json:"verdict"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal([]byte(httpGet("/health")), &doc); err != nil {
		t.Fatalf("/health not JSON: %v", err)
	}
	if !strings.Contains(doc.SLO, "p99") || len(doc.Nodes) != 1 {
		t.Fatalf("/health doc = %+v", doc)
	}
	if doc.Status == "alerting" {
		t.Fatalf("generous 5s SLO must not alert: %+v", doc)
	}

	c.Close()
	close(stop)
	<-done
	if runErr != nil {
		t.Fatalf("run: %v\n%s", runErr, buf.String())
	}
	if !ok {
		t.Fatalf("conservation violated:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "health monitor: p99") {
		t.Fatalf("monitor banner missing:\n%s", buf.String())
	}
}

// TestDaemonModeMultiNode drives the daemon path as a real multi-node
// cluster: three nodes, each with its own listener and the same static
// peer table, exactly as three separate processes would run.
func TestDaemonModeMultiNode(t *testing.T) {
	// Reserve three ports.
	const n = 3
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	var parts []string
	for i, a := range addrs {
		parts = append(parts, fmt.Sprintf("%d=%s", i, a))
	}
	peerFlag := strings.Join(parts, ",")
	for _, ln := range lns {
		ln.Close() // free the ports for the daemons (dial retry covers the gap)
	}

	var wg sync.WaitGroup
	outs := make([]strings.Builder, n)
	oks := make([]bool, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			oks[i], errs[i] = run(options{
				id: i, listen: addrs[i], peers: peerFlag,
				f: 1.2, delta: 1, steps: 300, gen: 0.5, con: 0.4, hot: 1, seed: 11,
			}, &outs[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("node %d: %v\n%s", i, errs[i], outs[i].String())
		}
		if !oks[i] {
			t.Fatalf("node %d reported violation:\n%s", i, outs[i].String())
		}
	}
	if !strings.Contains(outs[0].String(), "cluster conservation: EXACT") {
		t.Fatalf("coordinator output missing conservation line:\n%s", outs[0].String())
	}
}
