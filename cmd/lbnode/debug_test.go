package main

import (
	"bufio"
	"io"
	"net/http"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"
)

var debugURLRe = regexp.MustCompile(`debug endpoints at (http://\S+):`)

// TestSpawnDebugEndpoints runs a TCP spawn cluster with -debug-addr and
// scrapes /metrics while the cluster is live: the exposition must carry
// the per-reason abort counters, the per-phase histograms and the wire
// traffic series. Afterwards the server must be gone (no leaked
// goroutines, port closed).
func TestSpawnDebugEndpoints(t *testing.T) {
	before := runtime.NumGoroutine()

	pr, pw := io.Pipe()
	type outcome struct {
		ok  bool
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		// Enough steps that the cluster is still running when the test
		// scrapes; the run ends on its own either way.
		ok, err := run(options{spawn: 8, transport: "tcp", f: 1.2, delta: 2,
			steps: 4000, gen: 0.5, con: 0.4, hot: -1, seed: 7, quiet: true,
			debugAddr: "127.0.0.1:0"}, pw)
		pw.Close()
		done <- outcome{ok, err}
	}()

	// The first output line announces the debug URL.
	sc := bufio.NewScanner(pr)
	var url string
	for sc.Scan() {
		if m := debugURLRe.FindStringSubmatch(sc.Text()); m != nil {
			url = m[1]
			break
		}
	}
	if url == "" {
		t.Fatal("run never announced the debug endpoint URL")
	}
	// Keep draining so the run is never blocked on the pipe.
	go func() {
		for sc.Scan() {
		}
	}()

	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %d, %v", resp.StatusCode, err)
	}
	metrics := string(body)
	for _, want := range []string{
		`cluster_aborts_total{reason="peer_frozen"}`,
		`cluster_aborts_total{reason="timeout"}`,
		`cluster_phase_seconds_bucket{phase="collect"`,
		"# TYPE cluster_load histogram",
		`wire_msgs_sent_total{node="0"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if code := getStatus(t, url+"/healthz"); code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	if code := getStatus(t, url+"/trace"); code != 200 {
		t.Fatalf("/trace = %d", code)
	}

	out := <-done
	if out.err != nil {
		t.Fatal(out.err)
	}
	if !out.ok {
		t.Fatal("conservation violated")
	}

	// The deferred Close in run must have torn the server down.
	http.DefaultClient.CloseIdleConnections()
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("debug server still serving after the run ended")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestDebugAddrRejected: a bad -debug-addr must fail fast, before any
// cluster work starts.
func TestDebugAddrRejected(t *testing.T) {
	var sb strings.Builder
	if _, err := run(options{spawn: 2, transport: "inproc", f: 1.2, delta: 1,
		steps: 10, gen: 0.5, con: 0.4, hot: 0, seed: 1, quiet: true,
		debugAddr: "256.0.0.1:http"}, &sb); err == nil {
		t.Fatal("bad -debug-addr accepted")
	}
}
