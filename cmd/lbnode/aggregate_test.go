package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"lmbalance/internal/cluster"
)

var nodeURLRe = regexp.MustCompile(`node (\d+) debug endpoints at (http://\S+):`)

// spawnPerNode starts a per-node-debug spawn cluster on a background
// goroutine and returns the n per-node debug URLs plus a done channel
// carrying the run outcome. The caller must drain done.
func spawnPerNode(t *testing.T, n, steps int) (urls []string, done chan error) {
	t.Helper()
	pr, pw := io.Pipe()
	done = make(chan error, 1)
	go func() {
		// TCP keeps the cluster alive for seconds (wall-clock protocol
		// ticks), so the scrapes below always hit a live cluster.
		ok, err := run(options{spawn: n, transport: "tcp", f: 1.2, delta: 2,
			steps: steps, gen: 0.5, con: 0.4, hot: -1, seed: 23, quiet: true,
			debugAddr: "127.0.0.1:0", debugPerNode: true,
			seriesPeriod: 2 * time.Millisecond}, pw)
		pw.Close()
		if err == nil && !ok {
			err = fmt.Errorf("conservation violated")
		}
		done <- err
	}()
	sc := bufio.NewScanner(pr)
	urls = make([]string, n)
	seen := 0
	for sc.Scan() {
		if m := nodeURLRe.FindStringSubmatch(sc.Text()); m != nil {
			var id int
			fmt.Sscanf(m[1], "%d", &id)
			urls[id] = m[2]
			if seen++; seen == n {
				break
			}
		}
	}
	if seen != n {
		t.Fatalf("run announced %d of %d per-node debug URLs", seen, n)
	}
	go func() {
		for sc.Scan() {
		}
	}()
	return urls, done
}

// TestSpawnPerNodeHealthz: with -debug-per-node every node serves its
// own /healthz carrying its id and live protocol epoch.
func TestSpawnPerNodeHealthz(t *testing.T) {
	urls, done := spawnPerNode(t, 3, 4000)
	for id, url := range urls {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatalf("GET %s/healthz: %v", url, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		lines := strings.Split(strings.TrimSpace(string(body)), "\n")
		if lines[0] != "ok" {
			t.Fatalf("node %d /healthz first line %q", id, lines[0])
		}
		var gotNode, gotEpoch bool
		for _, ln := range lines[1:] {
			if ln == fmt.Sprintf("node=%d", id) {
				gotNode = true
			}
			if strings.HasPrefix(ln, "epoch=") {
				gotEpoch = true
			}
		}
		if !gotNode || !gotEpoch {
			t.Fatalf("node %d /healthz missing identity lines:\n%s", id, body)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestAggregateOneShot: the one-shot aggregator mode scrapes a live
// per-node spawn cluster and prints the merged cluster view.
func TestAggregateOneShot(t *testing.T) {
	urls, done := spawnPerNode(t, 4, 4000)
	var buf strings.Builder
	ok, err := run(options{aggregate: strings.Join(urls, ",")}, &buf)
	if err != nil {
		t.Fatalf("aggregate: %v\n%s", err, buf.String())
	}
	if !ok {
		t.Fatalf("aggregate reported not-ok:\n%s", buf.String())
	}
	out := buf.String()
	for _, want := range []string{"aggregated cluster view (4 upstreams)", "cluster load: 4 nodes", "stitched operations:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("aggregate output missing %q:\n%s", want, out)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestAggregateServe: with -debug-addr the aggregator serves the merged
// view live until stopped.
func TestAggregateServe(t *testing.T) {
	urls, done := spawnPerNode(t, 3, 4000)
	stop := make(chan struct{})
	pr, pw := io.Pipe()
	aggDone := make(chan error, 1)
	go func() {
		ok, err := run(options{aggregate: strings.Join(urls, ","),
			debugAddr: "127.0.0.1:0", stop: stop}, pw)
		pw.Close()
		if err == nil && !ok {
			err = fmt.Errorf("aggregator reported not-ok")
		}
		aggDone <- err
	}()
	aggRe := regexp.MustCompile(`aggregator endpoints at (http://\S+):`)
	sc := bufio.NewScanner(pr)
	var aggURL string
	for sc.Scan() {
		if m := aggRe.FindStringSubmatch(sc.Text()); m != nil {
			aggURL = m[1]
			break
		}
	}
	if aggURL == "" {
		t.Fatal("aggregator never announced its URL")
	}
	go func() {
		for sc.Scan() {
		}
	}()
	resp, err := http.Get(aggURL + "/cluster")
	if err != nil {
		t.Fatalf("GET /cluster: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /cluster = %d:\n%s", resp.StatusCode, body)
	}
	for _, want := range []string{`"nodes"`, `"load"`, `"vd"`} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/cluster JSON missing %q:\n%s", want, body)
		}
	}
	close(stop)
	if err := <-aggDone; err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestAggregateRejectsEmpty: an -aggregate flag that lists no URLs must
// fail fast.
func TestAggregateRejectsEmpty(t *testing.T) {
	if _, err := run(options{aggregate: " , "}, &strings.Builder{}); err == nil {
		t.Fatal("empty -aggregate accepted")
	}
}

// TestDebugAddrBusyNamesNode: a per-node debug port that is already
// bound must fail the run fast, and the error must say which node and
// which address, so a multi-process operator knows what to fix.
func TestDebugAddrBusyNamesNode(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()
	_, err = run(options{spawn: 2, transport: "inproc", f: 1.2, delta: 1,
		steps: 10, gen: 0.5, con: 0.4, hot: 0, seed: 1, quiet: true,
		debugAddr: addr, debugPerNode: true, seriesPeriod: time.Millisecond},
		&strings.Builder{})
	if err == nil {
		t.Fatal("busy -debug-addr accepted")
	}
	if !strings.Contains(err.Error(), "node 0") || !strings.Contains(err.Error(), addr) {
		t.Fatalf("error does not name node and address: %v", err)
	}
}

// TestMinInitGapPacing: a huge -min-initiate-gap defers every trigger
// after each node's first initiation, and the run reports the deferral
// episodes (distinct waits) alongside the raw trigger firings.
func TestMinInitGapPacing(t *testing.T) {
	var buf strings.Builder
	ok, err := run(options{spawn: 4, transport: "inproc", f: 1.2, delta: 2,
		steps: 2000, gen: 0.5, con: 0.4, hot: 2, seed: 5, quiet: true,
		pace: cluster.PaceFixed, minInitGap: time.Hour}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("conservation violated:\n%s", buf.String())
	}
	out := buf.String()
	m := regexp.MustCompile(`initiation pacing: fixed  deferral episodes (\d+) \((\d+) trigger firings\).*mean final gap 1h0m0s`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("output missing pacing line:\n%s", out)
	}
	if m[1] == "0" || m[2] == "0" {
		t.Fatalf("no deferred initiations despite 1h gap:\n%s", out)
	}
}
