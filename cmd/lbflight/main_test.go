package main

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"lmbalance/internal/cluster"
	"lmbalance/internal/flight"
	"lmbalance/internal/wire"
)

// record runs a small recorded loopback cluster and returns the
// recording root.
func record(t *testing.T, n, steps int, seed uint64) string {
	t.Helper()
	root := t.TempDir()
	lnet := wire.NewLoopback(n)
	recs := make([]*flight.Recorder, n)
	transports := make([]wire.Transport, n)
	for i := 0; i < n; i++ {
		rec, err := flight.Open(flight.Options{
			Dir:  filepath.Join(root, fmt.Sprintf("node-%d", i)),
			Node: i,
		})
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = rec
		transports[i] = rec.Tap(lnet.Transport(i))
	}
	if _, err := cluster.RunCluster(cluster.ClusterConfig{
		N: n, Delta: 2, F: 2, Steps: steps, Seed: seed, Flight: recs,
	}, transports); err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestCLIAuditOpsTimelineDiff(t *testing.T) {
	root := record(t, 3, 200, 11)

	// Clean audit: exit 0, text mentions the verdict lines.
	var out strings.Builder
	code, err := run(&out, []string{root}, false, "", false, false)
	if err != nil || code != 0 {
		t.Fatalf("audit = code %d, err %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "legality: clean") ||
		!strings.Contains(out.String(), "-> conserved") {
		t.Fatalf("audit output missing verdicts:\n%s", out.String())
	}

	// JSON audit parses and agrees.
	out.Reset()
	if code, err = run(&out, []string{root}, false, "", false, true); err != nil || code != 0 {
		t.Fatalf("json audit = code %d, err %v", code, err)
	}
	var doc auditDoc
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("audit JSON: %v\n%s", err, out.String())
	}
	if doc.Nodes != 3 || !doc.Conserved || doc.First != nil {
		t.Fatalf("audit doc = %+v", doc)
	}

	// -ops lists ids; -op renders a timeline for the first one.
	rec, err := flight.LoadTree(root)
	if err != nil {
		t.Fatal(err)
	}
	ops := rec.Ops()
	if len(ops) == 0 {
		t.Fatal("no ops recorded")
	}
	out.Reset()
	if code, err = run(&out, []string{root}, true, "", false, false); err != nil || code != 0 {
		t.Fatalf("-ops = code %d, err %v", code, err)
	}
	if !strings.Contains(out.String(), fmt.Sprintf("0x%x", ops[0])) {
		t.Fatalf("-ops output missing op 0x%x:\n%s", ops[0], out.String())
	}
	out.Reset()
	if code, err = run(&out, []string{root}, false, fmt.Sprintf("0x%x", ops[0]), false, false); err != nil || code != 0 {
		t.Fatalf("-op = code %d, err %v", code, err)
	}
	if !strings.Contains(out.String(), "initiate") {
		t.Fatalf("timeline missing initiate:\n%s", out.String())
	}

	// Diff against itself agrees (exit 0); against a different run it
	// disagrees (exit 2).
	out.Reset()
	if code, err = run(&out, []string{root, root}, false, "", true, false); err != nil || code != 0 {
		t.Fatalf("self diff = code %d, err %v\n%s", code, err, out.String())
	}
	other := record(t, 3, 200, 99)
	out.Reset()
	code, err = run(&out, []string{root, other}, false, "", true, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("diff of different runs = code %d, want 2\n%s", code, out.String())
	}
}

func TestCLIFlagsTamperedRecording(t *testing.T) {
	root := record(t, 3, 300, 7)
	victim := ""
	for i := 0; i < 3; i++ {
		dir := filepath.Join(root, fmt.Sprintf("node-%d", i))
		nr, err := flight.LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range nr.Events {
			if ev.Dir == flight.DirSend && ev.Msg.Kind == wire.Transfer {
				victim = dir
			}
		}
		if victim != "" {
			break
		}
	}
	if victim == "" {
		t.Skip("run completed no transfers to tamper with")
	}
	dst := t.TempDir()
	err := flight.Rewrite(victim, dst, func(ev flight.Event) flight.Event {
		if ev.Dir == flight.DirSend && ev.Msg.Kind == wire.Transfer {
			ev.Msg.Amount += 5
		}
		return ev
	})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run(&out, []string{dst}, false, "", false, false)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("tampered audit = code %d, want 2\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "imbalance_violation") {
		t.Fatalf("verdict missing the violated rule:\n%s", out.String())
	}

	// Usage errors surface as err, not a verdict.
	if _, err := run(&out, nil, false, "", false, false); err == nil {
		t.Fatal("no dirs accepted")
	}
	if _, err := run(&out, []string{dst}, false, "not-an-op", false, false); err == nil {
		t.Fatal("bad -op accepted")
	}
}
