// Command lbflight is the offline replay auditor for flight-recorder
// artifacts: the tool you point at a recording directory after the
// cluster — or the incident — is gone. It loads one or many per-node
// segment rings (a node dir, a parent of node-N dirs, or a
// snapshot-on-alert artifact), merges the streams, and drives the
// shadow protocol state machine over them to re-check freeze/ack/
// transfer legality, packet and job conservation, and the VD
// trajectory, entirely from disk. It can also reconstruct one
// balancing operation's cross-node timeline (what /trace used to
// answer, but post-mortem) and diff two recordings field by field.
//
// The exit status is the verdict: 0 for a clean audit, 1 for a failed
// load, 2 when the replay finds violations or broken conservation —
// so CI and incident tooling can gate on it without parsing output.
//
// Examples:
//
//	lbflight run/                         # audit every node under run/
//	lbflight -ops run/                    # list balancing ops seen
//	lbflight -op 0x1c0000000001 run/      # one op's merged timeline
//	lbflight -diff before/ after/         # field-by-field drift
//	lbflight -json run/ > audit.json      # machine-readable verdict
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"lmbalance/internal/flight"
)

func main() {
	var (
		listOps = flag.Bool("ops", false, "list the balancing-op ids in the recording and exit")
		opStr   = flag.String("op", "", "print one balancing op's merged cross-node timeline (decimal or 0x hex id)")
		diff    = flag.Bool("diff", false, "audit exactly two recordings and print their field-by-field differences")
		asJSON  = flag.Bool("json", false, "emit the audit (or diff) as JSON instead of text")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: lbflight [flags] <recording-dir> [<recording-dir>]\n\n"+
				"A recording dir is a single node's segment directory, a parent of\n"+
				"node-N directories, or a snapshot artifact. Flags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	code, err := run(os.Stdout, flag.Args(), *listOps, *opStr, *diff, *asJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbflight:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

// run drives one invocation and returns the process exit code: 0 for a
// clean verdict, 2 for violations or diff disagreements (load and
// usage errors surface as err, exit 1).
func run(w io.Writer, dirs []string, listOps bool, opStr string, diff, asJSON bool) (int, error) {
	if diff {
		if len(dirs) != 2 {
			return 0, fmt.Errorf("-diff needs exactly two recording dirs, got %d", len(dirs))
		}
		return runDiff(w, dirs[0], dirs[1], asJSON)
	}
	if len(dirs) != 1 {
		return 0, fmt.Errorf("need exactly one recording dir (or two with -diff), got %d", len(dirs))
	}
	rec, err := flight.LoadTree(dirs[0])
	if err != nil {
		return 0, err
	}
	if listOps {
		return 0, printOps(w, rec, asJSON)
	}
	if opStr != "" {
		op, err := parseOp(opStr)
		if err != nil {
			return 0, err
		}
		return 0, printTimeline(w, rec, op, asJSON)
	}
	return runAudit(w, rec, asJSON)
}

func parseOp(s string) (uint64, error) {
	op, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), base(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad -op %q: %v", s, err)
	}
	return op, nil
}

func base(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

func printOps(w io.Writer, rec *flight.Recording, asJSON bool) error {
	ops := rec.Ops()
	if asJSON {
		return json.NewEncoder(w).Encode(ops)
	}
	fmt.Fprintf(w, "%d balancing ops across %d node streams:\n", len(ops), len(rec.Nodes))
	for _, op := range ops {
		tl := rec.Timeline(op)
		nodes := map[int]bool{}
		for _, ev := range tl {
			nodes[ev.Node] = true
		}
		fmt.Fprintf(w, "  0x%-14x %4d events across %d nodes\n", op, len(tl), len(nodes))
	}
	return nil
}

func printTimeline(w io.Writer, rec *flight.Recording, op uint64, asJSON bool) error {
	tl := rec.Timeline(op)
	if len(tl) == 0 {
		return fmt.Errorf("op 0x%x not in recording", op)
	}
	if asJSON {
		return json.NewEncoder(w).Encode(tl)
	}
	t0 := tl[0].WallNS
	fmt.Fprintf(w, "op 0x%x: %d events\n", op, len(tl))
	for _, ev := range tl {
		fmt.Fprintf(w, "  %s\n", formatEvent(ev, t0))
	}
	return nil
}

// formatEvent renders one record as a timeline line, offsets relative
// to the op's (or recording's) first event.
func formatEvent(ev flight.Event, t0 int64) string {
	at := time.Duration(ev.WallNS - t0)
	switch ev.Dir {
	case flight.DirSend:
		return fmt.Sprintf("%12s node %d  send  %-10s -> %d  seq=%d amount=%d load=%d",
			at, ev.Node, ev.Msg.Kind, ev.Peer, ev.Msg.Seq, ev.Msg.Amount, ev.Msg.Load)
	case flight.DirRecv:
		return fmt.Sprintf("%12s node %d  recv  %-10s <- %d  seq=%d amount=%d load=%d",
			at, ev.Node, ev.Msg.Kind, ev.Peer, ev.Msg.Seq, ev.Msg.Amount, ev.Msg.Load)
	default:
		args := make([]string, len(ev.Args))
		for i, a := range ev.Args {
			args[i] = strconv.FormatInt(a, 10)
		}
		extra := ""
		if ev.Kind == flight.LocalAbort {
			extra = " reason=" + flight.AbortReason(ev.Arg(2))
		}
		return fmt.Sprintf("%12s node %d  local %-14s args=[%s]%s",
			at, ev.Node, ev.Kind, strings.Join(args, " "), extra)
	}
}

// auditDoc is the JSON shape of a verdict; it wraps the library audit
// with the derived booleans so consumers need no re-computation.
type auditDoc struct {
	Dir           string              `json:"dir"`
	Nodes         int                 `json:"nodes"`
	Events        int                 `json:"events"`
	Violations    []flight.Violation  `json:"violations"`
	First         *flight.Violation   `json:"first,omitempty"`
	Conserved     bool                `json:"conserved"`
	JobsConserved bool                `json:"jobs_conserved"`
	FinalsSeen    int                 `json:"finals_seen"`
	TotalLoad     int64               `json:"total_load"`
	Generated     int64               `json:"generated"`
	Consumed      int64               `json:"consumed"`
	VDFinal       float64             `json:"vd_final,omitempty"`
	SojournP50MS  float64             `json:"sojourn_p50_ms,omitempty"`
	SojournP99MS  float64             `json:"sojourn_p99_ms,omitempty"`
	PerNode       []*flight.NodeAudit `json:"per_node"`
}

func buildDoc(rec *flight.Recording, audit *flight.AuditResult) auditDoc {
	doc := auditDoc{
		Dir:           rec.Dir,
		Nodes:         len(rec.Nodes),
		Violations:    audit.Violations,
		First:         audit.First,
		Conserved:     audit.Conserved(),
		JobsConserved: audit.JobsConserved(),
		FinalsSeen:    audit.FinalsSeen,
		TotalLoad:     audit.TotalLoad,
		Generated:     audit.Generated,
		Consumed:      audit.Consumed,
		PerNode:       audit.Nodes,
	}
	for _, nr := range rec.Nodes {
		doc.Events += len(nr.Events)
	}
	if len(audit.VD) > 0 {
		doc.VDFinal = audit.VD[len(audit.VD)-1].VD
	}
	if len(audit.SojournNS) > 0 {
		doc.SojournP50MS = float64(audit.SojournQuantile(0.50)) / 1e6
		doc.SojournP99MS = float64(audit.SojournQuantile(0.99)) / 1e6
	}
	return doc
}

// clean is the gate CI and incident tooling key off: no illegal steps
// and, when every node's final accounting made it to disk, both
// conservation laws hold.
func clean(audit *flight.AuditResult, nodes int) bool {
	if audit.First != nil {
		return false
	}
	if audit.FinalsSeen == nodes {
		return audit.Conserved() && audit.JobsConserved()
	}
	return true
}

func runAudit(w io.Writer, rec *flight.Recording, asJSON bool) (int, error) {
	audit := flight.Audit(rec)
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(buildDoc(rec, audit)); err != nil {
			return 0, err
		}
	} else {
		printAudit(w, rec, audit)
	}
	if !clean(audit, len(rec.Nodes)) {
		return 2, nil
	}
	return 0, nil
}

func printAudit(w io.Writer, rec *flight.Recording, audit *flight.AuditResult) {
	fmt.Fprintf(w, "recording %s: %d node streams\n", rec.Dir, len(rec.Nodes))
	fmt.Fprintf(w, "  %-5s %8s %8s %9s %9s %8s %8s %7s %6s\n",
		"node", "events", "sent", "recv", "initiated", "resolved", "aborted", "drops", "torn")
	for _, na := range audit.Nodes {
		fmt.Fprintf(w, "  %-5d %8d %8d %9d %9d %8d %8d %7d %6v\n",
			na.Node, na.Events, na.MsgsSent, na.MsgsRecv,
			na.Initiated, na.Resolved, na.Aborted, na.Drops, na.Torn)
	}
	if audit.FinalsSeen == len(rec.Nodes) {
		fmt.Fprintf(w, "conservation: load=%d generated=%d consumed=%d -> %s\n",
			audit.TotalLoad, audit.Generated, audit.Consumed, verdict(audit.Conserved()))
		fmt.Fprintf(w, "jobs: ingested=%d done=%d held=%d -> %s\n",
			audit.Ingested, audit.UnitsDone, audit.RecordsHeld, verdict(audit.JobsConserved()))
	} else {
		fmt.Fprintf(w, "conservation: skipped (finals from %d of %d nodes)\n",
			audit.FinalsSeen, len(rec.Nodes))
	}
	if len(audit.VD) > 0 {
		fmt.Fprintf(w, "vd trajectory: %.4f -> %.4f over %s (%d points)\n",
			audit.VD[0].VD, audit.VD[len(audit.VD)-1].VD,
			time.Duration(audit.VD[len(audit.VD)-1].TNS), len(audit.VD))
	}
	if n := len(audit.SojournNS); n > 0 {
		fmt.Fprintf(w, "sojourns: %d completions, p50=%.3fms p99=%.3fms\n",
			n, float64(audit.SojournQuantile(0.50))/1e6, float64(audit.SojournQuantile(0.99))/1e6)
	}
	if len(audit.Violations) == 0 {
		fmt.Fprintln(w, "legality: clean (no illegal steps)")
		return
	}
	fmt.Fprintf(w, "legality: %d violations; first illegal step:\n", len(audit.Violations))
	fmt.Fprintf(w, "  >> %s\n", *audit.First)
	// Show the remaining violations grouped by rule so a cascade reads
	// as one fault, not a wall of lines.
	byRule := map[string]int{}
	for _, v := range audit.Violations {
		byRule[v.Rule]++
	}
	rules := make([]string, 0, len(byRule))
	for r := range byRule {
		rules = append(rules, r)
	}
	sort.Strings(rules)
	for _, r := range rules {
		fmt.Fprintf(w, "  %4d x %s\n", byRule[r], r)
	}
}

func verdict(ok bool) string {
	if ok {
		return "conserved"
	}
	return "VIOLATED"
}

func runDiff(w io.Writer, aDir, bDir string, asJSON bool) (int, error) {
	ra, err := flight.LoadTree(aDir)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", aDir, err)
	}
	rb, err := flight.LoadTree(bDir)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", bDir, err)
	}
	rows := flight.Diff(flight.Audit(ra), flight.Audit(rb))
	if asJSON {
		if rows == nil {
			rows = []flight.DiffRow{}
		}
		if err := json.NewEncoder(w).Encode(rows); err != nil {
			return 0, err
		}
	} else if len(rows) == 0 {
		fmt.Fprintln(w, "recordings agree on every audited field")
	} else {
		fmt.Fprintf(w, "%-16s %-24s %-24s\n", "field", aDir, bDir)
		for _, r := range rows {
			fmt.Fprintf(w, "%-16s %-24s %-24s\n", r.Field, r.A, r.B)
		}
	}
	if len(rows) > 0 {
		return 2, nil
	}
	return 0, nil
}
