// Command flightbench measures what the black-box flight recorder
// costs where it matters: the marginal per-frame overhead the
// transport tap adds to a send (encode into a pooled buffer plus one
// buffered-channel handoff — the disk I/O rides a separate writer
// goroutine), the on-disk density of a real recorded cluster run, and
// how fast the offline auditor chews back through a recording
// (load+replay events per second).
//
// The run fails if the tap's marginal cost per sent frame exceeds the
// budget, or if replay throughput falls under the floor — the same
// gates `make bench-flight` enforces in CI.
//
// Examples:
//
//	flightbench                                 # table to stdout
//	flightbench -out results/BENCH_flight.json  # the checked-in capture
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"lmbalance/internal/cluster"
	"lmbalance/internal/flight"
	"lmbalance/internal/wire"
)

func main() {
	var (
		budget = flag.Float64("budget-ns", 2500, "max marginal tap cost per sent frame, nanoseconds")
		floor  = flag.Float64("replay-floor", 100_000, "min offline replay throughput, events/second")
		steps  = flag.Int("steps", 20000, "recorded cluster steps for the disk and replay measurements")
		out    = flag.String("out", "", "also write the measurements as JSON to this file")
	)
	flag.Parse()
	if err := run(*budget, *floor, *steps, *out); err != nil {
		fmt.Fprintln(os.Stderr, "flightbench:", err)
		os.Exit(1)
	}
}

// sendRow is one transport flavor's per-send cost.
type sendRow struct {
	Mode     string  `json:"mode"`
	NsOp     float64 `json:"ns_op"`
	AllocsOp int64   `json:"allocs_op"`
}

// diskRow is the recorded run's on-disk density.
type diskRow struct {
	Nodes      int     `json:"nodes"`
	Steps      int     `json:"steps"`
	Events     int     `json:"events"`
	Bytes      int64   `json:"bytes"`
	BytesPerEv float64 `json:"bytes_per_event"`
	Dropped    int64   `json:"dropped"`
}

// replayRow is the offline auditor's throughput over that run.
type replayRow struct {
	Events    int     `json:"events"`
	LoadMs    float64 `json:"load_ms"`
	AuditMs   float64 `json:"audit_ms"`
	EventsSec float64 `json:"events_per_sec"`
}

type report struct {
	Description string    `json:"description"`
	Machine     string    `json:"machine"`
	Date        string    `json:"date"`
	Sends       []sendRow `json:"sends"`
	MarginalNs  float64   `json:"tap_marginal_ns_per_frame"`
	BudgetNs    float64   `json:"tap_budget_ns"`
	Disk        diskRow   `json:"disk"`
	Replay      replayRow `json:"replay"`
	FloorEvSec  float64   `json:"replay_floor_events_per_sec"`
}

// benchSend times Send on a 2-endpoint loopback, optionally through a
// recorder tap, with a drain goroutine keeping the peer inbox empty so
// the send path never blocks.
func benchSend(tapped bool) (sendRow, error) {
	lnet := wire.NewLoopback(2)
	var tr wire.Transport = lnet.Transport(0)
	peer := lnet.Transport(1)
	var rec *flight.Recorder
	if tapped {
		dir, err := os.MkdirTemp("", "flightbench-")
		if err != nil {
			return sendRow{}, err
		}
		defer os.RemoveAll(dir)
		// A large buffer so the hot path measures the encode+handoff it
		// always pays, not drop-path shortcuts once the writer lags.
		rec, err = flight.Open(flight.Options{Dir: dir, Node: 0, Buffer: 1 << 16})
		if err != nil {
			return sendRow{}, err
		}
		tr = rec.Tap(tr)
	}
	// Drain the peer so sends never block. Loopback Close does not close
	// the inbox channel, so the drain needs its own quit signal.
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-peer.Inbox():
			case <-quit:
				return
			}
		}
	}()
	m := wire.Msg{Kind: wire.FreezeReq, From: 0, Seq: 7, Op: 0x1c0000000001, Load: 41}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := tr.Send(1, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	tr.Close()
	peer.Close()
	close(quit)
	<-done
	if rec != nil {
		if err := rec.Close(); err != nil {
			return sendRow{}, err
		}
	}
	mode := "loopback send"
	if tapped {
		mode = "tapped send"
	}
	return sendRow{Mode: mode, NsOp: float64(res.NsPerOp()), AllocsOp: res.AllocsPerOp()}, nil
}

// recordRun records a full loopback cluster run and returns the
// recording root plus the recorders' drop total.
func recordRun(root string, n, steps int) (int64, error) {
	lnet := wire.NewLoopback(n)
	recs := make([]*flight.Recorder, n)
	transports := make([]wire.Transport, n)
	for i := 0; i < n; i++ {
		rec, err := flight.Open(flight.Options{
			Dir:      filepath.Join(root, fmt.Sprintf("node-%d", i)),
			Node:     i,
			MaxBytes: 64 << 20, // keep the whole run; this measures density, not the ring
			Buffer:   1 << 15,
		})
		if err != nil {
			return 0, err
		}
		recs[i] = rec
		transports[i] = rec.Tap(lnet.Transport(i))
	}
	if _, err := cluster.RunCluster(cluster.ClusterConfig{
		N: n, Delta: 2, F: 2, Steps: steps, Seed: 42, Flight: recs,
	}, transports); err != nil {
		return 0, err
	}
	var dropped int64
	for _, rec := range recs {
		if err := rec.Close(); err != nil {
			return 0, err
		}
		dropped += rec.Dropped()
	}
	return dropped, nil
}

func run(budget, floor float64, steps int, out string) error {
	raw, err := benchSend(false)
	if err != nil {
		return err
	}
	tapped, err := benchSend(true)
	if err != nil {
		return err
	}
	marginal := tapped.NsOp - raw.NsOp

	const nodes = 4
	root, err := os.MkdirTemp("", "flightbench-run-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	dropped, err := recordRun(root, nodes, steps)
	if err != nil {
		return err
	}

	loadStart := time.Now()
	rec, err := flight.LoadTree(root)
	if err != nil {
		return err
	}
	loadMs := time.Since(loadStart).Seconds() * 1e3
	events := 0
	var bytes int64
	for _, nr := range rec.Nodes {
		events += len(nr.Events)
		bytes += nr.Bytes
	}
	disk := diskRow{
		Nodes: nodes, Steps: steps, Events: events, Bytes: bytes,
		BytesPerEv: float64(bytes) / float64(events), Dropped: dropped,
	}

	auditStart := time.Now()
	audit := flight.Audit(rec)
	auditMs := time.Since(auditStart).Seconds() * 1e3
	if audit.First != nil {
		return fmt.Errorf("bench run replayed dirty: %v", *audit.First)
	}
	replay := replayRow{
		Events: events, LoadMs: loadMs, AuditMs: auditMs,
		EventsSec: float64(events) / ((loadMs + auditMs) / 1e3),
	}

	fmt.Println("flight recorder tap cost (2-endpoint loopback):")
	for _, s := range []sendRow{raw, tapped} {
		fmt.Printf("  %-14s %9.1f ns/op %4d allocs/op\n", s.Mode, s.NsOp, s.AllocsOp)
	}
	fmt.Printf("  marginal per frame: %.1f ns (budget %.0f)\n", marginal, budget)
	fmt.Printf("\nrecorded run density (%d nodes, %d steps):\n", nodes, steps)
	fmt.Printf("  %d events, %d bytes on disk, %.1f B/event, %d dropped\n",
		disk.Events, disk.Bytes, disk.BytesPerEv, disk.Dropped)
	fmt.Printf("\noffline replay:\n")
	fmt.Printf("  load %.1f ms + audit %.1f ms over %d events = %.0f events/s (floor %.0f)\n",
		replay.LoadMs, replay.AuditMs, replay.Events, replay.EventsSec, floor)

	if marginal > budget {
		return fmt.Errorf("tap costs %.1f ns marginal per frame, budget %.0f", marginal, budget)
	}
	if replay.EventsSec < floor {
		return fmt.Errorf("replay at %.0f events/s, floor %.0f", replay.EventsSec, floor)
	}

	if out != "" {
		rep := report{
			Description: "Flight recorder cost: marginal ns a transport tap adds per sent frame (encode + buffered-channel handoff; disk I/O is async) vs the raw loopback send, on-disk bytes per recorded event for a real 4-node cluster run, and offline replay throughput (LoadTree + shadow audit). Acceptance: marginal tap cost within budget-ns and replay above replay-floor events/s. make bench-flight",
			Machine:     fmt.Sprintf("%s/%s, %s", runtime.GOOS, runtime.GOARCH, runtime.Version()),
			Date:        time.Now().Format("2006-01-02"),
			Sends:       []sendRow{raw, tapped},
			MarginalNs:  marginal,
			BudgetNs:    budget,
			Disk:        disk,
			Replay:      replay,
			FloorEvSec:  floor,
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
