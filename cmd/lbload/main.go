// Command lbload generates production-shaped client traffic against a
// serving cluster (lbnode -serve-addr) and reports the sojourn-time
// distribution the clients actually observed.
//
// The workload is open loop: job arrivals follow a multi-period
// diurnal rate envelope (nonhomogeneous Poisson, e.g. a quiet phase
// alternating with a rush), each job's service demand is drawn from a
// heavy-tailed bounded-Pareto, and the submission schedule does not
// slow down when the cluster falls behind — exactly the regime where
// queueing delay explodes at a hot node while the cluster as a whole
// has headroom. Arrivals are skewed: with probability -hot-frac a job
// lands on one of the first -hot-n nodes.
//
// Two modes:
//
//   - Driver mode (-targets) submits the schedule to an already-running
//     serving cluster and prints p50/p95/p99 sojourn and throughput:
//
//     lbload -targets 127.0.0.1:7400,127.0.0.1:7401 -rate 800x700ms,1300x300ms -duration 2s
//     lbload -targets ... -trace trace.json -tick 500us   # tracefile replay
//
//   - Bench mode (-bench) self-hosts the comparison CI cares about:
//     the same workload against a no-balancing control cluster, a
//     balanced free-running one, and a balanced adaptively-paced one,
//     all over real TCP. It fails unless every arm conserves packets
//     and jobs AND balancing beats the control on p99 sojourn:
//
//     lbload -bench
//     lbload -bench -out results/BENCH_serve.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"lmbalance/internal/cluster"
	"lmbalance/internal/rng"
	"lmbalance/internal/serve"
	"lmbalance/internal/trace"
	"lmbalance/internal/workload"
)

func main() {
	var (
		targets  = flag.String("targets", "", "driver mode: comma-separated serving addresses (node order)")
		bench    = flag.Bool("bench", false, "bench mode: self-host the balanced vs no-balancing comparison")
		n        = flag.Int("n", 8, "bench mode: cluster size")
		rate     = flag.String("rate", "800x700ms,1300x300ms", "diurnal rate envelope, jobs/s: rate1xdur1,rate2xdur2,...")
		duration = flag.Duration("duration", 2*time.Second, "submission horizon (the envelope cycles to fill it)")
		alpha    = flag.Float64("alpha", 1.5, "bounded-Pareto tail index for service demand")
		lmin     = flag.Float64("lmin", 1, "bounded-Pareto lower bound (units)")
		lmax     = flag.Float64("lmax", 100, "bounded-Pareto upper bound (units)")
		hotFrac  = flag.Float64("hot-frac", 0.7, "fraction of jobs aimed at the hot nodes")
		hotN     = flag.Int("hot-n", 0, "number of hot nodes (0 = n/4, min 1)")
		con      = flag.Float64("con", 1.0, "bench mode: per-step consume probability")
		stepIv   = flag.Duration("step-interval", 200*time.Microsecond, "bench mode: service clock (capacity = con/interval units/s per node)")
		seed     = flag.Uint64("seed", 1993, "workload seed")
		drainTO  = flag.Duration("drain-timeout", 30*time.Second, "how long to wait for outstanding jobs after the last submission")
		traceF   = flag.String("trace", "", "driver mode: replay this tracefile instead of the synthetic workload")
		tick     = flag.Duration("tick", 500*time.Microsecond, "with -trace: wall-clock duration of one trace step")
		jsonOut  = flag.String("json", "", "driver mode: also write the result as JSON to this file")
		out      = flag.String("out", "", "bench mode: also write the measurements as JSON to this file")
	)
	flag.Parse()
	o := opts{
		targets: *targets, bench: *bench, n: *n, rate: *rate, duration: *duration,
		alpha: *alpha, lmin: *lmin, lmax: *lmax, hotFrac: *hotFrac, hotN: *hotN,
		con: *con, stepIv: *stepIv, seed: *seed, drainTO: *drainTO,
		traceF: *traceF, tick: *tick, jsonOut: *jsonOut, out: *out,
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "lbload:", err)
		os.Exit(1)
	}
}

type opts struct {
	targets      string
	bench        bool
	n            int
	rate         string
	duration     time.Duration
	alpha        float64
	lmin, lmax   float64
	hotFrac      float64
	hotN         int
	con          float64
	stepIv       time.Duration
	seed         uint64
	drainTO      time.Duration
	traceF       string
	tick         time.Duration
	jsonOut, out string
}

func run(o opts) error {
	switch {
	case o.bench:
		return runBench(o)
	case o.targets != "":
		return runDrive(o)
	default:
		return fmt.Errorf("need -targets (driver mode) or -bench")
	}
}

// schedule builds the arrival schedule: tracefile replay with -trace,
// synthetic envelope + Pareto otherwise.
func (o opts) schedule() ([]workload.Arrival, workload.RateEnvelope, workload.BoundedPareto, error) {
	demand := workload.BoundedPareto{Alpha: o.alpha, Lo: o.lmin, Hi: o.lmax}
	if o.traceF != "" {
		f, err := os.Open(o.traceF)
		if err != nil {
			return nil, nil, demand, err
		}
		defer f.Close()
		tr, err := workload.ReadTrace(f)
		if err != nil {
			return nil, nil, demand, fmt.Errorf("%s: %w", o.traceF, err)
		}
		arrivals, err := workload.TraceArrivals(tr, o.tick)
		return arrivals, nil, demand, err
	}
	env, err := workload.ParseEnvelope(o.rate)
	if err != nil {
		return nil, nil, demand, fmt.Errorf("-rate: %w", err)
	}
	spec := workload.ArrivalSpec{Env: env, Demand: demand, Horizon: o.duration}
	arrivals, err := spec.Schedule(rng.New(o.seed))
	return arrivals, env, demand, err
}

func (o opts) loadSpec(n int) serve.LoadSpec {
	hot := o.hotN
	if hot <= 0 {
		hot = n / 4
		if hot < 1 {
			hot = 1
		}
	}
	return serve.LoadSpec{HotFrac: o.hotFrac, HotN: hot}
}

// driveReport is driver mode's -json document.
type driveReport struct {
	Targets    []string `json:"targets"`
	Submitted  int64    `json:"submitted"`
	Completed  int64    `json:"completed"`
	P50MS      float64  `json:"p50_ms"`
	P95MS      float64  `json:"p95_ms"`
	P99MS      float64  `json:"p99_ms"`
	JobsPerSec float64  `json:"jobs_per_sec"`
	Seconds    float64  `json:"seconds"`
}

func runDrive(o opts) error {
	var addrs []string
	for _, a := range strings.Split(o.targets, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("-targets lists no addresses")
	}
	arrivals, env, demand, err := o.schedule()
	if err != nil {
		return err
	}
	if env != nil {
		fmt.Printf("workload: %d jobs over %v (envelope %s, demand Pareto α=%g [%g,%g] mean %.2f units)\n",
			len(arrivals), o.duration, env, demand.Alpha, demand.Lo, demand.Hi, demand.Mean())
	} else {
		fmt.Printf("workload: %d jobs replayed from %s at %v/step\n", len(arrivals), o.traceF, o.tick)
	}
	res, err := serve.Drive(addrs, arrivals, o.loadSpec(len(addrs)), o.seed+1, o.drainTO)
	if err != nil {
		return err
	}
	fmt.Printf("submitted %d  completed %d  p50 %.2fms  p95 %.2fms  p99 %.2fms  throughput %.0f jobs/s  elapsed %v\n",
		res.Submitted, res.Completed,
		res.P(0.50)*1e3, res.P(0.95)*1e3, res.P(0.99)*1e3,
		res.Throughput(), res.Elapsed.Round(time.Millisecond))
	if res.Completed < res.Submitted {
		return fmt.Errorf("%d jobs still outstanding after %v", res.Submitted-res.Completed, o.drainTO)
	}
	if o.jsonOut != "" {
		doc := driveReport{
			Targets: addrs, Submitted: res.Submitted, Completed: res.Completed,
			P50MS: res.P(0.50) * 1e3, P95MS: res.P(0.95) * 1e3, P99MS: res.P(0.99) * 1e3,
			JobsPerSec: res.Throughput(), Seconds: res.Elapsed.Seconds(),
		}
		if err := writeJSON(o.jsonOut, doc); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.jsonOut)
	}
	return nil
}

// benchRow is one arm's measurement in bench mode.
type benchRow struct {
	Mode       string  `json:"mode"`
	Submitted  int64   `json:"submitted"`
	Completed  int64   `json:"completed"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	Migrated   int64   `json:"balancing_ops"`
	Spread     int     `json:"final_spread"`
	Seconds    float64 `json:"seconds"`
}

// benchReport is bench mode's -out document.
type benchReport struct {
	Description string     `json:"description"`
	Machine     string     `json:"machine"`
	Date        string     `json:"date"`
	N           int        `json:"n"`
	Envelope    string     `json:"envelope"`
	Alpha       float64    `json:"alpha"`
	HotFrac     float64    `json:"hot_frac"`
	HotN        int        `json:"hot_n"`
	Rows        []benchRow `json:"rows"`
	P99Ratio    float64    `json:"nobalance_p99_over_balanced_p99"`
}

// benchArm is one self-hosted cluster configuration.
type benchArm struct {
	name      string
	noBalance bool
	pace      cluster.PaceMode
}

func runBench(o opts) error {
	if o.traceF != "" {
		return fmt.Errorf("-bench uses the synthetic workload; -trace is driver-mode only")
	}
	arrivals, env, demand, err := o.schedule()
	if err != nil {
		return err
	}
	spec := o.loadSpec(o.n)
	perNode := o.con / o.stepIv.Seconds()
	fmt.Printf("bench: n=%d tcp  service %.0f units/s/node  envelope %s  demand Pareto α=%g [%g,%g] mean %.2f  hot %d/%d@%.0f%%  %d jobs\n",
		o.n, perNode, env, demand.Alpha, demand.Lo, demand.Hi, demand.Mean(),
		spec.HotN, o.n, o.hotFrac*100, len(arrivals))

	arms := []benchArm{
		{name: "none", noBalance: true, pace: cluster.PaceOff},
		{name: "balanced", noBalance: false, pace: cluster.PaceOff},
		{name: "balanced+adaptive", noBalance: false, pace: cluster.PaceAdaptive},
	}
	tb := trace.NewTable(
		fmt.Sprintf("serving SLO bench | n=%d tcp, %s jobs/s, Pareto α=%g, hot %d@%.0f%% | seed=%d",
			o.n, env, demand.Alpha, spec.HotN, o.hotFrac*100, o.seed),
		"mode", "submitted", "completed", "p50 ms", "p95 ms", "p99 ms", "jobs/s", "ops", "spread", "seconds")
	var rows []benchRow
	for _, arm := range arms {
		sc, err := serve.StartServeCluster(serve.ClusterSpec{
			N: o.n, Delta: 2, F: 1.2,
			ConP: o.con, StepInterval: o.stepIv,
			Seed: o.seed, NoBalance: arm.noBalance, Pace: arm.pace,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", arm.name, err)
		}
		start := time.Now()
		res, err := serve.Drive(sc.Addrs(), arrivals, spec, o.seed+1, o.drainTO)
		if err != nil {
			sc.DrainAndStop(time.Second)
			return fmt.Errorf("%s: %w", arm.name, err)
		}
		cres, stats, err := sc.DrainAndStop(o.drainTO)
		if err != nil {
			return fmt.Errorf("%s: %w", arm.name, err)
		}
		secs := time.Since(start).Seconds()
		if !cres.Conserved() {
			return fmt.Errorf("%s: packet conservation violated", arm.name)
		}
		if !cres.JobsConserved() {
			return fmt.Errorf("%s: job conservation violated (ingested %d, done %d, held %d)",
				arm.name, cres.Ingested(), cres.UnitsDone(), cres.RecordsHeld())
		}
		if stats.UnitsCompleted != stats.UnitsAccepted {
			return fmt.Errorf("%s: %d units still outstanding after drain",
				arm.name, stats.UnitsAccepted-stats.UnitsCompleted)
		}
		if res.Completed < res.Submitted {
			return fmt.Errorf("%s: %d jobs never completed", arm.name, res.Submitted-res.Completed)
		}
		r := benchRow{
			Mode: arm.name, Submitted: res.Submitted, Completed: res.Completed,
			P50MS: res.P(0.50) * 1e3, P95MS: res.P(0.95) * 1e3, P99MS: res.P(0.99) * 1e3,
			JobsPerSec: res.Throughput(), Migrated: cres.Completed(),
			Spread: cres.Spread(), Seconds: secs,
		}
		rows = append(rows, r)
		tb.AddRow(r.Mode, r.Submitted, r.Completed,
			fmt.Sprintf("%.2f", r.P50MS), fmt.Sprintf("%.2f", r.P95MS), fmt.Sprintf("%.2f", r.P99MS),
			fmt.Sprintf("%.0f", r.JobsPerSec), r.Migrated, r.Spread, fmt.Sprintf("%.2f", r.Seconds))
	}
	if err := tb.WriteText(os.Stdout); err != nil {
		return err
	}

	none, adaptive := rows[0], rows[2]
	ratio := 0.0
	if adaptive.P99MS > 0 {
		ratio = none.P99MS / adaptive.P99MS
	}
	if adaptive.P99MS >= none.P99MS {
		return fmt.Errorf("balancing did not beat the no-balancing p99: %.2fms vs %.2fms", adaptive.P99MS, none.P99MS)
	}
	fmt.Printf("\nbalanced p99 %.2fms vs no-balancing %.2fms (%.1f× better); balanced p50 %.2fms vs %.2fms\n",
		adaptive.P99MS, none.P99MS, ratio, adaptive.P50MS, none.P50MS)

	if o.out != "" {
		doc := benchReport{
			Description: "Sojourn-time SLO under a skewed open-loop serving workload on real TCP sockets: the same diurnal Pareto traffic against a no-balancing control, a free-running balanced cluster, and an adaptively paced one. The run fails before reporting unless every arm conserves packets and jobs and balancing beats the control on p99 sojourn. go run ./cmd/lbload -bench -out results/BENCH_serve.json",
			Machine:     fmt.Sprintf("%s/%s, %d CPU, %s", runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version()),
			Date:        time.Now().Format("2006-01-02"),
			N:           o.n, Envelope: env.String(), Alpha: o.alpha,
			HotFrac: o.hotFrac, HotN: spec.HotN,
			Rows: rows, P99Ratio: ratio,
		}
		if err := writeJSON(o.out, doc); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", o.out)
	}
	return nil
}

func writeJSON(path string, doc any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
