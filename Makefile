GO ?= go

.PHONY: check race bench fuzz experiments

# Tier-1 gate: everything must pass before a change lands.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/pool ./internal/netsim

# Race-detector pass over the concurrent packages and the core they drive.
race:
	$(GO) test -race ./internal/pool ./internal/sim ./internal/core ./internal/netsim

# Microbenchmarks for the sparse core (see results/BENCH_sparse.json).
bench:
	$(GO) test . -run xxx -bench 'BenchmarkBalanceOp|BenchmarkGenerateConsume|BenchmarkNewSystem' -benchmem

# Short fuzz pass over the op-sequence fuzzer.
fuzz:
	$(GO) test ./internal/core/ -run xxx -fuzz FuzzOpSequence -fuzztime 30s

# Full experiment sweep (slow); see EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/paperfigs -full -out results
