GO ?= go

.PHONY: check race bench bench-obs bench-wire bench-shard bench-pace bench-serve bench-journey bench-flight fuzz experiments

# Tier-1 gate: everything must pass before a change lands.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/pool ./internal/sim ./internal/netsim ./internal/wire ./internal/cluster ./internal/obs ./internal/serve ./internal/flight ./cmd/lbnode

# Race-detector pass over the concurrent packages and the core they drive.
race:
	$(GO) test -race ./internal/pool ./internal/sim ./internal/core ./internal/netsim ./internal/wire ./internal/cluster ./internal/obs ./internal/serve ./internal/flight ./cmd/lbnode

# Microbenchmarks for the sparse core (see results/BENCH_sparse.json).
bench:
	$(GO) test . -run xxx -bench 'BenchmarkBalanceOp|BenchmarkGenerateConsume|BenchmarkNewSystem' -benchmem

# Instrumentation overhead microbenchmarks (see results/BENCH_obs.json):
# the disabled path must stay ≤2 ns/op with zero allocations.
bench-obs:
	$(GO) test ./internal/obs/ -run xxx -bench 'BenchmarkObs' -benchmem

# Wire codec microbenchmarks: v2 (op ids) encode/decode vs the v1
# framing, plus frame reads (see results/BENCH_wire.json). The Op field
# must cost ≤1 byte on v1-shaped messages (TestOpFieldOverhead).
bench-wire:
	$(GO) test ./internal/wire/ -run xxx -bench 'BenchmarkWire' -benchmem

# Sharded-engine within-run scaling: proc-steps/sec vs worker count on
# the identical (seed, shards) simulation, with cross-worker bit-identity
# asserted. The checked-in results/BENCH_shard.json was captured with
# -sizes 65536,1000000; the CI pass keeps to the CI-sized sweep.
bench-shard:
	$(GO) run ./cmd/shardbench -sizes 65536

# Initiation pacing on real TCP sockets at the pathological size
# (n=16, hot-quarter): completion rate and msgs per completed op under
# off / fixed / adaptive AIMD pacing. Fails unless conservation holds
# and adaptive beats free-running. The checked-in results/BENCH_pace.json
# was captured with -out results/BENCH_pace.json.
bench-pace:
	$(GO) run ./cmd/pacebench

# Serving-path SLO on real TCP sockets: the same skewed open-loop
# workload (diurnal envelope, bounded-Pareto demands, hot nodes) against
# a no-balancing control, free-running balancing, and adaptive pacing.
# Fails unless every arm conserves packets and jobs and balancing beats
# the control on p99 sojourn. The checked-in results/BENCH_serve.json
# was captured with -out results/BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/lbload -bench

# Journey tracing + health-monitor cost: stamped vs unstamped job-record
# frame bytes under codec v3, and the monitor's metrics-only poll vs the
# full aggregator scrape. Fails if a stamped record exceeds 32 marginal
# bytes or the metrics-only poll is not cheaper. The checked-in
# results/BENCH_journey.json was captured with -out.
bench-journey:
	$(GO) run ./cmd/journeybench

# Flight recorder cost: marginal per-frame tap overhead vs the raw
# loopback send, on-disk bytes per recorded event, and offline replay
# throughput (load + shadow audit). Fails if the tap exceeds its ns
# budget or replay drops under the events/s floor. The checked-in
# results/BENCH_flight.json was captured with -out.
bench-flight:
	$(GO) run ./cmd/flightbench

# Short fuzz passes: the core op-sequence fuzzer and the wire codec.
fuzz:
	$(GO) test ./internal/core/ -run xxx -fuzz FuzzOpSequence -fuzztime 30s
	$(GO) test ./internal/wire/ -run xxx -fuzz FuzzWireRoundTrip -fuzztime 30s

# Full experiment sweep (slow); see EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/paperfigs -full -out results
