// Package lmbalance is a Go implementation of the dynamic distributed
// load balancing algorithm of Lüling and Monien (SPAA 1993), "A Dynamic
// Distributed Load Balancing Algorithm with Provable Good Performance",
// together with the simulator, theory and experiment harness that
// reproduce the paper's analysis and evaluation.
//
// The package is a thin facade over the implementation packages:
//
//   - System (internal/core) — the packet-level algorithm with virtual
//     load classes and borrowing, driven step-by-step.
//   - Pool (internal/pool) — the concurrent realization: a task pool whose
//     workers balance their queues with the paper's factor-f trigger.
//     This is the API a downstream application adopts.
//   - Simulate (internal/sim) — the discrete-time experiment engine.
//   - FIX, FixLimit, OperatorG… (internal/theory) — the closed forms.
//
// # Quick start
//
//	p, _ := lmbalance.NewPool(lmbalance.PoolConfig{Workers: 8, F: 1.2, Delta: 1})
//	defer p.Close()
//	p.Submit(func(w *lmbalance.Worker) { /* work; w.Submit(...) to spawn */ })
//	p.Wait()
//
// See examples/ for runnable programs and cmd/paperfigs for the full
// reproduction of the paper's tables and figures.
package lmbalance

import (
	"lmbalance/internal/cluster"
	"lmbalance/internal/core"
	"lmbalance/internal/netsim"
	"lmbalance/internal/obs"
	"lmbalance/internal/pool"
	"lmbalance/internal/rng"
	"lmbalance/internal/sim"
	"lmbalance/internal/theory"
	"lmbalance/internal/topology"
	"lmbalance/internal/wire"
	"lmbalance/internal/workload"
)

// Params are the algorithm's tunables: trigger factor F, neighborhood size
// Delta, borrow capacity C. See core.Params for the full documentation.
type Params = core.Params

// Metrics are the activity counters of a System, including the four
// Table-1 statistics.
type Metrics = core.Metrics

// System is the packet-level algorithm state for n processors.
type System = core.System

// DefaultParams returns the paper's Table 1 configuration
// (f=1.1, δ=1, C=4).
func DefaultParams() Params { return core.DefaultParams() }

// NewSystem creates a System with the paper's uniform random candidate
// selection, seeded deterministically.
func NewSystem(n int, p Params, seed uint64) (*System, error) {
	return core.NewSystem(n, p, topology.NewGlobal(n), rng.New(seed))
}

// PoolConfig configures the concurrent task pool.
type PoolConfig = pool.Config

// Pool is the concurrent Lüling–Monien task pool.
type Pool = pool.Pool

// Worker is the execution context tasks receive; subtasks submitted
// through it enter the local queue.
type Worker = pool.Worker

// Task is a unit of work for the Pool.
type Task = pool.Task

// PoolStats snapshots pool activity.
type PoolStats = pool.Stats

// NewPool creates and starts a concurrent pool.
func NewPool(cfg PoolConfig) (*Pool, error) { return pool.New(cfg) }

// PriorityPool is the best-first variant of the pool: workers execute
// their most promising task first and balancing deals the merged tasks
// out in priority order — the regime of the paper's distributed branch &
// bound systems.
type PriorityPool = pool.PriorityPool

// PriorityTask is a unit of work with a priority (lower runs first).
type PriorityTask = pool.PriorityTask

// PriorityWorker is the execution context of priority tasks.
type PriorityWorker = pool.PriorityWorker

// NewPriorityPool creates and starts a best-first pool.
func NewPriorityPool(cfg PoolConfig) (*PriorityPool, error) { return pool.NewPriority(cfg) }

// NetworkConfig configures the share-nothing, message-passing realization
// (one goroutine per processor, balancing via a freeze/ack/transfer
// protocol over channels).
type NetworkConfig = netsim.Config

// NetworkResult is the outcome of a message-passing run.
type NetworkResult = netsim.Result

// RunNetwork executes the message-passing simulation and blocks until the
// network quiesces.
func RunNetwork(cfg NetworkConfig) (*NetworkResult, error) { return netsim.Run(cfg) }

// NodeConfig configures one node of the wire-level cluster runtime
// (internal/cluster): the balancing protocol over a real Transport,
// with node 0 coordinating the two-phase quiescent shutdown.
type NodeConfig = cluster.Config

// ClusterNode is a running wire-level cluster node.
type ClusterNode = cluster.Node

// NodeReport is the outcome of one node's run; the coordinator's
// includes the cluster-wide conservation summary.
type NodeReport = cluster.Report

// NodeStats is one cluster node's activity summary, including wire
// bytes sent and received.
type NodeStats = cluster.Stats

// Transport moves protocol messages between cluster nodes. The package
// ships an in-memory loopback (NewLoopback) and TCP (ListenNode);
// embedders may provide their own.
type Transport = wire.Transport

// WireMsg is one protocol message as carried by a Transport.
type WireMsg = wire.Msg

// LoopbackNet is the in-memory Transport fabric for in-process
// clusters; every message still round-trips the wire codec.
type LoopbackNet = wire.LoopbackNet

// NewLoopback builds an n-endpoint in-memory network; endpoint i is
// node i's Transport.
func NewLoopback(n int) *LoopbackNet { return wire.NewLoopback(n) }

// ListenNode opens node id's TCP transport listening on addr, with
// peers mapping every other node id to its dialable address.
func ListenNode(id int, addr string, peers map[int]string) (Transport, error) {
	return wire.ListenTCP(id, addr, peers)
}

// StartNode launches a wire-level cluster node; Wait on the returned
// node blocks until the cluster's quiescent shutdown retires it.
func StartNode(cfg NodeConfig) (*ClusterNode, error) {
	n, err := cluster.New(cfg)
	if err != nil {
		return nil, err
	}
	n.Start()
	return n, nil
}

// Registry collects live metrics (atomic counters, gauges, fixed-bucket
// histograms) and an optional event tracer. A nil *Registry is a valid
// no-op sink: instrumented components accept one in their configs
// (NodeConfig.Obs, NetworkConfig.Obs, Pool.RegisterMetrics) and pay
// ~1 ns per disabled metric operation.
type Registry = obs.Registry

// DebugServer serves a Registry over HTTP: /metrics (Prometheus text),
// /debug/vars (expvar JSON), /trace (JSONL events), /healthz, and
// net/http/pprof under /debug/pprof/.
type DebugServer = obs.DebugServer

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// ServeDebug starts a debug HTTP server for reg on addr (host:0 picks a
// free port; see DebugServer.URL). Close releases the listener.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	return obs.ServeDebug(addr, reg)
}

// AggView is a merged cluster view: metrics summed across nodes, the
// per-node load distribution, and balancing-operation traces stitched
// across processes by op id.
type AggView = obs.AggView

// Aggregate scrapes the debug endpoints (/metrics, /series, /trace) of
// every URL in parallel and merges them into one cluster view.
func Aggregate(urls []string) (*AggView, error) { return obs.Aggregate(urls) }

// ServeAggregator serves a live merged view of the upstream debug
// endpoints (/cluster, /metrics, /series, /trace, /healthz), scraping
// the upstreams on every request.
func ServeAggregator(addr string, urls []string) (*DebugServer, error) {
	return obs.ServeAggregator(addr, urls)
}

// SimConfig configures a discrete-time simulation (see internal/sim).
type SimConfig = sim.Config

// SimResult aggregates simulation observables over runs.
type SimResult = sim.Result

// Simulate runs a simulation configuration.
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// SimulatePaper runs the paper's §7 benchmark (64 processors, 500 steps,
// random phase workload) with the given parameters, runs and seed.
func SimulatePaper(params Params, runs int, seed uint64) (*SimResult, error) {
	return sim.Run(sim.LMConfig(64, 500, runs, params, workload.PaperBounds(), seed))
}

// FIX returns the Theorem 1 fixed-point bound FIX(n, δ, f) on the
// expected-load ratio between the generating processor and any other.
func FIX(n, delta int, f float64) float64 { return theory.FIX(n, delta, f) }

// FixLimit returns the network-size-independent Theorem 2 bound
// δ/(δ+1−f).
func FixLimit(delta int, f float64) float64 { return theory.FixLimit(delta, f) }

// OperatorG applies the §3 increase operator G once to ratio k.
func OperatorG(n, delta int, f, k float64) float64 { return theory.G(n, delta, f, k) }

// OperatorC applies the §3 decrease operator C once to ratio k.
func OperatorC(n, delta int, f, k float64) float64 { return theory.C(n, delta, f, k) }

// Theorem4Bound returns the full-model guarantee factor f²·δ/(δ+1−f) of
// Theorem 4.
func Theorem4Bound(delta int, f float64) float64 { return theory.Theorem4Bound(delta, f) }
