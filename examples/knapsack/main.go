// Knapsack: solve 0/1 knapsack instances with best-first branch & bound
// on the priority task pool — a maximization counterpart to the TSP
// example, showing the pool is application-agnostic.
//
//	go run ./examples/knapsack
package main

import (
	"fmt"
	"log"
	"time"

	"lmbalance/internal/knapsack"
	"lmbalance/internal/pool"
	"lmbalance/internal/rng"
)

func main() {
	// Strongly correlated instances (v = w + 100) have near-identical
	// value densities, defeating the fractional bound — the hard family.
	const items = 40
	ins := knapsack.HardInstance(items, rng.New(21))

	t0 := time.Now()
	seq := knapsack.SolveSequential(ins)
	fmt.Printf("sequential B&B: optimum %d (%d nodes, %v)\n",
		seq.Value, seq.Nodes, time.Since(t0))

	p, err := pool.NewPriority(pool.Config{Workers: 8, F: 1.2, Delta: 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	t0 = time.Now()
	par := knapsack.SolveBestFirst(ins, p, 7)
	fmt.Printf("best-first pool: optimum %d (%d nodes, %v)\n",
		par.Value, par.Nodes, time.Since(t0))
	if par.Value != seq.Value {
		log.Fatalf("parallel %d differs from sequential %d", par.Value, seq.Value)
	}

	s := p.Stats()
	fmt.Printf("pool: %d subproblems, %d balancing operations, %d migrated\n",
		s.Submitted, s.Balances, s.Migrated)
	packed := 0
	for _, take := range par.Taken {
		if take {
			packed++
		}
	}
	fmt.Printf("optimal packing uses %d of %d items, value %d\n",
		packed, items, par.Value)
}
