// Quickstart: drive the Lüling–Monien balancer directly and watch a
// hotspot's load spread across the machine.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lmbalance"
)

func main() {
	// 16 processors, the paper's default parameters (f=1.1, δ=1, C=4).
	sys, err := lmbalance.NewSystem(16, lmbalance.DefaultParams(), 42)
	if err != nil {
		log.Fatal(err)
	}

	// Processor 0 generates 1000 packets; nobody else produces anything.
	// Every generation may trigger a balancing operation when processor
	// 0's self-generated load has grown by the factor f.
	for i := 0; i < 1000; i++ {
		sys.Generate(0)
	}

	fmt.Println("loads after 1000 generations on processor 0:")
	for i := 0; i < sys.N(); i++ {
		fmt.Printf("  proc %2d: %4d packets\n", i, sys.Load(i))
	}

	// Theorem 2 predicts the generator exceeds the others by at most
	// δ/(δ+1−f) in expectation (times f between balancing operations).
	avgOther := 0.0
	for i := 1; i < sys.N(); i++ {
		avgOther += float64(sys.Load(i))
	}
	avgOther /= float64(sys.N() - 1)
	fmt.Printf("\ngenerator/other ratio: %.3f (Theorem 2 bound δ/(δ+1−f) = %.3f)\n",
		float64(sys.Load(0))/avgOther, lmbalance.FixLimit(1, 1.1))

	m := sys.Metrics()
	fmt.Printf("balancing operations: %d, packets migrated: %d\n",
		m.BalanceOps, m.Migrations)

	// Now consume everything from a different processor: borrowing kicks
	// in once processor 5 runs out of self-generated packets (it has
	// none), and the debt is settled with the owning class.
	consumed := 0
	for sys.Load(5) > 0 {
		if !sys.Consume(5) {
			break
		}
		consumed++
	}
	m = sys.Metrics()
	fmt.Printf("\nprocessor 5 consumed %d packets; borrows %d, remote settlements %d\n",
		consumed, m.TotalBorrow, m.RemoteBorrow)
	if err := sys.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("invariants hold.")
}
