// Concurrent: use the Lüling–Monien task pool as a general-purpose
// dynamic load balancer for an irregular, recursively generated workload,
// and compare its work distribution against a classic random
// work-stealing pool.
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"lmbalance/internal/pool"
)

// work simulates an irregular task: a short burst of CPU.
func work(units int) uint64 {
	var x uint64 = 2463534242
	for i := 0; i < units*400; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

func main() {
	const workers = 8

	// An irregular tree: every task spawns 0-3 children depending on its
	// position, so the load is impossible to partition statically.
	fanOf := func(depth, k int) int {
		switch (depth + k) % 4 {
		case 0:
			return 1
		case 1, 2:
			return 2
		default:
			return 3
		}
	}
	var executed atomic.Int64
	var spawnLM func(depth, fan int) pool.Task
	spawnLM = func(depth, fan int) pool.Task {
		return func(w *pool.Worker) {
			work(60 + 4*depth)
			executed.Add(1)
			if depth > 0 {
				for k := 0; k < fan; k++ {
					w.Submit(spawnLM(depth-1, fanOf(depth, k)))
				}
			}
		}
	}

	lm, err := pool.New(pool.Config{Workers: workers, F: 1.2, Delta: 1, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	lm.Submit(spawnLM(13, 3))
	lm.Wait()
	lmDur := time.Since(t0)
	lmStats := lm.Stats()
	lm.Close()

	var executedWS atomic.Int64
	var spawnWS func(depth, fan int) pool.StealTask
	spawnWS = func(depth, fan int) pool.StealTask {
		return func(r *pool.StealWorkerRef) {
			work(60 + 4*depth)
			executedWS.Add(1)
			if depth > 0 {
				for k := 0; k < fan; k++ {
					r.Submit(spawnWS(depth-1, fanOf(depth, k)))
				}
			}
		}
	}
	ws, err := pool.NewStealing(workers, 9, 0)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	ws.Submit(spawnWS(13, 3))
	ws.Wait()
	wsDur := time.Since(t0)
	wsStats := ws.Stats()
	ws.Close()

	fmt.Printf("irregular task tree, %d workers\n\n", workers)
	fmt.Printf("%-18s %8s %10s %10s %10s  %s\n", "pool", "tasks", "time", "balances", "migrated", "executed per worker")
	fmt.Printf("%-18s %8d %10v %10d %10d  %v (spread %d)\n",
		"Lüling–Monien", lmStats.Submitted, lmDur.Round(time.Millisecond),
		lmStats.Balances, lmStats.Migrated, lmStats.Executed, lmStats.Spread())
	fmt.Printf("%-18s %8d %10v %10d %10d  %v (spread %d)\n",
		"work stealing", wsStats.Submitted, wsDur.Round(time.Millisecond),
		wsStats.Balances, wsStats.Migrated, wsStats.Executed, wsStats.Spread())
	if executed.Load() != executedWS.Load() {
		log.Fatalf("pools executed different task counts: %d vs %d",
			executed.Load(), executedWS.Load())
	}
	fmt.Printf("\nboth pools executed all %d tasks exactly once.\n", executed.Load())
}
