// Branch & bound: solve a traveling salesman instance on the concurrent
// Lüling–Monien task pool — the application class (distributed best-first
// branch & bound) the paper's algorithm was built for.
//
//	go run ./examples/branchandbound
package main

import (
	"fmt"
	"log"
	"time"

	"lmbalance/internal/bnb"
	"lmbalance/internal/pool"
	"lmbalance/internal/rng"
)

func main() {
	const cities = 13
	ins := bnb.RandomInstance(cities, rng.New(7))

	greedyTour, greedyCost := ins.GreedyTour()
	fmt.Printf("%d random cities; nearest-neighbor tour costs %d\n", cities, greedyCost)
	_ = greedyTour

	t0 := time.Now()
	seq := bnb.SolveSequential(ins)
	fmt.Printf("sequential B&B: optimum %d (%d nodes, %v)\n",
		seq.Cost, seq.Nodes, time.Since(t0))

	p, err := pool.New(pool.Config{Workers: 8, F: 1.2, Delta: 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	t0 = time.Now()
	par := bnb.SolveParallel(ins, p, 3)
	fmt.Printf("parallel B&B:   optimum %d (%d nodes, %v)\n",
		par.Cost, par.Nodes, time.Since(t0))
	if par.Cost != seq.Cost {
		log.Fatalf("parallel result %d differs from sequential %d", par.Cost, seq.Cost)
	}

	s := p.Stats()
	fmt.Printf("pool: %d subproblems as tasks, %d balancing operations, %d migrated\n",
		s.Submitted, s.Balances, s.Migrated)
	fmt.Printf("tasks executed per worker: %v (spread %d)\n", s.Executed, s.Spread())
	fmt.Printf("optimal tour: %v\n", par.Tour)
}
