// Phases: reproduce the paper's §7 experiment interactively — the
// synthetic phase workload on 64 processors — and compare two parameter
// sets side by side, including the Table 1 borrowing counters.
//
//	go run ./examples/phases
package main

import (
	"fmt"
	"log"

	"lmbalance"
)

func main() {
	configs := []lmbalance.Params{
		{F: 1.1, Delta: 1, C: 4},
		{F: 1.1, Delta: 4, C: 4},
		{F: 1.8, Delta: 1, C: 4},
	}
	const runs = 10

	fmt.Println("paper §7 workload: 64 processors, 500 steps,")
	fmt.Println("g∈[0.1,0.9], c∈[0.1,0.7], phase length∈[150,400], averaged over", runs, "runs")
	fmt.Println()
	fmt.Printf("%-22s %10s %10s %12s %12s\n", "params", "avg load", "spread", "balances/run", "borrows/run")
	for _, p := range configs {
		res, err := lmbalance.SimulatePaper(p, runs, 2024)
		if err != nil {
			log.Fatal(err)
		}
		last := res.Avg.Len() - 1
		m := res.CoreMetrics.Scale(runs)
		fmt.Printf("f=%-4g δ=%d C=%-2d        %10.1f %10.1f %12.1f %12.2f\n",
			p.F, p.Delta, p.C,
			res.Avg.At(last).Mean(),
			res.Spread.At(last).Mean(),
			m.BalanceOps, m.TotalBorrow)
	}
	fmt.Println()
	fmt.Println("observations (matching the paper):")
	fmt.Println("  - larger δ tightens the spread dramatically,")
	fmt.Println("  - smaller f tightens it further at the cost of more balancing,")
	fmt.Println("  - borrowing activity is rare relative to 32000 processor-steps.")
}
