// Distributed: run the share-nothing, message-passing realization of the
// algorithm — every processor is a goroutine, every balancing operation a
// freeze/ack/transfer protocol over channels — and inspect the
// communication cost.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"lmbalance/internal/netsim"
)

func main() {
	const n = 32

	// Heterogeneous workload: the first quarter of the nodes are heavy
	// producers, the rest mostly consume.
	gen := make([]float64, n)
	con := make([]float64, n)
	for i := range gen {
		if i < n/4 {
			gen[i], con[i] = 0.9, 0.1
		} else {
			gen[i], con[i] = 0.1, 0.3
		}
	}

	for _, delta := range []int{1, 4} {
		res, err := netsim.Run(netsim.Config{
			N: n, Delta: delta, F: 1.2, Steps: 5000,
			GenP: gen, ConP: con, Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		var initiated, completed, aborted int64
		for _, nd := range res.Nodes {
			initiated += nd.Initiated
			completed += nd.Completed
			aborted += nd.Aborted
		}
		fmt.Printf("δ=%d: total load %d, final spread %d\n",
			delta, res.TotalLoad(), res.Spread())
		fmt.Printf("      %d protocols (%d completed, %d aborted), %d messages (%.1f per completed op)\n",
			initiated, completed, aborted, res.Messages(),
			float64(res.Messages())/float64(completed))
		fmt.Printf("      producer load %d vs consumer load %d\n\n",
			res.Nodes[0].FinalLoad, res.Nodes[n-1].FinalLoad)
	}
	fmt.Println("every packet accounted for; no shared memory was used.")
}
