package lmbalance_test

import (
	"fmt"

	"lmbalance"
)

// ExampleNewSystem drives the packet-level balancer directly: one
// processor produces, the factor-f trigger spreads the load.
func ExampleNewSystem() {
	sys, err := lmbalance.NewSystem(8, lmbalance.DefaultParams(), 42)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 800; i++ {
		sys.Generate(0)
	}
	// Theorem 2: the generator exceeds any other processor by at most
	// δ/(δ+1−f) in expectation (×f between balancing operations).
	fmt.Println("total:", sys.TotalLoad())
	fmt.Println("bound:", sys.Load(0) < 3*sys.Load(4))
	// Output:
	// total: 800
	// bound: true
}

// ExampleNewPool runs dynamically generated tasks on the concurrent pool.
func ExampleNewPool() {
	p, err := lmbalance.NewPool(lmbalance.PoolConfig{Workers: 4, F: 1.2, Delta: 1, Seed: 7})
	if err != nil {
		panic(err)
	}
	defer p.Close()
	results := make(chan int, 3)
	p.Submit(func(w *lmbalance.Worker) {
		// Tasks can spawn subtasks into the local queue.
		w.Submit(func(w *lmbalance.Worker) { results <- 2 })
		w.Submit(func(w *lmbalance.Worker) { results <- 3 })
		results <- 1
	})
	p.Wait()
	sum := 0
	for i := 0; i < 3; i++ {
		sum += <-results
	}
	fmt.Println("sum:", sum)
	// Output:
	// sum: 6
}

// ExampleFIX evaluates the paper's closed forms.
func ExampleFIX() {
	fix := lmbalance.FIX(64, 1, 1.1)
	limit := lmbalance.FixLimit(1, 1.1)
	fmt.Printf("FIX(64,1,1.1) = %.4f <= %.4f\n", fix, limit)
	// Output:
	// FIX(64,1,1.1) = 1.1069 <= 1.1111
}

// ExampleRunNetwork runs the share-nothing message-passing realization.
func ExampleRunNetwork() {
	res, err := lmbalance.RunNetwork(lmbalance.NetworkConfig{
		N: 8, Delta: 1, F: 1.2, Steps: 500,
		GenP: []float64{0.6}, ConP: []float64{0.2}, Seed: 3,
	})
	if err != nil {
		panic(err)
	}
	gen, con := int64(0), int64(0)
	for _, n := range res.Nodes {
		gen += n.Generated
		con += n.Consumed
	}
	fmt.Println("conserved:", int64(res.TotalLoad()) == gen-con)
	// Output:
	// conserved: true
}
