module lmbalance

go 1.22
