package lmbalance

import (
	"sync/atomic"
	"testing"
)

func TestNewSystemFacade(t *testing.T) {
	s, err := NewSystem(8, DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Generate(0)
	}
	if s.TotalLoad() != 100 {
		t.Fatalf("total load %d", s.TotalLoad())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Load has spread beyond the generator.
	if s.Load(0) == 100 {
		t.Fatal("no balancing happened")
	}
}

func TestPoolFacade(t *testing.T) {
	p, err := NewPool(PoolConfig{Workers: 4, F: 1.3, Delta: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		p.Submit(func(w *Worker) { n.Add(1) })
	}
	p.Wait()
	if n.Load() != 100 {
		t.Fatalf("executed %d", n.Load())
	}
	if p.Stats().Submitted != 100 {
		t.Fatal("stats wrong")
	}
}

func TestSimulatePaperFacade(t *testing.T) {
	res, err := SimulatePaper(DefaultParams(), 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 2 || res.Avg.Len() != 500 {
		t.Fatal("unexpected result shape")
	}
}

func TestTheoryFacade(t *testing.T) {
	fix := FIX(64, 1, 1.1)
	if fix <= 1 || fix > FixLimit(1, 1.1) {
		t.Fatalf("FIX = %v outside (1, limit]", fix)
	}
	if g := OperatorG(64, 1, 1.1, fix); g < fix-1e-9 || g > fix+1e-9 {
		t.Fatal("G(FIX) != FIX")
	}
	if c := OperatorC(64, 1, 1.1, 1.0); c >= 1 {
		t.Fatalf("C(1) = %v, want < 1", c)
	}
	want := 1.1 * 1.1 / 0.9
	if got := Theorem4Bound(1, 1.1); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("Theorem4Bound = %v", got)
	}
}

func TestClusterNodeFacade(t *testing.T) {
	// A three-node cluster embedded entirely through the facade: build
	// the loopback fabric, start each node, wait for the quiescent
	// shutdown, and check the coordinator's conservation summary.
	const n = 3
	net := NewLoopback(n)
	nodes := make([]*ClusterNode, n)
	for i := 0; i < n; i++ {
		nd, err := StartNode(NodeConfig{
			ID: i, N: n, Delta: 1, F: 1.2, Steps: 200,
			GenP: 0.5, ConP: 0.4, Seed: 17, Transport: net.Transport(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	var total, gen, con int64
	var summary *NodeReport
	for i, nd := range nodes {
		rep, err := nd.Wait()
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		var s NodeStats = rep.Stats
		total += int64(s.FinalLoad)
		gen += s.Generated
		con += s.Consumed
		if s.BytesSent == 0 {
			t.Fatalf("node %d sent no bytes", i)
		}
		if rep.Summary != nil {
			summary = rep
		}
	}
	if total != gen-con {
		t.Fatalf("conservation violated: held %d, generated %d, consumed %d", total, gen, con)
	}
	if summary == nil || !summary.Summary.Conserved() {
		t.Fatal("coordinator summary missing or inconsistent")
	}
	if _, err := StartNode(NodeConfig{N: 1}); err == nil {
		t.Fatal("invalid node config accepted")
	}
}

func TestAggregateFacade(t *testing.T) {
	// Two "nodes", each a registry behind its own debug server, merged
	// through the facade aggregator: metrics sum by name and the
	// per-node load gauges fold into one distribution.
	urls := make([]string, 2)
	for i := range urls {
		reg := NewRegistry()
		reg.Counter(`cluster_ops_total`).Add(int64(10 * (i + 1)))
		reg.Gauge(`cluster_node_load{node="` + []string{"0", "1"}[i] + `"}`).Set(int64(100 + 20*i))
		srv, err := ServeDebug("127.0.0.1:0", reg)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		urls[i] = srv.URL()
	}
	v, err := Aggregate(urls)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Value("cluster_ops_total"); got != 30 {
		t.Fatalf("summed counter = %v, want 30", got)
	}
	n, mean, _, _ := v.Dist("cluster_node_load")
	if n != 2 || mean != 110 {
		t.Fatalf("load distribution n=%d mean=%v, want n=2 mean=110", n, mean)
	}
	agg, err := ServeAggregator("127.0.0.1:0", urls)
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	if agg.URL() == "" {
		t.Fatal("aggregator has no URL")
	}
}
