// Package knapsack implements 0/1 knapsack branch & bound — the second
// application of the task-pool API, exercising a maximization search with
// a fractional-relaxation bound (where TSP in internal/bnb exercises a
// minimization with an edge bound). Together they demonstrate that the
// Lüling–Monien pool is application-agnostic, as the paper claims for the
// algorithmic principle.
package knapsack

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"lmbalance/internal/pool"
	"lmbalance/internal/rng"
)

// Instance is a 0/1 knapsack instance. Items are stored sorted by value
// density (value/weight, descending), which the bound requires.
type Instance struct {
	Values   []int64
	Weights  []int64
	Capacity int64
	// perm[i] is the original index of sorted item i, so solutions can be
	// reported in the caller's order.
	perm []int
}

// NewInstance builds an instance from parallel value/weight slices.
// All weights and values must be positive and capacity non-negative.
func NewInstance(values, weights []int64, capacity int64) (*Instance, error) {
	if len(values) != len(weights) {
		return nil, fmt.Errorf("knapsack: %d values vs %d weights", len(values), len(weights))
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("knapsack: empty instance")
	}
	if capacity < 0 {
		return nil, fmt.Errorf("knapsack: negative capacity")
	}
	for i := range values {
		if values[i] <= 0 || weights[i] <= 0 {
			return nil, fmt.Errorf("knapsack: non-positive item %d", i)
		}
	}
	n := len(values)
	ins := &Instance{
		Values:   make([]int64, n),
		Weights:  make([]int64, n),
		Capacity: capacity,
		perm:     make([]int, n),
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		// densities v[a]/w[a] > v[b]/w[b] without division
		return values[idx[a]]*weights[idx[b]] > values[idx[b]]*weights[idx[a]]
	})
	for i, o := range idx {
		ins.Values[i] = values[o]
		ins.Weights[i] = weights[o]
		ins.perm[i] = o
	}
	return ins, nil
}

// RandomInstance draws n items with weights in [1,100] and values
// positively correlated with weight (the classic "weakly correlated"
// family), and capacity equal to half the total weight.
func RandomInstance(n int, r *rng.RNG) *Instance {
	if n < 1 {
		panic("knapsack: need at least one item")
	}
	values := make([]int64, n)
	weights := make([]int64, n)
	var totalW int64
	for i := 0; i < n; i++ {
		w := int64(r.IntRange(1, 100))
		v := w + int64(r.IntRange(1, 40)) - 20
		if v < 1 {
			v = 1
		}
		values[i], weights[i] = v, w
		totalW += w
	}
	ins, err := NewInstance(values, weights, totalW/2)
	if err != nil {
		panic(err) // unreachable: inputs constructed valid
	}
	return ins
}

// HardInstance draws the "strongly correlated" family (v = w + k with a
// constant surplus k): near-identical densities defeat the Dantzig bound,
// making these the classic hard instances for knapsack branch & bound.
func HardInstance(n int, r *rng.RNG) *Instance {
	if n < 1 {
		panic("knapsack: need at least one item")
	}
	values := make([]int64, n)
	weights := make([]int64, n)
	var totalW int64
	for i := 0; i < n; i++ {
		w := int64(r.IntRange(1, 1000))
		values[i], weights[i] = w+100, w
		totalW += w
	}
	ins, err := NewInstance(values, weights, totalW/2)
	if err != nil {
		panic(err) // unreachable: inputs constructed valid
	}
	return ins
}

// N returns the number of items.
func (ins *Instance) N() int { return len(ins.Values) }

// upperBound returns the fractional-relaxation bound on the best total
// value achievable from sorted item idx onward, given the value and
// remaining capacity accumulated so far. Items are density-sorted, so
// greedy filling plus a fractional last item is optimal for the
// relaxation (Dantzig bound), stated in integer arithmetic scaled by the
// last item's weight to stay exact.
func (ins *Instance) upperBound(idx int, value, room int64) float64 {
	bound := float64(value)
	for i := idx; i < len(ins.Values); i++ {
		if ins.Weights[i] <= room {
			room -= ins.Weights[i]
			bound += float64(ins.Values[i])
			continue
		}
		bound += float64(ins.Values[i]) * float64(room) / float64(ins.Weights[i])
		break
	}
	return bound
}

// Result is the outcome of a solve. Taken is indexed by the caller's
// original item order.
type Result struct {
	Value int64
	Taken []bool
	Nodes int64
}

// Value reports use int64; incumbents are shared across workers.
type incumbent struct {
	mu    sync.Mutex
	value atomic.Int64
	taken []bool // sorted order
}

func (inc *incumbent) offer(taken []bool, value int64) {
	if value <= inc.value.Load() {
		return
	}
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if value > inc.value.Load() {
		inc.value.Store(value)
		inc.taken = append(inc.taken[:0], taken...)
	}
}

func (inc *incumbent) snapshot() ([]bool, int64) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return append([]bool(nil), inc.taken...), inc.value.Load()
}

// SolveSequential finds the optimal packing by depth-first branch &
// bound with the Dantzig bound.
func SolveSequential(ins *Instance) Result {
	inc := &incumbent{taken: make([]bool, ins.N())}
	var nodes int64
	taken := make([]bool, ins.N())
	seqDFS(ins, inc, &nodes, taken, 0, 0, ins.Capacity)
	return finish(ins, inc, nodes)
}

// finish converts the incumbent (sorted order) into a caller-order Result.
func finish(ins *Instance, inc *incumbent, nodes int64) Result {
	takenSorted, value := inc.snapshot()
	taken := make([]bool, ins.N())
	for i, v := range takenSorted {
		if v {
			taken[ins.perm[i]] = true
		}
	}
	return Result{Value: value, Taken: taken, Nodes: nodes}
}

// seqDFS explores include-first (density order makes inclusion the
// promising branch).
func seqDFS(ins *Instance, inc *incumbent, nodes *int64, taken []bool, idx int, value, room int64) {
	*nodes++
	if idx == ins.N() {
		inc.offer(taken, value)
		return
	}
	if ins.upperBound(idx, value, room) <= float64(inc.value.Load()) {
		return
	}
	if ins.Weights[idx] <= room {
		taken[idx] = true
		seqDFS(ins, inc, nodes, taken, idx+1, value+ins.Values[idx], room-ins.Weights[idx])
		taken[idx] = false
	}
	seqDFS(ins, inc, nodes, taken, idx+1, value, room)
}

// SolveBestFirst solves the instance on the best-first priority pool:
// open subproblems are tasks with priority −upperBound (the pool is a
// min-queue; higher bound = more promising). Subtrees below the first
// spawnDepth item decisions run sequentially inside a task.
func SolveBestFirst(ins *Instance, p *pool.PriorityPool, spawnDepth int) Result {
	if spawnDepth < 1 {
		spawnDepth = 1
	}
	inc := &incumbent{taken: make([]bool, ins.N())}
	var nodes atomic.Int64
	var wg sync.WaitGroup

	var makeTask func(taken []bool, idx int, value, room int64) pool.PriorityTask
	makeTask = func(taken []bool, idx int, value, room int64) pool.PriorityTask {
		bound := ins.upperBound(idx, value, room)
		return pool.PriorityTask{
			// Scale to keep fractional bounds distinct as integers.
			Priority: -int64(bound * 1024),
			Run: func(w *pool.PriorityWorker) {
				defer wg.Done()
				if idx == ins.N() {
					nodes.Add(1)
					inc.offer(taken, value)
					return
				}
				if bound <= float64(inc.value.Load()) {
					nodes.Add(1)
					return
				}
				if idx >= spawnDepth {
					var local int64
					local = 0
					buf := append([]bool(nil), taken...)
					seqDFS(ins, inc, &local, buf, idx, value, room)
					nodes.Add(local)
					return
				}
				nodes.Add(1)
				if ins.Weights[idx] <= room {
					with := append([]bool(nil), taken...)
					with[idx] = true
					wg.Add(1)
					w.Submit(makeTask(with, idx+1, value+ins.Values[idx], room-ins.Weights[idx]))
				}
				without := append([]bool(nil), taken...)
				wg.Add(1)
				w.Submit(makeTask(without, idx+1, value, room))
			},
		}
	}
	wg.Add(1)
	p.Submit(makeTask(make([]bool, ins.N()), 0, 0, ins.Capacity))
	wg.Wait()
	return finish(ins, inc, nodes.Load())
}
