package knapsack

import (
	"testing"

	"lmbalance/internal/pool"
	"lmbalance/internal/rng"
)

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance([]int64{1}, []int64{1, 2}, 5); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewInstance(nil, nil, 5); err == nil {
		t.Fatal("empty instance accepted")
	}
	if _, err := NewInstance([]int64{1}, []int64{1}, -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := NewInstance([]int64{0}, []int64{1}, 5); err == nil {
		t.Fatal("zero value accepted")
	}
	if _, err := NewInstance([]int64{1}, []int64{0}, 5); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestDensitySorting(t *testing.T) {
	ins, err := NewInstance([]int64{10, 30, 20}, []int64{10, 10, 10}, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Sorted by density: 30, 20, 10.
	if ins.Values[0] != 30 || ins.Values[1] != 20 || ins.Values[2] != 10 {
		t.Fatalf("not density-sorted: %v", ins.Values)
	}
	// perm maps sorted back to original positions 1, 2, 0.
	if ins.perm[0] != 1 || ins.perm[1] != 2 || ins.perm[2] != 0 {
		t.Fatalf("perm wrong: %v", ins.perm)
	}
}

func TestSolveKnownInstance(t *testing.T) {
	// Items (v,w): (60,10) (100,20) (120,30), capacity 50 → classic
	// answer 220 (items 2 and 3).
	ins, err := NewInstance([]int64{60, 100, 120}, []int64{10, 20, 30}, 50)
	if err != nil {
		t.Fatal(err)
	}
	res := SolveSequential(ins)
	if res.Value != 220 {
		t.Fatalf("value %d, want 220", res.Value)
	}
	if res.Taken[0] || !res.Taken[1] || !res.Taken[2] {
		t.Fatalf("taken %v, want [false true true]", res.Taken)
	}
}

func TestTakenRespectsCapacityAndValue(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		ins := RandomInstance(16, r)
		res := SolveSequential(ins)
		var value, weight int64
		for i, take := range res.Taken {
			if take {
				// Map back to sorted arrays to check: find sorted position.
				for s, o := range ins.perm {
					if o == i {
						value += ins.Values[s]
						weight += ins.Weights[s]
					}
				}
			}
		}
		if weight > ins.Capacity {
			t.Fatalf("trial %d: packed weight %d exceeds capacity %d", trial, weight, ins.Capacity)
		}
		if value != res.Value {
			t.Fatalf("trial %d: taken sums to %d but Value=%d", trial, value, res.Value)
		}
	}
}

// bruteForce enumerates all subsets (n <= 20).
func bruteForce(ins *Instance) int64 {
	n := ins.N()
	var best int64
	for mask := 0; mask < 1<<n; mask++ {
		var v, w int64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += ins.Values[i]
				w += ins.Weights[i]
			}
		}
		if w <= ins.Capacity && v > best {
			best = v
		}
	}
	return best
}

func TestSequentialMatchesBruteForce(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 8; trial++ {
		ins := RandomInstance(14, r)
		want := bruteForce(ins)
		got := SolveSequential(ins)
		if got.Value != want {
			t.Fatalf("trial %d: B&B %d, brute force %d", trial, got.Value, want)
		}
	}
}

func TestBestFirstMatchesSequential(t *testing.T) {
	p, err := pool.NewPriority(pool.Config{Workers: 4, F: 1.3, Delta: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	r := rng.New(5)
	for trial := 0; trial < 5; trial++ {
		ins := RandomInstance(22, r)
		seq := SolveSequential(ins)
		par := SolveBestFirst(ins, p, 6)
		if par.Value != seq.Value {
			t.Fatalf("trial %d: parallel %d != sequential %d", trial, par.Value, seq.Value)
		}
		// The reported packing must be feasible and worth its value.
		var value, weight int64
		for i, take := range par.Taken {
			if take {
				for s, o := range ins.perm {
					if o == i {
						value += ins.Values[s]
						weight += ins.Weights[s]
					}
				}
			}
		}
		if weight > ins.Capacity || value != par.Value {
			t.Fatalf("trial %d: infeasible or inconsistent packing", trial)
		}
	}
}

func TestBestFirstSpawnDepthClamp(t *testing.T) {
	p, err := pool.NewPriority(pool.Config{Workers: 2, F: 1.5, Delta: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ins := RandomInstance(12, rng.New(6))
	if SolveBestFirst(ins, p, 0).Value != SolveSequential(ins).Value {
		t.Fatal("clamped spawn depth broke optimality")
	}
}

func TestHardInstanceMatchesBruteForce(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 4; trial++ {
		ins := HardInstance(14, r)
		want := bruteForce(ins)
		got := SolveSequential(ins)
		if got.Value != want {
			t.Fatalf("trial %d: B&B %d, brute force %d", trial, got.Value, want)
		}
	}
}

func TestHardInstanceIsHarder(t *testing.T) {
	r := rng.New(10)
	easy := SolveSequential(RandomInstance(20, r)).Nodes
	hard := SolveSequential(HardInstance(20, r)).Nodes
	if hard <= easy {
		t.Logf("note: hard %d nodes vs easy %d — families can overlap on small n", hard, easy)
	}
	if hard <= 0 || easy <= 0 {
		t.Fatal("degenerate node counts")
	}
}

func TestHardInstancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=0 did not panic")
		}
	}()
	HardInstance(0, rng.New(1))
}

func TestRandomInstancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=0 did not panic")
		}
	}()
	RandomInstance(0, rng.New(1))
}

func TestUpperBoundIsAdmissible(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 10; trial++ {
		ins := RandomInstance(12, r)
		opt := SolveSequential(ins).Value
		if ub := ins.upperBound(0, 0, ins.Capacity); ub < float64(opt) {
			t.Fatalf("trial %d: root bound %v below optimum %d", trial, ub, opt)
		}
	}
}

func BenchmarkSequentialKnapsack24(b *testing.B) {
	ins := RandomInstance(24, rng.New(42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveSequential(ins)
	}
}

func BenchmarkBestFirstKnapsack24(b *testing.B) {
	ins := RandomInstance(24, rng.New(42))
	p, err := pool.NewPriority(pool.Config{Workers: 4, F: 1.3, Delta: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveBestFirst(ins, p, 6)
	}
}
