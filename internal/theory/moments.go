package theory

import (
	"fmt"
	"math"
)

// This file computes the §5 variation density EXACTLY in O(t) time — a
// strict improvement over the paper's O(p²·t³) computation-graph
// recursion (and over enumeration/Monte Carlo in variation.go, both of
// which remain as independent cross-checks).
//
// Key observation: under the one-processor-generator dynamics
//
//	w₀ ← f·w₀;  pick δ distinct candidates C ⊆ {1..n−1} uniformly;
//	w₀ and all w_c, c ∈ C ← (w₀ + Σ_C w_c)/(δ+1)
//
// the non-generating processors are exchangeable, so the joint first and
// second moments close on six scalars:
//
//	g1 = E[w₀]         o1 = E[w_a]
//	gg = E[w₀²]        cx = E[w₀·w_a]
//	oo = E[w_a²]       ab = E[w_a·w_b]   (a ≠ b, both observers)
//
// Because the candidate set is exchangeable over observers, the sum
// S = w₀ + Σ_C w_c has moments independent of membership conditioning:
//
//	E[S]  = g1 + δ·o1
//	E[S²] = gg + 2δ·cx + δ·oo + δ(δ−1)·ab
//
// while products with a fixed processor depend only on whether it is
// inside or outside C:
//
//	E[S·w_a | a∈C] = cx + oo + (δ−1)·ab
//	E[S·w_x | x∉C] = cx + δ·ab
//
// With membership probabilities p1 = δ/(n−1), p2 = δ(δ−1)/((n−1)(n−2))
// the update is a fixed 6×6 affine map — iterate it t times.

// vdMoments is the closed moment state.
type vdMoments struct {
	g1, o1, gg, cx, oo, ab float64
}

// balancedStart returns the all-loads-equal-one initial state.
func balancedStart() vdMoments {
	return vdMoments{g1: 1, o1: 1, gg: 1, cx: 1, oo: 1, ab: 1}
}

// step applies one grow-and-balance operation for parameters (n, δ, f).
// The growth factor enters only through its first and second moments, so
// callers may pass the moments of a RANDOM factor (producer–consumer
// model) via stepMoments.
func (m vdMoments) step(n, delta int, f float64) vdMoments {
	return m.stepMoments(n, delta, f, f*f)
}

// stepMoments applies one balance operation where the generator's load is
// first multiplied by a random factor F with E[F] = f1 and E[F²] = f2
// (independent of the current state).
func (m vdMoments) stepMoments(n, delta int, f1, f2 float64) vdMoments {
	// Growth phase: w0 *= F.
	m.g1 *= f1
	m.gg *= f2
	m.cx *= f1

	d := float64(delta)
	sz := d + 1 // participants per balance
	nn := float64(n)

	es := m.g1 + d*m.o1
	es2 := m.gg + 2*d*m.cx + d*m.oo + d*(d-1)*m.ab

	p1 := d / (nn - 1)
	var p2, p1only, pNeither float64
	if n > 2 {
		p2 = d * (d - 1) / ((nn - 1) * (nn - 2))
		p1only = d * (nn - 1 - d) / ((nn - 1) * (nn - 2))
		pNeither = (nn - 1 - d) * (nn - 2 - d) / ((nn - 1) * (nn - 2))
	}

	avg1 := es / sz
	avg2 := es2 / (sz * sz)
	sOut := m.cx + d*m.ab           // E[S·w_x | x ∉ C]
	sIn := m.cx + m.oo + (d-1)*m.ab // E[S·w_a | a ∈ C]
	_ = sIn                         // retained for documentation; oo' uses avg² directly

	var out vdMoments
	out.g1 = avg1
	out.o1 = p1*avg1 + (1-p1)*m.o1
	out.gg = avg2
	out.cx = p1*avg2 + (1-p1)*sOut/sz
	out.oo = p1*avg2 + (1-p1)*m.oo
	if n > 2 {
		out.ab = p2*avg2 + 2*p1only*sOut/sz + pNeither*m.ab
	}
	return out
}

// rescale divides first moments by s and second moments by s², returning
// the factor. VD and the mean ratio are scale-free, so periodic rescaling
// keeps the recursion inside float64 range for arbitrarily long horizons
// (absolute loads grow exponentially — the generator never stops).
func (m *vdMoments) rescale() float64 {
	s := m.g1
	if s <= 0 {
		return 1
	}
	s2 := s * s
	m.g1 = 1
	m.o1 /= s
	m.gg /= s2
	m.cx /= s2
	m.oo /= s2
	m.ab /= s2
	return s
}

// VDMomentsResult carries the exact per-step trajectories.
type VDMomentsResult struct {
	// VD[t] is the exact variation density of an observer's load after
	// t+1 balancing steps.
	VD []float64
	// Ratio[t] is E[w₀]/E[w_a] after t+1 steps — it must equal G^t(1)
	// (tested), bridging the §5 model to the §3 operator analysis.
	Ratio []float64
	// MeanObserver[t] is E[w_a] after t+1 steps. Absolute loads grow
	// exponentially, so this overflows to +Inf for very long horizons;
	// VD and Ratio remain exact (the recursion renormalizes internally).
	MeanObserver []float64
}

// VDExactMoments computes the exact variation density trajectory via the
// closed moment recursion, for both balancing modes: VDTrue applies the
// δ-candidate operation directly; VDRelaxed (the paper's §5 relaxation)
// composes one grown pairwise balance with δ−1 further pairwise balances
// per step — each sub-balance is the δ=1 moment map, so the composition
// stays exact.
func VDExactMoments(cfg VDConfig) (*VDMomentsResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &VDMomentsResult{
		VD:           make([]float64, cfg.Steps),
		Ratio:        make([]float64, cfg.Steps),
		MeanObserver: make([]float64, cfg.Steps),
	}
	m := balancedStart()
	scale := 1.0
	for t := 0; t < cfg.Steps; t++ {
		switch cfg.Mode {
		case VDTrue:
			m = m.step(cfg.N, cfg.Delta, cfg.F)
		case VDRelaxed:
			m = m.step(cfg.N, 1, cfg.F)
			for k := 1; k < cfg.Delta; k++ {
				m = m.stepMoments(cfg.N, 1, 1, 1) // pairwise, no growth
			}
		default:
			return nil, fmt.Errorf("theory: unknown VDMode %d", cfg.Mode)
		}
		scale *= m.rescale()
		variance := m.oo - m.o1*m.o1
		if variance < 0 {
			variance = 0 // numerical guard; the true value is >= 0
		}
		if m.o1 > 0 {
			res.VD[t] = math.Sqrt(variance) / m.o1
			res.Ratio[t] = m.g1 / m.o1
		}
		res.MeanObserver[t] = m.o1 * scale
	}
	return res, nil
}

// VDProducerConsumer computes the exact variation density and mean-ratio
// trajectories for the §3 one-processor-producer-CONSUMER model: before
// each balancing operation the generator's load has grown by the factor f
// with probability pGrow and shrunk by the factor f (i.e. ×1/f) otherwise
// — the G/C operator mix of Lemma 3, extended here to second moments
// (which the paper computes only for the pure generator). The randomness
// of the phase enters the linear moment recursion only through E[F] and
// E[F²], so the result is exact.
func VDProducerConsumer(n, delta int, f float64, pGrow float64, steps int) (*VDMomentsResult, error) {
	cfg := VDConfig{N: n, Delta: delta, F: f, Steps: steps, Mode: VDTrue}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pGrow < 0 || pGrow > 1 {
		return nil, fmt.Errorf("theory: pGrow %v outside [0,1]", pGrow)
	}
	f1 := pGrow*f + (1-pGrow)/f
	f2 := pGrow*f*f + (1-pGrow)/(f*f)
	res := &VDMomentsResult{
		VD:           make([]float64, steps),
		Ratio:        make([]float64, steps),
		MeanObserver: make([]float64, steps),
	}
	m := balancedStart()
	scale := 1.0
	for t := 0; t < steps; t++ {
		m = m.stepMoments(n, delta, f1, f2)
		scale *= m.rescale()
		variance := m.oo - m.o1*m.o1
		if variance < 0 {
			variance = 0
		}
		if m.o1 > 0 {
			res.VD[t] = math.Sqrt(variance) / m.o1
			res.Ratio[t] = m.g1 / m.o1
		}
		res.MeanObserver[t] = m.o1 * scale
	}
	return res, nil
}
