package theory

import (
	"math"
	"testing"
)

func TestVDConfigValidate(t *testing.T) {
	good := VDConfig{N: 8, Delta: 2, F: 1.1, Steps: 10, Mode: VDTrue}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []VDConfig{
		{N: 1, Delta: 1, F: 1.1, Steps: 10},
		{N: 8, Delta: 0, F: 1.1, Steps: 10},
		{N: 8, Delta: 8, F: 1.1, Steps: 10},
		{N: 8, Delta: 1, F: 1.0, Steps: 10},
		{N: 8, Delta: 1, F: 1.1, Steps: 0},
	}
	for i, c := range cases {
		if c.Validate() == nil {
			t.Fatalf("case %d accepted: %+v", i, c)
		}
	}
}

func TestVDMonteCarloArgs(t *testing.T) {
	if _, err := VDMonteCarlo(VDConfig{N: 1, Delta: 1, F: 1.1, Steps: 5}, 10, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := VDMonteCarlo(VDConfig{N: 8, Delta: 1, F: 1.1, Steps: 5}, 0, 1); err == nil {
		t.Fatal("runs=0 accepted")
	}
}

func TestVDExactSmallCase(t *testing.T) {
	// n=2, δ=1, one step: the only candidate is processor 1, so the load
	// is deterministic: w = (1·f + 1)/2 and VD = 0.
	vd, mean, err := VDExactFull(2, 1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for s, v := range vd {
		if v > 1e-12 {
			t.Fatalf("n=2 VD at step %d = %v, want 0 (deterministic)", s, v)
		}
	}
	// Step 1: (1.5+1)/2 = 1.25.
	if math.Abs(mean[0]-1.25) > 1e-12 {
		t.Fatalf("n=2 mean after 1 step = %v, want 1.25", mean[0])
	}
}

func TestVDExactTooLarge(t *testing.T) {
	if _, err := VDExact(36, 1.1, 50); err == nil {
		t.Fatal("huge enumeration accepted")
	}
}

// TestVDMonteCarloMatchesExact is the key validation of the Fig. 6
// substitution: Monte Carlo over computation graphs agrees with exact
// enumeration on their overlap.
func TestVDMonteCarloMatchesExact(t *testing.T) {
	n, f, steps := 4, 1.2, 8
	exact, err := VDExact(n, f, steps)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := VDMonteCarlo(VDConfig{N: n, Delta: 1, F: f, Steps: steps, Mode: VDTrue}, 200000, 42)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		if math.Abs(mc[s]-exact[s]) > 0.01+0.05*exact[s] {
			t.Fatalf("step %d: MC %v vs exact %v", s+1, mc[s], exact[s])
		}
	}
}

// TestVDSmallAndConverging reproduces the qualitative claims of Fig. 6:
// the variation density is small, and it stabilizes as t grows.
func TestVDSmallAndConverging(t *testing.T) {
	for _, tc := range []struct {
		delta int
		f     float64
	}{{1, 1.1}, {2, 1.1}, {4, 1.1}, {1, 1.2}, {4, 1.2}} {
		vd, err := VDMonteCarlo(VDConfig{N: 35, Delta: tc.delta, F: tc.f, Steps: 150, Mode: VDTrue}, 20000, 7)
		if err != nil {
			t.Fatal(err)
		}
		last := vd[len(vd)-1]
		t.Logf("δ=%d f=%v: VD(150) = %.4f", tc.delta, tc.f, last)
		if last > 1.0 {
			t.Fatalf("δ=%d f=%v: VD(150)=%v not small", tc.delta, tc.f, last)
		}
		// Converged: the last 30 steps vary little.
		lo, hi := vd[120], vd[120]
		for _, v := range vd[120:] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo > 0.1 {
			t.Fatalf("δ=%d f=%v: VD still drifting in tail: [%v,%v]", tc.delta, tc.f, lo, hi)
		}
	}
}

// TestVDTradeoffDelta: larger δ gives lower variation density (better
// balance), the paper's central tradeoff.
func TestVDTradeoffDelta(t *testing.T) {
	vd1, err := VDMonteCarlo(VDConfig{N: 20, Delta: 1, F: 1.2, Steps: 100, Mode: VDTrue}, 30000, 3)
	if err != nil {
		t.Fatal(err)
	}
	vd4, err := VDMonteCarlo(VDConfig{N: 20, Delta: 4, F: 1.2, Steps: 100, Mode: VDTrue}, 30000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if vd4[99] >= vd1[99] {
		t.Fatalf("δ=4 VD %.4f not below δ=1 VD %.4f", vd4[99], vd1[99])
	}
}

// TestVDRelaxedClose: the paper's relaxed δ>1 algorithm behaves like the
// true one to first order.
func TestVDRelaxedClose(t *testing.T) {
	cfgT := VDConfig{N: 20, Delta: 3, F: 1.1, Steps: 80, Mode: VDTrue}
	cfgR := cfgT
	cfgR.Mode = VDRelaxed
	vdT, err := VDMonteCarlo(cfgT, 30000, 5)
	if err != nil {
		t.Fatal(err)
	}
	vdR, err := VDMonteCarlo(cfgR, 30000, 5)
	if err != nil {
		t.Fatal(err)
	}
	last := len(vdT) - 1
	t.Logf("true VD %.4f relaxed VD %.4f", vdT[last], vdR[last])
	if math.Abs(vdT[last]-vdR[last]) > 0.15 {
		t.Fatalf("relaxed VD %.4f far from true VD %.4f", vdR[last], vdT[last])
	}
}

// TestVDMeanMatchesOperatorG: in the exact δ=1 enumeration, the ratio
// E(l₁)/E(l_obs) after t steps must equal G^t(1) — the bridge between the
// §5 computation-graph model and the §3 operator analysis.
func TestVDMeanMatchesOperatorG(t *testing.T) {
	n, f, steps := 5, 1.3, 7
	_, meanObs, err := VDExactFull(n, f, steps)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct E(l₁): total load after t steps is deterministic?
	// No — but E(l₁) + (n−1)·E(l_obs) = E(total), and total grows by
	// w₀·(f−1) per step which is random. Instead verify the ratio using a
	// separate exact enumeration of processor 0's mean.
	mean0 := exactMeanGenerator(n, f, steps)
	g := IterateG(n, 1, f, steps)
	for s := 0; s < steps; s++ {
		ratio := mean0[s] / meanObs[s]
		if math.Abs(ratio-g[s]) > 1e-9*g[s] {
			t.Fatalf("step %d: E(l1)/E(lobs) = %v but G^t(1) = %v", s+1, ratio, g[s])
		}
	}
}

// exactMeanGenerator enumerates all candidate sequences and returns the
// generating processor's expected load after each step.
func exactMeanGenerator(n int, f float64, steps int) []float64 {
	sums := make([]float64, steps)
	counts := make([]float64, steps)
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	var dfs func(depth int)
	dfs = func(depth int) {
		if depth == steps {
			return
		}
		for c := 1; c < n; c++ {
			w0, wc := w[0], w[c]
			avg := (w0*f + wc) / 2
			w[0], w[c] = avg, avg
			sums[depth] += w[0]
			counts[depth]++
			dfs(depth + 1)
			w[0], w[c] = w0, wc
		}
	}
	dfs(0)
	out := make([]float64, steps)
	for i := range out {
		out[i] = sums[i] / counts[i]
	}
	return out
}

func BenchmarkVDMonteCarlo(b *testing.B) {
	cfg := VDConfig{N: 35, Delta: 4, F: 1.1, Steps: 150, Mode: VDTrue}
	for i := 0; i < b.N; i++ {
		if _, err := VDMonteCarlo(cfg, 1000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
