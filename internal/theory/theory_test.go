package theory

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFIXIsFixedPointOfG(t *testing.T) {
	for _, tc := range []struct {
		n, delta int
		f        float64
	}{
		{8, 1, 1.1}, {64, 1, 1.1}, {64, 4, 1.8}, {1024, 2, 1.2}, {16, 4, 3.0},
	} {
		fix := FIX(tc.n, tc.delta, tc.f)
		got := G(tc.n, tc.delta, tc.f, fix)
		if math.Abs(got-fix) > 1e-9*fix {
			t.Fatalf("n=%d δ=%d f=%v: G(FIX)=%v != FIX=%v", tc.n, tc.delta, tc.f, got, fix)
		}
	}
}

// TestLemma2 verifies G(k) >= k ⟺ k <= FIX (and the strict versions), the
// paper's Lemma 2, on random parameters.
func TestLemma2(t *testing.T) {
	prop := func(nRaw, dRaw, fRaw, kRaw uint8) bool {
		n := 3 + int(nRaw)%60
		delta := 1 + int(dRaw)%4
		f := 1.01 + float64(fRaw)/255.0*(float64(delta)+0.9-1.01)
		if f >= float64(delta)+1 {
			return true // outside the theorem's precondition
		}
		k := 0.1 + float64(kRaw)/255.0*3.0
		fix := FIX(n, delta, f)
		g := G(n, delta, f, k)
		switch {
		case math.Abs(k-fix) < 1e-9:
			return math.Abs(g-k) < 1e-6
		case k < fix:
			return g > k
		default:
			return g < k
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem1Convergence: G^t(1) is increasing, bounded by FIX, and
// converges to FIX.
func TestTheorem1Convergence(t *testing.T) {
	n, delta, f := 64, 1, 1.1
	fix := FIX(n, delta, f)
	traj := IterateG(n, delta, f, 2000)
	prev := 1.0
	for i, v := range traj {
		if v < prev-1e-12 {
			t.Fatalf("G^t(1) not monotone at %d: %v < %v", i+1, v, prev)
		}
		if v > fix+1e-9 {
			t.Fatalf("G^t(1) = %v exceeds FIX = %v at %d", v, fix, i+1)
		}
		prev = v
	}
	if math.Abs(traj[len(traj)-1]-fix) > 1e-6 {
		t.Fatalf("G^t(1) did not converge: %v vs FIX %v", traj[len(traj)-1], fix)
	}
}

// TestTheorem2: FIX(n,δ,f) <= δ/(δ+1−f) for all n, and approaches it as
// n → ∞.
func TestTheorem2(t *testing.T) {
	delta, f := 2, 1.5
	limit := FixLimit(delta, f)
	prev := 0.0
	for _, n := range []int{4, 8, 16, 64, 256, 1024, 1 << 14, 1 << 18} {
		fix := FIX(n, delta, f)
		if fix > limit+1e-9 {
			t.Fatalf("FIX(%d) = %v exceeds limit %v", n, fix, limit)
		}
		if fix < prev-1e-9 {
			t.Fatalf("FIX not increasing in n at %d", n)
		}
		prev = fix
	}
	if math.Abs(FIX(1<<18, delta, f)-limit) > 1e-3 {
		t.Fatalf("FIX(2^18) = %v far from limit %v", FIX(1<<18, delta, f), limit)
	}
}

func TestFixLimitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FixLimit(1, 2.0) did not panic")
		}
	}()
	FixLimit(1, 2.0)
}

// TestLemma3COperator: C^t(1) decreases toward FIX(n,δ,1/f) >= δ/(δ+1−1/f).
func TestLemma3COperator(t *testing.T) {
	n, delta, f := 64, 1, 1.1
	fixDec := FIX(n, delta, 1/f)
	lower := float64(delta) / (float64(delta) + 1 - 1/f)
	if fixDec < lower-1e-9 {
		t.Fatalf("FIX(n,δ,1/f) = %v below δ/(δ+1−1/f) = %v", fixDec, lower)
	}
	traj := IterateC(n, delta, f, 2000)
	prev := 1.0
	for i, v := range traj {
		if v > prev+1e-12 {
			t.Fatalf("C^t(1) not decreasing at %d", i+1)
		}
		if v < fixDec-1e-9 {
			t.Fatalf("C^t(1) = %v fell below FIX(1/f) = %v at %d", v, fixDec, i+1)
		}
		prev = v
	}
	if math.Abs(traj[len(traj)-1]-fixDec) > 1e-6 {
		t.Fatalf("C^t(1) did not converge to FIX(1/f)")
	}
}

// TestTheorem3Sandwich: for any t, FIX(n,δ,1/f) <= ratio <= FIX(n,δ,f)
// when iterating either operator from a balanced start.
func TestTheorem3Sandwich(t *testing.T) {
	n, delta, f := 32, 2, 1.4
	lo, hi := FIX(n, delta, 1/f), FIX(n, delta, f)
	for _, v := range IterateG(n, delta, f, 300) {
		if v < lo-1e-9 || v > hi+1e-9 {
			t.Fatalf("G trajectory left [%v,%v]: %v", lo, hi, v)
		}
	}
	for _, v := range IterateC(n, delta, f, 300) {
		if v < lo-1e-9 || v > hi+1e-9 {
			t.Fatalf("C trajectory left [%v,%v]: %v", lo, hi, v)
		}
	}
}

func TestTheorem4Bound(t *testing.T) {
	// f², δ=1, f=1.1: 1.21 · 1/(2−1.1) = 1.3444…
	got := Theorem4Bound(1, 1.1)
	want := 1.1 * 1.1 / 0.9
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Theorem4Bound = %v, want %v", got, want)
	}
}

func TestDecreaseConstants(t *testing.T) {
	n, delta, f := 64, 1, 1.1
	u, d := DecreaseU(n, delta, f), DecreaseD(n, delta, f)
	if u <= 0 || d <= 0 || u >= 1 || d >= 1 {
		t.Fatalf("U=%v D=%v outside (0,1)", u, d)
	}
	// U uses the smaller steady-state ratio FIX(1/f) < FIX(f), so U > D:
	// the lower bound contracts slower.
	if u <= d {
		t.Fatalf("expected U > D, got U=%v D=%v", u, d)
	}
}

func TestDecreaseBoundsSandwichSimulation(t *testing.T) {
	n, delta, f := 64, 1, 1.1
	x, c := 1000, 500
	lower := Lemma5Lower(n, delta, f, x, c)
	upper, ok := Lemma5Upper(n, delta, f, x, c)
	mean, std := DecreaseProcess(n, delta, f, float64(x), float64(c), 200, 99)
	t.Logf("lower=%d upper=%d(ok=%v) improved=%d sim=%.2f±%.2f",
		lower, upper, ok, Lemma6Upper(n, delta, f, x, c, 100000), mean, std)
	if lower < 0 {
		t.Fatal("negative lower bound")
	}
	if ok && upper < lower {
		t.Fatalf("upper %d < lower %d", upper, lower)
	}
	// The simulated iteration count must respect the bounds with slack for
	// Monte Carlo noise and the expected-value approximation.
	if float64(lower) > mean*1.5+3 {
		t.Fatalf("simulation %.1f clearly below lower bound %d", mean, lower)
	}
	if ok && mean > float64(upper)*1.5+3 {
		t.Fatalf("simulation %.1f clearly above upper bound %d", mean, upper)
	}
}

func TestLemma6NotWorseThanLemma5(t *testing.T) {
	n, delta, f := 64, 1, 1.2
	x, c := 500, 300
	u5, ok := Lemma5Upper(n, delta, f, x, c)
	u6 := Lemma6Upper(n, delta, f, x, c, 100000)
	t.Logf("Lemma5 upper=%d (ok=%v), Lemma6 improved=%d", u5, ok, u6)
	if u6 < 0 {
		t.Fatal("Lemma 6 target unreachable")
	}
	if ok && u6 > u5+1 {
		t.Fatalf("improved bound %d worse than Lemma 5 bound %d", u6, u5)
	}
}

func TestLemma5Degenerate(t *testing.T) {
	if Lemma5Lower(64, 1, 1.0, 100, 50) != 0 {
		t.Fatal("f=1 lower bound should degenerate to 0")
	}
	if _, ok := Lemma5Upper(64, 1, 1.0, 100, 50); ok {
		t.Fatal("f=1 upper bound should be unavailable")
	}
	if _, ok := Lemma5Upper(64, 1, 1.1, 1, 1); ok {
		t.Fatal("x=1 upper bound should be unavailable")
	}
	if Lemma6Upper(64, 1, 1.0, 100, 50, 100) != 0 {
		t.Fatal("f=1 improved bound should degenerate to 0")
	}
}

// TestDecreaseSensitivity reproduces the paper's §6 observation: the
// number of iterations is very sensitive to f but nearly independent of δ
// and n, and depends on c/x rather than on x.
func TestDecreaseSensitivity(t *testing.T) {
	base, _ := DecreaseProcess(64, 1, 1.1, 1000, 500, 300, 1)
	fast, _ := DecreaseProcess(64, 1, 1.5, 1000, 500, 300, 2)
	if fast >= base {
		t.Fatalf("larger f should need fewer iterations: f=1.1→%.1f, f=1.5→%.1f", base, fast)
	}
	// Nearly independent of n.
	n16, _ := DecreaseProcess(16, 1, 1.1, 1000, 500, 300, 3)
	if math.Abs(n16-base)/base > 0.35 {
		t.Fatalf("iteration count strongly n-dependent: n=16→%.1f n=64→%.1f", n16, base)
	}
	// Same c/x ⇒ same iterations (scale invariance).
	scaled, _ := DecreaseProcess(64, 1, 1.1, 2000, 1000, 300, 4)
	if math.Abs(scaled-base)/base > 0.25 {
		t.Fatalf("c/x invariance violated: %.1f vs %.1f", scaled, base)
	}
}

func TestABasicValues(t *testing.T) {
	// f=1: A = (1 − n + δ(n−2) + n − 1)/(2δ) = (δ(n−2))/(2δ) = (n−2)/2.
	if got, want := A(10, 3, 1.0), 4.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("A(10,3,1) = %v, want %v", got, want)
	}
}

func TestFixAtFEquals1(t *testing.T) {
	// f=1 means balance after every packet: the ratio must be 1 in the
	// n→∞ limit (δ/(δ+1−1) = δ/δ).
	if got := FixLimit(3, 1.0); got != 1 {
		t.Fatalf("FixLimit(δ,1) = %v, want 1", got)
	}
	// Finite n: FIX < 1 slightly? It must be close to 1 for large n.
	if got := FIX(1<<16, 2, 1.0); math.Abs(got-1) > 1e-3 {
		t.Fatalf("FIX(large n, f=1) = %v, want ≈1", got)
	}
}
