package theory

import (
	"math"
	"testing"

	"lmbalance/internal/rng"
	"lmbalance/internal/stats"
)

func TestVDProducerConsumerValidation(t *testing.T) {
	if _, err := VDProducerConsumer(1, 1, 1.1, 0.5, 10); err == nil {
		t.Fatal("bad n accepted")
	}
	if _, err := VDProducerConsumer(8, 1, 1.1, 1.5, 10); err == nil {
		t.Fatal("pGrow > 1 accepted")
	}
	if _, err := VDProducerConsumer(8, 1, 1.1, -0.1, 10); err == nil {
		t.Fatal("pGrow < 0 accepted")
	}
}

func TestVDProducerConsumerPureGrowthMatches(t *testing.T) {
	// pGrow = 1 must coincide with the generator-only recursion.
	a, err := VDProducerConsumer(20, 2, 1.2, 1, 80)
	if err != nil {
		t.Fatal(err)
	}
	b, err := VDExactMoments(VDConfig{N: 20, Delta: 2, F: 1.2, Steps: 80, Mode: VDTrue})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 80; s++ {
		if math.Abs(a.VD[s]-b.VD[s]) > 1e-12 {
			t.Fatalf("step %d: %v vs %v", s+1, a.VD[s], b.VD[s])
		}
		if math.Abs(a.Ratio[s]-b.Ratio[s]) > 1e-12 {
			t.Fatalf("step %d: ratio %v vs %v", s+1, a.Ratio[s], b.Ratio[s])
		}
	}
}

// mcProducerConsumer simulates the random grow/shrink model directly.
func mcProducerConsumer(n, delta int, f, pGrow float64, steps, runs int, seed uint64) (vd, ratio []float64) {
	master := rng.New(seed)
	accObs := make([]stats.Accumulator, steps)
	accGen := make([]stats.Accumulator, steps)
	w := make([]float64, n)
	for run := 0; run < runs; run++ {
		r := master.Split()
		for i := range w {
			w[i] = 1
		}
		for t := 0; t < steps; t++ {
			if r.Bernoulli(pGrow) {
				w[0] *= f
			} else {
				w[0] /= f
			}
			cands := r.SampleDistinct(n, delta, 0, nil)
			sum := w[0]
			for _, c := range cands {
				sum += w[c]
			}
			avg := sum / float64(delta+1)
			w[0] = avg
			for _, c := range cands {
				w[c] = avg
			}
			accObs[t].Add(w[1])
			accGen[t].Add(w[0])
		}
	}
	vd = make([]float64, steps)
	ratio = make([]float64, steps)
	for t := range accObs {
		vd[t] = accObs[t].VariationDensity()
		ratio[t] = accGen[t].Mean() / accObs[t].Mean()
	}
	return vd, ratio
}

// TestVDProducerConsumerMatchesMC: the exact recursion must agree with
// direct Monte Carlo over both coin flips and candidate choices.
func TestVDProducerConsumerMatchesMC(t *testing.T) {
	n, delta, f, p := 16, 1, 1.3, 0.6
	steps := 50
	exact, err := VDProducerConsumer(n, delta, f, p, steps)
	if err != nil {
		t.Fatal(err)
	}
	mcVD, mcRatio := mcProducerConsumer(n, delta, f, p, steps, 200000, 55)
	for _, s := range []int{4, 19, 49} {
		if math.Abs(exact.VD[s]-mcVD[s]) > 0.01+0.05*exact.VD[s] {
			t.Fatalf("step %d: VD %v vs MC %v", s+1, exact.VD[s], mcVD[s])
		}
		if math.Abs(exact.Ratio[s]-mcRatio[s]) > 0.01*exact.Ratio[s]+0.005 {
			t.Fatalf("step %d: ratio %v vs MC %v", s+1, exact.Ratio[s], mcRatio[s])
		}
	}
}

// TestVDProducerConsumerSandwich: the stationary expected-load ratio of
// the mixed model lies inside the Theorem 3 sandwich
// [FIX(n,δ,1/f), FIX(n,δ,f)].
func TestVDProducerConsumerSandwich(t *testing.T) {
	n, delta, f := 64, 1, 1.4
	for _, p := range []float64{0.25, 0.5, 0.75} {
		res, err := VDProducerConsumer(n, delta, f, p, 3000)
		if err != nil {
			t.Fatal(err)
		}
		ratio := res.Ratio[2999]
		lo, hi := FIX(n, delta, 1/f), FIX(n, delta, f)
		if ratio < lo-1e-9 || ratio > hi+1e-9 {
			t.Fatalf("pGrow=%v: stationary ratio %v outside [%v, %v]", p, ratio, lo, hi)
		}
	}
}

// TestVDProducerConsumerSymmetric: at pGrow = 0.5 the mean growth factor
// (f+1/f)/2 exceeds 1, so loads grow, but the ratio settles strictly
// between the pure-growth and pure-shrink fixed points.
func TestVDProducerConsumerSymmetric(t *testing.T) {
	res, err := VDProducerConsumer(64, 1, 1.2, 0.5, 5000)
	if err != nil {
		t.Fatal(err)
	}
	final := res.Ratio[4999]
	grow := FIX(64, 1, 1.2)
	shrink := FIX(64, 1, 1/1.2)
	if !(final > shrink && final < grow) {
		t.Fatalf("ratio %v not strictly inside (%v, %v)", final, shrink, grow)
	}
}
