package theory

import (
	"math"

	"lmbalance/internal/rng"
	"lmbalance/internal/stats"
)

// This file covers the first §6 benchmark: "the situation that only one
// processor generates load and distributes it evenly onto the network."
// The paper's Lemma 4 (its statement is partly lost in the proceedings
// scan; only the conclusion "…ing steps the expected number of workload
// packets generated and distributed on the network is ≥ m" survives)
// lower-bounds the load generated within a number of balancing steps —
// i.e. it quantifies the distribution cost of the algorithm.
//
// Derivation of the closed form used here: write l₁ for the generator's
// post-balance load and T for the system total. In the steady state of
// Theorem 1 the generator exceeds the other processors by the factor
// FIX(n,δ,f), so it holds the fraction
//
//	r(n,δ,f) = FIX / (n−1+FIX)
//
// of the total. Per balancing operation the generator produces
// (f−1)·l₁ = (f−1)·r·T new packets (its self load must grow by the factor
// f to fire the trigger), after which balancing only redistributes. The
// total therefore multiplies by
//
//	M(n,δ,f) = 1 + (f−1)·r(n,δ,f)
//
// per operation, and the generated volume after t operations from an
// initial total T₀ is T₀·(M^t − 1). Note the n-dependence: unlike the
// decrease cost of Lemma 5/6 (nearly n-free), evenly distributing load
// from a single source is inherently Θ(n) per doubling — each packet can
// only leave the source through a δ+1-way balance. GrowthProcess verifies
// the closed form by simulating the random-candidate process.

// GeneratorShare returns r(n,δ,f) = FIX/(n−1+FIX): the fraction of the
// system's total load held by the generating processor in the steady
// state of the one-processor-generator model.
func GeneratorShare(n, delta int, f float64) float64 {
	fix := FIX(n, delta, f)
	return fix / (float64(n-1) + fix)
}

// GrowthMultiplier returns M(n,δ,f) = 1 + (f−1)·r(n,δ,f), the
// steady-state factor by which the system's total load grows per
// balancing operation in the one-processor-generator model.
func GrowthMultiplier(n, delta int, f float64) float64 {
	return 1 + (f-1)*GeneratorShare(n, delta, f)
}

// GeneratedAfter returns the expected number of packets generated within
// t balancing operations of the one-processor-generator model in steady
// state, starting from a system total of t0 packets — the Lemma 4
// quantity.
func GeneratedAfter(n, delta int, f float64, t0 float64, t int) float64 {
	if t <= 0 {
		return 0
	}
	m := GrowthMultiplier(n, delta, f)
	return t0 * (math.Pow(m, float64(t)) - 1)
}

// OpsToGenerate returns the expected number of balancing operations needed
// to generate and distribute at least m packets, starting from a system
// total of t0 packets in steady state (the inverse of GeneratedAfter).
func OpsToGenerate(n, delta int, f float64, t0, m float64) int {
	if m <= 0 {
		return 0
	}
	mult := GrowthMultiplier(n, delta, f)
	if mult <= 1 {
		return math.MaxInt32
	}
	return int(math.Ceil(math.Log(1+m/t0) / math.Log(mult)))
}

// GrowthProcess simulates the one-processor-generator model in the
// expected-value dynamics (randomness: candidate choices) and returns the
// mean and standard deviation of the number of balancing operations until
// m packets have been generated, starting from a balanced state of 1
// packet per processor.
func GrowthProcess(n, delta int, f float64, m float64, runs int, seed uint64) (mean, std float64) {
	if runs < 1 {
		runs = 1
	}
	r := rng.New(seed)
	var acc stats.Accumulator
	for run := 0; run < runs; run++ {
		rr := r.Split()
		w := make([]float64, n)
		for i := range w {
			w[i] = 1
		}
		generated := 0.0
		ops := 0
		for generated < m && ops < 10000000 {
			// Generate until the trigger: self load grows by factor f.
			generated += w[0] * (f - 1)
			w[0] *= f
			if generated >= m {
				break
			}
			cands := rr.SampleDistinct(n, delta, 0, nil)
			sum := w[0]
			for _, c := range cands {
				sum += w[c]
			}
			avg := sum / float64(delta+1)
			w[0] = avg
			for _, c := range cands {
				w[c] = avg
			}
			ops++
		}
		acc.Add(float64(ops))
	}
	return acc.Mean(), acc.Std()
}
