package theory

import (
	"fmt"

	"lmbalance/internal/rng"
	"lmbalance/internal/stats"
)

// This file reproduces §5 of the paper: the variation density
// VD(l_{i,t}) = sqrt(E(l²)−E(l)²)/E(l) of the load of a NON-generating
// processor i > 1 after t balancing steps of the one-processor-generator
// model.
//
// The paper derives an O(p²t³) recursion over "computation graphs" (the
// random sequence of balancing candidates); its published bookkeeping is
// under-specified, so this package computes the same quantity two other
// ways (documented as a substitution in DESIGN.md):
//
//   - VDExact: exact enumeration of all (n−1)^t candidate sequences for
//     δ = 1 — the ground truth the paper's recursion also computes.
//   - VDMonteCarlo: simulation over random computation graphs, usable at
//     the full Fig. 6 scale (n up to 35, t up to 150, δ up to 4), for both
//     the true δ-candidate operation and the paper's "relaxed" δ>1 variant
//     (δ consecutive pairwise balances).
//
// Both work on the expected-value dynamics between balancing steps: the
// generator's load grows by the factor f, then the participant loads are
// averaged — exactly the v_t = ½·v_i + (f/2)·v_{t−1} recurrence of the
// paper's computation graphs (generalized to δ > 1).

// VDMode selects how a balancing step with δ > 1 is performed.
type VDMode int

const (
	// VDTrue balances the generator with δ candidates simultaneously
	// (the algorithm as analyzed in §3).
	VDTrue VDMode = iota
	// VDRelaxed performs δ consecutive pairwise balances (the paper's §5
	// relaxation that makes the exact recursion tractable for δ > 1).
	VDRelaxed
)

// VDConfig parameterizes a variation density computation.
type VDConfig struct {
	N     int     // processors (>= 2)
	Delta int     // δ >= 1; must be < N-1 for VDTrue... <= N-1 candidates available
	F     float64 // growth factor per balancing step (> 1)
	Steps int     // balancing steps t (>= 1)
	Mode  VDMode
}

// Validate checks the configuration.
func (c VDConfig) Validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("theory: VD with N=%d < 2", c.N)
	case c.Delta < 1 || c.Delta > c.N-1:
		return fmt.Errorf("theory: VD with Delta=%d outside [1,%d]", c.Delta, c.N-1)
	case c.F <= 1:
		return fmt.Errorf("theory: VD with F=%v <= 1", c.F)
	case c.Steps < 1:
		return fmt.Errorf("theory: VD with Steps=%d < 1", c.Steps)
	}
	return nil
}

// VDMonteCarlo estimates the variation density of the observed (fixed,
// non-generating) processor's load after each balancing step 1..Steps,
// averaging over runs random computation graphs. The returned slice has
// length Steps; entry t-1 is VD(l_{obs, t}).
func VDMonteCarlo(cfg VDConfig, runs int, seed uint64) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if runs < 1 {
		return nil, fmt.Errorf("theory: VDMonteCarlo with runs=%d < 1", runs)
	}
	const obs = 1 // any fixed processor > 0; all are exchangeable
	master := rng.New(seed)
	acc := make([]stats.Accumulator, cfg.Steps)
	w := make([]float64, cfg.N)
	for run := 0; run < runs; run++ {
		r := master.Split()
		for i := range w {
			w[i] = 1 // balanced start, as in Theorem 1
		}
		for t := 0; t < cfg.Steps; t++ {
			w[0] *= cfg.F
			step(cfg, r, w)
			acc[t].Add(w[obs])
		}
	}
	out := make([]float64, cfg.Steps)
	for t := range acc {
		out[t] = acc[t].VariationDensity()
	}
	return out, nil
}

// step performs one balancing operation on the expected-value loads.
func step(cfg VDConfig, r *rng.RNG, w []float64) {
	switch cfg.Mode {
	case VDTrue:
		cands := r.SampleDistinct(cfg.N, cfg.Delta, 0, nil)
		sum := w[0]
		for _, c := range cands {
			sum += w[c]
		}
		avg := sum / float64(cfg.Delta+1)
		w[0] = avg
		for _, c := range cands {
			w[c] = avg
		}
	case VDRelaxed:
		for k := 0; k < cfg.Delta; k++ {
			c := 1 + r.Intn(cfg.N-1)
			avg := (w[0] + w[c]) / 2
			w[0] = avg
			w[c] = avg
		}
	default:
		panic("theory: unknown VDMode")
	}
}

// VDExactFull computes, exactly and for δ = 1, the variation density and
// the expected load of the observed non-generating processor after each
// balancing step 1..steps, by enumerating all (n−1)^steps candidate
// sequences (each equally likely). Practical for (n−1)^steps up to ~10⁷;
// it exists to validate VDMonteCarlo and to cross-check the operator G.
func VDExactFull(n int, f float64, steps int) (vd, mean []float64, err error) {
	cfg := VDConfig{N: n, Delta: 1, F: f, Steps: steps, Mode: VDTrue}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	total := 1.0
	for i := 0; i < steps; i++ {
		total *= float64(n - 1)
		if total > 2e7 {
			return nil, nil, fmt.Errorf("theory: VDExactFull instance too large ((n-1)^t > 2e7)")
		}
	}
	const obs = 1
	acc := make([]stats.Accumulator, steps)
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	var dfs func(depth int)
	dfs = func(depth int) {
		if depth == steps {
			return
		}
		for c := 1; c < n; c++ {
			w0, wc := w[0], w[c]
			avg := (w0*f + wc) / 2
			w[0], w[c] = avg, avg
			acc[depth].Add(w[obs])
			dfs(depth + 1)
			w[0], w[c] = w0, wc
		}
	}
	dfs(0)
	vd = make([]float64, steps)
	mean = make([]float64, steps)
	for t := range acc {
		vd[t] = acc[t].VariationDensity()
		mean[t] = acc[t].Mean()
	}
	return vd, mean, nil
}

// VDExact returns only the variation density trajectory of VDExactFull.
func VDExact(n int, f float64, steps int) ([]float64, error) {
	vd, _, err := VDExactFull(n, f, steps)
	return vd, err
}
