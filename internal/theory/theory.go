// Package theory implements the paper's closed-form analysis: the
// fixed-point bound FIX(n,δ,f) of Theorems 1–2, the increase/decrease
// operators G and C of §3, the decrease-cost bounds of §6 (Lemmas 5 and 6),
// and the variation density computation of §5 (exact enumeration for small
// instances plus Monte Carlo over computation graphs at figure scale).
//
// Everything here is a pure function of (n, δ, f); the experiment harness
// compares these predictions against the simulator's measurements.
package theory

import (
	"fmt"
	"math"

	"lmbalance/internal/rng"
	"lmbalance/internal/stats"
)

// A returns the paper's helper constant
//
//	A = (f − f·n + δ(n−2) + (n−1)) / (2δf).
func A(n, delta int, f float64) float64 {
	nf := float64(n)
	d := float64(delta)
	return (f - f*nf + d*(nf-2) + (nf - 1)) / (2 * d * f)
}

// FIX returns the fixed point of the operator G,
//
//	FIX(n,δ,f) = sqrt((n−1)/f + A²) − A,
//
// the Theorem 1 bound on the expected-load ratio between the generating
// processor and any other processor.
func FIX(n, delta int, f float64) float64 {
	a := A(n, delta, f)
	return math.Sqrt(float64(n-1)/f+a*a) - a
}

// FixLimit returns lim_{n→∞} FIX(n,δ,f) = δ/(δ+1−f), the network-size
// independent bound of Theorem 2. It panics if f >= δ+1 where the bound
// diverges.
func FixLimit(delta int, f float64) float64 {
	d := float64(delta)
	if f >= d+1 {
		panic(fmt.Sprintf("theory: FixLimit diverges for f=%v >= delta+1=%v", f, d+1))
	}
	return d / (d + 1 - f)
}

// G applies the paper's increase operator once:
//
//	G(k) = (kf+δ)(n−1) / (δkf + δ(n−2) + (n−1)).
//
// If the expected-load ratio before a balancing operation is k, it is G(k)
// after the generating processor's load grew by the factor f and was
// balanced with δ random partners (Lemma 1).
func G(n, delta int, f, k float64) float64 {
	nf := float64(n)
	d := float64(delta)
	return (k*f + d) * (nf - 1) / (d*k*f + d*(nf-2) + (nf - 1))
}

// C applies the decrease operator — G with f replaced by 1/f — modeling a
// workload decrease by the factor f followed by a balancing operation.
func C(n, delta int, f, k float64) float64 {
	return G(n, delta, 1/f, k)
}

// IterateG returns the trajectory G¹(1), G²(1), …, G^t(1): the
// expected-load ratio after each of t balancing operations in the
// one-processor-generator model started balanced.
func IterateG(n, delta int, f float64, t int) []float64 {
	out := make([]float64, t)
	k := 1.0
	for i := 0; i < t; i++ {
		k = G(n, delta, f, k)
		out[i] = k
	}
	return out
}

// IterateC is IterateG for the decrease operator.
func IterateC(n, delta int, f float64, t int) []float64 {
	out := make([]float64, t)
	k := 1.0
	for i := 0; i < t; i++ {
		k = C(n, delta, f, k)
		out[i] = k
	}
	return out
}

// Theorem4Bound returns the full-model guarantee of Theorem 4(2): for any
// two processors, E(l_i) ≤ f²·δ/(δ+1−f) · (E(l_j) + C).
// It returns the multiplicative factor f²·δ/(δ+1−f).
func Theorem4Bound(delta int, f float64) float64 {
	return f * f * FixLimit(delta, f)
}

// decreaseU returns the paper's §6 constant
//
//	U = 1/(f(δ+1)) · (1 + fδ/FIX(n,δ,1/f)),
//
// the per-iteration load multiplier lower-bounding the decrease process.
func decreaseU(n, delta int, f float64) float64 {
	d := float64(delta)
	return (1 + f*d/FIX(n, delta, 1/f)) / (f * (d + 1))
}

// decreaseD returns the paper's §6 constant
//
//	D = 1/(f(δ+1)) · (1 + δf/FIX(n,δ,f)),
//
// the per-iteration load multiplier upper-bounding the decrease process.
func decreaseD(n, delta int, f float64) float64 {
	d := float64(delta)
	return (1 + d*f/FIX(n, delta, f)) / (f * (d + 1))
}

// DecreaseU and DecreaseD expose the §6 constants for the experiments.
func DecreaseU(n, delta int, f float64) float64 { return decreaseU(n, delta, f) }

// DecreaseD returns the upper-bound multiplier D of §6.
func DecreaseD(n, delta int, f float64) float64 { return decreaseD(n, delta, f) }

// Lemma5Lower returns the paper's lower bound on the expected number of
// balancing operations needed to decrease the class-i load on processor i
// from x to x−c > 0:
//
//	t ≥ max{0, ⌊ log( (f²(c−x)+x−1)/((f−1)(x+1)) · (U−1) + 1 ) / log U ⌋}.
func Lemma5Lower(n, delta int, f float64, x, c int) int {
	if f <= 1 {
		return 0 // the bound's (f−1) denominator degenerates; vacuous
	}
	u := decreaseU(n, delta, f)
	xf, cf := float64(x), float64(c)
	arg := (f*f*(cf-xf)+xf-1)/((f-1)*(xf+1))*(u-1) + 1
	if arg <= 0 || u <= 0 || u == 1 {
		return 0
	}
	t := math.Floor(math.Log(arg) / math.Log(u))
	if t < 0 || math.IsNaN(t) {
		return 0
	}
	return int(t)
}

// Lemma5Upper returns the paper's upper bound
//
//	t ≤ ⌈ log( (c+xf−x−f)/((x−1)f(1−1/f)) · (D−1) + 1 ) / log D ⌉,
//
// valid only when 1/(1−D) ≥ (c+xf−x−f)/((x−1)f(1−1/f)); ok reports whether
// that precondition holds.
func Lemma5Upper(n, delta int, f float64, x, c int) (t int, ok bool) {
	if f <= 1 || x <= 1 {
		return 0, false
	}
	d := decreaseD(n, delta, f)
	xf, cf := float64(x), float64(c)
	ratio := (cf + xf*f - xf - f) / ((xf - 1) * f * (1 - 1/f))
	if d >= 1 || 1/(1-d) < ratio {
		return 0, false
	}
	arg := ratio*(d-1) + 1
	if arg <= 0 {
		return 0, false
	}
	v := math.Ceil(math.Log(arg) / math.Log(d))
	if v < 0 || math.IsNaN(v) {
		return 0, false
	}
	return int(v), true
}

// Lemma6Upper returns the improved upper bound: the smallest ⌈t⌉ with
//
//	Σ_{i=0}^{t−2} Π_{j=0}^{i} D_j ≥ (c−1)/((x−1)f(1−1/f)),
//
// where D_i = 1/(f(δ+1))·(1 + δf/C^i(FIX(n,δ,f))) tracks the drifting
// expected-load ratio through the decrease operator. Returns 0 if the
// parameters degenerate and -1 if the target is unreachable within maxIter
// iterations (the sum converges below the target).
func Lemma6Upper(n, delta int, f float64, x, c int, maxIter int) int {
	if f <= 1 || x <= 1 {
		return 0
	}
	target := (float64(c) - 1) / ((float64(x) - 1) * f * (1 - 1/f))
	if target <= 0 {
		return 0
	}
	d := float64(delta)
	ratio := FIX(n, delta, f)
	sum := 0.0
	prod := 1.0
	for i := 0; i < maxIter; i++ {
		di := (1 + d*f/ratio) / (f * (d + 1))
		prod *= di
		sum += prod
		if sum >= target {
			return i + 2 // Σ runs to t−2, so t = i + 2
		}
		ratio = C(n, delta, f, ratio)
	}
	return -1
}

// DecreaseProcess simulates the §6 benchmark in the expected-value model:
// processor 0 holds x units of its own class and every other processor
// holds x/FIX(n,δ,f) (the steady state reached while the class was
// growing). The processor then simulates a workload decrease of c packets:
// it consumes its own-class load down by the factor f, which fires the
// decrease trigger and a balancing operation with δ random partners that
// refills it from the network; this repeats until c packets have been
// consumed in total. Lemma 5/6 bound the expected number of balancing
// operations this takes.
//
// It returns that count averaged over runs Monte Carlo repetitions
// (randomness: the candidate choices), along with the standard deviation.
func DecreaseProcess(n, delta int, f float64, x, c float64, runs int, seed uint64) (mean, std float64) {
	if runs < 1 {
		runs = 1
	}
	r := rng.New(seed)
	var acc stats.Accumulator
	for run := 0; run < runs; run++ {
		rr := r.Split()
		w := make([]float64, n)
		other := x / FIX(n, delta, f)
		for i := range w {
			w[i] = other
		}
		w[0] = x
		consumed := 0.0
		iters := 0
		for consumed < c && iters < 1000000 {
			canConsume := w[0] * (1 - 1/f) // until the decrease trigger fires
			if consumed+canConsume >= c {
				break // target reached without another balancing operation
			}
			consumed += canConsume
			w[0] /= f
			cands := rr.SampleDistinct(n, delta, 0, nil)
			sum := w[0]
			for _, cd := range cands {
				sum += w[cd]
			}
			avg := sum / float64(delta+1)
			w[0] = avg
			for _, cd := range cands {
				w[cd] = avg
			}
			iters++
		}
		acc.Add(float64(iters))
	}
	return acc.Mean(), acc.Std()
}
