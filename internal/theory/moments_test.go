package theory

import (
	"math"
	"testing"
)

// TestMomentsMatchEnumeration is the decisive check: the O(t) moment
// recursion must agree with brute-force enumeration over all candidate
// sequences to floating-point accuracy.
func TestMomentsMatchEnumeration(t *testing.T) {
	for _, tc := range []struct {
		n     int
		f     float64
		steps int
	}{{3, 1.2, 9}, {4, 1.1, 8}, {5, 1.5, 7}, {2, 1.3, 10}} {
		cfg := VDConfig{N: tc.n, Delta: 1, F: tc.f, Steps: tc.steps, Mode: VDTrue}
		exactVD, exactMean, err := VDExactFull(tc.n, tc.f, tc.steps)
		if err != nil {
			t.Fatal(err)
		}
		mom, err := VDExactMoments(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < tc.steps; s++ {
			// 1e-7 absolute: the variance oo − o1² cancels catastrophically
			// when the true VD is 0 (n=2), leaving ~1e-8 noise.
			if math.Abs(mom.VD[s]-exactVD[s]) > 1e-7 {
				t.Fatalf("n=%d f=%v step %d: moments VD %v vs enumeration %v",
					tc.n, tc.f, s+1, mom.VD[s], exactVD[s])
			}
			if math.Abs(mom.MeanObserver[s]-exactMean[s]) > 1e-9*exactMean[s] {
				t.Fatalf("n=%d f=%v step %d: moments mean %v vs enumeration %v",
					tc.n, tc.f, s+1, mom.MeanObserver[s], exactMean[s])
			}
		}
	}
}

// TestMomentsMatchMonteCarloDeltaGreater1: for δ > 1 (no enumeration
// available) the recursion must sit inside Monte Carlo noise.
func TestMomentsMatchMonteCarloDeltaGreater1(t *testing.T) {
	cfg := VDConfig{N: 20, Delta: 3, F: 1.2, Steps: 60, Mode: VDTrue}
	mom, err := VDExactMoments(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := VDMonteCarlo(cfg, 150000, 77)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{0, 9, 29, 59} {
		if math.Abs(mom.VD[s]-mc[s]) > 0.004+0.04*mom.VD[s] {
			t.Fatalf("step %d: moments %v vs MC %v", s+1, mom.VD[s], mc[s])
		}
	}
}

// TestMomentsRatioEqualsOperatorG: the exact mean ratio from the §5 model
// must reproduce G^t(1) — Lemma 1 — for every δ, not just δ=1.
func TestMomentsRatioEqualsOperatorG(t *testing.T) {
	for _, tc := range []struct {
		n, delta int
		f        float64
	}{{8, 1, 1.3}, {16, 2, 1.2}, {35, 4, 1.1}, {64, 4, 1.8}} {
		cfg := VDConfig{N: tc.n, Delta: tc.delta, F: tc.f, Steps: 120, Mode: VDTrue}
		mom, err := VDExactMoments(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g := IterateG(tc.n, tc.delta, tc.f, 120)
		for s := range g {
			if math.Abs(mom.Ratio[s]-g[s]) > 1e-9*g[s] {
				t.Fatalf("n=%d δ=%d f=%v step %d: ratio %v vs G^t(1) %v",
					tc.n, tc.delta, tc.f, s+1, mom.Ratio[s], g[s])
			}
		}
	}
}

// TestMomentsFig6Shape: the exact recursion reproduces the Fig. 6 claims
// at full figure scale, instantly.
func TestMomentsFig6Shape(t *testing.T) {
	vdOf := func(delta int, f float64) float64 {
		mom, err := VDExactMoments(VDConfig{N: 35, Delta: delta, F: f, Steps: 150, Mode: VDTrue})
		if err != nil {
			t.Fatal(err)
		}
		return mom.VD[149]
	}
	d1f11, d4f11, d1f12 := vdOf(1, 1.1), vdOf(4, 1.1), vdOf(1, 1.2)
	if !(d4f11 < d1f11 && d1f11 < d1f12) {
		t.Fatalf("Fig.6 ordering violated: δ4f1.1=%v δ1f1.1=%v δ1f1.2=%v", d4f11, d1f11, d1f12)
	}
	if d1f12 > 0.5 {
		t.Fatalf("VD not small: %v", d1f12)
	}
}

// TestMomentsRejectsInvalid: configuration validation still applies.
func TestMomentsRejectsInvalid(t *testing.T) {
	if _, err := VDExactMoments(VDConfig{N: 1, Delta: 1, F: 1.1, Steps: 5, Mode: VDTrue}); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := VDExactMoments(VDConfig{N: 8, Delta: 2, F: 1.1, Steps: 5, Mode: VDMode(9)}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestMomentsRelaxedMatchesMC: the relaxed-mode recursion (composed
// pairwise maps) agrees with the relaxed Monte Carlo simulation.
func TestMomentsRelaxedMatchesMC(t *testing.T) {
	cfg := VDConfig{N: 20, Delta: 3, F: 1.15, Steps: 60, Mode: VDRelaxed}
	mom, err := VDExactMoments(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := VDMonteCarlo(cfg, 150000, 88)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{0, 9, 29, 59} {
		if math.Abs(mom.VD[s]-mc[s]) > 0.004+0.04*mom.VD[s] {
			t.Fatalf("step %d: moments %v vs MC %v", s+1, mom.VD[s], mc[s])
		}
	}
}

// TestMomentsRelaxedDelta1Coincides: at δ=1 the relaxed and true modes
// are the same operation.
func TestMomentsRelaxedDelta1Coincides(t *testing.T) {
	a, err := VDExactMoments(VDConfig{N: 12, Delta: 1, F: 1.2, Steps: 40, Mode: VDTrue})
	if err != nil {
		t.Fatal(err)
	}
	b, err := VDExactMoments(VDConfig{N: 12, Delta: 1, F: 1.2, Steps: 40, Mode: VDRelaxed})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 40; s++ {
		if math.Abs(a.VD[s]-b.VD[s]) > 1e-12 {
			t.Fatalf("step %d: %v vs %v", s+1, a.VD[s], b.VD[s])
		}
	}
}

// TestMomentsLongHorizon pins the long-horizon behaviour the exact
// recursion reveals (and which Fig. 6's 150-step window cannot show):
// within the paper's window the VD has visibly settled (≲1% drift over
// the last 50 steps), but it keeps creeping upward at a tiny rate
// afterwards — the second moment's growth rate exceeds the squared first
// moment's by a hair. The recursion must stay finite and well-behaved
// out to 10⁶ steps thanks to internal renormalization.
func TestMomentsLongHorizon(t *testing.T) {
	mom, err := VDExactMoments(VDConfig{N: 35, Delta: 1, F: 1.1, Steps: 1000000, Mode: VDTrue})
	if err != nil {
		t.Fatal(err)
	}
	// Paper-window behaviour: settled to a few percent between steps 100
	// and 150 (the curves in Fig. 6 look flat at plotting resolution).
	if drift := mom.VD[149] - mom.VD[99]; drift < 0 || drift > 0.05*mom.VD[149] {
		t.Fatalf("VD not settled in the Fig.6 window: VD(100)=%v VD(150)=%v", mom.VD[99], mom.VD[149])
	}
	// Long-horizon: finite, monotone-ish slow creep, still small.
	for _, s := range []int{9999, 99999, 999999} {
		v := mom.VD[s]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("VD overflowed at step %d", s+1)
		}
	}
	if mom.VD[999999] < mom.VD[149] {
		t.Fatalf("expected slow upward creep: VD(150)=%v VD(1e6)=%v", mom.VD[149], mom.VD[999999])
	}
	// The ratio, by contrast, is pinned at FIX forever.
	fix := FIX(35, 1, 1.1)
	if math.Abs(mom.Ratio[999999]-fix) > 1e-9 {
		t.Fatalf("ratio %v departed from FIX %v", mom.Ratio[999999], fix)
	}
	t.Logf("VD: t=150 %.4f, t=1e4 %.4f, t=1e5 %.4f, t=1e6 %.4f",
		mom.VD[149], mom.VD[9999], mom.VD[99999], mom.VD[999999])
}

func BenchmarkVDExactMoments(b *testing.B) {
	cfg := VDConfig{N: 35, Delta: 4, F: 1.1, Steps: 150, Mode: VDTrue}
	for i := 0; i < b.N; i++ {
		if _, err := VDExactMoments(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
