package theory

import (
	"math"
	"testing"
)

func TestGeneratorShare(t *testing.T) {
	// The generator holds slightly more than 1/n of the total.
	for _, tc := range []struct {
		n, delta int
		f        float64
	}{{64, 1, 1.1}, {64, 4, 1.1}, {16, 2, 1.5}, {1024, 1, 1.8}} {
		r := GeneratorShare(tc.n, tc.delta, tc.f)
		if r <= 1/float64(tc.n) {
			t.Fatalf("n=%d δ=%d f=%v: share %v not above 1/n", tc.n, tc.delta, tc.f, r)
		}
		// The share is bounded by FIX/(n−1) < FixLimit·(1+ε)/(n−1).
		if r > FixLimit(tc.delta, tc.f)*1.01/float64(tc.n-1) {
			t.Fatalf("share %v above FIX-based bound", r)
		}
	}
}

func TestGrowthMultiplierAboveOne(t *testing.T) {
	for _, tc := range []struct {
		n, delta int
		f        float64
	}{{64, 1, 1.1}, {64, 4, 1.1}, {16, 2, 1.5}, {1024, 1, 1.8}} {
		m := GrowthMultiplier(tc.n, tc.delta, tc.f)
		if m <= 1 {
			t.Fatalf("n=%d δ=%d f=%v: multiplier %v <= 1", tc.n, tc.delta, tc.f, m)
		}
		if m >= tc.f {
			t.Fatalf("multiplier %v should be below f=%v", m, tc.f)
		}
	}
}

func TestGeneratedAfterMonotone(t *testing.T) {
	prev := 0.0
	for _, steps := range []int{1, 2, 5, 10, 50, 100} {
		g := GeneratedAfter(64, 1, 1.1, 64, steps)
		if g <= prev {
			t.Fatalf("GeneratedAfter not increasing at t=%d: %v <= %v", steps, g, prev)
		}
		prev = g
	}
	if GeneratedAfter(64, 1, 1.1, 64, 0) != 0 {
		t.Fatal("t=0 should generate nothing")
	}
}

func TestOpsToGenerateInvertsGeneratedAfter(t *testing.T) {
	n, delta, f, t0 := 64, 1, 1.1, 64.0
	for _, target := range []float64{5, 50, 500, 5000} {
		ops := OpsToGenerate(n, delta, f, t0, target)
		if ops < 1 {
			t.Fatalf("target %v: non-positive ops %d", target, ops)
		}
		if got := GeneratedAfter(n, delta, f, t0, ops); got < target {
			t.Fatalf("target %v: %d ops generate only %v", target, ops, got)
		}
		if ops > 1 {
			if got := GeneratedAfter(n, delta, f, t0, ops-1); got >= target {
				t.Fatalf("target %v: already reached at %d ops (%v)", target, ops-1, got)
			}
		}
	}
	if OpsToGenerate(64, 1, 1.1, 64, 0) != 0 {
		t.Fatal("target 0 needs 0 ops")
	}
}

// TestGrowthLogarithmicInVolume: ops grow logarithmically in the volume.
func TestGrowthLogarithmicInVolume(t *testing.T) {
	ops1k := OpsToGenerate(64, 1, 1.1, 64, 1000)
	ops1m := OpsToGenerate(64, 1, 1.1, 64, 1000000)
	if ops1m > ops1k*4 {
		t.Fatalf("ops grew super-logarithmically: %d for 1e3, %d for 1e6", ops1k, ops1m)
	}
}

// TestGrowthLinearInN: unlike the decrease cost, distribution from a
// single source is inherently ~linear in n per doubling of the total.
func TestGrowthLinearInN(t *testing.T) {
	ops64 := OpsToGenerate(64, 1, 1.1, 64, 10000)
	ops256 := OpsToGenerate(256, 1, 1.1, 256, 40000) // same per-proc volume
	ratio := float64(ops256) / float64(ops64)
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("expected ~4x ops at 4x n, got %d vs %d (ratio %.2f)", ops256, ops64, ratio)
	}
}

// TestGrowthProcessMatchesClosedForm: the Monte Carlo simulation of the
// actual random-candidate process lands near the steady-state prediction.
func TestGrowthProcessMatchesClosedForm(t *testing.T) {
	for _, tc := range []struct {
		n, delta int
		f        float64
	}{{64, 1, 1.1}, {64, 4, 1.1}, {32, 2, 1.4}} {
		target := 5000.0
		mean, std := GrowthProcess(tc.n, tc.delta, tc.f, target, 60, 31)
		predicted := float64(OpsToGenerate(tc.n, tc.delta, tc.f, float64(tc.n), target))
		t.Logf("n=%d δ=%d f=%v: simulated %.1f±%.1f ops, closed form %v",
			tc.n, tc.delta, tc.f, mean, std, predicted)
		if math.Abs(mean-predicted) > 0.2*predicted+10 {
			t.Fatalf("simulated %.1f far from predicted %v", mean, predicted)
		}
	}
}

// TestGrowthFasterWithLargerF: larger f distributes a load volume with
// fewer balancing operations — the §6 cost/quality tradeoff from the
// growth side.
func TestGrowthFasterWithLargerF(t *testing.T) {
	slow, _ := GrowthProcess(64, 1, 1.1, 10000, 50, 32)
	fast, _ := GrowthProcess(64, 1, 1.8, 10000, 50, 33)
	if fast >= slow {
		t.Fatalf("f=1.8 (%v ops) not cheaper than f=1.1 (%v ops)", fast, slow)
	}
}
