package cluster

import (
	"time"

	"lmbalance/internal/rng"
	"lmbalance/internal/wire"
)

// Serving-path support: client job submissions become load units, load
// units carry job records, and completed units are routed back to the
// job's origin node. See internal/serve for the TCP front-end; this
// file is the node-side half.
//
// # Records ride the load
//
// In serve mode every load unit was created by a client submission, and
// each unit is tagged with a job record (wire.JobRef). Records live in
// a per-node FIFO parallel to the integer load count:
//
//   - ingest pushes one record per unit and bumps load;
//   - a consume step pops the oldest record with the unit it completes
//     (a consume draw with no record on hand is skipped — the unit's
//     record is still in flight, so the unit waits for its identity);
//   - balancing transfers ship records along with the load they move:
//     a JobMove naming the migrating jobs precedes the Transfer (or the
//     TransferAck, for give-backs) on the same FIFO link.
//
// Globally Σrecords == Σload at all times: ingest and consume change
// both together, and migration moves both conservatively. Per node the
// two can diverge transiently — the protocol applies load deltas
// eagerly while records travel as messages — so each node tracks what
// it still owes per peer and settles from its record FIFO as records
// arrive (newest first, so the oldest jobs stay near their consume
// point and FCFS order is approximately preserved). Settlement is
// aggressive: a node pays whatever records it holds toward any debt,
// even below its own load, because every payment strictly shrinks the
// cluster-wide debt — chains and cycles of obligations drain to zero,
// and any leftover mutual debt is provably record-free and loadless
// (no job is behind it). The upshot: every ingested unit is eventually
// consumed next to a record, and every record is eventually popped —
// no job stalls forever with work outstanding.

// Submit is one accepted client job entering a node's ingest stream:
// Units load units tagged with the origin-local job id ID.
type Submit struct {
	ID    uint64
	Units int
}

// Journey is one unit's journey record, assembled at completion from
// the stamps its wire.JobRef accumulated (ingest wall clock at the
// origin, JobMove hop count, summed per-hop in-flight time) plus the
// consume and completion-report stamps. All clocks are server-side
// unix nanos — the origin stamps ingest, the consuming node stamps
// consume, the origin stamps done when the JobDone lands — so the
// decomposition needs no client clock sync. A unit that rode frames
// from a pre-v3 peer carries zero stamps; consumers must treat zero as
// "unknown", not "instantaneous".
type Journey struct {
	Hops       int   // JobMove hops the unit took before being consumed
	IngestNS   int64 // origin ingest wall clock
	TransferNS int64 // accumulated wire in-flight nanos across hops
	ConsumeNS  int64 // consuming node's consume wall clock
	DoneNS     int64 // origin's wall clock when the completion landed
}

// ServeHooks connects a node to a serving front-end. The node drains
// Ingest in every phase of its event loop (stepping, mid-protocol,
// idle) so a submission is never blocked behind the balancing protocol,
// and calls Complete once per finished unit of a job that originated
// here — possibly consumed on a distant node and routed back via
// JobDone — with that unit's journey record. Complete is called from
// the node goroutine: implementations must not block (internal/serve
// hands off to per-connection writer goroutines).
type ServeHooks struct {
	Ingest   <-chan Submit
	Complete func(id uint64, j Journey)
}

// jobOpSalt separates job trace-op ids from balancing-operation ids.
const jobOpSalt = 0x6a6f625f6f70 // "job_op"

// JobOp derives the deterministic nonzero trace-operation id for a job,
// so a job's ingest → migrate → consume → done timeline can be stitched
// across nodes by /trace?op= exactly like a balancing operation's.
func JobOp(origin int, id uint64) uint64 {
	op := rng.Mix64(jobOpSalt, rng.Mix64(uint64(origin), id))
	if op == 0 {
		op = 1
	}
	return op
}

// recCount returns the number of job records held.
func (n *Node) recCount() int { return len(n.recs) - n.recHead }

// pushRecord appends one record to the FIFO tail.
func (n *Node) pushRecord(r wire.JobRef) {
	n.recs = append(n.recs, r)
}

// popOldest removes the record at the FIFO head — the consume side.
func (n *Node) popOldest() wire.JobRef {
	r := n.recs[n.recHead]
	n.recHead++
	if n.recHead > 64 && n.recHead*2 >= len(n.recs) {
		n.recs = append(n.recs[:0], n.recs[n.recHead:]...)
		n.recHead = 0
	}
	return r
}

// popNewest removes the record at the FIFO tail — the migration side,
// keeping the oldest jobs near their local consume point.
func (n *Node) popNewest() wire.JobRef {
	r := n.recs[len(n.recs)-1]
	n.recs = n.recs[:len(n.recs)-1]
	return r
}

// ingestSubmit applies one client submission: Units load units, each
// tagged with the job's record. The server side has already stamped the
// submission time; from here the units are ordinary load the balancing
// protocol may move anywhere.
func (n *Node) ingestSubmit(s Submit) {
	if s.Units < 1 || n.cfg.Serve == nil {
		return
	}
	rec := wire.JobRef{Origin: n.cfg.ID, ID: s.ID, IngestNS: time.Now().UnixNano()}
	for i := 0; i < s.Units; i++ {
		n.pushRecord(rec)
	}
	n.load += s.Units
	n.stats.Generated += int64(s.Units)
	n.stats.Ingested += int64(s.Units)
	n.met.generated.Add(int64(s.Units))
	n.met.ingested.Add(int64(s.Units))
	n.met.records.Set(int64(n.recCount()))
	n.met.loadGauge.Set(int64(n.load))
	n.met.traceOp(n.cfg.ID, JobOp(n.cfg.ID, s.ID), "ingest", "job=%d units=%d load=%d", s.ID, s.Units, n.load)
	// Fresh records may let pending debts settle.
	n.settleOwed(0)
}

// completeOldest finishes one consumed unit: pop the oldest record and
// either complete it locally or route a JobDone to its origin, carrying
// the record's journey stamps either way.
func (n *Node) completeOldest() {
	rec := n.popOldest()
	n.met.records.Set(int64(n.recCount()))
	now := time.Now().UnixNano()
	if rec.Origin == n.cfg.ID {
		n.met.traceOp(n.cfg.ID, JobOp(rec.Origin, rec.ID), "consume", "job=%d local=true hops=%d", rec.ID, rec.Hops)
		n.serveComplete(rec.ID, Journey{
			Hops: rec.Hops, IngestNS: rec.IngestNS, TransferNS: rec.TransferNS,
			ConsumeNS: now, DoneNS: now,
		})
		return
	}
	n.met.traceOp(n.cfg.ID, JobOp(rec.Origin, rec.ID), "consume", "job=%d origin=%d hops=%d", rec.ID, rec.Origin, rec.Hops)
	n.send(rec.Origin, wire.Msg{
		Kind: wire.JobDone, Job: rec.ID, Op: JobOp(rec.Origin, rec.ID),
		IngestNS: rec.IngestNS, ConsumeNS: now,
		Hops: rec.Hops, TransferNS: rec.TransferNS,
	})
}

// serveComplete reports one finished unit of a job that originated at
// this node to the serving front-end.
func (n *Node) serveComplete(id uint64, j Journey) {
	n.stats.UnitsDone++
	n.met.unitsDone.Inc()
	if n.cfg.Flight != nil {
		n.cfg.Flight.Complete(JobOp(n.cfg.ID, id), id, j.Hops, j.DoneNS-j.IngestNS, j.TransferNS)
	}
	if n.cfg.Serve != nil && n.cfg.Serve.Complete != nil {
		n.cfg.Serve.Complete(id, j)
	}
}

// owe records that this node must ship k job records to peer p (its
// load was already moved by a transfer whose records it did not hold at
// the time, or are being shipped now by settleOwed).
func (n *Node) owe(p, k int) {
	if n.cfg.Serve == nil || k <= 0 {
		return
	}
	if n.owed == nil {
		n.owed = make(map[int]int, n.cfg.Delta)
	}
	n.owed[p] += k
}

// settleOwed pays as many outstanding record debts as the FIFO allows,
// newest records first, in JobMove frames of at most MaxJobsPerMsg.
// op, when nonzero, stamps the frames with the balancing operation that
// created the debt (so the records show up on that operation's trace);
// later top-up payments go out with op 0.
func (n *Node) settleOwed(op uint64) {
	if len(n.owed) == 0 {
		return
	}
	for p, k := range n.owed {
		for k > 0 && n.recCount() > 0 {
			batch := k
			if batch > wire.MaxJobsPerMsg {
				batch = wire.MaxJobsPerMsg
			}
			if rc := n.recCount(); batch > rc {
				batch = rc
			}
			jobs := make([]wire.JobRef, batch)
			for i := range jobs {
				jobs[i] = n.popNewest()
			}
			n.send(p, wire.Msg{
				Kind: wire.JobMove, Op: op, Jobs: jobs,
				SentNS: time.Now().UnixNano(),
			})
			k -= batch
		}
		if k == 0 {
			delete(n.owed, p)
		} else {
			n.owed[p] = k
		}
	}
	n.met.records.Set(int64(n.recCount()))
}

// handleJobMove ingests migrated records. Each gains a hop and the
// frame's in-flight time (receive clock minus the sender's send stamp,
// clamped at zero against clock skew; frames from pre-v3 peers carry no
// stamp, so their hop contributes no transfer time rather than a bogus
// one). The records join the FIFO tail and may immediately settle this
// node's own debts (obligation chains and cycles drain this way).
func (n *Node) handleJobMove(m wire.Msg) {
	if n.cfg.Serve == nil {
		return
	}
	var flight int64
	if m.SentNS > 0 {
		if d := time.Now().UnixNano() - m.SentNS; d > 0 {
			flight = d
		}
	}
	for _, r := range m.Jobs {
		r.Hops++
		r.TransferNS += flight
		n.pushRecord(r)
	}
	n.met.records.Set(int64(n.recCount()))
	n.settleOwed(0)
}

// handleJobDone completes one unit of a job that originated here but
// was consumed elsewhere, stamping the completion-report time that
// closes the unit's journey.
func (n *Node) handleJobDone(m wire.Msg) {
	if n.cfg.Serve == nil {
		return
	}
	n.met.traceOp(n.cfg.ID, m.Op, "done_routed", "job=%d from=%d hops=%d", m.Job, m.From, m.Hops)
	n.serveComplete(m.Job, Journey{
		Hops: m.Hops, IngestNS: m.IngestNS, TransferNS: m.TransferNS,
		ConsumeNS: m.ConsumeNS, DoneNS: time.Now().UnixNano(),
	})
}
