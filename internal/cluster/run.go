package cluster

import (
	"fmt"
	"time"

	"lmbalance/internal/flight"
	"lmbalance/internal/obs"
	"lmbalance/internal/wire"
)

// ClusterConfig parameterizes an in-process cluster run: N nodes of the
// given shape, one per transport. It is the multi-node convenience
// around Config — cmd/lbnode's -spawn mode, the WireCost experiment and
// the integration tests all run through it.
type ClusterConfig struct {
	// N, Delta, F, Steps as in Config.
	N     int
	Delta int
	F     float64
	Steps int
	// GenP[i] and ConP[i] are node i's per-step generate/consume
	// probabilities. Length N, or length 1 to apply to all nodes
	// (netsim's convention). Empty selects the defaults 0.5 / 0.4.
	GenP, ConP []float64
	// Seed seeds the whole cluster; node i draws from the stream
	// rng.Mix64(Seed, i).
	Seed uint64
	// Timeout, FreezeTimeout, Tick, MinInitGap as in Config.
	Timeout, FreezeTimeout, Tick, MinInitGap time.Duration
	// Pace, PaceMaxGap, PaceMult, PaceDec as in Config: the initiation
	// pacing policy, applied to every node.
	Pace       PaceMode
	PaceMaxGap time.Duration
	PaceMult   float64
	PaceDec    time.Duration
	// Obs is handed to every node, so the whole cluster aggregates into
	// one registry (abort reasons, phase timings, the live load
	// distribution). Nil disables instrumentation.
	Obs *obs.Registry
	// ObsPerNode, when non-empty (length N), gives node i its own
	// registry instead of the shared Obs — the multi-process
	// observability shape run in one process: each node serves its own
	// debug endpoint and obs.Aggregate merges the scrapes.
	ObsPerNode []*obs.Registry
	// StepInterval, NoBalance, Stop as in Config, applied to every node.
	StepInterval time.Duration
	NoBalance    bool
	Stop         <-chan struct{}
	// ServePerNode, when non-empty (length N), puts node i in serve mode
	// with the given hooks (nil entries leave that node plain). Serve
	// mode requires the node's GenP to be 0.
	ServePerNode []*ServeHooks
	// Flight, when non-empty (length N), gives node i its flight
	// recorder (nil entries leave that node unrecorded). The caller must
	// have wrapped transports[i] with Flight[i].Tap so frames and local
	// decisions land in the same recording.
	Flight []*flight.Recorder
}

func probAt(ps []float64, i int) float64 {
	if len(ps) == 1 {
		return ps[0]
	}
	return ps[i]
}

// Result is the outcome of an in-process cluster run.
type Result struct {
	Nodes   []Stats
	Summary Summary // the coordinator's Bye-derived accounting
	Elapsed time.Duration
}

// TotalLoad returns the sum of final loads.
func (r *Result) TotalLoad() int64 {
	var sum int64
	for _, n := range r.Nodes {
		sum += int64(n.FinalLoad)
	}
	return sum
}

// Spread returns max−min of final loads.
func (r *Result) Spread() int {
	lo, hi := r.Nodes[0].FinalLoad, r.Nodes[0].FinalLoad
	for _, n := range r.Nodes[1:] {
		if n.FinalLoad < lo {
			lo = n.FinalLoad
		}
		if n.FinalLoad > hi {
			hi = n.FinalLoad
		}
	}
	return hi - lo
}

// Messages returns the total messages put on the wire.
func (r *Result) Messages() int64 {
	var sum int64
	for _, n := range r.Nodes {
		sum += n.MsgsSent
	}
	return sum
}

// Bytes returns the total bytes put on the wire.
func (r *Result) Bytes() int64 {
	var sum int64
	for _, n := range r.Nodes {
		sum += n.BytesSent
	}
	return sum
}

// Completed returns the total completed balancing operations.
func (r *Result) Completed() int64 {
	var sum int64
	for _, n := range r.Nodes {
		sum += n.Completed
	}
	return sum
}

// Initiated returns the total initiated balancing operations.
func (r *Result) Initiated() int64 {
	var sum int64
	for _, n := range r.Nodes {
		sum += n.Initiated
	}
	return sum
}

// RateLimited returns the total deferral episodes across nodes, and
// RateLimitedSteps the raw deferred trigger firings (see Stats).
func (r *Result) RateLimited() (episodes, steps int64) {
	for _, n := range r.Nodes {
		episodes += n.RateLimited
		steps += n.RateLimitedSteps
	}
	return episodes, steps
}

// MeanPaceGap returns the mean end-of-run initiation gap across nodes.
func (r *Result) MeanPaceGap() time.Duration {
	if len(r.Nodes) == 0 {
		return 0
	}
	var sum time.Duration
	for _, n := range r.Nodes {
		sum += n.PaceGap
	}
	return sum / time.Duration(len(r.Nodes))
}

// Ingested returns the total load units accepted from client
// submissions (serve mode).
func (r *Result) Ingested() int64 {
	var sum int64
	for _, n := range r.Nodes {
		sum += n.Ingested
	}
	return sum
}

// UnitsDone returns the total units completed across all jobs (serve
// mode; counted at each job's origin node).
func (r *Result) UnitsDone() int64 {
	var sum int64
	for _, n := range r.Nodes {
		sum += n.UnitsDone
	}
	return sum
}

// RecordsHeld returns the job records still held at shutdown (serve
// mode; nonzero only when the run was stopped with work outstanding).
func (r *Result) RecordsHeld() int64 {
	var sum int64
	for _, n := range r.Nodes {
		sum += n.RecordsHeld
	}
	return sum
}

// JobsConserved reports serving-path work conservation: every ingested
// unit was either completed for its job or is still recorded on some
// node — the record-level analog of Conserved.
func (r *Result) JobsConserved() bool {
	return r.Ingested() == r.UnitsDone()+r.RecordsHeld()
}

// Conserved reports exact packet conservation, computed from the
// per-node counters (every node's own ground truth, independent of the
// coordinator's Bye-message bookkeeping — the two must agree).
func (r *Result) Conserved() bool {
	var gen, con int64
	for _, n := range r.Nodes {
		gen += n.Generated
		con += n.Consumed
	}
	return r.TotalLoad() == gen-con
}

// RunCluster starts one node per transport and blocks until the whole
// cluster has retired through the two-phase shutdown. transports[i] is
// node i's; each node closes its own transport.
func RunCluster(cfg ClusterConfig, transports []wire.Transport) (*Result, error) {
	nodes, err := NewNodes(cfg, transports)
	if err != nil {
		return nil, err
	}
	return RunNodes(nodes)
}

// NewNodes validates the configuration and constructs — without
// starting — one node per transport. It exists for embedders that need
// the node handles before the run begins (e.g. cmd/lbnode wiring each
// node's id and live epoch into its own /healthz); RunNodes then runs
// them. On error every transport is closed.
func NewNodes(cfg ClusterConfig, transports []wire.Transport) ([]*Node, error) {
	if len(transports) != cfg.N {
		return nil, fmt.Errorf("cluster: %d transports for %d nodes", len(transports), cfg.N)
	}
	for _, ps := range [][]float64{cfg.GenP, cfg.ConP} {
		if len(ps) > 1 && len(ps) != cfg.N {
			return nil, fmt.Errorf("cluster: probability slice length %d, need 1 or %d", len(ps), cfg.N)
		}
	}
	if len(cfg.ObsPerNode) > 0 && len(cfg.ObsPerNode) != cfg.N {
		return nil, fmt.Errorf("cluster: %d per-node registries for %d nodes", len(cfg.ObsPerNode), cfg.N)
	}
	if len(cfg.ServePerNode) > 0 && len(cfg.ServePerNode) != cfg.N {
		return nil, fmt.Errorf("cluster: %d serve hooks for %d nodes", len(cfg.ServePerNode), cfg.N)
	}
	if len(cfg.Flight) > 0 && len(cfg.Flight) != cfg.N {
		return nil, fmt.Errorf("cluster: %d flight recorders for %d nodes", len(cfg.Flight), cfg.N)
	}
	if len(cfg.GenP) == 0 {
		cfg.GenP = []float64{0.5}
	}
	if len(cfg.ConP) == 0 {
		cfg.ConP = []float64{0.4}
	}
	nodes := make([]*Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		reg := cfg.Obs
		if len(cfg.ObsPerNode) > 0 {
			reg = cfg.ObsPerNode[i]
		}
		var serve *ServeHooks
		if len(cfg.ServePerNode) > 0 {
			serve = cfg.ServePerNode[i]
		}
		var rec *flight.Recorder
		if len(cfg.Flight) > 0 {
			rec = cfg.Flight[i]
		}
		n, err := New(Config{
			ID: i, N: cfg.N, Delta: cfg.Delta, F: cfg.F, Steps: cfg.Steps,
			GenP: probAt(cfg.GenP, i), ConP: probAt(cfg.ConP, i),
			Seed: cfg.Seed, Transport: transports[i],
			Timeout: cfg.Timeout, FreezeTimeout: cfg.FreezeTimeout, Tick: cfg.Tick,
			MinInitGap: cfg.MinInitGap,
			Pace:       cfg.Pace, PaceMaxGap: cfg.PaceMaxGap,
			PaceMult: cfg.PaceMult, PaceDec: cfg.PaceDec,
			Obs:          reg,
			StepInterval: cfg.StepInterval, NoBalance: cfg.NoBalance,
			Stop: cfg.Stop, Serve: serve, Flight: rec,
		})
		if err != nil {
			// Nothing started yet: close all transports and bail.
			for _, tr := range transports {
				tr.Close()
			}
			return nil, err
		}
		nodes[i] = n
	}
	return nodes, nil
}

// RunNodes starts every prepared node and blocks until the cluster has
// retired, assembling the combined Result.
func RunNodes(nodes []*Node) (*Result, error) {
	start := time.Now()
	for _, n := range nodes {
		n.Start()
	}
	res := &Result{Nodes: make([]Stats, len(nodes))}
	var firstErr error
	for i, n := range nodes {
		rep, err := n.Wait()
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: node %d: %w", i, err)
		}
		if rep != nil {
			res.Nodes[i] = rep.Stats
			if rep.Summary != nil {
				res.Summary = *rep.Summary
			}
		}
	}
	res.Elapsed = time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}
