package cluster

import (
	"bytes"
	"strings"
	"testing"

	"lmbalance/internal/obs"
)

// TestClusterMetricsPopulated runs a loopback cluster with a shared
// registry and checks that the protocol's instrumentation — counters,
// phase histograms, the load distribution and the event trace — agrees
// with the per-node Stats the run already reports.
func TestClusterMetricsPopulated(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := ClusterConfig{N: 8, Delta: 2, F: 1.2, Steps: 600, Seed: 42, Obs: reg}
	res := runLoop(t, cfg)
	if !res.Conserved() {
		t.Fatalf("conservation violated: total %d", res.TotalLoad())
	}

	if got := reg.Counter("cluster_protocols_initiated_total").Value(); got != res.Initiated() {
		t.Fatalf("initiated counter %d != stats %d", got, res.Initiated())
	}
	if got := reg.Counter("cluster_protocols_completed_total").Value(); got != res.Completed() {
		t.Fatalf("completed counter %d != stats %d", got, res.Completed())
	}
	var aborted int64
	for _, n := range res.Nodes {
		aborted += n.Aborted
	}
	var byReason int64
	for _, r := range []string{AbortPeerFrozen, AbortTimeout, AbortStaleEpoch, AbortLinkDown} {
		byReason += reg.Counter(AbortMetric(r)).Value()
	}
	if byReason != aborted {
		t.Fatalf("per-reason aborts %d != stats aborts %d", byReason, aborted)
	}
	// On loopback nothing times out: every abort is a busy partner.
	if got := reg.Counter(AbortMetric(AbortPeerFrozen)).Value(); got != aborted {
		t.Fatalf("loopback aborts should all be peer_frozen: %d of %d", got, aborted)
	}

	// Every initiated protocol resolves or abandons, so the collect
	// histogram counts exactly the resolved ones; the load histogram
	// carries one sample per workload step.
	collect := reg.Histogram(phaseName(PhaseCollect), obs.LatencyBuckets)
	if collect.Count() == 0 {
		t.Fatal("collect phase histogram empty")
	}
	loadHist := reg.Histogram("cluster_load", obs.LoadBuckets)
	if got, want := loadHist.Count(), int64(cfg.N*cfg.Steps); got != want {
		t.Fatalf("load histogram has %d samples, want %d", got, want)
	}
	if vd := loadHist.VD(); vd < 0 {
		t.Fatalf("negative variation density %v", vd)
	}

	// Trace carries the protocol's life cycle.
	kinds := map[string]bool{}
	for _, ev := range reg.Tracer().Events() {
		kinds[ev.Kind] = true
	}
	for _, k := range []string{"initiate", "freeze", "resolve", "quit_broadcast"} {
		if !kinds[k] {
			t.Fatalf("trace missing %q events (saw %v)", k, kinds)
		}
	}

	// The exposition carries the per-reason series and phase histograms.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`cluster_aborts_total{reason="peer_frozen"}`,
		`cluster_phase_seconds_count{phase="collect"}`,
		`cluster_node_load{node="0"}`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

// TestClusterNilRegistry makes sure a run with instrumentation disabled
// (the default) still works — every handle is nil and no-ops.
func TestClusterNilRegistry(t *testing.T) {
	res := runLoop(t, ClusterConfig{N: 4, Delta: 1, F: 1.3, Steps: 200, Seed: 7})
	if !res.Conserved() {
		t.Fatalf("conservation violated: total %d", res.TotalLoad())
	}
}
