// Package cluster is the wire-level runtime of the balancing protocol:
// netsim's freeze/ack/transfer state machine generalized to run over
// any wire.Transport, so the same node code balances over in-memory
// loopback, real TCP sockets (cmd/lbnode), or any transport a
// downstream embedder provides.
//
// # Protocol
//
// The balancing protocol is netsim's (see that package's comment): a
// node whose load changed by the factor f since its last balancing
// operation freezes δ random partners, collects their loads, and deals
// out ±1 equal shares; any busy partner aborts the round. Three things
// change at the wire level:
//
//   - Transfers are acknowledged (TransferAck). On channels, delivery
//     is atomic with the send; on a real network the initiator must
//     know when its transfers have landed before it may declare itself
//     quiet, or shutdown could race a transfer and lose packets.
//   - Timeouts are wall-clock. The initiator reply timeout and the
//     frozen-partner self-release (with protocol epochs to reject stale
//     replies) carry over from the netsim fault layer, but count real
//     time: a live TCP peer answers in microseconds, so a missing reply
//     means a dead or unreachable peer, not an unlucky scheduler slice.
//   - Shutdown is a distributed two-phase protocol instead of an
//     in-process WaitGroup. Phase one (quiesce): each node that has
//     finished its steps, is not mid-protocol, and has no unacked
//     transfers sends Idle to the coordinator (node 0) — once — and
//     keeps serving as a balancing partner. Because a node only goes
//     Idle after its transfers are acked, and only stepping nodes
//     initiate, all transfers are applied before the last Idle arrives.
//     Phase two (retire): the coordinator broadcasts Quit; every node
//     answers Bye carrying its final load and lifetime generated and
//     consumed counts, then closes. The coordinator sums the Byes and
//     checks exact packet conservation across the cluster.
package cluster

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"lmbalance/internal/flight"
	"lmbalance/internal/obs"
	"lmbalance/internal/rng"
	"lmbalance/internal/wire"
)

// Defaults for the wall-clock knobs. The reply timeout is generous:
// on a healthy network replies arrive in microseconds, so it only
// fires when a peer is down, and a premature fire costs only an abort.
const (
	DefaultTimeout      = 2 * time.Second
	DefaultTick         = 20 * time.Millisecond
	defaultBackoffSteps = 8
)

// Config parameterizes one node of a cluster.
type Config struct {
	// ID is this node's identity, 0 <= ID < N. Node 0 coordinates the
	// shutdown protocol.
	ID int
	// N is the cluster size (>= 2).
	N int
	// Delta and F are the algorithm parameters (1 <= Delta < N, F > 1).
	Delta int
	F     float64
	// Steps is the number of workload steps this node performs.
	Steps int
	// GenP and ConP are this node's per-step generate/consume
	// probabilities (both may fire in one step, the paper's §7 model).
	GenP, ConP float64
	// Seed is the cluster-wide seed; the node draws from the stream
	// rng.New(rng.Mix64(Seed, ID)) so nodes are independent but the
	// whole cluster is reproducible from one number.
	Seed uint64
	// Transport carries the protocol. The node owns it and closes it
	// when the run ends.
	Transport wire.Transport
	// Timeout is the initiator's reply timeout; a protocol missing
	// replies for longer aborts, releases the partners that answered,
	// and re-arms with randomized backoff. 0 selects DefaultTimeout.
	Timeout time.Duration
	// FreezeTimeout is how long a frozen partner waits for its release
	// or transfer before unfreezing itself (the escape hatch when an
	// initiator dies mid-protocol). 0 selects 4×Timeout.
	FreezeTimeout time.Duration
	// Tick is the granularity at which a blocked node checks its
	// timeouts. 0 selects DefaultTick.
	Tick time.Duration
	// MinInitGap, when positive, is the minimum wall-clock interval
	// between this node's own balance initiations: a trigger that fires
	// sooner is deferred (the trigger condition re-evaluates on later
	// steps, so the initiation is delayed, not lost unless the load
	// recovers on its own). It paces initiation pressure on real
	// networks, where simultaneous initiators freeze each other into
	// near-total abort storms. Under PaceFixed it is the whole policy
	// (0 disables pacing); under PaceAdaptive it is the controller's
	// optional lower bound.
	MinInitGap time.Duration
	// Pace selects the pacing policy. The zero value (PaceFixed) is the
	// pre-controller behavior: a constant MinInitGap floor, or nothing.
	// PaceAdaptive runs the AIMD initiation controller (see pacer.go):
	// per-node dynamic gap, multiplicative increase on peer_frozen
	// aborts, additive decrease on successful collects.
	Pace PaceMode
	// PaceMaxGap caps the adaptive gap (0 selects DefaultPaceMaxGap).
	PaceMaxGap time.Duration
	// PaceMult is the adaptive multiplicative-increase factor, > 1
	// (0 selects DefaultPaceMult).
	PaceMult float64
	// PaceDec is the adaptive additive-decrease step per successful
	// collect (0 selects DefaultPaceDec).
	PaceDec time.Duration
	// Obs optionally attaches the node's instrumentation — per-reason
	// abort counters, per-phase latency histograms, the live load
	// distribution, and the protocol event trace — to a registry (see
	// internal/obs and metrics.go). Nodes sharing one registry aggregate
	// into cluster-wide series. Nil disables instrumentation at ~zero
	// cost.
	Obs *obs.Registry
	// StepInterval, when positive, paces workload steps on the wall
	// clock: one step per interval instead of back-to-back. With ConP
	// as the per-step consume probability this fixes the node's service
	// capacity at ConP/StepInterval units per second — the knob that
	// makes an open-loop serving workload meaningful. 0 keeps the
	// original free-running behavior.
	StepInterval time.Duration
	// NoBalance disables balancing initiations (the node still answers
	// other initiators' requests — but with every node NoBalance, no
	// load ever moves). The serving baseline: what sojourn looks like
	// when every job runs where it landed.
	NoBalance bool
	// Stop, when non-nil, lets the embedder end the workload early:
	// when it is closed the node treats its remaining steps as done and
	// proceeds to the normal two-phase shutdown. The serving harness
	// uses it to end a wall-clock-paced run as soon as the offered work
	// has drained rather than paying for the full Steps bound.
	Stop <-chan struct{}
	// Serve, when non-nil, puts the node in serve mode: load units come
	// from client submissions (Ingest) instead of Bernoulli generation,
	// each unit carries a job record that migrates with balancing
	// transfers, and completed units are reported back per origin
	// (Complete) — see serve.go. Serve mode requires GenP == 0.
	Serve *ServeHooks
	// Flight optionally records the node's protocol decisions into its
	// black-box flight recorder (see internal/flight) alongside the
	// frames the recorder's transport tap already captures. The embedder
	// wraps Transport with Flight.Tap and passes the same recorder here.
	// Nil disables local-decision recording at ~zero cost.
	Flight *flight.Recorder
}

func (c *Config) validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("cluster: N = %d, need >= 2", c.N)
	case c.ID < 0 || c.ID >= c.N:
		return fmt.Errorf("cluster: ID = %d, need 0 <= ID < %d", c.ID, c.N)
	case c.Delta < 1 || c.Delta >= c.N:
		return fmt.Errorf("cluster: Delta = %d, need 1 <= Delta < N", c.Delta)
	case c.F <= 1:
		return fmt.Errorf("cluster: F = %v, need > 1", c.F)
	case c.Steps < 1:
		return fmt.Errorf("cluster: Steps = %d, need >= 1", c.Steps)
	case c.GenP < 0 || c.GenP > 1 || c.ConP < 0 || c.ConP > 1:
		return fmt.Errorf("cluster: probabilities (%v, %v) outside [0,1]", c.GenP, c.ConP)
	case c.Transport == nil:
		return fmt.Errorf("cluster: nil Transport")
	case c.Timeout < 0 || c.FreezeTimeout < 0 || c.Tick < 0 || c.MinInitGap < 0:
		return fmt.Errorf("cluster: negative timeout")
	case c.Pace != PaceFixed && c.Pace != PaceOff && c.Pace != PaceAdaptive:
		return fmt.Errorf("cluster: unknown pace mode %d", int(c.Pace))
	case c.PaceMaxGap < 0 || c.PaceDec < 0:
		return fmt.Errorf("cluster: negative pacer bound")
	case c.PaceMult != 0 && c.PaceMult <= 1:
		return fmt.Errorf("cluster: PaceMult = %v, need > 1", c.PaceMult)
	case c.PaceMaxGap > 0 && c.MinInitGap > c.PaceMaxGap:
		return fmt.Errorf("cluster: MinInitGap %v exceeds PaceMaxGap %v", c.MinInitGap, c.PaceMaxGap)
	case c.StepInterval < 0:
		return fmt.Errorf("cluster: negative StepInterval %v", c.StepInterval)
	case c.Serve != nil && c.Serve.Ingest == nil:
		return fmt.Errorf("cluster: Serve with nil Ingest channel")
	case c.Serve != nil && c.GenP != 0:
		// In serve mode every load unit must carry a job record; an
		// anonymous Bernoulli unit would either strand a consume (no
		// record) or complete a job that was never submitted.
		return fmt.Errorf("cluster: Serve requires GenP == 0, got %v", c.GenP)
	}
	return nil
}

func (c *Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

func (c *Config) freezeTimeout() time.Duration {
	if c.FreezeTimeout > 0 {
		return c.FreezeTimeout
	}
	// Several reply timeouts, so the initiator's own abort (and its
	// explicit release) wins in the common case.
	return 4 * c.timeout()
}

func (c *Config) tick() time.Duration {
	if c.Tick > 0 {
		return c.Tick
	}
	return DefaultTick
}

// Stats is one node's activity summary.
type Stats struct {
	ID            int
	FinalLoad     int
	Generated     int64
	Consumed      int64
	Initiated     int64 // balancing protocols started
	Completed     int64 // balancing protocols that transferred load
	Aborted       int64 // protocols aborted (busy partner or timeout)
	Timeouts      int64 // aborts caused by the reply timeout
	FreezeExpired int64 // freezes released by the partner's own timeout

	// Pacing accounting. RateLimited counts distinct deferral episodes:
	// maximal runs of consecutive trigger firings held back by the gap,
	// each ended by an actual initiation or by the imbalance resolving
	// on its own. RateLimitedSteps is the raw per-step deferral count —
	// one persistent imbalance re-fires the trigger every workload step
	// inside the gap window, so the raw count inflates by hundreds per
	// episode (the figure early EXPERIMENTS numbers quoted).
	RateLimited      int64
	RateLimitedSteps int64
	PaceBackoffs     int64         // adaptive gap increases (peer_frozen aborts)
	PaceRecovers     int64         // adaptive gap decreases (successful collects)
	PaceGap          time.Duration // the gap at the end of the run

	// Serving accounting (serve mode only, see serve.go).
	Ingested    int64 // load units accepted from client submissions
	UnitsDone   int64 // units completed for jobs that originated here
	RecordsHeld int64 // job records still in the FIFO at shutdown

	// Wire-level counters, from the transport.
	MsgsSent, MsgsRecv   int64
	BytesSent, BytesRecv int64
	SendErrors, Redials  int64
}

// Summary is the coordinator's cluster-wide accounting, summed from the
// Bye messages (plus its own counters).
type Summary struct {
	Nodes     int
	TotalLoad int64
	Generated int64
	Consumed  int64
}

// Conserved reports exact packet conservation: every generated packet
// is either consumed or still held by some node — none were lost or
// duplicated by balancing, in transit, or at shutdown.
func (s *Summary) Conserved() bool { return s.TotalLoad == s.Generated-s.Consumed }

// Report is the outcome of one node's run.
type Report struct {
	Stats Stats
	// Summary is non-nil only at the coordinator (node 0).
	Summary *Summary
}

// Node is one running cluster node.
type Node struct {
	cfg   Config
	rng   *rng.RNG
	opRNG *rng.RNG // dedicated stream for op ids; never touches workload draws
	done  chan struct{}
	rep   *Report
	err   error

	load int
	lOld int

	// initiator-side protocol state
	inflight   bool
	op         uint64 // current balancing-operation id (0 = none); minted per initiate
	lastInitAt time.Time
	// lastDoneAt is when the last protocol attempt finished (success or
	// abort). The adaptive pacer anchors its gap here rather than at
	// initiate: a congested attempt is itself many gap-widths long, so a
	// gap measured from initiate has always already expired by the time
	// the abort lands and would defer nothing (the collision analog:
	// Ethernet backs off from the collision, not from transmit start).
	lastDoneAt time.Time
	seq        uint64        // protocol epoch; bumped per initiate and per abandon
	epoch      atomic.Uint64 // mirrors seq for cross-goroutine readers (Epoch)
	awaiting   int
	sawBusy    bool
	ackedFrom  []int
	ackedLoads []int
	unacked    int // transfers sent but not yet acknowledged
	protoAt    time.Time
	staleSeen  bool        // stale-epoch reply arrived since initiate
	errsAt     int64       // transport-wide send errors at initiate (fallback attribution)
	peerErrsAt []int64     // per-partner link send errors at initiate (peer-exact attribution)
	xferSent   []time.Time // Transfer send times awaiting ack, FIFO (metrics only)

	// partner-side state
	frozen    bool
	frozenBy  int
	frozenSeq uint64
	frozenOp  uint64 // the freezing operation's id, echoed on our replies
	frozeAt   time.Time

	// serving state (serve mode only, see serve.go)
	recs    []wire.JobRef // job-record FIFO parallel to the load count
	recHead int
	owed    map[int]int // records owed per peer after eager load moves

	stepsDone int
	backoff   int
	signaled  bool // Idle sent (or, coordinator: own quiescence recorded)
	finished  bool
	candBuf   []int
	pacer     pacer
	deferring bool // inside a deferral episode (consecutive paced-out triggers)
	stats     Stats
	met       nodeMetrics

	// coordinator-side shutdown state
	idleFrom map[int]bool
	quitSent bool
	byes     int
	sum      Summary
}

// New validates the configuration and prepares a node; Start launches it.
func New(cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := &Node{
		cfg: cfg,
		rng: rng.New(rng.Mix64(cfg.Seed, uint64(cfg.ID))),
		// Op ids come from their own stream, salted off the workload
		// stream's seed: minting an id must not perturb the Bernoulli
		// draws, or turning tracing on would change the run.
		opRNG: rng.New(rng.Mix64(rng.Mix64(cfg.Seed, uint64(cfg.ID)), opStreamSalt)),
		done:  make(chan struct{}),
		pacer: newPacer(&cfg),
		met:   newNodeMetrics(cfg.Obs, cfg.ID),
	}
	n.met.paceGap.Set(int64(n.pacer.gapNow() / time.Microsecond))
	if cfg.ID == 0 {
		n.idleFrom = make(map[int]bool, cfg.N)
	}
	return n, nil
}

// opStreamSalt separates the op-id rng stream from the workload stream
// (which is seeded with Mix64(Seed, ID) directly).
const opStreamSalt = 0x6f705f6964 // "op_id"

// mintOp draws a fresh nonzero operation id. Ids are rng-derived, so a
// given (seed, node) mints the same id sequence on every run — traces
// are comparable across reruns — while distinct initiators collide with
// probability ~2^-64.
func (n *Node) mintOp() uint64 {
	for {
		if op := n.opRNG.Uint64(); op != 0 {
			return op
		}
	}
}

// ID returns this node's cluster id.
func (n *Node) ID() int { return n.cfg.ID }

// Epoch returns the node's current protocol epoch (the Seq stamped on
// its next initiation's messages). Safe to call from any goroutine —
// /healthz reports it live.
func (n *Node) Epoch() uint64 { return n.epoch.Load() }

// Start launches the node's event loop in its own goroutine.
func (n *Node) Start() {
	go func() {
		defer close(n.done)
		n.loop()
		n.report()
	}()
}

// Wait blocks until the node has retired and returns its report. The
// transport is closed by the time Wait returns.
func (n *Node) Wait() (*Report, error) {
	<-n.done
	return n.rep, n.err
}

// Run is Start followed by Wait.
func Run(cfg Config) (*Report, error) {
	n, err := New(cfg)
	if err != nil {
		return nil, err
	}
	n.Start()
	return n.Wait()
}

// report closes the transport and assembles the final Report. Close
// comes first: it flushes the outbound queues (the Bye may still be in
// one), so only afterwards are the traffic counters final.
func (n *Node) report() {
	if err := n.cfg.Transport.Close(); err != nil && n.err == nil {
		n.err = err
	}
	n.stats.ID = n.cfg.ID
	n.stats.FinalLoad = n.load
	n.stats.RecordsHeld = int64(n.recCount())
	n.stats.PaceGap = n.pacer.gapNow()
	ws := n.cfg.Transport.Stats()
	n.stats.MsgsSent, n.stats.MsgsRecv = ws.MsgsSent, ws.MsgsRecv
	n.stats.BytesSent, n.stats.BytesRecv = ws.BytesSent, ws.BytesRecv
	n.stats.SendErrors, n.stats.Redials = ws.SendErrors, ws.Redials
	n.cfg.Flight.Final(n.load, n.stats.Generated, n.stats.Consumed,
		n.stats.Ingested, n.stats.UnitsDone, n.stats.RecordsHeld)
	n.rep = &Report{Stats: n.stats}
	if n.cfg.ID == 0 {
		s := n.sum
		s.Nodes = n.cfg.N
		s.TotalLoad += int64(n.load)
		s.Generated += n.stats.Generated
		s.Consumed += n.stats.Consumed
		n.rep.Summary = &s
	}
}

// send stamps and transmits one message; transport-level delivery
// failures are counted by the transport, not surfaced per message.
func (n *Node) send(to int, m wire.Msg) {
	m.From = n.cfg.ID
	// Send errors only on a closed transport or bad peer id; neither
	// can happen while the loop runs, but stay defensive.
	_ = n.cfg.Transport.Send(to, m)
}

// loop is the node's event loop: the same never-block-while-not-
// draining discipline as netsim, with wall-clock timeout ticks. In
// serve mode the client ingest channel is drained in every phase —
// stepping, mid-protocol, idle — so a submission never waits on the
// balancing protocol.
func (n *Node) loop() {
	ticker := time.NewTicker(n.cfg.tick())
	defer ticker.Stop()
	inbox := n.cfg.Transport.Inbox()
	var ingest <-chan Submit // nil channel blocks forever when not serving
	if n.cfg.Serve != nil {
		ingest = n.cfg.Serve.Ingest
	}
	stop := n.cfg.Stop
	var stepC <-chan time.Time
	if n.cfg.StepInterval > 0 {
		stepTicker := time.NewTicker(n.cfg.StepInterval)
		defer stepTicker.Stop()
		stepC = stepTicker.C
	}
	for !n.finished {
		// Serve everything already queued.
		draining := true
		for draining && !n.finished {
			select {
			case m := <-inbox:
				n.handle(m)
			case s := <-ingest:
				n.ingestSubmit(s)
			default:
				draining = false
			}
		}
		if n.finished {
			return
		}
		// A closed Stop ends the workload: the remaining steps count as
		// done and the node heads into the normal two-phase shutdown.
		// (Nil-ed after firing so the closed channel cannot win every
		// select below.)
		if stop != nil {
			select {
			case <-stop:
				n.stepsDone = n.cfg.Steps
				stop = nil
			default:
			}
		}
		switch {
		case n.inflight || n.frozen:
			// Mid-protocol: no workload progress, but keep draining so
			// nobody stalls on us, and keep the timeouts breathing.
			select {
			case m := <-inbox:
				n.handle(m)
			case s := <-ingest:
				n.ingestSubmit(s)
			case <-ticker.C:
				n.checkTimeouts()
			}
		case n.stepsDone < n.cfg.Steps:
			if stepC != nil {
				// Wall-clock stepping: wait for the step tick, staying
				// responsive to traffic and ingest in the meantime.
				select {
				case m := <-inbox:
					n.handle(m)
				case s := <-ingest:
					n.ingestSubmit(s)
				case <-stepC:
					n.step()
				case <-ticker.C:
					n.checkTimeouts()
				}
			} else {
				n.step()
				// Yield so in-process clusters interleave on few CPUs.
				runtime.Gosched()
			}
		default:
			// Done stepping. Once quiet — no protocol in flight, all
			// transfers acked — report Idle (once), then serve as a
			// balancing partner until the coordinator retires us.
			if !n.signaled && n.unacked == 0 {
				n.signaled = true
				if n.cfg.ID == 0 {
					n.maybeQuit()
				} else {
					n.send(0, wire.Msg{Kind: wire.Idle})
				}
			}
			select {
			case m := <-inbox:
				n.handle(m)
			case s := <-ingest:
				n.ingestSubmit(s)
			case <-ticker.C:
				n.checkTimeouts()
			}
		}
	}
}

// checkTimeouts fires the initiator reply timeout and the frozen-
// partner self-release.
func (n *Node) checkTimeouts() {
	now := time.Now()
	if n.inflight && now.Sub(n.protoAt) > n.cfg.timeout() {
		n.stats.Timeouts++
		// Attribute the timeout before the epoch bumps: send errors on a
		// protocol partner's link during the protocol mean the wire ate
		// our messages; otherwise a stale-epoch reply means the partner
		// answered a protocol we had already abandoned; otherwise it is
		// a plain missing reply.
		reason := AbortTimeout
		switch {
		case n.partnerLinkErrored():
			reason = AbortLinkDown
		case n.staleSeen:
			reason = AbortStaleEpoch
		}
		n.met.abort[reason].Inc()
		n.met.traceOp(n.cfg.ID, n.op, "abort", "reason=%s seq=%d", reason, n.seq)
		if n.cfg.Flight != nil {
			n.cfg.Flight.Abort(n.op, n.seq, n.load, reason)
		}
		n.paceOutcome(reason, now.Sub(n.protoAt))
		n.abandon()
	}
	if n.frozen && now.Sub(n.frozeAt) > n.cfg.freezeTimeout() {
		n.stats.FreezeExpired++
		n.met.freezeExpired.Inc()
		n.met.phaseFrozen.ObserveSince(n.frozeAt)
		n.met.traceOp(n.cfg.ID, n.frozenOp, "freeze_expired", "by=%d", n.frozenBy)
		if n.cfg.Flight != nil {
			n.cfg.Flight.FreezeExpired(n.frozenOp, n.frozenBy)
		}
		n.frozen = false
	}
}

// partnerLinkErrored reports whether the transport dropped messages on
// the link to any partner of the in-flight protocol since initiate.
// Only those links matter: a failed send to an unrelated peer (another
// protocol's release, shutdown traffic) says nothing about why *this*
// protocol's replies are missing, and counting it would mislabel a
// plain timeout as link_down. Transports without per-peer accounting
// fall back to the transport-wide delta.
func (n *Node) partnerLinkErrored() bool {
	if ps, ok := n.cfg.Transport.(wire.PeerStatser); ok && len(n.peerErrsAt) == len(n.candBuf) {
		for i, c := range n.candBuf {
			if ps.PeerStats(c).SendErrors > n.peerErrsAt[i] {
				return true
			}
		}
		return false
	}
	return n.cfg.Transport.Stats().SendErrors > n.errsAt
}

// step performs one workload step and fires the trigger if needed.
func (n *Node) step() {
	n.stepsDone++
	if n.rng.Bernoulli(n.cfg.GenP) {
		n.load++
		n.stats.Generated++
		n.met.generated.Inc()
	}
	if n.rng.Bernoulli(n.cfg.ConP) && n.load > 0 {
		if n.cfg.Serve == nil {
			n.load--
			n.stats.Consumed++
			n.met.consumed.Inc()
		} else if n.recCount() > 0 {
			// Serve mode: a consume completes a specific job unit, so it
			// needs a record on hand. A unit whose record is still in
			// flight (JobMove chasing its Transfer) simply waits — the
			// skipped draw costs one service slot, it cannot lose work.
			n.load--
			n.stats.Consumed++
			n.met.consumed.Inc()
			n.completeOldest()
		}
	}
	// One load sample per workload step: the cluster-wide histogram's
	// online moments yield the live variation density (paper §5).
	n.met.loadHist.Observe(float64(n.load))
	n.met.loadGauge.Set(int64(n.load))
	if n.cfg.NoBalance {
		return
	}
	if n.backoff > 0 {
		n.backoff--
		return
	}
	if !n.trigger() {
		// No pressure to initiate: any deferral episode is over (the
		// imbalance resolved on its own, through consumption or an
		// inbound transfer).
		n.deferring = false
		return
	}
	// Pacing: a trigger inside the gap window is deferred, not
	// serviced — the condition re-fires on a later step while the load
	// imbalance persists. Consecutive deferred steps form one episode.
	// Fixed mode keeps the pre-controller anchor (gap between
	// initiations); adaptive anchors at the last attempt's outcome so a
	// backoff decided on an abort actually delays the retry.
	ref := n.lastInitAt
	if n.cfg.Pace == PaceAdaptive && n.lastDoneAt.After(ref) {
		ref = n.lastDoneAt
	}
	if gap := n.pacer.gapNow(); gap > 0 && !ref.IsZero() && time.Since(ref) < gap {
		n.stats.RateLimitedSteps++
		n.met.rateLimitedSteps.Inc()
		if !n.deferring {
			n.deferring = true
			n.stats.RateLimited++
			n.met.rateLimited.Inc()
		}
		return
	}
	n.deferring = false
	n.initiate()
}

// paceOutcome feeds one finished protocol attempt (reason "" = success)
// into the pacer and publishes the controller's observable state: the
// live gap gauge and the backoff/recovery transition counters.
func (n *Node) paceOutcome(reason string, elapsed time.Duration) {
	n.lastDoneAt = time.Now()
	switch n.pacer.onOutcome(reason, elapsed) {
	case +1:
		n.stats.PaceBackoffs++
		n.met.paceBackoff.Inc()
		if n.cfg.Flight != nil {
			n.cfg.Flight.PaceBackoff(n.pacer.gapNow())
		}
	case -1:
		n.stats.PaceRecovers++
		n.met.paceRecover.Inc()
	}
	n.met.paceGap.Set(int64(n.pacer.gapNow() / time.Microsecond))
}

// trigger is the factor-f condition with the strict-change guard.
func (n *Node) trigger() bool {
	if n.load > n.lOld && float64(n.load) >= n.cfg.F*float64(n.lOld) {
		return true
	}
	return n.load < n.lOld && float64(n.load)*n.cfg.F <= float64(n.lOld)
}

// initiate starts a balancing protocol with δ random partners.
func (n *Node) initiate() {
	n.candBuf = n.rng.SampleDistinct(n.cfg.N, n.cfg.Delta, n.cfg.ID, n.candBuf)
	n.inflight = true
	n.seq++
	n.epoch.Store(n.seq)
	n.op = n.mintOp()
	n.protoAt = time.Now()
	n.lastInitAt = n.protoAt
	n.awaiting = len(n.candBuf)
	n.sawBusy = false
	n.staleSeen = false
	n.errsAt = n.cfg.Transport.Stats().SendErrors
	n.peerErrsAt = n.peerErrsAt[:0]
	if ps, ok := n.cfg.Transport.(wire.PeerStatser); ok {
		for _, c := range n.candBuf {
			n.peerErrsAt = append(n.peerErrsAt, ps.PeerStats(c).SendErrors)
		}
	}
	n.ackedFrom = n.ackedFrom[:0]
	n.ackedLoads = n.ackedLoads[:0]
	n.stats.Initiated++
	n.met.initiated.Inc()
	n.met.traceOp(n.cfg.ID, n.op, "initiate", "seq=%d delta=%d load=%d", n.seq, len(n.candBuf), n.load)
	if n.cfg.Flight != nil {
		n.cfg.Flight.Initiate(n.op, n.seq, n.load, len(n.candBuf))
	}
	for _, c := range n.candBuf {
		n.send(c, wire.Msg{Kind: wire.FreezeReq, Seq: n.seq, Op: n.op})
	}
}

// abandon gives up on the in-flight protocol after a reply timeout:
// partners that froze for us are released, outstanding replies become
// stale (the epoch bumps), and the trigger re-arms with backoff.
func (n *Node) abandon() {
	n.inflight = false
	for _, p := range n.ackedFrom {
		n.met.traceOp(n.cfg.ID, n.op, "release", "to=%d seq=%d", p, n.seq)
		n.send(p, wire.Msg{Kind: wire.Release, Seq: n.seq, Op: n.op})
	}
	n.seq++
	n.epoch.Store(n.seq)
	n.op = 0
	n.awaiting = 0
	n.sawBusy = false
	n.stats.Aborted++
	n.backoff = 1 + n.rng.Intn(defaultBackoffSteps)
}

// handle processes one incoming message.
func (n *Node) handle(m wire.Msg) {
	if m.From < 0 || m.From >= n.cfg.N || m.From == n.cfg.ID {
		return // not from a cluster member; ignore
	}
	switch m.Kind {
	case wire.FreezeReq:
		if n.inflight || n.frozen {
			n.met.traceOp(n.cfg.ID, m.Op, "busy_reply", "to=%d inflight=%v frozen=%v", m.From, n.inflight, n.frozen)
			n.send(m.From, wire.Msg{Kind: wire.FreezeBusy, Seq: m.Seq, Op: m.Op})
			return
		}
		n.frozen = true
		n.frozenBy = m.From
		n.frozenSeq = m.Seq
		n.frozenOp = m.Op
		n.frozeAt = time.Now()
		n.met.traceOp(n.cfg.ID, m.Op, "freeze", "by=%d seq=%d load=%d", m.From, m.Seq, n.load)
		n.send(m.From, wire.Msg{Kind: wire.FreezeAck, Load: n.load, Seq: m.Seq, Op: m.Op})

	case wire.FreezeAck:
		if !n.inflight || m.Seq != n.seq {
			// Stale ack from a protocol we abandoned: release the
			// partner immediately rather than leave it to its timeout.
			n.staleSeen = n.inflight
			n.send(m.From, wire.Msg{Kind: wire.Release, Seq: m.Seq, Op: m.Op})
			return
		}
		n.awaiting--
		n.met.phaseReply.ObserveSince(n.protoAt)
		n.ackedFrom = append(n.ackedFrom, m.From)
		n.ackedLoads = append(n.ackedLoads, m.Load)
		if n.awaiting == 0 {
			n.resolve()
		}

	case wire.FreezeBusy:
		if !n.inflight || m.Seq != n.seq {
			n.staleSeen = n.staleSeen || n.inflight
			return
		}
		n.awaiting--
		n.met.phaseReply.ObserveSince(n.protoAt)
		n.sawBusy = true
		if n.awaiting == 0 {
			n.resolve()
		}

	case wire.Transfer:
		// The delta always applies — conservation depends on it — and
		// is always acknowledged so the initiator can account for it.
		// The freeze clears only if this transfer ends the freeze we
		// are actually in (a late transfer from an expired freeze must
		// not terminate a newer protocol's freeze).
		n.load += m.Amount
		n.met.traceOp(n.cfg.ID, m.Op, "transfer", "from=%d amount=%d load=%d", m.From, m.Amount, n.load)
		// Serve mode, give-back transfer: the load just left for the
		// initiator, so its records are owed there; ship them ahead of
		// the ack on the same link.
		if n.cfg.Serve != nil && m.Amount < 0 {
			n.owe(m.From, -m.Amount)
			n.settleOwed(m.Op)
		}
		n.send(m.From, wire.Msg{Kind: wire.TransferAck, Seq: m.Seq, Op: m.Op})
		if !n.frozen || (n.frozenBy == m.From && n.frozenSeq == m.Seq) {
			if n.frozen {
				n.met.phaseFrozen.ObserveSince(n.frozeAt)
			}
			n.lOld = n.load
			n.frozen = false
		}
		n.met.loadGauge.Set(int64(n.load))

	case wire.TransferAck:
		if n.unacked > 0 {
			n.unacked--
			n.met.traceOp(n.cfg.ID, m.Op, "transfer_ack", "from=%d outstanding=%d", m.From, n.unacked)
			// Acks within one protocol land in near-send order, so FIFO
			// pairing against the send times is exact enough for the
			// transfer_ack phase histogram.
			if len(n.xferSent) > 0 {
				n.met.phaseXfer.ObserveSince(n.xferSent[0])
				copy(n.xferSent, n.xferSent[1:])
				n.xferSent = n.xferSent[:len(n.xferSent)-1]
			}
		}

	case wire.Release:
		if n.frozen && n.frozenBy == m.From && n.frozenSeq == m.Seq {
			n.met.phaseFrozen.ObserveSince(n.frozeAt)
			n.met.traceOp(n.cfg.ID, m.Op, "release", "by=%d seq=%d", m.From, m.Seq)
			n.frozen = false
		}

	case wire.Idle:
		if n.cfg.ID == 0 && !n.idleFrom[m.From] {
			n.idleFrom[m.From] = true
			n.maybeQuit()
		}

	case wire.Quit:
		if m.From == 0 && n.cfg.ID != 0 {
			n.send(0, wire.Msg{Kind: wire.Bye,
				Load: n.load, Gen: n.stats.Generated, Con: n.stats.Consumed})
			n.finished = true
		}

	case wire.JobMove:
		n.handleJobMove(m)

	case wire.JobDone:
		n.handleJobDone(m)

	case wire.Bye:
		if n.cfg.ID == 0 && n.quitSent {
			n.sum.TotalLoad += int64(m.Load)
			n.sum.Generated += m.Gen
			n.sum.Consumed += m.Con
			n.byes++
			if n.byes == n.cfg.N-1 {
				n.finished = true
			}
		}
	}
}

// maybeQuit (coordinator only) broadcasts Quit once every node —
// itself included — has gone idle.
func (n *Node) maybeQuit() {
	if n.quitSent || !n.signaled || len(n.idleFrom) != n.cfg.N-1 {
		return
	}
	n.quitSent = true
	n.met.trace(n.cfg.ID, "quit_broadcast", "")
	for i := 1; i < n.cfg.N; i++ {
		n.send(i, wire.Msg{Kind: wire.Quit})
	}
}

// resolve finishes the initiator's protocol once all replies are in.
func (n *Node) resolve() {
	n.inflight = false
	n.met.phaseCollect.ObserveSince(n.protoAt)
	if n.sawBusy {
		for _, p := range n.ackedFrom {
			n.met.traceOp(n.cfg.ID, n.op, "release", "to=%d seq=%d", p, n.seq)
			n.send(p, wire.Msg{Kind: wire.Release, Seq: n.seq, Op: n.op})
		}
		n.stats.Aborted++
		n.met.abort[AbortPeerFrozen].Inc()
		n.met.traceOp(n.cfg.ID, n.op, "abort", "reason=%s seq=%d", AbortPeerFrozen, n.seq)
		if n.cfg.Flight != nil {
			n.cfg.Flight.Abort(n.op, n.seq, n.load, AbortPeerFrozen)
		}
		// The collision the pacer exists to react to: back off by the
		// width of the collect window just measured.
		n.paceOutcome(AbortPeerFrozen, time.Since(n.protoAt))
		n.op = 0
		n.backoff = 1 + n.rng.Intn(defaultBackoffSteps)
		return
	}
	n.paceOutcome("", time.Since(n.protoAt))
	total := n.load
	for _, l := range n.ackedLoads {
		total += l
	}
	m := len(n.ackedFrom) + 1
	base, rem := total/m, total%m
	// Rotate the remainder run uniformly (netsim's randomized snake
	// discipline) so no fixed participant index collects the extras.
	off := 0
	if rem > 0 {
		off = n.rng.Intn(m)
	}
	share := func(idx int) int {
		if rel := idx - off; (rel%m+m)%m < rem {
			return base + 1
		}
		return base
	}
	n.load = share(0)
	n.lOld = n.load
	// Recorded before the transfers go out, so a replayed stream sees
	// the resolution before the frames it explains.
	if n.cfg.Flight != nil {
		n.cfg.Flight.Resolve(n.op, n.seq, n.load, len(n.ackedFrom))
	}
	// Serve mode: record the records owed to partners that gain load and
	// ship what the FIFO holds now, so each JobMove precedes its Transfer
	// on the same link (partners that give load back will owe us on
	// receipt; see serve.go for why eager settlement always converges).
	if n.cfg.Serve != nil {
		for i, p := range n.ackedFrom {
			n.owe(p, share(i+1)-n.ackedLoads[i])
		}
		n.settleOwed(n.op)
	}
	for i, p := range n.ackedFrom {
		n.send(p, wire.Msg{Kind: wire.Transfer, Amount: share(i+1) - n.ackedLoads[i], Seq: n.seq, Op: n.op})
		n.unacked++
		if n.met.phaseXfer != nil {
			n.xferSent = append(n.xferSent, time.Now())
		}
	}
	n.stats.Completed++
	n.met.completed.Inc()
	n.met.loadGauge.Set(int64(n.load))
	n.met.traceOp(n.cfg.ID, n.op, "resolve", "seq=%d partners=%d load=%d", n.seq, len(n.ackedFrom), n.load)
	n.op = 0
}
