package cluster

import (
	"testing"
	"time"
)

func testPacer(mode PaceMode) pacer {
	return newPacer(&Config{
		ID: 0, N: 16, Delta: 2, Seed: 42, Pace: mode,
	})
}

func TestPaceModeParseAndString(t *testing.T) {
	for _, s := range []string{"off", "fixed", "adaptive"} {
		m, err := ParsePaceMode(s)
		if err != nil {
			t.Fatalf("ParsePaceMode(%q): %v", s, err)
		}
		if m.String() != s {
			t.Fatalf("round trip %q -> %v -> %q", s, m, m.String())
		}
	}
	if _, err := ParsePaceMode("bogus"); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if got := PaceMode(99).String(); got != "PaceMode(99)" {
		t.Fatalf("out-of-range String() = %q", got)
	}
}

func TestPacerDefaultsAndModes(t *testing.T) {
	p := testPacer(PaceAdaptive)
	if p.maxGap != DefaultPaceMaxGap || p.mult != DefaultPaceMult || p.dec != DefaultPaceDec {
		t.Fatalf("defaults not applied: %+v", p)
	}
	if p.gap != 0 || p.gapNow() != 0 {
		t.Fatalf("adaptive pacer must start unpaced (no pre-emptive deferral), gap=%v", p.gap)
	}

	off := testPacer(PaceOff)
	off.minGap = time.Second // even with a floor configured, off means off
	if off.gapNow() != 0 {
		t.Fatalf("off pacer enforces gap %v", off.gapNow())
	}
	off.onOutcome(AbortPeerFrozen, time.Millisecond)
	if off.gapNow() != 0 {
		t.Fatal("off pacer grew a gap from an abort")
	}

	fixed := newPacer(&Config{ID: 0, N: 16, Delta: 2, Seed: 42,
		Pace: PaceFixed, MinInitGap: 3 * time.Millisecond})
	if fixed.gapNow() != 3*time.Millisecond {
		t.Fatalf("fixed pacer gap = %v, want the MinInitGap floor", fixed.gapNow())
	}
	fixed.onOutcome(AbortPeerFrozen, time.Millisecond)
	if fixed.gapNow() != 3*time.Millisecond {
		t.Fatal("fixed pacer moved its gap on an abort")
	}
}

// TestPacerAIMD exercises the controller's three outcome classes:
// multiplicative increase (collision-seeded) on peer_frozen, additive
// decrease on success, and no gap movement on timeout-class aborts.
func TestPacerAIMD(t *testing.T) {
	p := testPacer(PaceAdaptive)

	// First collision: the gap seeds at (δ+1)·(n−1) collision windows,
	// clamped to maxGap.
	elapsed := 100 * time.Microsecond
	if got := p.onOutcome(AbortPeerFrozen, elapsed); got != +1 {
		t.Fatalf("peer_frozen outcome = %+d, want +1", got)
	}
	wantSeed := time.Duration((p.delta+1)*(p.n-1)) * elapsed
	if p.gap != wantSeed {
		t.Fatalf("collision seed gap = %v, want %v", p.gap, wantSeed)
	}

	// Further collisions multiply, clamped at maxGap.
	for i := 0; i < 20; i++ {
		p.onOutcome(AbortPeerFrozen, elapsed)
	}
	if p.gap != p.maxGap {
		t.Fatalf("gap = %v after a long abort streak, want the %v cap", p.gap, p.maxGap)
	}

	// Timeout-class aborts update estimates but never grow the gap.
	q := testPacer(PaceAdaptive)
	for _, reason := range []string{AbortTimeout, AbortStaleEpoch, AbortLinkDown} {
		if got := q.onOutcome(reason, elapsed); got != 0 {
			t.Fatalf("%s outcome = %+d, want 0", reason, got)
		}
		if q.gap != 0 {
			t.Fatalf("%s grew the gap to %v", reason, q.gap)
		}
	}

	// Successes shrink the gap additively — at least the configured
	// floor per success once the abort estimate decays — down to minGap.
	p.ewma = map[string]float64{} // steady success regime
	before := p.gap
	if got := p.onOutcome("", 0); got != -1 {
		t.Fatalf("success outcome = %+d, want -1", got)
	}
	if p.gap >= before || before-p.gap < p.dec {
		t.Fatalf("success shrank gap %v -> %v, want at least %v less", before, p.gap, p.dec)
	}
	for i := 0; i < 1<<20 && p.gap > p.minGap; i++ {
		p.onOutcome("", 0)
	}
	if p.gap != p.minGap {
		t.Fatalf("gap drained to %v, want the %v floor", p.gap, p.minGap)
	}
	if got := p.onOutcome("", 0); got != 0 {
		t.Fatalf("success at the floor = %+d, want 0 (no transition)", got)
	}
}

// TestPacerScaleFreeRecovery: the decrease step follows the measured
// attempt width when that is larger than the configured floor, so
// ms-scale socket gaps drain in tens of successes, not thousands.
func TestPacerScaleFreeRecovery(t *testing.T) {
	p := testPacer(PaceAdaptive)
	p.gap = 100 * time.Millisecond
	p.ewma = map[string]float64{}
	before := p.gap
	p.onOutcome("", 10*time.Millisecond)
	if shrunk := before - p.gap; shrunk < 10*time.Millisecond {
		t.Fatalf("decrease step %v, want >= the 10ms measured width", shrunk)
	}
}

func TestPacerEWMA(t *testing.T) {
	p := testPacer(PaceAdaptive)
	if p.AbortRate(AbortPeerFrozen) != 0 {
		t.Fatal("fresh pacer has a nonzero abort estimate")
	}
	for i := 0; i < 50; i++ {
		p.onOutcome(AbortPeerFrozen, time.Microsecond)
	}
	if r := p.AbortRate(AbortPeerFrozen); r < 0.99 {
		t.Fatalf("all-abort stream estimate = %v, want ~1", r)
	}
	if r := p.AbortRate(AbortTimeout); r != 0 {
		t.Fatalf("timeout estimate = %v on a peer_frozen-only stream", r)
	}
	for i := 0; i < 50; i++ {
		p.onOutcome("", time.Microsecond)
	}
	if r := p.AbortRate(AbortPeerFrozen); r > 0.01 {
		t.Fatalf("estimate did not decay on success: %v", r)
	}
}

// TestPacerJitterBounds: the enforced gap is drawn uniformly over
// [0, 2·gap) — full-range randomization — and never below the floor.
func TestPacerJitterBounds(t *testing.T) {
	p := newPacer(&Config{ID: 3, N: 16, Delta: 2, Seed: 7,
		Pace: PaceAdaptive, MinInitGap: time.Millisecond})
	p.gap = 10 * time.Millisecond
	var lo, hi time.Duration = time.Hour, 0
	for i := 0; i < 2000; i++ {
		p.jitter()
		g := p.effGap
		if g < p.minGap || g >= 2*p.gap {
			t.Fatalf("jittered gap %v outside [%v, %v)", g, p.minGap, 2*p.gap)
		}
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	// The draw must actually use the range, not hug the mean.
	if lo > p.gap/2 || hi < 3*p.gap/2 {
		t.Fatalf("2000 draws spanned only [%v, %v] of [0, %v)", lo, hi, 2*p.gap)
	}
}

// TestPacerDeterministic: same (seed, id) gives the same jitter stream;
// a different id gives a different one (nodes must not back off in
// lockstep).
func TestPacerDeterministic(t *testing.T) {
	draw := func(id int) []time.Duration {
		p := newPacer(&Config{ID: id, N: 16, Delta: 2, Seed: 1993, Pace: PaceAdaptive})
		p.gap = time.Millisecond
		out := make([]time.Duration, 8)
		for i := range out {
			p.jitter()
			out[i] = p.effGap
		}
		return out
	}
	a, b, c := draw(4), draw(4), draw(5)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical pacers: %v vs %v", i, a[i], b[i])
		}
		same = same && a[i] == c[i]
	}
	if same {
		t.Fatal("two different node ids drew identical jitter streams")
	}
}

func TestPaceConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{ID: 0, N: 2, Delta: 1, F: 1.2, Steps: 1,
			Transport: loopTransports(2)[0]}
	}
	bad := []func(*Config){
		func(c *Config) { c.Pace = PaceMode(7) },
		func(c *Config) { c.PaceMaxGap = -time.Second },
		func(c *Config) { c.PaceDec = -time.Second },
		func(c *Config) { c.PaceMult = 0.5 },
		func(c *Config) { c.MinInitGap = time.Second; c.PaceMaxGap = time.Millisecond },
	}
	for i, mutate := range bad {
		cfg := base()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("bad pace config %d accepted", i)
		}
	}
	cfg := base()
	cfg.Pace = PaceAdaptive
	cfg.PaceMult = 1.5
	cfg.PaceMaxGap = 50 * time.Millisecond
	cfg.PaceDec = time.Millisecond
	if _, err := New(cfg); err != nil {
		t.Fatalf("valid pace config rejected: %v", err)
	}
}

// TestAdaptivePaceCluster runs a colliding loopback cluster end to end
// under the adaptive controller and checks the observable surface: the
// controller transitions fire, the final gap is published, conservation
// holds, and PaceOff disables pacing even with MinInitGap set.
func TestAdaptivePaceCluster(t *testing.T) {
	base := ClusterConfig{N: 8, Delta: 2, F: 1.1, Steps: 3000, Seed: 11,
		GenP: []float64{0.9, 0.9, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1},
		ConP: []float64{0.1, 0.1, 0.4, 0.4, 0.4, 0.4, 0.4, 0.4}}

	adaptive := base
	adaptive.Pace = PaceAdaptive
	res := runLoop(t, adaptive)
	if !res.Conserved() || !res.Summary.Conserved() {
		t.Fatal("adaptive pacing broke conservation")
	}
	var backoffs, recovers int64
	for _, nd := range res.Nodes {
		backoffs += nd.PaceBackoffs
		recovers += nd.PaceRecovers
		if nd.PaceGap < 0 {
			t.Fatalf("negative final gap %v", nd.PaceGap)
		}
	}
	if backoffs == 0 {
		t.Fatal("no backoffs on a colliding workload — the controller never engaged")
	}
	if res.Completed() == 0 {
		t.Fatal("adaptive pacing starved the cluster: zero completed ops")
	}

	off := base
	off.Pace = PaceOff
	off.MinInitGap = time.Hour
	ores := runLoop(t, off)
	if eps, steps := ores.RateLimited(); eps != 0 || steps != 0 {
		t.Fatalf("PaceOff still deferred (%d episodes, %d steps)", eps, steps)
	}
	if ores.MeanPaceGap() != 0 {
		t.Fatalf("PaceOff published gap %v", ores.MeanPaceGap())
	}
}
