package cluster

import (
	"runtime"
	"testing"
	"time"

	"lmbalance/internal/wire"
)

// TestTCPClusterIntegration is the wire-level end-to-end check: ten
// nodes in one process, every protocol byte over real loopback TCP
// sockets, a producer/consumer workload with a hot quarter, exact
// packet conservation, and a clean quiescent shutdown that leaks no
// goroutines.
func TestTCPClusterIntegration(t *testing.T) {
	before := runtime.NumGoroutine()

	const n = 10
	ts, err := wire.NewLocalCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	transports := make([]wire.Transport, n)
	for i, tp := range ts {
		transports[i] = tp
	}
	// Producer/consumer split: the first quarter generates hot, the
	// rest mostly consume — load must flow across the sockets.
	gen := make([]float64, n)
	con := make([]float64, n)
	for i := range gen {
		if i < n/4 {
			gen[i], con[i] = 0.9, 0.1
		} else {
			gen[i], con[i] = 0.1, 0.3
		}
	}
	res, err := RunCluster(ClusterConfig{N: n, Delta: 2, F: 1.2, Steps: 800,
		GenP: gen, ConP: con, Seed: 1993}, transports)
	if err != nil {
		t.Fatal(err)
	}

	if !res.Conserved() {
		t.Fatalf("packet conservation violated over TCP: total %d", res.TotalLoad())
	}
	if !res.Summary.Conserved() {
		t.Fatalf("coordinator's Bye accounting violated: %+v", res.Summary)
	}
	if res.Summary.TotalLoad != res.TotalLoad() {
		t.Fatalf("coordinator total %d != node total %d", res.Summary.TotalLoad, res.TotalLoad())
	}
	if res.Completed() == 0 {
		t.Fatal("no balancing operation completed over TCP")
	}
	if res.Bytes() == 0 {
		t.Fatal("no bytes counted on the wire")
	}
	var recv int64
	for _, nd := range res.Nodes {
		recv += nd.BytesRecv
	}
	if recv == 0 {
		t.Fatal("no bytes received")
	}
	// Frames: every sent byte is either received or still sat in a
	// kernel buffer at close (late releases to already-retired nodes),
	// so received can be at most sent.
	if recv > res.Bytes() {
		t.Fatalf("received %d bytes > sent %d", recv, res.Bytes())
	}
	for i, nd := range res.Nodes {
		if nd.Generated == 0 && gen[i] > 0.5 {
			t.Fatalf("hot node %d generated nothing", i)
		}
	}

	// Clean shutdown: every transport goroutine (accept loops, readers,
	// writers) and every node goroutine must be gone. Give stragglers a
	// grace window — conn teardown is asynchronous.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, after, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTCPClusterSmall exercises the N=2 edge (coordinator plus one
// peer, δ=1) over real sockets.
func TestTCPClusterSmall(t *testing.T) {
	ts, err := wire.NewLocalCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCluster(ClusterConfig{N: 2, Delta: 1, F: 1.2, Steps: 300, Seed: 5},
		[]wire.Transport{ts[0], ts[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conserved() {
		t.Fatal("conservation violated")
	}
}
