package cluster

import (
	"fmt"
	"time"

	"lmbalance/internal/rng"
)

// PaceMode selects the initiation-pacing policy of a node. Pacing
// exists because of a measured wire-level pathology (EXPERIMENTS.md,
// abortanatomy): over real sockets the collect phase is ~43× wider
// than in-process, so the freeze window of every balancing operation
// is socket-latency wide and free-running initiators freeze each other
// into near-total peer_frozen abort storms.
type PaceMode int

const (
	// PaceFixed is the zero value and the pre-controller behavior:
	// MinInitGap, when positive, is a constant wall-clock floor between
	// a node's own initiations; with MinInitGap zero there is no pacing
	// at all. It is a blunt valve — measured to defer ~99% of triggers
	// on short runs when sized for collision avoidance.
	PaceFixed PaceMode = iota
	// PaceOff disables pacing entirely, even with MinInitGap set.
	PaceOff
	// PaceAdaptive runs the AIMD controller: the gap grows
	// multiplicatively on peer_frozen aborts (collision evidence) and
	// shrinks additively on successful collects, with MinInitGap as an
	// optional lower bound. Each node adapts on purely local signals,
	// in the congestion-control tradition.
	PaceAdaptive
)

func (m PaceMode) String() string {
	switch m {
	case PaceFixed:
		return "fixed"
	case PaceOff:
		return "off"
	case PaceAdaptive:
		return "adaptive"
	}
	return fmt.Sprintf("PaceMode(%d)", int(m))
}

// ParsePaceMode parses the -pace flag values.
func ParsePaceMode(s string) (PaceMode, error) {
	switch s {
	case "fixed":
		return PaceFixed, nil
	case "off":
		return PaceOff, nil
	case "adaptive":
		return PaceAdaptive, nil
	}
	return PaceFixed, fmt.Errorf("unknown pace mode %q (off, fixed, adaptive)", s)
}

// Adaptive-pacer defaults. The controller needs no tuning to engage:
// the *seed* of the backoff is the measured width of the aborted
// collect phase (the protocol's own vulnerability window, the analog of
// an RTT), so the gap is born at the right order of magnitude on any
// transport and these knobs only bound and shape the adaptation.
const (
	// DefaultPaceMaxGap caps the backoff: one node's unlucky streak
	// must not park it out of the balancing economy for good. It is
	// sized for the worst congested attempt widths observed on a
	// single-core box (~10ms end to end, pure scheduler latency): every
	// attempt holds three nodes busy for that width, so n contenders
	// need a mean gap of several n·widths before collisions get rare.
	DefaultPaceMaxGap = 250 * time.Millisecond
	// DefaultPaceMult is the multiplicative increase per peer_frozen
	// abort — the classic doubling.
	DefaultPaceMult = 2.0
	// DefaultPaceDec is the *floor* of the additive decrease per
	// successful collect. The actual step is the successful attempt's
	// own elapsed width when that is larger — one attempt-width per
	// success, the analog of TCP's one-segment-per-RTT — so recovery is
	// scale-free: µs-size steps on an in-process transport, ms-size
	// steps on sockets, without retuning. The live abort-rate estimate
	// scales the step down while collisions are still being observed
	// (see pacer.onOutcome).
	DefaultPaceDec = 250 * time.Microsecond
	// paceEWMAAlpha weights the per-reason abort-rate EWMAs: ~the last
	// 1/alpha protocol outcomes dominate the estimate.
	paceEWMAAlpha = 0.2
	// paceSalt separates the pacer's jitter rng stream from the node's
	// workload and op-id streams (which are seeded off the same mix).
	paceSalt = 0x70616365 // "pace"
)

// pacer is one node's initiation controller. It is owned by the node
// goroutine (no locking); the observable side — the live gap gauge and
// the backoff/recovery counters — is published through nodeMetrics.
//
// The adaptive policy is AIMD on the initiation gap:
//
//   - A peer_frozen abort is collision evidence: the gap multiplies by
//     mult, seeded with the elapsed collect time of the aborted attempt
//     when the gap is still below it (first collision on a fresh node
//     jumps straight to one vulnerability-window width rather than
//     crawling up from zero).
//   - A successful collect shrinks the gap additively by dec, scaled by
//     (1 − EWMA[peer_frozen]): while the live abort-rate estimate is
//     still high, recovery is cautious; once collisions stop, the gap
//     drains at full speed and pacing gets out of the way. This is what
//     keeps the controller from the fixed knob's failure mode of
//     deferring ~99% of triggers after the storm has passed.
//   - Timeout/stale_epoch/link_down aborts update the estimates but do
//     not grow the gap: a dead peer or a dropped frame is not evidence
//     that initiations are colliding.
//
// The gap is clamped to [minGap, maxGap]; fixed mode pins it at minGap
// and off mode at zero. The *enforced* gap is the AIMD gap jittered
// uniformly over [½gap, 1½gap), redrawn per outcome from a dedicated
// rng stream: nodes that collided together back off by the same factor
// at the same moment, and without randomization the whole cohort would
// retry in lockstep and collide again forever (Ethernet's lesson).
type pacer struct {
	mode   PaceMode
	n      int // cluster size: scales the collision-seeded backoff
	delta  int // partners per attempt: scales the per-attempt footprint
	minGap time.Duration
	maxGap time.Duration
	mult   float64
	dec    time.Duration
	rng    *rng.RNG

	gap    time.Duration // AIMD state
	effGap time.Duration // jittered gap currently enforced
	// ewma holds the live per-reason abort-rate estimates over protocol
	// outcomes, keyed like the abort counters; "" tracks nothing (a
	// success decays every reason toward zero).
	ewma map[string]float64
}

func newPacer(cfg *Config) pacer {
	p := pacer{
		mode:   cfg.Pace,
		n:      cfg.N,
		delta:  cfg.Delta,
		minGap: cfg.MinInitGap,
		maxGap: cfg.PaceMaxGap,
		mult:   cfg.PaceMult,
		dec:    cfg.PaceDec,
		// The jitter stream is salted off the node's seed mix so pacing
		// never perturbs the workload's Bernoulli draws or the op ids.
		rng:  rng.New(rng.Mix64(rng.Mix64(cfg.Seed, uint64(cfg.ID)), paceSalt)),
		ewma: make(map[string]float64, 4),
	}
	if p.maxGap == 0 {
		p.maxGap = DefaultPaceMaxGap
	}
	if p.mult == 0 {
		p.mult = DefaultPaceMult
	}
	if p.dec == 0 {
		p.dec = DefaultPaceDec
	}
	switch p.mode {
	case PaceOff:
		p.gap = 0
	default:
		// Fixed pins the gap at the floor; adaptive starts there too —
		// no pre-emptive deferral, the controller only backs off once a
		// collision is actually observed.
		p.gap = p.minGap
	}
	p.effGap = p.gap
	return p
}

// gapNow returns the interval the next initiation must keep from the
// previous one (0 = unpaced). Adaptive mode enforces the jittered gap.
func (p *pacer) gapNow() time.Duration {
	if p.mode == PaceOff {
		return 0
	}
	if p.mode == PaceAdaptive {
		return p.effGap
	}
	return p.gap
}

// jitter redraws the enforced gap uniformly over [0, 2·gap), bounded
// below by the configured floor. Full-range randomization (mean = gap,
// so the AIMD state keeps its meaning) rather than a narrow band: abort
// bursts are service-synchronized — every attempt of a collision wave
// learns its fate in the same scheduling round — and a ±50% band around
// a shared gap re-bunches the retries into the next wave. The uniform
// draw from zero also grants occasional near-immediate probes, which on
// success feed the additive decrease (free measurements).
func (p *pacer) jitter() {
	if p.gap <= 0 {
		p.effGap = 0
		return
	}
	g := time.Duration(2 * p.rng.Float64() * float64(p.gap))
	if g < p.minGap {
		g = p.minGap
	}
	p.effGap = g
}

// AbortRate returns the live EWMA abort-rate estimate for one reason
// (the fraction of recent protocol outcomes aborted for it).
func (p *pacer) AbortRate(reason string) float64 { return p.ewma[reason] }

// onOutcome feeds one finished protocol attempt into the controller.
// reason is "" for a successful collect or one of the Abort* labels;
// elapsed is the attempt's initiate→outcome wall time. It returns what
// the gap did, so the caller can bump the transition counters:
// +1 backoff, −1 recovery, 0 no change.
func (p *pacer) onOutcome(reason string, elapsed time.Duration) int {
	for _, r := range [...]string{AbortPeerFrozen, AbortTimeout, AbortStaleEpoch, AbortLinkDown} {
		hit := 0.0
		if r == reason {
			hit = 1.0
		}
		p.ewma[r] += paceEWMAAlpha * (hit - p.ewma[r])
	}
	if p.mode != PaceAdaptive {
		return 0
	}
	switch reason {
	case AbortPeerFrozen:
		// The seed jumps straight to binary exponential backoff's
		// converged spread instead of climbing to it one collision at a
		// time: the aborted attempt's own elapsed width is the collision
		// window (the analog of a slot time), every attempt occupies
		// δ+1 nodes for that window, and in the worst case all n−1 peers
		// are contending — so (δ+1)·(n−1) windows of spread is what
		// makes the retries miss each other. Over-backing-off a lightly
		// contended cluster costs little — the full-range jitter still
		// grants quick probes and each success drains the gap — while
		// under-seeding costs a re-collision per doubling on the way up.
		seed := time.Duration((p.delta+1)*(p.n-1)) * elapsed
		next := time.Duration(float64(p.gap) * p.mult)
		if next < seed {
			next = seed
		}
		p.gap = clampGap(next, p.minGap, p.maxGap)
		p.jitter()
		return +1
	case "":
		// One measured attempt-width per success (with the configured
		// floor), scaled down while the abort-rate estimate is still hot.
		step := elapsed
		if step < p.dec {
			step = p.dec
		}
		dec := time.Duration(float64(step) * (1 - p.ewma[AbortPeerFrozen]))
		if p.gap <= p.minGap || dec <= 0 {
			p.jitter()
			return 0
		}
		p.gap = clampGap(p.gap-dec, p.minGap, p.maxGap)
		p.jitter()
		return -1
	}
	return 0
}

func clampGap(g, lo, hi time.Duration) time.Duration {
	if g < lo {
		return lo
	}
	if g > hi {
		return hi
	}
	return g
}
