package cluster

import (
	"testing"
	"time"

	"lmbalance/internal/obs"
	"lmbalance/internal/wire"
)

// statsTransport is a controllable Transport + PeerStatser: the test
// sets the transport-wide and per-peer send-error counters directly to
// drive the timeout-attribution logic.
type statsTransport struct {
	inbox    chan wire.Msg
	global   wire.Stats
	peerErrs map[int]int64
	sentTo   []int
	sent     []wire.Msg
}

func newStatsTransport() *statsTransport {
	return &statsTransport{
		inbox:    make(chan wire.Msg, 64),
		peerErrs: make(map[int]int64),
	}
}

func (f *statsTransport) Send(to int, m wire.Msg) error {
	f.sentTo = append(f.sentTo, to)
	f.sent = append(f.sent, m)
	return nil
}
func (f *statsTransport) Inbox() <-chan wire.Msg { return f.inbox }
func (f *statsTransport) Stats() wire.Stats      { return f.global }
func (f *statsTransport) PeerStats(id int) wire.Stats {
	return wire.Stats{SendErrors: f.peerErrs[id]}
}
func (f *statsTransport) Close() error { return nil }

// blindTransport hides PeerStats, so the node must fall back to the
// transport-wide send-error delta.
type blindTransport struct{ *statsTransport }

func (b blindTransport) PeerStats(int) {} // different signature: not a PeerStatser

// timeoutReason drives one initiate → reply-timeout cycle on a node
// wired to tr, applies mutate between the two (the window in which the
// transport may report send errors), and returns the abort counters'
// deltas by reason.
func timeoutReason(t *testing.T, tr wire.Transport, mutate func(partners []int)) map[string]int64 {
	t.Helper()
	reg := obs.NewRegistry()
	n, err := New(Config{
		ID: 0, N: 8, Delta: 2, F: 1.2, Steps: 1,
		GenP: 0.5, ConP: 0.4, Seed: 77,
		Transport: tr, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.initiate()
	if !n.inflight {
		t.Fatal("initiate did not go inflight")
	}
	mutate(append([]int(nil), n.candBuf...))
	// Age the protocol past the reply timeout and fire the check.
	n.protoAt = time.Now().Add(-time.Minute)
	n.checkTimeouts()
	if n.inflight {
		t.Fatal("timeout did not abandon the protocol")
	}
	out := make(map[string]int64, 4)
	for _, reason := range []string{AbortPeerFrozen, AbortTimeout, AbortStaleEpoch, AbortLinkDown} {
		out[reason] = reg.Counter(AbortMetric(reason)).Value()
	}
	return out
}

// TestTimeoutAttributionPartnerLink is the link_down regression test:
// only send errors on a *protocol partner's* link may turn a reply
// timeout into link_down. Errors on unrelated links — another
// protocol's release, shutdown traffic to a dead node — say nothing
// about why this protocol's replies are missing, and the old
// transport-wide check misattributed exactly that case.
func TestTimeoutAttributionPartnerLink(t *testing.T) {
	// Clean timeout: no errors anywhere.
	tr := newStatsTransport()
	got := timeoutReason(t, tr, func([]int) {})
	if got[AbortTimeout] != 1 || got[AbortLinkDown] != 0 {
		t.Fatalf("clean timeout misattributed: %v", got)
	}

	// The regression case: the transport-wide counter moves (an error on
	// some non-partner link) while every partner link is clean. This
	// must stay a plain timeout.
	tr = newStatsTransport()
	got = timeoutReason(t, tr, func(partners []int) {
		tr.global.SendErrors = 3 // non-partner trouble only
		isPartner := map[int]bool{}
		for _, p := range partners {
			isPartner[p] = true
		}
		for id := 1; id < 8; id++ {
			if !isPartner[id] {
				tr.peerErrs[id] = 3
				break
			}
		}
	})
	if got[AbortLinkDown] != 0 || got[AbortTimeout] != 1 {
		t.Fatalf("non-partner send errors misattributed as link_down: %v", got)
	}

	// A partner's link really dropped frames: link_down.
	tr = newStatsTransport()
	got = timeoutReason(t, tr, func(partners []int) {
		tr.global.SendErrors = 1
		tr.peerErrs[partners[0]] = 1
	})
	if got[AbortLinkDown] != 1 || got[AbortTimeout] != 0 {
		t.Fatalf("partner link errors not attributed as link_down: %v", got)
	}
}

// TestTimeoutAttributionFallback: transports without per-peer
// accounting keep the transport-wide attribution (better than nothing,
// coarser than exact).
func TestTimeoutAttributionFallback(t *testing.T) {
	tr := newStatsTransport()
	bl := blindTransport{tr}
	if _, ok := wire.Transport(bl).(wire.PeerStatser); ok {
		t.Fatal("blindTransport unexpectedly satisfies PeerStatser")
	}
	got := timeoutReason(t, bl, func([]int) {
		tr.global.SendErrors = 1 // anywhere on the transport
	})
	if got[AbortLinkDown] != 1 {
		t.Fatalf("fallback attribution lost: %v", got)
	}
}
