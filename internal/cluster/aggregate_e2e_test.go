package cluster

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"lmbalance/internal/obs"
	"lmbalance/internal/wire"
)

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestTCPAggregatorEndToEnd is the multi-node observability e2e: a real
// loopback-TCP cluster where every node has its *own* registry, tracer,
// recorder and debug HTTP endpoint (the multi-process shape), and an
// aggregator that scrapes them all afterwards. It must be able to
//
//   - re-derive the conservation audit purely from scraped metrics
//     (Σ load gauges == Σ generated − Σ consumed counters, matching the
//     coordinator's Bye accounting), and
//   - stitch one balancing operation's full cross-node timeline —
//     initiate → freeze → resolve → transfer → transfer ack — out of
//     the per-process trace rings, with monotonic timestamps.
func TestTCPAggregatorEndToEnd(t *testing.T) {
	const n = 4
	ts, err := wire.NewLocalCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	transports := make([]wire.Transport, n)
	regs := make([]*obs.Registry, n)
	recs := make([]*obs.Recorder, n)
	urls := make([]string, n)
	for i, tp := range ts {
		regs[i] = obs.NewRegistry()
		tp.Register(regs[i])
		transports[i] = tp
		recs[i] = NewRecorder(regs[i], []int{i}, 2048)
		recs[i].Start(2 * time.Millisecond)
		srv, err := obs.ServeDebug("127.0.0.1:0", regs[i])
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		urls[i] = srv.URL()
	}

	gen := []float64{0.9, 0.9, 0.1, 0.1}
	con := []float64{0.1, 0.1, 0.4, 0.4}
	res, err := RunCluster(ClusterConfig{
		N: n, Delta: 2, F: 1.2, Steps: 600,
		GenP: gen, ConP: con, Seed: 42,
		ObsPerNode: regs,
	}, transports)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		rec.Stop()
	}
	if !res.Conserved() || !res.Summary.Conserved() {
		t.Fatalf("cluster itself violated conservation: %+v", res.Summary)
	}
	if res.Completed() == 0 {
		t.Fatal("no balancing operation completed; nothing to stitch")
	}

	v, err := obs.Aggregate(urls)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Nodes {
		if v.Nodes[i].Err != nil {
			t.Fatalf("node %d scrape failed: %v", i, v.Nodes[i].Err)
		}
	}

	// Conservation, re-derived from scrapes alone. Each per-node series
	// exists exactly once across the registries, so the merged sums are
	// the cluster totals.
	sumBase := func(base string) (sum float64, series int) {
		for name, val := range v.Metrics {
			if strings.HasPrefix(name, base+"{") {
				sum += val
				series++
			}
		}
		return sum, series
	}
	loads, nLoad := sumBase("cluster_node_load")
	gens, nGen := sumBase("cluster_node_generated_total")
	cons, nCon := sumBase("cluster_node_consumed_total")
	if nLoad != n || nGen != n || nCon != n {
		t.Fatalf("expected %d series each, got load=%d gen=%d con=%d", n, nLoad, nGen, nCon)
	}
	if int64(gens) != res.Summary.Generated || int64(cons) != res.Summary.Consumed {
		t.Fatalf("scraped totals gen=%v con=%v != audit gen=%d con=%d",
			gens, cons, res.Summary.Generated, res.Summary.Consumed)
	}
	if int64(loads) != res.Summary.TotalLoad {
		t.Fatalf("scraped held load %v != audit %d", loads, res.Summary.TotalLoad)
	}
	if loads != gens-cons {
		t.Fatalf("scraped conservation violated: %v != %v - %v", loads, gens, cons)
	}
	// The global VD over per-node gauges must agree with Dist.
	if dn, _, _, _ := v.Dist("cluster_node_load"); dn != n {
		t.Fatalf("Dist saw %d nodes", dn)
	}

	// Stitch one completed operation's full cross-node timeline.
	wantKinds := []string{"initiate", "freeze", "resolve", "transfer", "transfer_ack"}
	var fullOp uint64
	var timeline []obs.Event
	for _, op := range v.OpIDs() {
		evs := v.Ops[op]
		have := make(map[string]bool, len(evs))
		for _, ev := range evs {
			have[ev.Kind] = true
		}
		complete := true
		for _, k := range wantKinds {
			if !have[k] {
				complete = false
				break
			}
		}
		if complete {
			fullOp, timeline = op, evs
			break
		}
	}
	if fullOp == 0 {
		t.Fatalf("no operation with a full %v timeline among %d stitched ops", wantKinds, len(v.Ops))
	}
	// Monotonic timestamps across the merged timeline...
	for i := 1; i < len(timeline); i++ {
		if timeline[i].At.Before(timeline[i-1].At) {
			t.Fatalf("op %#x timeline not monotone: %+v", fullOp, timeline)
		}
	}
	// ...with the right causal order of phases, spanning >= 2 processes.
	at := func(kind string) time.Time {
		for _, ev := range timeline {
			if ev.Kind == kind {
				return ev.At
			}
		}
		panic("unreachable: " + kind)
	}
	prev := at(wantKinds[0])
	for _, k := range wantKinds[1:] {
		if cur := at(k); cur.Before(prev) {
			t.Fatalf("op %#x: first %q precedes its cause: %+v", fullOp, k, timeline)
		} else {
			prev = cur
		}
	}
	nodesSeen := make(map[int]bool)
	initiator := -1
	for _, ev := range timeline {
		nodesSeen[ev.Node] = true
		if ev.Kind == "initiate" {
			initiator = ev.Node
		}
	}
	if len(nodesSeen) < 2 {
		t.Fatalf("op %#x timeline does not cross processes: %+v", fullOp, timeline)
	}
	for _, ev := range timeline {
		switch ev.Kind {
		case "initiate", "resolve", "transfer_ack":
			if ev.Node != initiator {
				t.Fatalf("op %#x: %s on node %d, initiator is %d", fullOp, ev.Kind, ev.Node, initiator)
			}
		case "freeze", "transfer":
			if ev.Node == initiator {
				t.Fatalf("op %#x: %s on the initiator: %+v", fullOp, ev.Kind, timeline)
			}
		}
	}

	// The per-node recorders were scraped and merge into one cluster
	// load trajectory.
	pts := v.MergeSeries("load", 50*time.Millisecond)
	if len(pts) == 0 {
		t.Fatal("no merged load trajectory")
	}
	maxN := 0
	for _, p := range pts {
		if p.N > maxN {
			maxN = p.N
		}
	}
	if maxN != n {
		t.Fatalf("merged trajectory never saw all %d nodes (max %d)", n, maxN)
	}

	// The aggregator's own endpoint serves the merged view.
	agg, err := obs.ServeAggregator("127.0.0.1:0", urls)
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	code, body := httpGet(t, agg.URL()+fmt.Sprintf("/trace?op=%d", fullOp))
	if code != 200 {
		t.Fatalf("aggregator /trace = %d", code)
	}
	if got := strings.Count(strings.TrimSpace(body), "\n") + 1; got != len(timeline) {
		t.Fatalf("aggregator served %d timeline lines, stitched %d", got, len(timeline))
	}
}
