package cluster

import (
	"testing"
	"time"

	"lmbalance/internal/obs"
	"lmbalance/internal/wire"
)

// TestFreezeExpiryRace drives the frozen-partner state machine through
// the expiry race by hand: a partner that self-releases at
// FreezeTimeout can be re-frozen by a *new* protocol before the old
// initiator's late Release or Transfer arrives. The stale messages
// carry the old (frozenBy, seq) identity, so they must not terminate
// the new freeze — but a stale Transfer's delta must still apply and
// be acknowledged, or conservation breaks.
func TestFreezeExpiryRace(t *testing.T) {
	tr := newStatsTransport()
	reg := obs.NewRegistry()
	n, err := New(Config{
		ID: 0, N: 8, Delta: 2, F: 1.2, Steps: 1, Seed: 9,
		FreezeTimeout: time.Millisecond,
		Transport:     tr, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	load0 := n.load

	// Node 1 freezes us (seq 5).
	n.handle(wire.Msg{Kind: wire.FreezeReq, From: 1, Seq: 5, Op: 0xa})
	if !n.frozen || n.frozenBy != 1 || n.frozenSeq != 5 {
		t.Fatalf("freeze not taken: frozen=%v by=%d seq=%d", n.frozen, n.frozenBy, n.frozenSeq)
	}
	if len(tr.sent) != 1 || tr.sent[0].Kind != wire.FreezeAck {
		t.Fatalf("freeze not acked: %+v", tr.sent)
	}

	// Node 1's release never comes; the freeze expires on our own clock.
	n.frozeAt = time.Now().Add(-time.Minute)
	n.checkTimeouts()
	if n.frozen {
		t.Fatal("freeze did not expire at FreezeTimeout")
	}
	if n.stats.FreezeExpired != 1 {
		t.Fatalf("FreezeExpired = %d, want 1", n.stats.FreezeExpired)
	}

	// Node 2 freezes us for a new protocol (seq 9) — the race window.
	n.handle(wire.Msg{Kind: wire.FreezeReq, From: 2, Seq: 9, Op: 0xb})
	if !n.frozen || n.frozenBy != 2 || n.frozenSeq != 9 {
		t.Fatalf("re-freeze not taken: frozen=%v by=%d seq=%d", n.frozen, n.frozenBy, n.frozenSeq)
	}

	// Node 1's late Release (the expired protocol's identity) lands now.
	// It must not release node 2's freeze.
	n.handle(wire.Msg{Kind: wire.Release, From: 1, Seq: 5, Op: 0xa})
	if !n.frozen || n.frozenBy != 2 {
		t.Fatal("stale release terminated the new protocol's freeze")
	}

	// Node 1's late Transfer instead: the delta applies (conservation)
	// and is acknowledged, but the new freeze still holds.
	n.handle(wire.Msg{Kind: wire.Transfer, From: 1, Seq: 5, Op: 0xa, Amount: 7})
	if n.load != load0+7 {
		t.Fatalf("stale transfer delta lost: load %d, want %d", n.load, load0+7)
	}
	last := tr.sent[len(tr.sent)-1]
	if last.Kind != wire.TransferAck || last.Seq != 5 {
		t.Fatalf("stale transfer not acked: %+v", last)
	}
	if !n.frozen || n.frozenBy != 2 || n.frozenSeq != 9 {
		t.Fatal("stale transfer terminated the new protocol's freeze")
	}

	// Node 2's own release ends it.
	n.handle(wire.Msg{Kind: wire.Release, From: 2, Seq: 9, Op: 0xb})
	if n.frozen {
		t.Fatal("matching release did not unfreeze")
	}
	if got := reg.Counter("cluster_freeze_expired_total").Value(); got != 1 {
		t.Fatalf("freeze-expired metric = %d, want 1", got)
	}
}

// TestFreezeExpiryTransferEndsOwnFreeze: the non-race half of the
// Transfer guard — a transfer matching the freeze we are actually in
// both applies its delta and ends the freeze.
func TestFreezeExpiryTransferEndsOwnFreeze(t *testing.T) {
	tr := newStatsTransport()
	n, err := New(Config{
		ID: 0, N: 8, Delta: 2, F: 1.2, Steps: 1, Seed: 9,
		Transport: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	load0 := n.load
	n.handle(wire.Msg{Kind: wire.FreezeReq, From: 3, Seq: 4, Op: 0xc})
	n.handle(wire.Msg{Kind: wire.Transfer, From: 3, Seq: 4, Op: 0xc, Amount: -2})
	if n.frozen {
		t.Fatal("matching transfer did not end the freeze")
	}
	if n.load != load0-2 {
		t.Fatalf("transfer delta lost: load %d, want %d", n.load, load0-2)
	}
}

// dropReleases wraps a Transport and swallows every outbound Release:
// a frozen partner that gets no transfer is never released by its
// initiator and can only escape through the FreezeTimeout self-release.
// Releases carry no load, so conservation must survive losing all of
// them.
type dropReleases struct {
	wire.Transport
}

func (d dropReleases) Send(to int, m wire.Msg) error {
	if m.Kind == wire.Release {
		return nil
	}
	return d.Transport.Send(to, m)
}

// TestFreezeExpiryLive runs a colliding loopback cluster in which every
// Release is lost, so each freeze that does not end in a transfer sits
// until the FreezeTimeout self-release — the expiry path exercised
// end to end, with late-message races left to wall-clock chance. The
// invariant under all that churn is exact conservation.
func TestFreezeExpiryLive(t *testing.T) {
	n := 8
	ts := loopTransports(n)
	for i := range ts {
		ts[i] = dropReleases{ts[i]}
	}
	res, err := RunCluster(ClusterConfig{N: n, Delta: 2, F: 1.1, Steps: 1500, Seed: 23,
		FreezeTimeout: 2 * time.Millisecond,
		Tick:          time.Millisecond,
		GenP:          []float64{0.9, 0.9, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1},
		ConP:          []float64{0.1, 0.1, 0.4, 0.4, 0.4, 0.4, 0.4, 0.4}}, ts)
	if err != nil {
		t.Fatal(err)
	}
	var expired int64
	for _, nd := range res.Nodes {
		expired += nd.FreezeExpired
	}
	if expired == 0 {
		t.Fatal("no freeze ever expired with every Release dropped")
	}
	if !res.Conserved() || !res.Summary.Conserved() {
		t.Fatalf("conservation violated under freeze-expiry churn: total %d", res.TotalLoad())
	}
}
