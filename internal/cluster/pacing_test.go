package cluster

import (
	"testing"
	"time"

	"lmbalance/internal/obs"
)

// TestMinInitGapPaces checks the initiation rate limit: with a gap far
// longer than the run, each node fires at most one balancing protocol
// of its own, and the deferred triggers are counted.
func TestMinInitGapPaces(t *testing.T) {
	base := ClusterConfig{N: 6, Delta: 2, F: 1.1, Steps: 500, Seed: 7,
		GenP: []float64{0.9, 0.9, 0.9, 0.1, 0.1, 0.1},
		ConP: []float64{0.1, 0.1, 0.1, 0.5, 0.5, 0.5}}

	free := runLoop(t, base)

	paced := base
	paced.MinInitGap = time.Hour
	res := runLoop(t, paced)

	var limited int64
	for i, nd := range res.Nodes {
		if nd.Initiated > 1 {
			t.Fatalf("node %d initiated %d times under an hour-long gap", i, nd.Initiated)
		}
		limited += nd.RateLimited
	}
	if limited == 0 {
		t.Fatal("no deferred initiations counted — pacing never engaged")
	}
	if res.Initiated() >= free.Initiated() {
		t.Fatalf("pacing did not reduce initiations: %d paced vs %d free",
			res.Initiated(), free.Initiated())
	}
	if !res.Conserved() || !res.Summary.Conserved() {
		t.Fatal("pacing broke conservation")
	}

	// Gap 0 must be byte-for-byte the old behavior: no deferrals.
	for _, nd := range free.Nodes {
		if nd.RateLimited != 0 {
			t.Fatalf("unpaced run counted %d deferrals", nd.RateLimited)
		}
	}
}

func TestMinInitGapValidation(t *testing.T) {
	cfg := Config{ID: 0, N: 2, Delta: 1, F: 1.2, Steps: 1, Transport: loopTransports(2)[0],
		MinInitGap: -time.Second}
	if _, err := New(cfg); err == nil {
		t.Fatal("negative MinInitGap accepted")
	}
}

// TestOpIDsSeedStable reruns the same seeded cluster and requires each
// node to mint its op ids from the same deterministic sequence: the
// i-th id a node mints is a pure function of (seed, node). How *many*
// it mints varies with protocol timing, so the check is on the common
// prefix — that is what makes traces comparable across reruns.
func TestOpIDsSeedStable(t *testing.T) {
	run := func() map[int][]uint64 {
		reg := obs.NewRegistry()
		cfg := ClusterConfig{N: 5, Delta: 2, F: 1.2, Steps: 400, Seed: 9, Obs: reg}
		runLoop(t, cfg)
		ops := make(map[int][]uint64)
		for _, ev := range reg.Tracer().Events() {
			if ev.Kind == "initiate" {
				ops[ev.Node] = append(ops[ev.Node], ev.Op)
			}
		}
		return ops
	}
	a := run()
	b := run()
	if len(a) == 0 {
		t.Fatal("no initiations traced")
	}
	checked := 0
	for node, opsA := range a {
		opsB := b[node]
		m := len(opsA)
		if len(opsB) < m {
			m = len(opsB)
		}
		for i := 0; i < m; i++ {
			if opsA[i] == 0 {
				t.Fatalf("node %d minted the reserved zero op id", node)
			}
			if opsA[i] != opsB[i] {
				t.Fatalf("node %d op %d differs across reruns: %#x vs %#x", node, i, opsA[i], opsB[i])
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("reruns shared no op-id prefix to compare")
	}
}

// TestEpochVisible: the epoch mirror follows the protocol seq and is
// readable cross-goroutine (what /healthz reports).
func TestEpochVisible(t *testing.T) {
	ts := loopTransports(2)
	n0, err := New(Config{ID: 0, N: 2, Delta: 1, F: 1.2, Steps: 400,
		GenP: 0.9, ConP: 0.1, Seed: 3, Transport: ts[0]})
	if err != nil {
		t.Fatal(err)
	}
	n1, err := New(Config{ID: 1, N: 2, Delta: 1, F: 1.2, Steps: 400,
		GenP: 0.1, ConP: 0.5, Seed: 3, Transport: ts[1]})
	if err != nil {
		t.Fatal(err)
	}
	if n0.Epoch() != 0 {
		t.Fatalf("fresh node epoch = %d", n0.Epoch())
	}
	if n0.ID() != 0 || n1.ID() != 1 {
		t.Fatal("ID accessor wrong")
	}
	n0.Start()
	n1.Start()
	if _, err := n0.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.Wait(); err != nil {
		t.Fatal(err)
	}
	if n0.Epoch() == 0 && n1.Epoch() == 0 {
		t.Fatal("no node ever advanced its epoch despite a skewed workload")
	}
}
