package cluster

import (
	"fmt"
	"math"

	"lmbalance/internal/obs"
)

// NewRecorder builds the standard cluster time-series recorder over a
// registry and attaches it (obs.Registry.SetRecorder), so the /series
// endpoint and obs.Aggregate see it. ids are the node ids whose load
// gauges live in this registry — all of them in a shared-registry
// (spawn-mode) process, exactly one in a daemon process.
//
// Columns:
//
//	load{node="i"}   each node's instantaneous load gauge (base name
//	                 "load", so the aggregator's MergeSeries folds the
//	                 per-node columns of many processes together)
//	nodes_mean       mean of the per-node gauges at sample time
//	nodes_vd         the paper's variation density std/mean across the
//	                 per-node gauges — the *instantaneous* cluster
//	                 imbalance, the quantity §5 proves converges in t
//	load_mean/std/vd the cluster_load histogram's cumulative moments
//	                 (every load observed at every step so far)
//	abort_rate{reason="r"}  per-second abort rate, one column per reason
//	initiate_rate    per-second balancing initiations
//	complete_rate    per-second completed balancing operations
//	pace_gap_us{node="i"}  each node's live initiation gap (µs) — the
//	                 adaptive pacer's trajectory (flat at MinInitGap
//	                 under fixed pacing, flat at zero when off)
//	pace_backoff_rate/pace_recover_rate  per-second adaptive gap
//	                 increases (peer_frozen aborts) and decreases
//	                 (successful collects)
//
// The caller owns sampling: call Sample per workload tick or Start for
// wall-clock periods, and Stop before reading a final consistent view.
// A nil registry returns a nil (inert) recorder.
func NewRecorder(reg *obs.Registry, ids []int, capacity int) *obs.Recorder {
	if reg == nil {
		return nil
	}
	rec := obs.NewRecorder(capacity)
	gauges := make([]*obs.Gauge, len(ids))
	for i, id := range ids {
		g := reg.Gauge(fmt.Sprintf(`cluster_node_load{node="%d"}`, id))
		gauges[i] = g
		rec.GaugeColumn(fmt.Sprintf(`load{node="%d"}`, id), g)
	}
	rec.Column("nodes_mean", func() float64 {
		mean, _ := gaugeMoments(gauges)
		return mean
	})
	rec.Column("nodes_vd", func() float64 {
		_, vd := gaugeMoments(gauges)
		return vd
	})
	rec.HistogramColumns("load", reg.Histogram("cluster_load", obs.LoadBuckets))
	for _, reason := range []string{AbortPeerFrozen, AbortTimeout, AbortStaleEpoch, AbortLinkDown} {
		rec.CounterRateColumn(fmt.Sprintf("abort_rate{reason=%q}", reason),
			reg.Counter(AbortMetric(reason)))
	}
	rec.CounterRateColumn("initiate_rate", reg.Counter("cluster_protocols_initiated_total"))
	rec.CounterRateColumn("complete_rate", reg.Counter("cluster_protocols_completed_total"))
	for _, id := range ids {
		rec.GaugeColumn(fmt.Sprintf(`pace_gap_us{node="%d"}`, id), reg.Gauge(PaceGapMetric(id)))
	}
	rec.CounterRateColumn("pace_backoff_rate", reg.Counter("cluster_pace_backoff_total"))
	rec.CounterRateColumn("pace_recover_rate", reg.Counter("cluster_pace_recover_total"))
	reg.SetRecorder(rec)
	return rec
}

// gaugeMoments computes mean and variation density across gauge values.
func gaugeMoments(gs []*obs.Gauge) (mean, vd float64) {
	if len(gs) == 0 {
		return 0, 0
	}
	var sum, sumsq float64
	for _, g := range gs {
		v := float64(g.Value())
		sum += v
		sumsq += v * v
	}
	n := float64(len(gs))
	mean = sum / n
	if varr := sumsq/n - mean*mean; varr > 0 && mean != 0 {
		vd = math.Sqrt(varr) / mean
	}
	return mean, vd
}
