package cluster

import (
	"testing"
	"time"

	"lmbalance/internal/wire"
)

// loopTransports returns n wired loopback endpoints as []wire.Transport.
func loopTransports(n int) []wire.Transport {
	net := wire.NewLoopback(n)
	ts := make([]wire.Transport, n)
	for i := range ts {
		ts[i] = net.Transport(i)
	}
	return ts
}

func runLoop(t *testing.T, cfg ClusterConfig) *Result {
	t.Helper()
	res, err := RunCluster(cfg, loopTransports(cfg.N))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLoopbackClusterConserves(t *testing.T) {
	cfg := ClusterConfig{N: 8, Delta: 2, F: 1.2, Steps: 600, Seed: 42}
	res := runLoop(t, cfg)
	if !res.Conserved() {
		t.Fatalf("packet conservation violated: total %d", res.TotalLoad())
	}
	// The coordinator's Bye-derived accounting must agree with the
	// per-node ground truth.
	if res.Summary.Nodes != cfg.N {
		t.Fatalf("summary covers %d nodes, want %d", res.Summary.Nodes, cfg.N)
	}
	if !res.Summary.Conserved() {
		t.Fatalf("coordinator sees conservation violated: %+v", res.Summary)
	}
	if res.Summary.TotalLoad != res.TotalLoad() {
		t.Fatalf("coordinator total %d != node total %d", res.Summary.TotalLoad, res.TotalLoad())
	}
	for i, n := range res.Nodes {
		if n.ID != i {
			t.Fatalf("node %d reported id %d", i, n.ID)
		}
		if n.FinalLoad < 0 {
			t.Fatalf("node %d final load negative: %d", i, n.FinalLoad)
		}
	}
	if res.Messages() == 0 || res.Bytes() == 0 {
		t.Fatal("no traffic counted")
	}
	if res.Completed() == 0 {
		t.Fatal("no balancing operation ever completed")
	}
}

func TestLoopbackClusterBalancesHotspot(t *testing.T) {
	// One producer, seven consumers: without balancing the producer
	// would hold essentially all load.
	n := 8
	gen := make([]float64, n)
	con := make([]float64, n)
	for i := range gen {
		gen[i], con[i] = 0.05, 0.3
	}
	gen[3] = 0.95
	con[3] = 0.0
	res := runLoop(t, ClusterConfig{N: n, Delta: 2, F: 1.1, Steps: 1500,
		GenP: gen, ConP: con, Seed: 7})
	if !res.Conserved() {
		t.Fatal("packet conservation violated")
	}
	total := res.TotalLoad()
	hot := int64(res.Nodes[3].FinalLoad)
	if total > 20 && hot*2 > total {
		t.Fatalf("hot node kept %d of %d packets — balancing ineffective", hot, total)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	tr := loopTransports(2)
	good := Config{ID: 0, N: 2, Delta: 1, F: 1.2, Steps: 1,
		GenP: 0.5, ConP: 0.4, Transport: tr[0]}
	if _, err := New(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(c *Config){
		func(c *Config) { c.N = 1 },
		func(c *Config) { c.ID = -1 },
		func(c *Config) { c.ID = 2 },
		func(c *Config) { c.Delta = 0 },
		func(c *Config) { c.Delta = 2 },
		func(c *Config) { c.F = 1.0 },
		func(c *Config) { c.Steps = 0 },
		func(c *Config) { c.GenP = 1.5 },
		func(c *Config) { c.ConP = -0.1 },
		func(c *Config) { c.Transport = nil },
		func(c *Config) { c.Timeout = -time.Second },
	}
	for i, mutate := range bad {
		c := good
		mutate(&c)
		if _, err := New(c); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, c)
		}
	}
}

func TestRunClusterValidation(t *testing.T) {
	if _, err := RunCluster(ClusterConfig{N: 4, Delta: 1, F: 1.2, Steps: 10}, loopTransports(3)); err == nil {
		t.Fatal("transport count mismatch accepted")
	}
	if _, err := RunCluster(ClusterConfig{N: 4, Delta: 1, F: 1.2, Steps: 10,
		GenP: []float64{0.5, 0.5}}, loopTransports(4)); err == nil {
		t.Fatal("bad probability slice length accepted")
	}
	// Invalid node config: transports must still be closed (no leak,
	// no hang) and the error surfaced.
	if _, err := RunCluster(ClusterConfig{N: 4, Delta: 0, F: 1.2, Steps: 10}, loopTransports(4)); err == nil {
		t.Fatal("invalid Delta accepted")
	}
}

func TestPerNodeProbabilities(t *testing.T) {
	// Scalar broadcast and per-node vectors both work.
	res := runLoop(t, ClusterConfig{N: 4, Delta: 1, F: 1.3, Steps: 300,
		GenP: []float64{0.9, 0.1, 0.1, 0.1}, ConP: []float64{0.2}, Seed: 3})
	if !res.Conserved() {
		t.Fatal("conservation violated")
	}
	g0 := res.Nodes[0].Generated
	for i := 1; i < 4; i++ {
		if res.Nodes[i].Generated >= g0 {
			t.Fatalf("node %d generated %d >= hot node's %d", i, res.Nodes[i].Generated, g0)
		}
	}
}

// dropFreezeReqs wraps a Transport and swallows every outbound
// FreezeReq — the node's balancing attempts all vanish into the void,
// so only the reply timeout keeps it live. Shutdown traffic passes.
type dropFreezeReqs struct {
	wire.Transport
}

func (d dropFreezeReqs) Send(to int, m wire.Msg) error {
	if m.Kind == wire.FreezeReq {
		return nil
	}
	return d.Transport.Send(to, m)
}

func TestInitiatorTimeoutKeepsNodeLive(t *testing.T) {
	// Node 1's freeze requests are all lost. Without the reply timeout
	// it would hang inflight forever and the cluster could never
	// quiesce; with it, the run completes and records the timeouts.
	ts := loopTransports(2)
	ts[1] = dropFreezeReqs{ts[1]}
	res, err := RunCluster(ClusterConfig{N: 2, Delta: 1, F: 1.1, Steps: 25,
		GenP: []float64{0.0, 1.0}, ConP: []float64{0.0},
		Seed: 9, Timeout: 30 * time.Millisecond, Tick: 5 * time.Millisecond}, ts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[1].Timeouts == 0 {
		t.Fatal("lost freeze requests never triggered the reply timeout")
	}
	if res.Nodes[1].Aborted < res.Nodes[1].Timeouts {
		t.Fatalf("timeouts %d not reflected in aborts %d",
			res.Nodes[1].Timeouts, res.Nodes[1].Aborted)
	}
	if !res.Conserved() {
		t.Fatal("conservation violated under lost freeze requests")
	}
}

func TestReportShapes(t *testing.T) {
	res := runLoop(t, ClusterConfig{N: 3, Delta: 1, F: 1.2, Steps: 100, Seed: 11})
	if res.Spread() < 0 {
		t.Fatal("negative spread")
	}
	if res.Initiated() < res.Completed() {
		t.Fatalf("completed %d exceeds initiated %d", res.Completed(), res.Initiated())
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not measured")
	}
}
