package cluster

import (
	"fmt"

	"lmbalance/internal/obs"
)

// Abort reason labels, one per way a balancing protocol dies. They are
// what the AbortAnatomy experiment and the /metrics endpoint report.
const (
	// AbortPeerFrozen: a partner answered FreezeBusy — it was already
	// frozen or mid-protocol itself. The only abort cause that exists on
	// an ideal network.
	AbortPeerFrozen = "peer_frozen"
	// AbortTimeout: the reply timeout fired with no further evidence —
	// a partner is slow, dead, or its reply is still in flight.
	AbortTimeout = "timeout"
	// AbortStaleEpoch: the reply timeout fired after a stale-epoch reply
	// (one carrying an old Seq) arrived — the partner answered a
	// protocol this initiator had already abandoned, so the two sides
	// chased each other across epochs.
	AbortStaleEpoch = "stale_epoch"
	// AbortLinkDown: the transport reported send errors during the
	// protocol — messages were dropped on the wire, so the missing
	// replies can never arrive.
	AbortLinkDown = "link_down"
)

// Protocol phase labels for the cluster_phase_seconds histograms.
const (
	// PhaseReply: initiate → one partner's FreezeAck/FreezeBusy landing.
	PhaseReply = "reply"
	// PhaseCollect: initiate → all δ replies in (resolve entered).
	PhaseCollect = "collect"
	// PhaseTransferAck: Transfer sent → its TransferAck landing.
	PhaseTransferAck = "transfer_ack"
	// PhaseFrozen: a partner's freeze → its release, transfer, or expiry.
	PhaseFrozen = "frozen"
)

// nodeMetrics is one node's resolved instrumentation handles. The
// handles are looked up once in New and shared by every node pointed at
// the same registry (cmd/lbnode -spawn), so the counters and histograms
// are cluster-wide aggregates. With a nil registry every handle is nil
// and the whole instrumentation compiles down to no-ops.
type nodeMetrics struct {
	initiated     *obs.Counter
	completed     *obs.Counter
	freezeExpired *obs.Counter

	// Pacing instrumentation. rateLimited counts deferral episodes and
	// rateLimitedSteps the raw deferred trigger firings (one persistent
	// imbalance re-fires every step inside the gap window); paceBackoff
	// and paceRecover count the adaptive controller's gap transitions;
	// paceGap is this node's live initiation gap in microseconds — a
	// per-node gauge so the gap trajectory shows on /series.
	rateLimited      *obs.Counter
	rateLimitedSteps *obs.Counter
	paceBackoff      *obs.Counter
	paceRecover      *obs.Counter
	paceGap          *obs.Gauge

	// generated/consumed are per-node (unlike the shared counters
	// above): together with the per-node load gauge they let an external
	// aggregator (obs.Aggregate) re-derive the cluster conservation
	// audit — Σ load == Σ generated − Σ consumed — from scrapes alone.
	generated *obs.Counter
	consumed  *obs.Counter

	// Serving instrumentation (serve mode only): ingested counts load
	// units accepted from client submissions, unitsDone counts units
	// completed for jobs that originated on this node, and records is
	// the live job-record FIFO depth — its divergence from the load
	// gauge is the in-flight-records transient, the serving analog of
	// the conservation audit (Σ records == Σ load at quiescence).
	ingested  *obs.Counter
	unitsDone *obs.Counter
	records   *obs.Gauge

	abort map[string]*obs.Counter // keyed by the Abort* reasons

	phaseReply   *obs.Histogram
	phaseCollect *obs.Histogram
	phaseXfer    *obs.Histogram
	phaseFrozen  *obs.Histogram

	loadHist  *obs.Histogram // load observed once per workload step
	loadGauge *obs.Gauge     // this node's instantaneous load

	tracer *obs.Tracer
}

func newNodeMetrics(reg *obs.Registry, id int) nodeMetrics {
	m := nodeMetrics{
		initiated:        reg.Counter("cluster_protocols_initiated_total"),
		completed:        reg.Counter("cluster_protocols_completed_total"),
		freezeExpired:    reg.Counter("cluster_freeze_expired_total"),
		rateLimited:      reg.Counter("cluster_initiations_ratelimited_total"),
		rateLimitedSteps: reg.Counter("cluster_ratelimited_steps_total"),
		paceBackoff:      reg.Counter("cluster_pace_backoff_total"),
		paceRecover:      reg.Counter("cluster_pace_recover_total"),
		paceGap:          reg.Gauge(PaceGapMetric(id)),
		generated:        reg.Counter(fmt.Sprintf(`cluster_node_generated_total{node="%d"}`, id)),
		consumed:         reg.Counter(fmt.Sprintf(`cluster_node_consumed_total{node="%d"}`, id)),
		ingested:         reg.Counter(fmt.Sprintf(`cluster_node_ingested_total{node="%d"}`, id)),
		unitsDone:        reg.Counter(fmt.Sprintf(`cluster_node_units_done_total{node="%d"}`, id)),
		records:          reg.Gauge(fmt.Sprintf(`cluster_node_records{node="%d"}`, id)),
		abort:            make(map[string]*obs.Counter, 4),
		phaseReply:       reg.Histogram(phaseName(PhaseReply), obs.LatencyBuckets),
		phaseCollect:     reg.Histogram(phaseName(PhaseCollect), obs.LatencyBuckets),
		phaseXfer:        reg.Histogram(phaseName(PhaseTransferAck), obs.LatencyBuckets),
		phaseFrozen:      reg.Histogram(phaseName(PhaseFrozen), obs.LatencyBuckets),
		loadHist:         reg.Histogram("cluster_load", obs.LoadBuckets),
		loadGauge:        reg.Gauge(fmt.Sprintf(`cluster_node_load{node="%d"}`, id)),
		tracer:           reg.Tracer(),
	}
	for _, reason := range []string{AbortPeerFrozen, AbortTimeout, AbortStaleEpoch, AbortLinkDown} {
		m.abort[reason] = reg.Counter(AbortMetric(reason))
	}
	return m
}

// AbortMetric returns the registry name of the abort counter for one
// reason, e.g. `cluster_aborts_total{reason="timeout"}`.
func AbortMetric(reason string) string {
	return fmt.Sprintf("cluster_aborts_total{reason=%q}", reason)
}

// PaceGapMetric returns the registry name of one node's live
// initiation-gap gauge (microseconds).
func PaceGapMetric(id int) string {
	return fmt.Sprintf(`cluster_pace_gap_us{node="%d"}`, id)
}

// phaseName returns the registry name of one phase histogram.
func phaseName(phase string) string {
	return fmt.Sprintf("cluster_phase_seconds{phase=%q}", phase)
}

// trace records one protocol event, skipping the fmt work entirely when
// tracing is disabled.
func (m *nodeMetrics) trace(node int, kind, format string, args ...any) {
	m.traceOp(node, 0, kind, format, args...)
}

// traceOp records one protocol event tagged with a balancing-operation
// id, so the event joins that operation's cross-node timeline (op 0 is
// the untagged case — events outside any operation).
func (m *nodeMetrics) traceOp(node int, op uint64, kind, format string, args ...any) {
	if m.tracer == nil {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	m.tracer.RecordOp(node, op, kind, detail)
}
