// Package wire is the wire-level message layer of the cluster runtime:
// a length-prefixed binary codec for the balancing protocol's messages
// and a Transport abstraction with two implementations — an in-memory
// loopback for tests and experiments, and real TCP for deployment.
//
// # Frame layout
//
// Every message travels as one frame:
//
//	frame   := uvarint(len(payload)) payload
//	payload := version(1B) kind(1B) zigzag(from) uvarint(seq) uvarint(op) extras
//
// where extras depend on the kind:
//
//	FreezeAck   zigzag(load)                       partner's current load
//	Transfer    zigzag(amount)                     signed load delta
//	Bye         zigzag(load) zigzag(gen) zigzag(con)  final accounting
//	JobMove     uvarint(count) zigzag(sentNS)
//	            count×{zigzag(origin) uvarint(id)
//	                   zigzag(sentNS−ingestNS) uvarint(hops) zigzag(transferNS)}
//	                                               job records riding a transfer,
//	                                               each with its journey stamps
//	JobDone     uvarint(job) zigzag(consumeNS)
//	            zigzag(consumeNS−ingestNS) uvarint(hops) zigzag(transferNS)
//	                                               one job unit completed; sent
//	                                               to the job's origin node
//	(all other kinds carry no extras)
//
// Varints are the standard LEB128 base-128 encoding (encoding/binary);
// signed fields use zigzag so small magnitudes of either sign stay short.
// A freeze request is 6 bytes on the wire, a typical transfer 7–9 — the
// paper's point that balancing cost is organization, not data volume,
// measured in actual bytes.
//
// # Versioning
//
// The current codec is version 3, which added job journey stamps to the
// two job-record kinds: a JobMove frame carries the sender's send
// timestamp and each record its origin ingest time (delta-coded against
// the send stamp), hop count, and accumulated in-flight transfer time;
// a JobDone carries the same journey fields plus the consuming node's
// consume timestamp, so the origin can decompose a unit's sojourn into
// queue-wait / transfer / service components (see internal/serve).
// Version 2 added the op field: a 64-bit operation id minted by the
// initiator of a balancing operation and echoed on every message of
// that operation, so one operation's freeze→collect→transfer→ack→release
// timeline can be stitched across processes (see internal/obs and
// internal/cluster). The encoder always emits v3; the strict decoder
// still accepts v2 payloads (journey fields decode as zero) and v1
// payloads (additionally Op = 0). On a v2-shaped message — all journey
// fields zero — the stamps cost exactly 1+3·count bytes on a JobMove
// and 4 bytes on a JobDone over the v2 encoding, and nothing on any
// other kind (see TestJourneyFieldOverhead).
//
// Payloads are capped at MaxPayload; a decoder rejects oversized frames
// before allocating, so a corrupt or adversarial length prefix cannot
// balloon memory. Truncated payloads, unknown versions/kinds, and
// trailing garbage are all decode errors.
//
// # Byte accounting
//
// Both transports count every message and byte they move (Stats), in
// total and per peer (PeerStats), on atomic obs counters safe to bump
// from writer and reader goroutines and to snapshot from anywhere. The
// loopback transport still runs each message through the codec — what it
// counts is exactly what TCP would have to say, minus the frame's length
// prefix — so an inproc/TCP comparison isolates true wire overhead.
// Register attaches the live counters (including the TCP send-queue
// depth gauge) to an obs.Registry for the /metrics debug endpoint.
package wire

import (
	"encoding/binary"
	"fmt"

	"lmbalance/internal/obs"
)

// Version is the current codec version; it leads every payload so
// incompatible peers fail loudly at the first frame rather than
// corrupting state. The decoder additionally accepts VersionV2 and
// VersionV1.
const Version = 3

// VersionV2 is the previous codec version (op field, no journey
// stamps). Still decoded — journey fields come back zero, meaning
// "unstamped record from an old peer" — but never emitted.
const VersionV2 = 2

// VersionV1 is the legacy codec version (no op field). Still decoded —
// a v3 node interoperates with frames recorded or sent by v1 peers —
// but never emitted.
const VersionV1 = 1

// MaxPayload caps the encoded payload size. The largest legal payload
// is a v3 JobMove carrying MaxJobsPerMsg records with maximal varints
// (five per record once journey stamps ride along), which fits with
// room to spare; anything larger is a framing error.
const MaxPayload = 8192

// MaxJobsPerMsg caps the job records carried by one JobMove. A transfer
// moving more load than this ships its records across several JobMove
// frames, each under MaxPayload even with worst-case varint widths.
const MaxJobsPerMsg = 96

// Kind discriminates protocol messages.
type Kind uint8

// The protocol messages. FreezeReq..Release are the balancing protocol
// itself (netsim's freeze/ack/transfer state machine); TransferAck makes
// transfers confirmable so a node knows when its sends have landed; and
// Idle/Quit/Bye are the two-phase quiescent shutdown: nodes report Idle
// to the coordinator when done stepping and quiet, the coordinator
// broadcasts Quit once everyone has, and each node answers Bye with its
// final load accounting. JobMove/JobDone are the serving front-end's
// job-record plumbing: a JobMove precedes a load transfer on the same
// FIFO link and names the jobs whose units ride that transfer, and a
// JobDone routes one completed unit back to the job's origin node.
const (
	FreezeReq Kind = 1 + iota
	FreezeAck
	FreezeBusy
	Transfer
	TransferAck
	Release
	Idle
	Quit
	Bye
	JobMove
	JobDone
)

const kindMax = JobDone

var kindNames = [...]string{
	FreezeReq:   "FreezeReq",
	FreezeAck:   "FreezeAck",
	FreezeBusy:  "FreezeBusy",
	Transfer:    "Transfer",
	TransferAck: "TransferAck",
	Release:     "Release",
	Idle:        "Idle",
	Quit:        "Quit",
	Bye:         "Bye",
	JobMove:     "JobMove",
	JobDone:     "JobDone",
}

func (k Kind) String() string {
	if k >= 1 && k <= kindMax {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

func (k Kind) valid() bool { return k >= 1 && k <= kindMax }

// JobRef names one in-flight serving job: the node that accepted it
// from a client (Origin) and that node's locally unique id for it. One
// JobRef accompanies each unit of a job's remaining work, so records
// migrate with the load they account for. The journey stamps travel
// with the record: when it ingested at the origin, how many JobMove
// hops it has taken, and how long it has spent in flight between nodes
// (accumulated receive−send per hop). A record from a pre-v3 peer
// carries zeros — "unstamped", not "instantaneous".
type JobRef struct {
	Origin     int
	ID         uint64
	IngestNS   int64 // origin's ingest wall clock, unix nanos
	Hops       int   // JobMove hops taken so far
	TransferNS int64 // accumulated wire in-flight time, nanos
}

// Msg is one protocol message. Which fields are meaningful depends on
// Kind (see the frame layout in the package comment); fields a kind does
// not carry are not encoded and decode as zero.
//
// Msg is not comparable with == (Jobs is a slice); use Equal.
type Msg struct {
	Kind   Kind
	From   int      // sender's node id
	Seq    uint64   // sender's protocol epoch; replies and releases echo it
	Op     uint64   // balancing-operation id (0 = none); echoed by every reply
	Load   int      // FreezeAck: partner load; Bye: final load
	Amount int      // Transfer: signed load delta
	Gen    int64    // Bye: lifetime generated count
	Con    int64    // Bye: lifetime consumed count
	Job    uint64   // JobDone: origin-local id of the job a unit completed for
	Jobs   []JobRef // JobMove: records riding the next Transfer on this link

	// Journey stamps (v3). SentNS is the JobMove sender's wall clock at
	// send time, the reference the per-record ingest deltas are coded
	// against and the receiver's basis for the hop's in-flight time.
	// The remaining four describe the one unit a JobDone completes.
	SentNS     int64 // JobMove: sender's send wall clock, unix nanos
	IngestNS   int64 // JobDone: unit's origin ingest wall clock
	ConsumeNS  int64 // JobDone: consuming node's consume wall clock
	Hops       int   // JobDone: JobMove hops the unit took
	TransferNS int64 // JobDone: unit's accumulated in-flight nanos
}

// Equal reports whether two messages are field-for-field identical,
// comparing Jobs element-wise (nil and empty are equal — both encode as
// count 0).
func (m Msg) Equal(o Msg) bool {
	if m.Kind != o.Kind || m.From != o.From || m.Seq != o.Seq || m.Op != o.Op ||
		m.Load != o.Load || m.Amount != o.Amount || m.Gen != o.Gen || m.Con != o.Con ||
		m.Job != o.Job || len(m.Jobs) != len(o.Jobs) ||
		m.SentNS != o.SentNS || m.IngestNS != o.IngestNS || m.ConsumeNS != o.ConsumeNS ||
		m.Hops != o.Hops || m.TransferNS != o.TransferNS {
		return false
	}
	for i := range m.Jobs {
		if m.Jobs[i] != o.Jobs[i] {
			return false
		}
	}
	return true
}

func zig(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzig(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendMsg appends m's encoded payload (no frame prefix) to buf and
// returns the extended slice. The current (v3) layout is emitted.
func AppendMsg(buf []byte, m Msg) []byte {
	return AppendMsgVersion(buf, m, Version)
}

// AppendMsgVersion encodes m in a specific codec version's layout —
// for compatibility tests and recorded-history fixtures that need
// byte-exact old-version frames. Fields a version cannot represent
// (Op before v2, journey stamps before v3) must be zero for a faithful
// round trip.
func AppendMsgVersion(buf []byte, m Msg, version byte) []byte {
	buf = append(buf, version, byte(m.Kind))
	buf = binary.AppendUvarint(buf, zig(int64(m.From)))
	buf = binary.AppendUvarint(buf, m.Seq)
	if version >= VersionV2 {
		buf = binary.AppendUvarint(buf, m.Op)
	}
	return appendExtras(buf, m, version)
}

// appendMsgV2 encodes m in the v2 layout (op field, no journey
// stamps). Kept for the compatibility tests, the fuzz canonicality
// check, and the bench-wire version comparison.
func appendMsgV2(buf []byte, m Msg) []byte { return AppendMsgVersion(buf, m, VersionV2) }

// appendMsgV1 encodes m in the legacy v1 layout (no op field). Kept for
// the compatibility tests, the fuzz canonicality check, and the
// bench-wire version comparison.
func appendMsgV1(buf []byte, m Msg) []byte { return AppendMsgVersion(buf, m, VersionV1) }

// appendExtras appends the kind-dependent tail fields for the given
// codec version. v1 and v2 share one layout; v3 adds the journey
// stamps to the two job-record kinds. Ingest times are delta-coded
// against the frame's reference stamp (SentNS on a JobMove, ConsumeNS
// on a JobDone) so a record freshly stamped with real wall clocks costs
// a short varint, not nine bytes of unix nanos.
func appendExtras(buf []byte, m Msg, version byte) []byte {
	switch m.Kind {
	case FreezeAck:
		buf = binary.AppendUvarint(buf, zig(int64(m.Load)))
	case Transfer:
		buf = binary.AppendUvarint(buf, zig(int64(m.Amount)))
	case Bye:
		buf = binary.AppendUvarint(buf, zig(int64(m.Load)))
		buf = binary.AppendUvarint(buf, zig(m.Gen))
		buf = binary.AppendUvarint(buf, zig(m.Con))
	case JobMove:
		if len(m.Jobs) > MaxJobsPerMsg {
			panic(fmt.Sprintf("wire: JobMove with %d records exceeds MaxJobsPerMsg=%d", len(m.Jobs), MaxJobsPerMsg))
		}
		buf = binary.AppendUvarint(buf, uint64(len(m.Jobs)))
		if version >= Version {
			buf = binary.AppendUvarint(buf, zig(m.SentNS))
		}
		for _, j := range m.Jobs {
			buf = binary.AppendUvarint(buf, zig(int64(j.Origin)))
			buf = binary.AppendUvarint(buf, j.ID)
			if version >= Version {
				buf = binary.AppendUvarint(buf, zig(m.SentNS-j.IngestNS))
				buf = binary.AppendUvarint(buf, uint64(j.Hops))
				buf = binary.AppendUvarint(buf, zig(j.TransferNS))
			}
		}
	case JobDone:
		buf = binary.AppendUvarint(buf, m.Job)
		if version >= Version {
			buf = binary.AppendUvarint(buf, zig(m.ConsumeNS))
			buf = binary.AppendUvarint(buf, zig(m.ConsumeNS-m.IngestNS))
			buf = binary.AppendUvarint(buf, uint64(m.Hops))
			buf = binary.AppendUvarint(buf, zig(m.TransferNS))
		}
	}
	return buf
}

// AppendFrame appends m as a complete frame (length prefix + payload)
// to buf and returns the extended slice.
func AppendFrame(buf []byte, m Msg) []byte {
	// Payloads are tiny (≤ MaxPayload), so encode into a stack scratch
	// first; the length prefix needs the payload size.
	var scratch [MaxPayload]byte
	p := AppendMsg(scratch[:0], m)
	buf = binary.AppendUvarint(buf, uint64(len(p)))
	return append(buf, p...)
}

// DecodeMsg parses one payload. It is strict: version and kind must be
// known, every varint well-formed (and minimal), and no bytes may trail
// the message. The current v3 layout, v2 payloads (journey fields
// decode as zero), and legacy v1 payloads (additionally Op = 0) are all
// accepted.
func DecodeMsg(p []byte) (Msg, error) {
	var m Msg
	if len(p) > MaxPayload {
		return m, fmt.Errorf("wire: payload %d bytes exceeds max %d", len(p), MaxPayload)
	}
	if len(p) < 2 {
		return m, fmt.Errorf("wire: payload truncated (%d bytes)", len(p))
	}
	version := p[0]
	if version != Version && version != VersionV2 && version != VersionV1 {
		return m, fmt.Errorf("wire: unknown version %d", p[0])
	}
	m.Kind = Kind(p[1])
	if !m.Kind.valid() {
		return m, fmt.Errorf("wire: unknown kind %d", p[1])
	}
	rest := p[2:]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("wire: truncated varint in %v payload", m.Kind)
		}
		if n != uvarintLen(v) {
			// Reject non-minimal encodings so every message has exactly
			// one byte representation on the wire.
			return 0, fmt.Errorf("wire: non-minimal varint in %v payload", m.Kind)
		}
		rest = rest[n:]
		return v, nil
	}
	v, err := next()
	if err != nil {
		return m, err
	}
	m.From = int(unzig(v))
	if m.Seq, err = next(); err != nil {
		return m, err
	}
	if version >= 2 {
		if m.Op, err = next(); err != nil {
			return m, err
		}
	}
	switch m.Kind {
	case FreezeAck:
		if v, err = next(); err != nil {
			return m, err
		}
		m.Load = int(unzig(v))
	case Transfer:
		if v, err = next(); err != nil {
			return m, err
		}
		m.Amount = int(unzig(v))
	case Bye:
		if v, err = next(); err != nil {
			return m, err
		}
		m.Load = int(unzig(v))
		if v, err = next(); err != nil {
			return m, err
		}
		m.Gen = unzig(v)
		if v, err = next(); err != nil {
			return m, err
		}
		m.Con = unzig(v)
	case JobMove:
		count, err := next()
		if err != nil {
			return m, err
		}
		if count > MaxJobsPerMsg {
			return m, fmt.Errorf("wire: JobMove with %d records exceeds max %d", count, MaxJobsPerMsg)
		}
		if version >= Version {
			if v, err = next(); err != nil {
				return m, err
			}
			m.SentNS = unzig(v)
		}
		if count > 0 {
			m.Jobs = make([]JobRef, count)
			for i := range m.Jobs {
				if v, err = next(); err != nil {
					return m, err
				}
				m.Jobs[i].Origin = int(unzig(v))
				if m.Jobs[i].ID, err = next(); err != nil {
					return m, err
				}
				if version >= Version {
					if v, err = next(); err != nil {
						return m, err
					}
					m.Jobs[i].IngestNS = m.SentNS - unzig(v)
					if v, err = next(); err != nil {
						return m, err
					}
					m.Jobs[i].Hops = int(v)
					if v, err = next(); err != nil {
						return m, err
					}
					m.Jobs[i].TransferNS = unzig(v)
				}
			}
		}
	case JobDone:
		if m.Job, err = next(); err != nil {
			return m, err
		}
		if version >= Version {
			if v, err = next(); err != nil {
				return m, err
			}
			m.ConsumeNS = unzig(v)
			if v, err = next(); err != nil {
				return m, err
			}
			m.IngestNS = m.ConsumeNS - unzig(v)
			if v, err = next(); err != nil {
				return m, err
			}
			m.Hops = int(v)
			if v, err = next(); err != nil {
				return m, err
			}
			m.TransferNS = unzig(v)
		}
	}
	if len(rest) != 0 {
		return m, fmt.Errorf("wire: %d trailing bytes after %v payload", len(rest), m.Kind)
	}
	return m, nil
}

// EncodedSize returns the payload size of m (without the frame prefix).
func EncodedSize(m Msg) int {
	var scratch [MaxPayload]byte
	return len(AppendMsg(scratch[:0], m))
}

// Stats are a transport's cumulative traffic counters. Loopback byte
// counts are payload bytes; TCP byte counts are frame bytes as written
// to / read from the socket (payload + length prefix).
type Stats struct {
	MsgsSent   int64
	MsgsRecv   int64
	BytesSent  int64
	BytesRecv  int64
	SendErrors int64 // messages dropped after exhausting delivery attempts
	Redials    int64 // connections re-established after a failure
}

// PeerStatser is the optional per-peer accounting view of a Transport.
// Both built-in transports implement it; consumers that need to
// attribute traffic or failures to one link (e.g. the cluster's
// link_down abort classification) type-assert and fall back to the
// transport-wide Stats when it is absent.
type PeerStatser interface {
	// PeerStats snapshots the traffic exchanged with one peer,
	// including the send errors on this node's link *to* that peer
	// (zero Stats for an unknown peer; Redials stay transport-wide).
	PeerStats(id int) Stats
}

// Transport moves protocol messages between the nodes of one cluster.
// Send enqueues a message to a peer (it may block briefly for
// backpressure but never deadlocks a caller that keeps draining its
// Inbox); Inbox delivers every message addressed to this node. All
// methods are safe for concurrent use, but a Transport is owned by one
// node: only that node calls Send and reads Inbox.
type Transport interface {
	// Send delivers m to peer `to`. It returns an error only if the
	// transport is closed or the destination is invalid; delivery
	// failures on an open transport are counted in Stats, not returned,
	// mirroring a real network's fire-and-forget datagram to a peer
	// that may be down.
	Send(to int, m Msg) error
	// Inbox is the stream of messages addressed to this node.
	Inbox() <-chan Msg
	// Stats snapshots the traffic counters.
	Stats() Stats
	// Close shuts the transport down, flushing queued outbound
	// messages where the medium allows. Close is idempotent.
	Close() error
}

// counters is the shared atomic implementation behind Stats: obs
// counters (atomic, usable without a registry) for the transport
// totals plus a per-peer breakdown over the known peer set. Totals and
// per-peer entries are incremented from writer/reader goroutines and
// snapshotted from the owner — every field is atomic, so no lock.
type counters struct {
	msgsSent, msgsRecv   obs.Counter
	bytesSent, bytesRecv obs.Counter
	sendErrors, redials  obs.Counter
	queueDepth           obs.Gauge // TCP: messages sitting in send queues
	perPeer              map[int]*peerCounters
}

// peerCounters is one peer's share of the traffic.
type peerCounters struct {
	msgsSent, msgsRecv   obs.Counter
	bytesSent, bytesRecv obs.Counter
	sendErrors           obs.Counter // messages to this peer dropped after all attempts
}

// initPeers seeds the per-peer table for a known peer set. The map is
// read-only after construction, so lookups from concurrent reader and
// writer goroutines need no lock.
func (c *counters) initPeers(ids []int) {
	c.perPeer = make(map[int]*peerCounters, len(ids))
	for _, id := range ids {
		c.perPeer[id] = &peerCounters{}
	}
}

// countSend records one message of b bytes sent to peer `to`.
func (c *counters) countSend(to int, b int64) {
	c.msgsSent.Add(1)
	c.bytesSent.Add(b)
	if p := c.perPeer[to]; p != nil {
		p.msgsSent.Add(1)
		p.bytesSent.Add(b)
	}
}

// countSendError records one message to peer `to` dropped after
// exhausting delivery attempts, in the transport total and on that
// peer's link — the per-link view is what lets a consumer distinguish
// "my protocol partner's link failed" from "some unrelated link failed".
func (c *counters) countSendError(to int) {
	c.sendErrors.Add(1)
	if p := c.perPeer[to]; p != nil {
		p.sendErrors.Add(1)
	}
}

// countRecv records one message of b bytes received from peer `from`.
func (c *counters) countRecv(from int, b int64) {
	c.msgsRecv.Add(1)
	c.bytesRecv.Add(b)
	if p := c.perPeer[from]; p != nil {
		p.msgsRecv.Add(1)
		p.bytesRecv.Add(b)
	}
}

func (c *counters) snapshot() Stats {
	return Stats{
		MsgsSent:   c.msgsSent.Value(),
		MsgsRecv:   c.msgsRecv.Value(),
		BytesSent:  c.bytesSent.Value(),
		BytesRecv:  c.bytesRecv.Value(),
		SendErrors: c.sendErrors.Value(),
		Redials:    c.redials.Value(),
	}
}

// peerStats snapshots one peer's traffic (zero Stats for an unknown
// peer; Redials are transport-wide, not per peer).
func (c *counters) peerStats(id int) Stats {
	p := c.perPeer[id]
	if p == nil {
		return Stats{}
	}
	return Stats{
		MsgsSent:   p.msgsSent.Value(),
		MsgsRecv:   p.msgsRecv.Value(),
		BytesSent:  p.bytesSent.Value(),
		BytesRecv:  p.bytesRecv.Value(),
		SendErrors: p.sendErrors.Value(),
	}
}

// register attaches the transport's counters to an obs registry under
// the wire_* namespace, labeled with this node's id: the totals, the
// send-queue depth gauge, and the per-peer byte/msg series. Call once
// at setup; the counters themselves are live (no copying), so the
// registry always exports current values.
func (c *counters) register(reg *obs.Registry, node int) {
	if reg == nil {
		return
	}
	n := fmt.Sprintf("node=\"%d\"", node)
	reg.Attach(fmt.Sprintf("wire_msgs_sent_total{%s}", n), &c.msgsSent)
	reg.Attach(fmt.Sprintf("wire_msgs_recv_total{%s}", n), &c.msgsRecv)
	reg.Attach(fmt.Sprintf("wire_bytes_sent_total{%s}", n), &c.bytesSent)
	reg.Attach(fmt.Sprintf("wire_bytes_recv_total{%s}", n), &c.bytesRecv)
	reg.Attach(fmt.Sprintf("wire_send_errors_total{%s}", n), &c.sendErrors)
	reg.Attach(fmt.Sprintf("wire_redials_total{%s}", n), &c.redials)
	reg.Attach(fmt.Sprintf("wire_sendq_depth{%s}", n), &c.queueDepth)
	for id, p := range c.perPeer {
		pl := fmt.Sprintf("%s,peer=\"%d\"", n, id)
		reg.Attach(fmt.Sprintf("wire_peer_msgs_sent_total{%s}", pl), &p.msgsSent)
		reg.Attach(fmt.Sprintf("wire_peer_msgs_recv_total{%s}", pl), &p.msgsRecv)
		reg.Attach(fmt.Sprintf("wire_peer_bytes_sent_total{%s}", pl), &p.bytesSent)
		reg.Attach(fmt.Sprintf("wire_peer_bytes_recv_total{%s}", pl), &p.bytesRecv)
		reg.Attach(fmt.Sprintf("wire_peer_send_errors_total{%s}", pl), &p.sendErrors)
	}
}
