package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzWireRoundTrip drives the codec from both ends. The fuzz input is
// interpreted twice:
//
//  1. as message fields — every syntactically valid Msg (including its
//     op id and v3 journey stamps) must survive encode→decode
//     unchanged, and its frame must read back identically through
//     ReadFrame;
//  2. as a raw byte stream — the decoder must reject or accept without
//     panicking, truncated and oversized frames must error, and any
//     stream the decoder accepts must re-encode to the same bytes under
//     the version it arrived in (canonical encoding) — v2 payloads
//     (journey fields zero) and legacy v1 payloads (additionally
//     Op = 0) included.
func FuzzWireRoundTrip(f *testing.F) {
	for _, m := range sampleMsgs() {
		f.Add(byte(m.Kind), int64(m.From), m.Seq, m.Op, int64(m.Load), int64(m.Amount), m.Gen, m.Con, m.Job, AppendFrame(nil, m))
		// Seed the raw direction with old-version payloads too, so the
		// legacy decode paths stay covered.
		if !journeyStamped(m) {
			f.Add(byte(m.Kind), int64(m.From), m.Seq, m.Op, int64(m.Load), int64(m.Amount), m.Gen, m.Con, m.Job, appendMsgV2(nil, m))
			if m.Op == 0 {
				f.Add(byte(m.Kind), int64(m.From), m.Seq, m.Op, int64(m.Load), int64(m.Amount), m.Gen, m.Con, m.Job, appendMsgV1(nil, m))
			}
		}
	}
	f.Add(byte(0), int64(0), uint64(0), uint64(0), int64(0), int64(0), int64(0), int64(0), uint64(0), []byte{0xff, 0xff, 0x03, 0x00})
	f.Fuzz(func(t *testing.T, kind byte, from int64, seq, op uint64, load, amount, gen, con int64, job uint64, raw []byte) {
		// Direction 1: struct → bytes → struct.
		m := Msg{Kind: Kind(kind), From: int(from), Seq: seq, Op: op,
			Load: int(load), Amount: int(amount), Gen: gen, Con: con}
		if m.Kind.valid() {
			// Fields a kind does not carry are not encoded; zero them so
			// equality is meaningful. (Op travels on every v2 message.)
			switch m.Kind {
			case FreezeAck:
				m.Amount, m.Gen, m.Con = 0, 0, 0
			case Transfer:
				m.Load, m.Gen, m.Con = 0, 0, 0
			case Bye:
				m.Amount = 0
			case JobMove:
				// The record list is a slice, not a fuzz argument: derive a
				// deterministic one (0..MaxJobsPerMsg records, journey
				// stamps included) from the scalar inputs so the fuzzer
				// still steers its shape.
				m.Load, m.Amount, m.Gen, m.Con = 0, 0, 0, 0
				m.SentNS = gen
				for i := 0; i < int(job%(MaxJobsPerMsg+1)); i++ {
					m.Jobs = append(m.Jobs, JobRef{
						Origin: int(from) + i, ID: seq ^ uint64(i)*op,
						IngestNS:   gen - con*int64(i),
						Hops:       int(load) & 0xff,
						TransferNS: con ^ int64(i),
					})
				}
			case JobDone:
				m.Load, m.Amount, m.Gen, m.Con = 0, 0, 0, 0
				m.Job = job
				m.IngestNS, m.ConsumeNS = gen, con
				m.Hops, m.TransferNS = int(load)&0xff, gen^con
			default:
				m.Load, m.Amount, m.Gen, m.Con = 0, 0, 0, 0
			}
			p := AppendMsg(nil, m)
			if len(p) > MaxPayload {
				t.Fatalf("payload %d bytes > MaxPayload for %+v", len(p), m)
			}
			dm, err := DecodeMsg(p)
			if err != nil {
				t.Fatalf("decode of freshly encoded %+v: %v", m, err)
			}
			if !dm.Equal(m) {
				t.Fatalf("payload round trip: sent %+v got %+v", m, dm)
			}
			// The v2 encoding of the same message (journey stamps
			// stripped) and the v1 one (op id stripped too) must still be
			// decodable, yielding the correspondingly reduced message.
			v2m := m
			v2m.SentNS, v2m.IngestNS, v2m.ConsumeNS, v2m.Hops, v2m.TransferNS = 0, 0, 0, 0, 0
			if len(v2m.Jobs) > 0 {
				v2m.Jobs = make([]JobRef, len(m.Jobs))
				for i, j := range m.Jobs {
					v2m.Jobs[i] = JobRef{Origin: j.Origin, ID: j.ID}
				}
			}
			if dm, err := DecodeMsg(appendMsgV2(nil, v2m)); err != nil {
				t.Fatalf("decode of v2 encoding of %+v: %v", v2m, err)
			} else if !dm.Equal(v2m) {
				t.Fatalf("v2 round trip: sent %+v got %+v", v2m, dm)
			}
			v1m := v2m
			v1m.Op = 0
			if dm, err := DecodeMsg(appendMsgV1(nil, v1m)); err != nil {
				t.Fatalf("decode of v1 encoding of %+v: %v", v1m, err)
			} else if !dm.Equal(v1m) {
				t.Fatalf("v1 round trip: sent %+v got %+v", v1m, dm)
			}
			frame := AppendFrame(nil, m)
			fm, n, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
			if err != nil {
				t.Fatalf("read of freshly framed %+v: %v", m, err)
			}
			if !fm.Equal(m) || n != len(frame) {
				t.Fatalf("frame round trip: sent %+v got %+v (%d of %d bytes)", m, fm, n, len(frame))
			}
			// A truncated frame must never decode successfully.
			for cut := 1; cut < len(frame); cut++ {
				if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame[:cut]))); err == nil {
					t.Fatalf("truncated frame (%d of %d bytes) accepted", cut, len(frame))
				}
			}
		}

		// Direction 2: arbitrary bytes through both decoders. Must not
		// panic; on success the encoding must be canonical under the
		// version the bytes declared.
		if dm, err := DecodeMsg(raw); err == nil {
			var re []byte
			switch raw[0] {
			case Version:
				re = AppendMsg(nil, dm)
			case VersionV2:
				if journeyStamped(dm) {
					t.Fatalf("v2 payload %x decoded with journey stamps: %+v", raw, dm)
				}
				re = appendMsgV2(nil, dm)
			case VersionV1:
				if dm.Op != 0 {
					t.Fatalf("v1 payload %x decoded with nonzero op %d", raw, dm.Op)
				}
				if journeyStamped(dm) {
					t.Fatalf("v1 payload %x decoded with journey stamps: %+v", raw, dm)
				}
				re = appendMsgV1(nil, dm)
			default:
				t.Fatalf("decoder accepted unknown version %d: %x", raw[0], raw)
			}
			if !bytes.Equal(re, raw) {
				t.Fatalf("non-canonical payload: %x decodes to %+v which re-encodes to %x", raw, dm, re)
			}
		}
		br := bufio.NewReader(bytes.NewReader(raw))
		for {
			if _, _, err := ReadFrame(br); err != nil {
				break
			}
		}
	})
}
