package wire

import (
	"bufio"
	"bytes"
	"io"
	"strings"
	"testing"
)

func sampleCMsgs() []CMsg {
	return []CMsg{
		{Kind: CSubmit, Job: 0, Units: 1},
		{Kind: CSubmit, Job: 1 << 40, Units: 100},
		{Kind: CAccepted, Job: 7, Load: 0},
		{Kind: CAccepted, Job: 7, Load: 123456},
		{Kind: CDone, Job: 9, SubmitNS: 1700000000123456789, DoneNS: 1700000000987654321},
		{Kind: CDone, Job: 10, SubmitNS: -5, DoneNS: 0},
	}
}

func TestClientRoundTrip(t *testing.T) {
	var stream []byte
	msgs := sampleCMsgs()
	for _, m := range msgs {
		p := AppendCMsg(nil, m)
		if len(p) > MaxClientPayload {
			t.Fatalf("%+v encodes to %d bytes > MaxClientPayload", m, len(p))
		}
		dm, err := DecodeCMsg(p)
		if err != nil {
			t.Fatalf("decode %+v: %v", m, err)
		}
		if dm != m {
			t.Fatalf("round trip changed message: sent %+v got %+v", m, dm)
		}
		stream = AppendCFrame(stream, m)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	total := 0
	for i, want := range msgs {
		m, n, err := ReadCFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if m != want {
			t.Fatalf("frame %d: sent %+v got %+v", i, want, m)
		}
		total += n
	}
	if total != len(stream) {
		t.Fatalf("frames consumed %d bytes, stream has %d", total, len(stream))
	}
	if _, _, err := ReadCFrame(br); err != io.EOF {
		t.Fatalf("expected EOF after last frame, got %v", err)
	}
}

func TestClientDecodeRejectsCorruptPayloads(t *testing.T) {
	good := AppendCMsg(nil, CMsg{Kind: CDone, Job: 3, SubmitNS: 100, DoneNS: 250})
	cases := map[string][]byte{
		"empty":            {},
		"version only":     {Version},
		"v1 not a thing":   append([]byte{VersionV1}, good[1:]...),
		"bad kind":         {Version, 0xee, 0x02},
		"kind zero":        {Version, 0x00, 0x02},
		"truncated varint": good[:len(good)-1],
		"trailing bytes":   append(append([]byte{}, good...), 0x00),
		"oversized":        make([]byte, MaxClientPayload+1),
	}
	for name, p := range cases {
		if _, err := DecodeCMsg(p); err == nil {
			t.Errorf("%s: decode accepted %x", name, p)
		}
	}
}

func TestClientReadFrameRejectsOversizedAndTruncated(t *testing.T) {
	big := []byte{0xff, 0xff, 0x03} // uvarint 65535
	if _, _, err := ReadCFrame(bufio.NewReader(bytes.NewReader(big))); err == nil ||
		!strings.Contains(err.Error(), "exceeds max") {
		t.Fatalf("oversized client frame accepted: %v", err)
	}
	trunc := append([]byte{10}, 1, 2, 3)
	if _, _, err := ReadCFrame(bufio.NewReader(bytes.NewReader(trunc))); err == nil {
		t.Fatal("truncated client frame accepted")
	}
}

func TestCKindString(t *testing.T) {
	for k := CSubmit; k <= cKindMax; k++ {
		if s := k.String(); strings.HasPrefix(s, "CKind(") {
			t.Fatalf("client kind %d has no name", k)
		}
	}
	if s := CKind(77).String(); s != "CKind(77)" {
		t.Fatalf("unknown client kind prints %q", s)
	}
}

// TestJobMovePayloadBudget pins that a maximal JobMove — MaxJobsPerMsg
// records with worst-case varint widths — still fits in MaxPayload, so
// the encoder's frame scratch and the decoder's size gate can never
// reject a legal message.
func TestJobMovePayloadBudget(t *testing.T) {
	m := Msg{Kind: JobMove, From: -1 << 62, Seq: 1 << 62, Op: 1 << 62}
	for i := 0; i < MaxJobsPerMsg; i++ {
		m.Jobs = append(m.Jobs, JobRef{Origin: -1 << 62, ID: 1<<64 - 1})
	}
	if n := EncodedSize(m); n > MaxPayload {
		t.Fatalf("worst-case JobMove is %d bytes > MaxPayload %d", n, MaxPayload)
	}
	dm, err := DecodeMsg(AppendMsg(nil, m))
	if err != nil {
		t.Fatalf("worst-case JobMove decode: %v", err)
	}
	if !dm.Equal(m) {
		t.Fatal("worst-case JobMove round trip changed message")
	}
	// One record over the cap must panic at the encoder and error at the
	// decoder (a forged count).
	m.Jobs = append(m.Jobs, JobRef{})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("encoder accepted JobMove over MaxJobsPerMsg")
			}
		}()
		AppendMsg(nil, m)
	}()
}
