package wire

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"lmbalance/internal/obs"
)

// TestTCPConcurrentAccounting is the regression test for the
// per-endpoint accounting: many goroutines send on the same transport
// while others snapshot Stats and PeerStats — every counter mutation
// must be atomic (the race gate runs this under -race) and the totals
// must exactly equal the per-peer sums.
func TestTCPConcurrentAccounting(t *testing.T) {
	const (
		n       = 3
		senders = 4
		perSend = 200
	)
	ts, err := NewLocalCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, tp := range ts {
			tp.Close()
		}
	}()

	// Drain every inbox, counting deliveries.
	var recvWg sync.WaitGroup
	recvCount := make([]int, n)
	for i, tp := range ts {
		recvWg.Add(1)
		go func(i int, tp *TCP) {
			defer recvWg.Done()
			want := (n - 1) * senders * perSend
			timeout := time.After(30 * time.Second)
			for recvCount[i] < want {
				select {
				case <-tp.Inbox():
					recvCount[i]++
				case <-timeout:
					return
				}
			}
		}(i, tp)
	}

	// Hammer Send from several goroutines per transport while other
	// goroutines concurrently read the counters.
	stop := make(chan struct{})
	var readWg sync.WaitGroup
	for _, tp := range ts {
		readWg.Add(1)
		go func(tp *TCP) {
			defer readWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = tp.Stats()
					for p := 0; p < n; p++ {
						_ = tp.PeerStats(p)
					}
				}
			}
		}(tp)
	}
	var sendWg sync.WaitGroup
	for id, tp := range ts {
		for s := 0; s < senders; s++ {
			sendWg.Add(1)
			go func(id int, tp *TCP) {
				defer sendWg.Done()
				for i := 0; i < perSend; i++ {
					for to := 0; to < n; to++ {
						if to == id {
							continue
						}
						if err := tp.Send(to, Msg{Kind: Idle, From: id}); err != nil {
							t.Errorf("send %d->%d: %v", id, to, err)
							return
						}
					}
				}
			}(id, tp)
		}
	}
	sendWg.Wait()
	recvWg.Wait()
	close(stop)
	readWg.Wait()

	for i, tp := range ts {
		want := (n - 1) * senders * perSend
		if recvCount[i] != want {
			t.Fatalf("node %d drained %d messages, want %d", i, recvCount[i], want)
		}
		st := tp.Stats()
		if st.MsgsSent != int64(want) {
			t.Fatalf("node %d sent %d, want %d", i, st.MsgsSent, want)
		}
		// Totals must equal the per-peer sums exactly.
		var peerSent, peerBytes, peerRecv, peerBytesRecv int64
		for p := 0; p < n; p++ {
			ps := tp.PeerStats(p)
			peerSent += ps.MsgsSent
			peerBytes += ps.BytesSent
			peerRecv += ps.MsgsRecv
			peerBytesRecv += ps.BytesRecv
			if p != i {
				if ps.MsgsSent != int64(senders*perSend) {
					t.Fatalf("node %d -> peer %d: %d msgs, want %d", i, p, ps.MsgsSent, senders*perSend)
				}
			}
		}
		if peerSent != st.MsgsSent || peerBytes != st.BytesSent {
			t.Fatalf("node %d per-peer sent (%d msgs, %d B) != totals (%d msgs, %d B)",
				i, peerSent, peerBytes, st.MsgsSent, st.BytesSent)
		}
		if peerRecv != st.MsgsRecv || peerBytesRecv != st.BytesRecv {
			t.Fatalf("node %d per-peer recv (%d msgs, %d B) != totals (%d msgs, %d B)",
				i, peerRecv, peerBytesRecv, st.MsgsRecv, st.BytesRecv)
		}
		if ps := tp.PeerStats(99); ps != (Stats{}) {
			t.Fatalf("unknown peer must report zero Stats, got %+v", ps)
		}
	}
}

// TestLoopbackPeerAccounting checks the same breakdown on the
// in-memory transport, plus the registry export of the wire counters.
func TestLoopbackPeerAccounting(t *testing.T) {
	net := NewLoopback(3)
	a, b, c := net.Transport(0), net.Transport(1), net.Transport(2)
	for i := 0; i < 5; i++ {
		if err := a.Send(1, Msg{Kind: Idle, From: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Send(2, Msg{Kind: Idle, From: 0}); err != nil {
		t.Fatal(err)
	}
	if got := a.PeerStats(1).MsgsSent; got != 5 {
		t.Fatalf("a->b msgs = %d, want 5", got)
	}
	if got := a.PeerStats(2).MsgsSent; got != 1 {
		t.Fatalf("a->c msgs = %d, want 1", got)
	}
	if got := b.PeerStats(0).MsgsRecv; got != 5 {
		t.Fatalf("b<-a msgs = %d, want 5", got)
	}
	if got := c.PeerStats(0).MsgsRecv; got != 1 {
		t.Fatalf("c<-a msgs = %d, want 1", got)
	}
	if st := a.Stats(); st.MsgsSent != 6 {
		t.Fatalf("a total sent = %d, want 6", st.MsgsSent)
	}

	reg := obs.NewRegistry()
	a.Register(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`wire_msgs_sent_total{node="0"} 6`,
		`wire_peer_msgs_sent_total{node="0",peer="1"} 5`,
		`wire_peer_msgs_sent_total{node="0",peer="2"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("registry exposition missing %q:\n%s", want, out)
		}
	}
	// Registered counters are live, not copies.
	if err := a.Send(2, Msg{Kind: Idle, From: 0}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `wire_msgs_sent_total{node="0"} 7`) {
		t.Fatalf("registered counter did not track live traffic:\n%s", buf.String())
	}
}

// TestTCPQueueDepthGauge checks the send-queue depth gauge returns to
// zero once the writers have drained everything.
func TestTCPQueueDepthGauge(t *testing.T) {
	ts, err := NewLocalCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ts[0].Register(reg)
	depth := reg.Gauge(`wire_sendq_depth{node="0"}`)
	go func() {
		for range ts[1].Inbox() {
		}
	}()
	for i := 0; i < 100; i++ {
		if err := ts[0].Send(1, Msg{Kind: Idle, From: 0}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for depth.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth stuck at %d", depth.Value())
		}
		time.Sleep(time.Millisecond)
	}
	if st := ts[0].Stats(); st.MsgsSent != 100 {
		t.Fatalf("sent %d, want 100", st.MsgsSent)
	}
	for _, tp := range ts {
		tp.Close()
	}
	if depth.Value() != 0 {
		t.Fatalf("queue depth after close = %d, want 0", depth.Value())
	}
}
