package wire

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"lmbalance/internal/obs"
)

// sampleMsgs covers every kind with representative field values,
// including negative deltas and large epochs.
func sampleMsgs() []Msg {
	return []Msg{
		{Kind: FreezeReq, From: 0, Seq: 1},
		{Kind: FreezeReq, From: 1023, Seq: 1 << 40},
		{Kind: FreezeReq, From: 4, Seq: 2, Op: 0xdeadbeefcafe},
		{Kind: FreezeAck, From: 3, Seq: 7, Load: 0},
		{Kind: FreezeAck, From: 3, Seq: 7, Op: 1 << 63, Load: 123456},
		{Kind: FreezeBusy, From: 2, Seq: 9, Op: 12345},
		{Kind: Transfer, From: 5, Seq: 11, Amount: -4231},
		{Kind: Transfer, From: 5, Seq: 11, Op: 987654321, Amount: 17},
		{Kind: TransferAck, From: 6, Seq: 11, Op: 987654321},
		{Kind: Release, From: 7, Seq: 12, Op: 3},
		{Kind: Idle, From: 8},
		{Kind: Quit, From: 0},
		{Kind: Bye, From: 9, Load: 42, Gen: 10000, Con: 9958},
		{Kind: JobMove, From: 2, Seq: 5},
		{Kind: JobMove, From: 2, Seq: 5, Op: 777, Jobs: []JobRef{
			{Origin: 2, ID: 1}, {Origin: 13, ID: 1 << 50}, {Origin: 0, ID: 0}}},
		{Kind: JobMove, From: 6, Seq: 8, Op: 42, SentNS: 1_700_000_000_123_456_789, Jobs: []JobRef{
			{Origin: 6, ID: 3, IngestNS: 1_700_000_000_123_000_000, Hops: 0, TransferNS: 0},
			{Origin: 1, ID: 9, IngestNS: 1_699_999_999_000_000_000, Hops: 4, TransferNS: 2_500_000}}},
		{Kind: JobDone, From: 4, Seq: 3, Job: 9001},
		{Kind: JobDone, From: 4, Seq: 3, Op: 11, Job: 9002,
			IngestNS: 1_700_000_000_000_000_000, ConsumeNS: 1_700_000_000_004_000_000,
			Hops: 2, TransferNS: 750_000},
	}
}

// journeyStamped reports whether m carries any v3-only journey field —
// such messages are not representable in the v1/v2 layouts.
func journeyStamped(m Msg) bool {
	if m.SentNS != 0 || m.IngestNS != 0 || m.ConsumeNS != 0 || m.Hops != 0 || m.TransferNS != 0 {
		return true
	}
	for _, j := range m.Jobs {
		if j.IngestNS != 0 || j.Hops != 0 || j.TransferNS != 0 {
			return true
		}
	}
	return false
}

func TestRoundTripPayload(t *testing.T) {
	for _, m := range sampleMsgs() {
		p := AppendMsg(nil, m)
		if len(p) > MaxPayload {
			t.Fatalf("%+v encodes to %d bytes > MaxPayload", m, len(p))
		}
		if got := EncodedSize(m); got != len(p) {
			t.Fatalf("EncodedSize %d != payload %d for %+v", got, len(p), m)
		}
		dm, err := DecodeMsg(p)
		if err != nil {
			t.Fatalf("decode %+v: %v", m, err)
		}
		if !dm.Equal(m) {
			t.Fatalf("round trip changed message: sent %+v got %+v", m, dm)
		}
	}
}

func TestRoundTripFrame(t *testing.T) {
	// All samples concatenated into one stream, then read back.
	var stream []byte
	msgs := sampleMsgs()
	for _, m := range msgs {
		stream = AppendFrame(stream, m)
	}
	br := bufio.NewReader(bytes.NewReader(stream))
	total := 0
	for i, want := range msgs {
		m, n, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !m.Equal(want) {
			t.Fatalf("frame %d: sent %+v got %+v", i, want, m)
		}
		if n <= EncodedSize(want) {
			t.Fatalf("frame %d: wire bytes %d not larger than payload %d", i, n, EncodedSize(want))
		}
		total += n
	}
	if total != len(stream) {
		t.Fatalf("frames consumed %d bytes, stream has %d", total, len(stream))
	}
	if _, _, err := ReadFrame(br); err != io.EOF {
		t.Fatalf("expected EOF after last frame, got %v", err)
	}
}

func TestDecodeRejectsCorruptPayloads(t *testing.T) {
	good := AppendMsg(nil, Msg{Kind: Transfer, From: 1, Seq: 2, Amount: -3})
	cases := map[string][]byte{
		"empty":            {},
		"version only":     {Version},
		"bad version":      append([]byte{Version + 1}, good[1:]...),
		"bad kind":         {Version, 0xee, 0x02, 0x04},
		"kind zero":        {Version, 0x00, 0x02, 0x04},
		"truncated varint": good[:len(good)-1],
		"trailing bytes":   append(append([]byte{}, good...), 0x00),
		"oversized":        make([]byte, MaxPayload+1),
	}
	for name, p := range cases {
		if _, err := DecodeMsg(p); err == nil {
			t.Errorf("%s: decode accepted %x", name, p)
		}
	}
}

// TestDecodeV1Compat: the strict decoder must keep accepting legacy v1
// payloads (no op field), decoding them with Op = 0 and all other
// fields intact — a v3 node interoperates with a v1 peer's frames.
func TestDecodeV1Compat(t *testing.T) {
	for _, m := range sampleMsgs() {
		if m.Op != 0 || journeyStamped(m) {
			continue // v1 cannot carry an op id or journey stamps
		}
		p := appendMsgV1(nil, m)
		if p[0] != VersionV1 {
			t.Fatalf("v1 encoder emitted version %d", p[0])
		}
		dm, err := DecodeMsg(p)
		if err != nil {
			t.Fatalf("v1 payload for %+v rejected: %v", m, err)
		}
		if !dm.Equal(m) {
			t.Fatalf("v1 round trip changed message: sent %+v got %+v", m, dm)
		}
		// The same corruption rules apply to v1: trailing bytes and
		// truncated varints must still be errors.
		if _, err := DecodeMsg(append(append([]byte{}, p...), 0x00)); err == nil {
			t.Fatalf("v1 payload with trailing byte accepted: %x", p)
		}
		if _, err := DecodeMsg(p[:len(p)-1]); err == nil {
			t.Fatalf("truncated v1 payload accepted: %x", p)
		}
	}
}

// TestDecodeV2Compat: the strict decoder must keep accepting v2
// payloads (op field, no journey stamps), decoding their journey
// fields as zero and everything else intact — a v3 node interoperates
// with a v2 peer's frames.
func TestDecodeV2Compat(t *testing.T) {
	for _, m := range sampleMsgs() {
		if journeyStamped(m) {
			continue // v2 cannot carry journey stamps
		}
		p := appendMsgV2(nil, m)
		if p[0] != VersionV2 {
			t.Fatalf("v2 encoder emitted version %d", p[0])
		}
		dm, err := DecodeMsg(p)
		if err != nil {
			t.Fatalf("v2 payload for %+v rejected: %v", m, err)
		}
		if !dm.Equal(m) {
			t.Fatalf("v2 round trip changed message: sent %+v got %+v", m, dm)
		}
		// The same corruption rules apply to v2.
		if _, err := DecodeMsg(append(append([]byte{}, p...), 0x00)); err == nil {
			t.Fatalf("v2 payload with trailing byte accepted: %x", p)
		}
		if _, err := DecodeMsg(p[:len(p)-1]); err == nil {
			t.Fatalf("truncated v2 payload accepted: %x", p)
		}
	}
}

// TestOpFieldOverhead pins the cost of the v2 op field: on a v1-shaped
// message (Op = 0) the v2 encoding is exactly one byte longer than the
// v1 encoding — the single 0x00 uvarint.
func TestOpFieldOverhead(t *testing.T) {
	for _, m := range sampleMsgs() {
		if m.Op != 0 || journeyStamped(m) {
			continue
		}
		v1 := appendMsgV1(nil, m)
		v2 := appendMsgV2(nil, m)
		if len(v2) != len(v1)+1 {
			t.Fatalf("%+v: v2 payload %d bytes, v1 %d — op field must cost exactly 1 byte",
				m, len(v2), len(v1))
		}
	}
}

// TestJourneyFieldOverhead pins the cost of the v3 journey stamps on
// v2-shaped messages (all journey fields zero): 1+3·count bytes on a
// JobMove (the zero send stamp plus three zero varints per record), 4
// bytes on a JobDone, and nothing at all on any other kind.
func TestJourneyFieldOverhead(t *testing.T) {
	for _, m := range sampleMsgs() {
		if journeyStamped(m) {
			continue
		}
		v2 := appendMsgV2(nil, m)
		v3 := AppendMsg(nil, m)
		want := 0
		switch m.Kind {
		case JobMove:
			want = 1 + 3*len(m.Jobs)
		case JobDone:
			want = 4
		}
		if len(v3) != len(v2)+want {
			t.Fatalf("%+v: v3 payload %d bytes, v2 %d — journey stamps must cost exactly %d bytes",
				m, len(v3), len(v2), want)
		}
	}
}

// TestJourneyDeltaCoding pins the point of delta-coding the ingest
// stamps: a freshly stamped record whose ingest is close to the frame's
// reference stamp costs a short varint, not nine bytes of unix nanos.
func TestJourneyDeltaCoding(t *testing.T) {
	now := int64(1_700_000_000_000_000_000)
	fresh := Msg{Kind: JobMove, From: 1, Seq: 2, SentNS: now, Jobs: []JobRef{
		{Origin: 1, ID: 7, IngestNS: now - 50_000}}} // ingested 50 µs ago
	bare := fresh
	bare.Jobs = []JobRef{{Origin: 1, ID: 7}}
	bare.SentNS = 0
	// The frame-level stamp costs its full width once; the per-record
	// delta (50 µs → 3-byte zigzag varint) plus two zero bytes must stay
	// well under a second full timestamp.
	perRec := len(AppendMsg(nil, fresh)) - len(AppendMsg(nil, bare)) - (uvarintLen(zig(now)) - 1)
	if perRec > 5 {
		t.Fatalf("freshly stamped record costs %d bytes over unstamped, want ≤5 (delta coding broken)", perRec)
	}
}

func TestReadFrameRejectsOversizedAndTruncated(t *testing.T) {
	// Length prefix claiming a payload beyond MaxPayload must fail
	// before the payload is read.
	big := []byte{0xff, 0xff, 0x03} // uvarint 65535
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(big))); err == nil ||
		!strings.Contains(err.Error(), "exceeds max") {
		t.Fatalf("oversized frame accepted: %v", err)
	}
	// Truncated payload: frame announces 10 bytes, stream has 3.
	trunc := append([]byte{10}, 1, 2, 3)
	if _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(trunc))); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestKindString(t *testing.T) {
	for k := FreezeReq; k <= kindMax; k++ {
		if s := k.String(); strings.HasPrefix(s, "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if s := Kind(77).String(); s != "Kind(77)" {
		t.Fatalf("unknown kind prints %q", s)
	}
}

// transportPair exercises the Transport contract shared by both
// implementations: everything sent arrives intact, and the byte
// counters agree between sender and receiver.
func testTransportExchange(t *testing.T, a, b Transport, aID, bID int, framed bool) {
	t.Helper()
	msgs := sampleMsgs()
	for i, m := range msgs {
		m.From = aID
		m.Seq = uint64(i)
		if err := a.Send(bID, m); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := range msgs {
		select {
		case m := <-b.Inbox():
			if m.From != aID || m.Seq != uint64(i) {
				t.Fatalf("msg %d arrived as %+v", i, m)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("msg %d never arrived", i)
		}
	}
	// Counters must agree (poll: TCP counts on the reader goroutine).
	deadline := time.Now().Add(5 * time.Second)
	for {
		sa, sb := a.Stats(), b.Stats()
		if sa.MsgsSent == int64(len(msgs)) && sb.MsgsRecv == int64(len(msgs)) &&
			sa.BytesSent == sb.BytesRecv && sa.BytesSent > 0 {
			// Framed transports carry at least one prefix byte per message.
			if framed && sa.BytesSent < int64(len(msgs)) {
				t.Fatalf("framed transport sent only %d bytes for %d messages", sa.BytesSent, len(msgs))
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("counters never converged: a=%+v b=%+v", sa, sb)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLoopbackExchange(t *testing.T) {
	net := NewLoopback(2)
	a, b := net.Transport(0), net.Transport(1)
	defer a.Close()
	defer b.Close()
	testTransportExchange(t, a, b, 0, 1, false)
}

func TestLoopbackCloseSemantics(t *testing.T) {
	net := NewLoopback(2)
	a, b := net.Transport(0), net.Transport(1)
	b.Close()
	// Send to a closed peer: dropped, not an error (TCP-like).
	if err := a.Send(1, Msg{Kind: Quit, From: 0}); err != nil {
		t.Fatalf("send to closed peer errored: %v", err)
	}
	if s := a.Stats(); s.SendErrors == 0 {
		t.Fatal("drop to closed peer not counted")
	}
	a.Close()
	if err := a.Send(1, Msg{Kind: Quit, From: 0}); err == nil {
		t.Fatal("send from closed endpoint accepted")
	}
	if err := a.Send(9, Msg{Kind: Quit}); err == nil {
		t.Fatal("send to unknown node accepted")
	}
}

// TestPerPeerSendErrorAttribution: dropped sends are charged to the
// peer whose link dropped them, not smeared across the transport. The
// cluster's timeout-attribution logic reads PeerStats to distinguish
// "my protocol partner's link failed" from "some unrelated link
// failed"; a transport-wide-only count would misattribute unrelated
// trouble as link_down (see cluster.TestTimeoutAttributionPartnerLink).
func TestPerPeerSendErrorAttribution(t *testing.T) {
	net := NewLoopback(3)
	a, b, c := net.Transport(0), net.Transport(1), net.Transport(2)
	defer a.Close()
	defer c.Close()

	// A talks to the live peer 2, then to the dead peer 1, twice.
	b.Close()
	if err := a.Send(2, Msg{Kind: FreezeReq, From: 0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := a.Send(1, Msg{Kind: FreezeReq, From: 0}); err != nil {
			t.Fatalf("drop to closed peer surfaced as error: %v", err)
		}
	}

	ps, ok := Transport(a).(PeerStatser)
	if !ok {
		t.Fatal("loopback endpoint lost its PeerStatser view")
	}
	if got := ps.PeerStats(1).SendErrors; got != 2 {
		t.Fatalf("dead peer 1 charged %d send errors, want 2", got)
	}
	if got := ps.PeerStats(2).SendErrors; got != 0 {
		t.Fatalf("live peer 2 charged %d send errors, want 0", got)
	}
	if got := a.Stats().SendErrors; got != 2 {
		t.Fatalf("transport-wide send errors %d, want 2", got)
	}
	// Unknown peers read as zero Stats, not a panic.
	if got := ps.PeerStats(99); got != (Stats{}) {
		t.Fatalf("unknown peer stats = %+v, want zero", got)
	}

	// The per-peer series is published to the registry under the same
	// attribution.
	reg := obs.NewRegistry()
	a.Register(reg)
	if got := reg.Counter(`wire_peer_send_errors_total{node="0",peer="1"}`).Value(); got != 2 {
		t.Fatalf("registry per-peer send-error metric = %d, want 2", got)
	}
}

func TestTCPExchange(t *testing.T) {
	ts, err := NewLocalCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer ts[0].Close()
	defer ts[1].Close()
	testTransportExchange(t, ts[0], ts[1], 0, 1, true)
	// And the reverse direction over its own connection.
	testTransportExchange(t, ts[1], ts[0], 1, 0, true)
}

func TestTCPDialRetry(t *testing.T) {
	// The peer's listener comes up *after* the first send: the dial
	// must retry until it lands.
	lnA, err := ListenTCP(0, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer lnA.Close()

	// Reserve an address for B, then close it so the port is free but
	// nothing is listening yet.
	tmp, err := ListenTCP(99, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	bAddr := tmp.Addr().String()
	tmp.Close()

	a, err := ListenTCP(0, "127.0.0.1:0", map[int]string{1: bAddr})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(1, Msg{Kind: FreezeReq, From: 0, Seq: 5}); err != nil {
		t.Fatal(err)
	}

	time.Sleep(50 * time.Millisecond) // let the dial fail at least once
	b, err := ListenTCP(1, bAddr, map[int]string{0: lnA.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	select {
	case m := <-b.Inbox():
		if m.Kind != FreezeReq || m.Seq != 5 {
			t.Fatalf("got %+v", m)
		}
	case <-time.After(dialDeadline):
		t.Fatal("message never arrived after late listener start")
	}
}

func TestTCPSendValidation(t *testing.T) {
	tp, err := ListenTCP(0, "127.0.0.1:0", map[int]string{1: "127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Send(0, Msg{Kind: Quit}); err == nil {
		t.Fatal("self-send accepted")
	}
	if err := tp.Send(7, Msg{Kind: Quit}); err == nil {
		t.Fatal("send to unlisted peer accepted")
	}
	tp.Close()
	if err := tp.Send(1, Msg{Kind: Quit}); err == nil {
		t.Fatal("send on closed transport accepted")
	}
	// Close is idempotent.
	if err := tp.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestUvarintLen(t *testing.T) {
	for _, tc := range []struct {
		v uint64
		n int
	}{{0, 1}, {127, 1}, {128, 2}, {16383, 2}, {16384, 3}} {
		if got := uvarintLen(tc.v); got != tc.n {
			t.Errorf("uvarintLen(%d) = %d, want %d", tc.v, got, tc.n)
		}
	}
}

func ExampleAppendFrame() {
	frame := AppendFrame(nil, Msg{Kind: Transfer, From: 2, Seq: 1, Amount: -3})
	m, n, _ := ReadFrame(bufio.NewReader(bytes.NewReader(frame)))
	fmt.Println(m.Kind, m.Amount, n == len(frame))
	// Output: Transfer -3 true
}
