package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Client codec: the frames exchanged between a job-submitting client
// and a node's serving front-end (internal/serve). It shares the
// version byte and varint discipline with the cluster codec but is a
// separate kind space — client connections and cluster links never mix
// on one socket, so the two families cannot collide.
//
//	frame   := uvarint(len(payload)) payload
//	payload := version(1B) kind(1B) uvarint(job) extras
//
// where job is the client's own tag for the submission (echoed on every
// reply about it) and extras depend on the kind:
//
//	CSubmit    uvarint(units)                      service demand in unit packets
//	CAccepted  zigzag(load)                        accepting server's in-flight unit count
//	CDone      zigzag(submitNS) zigzag(doneNS)     server-clock unix-nano stamps
//
// The decoder is strict like DecodeMsg: known version and kind, minimal
// varints, no trailing bytes.

// CKind discriminates client-protocol messages.
type CKind uint8

// The client protocol: a client submits a job (CSubmit) with its
// service demand in unit packets; the serving node acknowledges with
// CAccepted carrying the server's post-accept in-flight unit count (a
// two-choice client could use it as a signal); and when the last of the job's units has been
// consumed — on any node, after any number of balancing migrations —
// the accepting node streams back CDone with both server-side
// timestamps, so the client can compute the server-observed sojourn
// without trusting clock sync.
const (
	CSubmit CKind = 1 + iota
	CAccepted
	CDone
)

const cKindMax = CDone

var cKindNames = [...]string{
	CSubmit:   "CSubmit",
	CAccepted: "CAccepted",
	CDone:     "CDone",
}

func (k CKind) String() string {
	if k >= 1 && k <= cKindMax {
		return cKindNames[k]
	}
	return fmt.Sprintf("CKind(%d)", uint8(k))
}

func (k CKind) valid() bool { return k >= 1 && k <= cKindMax }

// MaxClientPayload caps client payloads. Every client frame is a few
// varints; anything larger is a framing error.
const MaxClientPayload = 64

// CMsg is one client-protocol message. Which fields are meaningful
// depends on Kind; fields a kind does not carry are not encoded and
// decode as zero.
type CMsg struct {
	Kind     CKind
	Job      uint64 // client's tag for the submission, echoed on replies
	Units    int    // CSubmit: service demand in unit packets
	Load     int    // CAccepted: accepting server's in-flight units after accept
	SubmitNS int64  // CDone: server clock at ingest (unix nanoseconds)
	DoneNS   int64  // CDone: server clock at last-unit completion
}

// AppendCMsg appends m's encoded payload (no frame prefix) to buf.
func AppendCMsg(buf []byte, m CMsg) []byte {
	buf = append(buf, Version, byte(m.Kind))
	buf = binary.AppendUvarint(buf, m.Job)
	switch m.Kind {
	case CSubmit:
		buf = binary.AppendUvarint(buf, uint64(m.Units))
	case CAccepted:
		buf = binary.AppendUvarint(buf, zig(int64(m.Load)))
	case CDone:
		buf = binary.AppendUvarint(buf, zig(m.SubmitNS))
		buf = binary.AppendUvarint(buf, zig(m.DoneNS))
	}
	return buf
}

// AppendCFrame appends m as a complete frame (length prefix + payload).
func AppendCFrame(buf []byte, m CMsg) []byte {
	var scratch [MaxClientPayload]byte
	p := AppendCMsg(scratch[:0], m)
	buf = binary.AppendUvarint(buf, uint64(len(p)))
	return append(buf, p...)
}

// DecodeCMsg parses one client payload, with the same strictness as
// DecodeMsg: known version and kind, minimal varints, no trailing bytes.
func DecodeCMsg(p []byte) (CMsg, error) {
	var m CMsg
	if len(p) > MaxClientPayload {
		return m, fmt.Errorf("wire: client payload %d bytes exceeds max %d", len(p), MaxClientPayload)
	}
	if len(p) < 2 {
		return m, fmt.Errorf("wire: client payload truncated (%d bytes)", len(p))
	}
	if p[0] != Version {
		return m, fmt.Errorf("wire: unknown client version %d", p[0])
	}
	m.Kind = CKind(p[1])
	if !m.Kind.valid() {
		return m, fmt.Errorf("wire: unknown client kind %d", p[1])
	}
	rest := p[2:]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("wire: truncated varint in %v payload", m.Kind)
		}
		if n != uvarintLen(v) {
			return 0, fmt.Errorf("wire: non-minimal varint in %v payload", m.Kind)
		}
		rest = rest[n:]
		return v, nil
	}
	var err error
	if m.Job, err = next(); err != nil {
		return m, err
	}
	var v uint64
	switch m.Kind {
	case CSubmit:
		if v, err = next(); err != nil {
			return m, err
		}
		m.Units = int(v)
	case CAccepted:
		if v, err = next(); err != nil {
			return m, err
		}
		m.Load = int(unzig(v))
	case CDone:
		if v, err = next(); err != nil {
			return m, err
		}
		m.SubmitNS = unzig(v)
		if v, err = next(); err != nil {
			return m, err
		}
		m.DoneNS = unzig(v)
	}
	if len(rest) != 0 {
		return m, fmt.Errorf("wire: %d trailing bytes after %v payload", len(rest), m.Kind)
	}
	return m, nil
}

// ReadCFrame reads one client frame from br and decodes its payload.
// Like ReadFrame it returns the total frame bytes consumed; the size
// prefix is validated before any allocation.
func ReadCFrame(br *bufio.Reader) (CMsg, int, error) {
	size, err := binary.ReadUvarint(br)
	if err != nil {
		return CMsg{}, 0, err
	}
	if size > MaxClientPayload {
		return CMsg{}, 0, fmt.Errorf("wire: client frame size %d exceeds max %d", size, MaxClientPayload)
	}
	p := make([]byte, size)
	if _, err := io.ReadFull(br, p); err != nil {
		return CMsg{}, 0, fmt.Errorf("wire: short client frame: %w", err)
	}
	m, err := DecodeCMsg(p)
	if err != nil {
		return CMsg{}, 0, err
	}
	return m, uvarintLen(size) + int(size), nil
}
