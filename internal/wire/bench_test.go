package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// The bench-wire suite (make bench-wire, results/BENCH_wire.json)
// measures what the v2 op field costs on the codec hot path: encode and
// decode of a representative protocol message mix, v2 against the
// legacy v1 layout, plus the full framed read path.

// benchMsgs is the protocol mix of a balancing operation: the initiator
// round plus shutdown traffic. Op = 0 keeps the byte layout v1-shaped
// so v1 and v2 benches move the same information.
var benchMsgs = []Msg{
	{Kind: FreezeReq, From: 3, Seq: 17},
	{Kind: FreezeAck, From: 9, Seq: 17, Load: 128},
	{Kind: Transfer, From: 3, Seq: 17, Amount: -42},
	{Kind: TransferAck, From: 9, Seq: 17},
	{Kind: Release, From: 3, Seq: 18},
	{Kind: Bye, From: 9, Load: 64, Gen: 100000, Con: 99936},
}

func BenchmarkWireEncodeV2(b *testing.B) {
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := benchMsgs[i%len(benchMsgs)]
		m.Op = 0xdeadbeef // typical in-flight op id
		buf = AppendMsg(buf[:0], m)
	}
	_ = buf
}

// BenchmarkWireEncodeV2NoOp is the v1-shaped case: no operation in
// flight (Op = 0), where v2 must cost exactly one extra byte.
func BenchmarkWireEncodeV2NoOp(b *testing.B) {
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendMsg(buf[:0], benchMsgs[i%len(benchMsgs)])
	}
	_ = buf
}

func BenchmarkWireEncodeV1(b *testing.B) {
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = appendMsgV1(buf[:0], benchMsgs[i%len(benchMsgs)])
	}
	_ = buf
}

func benchPayloads(encode func([]byte, Msg) []byte) [][]byte {
	out := make([][]byte, len(benchMsgs))
	for i, m := range benchMsgs {
		out[i] = encode(nil, m)
	}
	return out
}

func BenchmarkWireDecodeV2(b *testing.B) {
	ps := benchPayloads(AppendMsg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMsg(ps[i%len(ps)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeV1(b *testing.B) {
	ps := benchPayloads(appendMsgV1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMsg(ps[i%len(ps)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireReadFrame is the inbound hot path as TCP runs it: length
// prefix, payload, strict decode.
func BenchmarkWireReadFrame(b *testing.B) {
	var stream []byte
	for _, m := range benchMsgs {
		stream = AppendFrame(stream, m)
	}
	r := bytes.NewReader(stream)
	br := bufio.NewReader(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%len(benchMsgs) == 0 {
			r.Reset(stream)
			br.Reset(r)
		}
		if _, _, err := ReadFrame(br); err != nil {
			b.Fatal(err)
		}
	}
}
