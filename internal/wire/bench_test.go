package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// The bench-wire suite (make bench-wire, results/BENCH_wire.json)
// measures what each codec revision costs on the hot path: encode and
// decode of a representative protocol message mix under the v3, v2,
// and legacy v1 layouts, the journey-stamped job-record frames v3
// added, plus the full framed read path.

// benchMsgs is the protocol mix of a balancing operation: the initiator
// round plus shutdown traffic. Op = 0 and no journey stamps keep the
// byte layout v1-shaped so all version benches move the same
// information.
var benchMsgs = []Msg{
	{Kind: FreezeReq, From: 3, Seq: 17},
	{Kind: FreezeAck, From: 9, Seq: 17, Load: 128},
	{Kind: Transfer, From: 3, Seq: 17, Amount: -42},
	{Kind: TransferAck, From: 9, Seq: 17},
	{Kind: Release, From: 3, Seq: 18},
	{Kind: Bye, From: 9, Load: 64, Gen: 100000, Con: 99936},
}

// benchJourneyMsg is a journey-stamped JobMove as the serving path
// emits it mid-balancing: a realistic record batch, fresh wall-clock
// stamps, small deltas.
func benchJourneyMsg(records int) Msg {
	now := int64(1_700_000_000_000_000_000)
	m := Msg{Kind: JobMove, From: 3, Seq: 17, Op: 0xdeadbeef, SentNS: now}
	for i := 0; i < records; i++ {
		m.Jobs = append(m.Jobs, JobRef{
			Origin: i % 8, ID: uint64(1000 + i),
			IngestNS:   now - int64(i+1)*300_000,
			Hops:       i % 3,
			TransferNS: int64(i) * 40_000,
		})
	}
	return m
}

func BenchmarkWireEncodeV3(b *testing.B) {
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := benchMsgs[i%len(benchMsgs)]
		m.Op = 0xdeadbeef // typical in-flight op id
		buf = AppendMsg(buf[:0], m)
	}
	_ = buf
}

// BenchmarkWireEncodeV3NoOp is the v1-shaped case: no operation in
// flight (Op = 0), where v3 must cost exactly one extra byte on the
// non-job protocol mix.
func BenchmarkWireEncodeV3NoOp(b *testing.B) {
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendMsg(buf[:0], benchMsgs[i%len(benchMsgs)])
	}
	_ = buf
}

func BenchmarkWireEncodeV2(b *testing.B) {
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = appendMsgV2(buf[:0], benchMsgs[i%len(benchMsgs)])
	}
	_ = buf
}

func BenchmarkWireEncodeV1(b *testing.B) {
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = appendMsgV1(buf[:0], benchMsgs[i%len(benchMsgs)])
	}
	_ = buf
}

// BenchmarkWireEncodeJourney16 is the journey-stamped job path: one
// JobMove carrying 16 freshly stamped records.
func BenchmarkWireEncodeJourney16(b *testing.B) {
	m := benchJourneyMsg(16)
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendMsg(buf[:0], m)
	}
	_ = buf
}

func benchPayloads(encode func([]byte, Msg) []byte) [][]byte {
	out := make([][]byte, len(benchMsgs))
	for i, m := range benchMsgs {
		out[i] = encode(nil, m)
	}
	return out
}

func BenchmarkWireDecodeV3(b *testing.B) {
	ps := benchPayloads(AppendMsg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMsg(ps[i%len(ps)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeV2(b *testing.B) {
	ps := benchPayloads(appendMsgV2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMsg(ps[i%len(ps)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeV1(b *testing.B) {
	ps := benchPayloads(appendMsgV1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMsg(ps[i%len(ps)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeJourney16(b *testing.B) {
	p := AppendMsg(nil, benchJourneyMsg(16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeMsg(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireReadFrame is the inbound hot path as TCP runs it: length
// prefix, payload, strict decode.
func BenchmarkWireReadFrame(b *testing.B) {
	var stream []byte
	for _, m := range benchMsgs {
		stream = AppendFrame(stream, m)
	}
	r := bytes.NewReader(stream)
	br := bufio.NewReader(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%len(benchMsgs) == 0 {
			r.Reset(stream)
			br.Reset(r)
		}
		if _, _, err := ReadFrame(br); err != nil {
			b.Fatal(err)
		}
	}
}
