package wire

import (
	"fmt"
	"sync"

	"lmbalance/internal/obs"
)

// LoopbackNet is the in-memory Transport fabric: n endpoints connected
// by buffered channels inside one process. Every message still round-
// trips through the codec (encode, then decode what was encoded), so
// loopback runs exercise exactly the bytes TCP would carry and the byte
// counters report the same payload volume — only the frame prefix and
// the kernel are missing.
type LoopbackNet struct {
	eps []*LoopEndpoint
}

// NewLoopback builds an n-endpoint in-memory network.
func NewLoopback(n int) *LoopbackNet {
	net := &LoopbackNet{eps: make([]*LoopEndpoint, n)}
	for i := range net.eps {
		net.eps[i] = &LoopEndpoint{
			id:  i,
			net: net,
			// A node can be targeted by every peer's protocol traffic at
			// once; size like netsim's inboxes so senders rarely block.
			inbox: make(chan Msg, 4*n+16),
			done:  make(chan struct{}),
		}
		ids := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				ids = append(ids, j)
			}
		}
		net.eps[i].ctr.initPeers(ids)
	}
	return net
}

// Transport returns endpoint i. Each endpoint is owned by one node.
func (l *LoopbackNet) Transport(i int) *LoopEndpoint { return l.eps[i] }

// N returns the endpoint count.
func (l *LoopbackNet) N() int { return len(l.eps) }

// LoopEndpoint is one node's port on a LoopbackNet.
type LoopEndpoint struct {
	id    int
	net   *LoopbackNet
	inbox chan Msg
	done  chan struct{}
	once  sync.Once

	mu  sync.Mutex // guards enc: Send may be called by tests concurrently
	enc []byte

	ctr counters
}

// Send codec-round-trips m and delivers it to peer `to`'s inbox. A send
// to a closed endpoint is silently dropped (the peer is gone), matching
// TCP semantics; a send from a closed endpoint errors.
func (e *LoopEndpoint) Send(to int, m Msg) error {
	if to < 0 || to >= len(e.net.eps) {
		return fmt.Errorf("wire: loopback send to unknown node %d", to)
	}
	select {
	case <-e.done:
		return fmt.Errorf("wire: loopback endpoint %d closed", e.id)
	default:
	}
	e.mu.Lock()
	e.enc = AppendMsg(e.enc[:0], m)
	dm, err := DecodeMsg(e.enc)
	n := int64(len(e.enc))
	e.mu.Unlock()
	if err != nil {
		// Unreachable unless the codec itself is broken; surfacing it
		// beats silently diverging from what TCP would deliver.
		return fmt.Errorf("wire: loopback codec round-trip: %w", err)
	}
	e.ctr.countSend(to, n)
	peer := e.net.eps[to]
	select {
	case <-peer.done:
		// Peer already closed: drop, like a datagram to a dead host.
		e.ctr.countSendError(to)
		return nil
	default:
	}
	select {
	case peer.inbox <- dm:
		peer.ctr.countRecv(e.id, n)
	case <-peer.done:
		e.ctr.countSendError(to)
	}
	return nil
}

// Inbox is the stream of messages addressed to this endpoint.
func (e *LoopEndpoint) Inbox() <-chan Msg { return e.inbox }

// Stats snapshots the endpoint's counters.
func (e *LoopEndpoint) Stats() Stats { return e.ctr.snapshot() }

// PeerStats snapshots the traffic exchanged with one peer.
func (e *LoopEndpoint) PeerStats(id int) Stats { return e.ctr.peerStats(id) }

// Register attaches the endpoint's live traffic counters to an obs
// registry, labeled with this endpoint's id.
func (e *LoopEndpoint) Register(reg *obs.Registry) { e.ctr.register(reg, e.id) }

// Close marks the endpoint gone; in-flight sends to it are dropped.
func (e *LoopEndpoint) Close() error {
	e.once.Do(func() { close(e.done) })
	return nil
}
