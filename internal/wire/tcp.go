package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"lmbalance/internal/obs"
)

// Dial/retry tuning for the TCP transport. Dial failures are expected
// at startup (peers come up in arbitrary order), so the first attempts
// retry quickly and back off; after dialDeadline the message is dropped
// and counted, mirroring a datagram to a dead host.
const (
	dialRetryStart = 5 * time.Millisecond
	dialRetryMax   = 250 * time.Millisecond
	dialDeadline   = 10 * time.Second
	sendQueueLen   = 256
)

// ErrClosed is returned by Send on a closed transport.
var ErrClosed = errors.New("wire: transport closed")

// TCP is the real-network Transport: one listener for inbound frames
// and one lazily-dialed outbound connection per peer. Connections carry
// frames (see the package comment); the sender's id travels in every
// message, so no connection handshake is needed. A failed dial is
// retried with backoff until dialDeadline; a failed write closes the
// connection and redials once before dropping the message.
type TCP struct {
	id    int
	ln    net.Listener
	addrs map[int]string
	inbox chan Msg
	done  chan struct{}
	once  sync.Once
	wg    sync.WaitGroup
	ctr   counters

	mu    sync.Mutex
	links map[int]*peerLink
	conns map[net.Conn]struct{} // inbound connections, closed on Close
}

// ListenTCP starts a transport for node id listening on addr, with
// peers mapping every other node id to its dialable address.
func ListenTCP(id int, addr string, peers map[int]string) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: node %d listen %s: %w", id, addr, err)
	}
	return NewTCP(id, ln, peers), nil
}

// NewTCP wraps an existing listener (useful when the caller must learn
// the bound address of a ":0" listen before building the peer table).
func NewTCP(id int, ln net.Listener, peers map[int]string) *TCP {
	t := &TCP{
		id:    id,
		ln:    ln,
		addrs: peers,
		inbox: make(chan Msg, 4*len(peers)+64),
		done:  make(chan struct{}),
		links: make(map[int]*peerLink),
		conns: make(map[net.Conn]struct{}),
	}
	ids := make([]int, 0, len(peers))
	for pid := range peers {
		ids = append(ids, pid)
	}
	t.ctr.initPeers(ids)
	t.wg.Add(1)
	go t.acceptLoop()
	return t
}

// Register attaches the transport's live traffic counters — totals,
// send-queue depth and the per-peer byte/msg series — to an obs
// registry, labeled with this node's id. Call once at setup.
func (t *TCP) Register(reg *obs.Registry) { t.ctr.register(reg, t.id) }

// PeerStats snapshots the traffic exchanged with one peer (zero Stats
// for a peer not in the table).
func (t *TCP) PeerStats(id int) Stats { return t.ctr.peerStats(id) }

// Addr returns the listener's address.
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

// Inbox is the stream of messages addressed to this node.
func (t *TCP) Inbox() <-chan Msg { return t.inbox }

// Stats snapshots the traffic counters.
func (t *TCP) Stats() Stats { return t.ctr.snapshot() }

// Send enqueues m for peer `to`. It blocks only when the peer's send
// queue is full (backpressure); a closed transport errors immediately.
func (t *TCP) Send(to int, m Msg) error {
	if to == t.id {
		return fmt.Errorf("wire: node %d sending to itself", t.id)
	}
	addr, ok := t.addrs[to]
	if !ok {
		return fmt.Errorf("wire: node %d has no address for peer %d", t.id, to)
	}
	link, err := t.link(to, addr)
	if err != nil {
		return err
	}
	select {
	case link.q <- m:
		t.ctr.queueDepth.Add(1)
		return nil
	case <-t.done:
		return ErrClosed
	}
}

// Close stops the listener, drains and flushes the outbound queues,
// closes every connection and waits for all goroutines to exit.
func (t *TCP) Close() error {
	t.once.Do(func() {
		close(t.done)
		t.ln.Close()
		t.mu.Lock()
		for c := range t.conns {
			c.Close()
		}
		t.mu.Unlock()
	})
	t.wg.Wait()
	return nil
}

// link returns (starting if needed) the outbound link to a peer.
func (t *TCP) link(to int, addr string) (*peerLink, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.done:
		return nil, ErrClosed
	default:
	}
	l, ok := t.links[to]
	if !ok {
		l = &peerLink{t: t, to: to, addr: addr, q: make(chan Msg, sendQueueLen)}
		t.links[to] = l
		t.wg.Add(1)
		go l.writer()
	}
	return l, nil
}

// acceptLoop admits inbound connections and spawns one reader each.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		select {
		case <-t.done:
			t.mu.Unlock()
			c.Close()
			return
		default:
		}
		t.conns[c] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

// readLoop decodes frames off one inbound connection into the inbox.
func (t *TCP) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer func() {
		c.Close()
		t.mu.Lock()
		delete(t.conns, c)
		t.mu.Unlock()
	}()
	br := bufio.NewReader(c)
	for {
		m, n, err := ReadFrame(br)
		if err != nil {
			return // EOF on peer close, or a framing error: drop the conn
		}
		t.ctr.countRecv(m.From, int64(n))
		select {
		case t.inbox <- m:
		case <-t.done:
			return
		}
	}
}

// ReadFrame reads one complete frame from br and returns the decoded
// message and the number of wire bytes consumed. Length prefixes above
// MaxPayload are rejected before any payload is read.
func ReadFrame(br *bufio.Reader) (Msg, int, error) {
	var m Msg
	size, err := binary.ReadUvarint(br)
	if err != nil {
		return m, 0, err
	}
	if size > MaxPayload {
		return m, 0, fmt.Errorf("wire: frame length %d exceeds max payload %d", size, MaxPayload)
	}
	prefixLen := uvarintLen(size)
	buf := make([]byte, size)
	if _, err := io.ReadFull(br, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return m, prefixLen, fmt.Errorf("wire: truncated frame: %w", err)
	}
	m, err = DecodeMsg(buf)
	return m, prefixLen + int(size), err
}

// peerLink is one outbound connection with its queue and writer.
type peerLink struct {
	t    *TCP
	to   int
	addr string
	q    chan Msg

	conn net.Conn // writer-goroutine private
	enc  []byte
}

// writer drains the queue onto the connection, dialing on demand. On
// shutdown it flushes whatever is still queued — the Bye message of the
// shutdown protocol must reach the coordinator — then closes.
func (l *peerLink) writer() {
	defer l.t.wg.Done()
	defer func() {
		if l.conn != nil {
			l.conn.Close()
		}
	}()
	for {
		select {
		case m := <-l.q:
			l.t.ctr.queueDepth.Add(-1)
			l.write(m)
		case <-l.t.done:
			for {
				select {
				case m := <-l.q:
					l.t.ctr.queueDepth.Add(-1)
					l.write(m)
				default:
					return
				}
			}
		}
	}
}

// write frames and sends one message: dial if disconnected, and on a
// write failure redial once and retry before dropping.
func (l *peerLink) write(m Msg) {
	for attempt := 0; attempt < 2; attempt++ {
		if l.conn == nil {
			if !l.dial() {
				l.t.ctr.countSendError(l.to)
				return
			}
		}
		l.enc = AppendFrame(l.enc[:0], m)
		if _, err := l.conn.Write(l.enc); err == nil {
			l.t.ctr.countSend(l.to, int64(len(l.enc)))
			return
		}
		l.conn.Close()
		l.conn = nil
		l.t.ctr.redials.Add(1)
	}
	l.t.ctr.countSendError(l.to)
}

// dial connects to the peer, retrying with backoff: peers of a starting
// cluster come up in arbitrary order, so early connection refusals are
// normal. Gives up at dialDeadline or transport shutdown... except that
// shutdown still grants one quick final attempt so queued shutdown
// messages can flush.
func (l *peerLink) dial() bool {
	backoff := dialRetryStart
	deadline := time.Now().Add(dialDeadline)
	for {
		c, err := net.Dial("tcp", l.addr)
		if err == nil {
			l.conn = c
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		select {
		case <-l.t.done:
			// One immediate last try, then give up: the peer is either
			// up by now or never will be.
			c, err := net.Dial("tcp", l.addr)
			if err != nil {
				return false
			}
			l.conn = c
			return true
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > dialRetryMax {
			backoff = dialRetryMax
		}
	}
}

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// NewLocalCluster listens on n loopback-TCP ports and wires n fully
// meshed transports over them — the one-command path to a real-socket
// cluster in a single process (cmd/lbnode -spawn, tests, experiments).
func NewLocalCluster(n int) ([]*TCP, error) {
	lns := make([]net.Listener, n)
	addrs := make(map[int]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:i] {
				l.Close()
			}
			return nil, fmt.Errorf("wire: local cluster listen: %w", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	ts := make([]*TCP, n)
	for i := 0; i < n; i++ {
		peers := make(map[int]string, n-1)
		for j, a := range addrs {
			if j != i {
				peers[j] = a
			}
		}
		ts[i] = NewTCP(i, lns[i], peers)
	}
	return ts, nil
}
