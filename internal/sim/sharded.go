// Sharded within-run simulation engine.
//
// The sequential engine (oneRun) parallelizes over runs, which is the
// right shape for the paper's 100-run experiments at n ≤ 4096 but leaves a
// single million-processor run serial. The sharded engine parallelizes
// inside one run: the n processors are partitioned into S contiguous
// shards, each driven through a core.Lane view by its own deterministic
// RNG streams, and every global tick proceeds in phases:
//
//  1. Step phase (parallel over shards). Each shard shuffles its local
//     processor order and steps its processors: workload action draws,
//     local generates/consumes, local borrow decisions. Balancing
//     conditions are not acted on; they are appended to the shard's
//     mailbox (trigger initiations and consumes that need settlement).
//  2. Trigger barrier (deterministic). Mailboxes are drained in canonical
//     order — shard-major, shard-local index ascending, never arrival or
//     scheduling order. Each deferred initiation k gets a private RNG
//     stream keyed (Seed, run, tick, k), from which its δ partners are
//     pre-drawn; a greedy list schedule then groups the operations into
//     waves with pairwise-disjoint participant sets. Waves execute in
//     sequence, the operations inside a wave in parallel on any number of
//     workers. Because a balancing operation reads and writes only its
//     δ+1 participants plus caller-owned scratch, and any two conflicting
//     operations land in distinct waves in canonical order, wave execution
//     is state-identical to executing all operations serially in canonical
//     order. Each operation re-checks its factor-f trigger at execution
//     (an earlier operation in the same barrier may have balanced the
//     initiator already), exactly as the serial canonical order would.
//  3. Settlement pass (serial). Deferred consumes — those needing marker
//     settlement, which can cascade into class recovery and further
//     balancing — resolve in canonical order on a per-tick settle stream
//     through the full sequential consume path.
//  4. Statistics. On sampled ticks each shard folds its loads into a
//     stats.LoadPartial (parallel), and the partials merge in a
//     fixed-shape binary tree reduction — no global O(n) scan on a single
//     goroutine, and exact integer arithmetic so the merged min/max/avg/
//     spread equal the sequential scan's.
//
// Determinism: every stream is keyed by (Seed, run, kind, shard|tick|op)
// through rng.Partition, the canonical order is a pure function of shard
// contents, wave execution is equivalent to serial canonical execution,
// and per-worker Metrics fold by integer addition. Results are therefore
// bit-identical for a fixed (Seed, Shards) pair under any Workers value
// and any goroutine schedule — verified by TestShardedWorkerInvariance
// and the race gate. Changing Shards re-keys the per-shard streams and
// yields a different (equally valid) sample path; agreement with the
// sequential engine is statistical, verified by differential test.
package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"lmbalance/internal/core"
	"lmbalance/internal/rng"
	"lmbalance/internal/stats"
	"lmbalance/internal/workload"
)

// defaultWorkers is the worker count when Config.Workers is 0.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// shardState is one shard's driving state: its Lane view, its private
// streams, its iteration order, and its mailbox of deferred operations.
type shardState struct {
	lane     *core.Lane
	orderRNG *rng.RNG // per-tick local order shuffles
	stepRNG  *rng.RNG // workload draws + processor-local balancer choices
	order    []int    // local indices stepped each tick (active subset for Sparse patterns)
	triggers []int    // local indices with a pending factor-f initiation
	settles  []int    // local indices with a consume deferred to settlement
}

// shardedEngine drives one run of the sharded engine.
type shardedEngine struct {
	cfg     Config
	sys     *core.System
	pattern workload.Pattern
	part    rng.Partition
	shards  []shardState
	active  []int // shards with a non-empty step order
	workers int
	delta   int

	// Barrier planning state, reused across ticks.
	ops       []int   // global initiator of op k, canonical order
	planBuf   []int   // partner scratch for the serial planning pass
	opWave    []int32 // wave assigned to op k
	opOrder   []int   // op indices bucketed by wave
	waveStart []int   // opOrder[waveStart[w-1]:waveStart[w]] is wave w
	waveFill  []int
	lastWave  []int32 // per-processor last wave stamp (reset via touched)
	touched   []int

	// Per-worker execution state.
	scratches  []*core.Scratch
	workerMet  []core.Metrics
	partnerBuf [][]int

	// Statistics state.
	partials  []stats.LoadPartial
	reduceBuf []stats.LoadPartial
}

// shardedOneRun executes one run on the sharded engine.
func shardedOneRun(cfg Config, run int) runResult {
	stride := cfg.statsStride()
	out := runResult{
		avg:       stats.NewSeriesStride(cfg.Steps, stride),
		min:       stats.NewSeriesStride(cfg.Steps, stride),
		max:       stats.NewSeriesStride(cfg.Steps, stride),
		spread:    stats.NewSeriesStride(cfg.Steps, stride),
		snapshots: make(map[int][]float64, len(cfg.SnapshotAt)),
	}
	// All streams key off (Seed, run) through a Partition: shard s obtains
	// its streams from (kind, s) locally, with no coordination and no
	// dependence on goroutine schedule — the anchor of the worker-count
	// invariance.
	part := rng.NewPartition(rng.Mix64(cfg.Seed, uint64(run)))
	bal, err := cfg.NewBalancer(run, part.Stream(rng.StreamBalancer, 0))
	if err != nil {
		out.err = err
		return out
	}
	sys, ok := bal.(*core.System)
	if !ok {
		out.err = fmt.Errorf("sharded engine requires a *core.System balancer, got %T", bal)
		return out
	}
	if sys.N() != cfg.N {
		out.err = fmt.Errorf("balancer built for %d processors, config says %d", sys.N(), cfg.N)
		return out
	}
	pattern, err := cfg.NewPattern(run, part.Stream(rng.StreamPattern, 0))
	if err != nil {
		out.err = err
		return out
	}

	e := newShardedEngine(cfg, sys, pattern, part)
	snapshotWanted := make(map[int]bool, len(cfg.SnapshotAt))
	for _, t := range cfg.SnapshotAt {
		snapshotWanted[t] = true
	}

	for t := 0; t < cfg.Steps; t++ {
		e.stepPhase(t)
		e.resolveTriggers(t)
		e.resolveSettles(t)
		if out.avg.Sampled(t) {
			p := e.scanLoads()
			out.avg.Add(t, p.Mean())
			out.min.Add(t, float64(p.Min))
			out.max.Add(t, float64(p.Max))
			out.spread.Add(t, float64(p.Max-p.Min))
		}
		if snapshotWanted[t] {
			snap := make([]float64, cfg.N)
			for i := 0; i < cfg.N; i++ {
				snap[i] = float64(sys.Load(i))
			}
			out.snapshots[t] = snap
		}
		if cfg.Observe != nil {
			cfg.Observe(run, t, bal)
		}
	}

	e.absorbMetrics()
	out.metrics = sys.Metrics()
	if err := sys.CheckInvariants(); err != nil {
		out.err = fmt.Errorf("invariant violation after run: %w", err)
		return out
	}
	out.finalLoads = make([]float64, cfg.N)
	for i := 0; i < cfg.N; i++ {
		out.finalLoads[i] = float64(sys.Load(i))
	}
	return out
}

// newShardedEngine partitions the system into cfg.Shards contiguous lanes
// and sets up streams, mailboxes and worker scratch.
func newShardedEngine(cfg Config, sys *core.System, pattern workload.Pattern, part rng.Partition) *shardedEngine {
	n, S := cfg.N, cfg.Shards
	workers := cfg.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	e := &shardedEngine{
		cfg:      cfg,
		sys:      sys,
		pattern:  pattern,
		part:     part,
		shards:   make([]shardState, S),
		workers:  workers,
		delta:    sys.Params().Delta,
		lastWave: make([]int32, n),
		partials: make([]stats.LoadPartial, S),
	}
	// Sparse patterns confine activity to a fixed processor set: only
	// those processors are stepped, and shards owning none are skipped
	// entirely. Idle processors draw no RNG state under the Sparse
	// contract, so the restriction leaves every stream untouched.
	var activeProcs []int
	if sp, ok := pattern.(workload.Sparse); ok {
		activeProcs = sp.ActiveProcs()
	}
	for s := 0; s < S; s++ {
		lo, hi := s*n/S, (s+1)*n/S
		sh := &e.shards[s]
		sh.lane = sys.NewLane(lo, hi)
		sh.orderRNG = part.Stream(rng.StreamOrder, uint64(s))
		sh.stepRNG = part.Stream(rng.StreamStep, uint64(s))
		if activeProcs == nil {
			sh.order = make([]int, hi-lo)
			for i := range sh.order {
				sh.order[i] = i
			}
		} else {
			for _, p := range activeProcs {
				if p >= lo && p < hi {
					sh.order = append(sh.order, p-lo)
				}
			}
		}
		if len(sh.order) > 0 {
			e.active = append(e.active, s)
		}
	}
	for w := 0; w < workers; w++ {
		e.scratches = append(e.scratches, sys.NewScratch())
		e.partnerBuf = append(e.partnerBuf, make([]int, 0, e.delta))
	}
	e.workerMet = make([]core.Metrics, workers)
	return e
}

// parallelFor runs fn(worker, i) for i in [0, n) across the engine's
// workers, pulling items from a shared atomic counter, and returns when
// all items are done. With one worker (or one item) it runs inline. The
// item→worker assignment is schedule-dependent; callers must ensure items
// are independent and per-worker state folds commutatively.
func (e *shardedEngine) parallelFor(n int, fn func(worker, i int)) {
	if n == 0 {
		return
	}
	w := e.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(k)
	}
	wg.Wait()
}

// stepPhase drives every active shard through tick t. Shards touch only
// their own lane, streams and mailboxes, so the phase is race-free for
// any worker assignment.
func (e *shardedEngine) stepPhase(t int) {
	e.parallelFor(len(e.active), func(_, k int) {
		sh := &e.shards[e.active[k]]
		if len(sh.order) > 1 {
			// Local order shuffle, same rationale as the sequential
			// engine's global shuffle (no systematic early-index bias).
			sh.orderRNG.ShuffleInts(sh.order)
		}
		for _, li := range sh.order {
			switch e.pattern.Step(sh.lane.Global(li), t, sh.stepRNG) {
			case workload.Generate:
				if sh.lane.Generate(li, sh.stepRNG) {
					sh.triggers = append(sh.triggers, li)
				}
			case workload.Consume:
				e.consumeLocal(sh, li)
			case workload.GenerateAndConsume:
				if sh.lane.Generate(li, sh.stepRNG) {
					sh.triggers = append(sh.triggers, li)
				}
				e.consumeLocal(sh, li)
			}
		}
	})
}

func (e *shardedEngine) consumeLocal(sh *shardState, li int) {
	_, trigger, settle := sh.lane.Consume(li, sh.stepRNG)
	if trigger {
		sh.triggers = append(sh.triggers, li)
	}
	if settle {
		sh.settles = append(sh.settles, li)
	}
}

// resolveTriggers drains the trigger mailboxes in canonical order, plans
// the conflict-free waves, and executes them.
func (e *shardedEngine) resolveTriggers(t int) {
	e.ops = e.ops[:0]
	for s := range e.shards {
		sh := &e.shards[s]
		if len(sh.triggers) == 0 {
			continue
		}
		// Canonical initiator order: (shard, local index), independent of
		// the shuffled arrival order. A processor that triggered on both
		// its generate and its consume appears twice; the execution-time
		// re-check makes the duplicate a no-op when the first operation
		// already balanced it.
		sort.Ints(sh.triggers)
		for _, li := range sh.triggers {
			e.ops = append(e.ops, sh.lane.Global(li))
		}
		sh.triggers = sh.triggers[:0]
	}
	K := len(e.ops)
	if K == 0 {
		return
	}
	maxWave := e.planWaves(t, K)
	e.bucketByWave(K, maxWave)
	for w := 1; w <= maxWave; w++ {
		waveOps := e.opOrder[e.waveStart[w-1]:e.waveStart[w]]
		e.parallelFor(len(waveOps), func(worker, i int) {
			e.execOp(worker, t, waveOps[i])
		})
	}
}

// planWaves pre-draws every operation's partner set from its private
// stream and assigns operations to waves by greedy list scheduling: an
// operation lands one wave after the latest earlier operation it shares a
// participant with. Within a wave all participant sets are pairwise
// disjoint. The partner values are discarded after planning — execution
// re-derives the same stream and re-draws identical partners — so only a
// single δ-wide scratch is needed. Returns the number of waves.
func (e *shardedEngine) planWaves(t, K int) int {
	if cap(e.opWave) < K {
		e.opWave = make([]int32, K)
	}
	e.opWave = e.opWave[:K]
	maxWave := int32(0)
	for k, init := range e.ops {
		r := e.part.OpStream(uint64(t), uint64(k))
		e.planBuf = e.sys.SelectPartners(init, r, e.planBuf)
		w := e.lastWave[init]
		for _, p := range e.planBuf {
			if e.lastWave[p] > w {
				w = e.lastWave[p]
			}
		}
		w++
		e.stamp(init, w)
		for _, p := range e.planBuf {
			e.stamp(p, w)
		}
		e.opWave[k] = w
		if w > maxWave {
			maxWave = w
		}
	}
	for _, p := range e.touched {
		e.lastWave[p] = 0
	}
	e.touched = e.touched[:0]
	return int(maxWave)
}

func (e *shardedEngine) stamp(p int, w int32) {
	if e.lastWave[p] == 0 {
		e.touched = append(e.touched, p)
	}
	e.lastWave[p] = w
}

// bucketByWave counting-sorts the op indices by wave, stable in canonical
// order, into e.opOrder/e.waveStart.
func (e *shardedEngine) bucketByWave(K, maxWave int) {
	if cap(e.waveStart) < maxWave+1 {
		e.waveStart = make([]int, maxWave+1)
	}
	e.waveStart = e.waveStart[:maxWave+1]
	for i := range e.waveStart {
		e.waveStart[i] = 0
	}
	for _, w := range e.opWave {
		e.waveStart[w]++
	}
	// waveStart[w] becomes the start offset of wave w+1's bucket.
	sum := 0
	for w := 1; w <= maxWave; w++ {
		c := e.waveStart[w]
		e.waveStart[w-1] = sum
		sum += c
	}
	e.waveStart[maxWave] = sum
	if cap(e.opOrder) < K {
		e.opOrder = make([]int, K)
	}
	e.opOrder = e.opOrder[:K]
	e.waveFill = append(e.waveFill[:0], e.waveStart[:maxWave]...)
	for k := 0; k < K; k++ {
		w := int(e.opWave[k])
		e.opOrder[e.waveFill[w-1]] = k
		e.waveFill[w-1]++
	}
}

// execOp executes deferred operation k of tick t on the given worker. The
// operation's stream is re-derived from its (tick, rank) key and the
// partners re-drawn from it — identical values to the planning pass — so
// the redistribution continues the same private stream.
func (e *shardedEngine) execOp(worker, t, k int) {
	init := e.ops[k]
	// Re-check the factor-f condition: an earlier wave (or an earlier
	// operation in canonical order that shared this initiator) may have
	// balanced init already. Operations in the same wave cannot affect
	// init, so this check reads exactly the state the serial canonical
	// execution would.
	if !e.sys.TriggerPending(init) {
		return
	}
	r := e.part.OpStream(uint64(t), uint64(k))
	buf := e.sys.SelectPartners(init, r, e.partnerBuf[worker][:0])
	e.partnerBuf[worker] = buf
	e.sys.BalanceWithPartners(init, buf, r, e.scratches[worker], &e.workerMet[worker])
}

// resolveSettles completes the consumes deferred for marker settlement,
// serially in canonical order on the tick's settle stream. Settlement can
// cascade (class recovery, further balancing operations on arbitrary
// processors), which is why it stays serial.
func (e *shardedEngine) resolveSettles(t int) {
	var r *rng.RNG
	for s := range e.shards {
		sh := &e.shards[s]
		if len(sh.settles) == 0 {
			continue
		}
		sort.Ints(sh.settles)
		if r == nil {
			r = e.part.Stream(rng.StreamSettle, uint64(t))
		}
		for _, li := range sh.settles {
			e.sys.SettleConsume(sh.lane.Global(li), r)
		}
		sh.settles = sh.settles[:0]
	}
}

// scanLoads computes the tick's load statistics: per-shard LoadPartials in
// parallel, merged by the fixed-shape tree reduction. All shards are
// scanned (load migrates into inactive shards through balancing).
func (e *shardedEngine) scanLoads() stats.LoadPartial {
	e.parallelFor(len(e.shards), func(_, s int) {
		p := &e.partials[s]
		*p = stats.LoadPartial{}
		p.ObserveSlice(e.shards[s].lane.Loads())
	})
	e.reduceBuf = append(e.reduceBuf[:0], e.partials...)
	return stats.ReduceLoadPartials(e.reduceBuf)
}

// absorbMetrics folds every lane's and worker's counters into the System
// so Metrics and CheckInvariants see run totals.
func (e *shardedEngine) absorbMetrics() {
	for s := range e.shards {
		e.sys.AbsorbMetrics(e.shards[s].lane.TakeMetrics())
	}
	for w := range e.workerMet {
		e.sys.AbsorbMetrics(e.workerMet[w])
		e.workerMet[w] = core.Metrics{}
	}
}
