package sim

import (
	"math"
	"runtime"
	"testing"

	"lmbalance/internal/core"
	"lmbalance/internal/rng"
	"lmbalance/internal/topology"
	"lmbalance/internal/workload"
)

// shardedTestConfig is the uniform-workload config the sharded tests run:
// busy enough that triggers, borrows and settlements all occur.
func shardedTestConfig(n, steps, runs, shards int, seed uint64) Config {
	return Config{
		N:     n,
		Steps: steps,
		Seed:  seed,
		Runs:  runs,
		NewBalancer: func(run int, r *rng.RNG) (Balancer, error) {
			return core.NewSystem(n, core.DefaultParams(), topology.NewGlobal(n), r)
		},
		NewPattern: func(run int, r *rng.RNG) (workload.Pattern, error) {
			return workload.Uniform{GenP: 0.5, ConP: 0.4}, nil
		},
		Shards: shards,
	}
}

// resultsEqual compares two Results bit-exactly on everything the engine
// reports.
func resultsEqual(t *testing.T, a, b *Result) {
	t.Helper()
	if a.CoreMetrics != b.CoreMetrics {
		t.Fatalf("metrics differ:\n  a: %+v\n  b: %+v", a.CoreMetrics, b.CoreMetrics)
	}
	if a.FinalLoadVD != b.FinalLoadVD {
		t.Fatalf("final VD differs: %v vs %v", a.FinalLoadVD, b.FinalLoadVD)
	}
	pairs := []struct {
		name string
		x, y []float64
	}{
		{"avg means", a.Avg.Means(), b.Avg.Means()},
		{"min mins", a.Min.Mins(), b.Min.Mins()},
		{"max maxs", a.Max.Maxs(), b.Max.Maxs()},
		{"spread means", a.Spread.Means(), b.Spread.Means()},
	}
	for _, p := range pairs {
		if len(p.x) != len(p.y) {
			t.Fatalf("%s: length %d vs %d", p.name, len(p.x), len(p.y))
		}
		for i := range p.x {
			if p.x[i] != p.y[i] {
				t.Fatalf("%s: slot %d: %v vs %v", p.name, i, p.x[i], p.y[i])
			}
		}
	}
	for at, accs := range a.Snapshots {
		baccs, ok := b.Snapshots[at]
		if !ok {
			t.Fatalf("snapshot %d missing in b", at)
		}
		for i := range accs {
			if accs[i].Mean() != baccs[i].Mean() {
				t.Fatalf("snapshot %d proc %d: %v vs %v", at, i, accs[i].Mean(), baccs[i].Mean())
			}
		}
	}
}

// TestShardedWorkerInvariance is the engine's central determinism claim:
// for a fixed (Seed, Shards) pair, the worker count changes only speed,
// never a single bit of the results.
func TestShardedWorkerInvariance(t *testing.T) {
	workerCounts := []int{1, 2, 4, runtime.GOMAXPROCS(0) + 1}
	var ref *Result
	for _, w := range workerCounts {
		cfg := shardedTestConfig(192, 150, 2, 4, 99)
		cfg.Workers = w
		cfg.SnapshotAt = []int{149}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		resultsEqual(t, ref, res)
	}
}

// TestShardedSeedDeterminism re-runs the same (Seed, Shards) twice and a
// different seed once: identical and different results respectively.
func TestShardedSeedDeterminism(t *testing.T) {
	run := func(seed uint64) *Result {
		cfg := shardedTestConfig(128, 120, 1, 4, seed)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(7), run(7)
	resultsEqual(t, a, b)
	c := run(8)
	if a.CoreMetrics == c.CoreMetrics {
		t.Fatal("different seeds produced identical metrics")
	}
}

// TestShardedMatchesSequential is the differential test against the
// sequential engine. The two engines walk different (equally valid) sample
// paths, so the comparison is statistical: aggregate observables over
// enough runs must agree within tolerance.
func TestShardedMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential test needs multiple runs")
	}
	const (
		n, steps, runs = 256, 300, 12
		seed           = 12345
	)
	seq := shardedTestConfig(n, steps, runs, 0, seed)
	shr := shardedTestConfig(n, steps, runs, 8, seed)
	seqRes, err := Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	shrRes, err := Run(shr)
	if err != nil {
		t.Fatal(err)
	}
	// Mean load trajectory is workload-driven and must agree tightly.
	relDiff := func(a, b float64) float64 {
		if a == 0 && b == 0 {
			return 0
		}
		return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
	}
	last := steps - 1
	if d := relDiff(seqRes.Avg.At(last).Mean(), shrRes.Avg.At(last).Mean()); d > 0.10 {
		t.Errorf("final avg load: seq %.3f shard %.3f (rel diff %.3f)",
			seqRes.Avg.At(last).Mean(), shrRes.Avg.At(last).Mean(), d)
	}
	// Balancing quality: mean spread over the second half of the run.
	window := func(r *Result) float64 {
		sum, cnt := 0.0, 0
		for tt := steps / 2; tt < steps; tt++ {
			sum += r.Spread.At(tt).Mean()
			cnt++
		}
		return sum / float64(cnt)
	}
	ws, wh := window(seqRes), window(shrRes)
	if d := relDiff(ws, wh); d > 0.25 {
		t.Errorf("mean spread window: seq %.3f shard %.3f (rel diff %.3f)", ws, wh, d)
	}
	// Activity rates per processor-step.
	rate := func(v int64) float64 { return float64(v) / float64(n*steps*runs) }
	sm, hm := seqRes.CoreMetrics, shrRes.CoreMetrics
	if d := relDiff(rate(sm.Generated), rate(hm.Generated)); d > 0.02 {
		t.Errorf("generate rate: seq %.4f shard %.4f", rate(sm.Generated), rate(hm.Generated))
	}
	if d := relDiff(rate(sm.Consumed), rate(hm.Consumed)); d > 0.05 {
		t.Errorf("consume rate: seq %.4f shard %.4f", rate(sm.Consumed), rate(hm.Consumed))
	}
	if d := relDiff(rate(sm.BalanceOps), rate(hm.BalanceOps)); d > 0.15 {
		t.Errorf("balance-op rate: seq %.4f shard %.4f", rate(sm.BalanceOps), rate(hm.BalanceOps))
	}
}

// TestShardedOneProducer drives the §3 one-producer model through the
// sparse fast path and checks exact packet conservation plus the
// Theorem 2 shape (the generator keeps roughly f/(δ+1−f)·avg more load
// than the rest — here just sanity: its load is positive and bounded).
func TestShardedOneProducer(t *testing.T) {
	const n, steps = 64, 8 * 64
	cfg := Config{
		N:     n,
		Steps: steps,
		Seed:  5,
		Runs:  3,
		NewBalancer: func(run int, r *rng.RNG) (Balancer, error) {
			return core.NewSystem(n, core.DefaultParams(), topology.NewGlobal(n), r)
		},
		NewPattern: func(run int, r *rng.RNG) (workload.Pattern, error) {
			return workload.OneProducer{}, nil
		},
		Shards:     4,
		StatsEvery: steps, // only the final tick is scanned
		SnapshotAt: []int{steps - 1},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Exact conservation: one packet generated per tick, none consumed.
	if got := res.CoreMetrics.Generated; got != int64(steps*cfg.Runs) {
		t.Fatalf("generated %d, want %d", got, steps*cfg.Runs)
	}
	if res.CoreMetrics.Consumed != 0 {
		t.Fatalf("consumed %d, want 0", res.CoreMetrics.Consumed)
	}
	// The final average load per processor is steps/n = 8 exactly.
	if avg := res.Avg.At(steps - 1).Mean(); math.Abs(avg-8) > 1e-9 {
		t.Fatalf("final avg %.4f, want 8", avg)
	}
	// Balancing must have spread load off the generator: max far below
	// the total, min above zero.
	if max := res.Max.At(steps - 1).Mean(); max >= float64(steps)/2 {
		t.Fatalf("final max %.1f: no balancing happened", max)
	}
}

// TestShardedStatsEvery checks the strided statistics path on the
// sequential engine too: stride 1 and stride k agree on sampled steps.
func TestShardedStatsEvery(t *testing.T) {
	base := shardedTestConfig(64, 100, 2, 0, 3)
	strided := base
	strided.StatsEvery = 10
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(strided)
	if err != nil {
		t.Fatal(err)
	}
	if b.Avg.Stride() != 10 || b.Avg.Len() != 100 {
		t.Fatalf("stride %d len %d", b.Avg.Stride(), b.Avg.Len())
	}
	for tt := 0; tt < 100; tt++ {
		if !b.Avg.Sampled(tt) {
			continue
		}
		if got, want := b.Avg.At(tt).Mean(), a.Avg.At(tt).Mean(); got != want {
			t.Fatalf("step %d: strided avg %v, per-step avg %v", tt, got, want)
		}
		if got, want := b.Spread.At(tt).Mean(), a.Spread.At(tt).Mean(); got != want {
			t.Fatalf("step %d: strided spread %v, per-step spread %v", tt, got, want)
		}
	}
}

// TestShardedValidation covers the new Config fields.
func TestShardedValidation(t *testing.T) {
	good := shardedTestConfig(64, 10, 1, 4, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Shards = -1
	if bad.Validate() == nil {
		t.Fatal("Shards=-1 accepted")
	}
	bad = good
	bad.Shards = 65
	if bad.Validate() == nil {
		t.Fatal("Shards>N accepted")
	}
	bad = good
	bad.Workers = -2
	if bad.Validate() == nil {
		t.Fatal("Workers=-2 accepted")
	}
	bad = good
	bad.StatsEvery = -1
	if bad.Validate() == nil {
		t.Fatal("StatsEvery=-1 accepted")
	}
	// Sharded engine refuses non-core balancers at run time.
	nc := good
	nc.NewBalancer = func(run int, r *rng.RNG) (Balancer, error) {
		sys, err := core.NewSystem(nc.N, core.DefaultParams(), topology.NewGlobal(nc.N), r)
		return struct{ Balancer }{sys}, err
	}
	if _, err := Run(nc); err == nil {
		t.Fatal("sharded run with non-core balancer accepted")
	}
}
