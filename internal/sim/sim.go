// Package sim is the discrete-time simulation engine that drives a load
// balancing algorithm under a workload pattern, reproducing the paper's
// timing model (§2/§4): one global clock tick lets every processor
// generate one packet, consume one packet, or idle; balancing operations
// happen inside those actions (event-driven algorithms such as the paper's)
// or at the end of the tick (periodic baselines).
//
// The engine records the per-step observables the paper's figures plot —
// average, minimum and maximum processor load — and aggregates them over
// many independent runs with a parallel worker pool (one goroutine per CPU,
// each with its own deterministic RNG stream split from the master seed).
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"lmbalance/internal/core"
	"lmbalance/internal/rng"
	"lmbalance/internal/stats"
	"lmbalance/internal/topology"
	"lmbalance/internal/workload"
)

// Balancer is what the engine drives: the core algorithm, a baseline, or
// anything else exposing per-processor generate/consume plus load
// introspection. core.System satisfies it directly; baseline algorithms
// add a Tick hook via the optional Ticker interface.
type Balancer interface {
	Name() string
	N() int
	Generate(i int)
	Consume(i int) bool
	Load(i int) int
	Loads(dst []int) []int
}

// Ticker is implemented by balancers that act at end-of-step (periodic
// baselines). The engine calls Tick exactly once per global time step.
type Ticker interface {
	Tick(t int)
}

// Config describes one simulation.
type Config struct {
	// N is the number of processors.
	N int
	// Steps is the number of global time steps.
	Steps int
	// Seed is the master seed; all randomness (workload, algorithm,
	// per-run streams) derives from it.
	Seed uint64
	// Runs is the number of independent repetitions (>= 1).
	Runs int
	// SnapshotAt lists global time steps at which full per-processor load
	// vectors are recorded (for the paper's Fig. 9/10 distribution plots).
	SnapshotAt []int
	// NewBalancer constructs the algorithm under test for one run.
	NewBalancer func(run int, r *rng.RNG) (Balancer, error)
	// NewPattern constructs the workload for one run. Patterns are
	// per-run because the paper redraws the random phase plans each run.
	NewPattern func(run int, r *rng.RNG) (workload.Pattern, error)
	// Observe, if non-nil, is called after every global time step with
	// the run index, the step, and the balancer. Runs execute in
	// parallel, so Observe is called concurrently for different run
	// indices — implementations must partition their state by run. The
	// balancer must not be retained.
	Observe func(run, t int, bal Balancer)
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("sim: N = %d, need >= 2", c.N)
	case c.Steps < 1:
		return fmt.Errorf("sim: Steps = %d, need >= 1", c.Steps)
	case c.Runs < 1:
		return fmt.Errorf("sim: Runs = %d, need >= 1", c.Runs)
	case c.NewBalancer == nil:
		return fmt.Errorf("sim: NewBalancer is nil")
	case c.NewPattern == nil:
		return fmt.Errorf("sim: NewPattern is nil")
	}
	for _, s := range c.SnapshotAt {
		if s < 0 || s >= c.Steps {
			return fmt.Errorf("sim: snapshot step %d outside [0,%d)", s, c.Steps)
		}
	}
	return nil
}

// LMConfig is a convenience constructor for a Config that runs the core
// Lüling–Monien algorithm with the paper's uniform random candidate
// selection under a per-run random phase workload.
func LMConfig(n, steps, runs int, params core.Params, bounds workload.PhaseBounds, seed uint64) Config {
	return Config{
		N:     n,
		Steps: steps,
		Seed:  seed,
		Runs:  runs,
		NewBalancer: func(run int, r *rng.RNG) (Balancer, error) {
			return core.NewSystem(n, params, topology.NewGlobal(n), r)
		},
		NewPattern: func(run int, r *rng.RNG) (workload.Pattern, error) {
			return workload.NewPhases(n, bounds, r)
		},
	}
}

// Result aggregates the observables over all runs.
type Result struct {
	// Avg, Min, Max are per-step accumulators over runs of the average,
	// minimum and maximum processor load at that step — the three curves
	// of the paper's Fig. 7/8.
	Avg, Min, Max *stats.Series
	// Spread is the per-step accumulator of (max−min) processor load.
	Spread *stats.Series
	// Snapshots[t][i] accumulates processor i's load at snapshot step t
	// over runs — mean/min/max per processor, the paper's Fig. 9/10.
	Snapshots map[int][]stats.Accumulator
	// CoreMetrics is the sum of core.Metrics over runs when the balancer
	// is a *core.System (zero otherwise); divide by Runs for Table 1 rows.
	CoreMetrics core.Metrics
	// Runs echoes the number of runs aggregated.
	Runs int
	// FinalLoadVD is the variation density of the final per-processor
	// loads pooled over all runs.
	FinalLoadVD float64

	finalLoads stats.Accumulator
}

// runResult is one run's partial aggregate, merged into Result.
type runResult struct {
	avg, min, max, spread *stats.Series
	snapshots             map[int][]float64
	metrics               core.Metrics
	finalLoads            []float64
	err                   error
}

// Run executes the configured number of independent runs (in parallel) and
// returns the merged result. The aggregation is deterministic for a fixed
// Config: each run's RNG stream depends only on (Seed, run index) and
// accumulator merging is order-independent for the statistics reported.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	results := make([]runResult, cfg.Runs)
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Runs {
		workers = cfg.Runs
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for run := range next {
				results[run] = oneRun(cfg, run)
			}
		}()
	}
	for run := 0; run < cfg.Runs; run++ {
		next <- run
	}
	close(next)
	wg.Wait()

	res := &Result{
		Avg:       stats.NewSeries(cfg.Steps),
		Min:       stats.NewSeries(cfg.Steps),
		Max:       stats.NewSeries(cfg.Steps),
		Spread:    stats.NewSeries(cfg.Steps),
		Snapshots: make(map[int][]stats.Accumulator, len(cfg.SnapshotAt)),
		Runs:      cfg.Runs,
	}
	for _, t := range cfg.SnapshotAt {
		res.Snapshots[t] = make([]stats.Accumulator, cfg.N)
	}
	for run := range results {
		r := &results[run]
		if r.err != nil {
			return nil, fmt.Errorf("sim: run %d: %w", run, r.err)
		}
		res.Avg.Merge(r.avg)
		res.Min.Merge(r.min)
		res.Max.Merge(r.max)
		res.Spread.Merge(r.spread)
		for t, loads := range r.snapshots {
			accs := res.Snapshots[t]
			for i, v := range loads {
				accs[i].Add(v)
			}
		}
		res.CoreMetrics.Add(r.metrics)
		for _, v := range r.finalLoads {
			res.finalLoads.Add(v)
		}
	}
	res.FinalLoadVD = res.finalLoads.VariationDensity()
	return res, nil
}

// oneRun executes a single simulation run.
func oneRun(cfg Config, run int) runResult {
	// Derive independent deterministic streams: one for the workload, one
	// for the algorithm, one for the engine's per-step processor order.
	// The (Seed, run) pair is hashed rather than combined additively:
	// Seed + run*const would make run r+1 of seed S replay run r of seed
	// S+const, silently correlating sweeps whose seeds differ by the
	// stride.
	master := rng.New(rng.Mix64(cfg.Seed, uint64(run)))
	patternRNG := master.Split()
	balancerRNG := master.Split()
	orderRNG := master.Split()

	out := runResult{
		avg:       stats.NewSeries(cfg.Steps),
		min:       stats.NewSeries(cfg.Steps),
		max:       stats.NewSeries(cfg.Steps),
		spread:    stats.NewSeries(cfg.Steps),
		snapshots: make(map[int][]float64, len(cfg.SnapshotAt)),
	}
	bal, err := cfg.NewBalancer(run, balancerRNG)
	if err != nil {
		out.err = err
		return out
	}
	if bal.N() != cfg.N {
		out.err = fmt.Errorf("balancer built for %d processors, config says %d", bal.N(), cfg.N)
		return out
	}
	pattern, err := cfg.NewPattern(run, patternRNG)
	if err != nil {
		out.err = err
		return out
	}
	snapshotWanted := make(map[int]bool, len(cfg.SnapshotAt))
	for _, t := range cfg.SnapshotAt {
		snapshotWanted[t] = true
	}

	order := make([]int, cfg.N)
	for i := range order {
		order[i] = i
	}
	loads := make([]int, 0, cfg.N)
	for t := 0; t < cfg.Steps; t++ {
		// Random processor order per step removes the systematic bias a
		// fixed order would give early processors in balancing decisions.
		orderRNG.ShuffleInts(order)
		for _, i := range order {
			switch pattern.Step(i, t, patternRNG) {
			case workload.Generate:
				bal.Generate(i)
			case workload.Consume:
				bal.Consume(i)
			case workload.GenerateAndConsume:
				bal.Generate(i)
				bal.Consume(i)
			}
		}
		if tk, ok := bal.(Ticker); ok {
			tk.Tick(t)
		}
		loads = bal.Loads(loads)
		lo, hi := stats.MinMaxInts(loads)
		sum := 0
		for _, v := range loads {
			sum += v
		}
		out.avg.Add(t, float64(sum)/float64(cfg.N))
		out.min.Add(t, float64(lo))
		out.max.Add(t, float64(hi))
		out.spread.Add(t, float64(hi-lo))
		if snapshotWanted[t] {
			snap := make([]float64, cfg.N)
			for i, v := range loads {
				snap[i] = float64(v)
			}
			out.snapshots[t] = snap
		}
		if cfg.Observe != nil {
			cfg.Observe(run, t, bal)
		}
	}
	if sys, ok := bal.(*core.System); ok {
		out.metrics = sys.Metrics()
		if err := sys.CheckInvariants(); err != nil {
			out.err = fmt.Errorf("invariant violation after run: %w", err)
			return out
		}
	}
	out.finalLoads = make([]float64, cfg.N)
	for i, v := range loads {
		out.finalLoads[i] = float64(v)
	}
	return out
}
