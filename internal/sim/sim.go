// Package sim is the discrete-time simulation engine that drives a load
// balancing algorithm under a workload pattern, reproducing the paper's
// timing model (§2/§4): one global clock tick lets every processor
// generate one packet, consume one packet, or idle; balancing operations
// happen inside those actions (event-driven algorithms such as the paper's)
// or at the end of the tick (periodic baselines).
//
// The engine records the per-step observables the paper's figures plot —
// average, minimum and maximum processor load — and aggregates them over
// many independent runs with a parallel worker pool (one goroutine per CPU,
// each with its own deterministic RNG stream split from the master seed).
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"lmbalance/internal/core"
	"lmbalance/internal/rng"
	"lmbalance/internal/stats"
	"lmbalance/internal/topology"
	"lmbalance/internal/workload"
)

// Balancer is what the engine drives: the core algorithm, a baseline, or
// anything else exposing per-processor generate/consume plus load
// introspection. core.System satisfies it directly; baseline algorithms
// add a Tick hook via the optional Ticker interface.
type Balancer interface {
	Name() string
	N() int
	Generate(i int)
	Consume(i int) bool
	Load(i int) int
	Loads(dst []int) []int
}

// Ticker is implemented by balancers that act at end-of-step (periodic
// baselines). The engine calls Tick exactly once per global time step.
type Ticker interface {
	Tick(t int)
}

// Config describes one simulation.
type Config struct {
	// N is the number of processors.
	N int
	// Steps is the number of global time steps.
	Steps int
	// Seed is the master seed; all randomness (workload, algorithm,
	// per-run streams) derives from it.
	Seed uint64
	// Runs is the number of independent repetitions (>= 1).
	Runs int
	// SnapshotAt lists global time steps at which full per-processor load
	// vectors are recorded (for the paper's Fig. 9/10 distribution plots).
	SnapshotAt []int
	// NewBalancer constructs the algorithm under test for one run.
	NewBalancer func(run int, r *rng.RNG) (Balancer, error)
	// NewPattern constructs the workload for one run. Patterns are
	// per-run because the paper redraws the random phase plans each run.
	NewPattern func(run int, r *rng.RNG) (workload.Pattern, error)
	// Observe, if non-nil, is called after every global time step with
	// the run index, the step, and the balancer. Runs execute in
	// parallel, so Observe is called concurrently for different run
	// indices — implementations must partition their state by run. The
	// balancer must not be retained.
	Observe func(run, t int, bal Balancer)
	// Shards, when > 0, selects the sharded engine: the N processors are
	// partitioned into Shards contiguous shards driven concurrently
	// within each run, with cross-shard balancing operations resolved at
	// a deterministic per-tick barrier (see sharded.go). Results are
	// bit-deterministic for a fixed (Seed, Shards) pair, for any Workers
	// value. Requires the balancer to be a *core.System. 0 (the default)
	// runs the original sequential per-run engine, bit-identical to
	// earlier releases.
	Shards int
	// Workers bounds the goroutines used for parallelism: the per-run
	// worker pool of the sequential engine, and the shard/operation
	// workers of the sharded engine. 0 means GOMAXPROCS. Workers affects
	// only speed, never results.
	Workers int
	// StatsEvery strides the per-step load statistics: only steps t with
	// (t+1) % StatsEvery == 0 are scanned and recorded (see
	// stats.NewSeriesStride). 0 or 1 records every step. Snapshots and
	// final-load statistics are unaffected. Striding bounds both the
	// memory of the per-step series and the O(N) per-tick scan cost on
	// multi-million-step runs.
	StatsEvery int
}

// statsStride returns the effective series stride.
func (c *Config) statsStride() int {
	if c.StatsEvery < 1 {
		return 1
	}
	return c.StatsEvery
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("sim: N = %d, need >= 2", c.N)
	case c.Steps < 1:
		return fmt.Errorf("sim: Steps = %d, need >= 1", c.Steps)
	case c.Runs < 1:
		return fmt.Errorf("sim: Runs = %d, need >= 1", c.Runs)
	case c.NewBalancer == nil:
		return fmt.Errorf("sim: NewBalancer is nil")
	case c.NewPattern == nil:
		return fmt.Errorf("sim: NewPattern is nil")
	case c.Shards < 0 || c.Shards > c.N:
		return fmt.Errorf("sim: Shards = %d, need 0 <= Shards <= N", c.Shards)
	case c.Workers < 0:
		return fmt.Errorf("sim: Workers = %d, need >= 0", c.Workers)
	case c.StatsEvery < 0:
		return fmt.Errorf("sim: StatsEvery = %d, need >= 0", c.StatsEvery)
	}
	for _, s := range c.SnapshotAt {
		if s < 0 || s >= c.Steps {
			return fmt.Errorf("sim: snapshot step %d outside [0,%d)", s, c.Steps)
		}
	}
	return nil
}

// LMConfig is a convenience constructor for a Config that runs the core
// Lüling–Monien algorithm with the paper's uniform random candidate
// selection under a per-run random phase workload.
func LMConfig(n, steps, runs int, params core.Params, bounds workload.PhaseBounds, seed uint64) Config {
	return Config{
		N:     n,
		Steps: steps,
		Seed:  seed,
		Runs:  runs,
		NewBalancer: func(run int, r *rng.RNG) (Balancer, error) {
			return core.NewSystem(n, params, topology.NewGlobal(n), r)
		},
		NewPattern: func(run int, r *rng.RNG) (workload.Pattern, error) {
			return workload.NewPhases(n, bounds, r)
		},
	}
}

// Result aggregates the observables over all runs.
type Result struct {
	// Avg, Min, Max are per-step accumulators over runs of the average,
	// minimum and maximum processor load at that step — the three curves
	// of the paper's Fig. 7/8.
	Avg, Min, Max *stats.Series
	// Spread is the per-step accumulator of (max−min) processor load.
	Spread *stats.Series
	// Snapshots[t][i] accumulates processor i's load at snapshot step t
	// over runs — mean/min/max per processor, the paper's Fig. 9/10.
	Snapshots map[int][]stats.Accumulator
	// CoreMetrics is the sum of core.Metrics over runs when the balancer
	// is a *core.System (zero otherwise); divide by Runs for Table 1 rows.
	CoreMetrics core.Metrics
	// Runs echoes the number of runs aggregated.
	Runs int
	// FinalLoadVD is the variation density of the final per-processor
	// loads pooled over all runs.
	FinalLoadVD float64

	finalLoads stats.Accumulator
}

// runResult is one run's partial aggregate, merged into Result.
type runResult struct {
	avg, min, max, spread *stats.Series
	snapshots             map[int][]float64
	metrics               core.Metrics
	finalLoads            []float64
	err                   error
}

// Run executes the configured number of independent runs (in parallel) and
// returns the merged result. The aggregation is deterministic for a fixed
// Config: each run's RNG stream depends only on (Seed, run index) and
// accumulator merging is order-independent for the statistics reported.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	results := make([]runResult, cfg.Runs)
	if cfg.Shards > 0 {
		// Sharded engine: parallelism lives inside each run (shard and
		// operation workers), so runs execute sequentially — which also
		// bounds peak memory to one system at the multi-million-processor
		// sizes the sharded engine exists for.
		for run := 0; run < cfg.Runs; run++ {
			results[run] = shardedOneRun(cfg, run)
		}
	} else {
		workers := runtime.GOMAXPROCS(0)
		if cfg.Workers > 0 && cfg.Workers < workers {
			workers = cfg.Workers
		}
		if workers > cfg.Runs {
			workers = cfg.Runs
		}
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for run := range next {
					results[run] = oneRun(cfg, run)
				}
			}()
		}
		for run := 0; run < cfg.Runs; run++ {
			next <- run
		}
		close(next)
		wg.Wait()
	}

	stride := cfg.statsStride()
	res := &Result{
		Avg:       stats.NewSeriesStride(cfg.Steps, stride),
		Min:       stats.NewSeriesStride(cfg.Steps, stride),
		Max:       stats.NewSeriesStride(cfg.Steps, stride),
		Spread:    stats.NewSeriesStride(cfg.Steps, stride),
		Snapshots: make(map[int][]stats.Accumulator, len(cfg.SnapshotAt)),
		Runs:      cfg.Runs,
	}
	for _, t := range cfg.SnapshotAt {
		res.Snapshots[t] = make([]stats.Accumulator, cfg.N)
	}
	for run := range results {
		r := &results[run]
		if r.err != nil {
			return nil, fmt.Errorf("sim: run %d: %w", run, r.err)
		}
		res.Avg.Merge(r.avg)
		res.Min.Merge(r.min)
		res.Max.Merge(r.max)
		res.Spread.Merge(r.spread)
		for t, loads := range r.snapshots {
			accs := res.Snapshots[t]
			for i, v := range loads {
				accs[i].Add(v)
			}
		}
		res.CoreMetrics.Add(r.metrics)
		for _, v := range r.finalLoads {
			res.finalLoads.Add(v)
		}
	}
	res.FinalLoadVD = res.finalLoads.VariationDensity()
	return res, nil
}

// oneRun executes a single simulation run.
func oneRun(cfg Config, run int) runResult {
	// Derive independent deterministic streams: one for the workload, one
	// for the algorithm, one for the engine's per-step processor order.
	// The (Seed, run) pair is hashed rather than combined additively:
	// Seed + run*const would make run r+1 of seed S replay run r of seed
	// S+const, silently correlating sweeps whose seeds differ by the
	// stride.
	master := rng.New(rng.Mix64(cfg.Seed, uint64(run)))
	patternRNG := master.Split()
	balancerRNG := master.Split()
	orderRNG := master.Split()

	stride := cfg.statsStride()
	out := runResult{
		avg:       stats.NewSeriesStride(cfg.Steps, stride),
		min:       stats.NewSeriesStride(cfg.Steps, stride),
		max:       stats.NewSeriesStride(cfg.Steps, stride),
		spread:    stats.NewSeriesStride(cfg.Steps, stride),
		snapshots: make(map[int][]float64, len(cfg.SnapshotAt)),
	}
	bal, err := cfg.NewBalancer(run, balancerRNG)
	if err != nil {
		out.err = err
		return out
	}
	if bal.N() != cfg.N {
		out.err = fmt.Errorf("balancer built for %d processors, config says %d", bal.N(), cfg.N)
		return out
	}
	pattern, err := cfg.NewPattern(run, patternRNG)
	if err != nil {
		out.err = err
		return out
	}
	snapshotWanted := make(map[int]bool, len(cfg.SnapshotAt))
	for _, t := range cfg.SnapshotAt {
		snapshotWanted[t] = true
	}

	order := make([]int, cfg.N)
	for i := range order {
		order[i] = i
	}
	loads := make([]int, 0, cfg.N)
	for t := 0; t < cfg.Steps; t++ {
		// Random processor order per step removes the systematic bias a
		// fixed order would give early processors in balancing decisions.
		orderRNG.ShuffleInts(order)
		for _, i := range order {
			switch pattern.Step(i, t, patternRNG) {
			case workload.Generate:
				bal.Generate(i)
			case workload.Consume:
				bal.Consume(i)
			case workload.GenerateAndConsume:
				bal.Generate(i)
				bal.Consume(i)
			}
		}
		if tk, ok := bal.(Ticker); ok {
			tk.Tick(t)
		}
		if out.avg.Sampled(t) || snapshotWanted[t] {
			loads = bal.Loads(loads)
			if out.avg.Sampled(t) {
				lo, hi := stats.MinMaxInts(loads)
				sum := 0
				for _, v := range loads {
					sum += v
				}
				out.avg.Add(t, float64(sum)/float64(cfg.N))
				out.min.Add(t, float64(lo))
				out.max.Add(t, float64(hi))
				out.spread.Add(t, float64(hi-lo))
			}
			if snapshotWanted[t] {
				snap := make([]float64, cfg.N)
				for i, v := range loads {
					snap[i] = float64(v)
				}
				out.snapshots[t] = snap
			}
		}
		if cfg.Observe != nil {
			cfg.Observe(run, t, bal)
		}
	}
	if sys, ok := bal.(*core.System); ok {
		out.metrics = sys.Metrics()
		if err := sys.CheckInvariants(); err != nil {
			out.err = fmt.Errorf("invariant violation after run: %w", err)
			return out
		}
	}
	loads = bal.Loads(loads)
	out.finalLoads = make([]float64, cfg.N)
	for i, v := range loads {
		out.finalLoads[i] = float64(v)
	}
	return out
}
