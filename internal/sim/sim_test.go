package sim

import (
	"errors"
	"testing"

	"lmbalance/internal/baseline"
	"lmbalance/internal/core"
	"lmbalance/internal/rng"
	"lmbalance/internal/topology"
	"lmbalance/internal/workload"
)

func lmTestConfig(n, steps, runs int, seed uint64) Config {
	return LMConfig(n, steps, runs, core.DefaultParams(), workload.PhaseBounds{
		GLow: 0.2, GHigh: 0.8, CLow: 0.1, CHigh: 0.5,
		LenLow: 20, LenHigh: 60, Horizon: steps,
	}, seed)
}

func TestConfigValidation(t *testing.T) {
	good := lmTestConfig(8, 50, 2, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.N = 1
	if bad.Validate() == nil {
		t.Fatal("N=1 accepted")
	}
	bad = good
	bad.Steps = 0
	if bad.Validate() == nil {
		t.Fatal("Steps=0 accepted")
	}
	bad = good
	bad.Runs = 0
	if bad.Validate() == nil {
		t.Fatal("Runs=0 accepted")
	}
	bad = good
	bad.NewBalancer = nil
	if bad.Validate() == nil {
		t.Fatal("nil NewBalancer accepted")
	}
	bad = good
	bad.NewPattern = nil
	if bad.Validate() == nil {
		t.Fatal("nil NewPattern accepted")
	}
	bad = good
	bad.SnapshotAt = []int{50}
	if bad.Validate() == nil {
		t.Fatal("out-of-range snapshot accepted")
	}
}

func TestRunBasic(t *testing.T) {
	cfg := lmTestConfig(8, 60, 3, 42)
	cfg.SnapshotAt = []int{10, 59}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 3 {
		t.Fatalf("Runs = %d", res.Runs)
	}
	if res.Avg.Len() != 60 {
		t.Fatalf("series length %d", res.Avg.Len())
	}
	// Per-step: min <= avg <= max must hold for the means of each.
	for step := 0; step < 60; step++ {
		lo := res.Min.At(step).Mean()
		av := res.Avg.At(step).Mean()
		hi := res.Max.At(step).Mean()
		if lo > av+1e-9 || av > hi+1e-9 {
			t.Fatalf("step %d: min %.2f avg %.2f max %.2f out of order", step, lo, av, hi)
		}
	}
	for _, at := range []int{10, 59} {
		accs := res.Snapshots[at]
		if len(accs) != 8 {
			t.Fatalf("snapshot at %d has %d processors", at, len(accs))
		}
		for i := range accs {
			if accs[i].N() != 3 {
				t.Fatalf("snapshot acc %d has %d samples, want 3", i, accs[i].N())
			}
		}
	}
	if res.CoreMetrics.Generated == 0 {
		t.Fatal("no generation recorded")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := lmTestConfig(8, 80, 4, 7)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 80; step++ {
		if a.Avg.At(step).Mean() != b.Avg.At(step).Mean() {
			t.Fatalf("step %d: runs not reproducible", step)
		}
	}
	if a.CoreMetrics != b.CoreMetrics {
		t.Fatalf("metrics not reproducible:\n%+v\n%+v", a.CoreMetrics, b.CoreMetrics)
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	a, err := Run(lmTestConfig(8, 80, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(lmTestConfig(8, 80, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for step := 0; step < 80; step++ {
		if a.Avg.At(step).Mean() != b.Avg.At(step).Mean() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical series")
	}
}

// TestRunSeedsDoNotAliasAcrossConfigs: under the old additive derivation
// (Seed + run·0x9e3779b97f4a7c15), run r+1 of seed S replayed run r of
// seed S+0x9e3779b97f4a7c15 exactly — two "independent" sweeps whose
// seeds differ by the stride shared every run but one. The hashed
// derivation must make those runs differ.
func TestRunSeedsDoNotAliasAcrossConfigs(t *testing.T) {
	const stride = 0x9e3779b97f4a7c15
	cfgA := lmTestConfig(8, 80, 2, 100)
	cfgB := lmTestConfig(8, 80, 2, 100+stride)
	a := oneRun(cfgA, 1)
	b := oneRun(cfgB, 0)
	if a.err != nil || b.err != nil {
		t.Fatal(a.err, b.err)
	}
	same := a.metrics == b.metrics
	for step := 0; same && step < 80; step++ {
		if a.avg.At(step).Mean() != b.avg.At(step).Mean() {
			same = false
		}
	}
	if same {
		t.Fatal("run 1 of seed S aliases run 0 of seed S+stride")
	}
}

func TestRunWithBaselineTicker(t *testing.T) {
	n := 8
	cfg := Config{
		N: n, Steps: 50, Runs: 2, Seed: 5,
		NewBalancer: func(run int, r *rng.RNG) (Balancer, error) {
			return baseline.NewRSU(n, 1, r), nil
		},
		NewPattern: func(run int, r *rng.RNG) (workload.Pattern, error) {
			return workload.Uniform{GenP: 0.6, ConP: 0.2}, nil
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Avg.At(49).Mean() <= 0 {
		t.Fatal("no load accumulated")
	}
}

func TestRunBalancerError(t *testing.T) {
	cfg := lmTestConfig(8, 10, 2, 1)
	boom := errors.New("boom")
	cfg.NewBalancer = func(run int, r *rng.RNG) (Balancer, error) { return nil, boom }
	if _, err := Run(cfg); !errors.Is(err, boom) {
		t.Fatalf("expected wrapped boom, got %v", err)
	}
}

func TestRunPatternError(t *testing.T) {
	cfg := lmTestConfig(8, 10, 2, 1)
	boom := errors.New("pattern boom")
	cfg.NewPattern = func(run int, r *rng.RNG) (workload.Pattern, error) { return nil, boom }
	if _, err := Run(cfg); !errors.Is(err, boom) {
		t.Fatalf("expected wrapped boom, got %v", err)
	}
}

func TestRunSizeMismatch(t *testing.T) {
	cfg := lmTestConfig(8, 10, 1, 1)
	cfg.NewBalancer = func(run int, r *rng.RNG) (Balancer, error) {
		return core.NewSystem(4, core.DefaultParams(), topology.NewGlobal(4), r)
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("size mismatch not detected")
	}
}

// TestLMBeatsNoBalance: under a hotspot workload the core algorithm must
// produce a dramatically smaller load spread than no balancing — the
// paper's raison d'être, checked end to end through the engine.
func TestLMBeatsNoBalance(t *testing.T) {
	n, steps, runs := 16, 200, 5
	hot := workload.Hotspot{Hot: 2, GenP: 0.9, ConP: 0.3}
	newPattern := func(run int, r *rng.RNG) (workload.Pattern, error) { return hot, nil }

	lm, err := Run(Config{
		N: n, Steps: steps, Runs: runs, Seed: 11,
		NewBalancer: func(run int, r *rng.RNG) (Balancer, error) {
			return core.NewSystem(n, core.DefaultParams(), topology.NewGlobal(n), r)
		},
		NewPattern: newPattern,
	})
	if err != nil {
		t.Fatal(err)
	}
	nob, err := Run(Config{
		N: n, Steps: steps, Runs: runs, Seed: 11,
		NewBalancer: func(run int, r *rng.RNG) (Balancer, error) {
			return baseline.NewNoBalance(n), nil
		},
		NewPattern: newPattern,
	})
	if err != nil {
		t.Fatal(err)
	}
	lmSpread := lm.Spread.At(steps - 1).Mean()
	nobSpread := nob.Spread.At(steps - 1).Mean()
	if lmSpread*3 > nobSpread {
		t.Fatalf("LM spread %.1f not clearly better than no-balance %.1f", lmSpread, nobSpread)
	}
}

func TestFinalLoadVD(t *testing.T) {
	res, err := Run(lmTestConfig(8, 100, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoadVD < 0 {
		t.Fatal("negative variation density")
	}
}

func BenchmarkRunLM64(b *testing.B) {
	cfg := LMConfig(64, 500, 1, core.DefaultParams(), workload.PaperBounds(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
