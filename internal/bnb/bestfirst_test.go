package bnb

import (
	"testing"

	"lmbalance/internal/pool"
	"lmbalance/internal/rng"
)

func TestBestFirstMatchesSequential(t *testing.T) {
	p, err := pool.NewPriority(pool.Config{Workers: 4, F: 1.3, Delta: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	r := rng.New(15)
	for trial := 0; trial < 3; trial++ {
		ins := RandomInstance(11, r)
		seq := SolveSequential(ins)
		bf := SolveBestFirst(ins, p, 3)
		if bf.Cost != seq.Cost {
			t.Fatalf("trial %d: best-first cost %d != sequential %d", trial, bf.Cost, seq.Cost)
		}
		if ins.TourCost(bf.Tour) != bf.Cost {
			t.Fatalf("trial %d: tour/cost mismatch", trial)
		}
		if bf.Nodes == 0 {
			t.Fatal("no nodes expanded")
		}
	}
}

func TestBestFirstPoolReusable(t *testing.T) {
	p, err := pool.NewPriority(pool.Config{Workers: 4, F: 1.3, Delta: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ins := RandomInstance(10, rng.New(16))
	a := SolveBestFirst(ins, p, 2)
	b := SolveBestFirst(ins, p, 4)
	if a.Cost != b.Cost {
		t.Fatalf("same instance, different costs: %d vs %d", a.Cost, b.Cost)
	}
}

func TestBestFirstSpawnDepthClamped(t *testing.T) {
	p, err := pool.NewPriority(pool.Config{Workers: 2, F: 1.5, Delta: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ins := RandomInstance(8, rng.New(17))
	res := SolveBestFirst(ins, p, 0)
	if res.Cost != SolveSequential(ins).Cost {
		t.Fatal("clamped spawn depth broke optimality")
	}
}

// TestBestFirstPrunesAtLeastAsWellOnAverage: over several instances, the
// best-first strategy should not expand dramatically more nodes than the
// LIFO pool — typically fewer, because good incumbents arrive early.
func TestBestFirstNodeCounts(t *testing.T) {
	pp, err := pool.NewPriority(pool.Config{Workers: 4, F: 1.3, Delta: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pp.Close()
	lp, err := pool.New(pool.Config{Workers: 4, F: 1.3, Delta: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer lp.Close()
	r := rng.New(18)
	var bfNodes, lifoNodes int64
	for trial := 0; trial < 4; trial++ {
		ins := RandomInstance(12, r)
		bf := SolveBestFirst(ins, pp, 3)
		li := SolveParallel(ins, lp, 3)
		if bf.Cost != li.Cost {
			t.Fatalf("trial %d: cost mismatch %d vs %d", trial, bf.Cost, li.Cost)
		}
		bfNodes += bf.Nodes
		lifoNodes += li.Nodes
	}
	t.Logf("nodes expanded: best-first %d, LIFO %d", bfNodes, lifoNodes)
	if bfNodes > lifoNodes*3 {
		t.Fatalf("best-first expanded far more nodes (%d) than LIFO (%d)", bfNodes, lifoNodes)
	}
}

func BenchmarkBestFirstTSP12(b *testing.B) {
	ins := RandomInstance(12, rng.New(42))
	p, err := pool.NewPriority(pool.Config{Workers: 4, F: 1.3, Delta: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := SolveBestFirst(ins, p, 3)
		b.ReportMetric(float64(res.Nodes), "nodes")
	}
}
