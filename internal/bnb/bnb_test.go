package bnb

import (
	"testing"

	"lmbalance/internal/pool"
	"lmbalance/internal/rng"
)

func TestNewInstanceValidation(t *testing.T) {
	expectPanic := func(name string, d [][]int) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		NewInstance(d)
	}
	expectPanic("ragged", [][]int{{0, 1}, {1}})
	expectPanic("diag", [][]int{{1, 1}, {1, 0}})
	expectPanic("asym", [][]int{{0, 1}, {2, 0}})
	expectPanic("nonpositive", [][]int{{0, 0}, {0, 0}})
}

func TestRandomInstanceProperties(t *testing.T) {
	r := rng.New(1)
	ins := RandomInstance(10, r)
	if ins.N != 10 {
		t.Fatal("wrong size")
	}
	for i := 0; i < 10; i++ {
		if ins.minEdge[i] <= 0 {
			t.Fatalf("minEdge[%d] = %d", i, ins.minEdge[i])
		}
		for j := 0; j < 10; j++ {
			if ins.D[i][j] != ins.D[j][i] {
				t.Fatal("asymmetric")
			}
		}
	}
}

func TestRandomInstanceTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=2 did not panic")
		}
	}()
	RandomInstance(2, rng.New(1))
}

func TestTourCost(t *testing.T) {
	// Square: 0-(1)-1-(1)-2-(1)-3-(1)-0, diagonal 2.
	d := [][]int{
		{0, 1, 2, 1},
		{1, 0, 1, 2},
		{2, 1, 0, 1},
		{1, 2, 1, 0},
	}
	ins := NewInstance(d)
	if got := ins.TourCost([]int{0, 1, 2, 3}); got != 4 {
		t.Fatalf("perimeter tour cost %d, want 4", got)
	}
	// 0→2 (2), 2→1 (1), 1→3 (2), 3→0 (1) = 6.
	if got := ins.TourCost([]int{0, 2, 1, 3}); got != 6 {
		t.Fatalf("crossing tour cost %d, want 6", got)
	}
}

func TestTourCostPanics(t *testing.T) {
	ins := RandomInstance(5, rng.New(2))
	for _, bad := range [][]int{
		{0, 1, 2},       // too short
		{0, 1, 2, 3, 3}, // repeat
		{0, 1, 2, 3, 7}, // out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("tour %v did not panic", bad)
				}
			}()
			ins.TourCost(bad)
		}()
	}
}

func TestGreedyTourValid(t *testing.T) {
	ins := RandomInstance(12, rng.New(3))
	tour, cost := ins.GreedyTour()
	if got := ins.TourCost(tour); got != cost {
		t.Fatalf("greedy reports cost %d but tour costs %d", cost, got)
	}
}

func TestSequentialOptimalOnSquare(t *testing.T) {
	d := [][]int{
		{0, 1, 2, 1},
		{1, 0, 1, 2},
		{2, 1, 0, 1},
		{1, 2, 1, 0},
	}
	res := SolveSequential(NewInstance(d))
	if res.Cost != 4 {
		t.Fatalf("optimal cost %d, want 4", res.Cost)
	}
	if got := NewInstance(d).TourCost(res.Tour); got != 4 {
		t.Fatalf("reported tour costs %d", got)
	}
	if res.Nodes == 0 {
		t.Fatal("no nodes expanded")
	}
}

// TestSequentialMatchesBruteForce verifies optimality against exhaustive
// enumeration on small random instances.
func TestSequentialMatchesBruteForce(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 5; trial++ {
		ins := RandomInstance(8, r)
		want := bruteForce(ins)
		got := SolveSequential(ins)
		if got.Cost != want {
			t.Fatalf("trial %d: B&B cost %d, brute force %d", trial, got.Cost, want)
		}
		if ins.TourCost(got.Tour) != got.Cost {
			t.Fatalf("trial %d: tour/cost mismatch", trial)
		}
	}
}

// bruteForce enumerates all tours from city 0.
func bruteForce(ins *Instance) int {
	perm := make([]int, ins.N)
	for i := range perm {
		perm[i] = i
	}
	best := 1 << 30
	var rec func(k int)
	rec = func(k int) {
		if k == ins.N {
			if c := ins.TourCost(perm); c < best {
				best = c
			}
			return
		}
		for i := k; i < ins.N; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(1) // fix city 0 as start
	return best
}

func TestParallelMatchesSequential(t *testing.T) {
	r := rng.New(5)
	p, err := pool.New(pool.Config{Workers: 4, F: 1.3, Delta: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for trial := 0; trial < 3; trial++ {
		ins := RandomInstance(11, r)
		seq := SolveSequential(ins)
		par := SolveParallel(ins, p, 3)
		if par.Cost != seq.Cost {
			t.Fatalf("trial %d: parallel cost %d != sequential %d", trial, par.Cost, seq.Cost)
		}
		if ins.TourCost(par.Tour) != par.Cost {
			t.Fatalf("trial %d: parallel tour/cost mismatch", trial)
		}
	}
}

func TestParallelPoolReusable(t *testing.T) {
	p, err := pool.New(pool.Config{Workers: 4, F: 1.3, Delta: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	r := rng.New(6)
	ins := RandomInstance(10, r)
	a := SolveParallel(ins, p, 2)
	b := SolveParallel(ins, p, 4)
	if a.Cost != b.Cost {
		t.Fatalf("same instance, different costs: %d vs %d", a.Cost, b.Cost)
	}
}

func TestParallelSpawnDepthClamped(t *testing.T) {
	p, err := pool.New(pool.Config{Workers: 2, F: 1.5, Delta: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ins := RandomInstance(8, rng.New(7))
	res := SolveParallel(ins, p, 0) // clamped to 1
	if res.Cost != SolveSequential(ins).Cost {
		t.Fatal("clamped spawn depth broke optimality")
	}
}

func BenchmarkSequentialTSP12(b *testing.B) {
	ins := RandomInstance(12, rng.New(42))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveSequential(ins)
	}
}

func BenchmarkParallelTSP12(b *testing.B) {
	ins := RandomInstance(12, rng.New(42))
	p, err := pool.New(pool.Config{Workers: 4, F: 1.3, Delta: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveParallel(ins, p, 3)
	}
}
