package bnb

import (
	"sync"
	"sync/atomic"

	"lmbalance/internal/pool"
)

// SolveBestFirst finds the optimal tour using the best-first priority
// pool: every open subproblem is a task whose priority is its lower
// bound, so workers always expand the globally most promising frontier —
// the strategy of the authors' distributed branch & bound systems [7,8],
// where the load balancer must keep not just *some* work but *good* work
// on every processor. Subtrees deeper than spawnDepth are finished
// sequentially inside one task.
//
// The pool is reusable afterwards (SolveBestFirst waits for its own
// tasks).
func SolveBestFirst(ins *Instance, p *pool.PriorityPool, spawnDepth int) Result {
	if ins.N > 63 {
		panic("bnb: instance too large for bitmask search")
	}
	if spawnDepth < 1 {
		spawnDepth = 1
	}
	tour, cost := ins.GreedyTour()
	inc := newIncumbent(tour, cost)
	var nodes atomic.Int64
	var wg sync.WaitGroup

	var makeTask func(path []int, visited uint64, cost int) pool.PriorityTask
	makeTask = func(path []int, visited uint64, cost int) pool.PriorityTask {
		cur := path[len(path)-1]
		bound := ins.lowerBound(cost, cur, visited)
		return pool.PriorityTask{
			Priority: int64(bound),
			Run: func(w *pool.PriorityWorker) {
				defer wg.Done()
				if len(path) == ins.N {
					nodes.Add(1)
					inc.offer(path, cost+ins.D[cur][0])
					return
				}
				if bound >= int(inc.cost.Load()) {
					nodes.Add(1)
					return // pruned: the incumbent improved since spawning
				}
				if len(path) >= spawnDepth {
					var local int64
					dfs(ins, inc, &local, path, visited, cost)
					nodes.Add(local)
					return
				}
				nodes.Add(1)
				for _, j := range childrenByDistance(ins, cur, visited) {
					child := append(append(make([]int, 0, len(path)+1), path...), j)
					wg.Add(1)
					w.Submit(makeTask(child, visited|1<<uint(j), cost+ins.D[cur][j]))
				}
			},
		}
	}
	wg.Add(1)
	p.Submit(makeTask([]int{0}, 1, 0))
	wg.Wait()
	bestTour, bestCost := inc.snapshot()
	return Result{Cost: bestCost, Tour: bestTour, Nodes: nodes.Load()}
}
