// Package bnb implements best-first branch & bound for the symmetric
// traveling salesman problem — the flagship application of the paper's
// load balancing principle (the authors' references [7] and [8] apply the
// same algorithm to distributed B&B and a parallel TSP solver). The
// parallel solver runs on the Lüling–Monien task pool (internal/pool):
// subproblems are the load packets, generated dynamically as the tree
// unfolds and consumed as subtrees are pruned — exactly the unpredictable
// generate/consume pattern the paper's model captures.
package bnb

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"lmbalance/internal/pool"
	"lmbalance/internal/rng"
)

// Instance is a symmetric TSP instance with integer distances.
type Instance struct {
	N int
	// D is the full symmetric distance matrix, D[i][j] == D[j][i],
	// D[i][i] == 0.
	D [][]int

	// minEdge[i] is the cheapest edge incident to city i, precomputed for
	// the lower bound.
	minEdge []int
}

// RandomInstance places n cities uniformly in the unit square and uses
// rounded Euclidean distances scaled by 1000. It panics if n < 3.
func RandomInstance(n int, r *rng.RNG) *Instance {
	if n < 3 {
		panic("bnb: instance needs at least 3 cities")
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = r.Float64(), r.Float64()
	}
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			v := int(math.Round(1000 * math.Sqrt(dx*dx+dy*dy)))
			if v == 0 {
				v = 1 // distinct cities at distance 0 break bounds
			}
			d[i][j], d[j][i] = v, v
		}
	}
	return NewInstance(d)
}

// NewInstance wraps a distance matrix, validating symmetry and zero
// diagonal.
func NewInstance(d [][]int) *Instance {
	n := len(d)
	for i := 0; i < n; i++ {
		if len(d[i]) != n {
			panic(fmt.Sprintf("bnb: row %d has length %d, want %d", i, len(d[i]), n))
		}
		if d[i][i] != 0 {
			panic(fmt.Sprintf("bnb: nonzero diagonal at %d", i))
		}
		for j := 0; j < n; j++ {
			if d[i][j] != d[j][i] {
				panic(fmt.Sprintf("bnb: asymmetric at (%d,%d)", i, j))
			}
			if i != j && d[i][j] <= 0 {
				panic(fmt.Sprintf("bnb: non-positive distance at (%d,%d)", i, j))
			}
		}
	}
	ins := &Instance{N: n, D: d, minEdge: make([]int, n)}
	for i := 0; i < n; i++ {
		best := math.MaxInt
		for j := 0; j < n; j++ {
			if i != j && d[i][j] < best {
				best = d[i][j]
			}
		}
		ins.minEdge[i] = best
	}
	return ins
}

// TourCost returns the cost of the closed tour visiting perm in order and
// returning to perm[0]. It panics if perm is not a permutation of all
// cities.
func (ins *Instance) TourCost(perm []int) int {
	if len(perm) != ins.N {
		panic("bnb: tour length mismatch")
	}
	seen := make([]bool, ins.N)
	cost := 0
	for i, c := range perm {
		if c < 0 || c >= ins.N || seen[c] {
			panic("bnb: tour is not a permutation")
		}
		seen[c] = true
		cost += ins.D[c][perm[(i+1)%ins.N]]
	}
	return cost
}

// GreedyTour returns a nearest-neighbor tour from city 0 and its cost —
// the initial incumbent for the searches.
func (ins *Instance) GreedyTour() ([]int, int) {
	tour := make([]int, 0, ins.N)
	visited := make([]bool, ins.N)
	cur := 0
	tour = append(tour, 0)
	visited[0] = true
	cost := 0
	for len(tour) < ins.N {
		best, bestD := -1, math.MaxInt
		for j := 0; j < ins.N; j++ {
			if !visited[j] && ins.D[cur][j] < bestD {
				best, bestD = j, ins.D[cur][j]
			}
		}
		visited[best] = true
		tour = append(tour, best)
		cost += bestD
		cur = best
	}
	cost += ins.D[cur][0]
	return tour, cost
}

// lowerBound returns cost plus the sum of minimum incident edges of the
// current city and all unvisited cities — an admissible bound on the
// completion cost (every remaining city, and the path's head, must be left
// through at least its cheapest edge; the tour's return edge is covered by
// city 0's term when 0 is the start).
func (ins *Instance) lowerBound(cost int, cur int, visited uint64) int {
	lb := cost + ins.minEdge[cur]
	for j := 0; j < ins.N; j++ {
		if visited&(1<<uint(j)) == 0 {
			lb += ins.minEdge[j]
		}
	}
	return lb
}

// Result is the outcome of a solve.
type Result struct {
	Cost  int
	Tour  []int
	Nodes int64 // search tree nodes expanded
}

// incumbent is the shared best solution, safe for concurrent use.
type incumbent struct {
	mu   sync.Mutex
	cost atomic.Int64
	tour []int
}

func newIncumbent(tour []int, cost int) *incumbent {
	inc := &incumbent{tour: append([]int(nil), tour...)}
	inc.cost.Store(int64(cost))
	return inc
}

// offer installs (tour, cost) if it beats the incumbent.
func (inc *incumbent) offer(tour []int, cost int) {
	if int64(cost) >= inc.cost.Load() {
		return
	}
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if int64(cost) < inc.cost.Load() {
		inc.cost.Store(int64(cost))
		inc.tour = append(inc.tour[:0], tour...)
	}
}

func (inc *incumbent) snapshot() ([]int, int) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return append([]int(nil), inc.tour...), int(inc.cost.Load())
}

// SolveSequential finds the optimal tour by depth-first branch & bound.
// It panics on instances with more than 63 cities (bitmask representation).
func SolveSequential(ins *Instance) Result {
	if ins.N > 63 {
		panic("bnb: instance too large for bitmask search")
	}
	tour, cost := ins.GreedyTour()
	inc := newIncumbent(tour, cost)
	var nodes int64
	path := make([]int, 1, ins.N)
	path[0] = 0
	dfs(ins, inc, &nodes, path, 1, 0)
	bestTour, bestCost := inc.snapshot()
	return Result{Cost: bestCost, Tour: bestTour, Nodes: nodes}
}

// dfs expands the subtree below path (visited is its bitmask, cost its
// length so far), pruning against the incumbent.
func dfs(ins *Instance, inc *incumbent, nodes *int64, path []int, visited uint64, cost int) {
	*nodes++
	cur := path[len(path)-1]
	if len(path) == ins.N {
		inc.offer(path, cost+ins.D[cur][0])
		return
	}
	if ins.lowerBound(cost, cur, visited) >= int(inc.cost.Load()) {
		return
	}
	// Expand nearest-first: finds good incumbents early, prunes more.
	for _, j := range childrenByDistance(ins, cur, visited) {
		path = append(path, j)
		dfs(ins, inc, nodes, path, visited|1<<uint(j), cost+ins.D[cur][j])
		path = path[:len(path)-1]
	}
}

// childrenByDistance returns the unvisited cities sorted by distance from
// cur (insertion sort; the lists are short).
func childrenByDistance(ins *Instance, cur int, visited uint64) []int {
	out := make([]int, 0, ins.N)
	for j := 0; j < ins.N; j++ {
		if visited&(1<<uint(j)) == 0 {
			out = append(out, j)
		}
	}
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && ins.D[cur][out[k]] < ins.D[cur][out[k-1]]; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// SolveParallel finds the optimal tour using the given task pool: tree
// nodes above spawnDepth become pool tasks (dynamically generated load
// packets); deeper subtrees are solved sequentially inside one task. The
// pool is reusable afterwards (SolveParallel waits for its own tasks).
func SolveParallel(ins *Instance, p *pool.Pool, spawnDepth int) Result {
	if ins.N > 63 {
		panic("bnb: instance too large for bitmask search")
	}
	if spawnDepth < 1 {
		spawnDepth = 1
	}
	tour, cost := ins.GreedyTour()
	inc := newIncumbent(tour, cost)
	var nodes atomic.Int64
	var wg sync.WaitGroup

	var makeTask func(path []int, visited uint64, cost int) pool.Task
	makeTask = func(path []int, visited uint64, cost int) pool.Task {
		return func(w *pool.Worker) {
			defer wg.Done()
			cur := path[len(path)-1]
			if len(path) == ins.N {
				nodes.Add(1)
				inc.offer(path, cost+ins.D[cur][0])
				return
			}
			if ins.lowerBound(cost, cur, visited) >= int(inc.cost.Load()) {
				nodes.Add(1)
				return
			}
			if len(path) >= spawnDepth {
				// Sequential subtree: no further task generation.
				var local int64
				dfs(ins, inc, &local, path, visited, cost)
				nodes.Add(local)
				return
			}
			nodes.Add(1)
			for _, j := range childrenByDistance(ins, cur, visited) {
				child := append(append(make([]int, 0, len(path)+1), path...), j)
				wg.Add(1)
				w.Submit(makeTask(child, visited|1<<uint(j), cost+ins.D[cur][j]))
			}
		}
	}
	wg.Add(1)
	p.Submit(makeTask([]int{0}, 1, 0))
	wg.Wait()
	bestTour, bestCost := inc.snapshot()
	return Result{Cost: bestCost, Tour: bestTour, Nodes: nodes.Load()}
}
