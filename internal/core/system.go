package core

import (
	"fmt"

	"lmbalance/internal/rng"
	"lmbalance/internal/topology"
)

// System is the state of n processors running the Lüling–Monien load
// balancing algorithm. It is driven step-by-step by a simulator calling
// Generate and Consume; all balancing activity happens inside those calls,
// exactly as in the appendix algorithm. A System is not safe for concurrent
// use; the concurrent realization lives in internal/runtime.
type System struct {
	n      int
	params Params
	sel    topology.Selector
	rng    *rng.RNG

	d      []int // d[i*n+j]: real packets of class j on processor i
	b      []int // b[i*n+j]: borrow markers of class j on processor i
	l      []int // physical load, l[i] == Σ_j d[i*n+j]
	bTot   []int // Σ_j b[i*n+j]
	lOld   []int // d[i][i] at processor i's last balancing operation
	localT []int // balancing operations processor i participated in

	metrics Metrics

	// scratch buffers reused across balancing operations
	candBuf []int
	setBuf  []int
	oldL    []int
	newL    []int
	newBTot []int
}

// NewSystem creates a balanced-empty system of n processors. The selector
// must be built for the same n. The RNG drives candidate selection and all
// random choices of the algorithm.
func NewSystem(n int, p Params, sel topology.Selector, r *rng.RNG) (*System, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: need n >= 2 processors, got %d", n)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if sel == nil || r == nil {
		return nil, fmt.Errorf("core: selector and rng must be non-nil")
	}
	if sel.N() != n {
		return nil, fmt.Errorf("core: selector built for %d processors, system has %d", sel.N(), n)
	}
	m := p.Delta + 2 // balancing set is at most δ+1, class recovery adds one
	return &System{
		n:       n,
		params:  p,
		sel:     sel,
		rng:     r,
		d:       make([]int, n*n),
		b:       make([]int, n*n),
		l:       make([]int, n),
		bTot:    make([]int, n),
		lOld:    make([]int, n),
		localT:  make([]int, n),
		candBuf: make([]int, 0, p.Delta),
		setBuf:  make([]int, 0, m),
		oldL:    make([]int, m),
		newL:    make([]int, m),
		newBTot: make([]int, m),
	}, nil
}

// Name identifies the algorithm in experiment output.
func (s *System) Name() string {
	return fmt.Sprintf("LM(f=%g,δ=%d,C=%d,%s)", s.params.F, s.params.Delta, s.params.C, s.sel.Name())
}

// N returns the number of processors.
func (s *System) N() int { return s.n }

// Params returns the algorithm parameters.
func (s *System) Params() Params { return s.params }

// Load returns the physical load of processor i.
func (s *System) Load(i int) int { return s.l[i] }

// Loads appends the physical loads of all processors to dst and returns it.
func (s *System) Loads(dst []int) []int { return append(dst[:0], s.l...) }

// VirtualLoad returns l[i] + Σ_j b[i][j] — the load the analysis sees
// (Theorem 4 works on virtual loads; physical load is at most C below it).
func (s *System) VirtualLoad(i int) int { return s.l[i] + s.bTot[i] }

// TotalLoad returns the number of packets in the system.
func (s *System) TotalLoad() int {
	sum := 0
	for _, v := range s.l {
		sum += v
	}
	return sum
}

// LocalTime returns the number of balancing operations processor i has
// participated in — the paper's local clock t'.
func (s *System) LocalTime(i int) int { return s.localT[i] }

// TriggerBase returns l_old for processor i: its self-generated load at its
// last balancing operation, against which the factor-f trigger compares.
func (s *System) TriggerBase(i int) int { return s.lOld[i] }

// Metrics returns a snapshot of the activity counters.
func (s *System) Metrics() Metrics { return s.metrics }

// D returns d[i][j] (real packets of class j on i); for tests and
// experiment introspection.
func (s *System) D(i, j int) int { return s.d[i*s.n+j] }

// B returns b[i][j] (borrow markers of class j on i).
func (s *System) B(i, j int) int { return s.b[i*s.n+j] }

// Borrowed returns the number of outstanding borrow markers of processor i.
func (s *System) Borrowed(i int) int { return s.bTot[i] }

// Generate adds one self-generated packet to processor i. If i holds
// borrow markers, the new packet repays a debt instead (appendix: the
// marker's class receives the packet), leaving virtual loads unchanged.
// May trigger a balancing operation.
func (s *System) Generate(i int) {
	if s.bTot[i] > 0 {
		j := s.randClass(i, func(idx int) bool { return s.b[idx] > 0 })
		s.b[i*s.n+j]--
		s.bTot[i]--
		s.d[i*s.n+j]++
	} else {
		s.d[i*s.n+i]++
	}
	s.l[i]++
	s.metrics.Generated++
	s.maybeBalance(i)
}

// Consume removes one packet from processor i, borrowing from a foreign
// class if i has no self-generated packets left. It returns false if i has
// no load at all. May trigger balancing operations (on i, or on a class
// owner during borrow settlement).
func (s *System) Consume(i int) bool {
	if s.l[i] == 0 {
		s.metrics.ConsumeNoLoad++
		return false
	}
	if s.d[i*s.n+i] > 0 {
		s.d[i*s.n+i]--
		s.l[i]--
		s.metrics.Consumed++
		s.maybeBalance(i)
		return true
	}
	// d[i][i] == 0 but l > 0: borrow. Each settlement clears at least one
	// marker, so the loop terminates within C+2 rounds.
	for attempt := 0; attempt <= s.params.C+2; attempt++ {
		if s.l[i] == 0 {
			// Settlement rebalancing may have migrated all load away.
			s.metrics.ConsumeNoLoad++
			return false
		}
		if s.d[i*s.n+i] > 0 {
			// Settlement rebalancing gave i self packets back.
			s.d[i*s.n+i]--
			s.l[i]--
			s.metrics.Consumed++
			s.maybeBalance(i)
			return true
		}
		if s.bTot[i] < s.params.C {
			j := s.randClass(i, func(idx int) bool { return s.d[idx] > 0 && s.b[idx] == 0 })
			if j >= 0 {
				s.b[i*s.n+j]++
				s.bTot[i]++
				s.d[i*s.n+j]--
				s.l[i]--
				s.metrics.TotalBorrow++
				s.metrics.Consumed++
				return true
			}
		}
		// No borrow slot: settle a random outstanding marker first.
		j := s.randClass(i, func(idx int) bool { return s.b[idx] > 0 })
		if j < 0 {
			// No markers and no borrowable class would mean l == 0;
			// unreachable, but fail safe rather than loop.
			break
		}
		s.settle(i, j)
	}
	s.metrics.ConsumeNoLoad++
	return false
}

// randClass picks a uniformly random class j for processor i among those
// whose flattened index i*n+j satisfies pred, via reservoir sampling.
// It returns -1 if no class qualifies.
func (s *System) randClass(i int, pred func(idx int) bool) int {
	base := i * s.n
	pick := -1
	count := 0
	for j := 0; j < s.n; j++ {
		if pred(base + j) {
			count++
			if s.rng.Intn(count) == 0 {
				pick = j
			}
		}
	}
	return pick
}

// maybeBalance fires a balancing operation if processor i's self-generated
// load has changed by at least the factor f since its last balancing
// operation. The strict-change guard (d != lOld) keeps the lOld == 0 case
// from firing continuously (see doc.go).
func (s *System) maybeBalance(i int) {
	d := s.d[i*s.n+i]
	old := s.lOld[i]
	f := s.params.F
	if d > old && float64(d) >= f*float64(old) {
		s.balance(i)
		return
	}
	if d < old && float64(d)*f <= float64(old) {
		s.balance(i)
	}
}

// balance performs a full balancing operation initiated by processor init:
// δ random partners are selected and all 2n class vectors of the δ+1
// participants are snake-redistributed. Every participant's local clock
// ticks, lOld resets, and own-class borrow markers are cleared (simulated
// decrease).
func (s *System) balance(init int) {
	s.candBuf = s.sel.Select(init, s.params.Delta, s.rng, s.candBuf)
	s.setBuf = append(s.setBuf[:0], init)
	s.setBuf = append(s.setBuf, s.candBuf...)
	set := s.setBuf
	s.metrics.BalanceOps++
	s.redistribute(set)
	for _, p := range set {
		if !s.params.InitiatorOnlyReset || p == init {
			s.lOld[p] = s.d[p*s.n+p]
		}
		s.localT[p]++
	}
	for _, p := range set {
		if own := s.b[p*s.n+p]; own > 0 {
			// The owner consumes its own phantoms: simulated decrease.
			s.bTot[p] -= own
			s.b[p*s.n+p] = 0
			s.metrics.DecreaseSim++
		}
	}
}

// redistribute snake-distributes all d classes followed by all b classes
// of the participant set, maintaining l and bTot and counting migrations.
func (s *System) redistribute(set []int) {
	m := len(set)
	oldL := s.oldL[:m]
	newL := s.newL[:m]
	newBTot := s.newBTot[:m]
	for k, p := range set {
		oldL[k] = s.l[p]
		newL[k] = 0
		newBTot[k] = 0
	}
	cur := newSnakeCursor(m, s.rng.Intn(m))
	for j := 0; j < s.n; j++ {
		total := 0
		for _, p := range set {
			total += s.d[p*s.n+j]
		}
		if total == 0 {
			continue // cursor need not advance for empty classes
		}
		cur.distribute(total, func(k, cnt int) {
			s.d[set[k]*s.n+j] = cnt
			newL[k] += cnt
		})
	}
	for j := 0; j < s.n; j++ {
		total := 0
		for _, p := range set {
			total += s.b[p*s.n+j]
		}
		if total == 0 {
			continue
		}
		cur.distribute(total, func(k, cnt int) {
			s.b[set[k]*s.n+j] = cnt
			newBTot[k] += cnt
		})
	}
	for k, p := range set {
		s.l[p] = newL[k]
		s.bTot[p] = newBTot[k]
		if recv := newL[k] - oldL[k]; recv > 0 {
			s.metrics.Migrations += int64(recv)
		}
	}
}

// CheckInvariants verifies the structural invariants documented in doc.go:
// non-negative counts, l[i] == Σ_j d[i][j], bTot[i] == Σ_j b[i][j], and
// exact packet conservation (TotalLoad == Generated − Consumed). It is
// O(n²) and intended for tests.
func (s *System) CheckInvariants() error {
	var totalLoad int64
	for i := 0; i < s.n; i++ {
		sumD, sumB := 0, 0
		for j := 0; j < s.n; j++ {
			dv, bv := s.d[i*s.n+j], s.b[i*s.n+j]
			if dv < 0 {
				return fmt.Errorf("core: d[%d][%d] = %d < 0", i, j, dv)
			}
			if bv < 0 {
				return fmt.Errorf("core: b[%d][%d] = %d < 0", i, j, bv)
			}
			sumD += dv
			sumB += bv
		}
		if s.l[i] != sumD {
			return fmt.Errorf("core: l[%d] = %d but Σd = %d", i, s.l[i], sumD)
		}
		if s.bTot[i] != sumB {
			return fmt.Errorf("core: bTot[%d] = %d but Σb = %d", i, s.bTot[i], sumB)
		}
		totalLoad += int64(s.l[i])
	}
	if want := s.metrics.Generated - s.metrics.Consumed; totalLoad != want {
		return fmt.Errorf("core: total load %d but generated−consumed = %d", totalLoad, want)
	}
	return nil
}

// settle resolves one outstanding borrow marker b[i][j] (see doc.go for
// the three cases).
func (s *System) settle(i, j int) {
	if j == i {
		// The owner clears its own phantoms: simulated decrease.
		s.bTot[i] -= s.b[i*s.n+i]
		s.b[i*s.n+i] = 0
		s.metrics.DecreaseSim++
		return
	}
	if s.d[j*s.n+j] > 0 {
		s.exchange(i, j)
		return
	}
	// Borrow fail: the class owner has no real self packets. Run the §4
	// recovery — a class-j-only balancing over j, δ random candidates and
	// i — then settle if it produced packets at j.
	s.metrics.BorrowFail++
	s.classBalance(j, i)
	if s.b[i*s.n+j] == 0 {
		// The marker migrated away (another participant now carries the
		// debt); i is free to borrow again.
		return
	}
	if s.d[j*s.n+j] > 0 {
		s.exchange(i, j)
		return
	}
	// Class j has no real packets among the participants: force-clear the
	// marker with a simulated decrease accounted to class j. Unreachable
	// under the paper's assumptions; kept for progress under adversarial
	// schedules.
	s.b[i*s.n+j]--
	s.bTot[i]--
	s.metrics.ForcedSettle++
	s.metrics.DecreaseSim++
}

// exchange performs the paper's remote-borrow settlement: processor j
// migrates one real class-j packet to i, i clears its class-j marker, and
// j treats the loss as a simulated workload decrease (which may trigger a
// balancing operation on j).
func (s *System) exchange(i, j int) {
	s.d[j*s.n+j]--
	s.l[j]--
	s.d[i*s.n+j]++
	s.l[i]++
	s.b[i*s.n+j]--
	s.bTot[i]--
	s.metrics.RemoteBorrow++
	s.metrics.DecreaseSim++
	s.maybeBalance(j)
}

// classBalance redistributes only class cls over the owner, δ random
// candidates of the owner, and the extra processor (the borrower), leaving
// every other class untouched. Markers of class cls arriving at the owner
// are consumed (the paper: "at least one processor migrates its borrowed
// packet to j where it is also consumed").
func (s *System) classBalance(owner, extra int) {
	cls := owner // the class being balanced is the owner's own class
	s.metrics.ClassBalanceOps++
	s.candBuf = s.sel.Select(owner, s.params.Delta, s.rng, s.candBuf)
	s.setBuf = append(s.setBuf[:0], owner)
	for _, c := range s.candBuf {
		if c != extra {
			s.setBuf = append(s.setBuf, c)
		}
	}
	if extra != owner {
		s.setBuf = append(s.setBuf, extra)
	}
	set := s.setBuf
	m := len(set)

	totalD, totalB := 0, 0
	for _, p := range set {
		totalD += s.d[p*s.n+cls]
		totalB += s.b[p*s.n+cls]
	}
	cur := newSnakeCursor(m, s.rng.Intn(m))
	cur.distribute(totalD, func(k, cnt int) {
		p := set[k]
		delta := cnt - s.d[p*s.n+cls]
		s.d[p*s.n+cls] = cnt
		s.l[p] += delta
		if delta > 0 {
			s.metrics.Migrations += int64(delta)
		}
	})
	cur.distribute(totalB, func(k, cnt int) {
		p := set[k]
		delta := cnt - s.b[p*s.n+cls]
		s.b[p*s.n+cls] = cnt
		s.bTot[p] += delta
	})
	// Markers of the class that landed on the owner are consumed there.
	if own := s.b[owner*s.n+cls]; own > 0 {
		s.bTot[owner] -= own
		s.b[owner*s.n+cls] = 0
		s.metrics.DecreaseSim++
	}
}
