package core

import (
	"fmt"
	"sort"

	"lmbalance/internal/rng"
	"lmbalance/internal/topology"
)

// System is the state of n processors running the Lüling–Monien load
// balancing algorithm. It is driven step-by-step by a simulator calling
// Generate and Consume; all balancing activity happens inside those calls,
// exactly as in the appendix algorithm. A System is not safe for concurrent
// use; the concurrent realizations live in internal/pool (shared-memory
// worker pool) and internal/netsim (message-passing network).
//
// Per-class state is stored sparsely: processor i keeps a compact row of
// the classes it actually holds (see sparse.go) instead of dense length-n
// d/b vectors. Memory is O(total nonzero + n) rather than O(n²), and a
// balancing operation touches only the union of classes its δ+1
// participants hold rather than scanning all n classes. The sparse system
// consumes the RNG stream exactly like the dense formulation, so results
// are bit-identical to the original dense implementation (enforced by
// TestSparseMatchesDenseReference).
type System struct {
	n      int
	params Params
	sel    topology.Selector
	rng    *rng.RNG

	rows   []sparseRow // rows[i]: nonzero (d, b) class counts of processor i
	l      []int       // physical load, l[i] == Σ_j d[i][j]
	bTot   []int       // Σ_j b[i][j]
	lOld   []int       // d[i][i] at processor i's last balancing operation
	localT []int       // balancing operations processor i participated in

	metrics Metrics

	// scratch buffers reused across operations
	candBuf    []int
	setBuf     []int
	oldL       []int
	newL       []int
	newBTot    []int
	classBuf   []int // qualifying classes collected by randClass
	unionBuf   []int // active-class union of a participant set
	mark       []int // per-class stamp marks backing activeUnion
	stamp      int
	classIdx   []int // class -> position in the current union
	dMat, bMat []int // union×participants gather matrices for redistribute
}

// NewSystem creates a balanced-empty system of n processors. The selector
// must be built for the same n. The RNG drives candidate selection and all
// random choices of the algorithm.
func NewSystem(n int, p Params, sel topology.Selector, r *rng.RNG) (*System, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: need n >= 2 processors, got %d", n)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if sel == nil || r == nil {
		return nil, fmt.Errorf("core: selector and rng must be non-nil")
	}
	if sel.N() != n {
		return nil, fmt.Errorf("core: selector built for %d processors, system has %d", sel.N(), n)
	}
	m := p.Delta + 2 // balancing set is at most δ+1, class recovery adds one
	// One backing array serves every row's pinned self entry; a row that
	// outgrows its one-entry slice reallocates independently on append.
	backing := make([]classEntry, n)
	rows := make([]sparseRow, n)
	for i := range rows {
		backing[i] = classEntry{cls: i}
		rows[i] = sparseRow{self: i, entries: backing[i : i+1 : i+1]}
	}
	return &System{
		n:       n,
		params:  p,
		sel:     sel,
		rng:     r,
		rows:    rows,
		l:       make([]int, n),
		bTot:    make([]int, n),
		lOld:    make([]int, n),
		localT:  make([]int, n),
		candBuf: make([]int, 0, p.Delta),
		setBuf:  make([]int, 0, m),
		oldL:    make([]int, m),
		newL:    make([]int, m),
		newBTot:  make([]int, m),
		mark:     make([]int, n),
		classIdx: make([]int, n),
	}, nil
}

// Name identifies the algorithm in experiment output.
func (s *System) Name() string {
	return fmt.Sprintf("LM(f=%g,δ=%d,C=%d,%s)", s.params.F, s.params.Delta, s.params.C, s.sel.Name())
}

// N returns the number of processors.
func (s *System) N() int { return s.n }

// Params returns the algorithm parameters.
func (s *System) Params() Params { return s.params }

// Load returns the physical load of processor i.
func (s *System) Load(i int) int { return s.l[i] }

// Loads appends the physical loads of all processors to dst and returns it.
func (s *System) Loads(dst []int) []int { return append(dst[:0], s.l...) }

// VirtualLoad returns l[i] + Σ_j b[i][j] — the load the analysis sees
// (Theorem 4 works on virtual loads; physical load is at most C below it).
func (s *System) VirtualLoad(i int) int { return s.l[i] + s.bTot[i] }

// TotalLoad returns the number of packets in the system.
func (s *System) TotalLoad() int {
	sum := 0
	for _, v := range s.l {
		sum += v
	}
	return sum
}

// LocalTime returns the number of balancing operations processor i has
// participated in — the paper's local clock t'.
func (s *System) LocalTime(i int) int { return s.localT[i] }

// TriggerBase returns l_old for processor i: its self-generated load at its
// last balancing operation, against which the factor-f trigger compares.
func (s *System) TriggerBase(i int) int { return s.lOld[i] }

// Metrics returns a snapshot of the activity counters.
func (s *System) Metrics() Metrics { return s.metrics }

// D returns d[i][j] (real packets of class j on i); for tests and
// experiment introspection.
func (s *System) D(i, j int) int { return s.rows[i].getD(j) }

// B returns b[i][j] (borrow markers of class j on i).
func (s *System) B(i, j int) int { return s.rows[i].getB(j) }

// Borrowed returns the number of outstanding borrow markers of processor i.
func (s *System) Borrowed(i int) int { return s.bTot[i] }

// ActiveClasses returns the number of classes processor i currently holds
// (d or b nonzero) — the per-row cost driver of a balancing operation.
func (s *System) ActiveClasses(i int) int { return s.rows[i].active() }

// NNZ returns the total number of nonzero per-class cells across all
// processors — the memory footprint driver of the sparse representation.
func (s *System) NNZ() int {
	total := 0
	for i := range s.rows {
		total += s.rows[i].active()
	}
	return total
}

// ForceBalance initiates a balancing operation on processor i regardless of
// the factor-f trigger. It exists for benchmarks and experiment harnesses;
// the algorithm itself only balances through the trigger.
func (s *System) ForceBalance(i int) { s.balance(i) }

// Generate adds one self-generated packet to processor i. If i holds
// borrow markers, the new packet repays a debt instead (appendix: the
// marker's class receives the packet), leaving virtual loads unchanged.
// May trigger a balancing operation.
func (s *System) Generate(i int) {
	if s.bTot[i] > 0 {
		j := s.randClass(i, func(e *classEntry) bool { return e.b > 0 })
		s.rows[i].add(j, +1, -1)
		s.bTot[i]--
	} else {
		s.rows[i].own().d++
	}
	s.l[i]++
	s.metrics.Generated++
	s.maybeBalance(i)
}

// Consume removes one packet from processor i, borrowing from a foreign
// class if i has no self-generated packets left. It returns false if i has
// no load at all. May trigger balancing operations (on i, or on a class
// owner during borrow settlement).
func (s *System) Consume(i int) bool {
	if s.l[i] == 0 {
		s.metrics.ConsumeNoLoad++
		return false
	}
	row := &s.rows[i]
	if row.own().d > 0 {
		row.own().d--
		s.l[i]--
		s.metrics.Consumed++
		s.maybeBalance(i)
		return true
	}
	// d[i][i] == 0 but l > 0: borrow. Each settlement clears at least one
	// marker, so the loop terminates within C+2 rounds.
	for attempt := 0; attempt <= s.params.C+2; attempt++ {
		if s.l[i] == 0 {
			// Settlement rebalancing may have migrated all load away.
			s.metrics.ConsumeNoLoad++
			return false
		}
		if row.own().d > 0 {
			// Settlement rebalancing gave i self packets back.
			row.own().d--
			s.l[i]--
			s.metrics.Consumed++
			s.maybeBalance(i)
			return true
		}
		if s.bTot[i] < s.params.C {
			j := s.randClass(i, func(e *classEntry) bool { return e.d > 0 && e.b == 0 })
			if j >= 0 {
				row.add(j, -1, +1)
				s.bTot[i]++
				s.l[i]--
				s.metrics.TotalBorrow++
				s.metrics.Consumed++
				return true
			}
		}
		// No borrow slot: settle a random outstanding marker first.
		j := s.randClass(i, func(e *classEntry) bool { return e.b > 0 })
		if j < 0 {
			// No markers and no borrowable class would mean l == 0;
			// unreachable, but fail safe rather than loop.
			break
		}
		s.settle(i, j)
	}
	s.metrics.ConsumeNoLoad++
	return false
}

// randClass picks a uniformly random class for processor i among the
// active classes whose entry satisfies pred, via reservoir sampling over
// the qualifying classes in ascending order. Scanning in ascending class
// order keeps the RNG consumption identical to a dense 0..n-1 scan (zero
// cells never qualify under any of the algorithm's predicates). It returns
// -1 if no class qualifies.
func (s *System) randClass(i int, pred func(e *classEntry) bool) int {
	row := &s.rows[i]
	buf := s.classBuf[:0]
	for k := range row.entries {
		if pred(&row.entries[k]) {
			buf = append(buf, row.entries[k].cls)
		}
	}
	sort.Ints(buf)
	pick := -1
	for k, cls := range buf {
		if s.rng.Intn(k+1) == 0 {
			pick = cls
		}
	}
	s.classBuf = buf
	return pick
}

// maybeBalance fires a balancing operation if processor i's self-generated
// load has changed by at least the factor f since its last balancing
// operation. The strict-change guard (d != lOld) keeps the lOld == 0 case
// from firing continuously (see doc.go).
func (s *System) maybeBalance(i int) {
	d := s.rows[i].own().d
	old := s.lOld[i]
	f := s.params.F
	if d > old && float64(d) >= f*float64(old) {
		s.balance(i)
		return
	}
	if d < old && float64(d)*f <= float64(old) {
		s.balance(i)
	}
}

// balance performs a full balancing operation initiated by processor init:
// δ random partners are selected and all class vectors of the δ+1
// participants are snake-redistributed. Every participant's local clock
// ticks, lOld resets, and own-class borrow markers are cleared (simulated
// decrease).
func (s *System) balance(init int) {
	s.candBuf = s.sel.Select(init, s.params.Delta, s.rng, s.candBuf)
	s.setBuf = append(s.setBuf[:0], init)
	s.setBuf = append(s.setBuf, s.candBuf...)
	set := s.setBuf
	s.metrics.BalanceOps++
	s.redistribute(set)
	for _, p := range set {
		if !s.params.InitiatorOnlyReset || p == init {
			s.lOld[p] = s.rows[p].own().d
		}
		s.localT[p]++
	}
	for _, p := range set {
		if own := s.rows[p].own().b; own > 0 {
			// The owner consumes its own phantoms: simulated decrease.
			s.bTot[p] -= own
			s.rows[p].own().b = 0
			s.metrics.DecreaseSim++
		}
	}
}

// activeUnion collects the sorted union of classes held (d or b nonzero)
// by any processor in set and records each class's union position in
// classIdx. The stamp-marking scratch keeps it O(active entries + sort)
// without clearing an O(n) array per call.
func (s *System) activeUnion(set []int) []int {
	s.stamp++
	buf := s.unionBuf[:0]
	for _, p := range set {
		entries := s.rows[p].entries
		for k := range entries {
			e := &entries[k]
			if e.d == 0 && e.b == 0 {
				continue // pinned empty self entry
			}
			if s.mark[e.cls] != s.stamp {
				s.mark[e.cls] = s.stamp
				buf = append(buf, e.cls)
			}
		}
	}
	sort.Ints(buf)
	for ci, cls := range buf {
		s.classIdx[cls] = ci
	}
	s.unionBuf = buf
	return buf
}

// redistribute snake-distributes the d classes followed by the b classes
// of the participant set, maintaining l and bTot and counting migrations.
// Only the union of the participants' active classes is visited; all other
// classes have zero totals, for which the dense formulation would not
// advance the snake cursor either, so the result is identical. The
// participants' counts are gathered into union×m scratch matrices and the
// rows rebuilt wholesale afterwards, keeping the hot loop free of row
// searches.
func (s *System) redistribute(set []int) {
	m := len(set)
	oldL := s.oldL[:m]
	newL := s.newL[:m]
	newBTot := s.newBTot[:m]
	for k, p := range set {
		oldL[k] = s.l[p]
		newL[k] = 0
		newBTot[k] = 0
	}
	classes := s.activeUnion(set)
	u := len(classes)
	need := u * m
	if cap(s.dMat) < need {
		s.dMat = make([]int, need)
		s.bMat = make([]int, need)
	}
	dMat := s.dMat[:need]
	bMat := s.bMat[:need]
	for i := range dMat {
		dMat[i] = 0
		bMat[i] = 0
	}
	for k, p := range set {
		entries := s.rows[p].entries
		for e := range entries {
			ent := &entries[e]
			if ent.d == 0 && ent.b == 0 {
				continue
			}
			ci := s.classIdx[ent.cls]
			dMat[ci*m+k] = ent.d
			bMat[ci*m+k] = ent.b
		}
	}
	cur := newSnakeCursor(m, s.rng.Intn(m))
	for ci := 0; ci < u; ci++ {
		row := dMat[ci*m : ci*m+m]
		total := 0
		for _, v := range row {
			total += v
		}
		if total == 0 {
			continue // cursor need not advance for empty classes
		}
		cur.distribute(total, func(k, cnt int) {
			row[k] = cnt
			newL[k] += cnt
		})
	}
	for ci := 0; ci < u; ci++ {
		row := bMat[ci*m : ci*m+m]
		total := 0
		for _, v := range row {
			total += v
		}
		if total == 0 {
			continue
		}
		cur.distribute(total, func(k, cnt int) {
			row[k] = cnt
			newBTot[k] += cnt
		})
	}
	for k, p := range set {
		s.rows[p].rebuild(classes, dMat, bMat, k, m)
		s.l[p] = newL[k]
		s.bTot[p] = newBTot[k]
		if recv := newL[k] - oldL[k]; recv > 0 {
			s.metrics.Migrations += int64(recv)
		}
	}
}

// CheckInvariants verifies the structural invariants documented in doc.go —
// non-negative counts, l[i] == Σ_j d[i][j], bTot[i] == Σ_j b[i][j], exact
// packet conservation (TotalLoad == Generated − Consumed) — plus the
// sparse bookkeeping: every row's self entry is pinned at index 0, no
// foreign entry is empty, and no class appears in a row twice. It is
// O(total nonzero + n) and intended for tests.
func (s *System) CheckInvariants() error {
	var totalLoad int64
	for i := 0; i < s.n; i++ {
		row := &s.rows[i]
		if len(row.entries) == 0 || row.entries[0].cls != i || row.self != i {
			return fmt.Errorf("core: row %d: self entry not pinned at index 0", i)
		}
		s.stamp++
		sumD, sumB := 0, 0
		for k := range row.entries {
			e := &row.entries[k]
			if e.cls < 0 || e.cls >= s.n {
				return fmt.Errorf("core: row %d: class %d out of range", i, e.cls)
			}
			if e.d < 0 {
				return fmt.Errorf("core: d[%d][%d] = %d < 0", i, e.cls, e.d)
			}
			if e.b < 0 {
				return fmt.Errorf("core: b[%d][%d] = %d < 0", i, e.cls, e.b)
			}
			if s.mark[e.cls] == s.stamp {
				return fmt.Errorf("core: row %d: class %d appears twice", i, e.cls)
			}
			s.mark[e.cls] = s.stamp
			if k > 0 && e.d == 0 && e.b == 0 {
				return fmt.Errorf("core: row %d: empty entry for class %d not compacted", i, e.cls)
			}
			sumD += e.d
			sumB += e.b
		}
		if s.l[i] != sumD {
			return fmt.Errorf("core: l[%d] = %d but Σd = %d", i, s.l[i], sumD)
		}
		if s.bTot[i] != sumB {
			return fmt.Errorf("core: bTot[%d] = %d but Σb = %d", i, s.bTot[i], sumB)
		}
		totalLoad += int64(s.l[i])
	}
	if want := s.metrics.Generated - s.metrics.Consumed; totalLoad != want {
		return fmt.Errorf("core: total load %d but generated−consumed = %d", totalLoad, want)
	}
	return nil
}

// settle resolves one outstanding borrow marker b[i][j] (see doc.go for
// the three cases).
func (s *System) settle(i, j int) {
	if j == i {
		// The owner clears its own phantoms: simulated decrease.
		own := s.rows[i].own()
		s.bTot[i] -= own.b
		own.b = 0
		s.metrics.DecreaseSim++
		return
	}
	if s.rows[j].own().d > 0 {
		s.exchange(i, j)
		return
	}
	// Borrow fail: the class owner has no real self packets. Run the §4
	// recovery — a class-j-only balancing over j, δ random candidates and
	// i — then settle if it produced packets at j.
	s.metrics.BorrowFail++
	s.classBalance(j, i)
	if s.rows[i].getB(j) == 0 {
		// The marker migrated away (another participant now carries the
		// debt); i is free to borrow again.
		return
	}
	if s.rows[j].own().d > 0 {
		s.exchange(i, j)
		return
	}
	// Class j has no real packets among the participants: force-clear the
	// marker with a simulated decrease accounted to class j. Unreachable
	// under the paper's assumptions; kept for progress under adversarial
	// schedules.
	s.rows[i].add(j, 0, -1)
	s.bTot[i]--
	s.metrics.ForcedSettle++
	s.metrics.DecreaseSim++
}

// exchange performs the paper's remote-borrow settlement: processor j
// migrates one real class-j packet to i, i clears its class-j marker, and
// j treats the loss as a simulated workload decrease (which may trigger a
// balancing operation on j).
func (s *System) exchange(i, j int) {
	s.rows[j].own().d--
	s.l[j]--
	s.rows[i].add(j, +1, -1)
	s.l[i]++
	s.bTot[i]--
	s.metrics.RemoteBorrow++
	s.metrics.DecreaseSim++
	s.maybeBalance(j)
}

// classBalance redistributes only class cls over the owner, δ random
// candidates of the owner, and the extra processor (the borrower), leaving
// every other class untouched. Markers of class cls arriving at the owner
// are consumed (the paper: "at least one processor migrates its borrowed
// packet to j where it is also consumed").
func (s *System) classBalance(owner, extra int) {
	cls := owner // the class being balanced is the owner's own class
	s.metrics.ClassBalanceOps++
	s.candBuf = s.sel.Select(owner, s.params.Delta, s.rng, s.candBuf)
	s.setBuf = append(s.setBuf[:0], owner)
	for _, c := range s.candBuf {
		if c != extra {
			s.setBuf = append(s.setBuf, c)
		}
	}
	if extra != owner {
		s.setBuf = append(s.setBuf, extra)
	}
	set := s.setBuf
	m := len(set)

	totalD, totalB := 0, 0
	for _, p := range set {
		totalD += s.rows[p].getD(cls)
		totalB += s.rows[p].getB(cls)
	}
	cur := newSnakeCursor(m, s.rng.Intn(m))
	cur.distribute(totalD, func(k, cnt int) {
		p := set[k]
		delta := cnt - s.rows[p].getD(cls)
		s.rows[p].setD(cls, cnt)
		s.l[p] += delta
		if delta > 0 {
			s.metrics.Migrations += int64(delta)
		}
	})
	cur.distribute(totalB, func(k, cnt int) {
		p := set[k]
		delta := cnt - s.rows[p].getB(cls)
		s.rows[p].setB(cls, cnt)
		s.bTot[p] += delta
	})
	// Markers of the class that landed on the owner are consumed there.
	if own := s.rows[owner].own().b; own > 0 {
		s.bTot[owner] -= own
		s.rows[owner].own().b = 0
		s.metrics.DecreaseSim++
	}
}
