package core

import (
	"fmt"

	"lmbalance/internal/rng"
	"lmbalance/internal/topology"
)

// System is the state of n processors running the Lüling–Monien load
// balancing algorithm. It is driven step-by-step by a simulator calling
// Generate and Consume; all balancing activity happens inside those calls,
// exactly as in the appendix algorithm. A System is not safe for concurrent
// use through the sequential API; the sharded simulation engine drives
// disjoint processor ranges concurrently through Lane views and resolves
// cross-range balancing operations through the batched entry points in
// batch.go. Other concurrent realizations live in internal/pool
// (shared-memory worker pool) and internal/netsim (message-passing
// network).
//
// Per-class state is stored sparsely: processor i keeps a compact row of
// the classes it actually holds (see sparse.go) instead of dense length-n
// d/b vectors. Memory is O(total nonzero + n) rather than O(n²), and a
// balancing operation touches only the union of classes its δ+1
// participants hold rather than scanning all n classes. The sparse system
// consumes the RNG stream exactly like the dense formulation, so results
// are bit-identical to the original dense implementation (enforced by
// TestSparseMatchesDenseReference).
//
// Every randomized internal operation threads an explicit (rng, scratch,
// metrics) triple instead of touching System-level fields: the sequential
// API passes the System's own triple, while the sharded engine passes
// per-worker scratch and metrics plus deterministic per-operation RNG
// streams so operations over disjoint participant sets can run on any
// worker with identical results.
type System struct {
	n      int
	params Params
	sel    topology.Selector
	rng    *rng.RNG

	rows   []sparseRow // rows[i]: nonzero (d, b) class counts of processor i
	l      []int       // physical load, l[i] == Σ_j d[i][j]
	bTot   []int       // Σ_j b[i][j]
	lOld   []int       // d[i][i] at processor i's last balancing operation
	localT []int       // balancing operations processor i participated in

	metrics Metrics

	// sc is the scratch for the sequential API; concurrent deferred-op
	// workers allocate their own with NewScratch.
	sc *Scratch
}

// Scratch holds the reusable buffers one balancing operation needs. The
// sequential API uses the System's embedded Scratch; the sharded engine
// gives every resolution worker its own so operations over disjoint
// participant sets can execute concurrently without sharing any mutable
// state beyond the participants themselves.
type Scratch struct {
	candBuf    []int
	setBuf     []int
	oldL       []int
	newL       []int
	newBTot    []int
	classBuf   []int // qualifying classes collected by randClassRow
	unionBuf   []int // active-class union of a participant set
	mergeCur   []int // per-participant tail cursors of the union merge
	mergeSelf  []int // per-participant pending self classes of the merge
	mark       []int // per-class stamp marks backing CheckInvariants
	stamp      int
	classIdx   []int // class -> position in the current union
	dMat, bMat []int // union×participants gather matrices for redistribute
}

// newScratch builds a Scratch for n processors and balancing sets of at
// most m participants.
func newScratch(n, m int) *Scratch {
	return &Scratch{
		candBuf:   make([]int, 0, m),
		setBuf:    make([]int, 0, m),
		oldL:      make([]int, m),
		newL:      make([]int, m),
		newBTot:   make([]int, m),
		mergeCur:  make([]int, m),
		mergeSelf: make([]int, m),
		mark:      make([]int, n),
		classIdx:  make([]int, n),
	}
}

// NewScratch returns a fresh Scratch sized for this system, for callers
// that resolve deferred balancing operations concurrently (one Scratch per
// worker; a Scratch must not be shared between concurrently executing
// operations).
func (s *System) NewScratch() *Scratch {
	return newScratch(s.n, s.params.Delta+2)
}

// NewSystem creates a balanced-empty system of n processors. The selector
// must be built for the same n. The RNG drives candidate selection and all
// random choices of the algorithm.
func NewSystem(n int, p Params, sel topology.Selector, r *rng.RNG) (*System, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: need n >= 2 processors, got %d", n)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if sel == nil || r == nil {
		return nil, fmt.Errorf("core: selector and rng must be non-nil")
	}
	if sel.N() != n {
		return nil, fmt.Errorf("core: selector built for %d processors, system has %d", sel.N(), n)
	}
	m := p.Delta + 2 // balancing set is at most δ+1, class recovery adds one
	// One backing array serves every row's pinned self entry; a row that
	// outgrows its one-entry slice reallocates independently on append.
	backing := make([]classEntry, n)
	rows := make([]sparseRow, n)
	for i := range rows {
		backing[i] = classEntry{cls: i}
		rows[i] = sparseRow{self: i, entries: backing[i : i+1 : i+1]}
	}
	return &System{
		n:      n,
		params: p,
		sel:    sel,
		rng:    r,
		rows:   rows,
		l:      make([]int, n),
		bTot:   make([]int, n),
		lOld:   make([]int, n),
		localT: make([]int, n),
		sc:     newScratch(n, m),
	}, nil
}

// Name identifies the algorithm in experiment output.
func (s *System) Name() string {
	return fmt.Sprintf("LM(f=%g,δ=%d,C=%d,%s)", s.params.F, s.params.Delta, s.params.C, s.sel.Name())
}

// N returns the number of processors.
func (s *System) N() int { return s.n }

// Params returns the algorithm parameters.
func (s *System) Params() Params { return s.params }

// Load returns the physical load of processor i.
func (s *System) Load(i int) int { return s.l[i] }

// Loads appends the physical loads of all processors to dst and returns it.
func (s *System) Loads(dst []int) []int { return append(dst[:0], s.l...) }

// VirtualLoad returns l[i] + Σ_j b[i][j] — the load the analysis sees
// (Theorem 4 works on virtual loads; physical load is at most C below it).
func (s *System) VirtualLoad(i int) int { return s.l[i] + s.bTot[i] }

// TotalLoad returns the number of packets in the system.
func (s *System) TotalLoad() int {
	sum := 0
	for _, v := range s.l {
		sum += v
	}
	return sum
}

// LocalTime returns the number of balancing operations processor i has
// participated in — the paper's local clock t'.
func (s *System) LocalTime(i int) int { return s.localT[i] }

// TriggerBase returns l_old for processor i: its self-generated load at its
// last balancing operation, against which the factor-f trigger compares.
func (s *System) TriggerBase(i int) int { return s.lOld[i] }

// Metrics returns a snapshot of the activity counters.
func (s *System) Metrics() Metrics { return s.metrics }

// AbsorbMetrics folds externally accumulated counters (per-lane or
// per-worker partial Metrics from a sharded run) into the system's own, so
// Metrics and CheckInvariants see the complete totals.
func (s *System) AbsorbMetrics(m Metrics) { s.metrics.Add(m) }

// D returns d[i][j] (real packets of class j on i); for tests and
// experiment introspection.
func (s *System) D(i, j int) int { return s.rows[i].getD(j) }

// B returns b[i][j] (borrow markers of class j on i).
func (s *System) B(i, j int) int { return s.rows[i].getB(j) }

// Borrowed returns the number of outstanding borrow markers of processor i.
func (s *System) Borrowed(i int) int { return s.bTot[i] }

// ActiveClasses returns the number of classes processor i currently holds
// (d or b nonzero) — the per-row cost driver of a balancing operation.
func (s *System) ActiveClasses(i int) int { return s.rows[i].active() }

// NNZ returns the total number of nonzero per-class cells across all
// processors — the memory footprint driver of the sparse representation.
func (s *System) NNZ() int {
	total := 0
	for i := range s.rows {
		total += s.rows[i].active()
	}
	return total
}

// ForceBalance initiates a balancing operation on processor i regardless of
// the factor-f trigger. It exists for benchmarks and experiment harnesses;
// the algorithm itself only balances through the trigger.
func (s *System) ForceBalance(i int) { s.balance(i, s.rng, s.sc, &s.metrics) }

// Generate adds one self-generated packet to processor i. If i holds
// borrow markers, the new packet repays a debt instead (appendix: the
// marker's class receives the packet), leaving virtual loads unchanged.
// May trigger a balancing operation.
func (s *System) Generate(i int) { s.generate(i, s.rng, s.sc, &s.metrics) }

func (s *System) generate(i int, r *rng.RNG, sc *Scratch, m *Metrics) {
	if s.bTot[i] > 0 {
		j := s.randClass(i, func(e *classEntry) bool { return e.b > 0 }, r, sc)
		s.rows[i].add(j, +1, -1)
		s.bTot[i]--
	} else {
		s.rows[i].own().d++
	}
	s.l[i]++
	m.Generated++
	s.maybeBalance(i, r, sc, m)
}

// Consume removes one packet from processor i, borrowing from a foreign
// class if i has no self-generated packets left. It returns false if i has
// no load at all. May trigger balancing operations (on i, or on a class
// owner during borrow settlement).
func (s *System) Consume(i int) bool { return s.consume(i, s.rng, s.sc, &s.metrics) }

func (s *System) consume(i int, r *rng.RNG, sc *Scratch, m *Metrics) bool {
	if s.l[i] == 0 {
		m.ConsumeNoLoad++
		return false
	}
	row := &s.rows[i]
	if row.own().d > 0 {
		row.own().d--
		s.l[i]--
		m.Consumed++
		s.maybeBalance(i, r, sc, m)
		return true
	}
	// d[i][i] == 0 but l > 0: borrow. Each settlement clears at least one
	// marker, so the loop terminates within C+2 rounds.
	for attempt := 0; attempt <= s.params.C+2; attempt++ {
		if s.l[i] == 0 {
			// Settlement rebalancing may have migrated all load away.
			m.ConsumeNoLoad++
			return false
		}
		if row.own().d > 0 {
			// Settlement rebalancing gave i self packets back.
			row.own().d--
			s.l[i]--
			m.Consumed++
			s.maybeBalance(i, r, sc, m)
			return true
		}
		if s.bTot[i] < s.params.C {
			j := s.randClass(i, func(e *classEntry) bool { return e.d > 0 && e.b == 0 }, r, sc)
			if j >= 0 {
				row.add(j, -1, +1)
				s.bTot[i]++
				s.l[i]--
				m.TotalBorrow++
				m.Consumed++
				return true
			}
		}
		// No borrow slot: settle a random outstanding marker first.
		j := s.randClass(i, func(e *classEntry) bool { return e.b > 0 }, r, sc)
		if j < 0 {
			// No markers and no borrowable class would mean l == 0;
			// unreachable, but fail safe rather than loop.
			break
		}
		s.settle(i, j, r, sc, m)
	}
	m.ConsumeNoLoad++
	return false
}

// randClass picks a uniformly random class for processor i among the
// active classes whose entry satisfies pred, via reservoir sampling over
// the qualifying classes in ascending order. Scanning in ascending class
// order keeps the RNG consumption identical to a dense 0..n-1 scan (zero
// cells never qualify under any of the algorithm's predicates). It returns
// -1 if no class qualifies.
func (s *System) randClass(i int, pred func(e *classEntry) bool, r *rng.RNG, sc *Scratch) int {
	pick, buf := randClassRow(&s.rows[i], pred, r, sc.classBuf)
	sc.classBuf = buf
	return pick
}

// randClassRow is randClass over an explicit row and caller-owned buffer,
// shared between the sequential path and the per-shard Lane path (which
// must not touch the System's scratch). The sorted-tail row invariant
// yields the qualifying classes in ascending order directly — the self
// entry, pinned out of place at index 0, is slotted into position on the
// fly — so no per-call sort is needed. It returns the pick and the
// (possibly regrown) buffer.
func randClassRow(row *sparseRow, pred func(e *classEntry) bool, r *rng.RNG, buf []int) (int, []int) {
	buf = buf[:0]
	selfCls := row.entries[0].cls
	selfDone := !pred(&row.entries[0])
	for k := 1; k < len(row.entries); k++ {
		e := &row.entries[k]
		if !selfDone && e.cls > selfCls {
			buf = append(buf, selfCls)
			selfDone = true
		}
		if pred(e) {
			buf = append(buf, e.cls)
		}
	}
	if !selfDone {
		buf = append(buf, selfCls)
	}
	pick := -1
	for k, cls := range buf {
		if r.Intn(k+1) == 0 {
			pick = cls
		}
	}
	return pick, buf
}

// trigFired reports the factor-f condition on a self-load d against the
// trigger base old. The strict-change guard (d != old) keeps the old == 0
// case from firing continuously (see doc.go).
func trigFired(d, old int, f float64) bool {
	if d > old && float64(d) >= f*float64(old) {
		return true
	}
	return d < old && float64(d)*f <= float64(old)
}

// TriggerPending reports whether processor i's factor-f trigger condition
// currently holds — the condition under which the sequential path fires a
// balancing operation. The sharded engine uses it to re-verify a deferred
// initiation at the tick barrier: an earlier operation in the same barrier
// may have included i as a partner and reset its trigger base.
func (s *System) TriggerPending(i int) bool {
	return trigFired(s.rows[i].own().d, s.lOld[i], s.params.F)
}

// maybeBalance fires a balancing operation if processor i's self-generated
// load has changed by at least the factor f since its last balancing
// operation.
func (s *System) maybeBalance(i int, r *rng.RNG, sc *Scratch, m *Metrics) {
	if trigFired(s.rows[i].own().d, s.lOld[i], s.params.F) {
		s.balance(i, r, sc, m)
	}
}

// balance performs a full balancing operation initiated by processor init:
// δ random partners are selected and all class vectors of the δ+1
// participants are snake-redistributed. Every participant's local clock
// ticks, lOld resets, and own-class borrow markers are cleared (simulated
// decrease).
func (s *System) balance(init int, r *rng.RNG, sc *Scratch, m *Metrics) {
	sc.candBuf = s.sel.Select(init, s.params.Delta, r, sc.candBuf)
	s.balanceSet(init, sc.candBuf, r, sc, m)
}

// balanceSet is balance with the δ partners already chosen; the sharded
// engine pre-draws them from the operation's private stream during barrier
// planning (the participant set decides which operations may resolve
// concurrently).
func (s *System) balanceSet(init int, partners []int, r *rng.RNG, sc *Scratch, m *Metrics) {
	sc.setBuf = append(sc.setBuf[:0], init)
	sc.setBuf = append(sc.setBuf, partners...)
	set := sc.setBuf
	m.BalanceOps++
	s.redistribute(set, r, sc, m)
	for _, p := range set {
		if !s.params.InitiatorOnlyReset || p == init {
			s.lOld[p] = s.rows[p].own().d
		}
		s.localT[p]++
	}
	for _, p := range set {
		if own := s.rows[p].own().b; own > 0 {
			// The owner consumes its own phantoms: simulated decrease.
			s.bTot[p] -= own
			s.rows[p].own().b = 0
			m.DecreaseSim++
		}
	}
}

// activeUnion collects the ascending union of classes held (d or b
// nonzero) by any processor in set and records each class's union position
// in sc.classIdx. The sorted-tail row invariant turns this into an np-way
// merge — one cursor per participant tail, plus each participant's pinned
// self entry slotted in by value — costing O(union × np) comparisons where
// the former collect-and-sort paid O(union log union); with rows hundreds
// of classes wide under load-accumulating workloads, that sort dominated
// whole-simulation profiles.
func (s *System) activeUnion(set []int, sc *Scratch) []int {
	const maxInt = int(^uint(0) >> 1)
	np := len(set)
	cur := sc.mergeCur[:np]
	selfs := sc.mergeSelf[:np]
	for k, p := range set {
		cur[k] = 1
		e := &s.rows[p].entries[0]
		if e.d != 0 || e.b != 0 {
			selfs[k] = e.cls
		} else {
			selfs[k] = maxInt // pinned empty self entry: not active
		}
	}
	buf := sc.unionBuf[:0]
	for {
		best := maxInt
		for k, p := range set {
			if ents := s.rows[p].entries; cur[k] < len(ents) && ents[cur[k]].cls < best {
				best = ents[cur[k]].cls
			}
			if selfs[k] < best {
				best = selfs[k]
			}
		}
		if best == maxInt {
			break
		}
		for k, p := range set {
			if ents := s.rows[p].entries; cur[k] < len(ents) && ents[cur[k]].cls == best {
				cur[k]++
			}
			if selfs[k] == best {
				selfs[k] = maxInt
			}
		}
		sc.classIdx[best] = len(buf)
		buf = append(buf, best)
	}
	sc.unionBuf = buf
	return buf
}

// redistribute snake-distributes the d classes followed by the b classes
// of the participant set, maintaining l and bTot and counting migrations.
// Only the union of the participants' active classes is visited; all other
// classes have zero totals, for which the dense formulation would not
// advance the snake cursor either, so the result is identical. The
// participants' counts are gathered into union×m scratch matrices and the
// rows rebuilt wholesale afterwards, keeping the hot loop free of row
// searches.
func (s *System) redistribute(set []int, r *rng.RNG, sc *Scratch, m *Metrics) {
	np := len(set)
	oldL := sc.oldL[:np]
	newL := sc.newL[:np]
	newBTot := sc.newBTot[:np]
	for k, p := range set {
		oldL[k] = s.l[p]
		newL[k] = 0
		newBTot[k] = 0
	}
	classes := s.activeUnion(set, sc)
	u := len(classes)
	need := u * np
	if cap(sc.dMat) < need {
		sc.dMat = make([]int, need)
		sc.bMat = make([]int, need)
	}
	dMat := sc.dMat[:need]
	bMat := sc.bMat[:need]
	for i := range dMat {
		dMat[i] = 0
		bMat[i] = 0
	}
	for k, p := range set {
		entries := s.rows[p].entries
		for e := range entries {
			ent := &entries[e]
			if ent.d == 0 && ent.b == 0 {
				continue
			}
			ci := sc.classIdx[ent.cls]
			dMat[ci*np+k] = ent.d
			bMat[ci*np+k] = ent.b
		}
	}
	cur := newSnakeCursor(np, r.Intn(np))
	for ci := 0; ci < u; ci++ {
		row := dMat[ci*np : ci*np+np]
		total := 0
		for _, v := range row {
			total += v
		}
		if total == 0 {
			continue // cursor need not advance for empty classes
		}
		cur.distribute(total, func(k, cnt int) {
			row[k] = cnt
			newL[k] += cnt
		})
	}
	for ci := 0; ci < u; ci++ {
		row := bMat[ci*np : ci*np+np]
		total := 0
		for _, v := range row {
			total += v
		}
		if total == 0 {
			continue
		}
		cur.distribute(total, func(k, cnt int) {
			row[k] = cnt
			newBTot[k] += cnt
		})
	}
	for k, p := range set {
		s.rows[p].rebuild(classes, dMat, bMat, k, np)
		s.l[p] = newL[k]
		s.bTot[p] = newBTot[k]
		if recv := newL[k] - oldL[k]; recv > 0 {
			m.Migrations += int64(recv)
		}
	}
}

// CheckInvariants verifies the structural invariants documented in doc.go —
// non-negative counts, l[i] == Σ_j d[i][j], bTot[i] == Σ_j b[i][j], exact
// packet conservation (TotalLoad == Generated − Consumed) — plus the
// sparse bookkeeping: every row's self entry is pinned at index 0, no
// foreign entry is empty, the tail is sorted ascending by class, and no
// class appears in a row twice. It is O(total nonzero + n) and intended
// for tests.
func (s *System) CheckInvariants() error {
	sc := s.sc
	var totalLoad int64
	for i := 0; i < s.n; i++ {
		row := &s.rows[i]
		if len(row.entries) == 0 || row.entries[0].cls != i || row.self != i {
			return fmt.Errorf("core: row %d: self entry not pinned at index 0", i)
		}
		sc.stamp++
		sumD, sumB := 0, 0
		for k := range row.entries {
			e := &row.entries[k]
			if e.cls < 0 || e.cls >= s.n {
				return fmt.Errorf("core: row %d: class %d out of range", i, e.cls)
			}
			if e.d < 0 {
				return fmt.Errorf("core: d[%d][%d] = %d < 0", i, e.cls, e.d)
			}
			if e.b < 0 {
				return fmt.Errorf("core: b[%d][%d] = %d < 0", i, e.cls, e.b)
			}
			if sc.mark[e.cls] == sc.stamp {
				return fmt.Errorf("core: row %d: class %d appears twice", i, e.cls)
			}
			sc.mark[e.cls] = sc.stamp
			if k > 0 && e.d == 0 && e.b == 0 {
				return fmt.Errorf("core: row %d: empty entry for class %d not compacted", i, e.cls)
			}
			if k > 1 && e.cls <= row.entries[k-1].cls {
				return fmt.Errorf("core: row %d: tail not sorted at index %d (%d after %d)",
					i, k, e.cls, row.entries[k-1].cls)
			}
			sumD += e.d
			sumB += e.b
		}
		if s.l[i] != sumD {
			return fmt.Errorf("core: l[%d] = %d but Σd = %d", i, s.l[i], sumD)
		}
		if s.bTot[i] != sumB {
			return fmt.Errorf("core: bTot[%d] = %d but Σb = %d", i, s.bTot[i], sumB)
		}
		totalLoad += int64(s.l[i])
	}
	if want := s.metrics.Generated - s.metrics.Consumed; totalLoad != want {
		return fmt.Errorf("core: total load %d but generated−consumed = %d", totalLoad, want)
	}
	return nil
}

// settle resolves one outstanding borrow marker b[i][j] (see doc.go for
// the three cases).
func (s *System) settle(i, j int, r *rng.RNG, sc *Scratch, m *Metrics) {
	if j == i {
		// The owner clears its own phantoms: simulated decrease.
		own := s.rows[i].own()
		s.bTot[i] -= own.b
		own.b = 0
		m.DecreaseSim++
		return
	}
	if s.rows[j].own().d > 0 {
		s.exchange(i, j, r, sc, m)
		return
	}
	// Borrow fail: the class owner has no real self packets. Run the §4
	// recovery — a class-j-only balancing over j, δ random candidates and
	// i — then settle if it produced packets at j.
	m.BorrowFail++
	s.classBalance(j, i, r, sc, m)
	if s.rows[i].getB(j) == 0 {
		// The marker migrated away (another participant now carries the
		// debt); i is free to borrow again.
		return
	}
	if s.rows[j].own().d > 0 {
		s.exchange(i, j, r, sc, m)
		return
	}
	// Class j has no real packets among the participants: force-clear the
	// marker with a simulated decrease accounted to class j. Unreachable
	// under the paper's assumptions; kept for progress under adversarial
	// schedules.
	s.rows[i].add(j, 0, -1)
	s.bTot[i]--
	m.ForcedSettle++
	m.DecreaseSim++
}

// exchange performs the paper's remote-borrow settlement: processor j
// migrates one real class-j packet to i, i clears its class-j marker, and
// j treats the loss as a simulated workload decrease (which may trigger a
// balancing operation on j).
func (s *System) exchange(i, j int, r *rng.RNG, sc *Scratch, m *Metrics) {
	s.rows[j].own().d--
	s.l[j]--
	s.rows[i].add(j, +1, -1)
	s.l[i]++
	s.bTot[i]--
	m.RemoteBorrow++
	m.DecreaseSim++
	s.maybeBalance(j, r, sc, m)
}

// classBalance redistributes only class cls over the owner, δ random
// candidates of the owner, and the extra processor (the borrower), leaving
// every other class untouched. Markers of class cls arriving at the owner
// are consumed (the paper: "at least one processor migrates its borrowed
// packet to j where it is also consumed").
func (s *System) classBalance(owner, extra int, r *rng.RNG, sc *Scratch, m *Metrics) {
	cls := owner // the class being balanced is the owner's own class
	m.ClassBalanceOps++
	sc.candBuf = s.sel.Select(owner, s.params.Delta, r, sc.candBuf)
	sc.setBuf = append(sc.setBuf[:0], owner)
	for _, c := range sc.candBuf {
		if c != extra {
			sc.setBuf = append(sc.setBuf, c)
		}
	}
	if extra != owner {
		sc.setBuf = append(sc.setBuf, extra)
	}
	set := sc.setBuf
	np := len(set)

	totalD, totalB := 0, 0
	for _, p := range set {
		totalD += s.rows[p].getD(cls)
		totalB += s.rows[p].getB(cls)
	}
	cur := newSnakeCursor(np, r.Intn(np))
	cur.distribute(totalD, func(k, cnt int) {
		p := set[k]
		delta := cnt - s.rows[p].getD(cls)
		s.rows[p].setD(cls, cnt)
		s.l[p] += delta
		if delta > 0 {
			m.Migrations += int64(delta)
		}
	})
	cur.distribute(totalB, func(k, cnt int) {
		p := set[k]
		delta := cnt - s.rows[p].getB(cls)
		s.rows[p].setB(cls, cnt)
		s.bTot[p] += delta
	})
	// Markers of the class that landed on the owner are consumed there.
	if own := s.rows[owner].own().b; own > 0 {
		s.bTot[owner] -= own
		s.rows[owner].own().b = 0
		m.DecreaseSim++
	}
}
