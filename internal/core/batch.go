package core

import "lmbalance/internal/rng"

// Batched balancing entry points for the sharded simulation engine
// (internal/sim). During a tick's step phase each shard drives its Lane
// and defers every balancing condition into a per-shard mailbox; at the
// tick barrier the engine sorts the deferred operations into canonical
// (shard, local index) order and resolves them through these entry points.
// Trigger operations over disjoint participant sets execute concurrently
// on worker goroutines, each with its private per-operation RNG stream, a
// per-worker Scratch and a per-worker Metrics; settlements run serially on
// the barrier stream. Because a balancing operation reads and writes only
// its δ+1 participants plus the caller-owned triple, concurrent execution
// of disjoint operations is equivalent to executing them serially in
// canonical order — which is what keeps the sharded engine bit-identical
// for every worker count.

// SelectPartners draws δ distinct balancing partners for an initiation by
// init from the given stream, appending to dst. The sharded engine
// pre-draws partners from each operation's private stream during barrier
// planning, before deciding which operations may resolve concurrently.
func (s *System) SelectPartners(init int, r *rng.RNG, dst []int) []int {
	return s.sel.Select(init, s.params.Delta, r, dst)
}

// BalanceWithPartners performs one full balancing operation initiated by
// init with the partner set already drawn (via SelectPartners from the
// same stream r). All mutated state belongs to the participants, r, sc
// and m, so calls over disjoint participant sets may run concurrently.
func (s *System) BalanceWithPartners(init int, partners []int, r *rng.RNG, sc *Scratch, m *Metrics) {
	s.balanceSet(init, partners, r, sc, m)
}

// SettleConsume completes a consume that a Lane deferred because it
// required marker settlement. It runs the full sequential consume path —
// settlement, class recovery, any cascading balancing operations — against
// the System's own scratch and metrics, and must only be called serially
// (the barrier's settlement pass). It returns whether a packet was
// consumed.
func (s *System) SettleConsume(i int, r *rng.RNG) bool {
	return s.consume(i, r, s.sc, &s.metrics)
}
