package core

import (
	"testing"
	"testing/quick"

	"lmbalance/internal/rng"
)

func TestSnakeSingleClass(t *testing.T) {
	cur := newSnakeCursor(4, 0)
	got := make([]int, 4)
	cur.distribute(10, func(p, cnt int) { got[p] = cnt })
	// 10 over 4: base 2, extras at positions 0,1.
	want := []int{3, 3, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distribute(10) = %v, want %v", got, want)
		}
	}
	if cur.offset != 2 {
		t.Fatalf("offset = %d, want 2", cur.offset)
	}
}

func TestSnakeOffsetWraps(t *testing.T) {
	cur := newSnakeCursor(3, 2)
	got := make([]int, 3)
	cur.distribute(4, func(p, cnt int) { got[p] = cnt })
	// base 1, one extra at position 2.
	if got[0] != 1 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("got %v", got)
	}
	if cur.offset != 0 {
		t.Fatalf("offset = %d, want 0", cur.offset)
	}
}

func TestSnakeZeroTotal(t *testing.T) {
	cur := newSnakeCursor(3, 1)
	got := []int{9, 9, 9}
	cur.distribute(0, func(p, cnt int) { got[p] = cnt })
	for _, v := range got {
		if v != 0 {
			t.Fatalf("zero total must assign zeros, got %v", got)
		}
	}
	if cur.offset != 1 {
		t.Fatal("offset must not advance for zero remainder")
	}
}

func TestSnakePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("m=0 did not panic")
		}
	}()
	newSnakeCursor(0, 0)
}

func TestSnakeNegativeTotalPanics(t *testing.T) {
	cur := newSnakeCursor(2, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("negative total did not panic")
		}
	}()
	cur.distribute(-1, func(p, cnt int) {})
}

// TestSnakeProperties verifies the two ±1 guarantees and conservation over
// random multi-class sequences — the exact invariants §4 of the paper
// demands from the "snake like distribution".
func TestSnakeProperties(t *testing.T) {
	r := rng.New(31)
	prop := func(mRaw, classesRaw uint8, seed uint16) bool {
		m := 2 + int(mRaw)%7              // 2..8 participants
		classes := 1 + int(classesRaw)%20 // 1..20 classes
		rr := rng.New(uint64(seed))
		cur := newSnakeCursor(m, rr.Intn(m))
		perProc := make([]int, m)
		for c := 0; c < classes; c++ {
			total := rr.Intn(40)
			assigned := make([]int, m)
			sum := 0
			cur.distribute(total, func(p, cnt int) {
				assigned[p] = cnt
				sum += cnt
			})
			if sum != total {
				return false // conservation violated
			}
			lo, hi := assigned[0], assigned[0]
			for _, v := range assigned {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
				if v < 0 {
					return false
				}
			}
			if hi-lo > 1 {
				return false // per-class ±1 violated
			}
			for p := range perProc {
				perProc[p] += assigned[p]
			}
		}
		lo, hi := perProc[0], perProc[0]
		for _, v := range perProc {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return hi-lo <= 1 // per-participant grand total ±1
	}
	_ = r
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
