package core

import (
	"fmt"
	"testing"

	"lmbalance/internal/rng"
	"lmbalance/internal/topology"
)

// TestSparseMatchesDenseReference is the proof obligation of the sparse
// storage rework: driven off identical RNG streams, the sparse System and
// the dense reference implementation must be step-for-step bit-identical —
// same d and b matrices, same loads, same trigger state, same metrics.
// Cheap per-processor state is compared after every operation; the full
// n×n matrices and the sparse invariants are checked periodically and at
// the end.
func TestSparseMatchesDenseReference(t *testing.T) {
	configs := []struct {
		n int
		p Params
	}{
		{4, Params{F: 1.1, Delta: 1, C: 1}},
		{8, DefaultParams()},
		{12, Params{F: 1.5, Delta: 3, C: 2}},
		{16, Params{F: 1.0, Delta: 2, C: 3}},
		{24, Params{F: 1.8, Delta: 2, C: 6}},
		{9, Params{F: 1.1, Delta: 1, C: 4, InitiatorOnlyReset: true}},
	}
	const steps = 12000
	for ci, cfg := range configs {
		cfg := cfg
		t.Run(fmt.Sprintf("n=%d_f=%g_δ=%d_C=%d", cfg.n, cfg.p.F, cfg.p.Delta, cfg.p.C), func(t *testing.T) {
			seed := uint64(1000 + 17*ci)
			sparse, err := NewSystem(cfg.n, cfg.p, topology.NewGlobal(cfg.n), rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			dense := newDenseSystem(cfg.n, cfg.p, topology.NewGlobal(cfg.n), rng.New(seed))
			op := rng.New(seed + 7777)

			compareFull := func(step int) {
				t.Helper()
				for p := 0; p < cfg.n; p++ {
					for j := 0; j < cfg.n; j++ {
						if sparse.D(p, j) != dense.d[p*cfg.n+j] {
							t.Fatalf("step %d: d[%d][%d] sparse=%d dense=%d",
								step, p, j, sparse.D(p, j), dense.d[p*cfg.n+j])
						}
						if sparse.B(p, j) != dense.b[p*cfg.n+j] {
							t.Fatalf("step %d: b[%d][%d] sparse=%d dense=%d",
								step, p, j, sparse.B(p, j), dense.b[p*cfg.n+j])
						}
					}
				}
				if err := sparse.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}

			for step := 0; step < steps; step++ {
				i := op.Intn(cfg.n)
				if op.Bernoulli(0.55) {
					sparse.Generate(i)
					dense.Generate(i)
				} else {
					gotS := sparse.Consume(i)
					gotD := dense.Consume(i)
					if gotS != gotD {
						t.Fatalf("step %d: Consume(%d) sparse=%v dense=%v", step, i, gotS, gotD)
					}
				}
				for p := 0; p < cfg.n; p++ {
					if sparse.Load(p) != dense.l[p] ||
						sparse.Borrowed(p) != dense.bTot[p] ||
						sparse.TriggerBase(p) != dense.lOld[p] ||
						sparse.LocalTime(p) != dense.localT[p] {
						t.Fatalf("step %d: processor %d diverged: l %d/%d bTot %d/%d lOld %d/%d t' %d/%d",
							step, p,
							sparse.Load(p), dense.l[p],
							sparse.Borrowed(p), dense.bTot[p],
							sparse.TriggerBase(p), dense.lOld[p],
							sparse.LocalTime(p), dense.localT[p])
					}
				}
				if sparse.Metrics() != dense.metrics {
					t.Fatalf("step %d: metrics diverged:\nsparse %+v\ndense  %+v",
						step, sparse.Metrics(), dense.metrics)
				}
				if step%251 == 0 {
					compareFull(step)
				}
			}
			compareFull(steps)
			if sparse.Metrics().BalanceOps == 0 || sparse.Metrics().TotalBorrow == 0 {
				t.Fatalf("degenerate run, differential coverage too weak: %+v", sparse.Metrics())
			}
		})
	}
}

// TestSparseMatchesDenseOnDrain runs both implementations through a
// generate-heavy phase followed by a full drain (consume until the system
// is empty), hammering the borrow/settle/classBalance paths where the
// active sets shrink back to nothing, and requires identical states
// throughout plus a fully compacted sparse system at the end.
func TestSparseMatchesDenseOnDrain(t *testing.T) {
	const n = 10
	p := Params{F: 1.2, Delta: 2, C: 3}
	seed := uint64(4242)
	sparse, err := NewSystem(n, p, topology.NewGlobal(n), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	dense := newDenseSystem(n, p, topology.NewGlobal(n), rng.New(seed))
	op := rng.New(seed + 1)
	for step := 0; step < 4000; step++ {
		i := op.Intn(n)
		sparse.Generate(i)
		dense.Generate(i)
	}
	// Drain only from the upper half so the lower half's classes must be
	// settled remotely through borrows.
	for guard := 0; sparse.TotalLoad() > 0 && guard < 200000; guard++ {
		i := n/2 + op.Intn(n-n/2)
		gotS := sparse.Consume(i)
		gotD := dense.Consume(i)
		if gotS != gotD {
			t.Fatalf("drain: Consume(%d) sparse=%v dense=%v", i, gotS, gotD)
		}
		if !gotS {
			// This processor drained; a full sweep empties stragglers.
			for j := 0; j < n; j++ {
				gS := sparse.Consume(j)
				gD := dense.Consume(j)
				if gS != gD {
					t.Fatalf("drain sweep: Consume(%d) sparse=%v dense=%v", j, gS, gD)
				}
			}
		}
	}
	if sparse.TotalLoad() != 0 {
		t.Fatalf("system not drained: %d packets left", sparse.TotalLoad())
	}
	if sparse.Metrics() != dense.metrics {
		t.Fatalf("metrics diverged:\nsparse %+v\ndense  %+v", sparse.Metrics(), dense.metrics)
	}
	for p0 := 0; p0 < n; p0++ {
		for j := 0; j < n; j++ {
			if sparse.D(p0, j) != dense.d[p0*n+j] || sparse.B(p0, j) != dense.b[p0*n+j] {
				t.Fatalf("cell (%d,%d) diverged", p0, j)
			}
		}
	}
	if err := sparse.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every real packet is gone; only borrow markers may remain. The
	// active sets must have compacted down to exactly the marker cells.
	if nnz := sparse.NNZ(); nnz != countDenseNNZ(dense) {
		t.Fatalf("NNZ %d does not match dense nonzero count %d", nnz, countDenseNNZ(dense))
	}
}

func countDenseNNZ(s *denseSystem) int {
	nnz := 0
	for i := 0; i < s.n; i++ {
		for j := 0; j < s.n; j++ {
			if s.d[i*s.n+j] != 0 || s.b[i*s.n+j] != 0 {
				nnz++
			}
		}
	}
	return nnz
}
