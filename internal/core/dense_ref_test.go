package core

import (
	"lmbalance/internal/rng"
	"lmbalance/internal/topology"
)

// denseSystem is the original dense O(n²)-memory implementation of the
// algorithm, preserved verbatim as the reference oracle for the sparse
// System. Every random choice draws from the RNG in exactly the order the
// production code does, so driving both off identical seeds must yield
// bit-identical d/b/l state and metrics at every step
// (TestSparseMatchesDenseReference).
type denseSystem struct {
	n      int
	params Params
	sel    topology.Selector
	rng    *rng.RNG

	d      []int // d[i*n+j]: real packets of class j on processor i
	b      []int // b[i*n+j]: borrow markers of class j on processor i
	l      []int // physical load, l[i] == Σ_j d[i*n+j]
	bTot   []int // Σ_j b[i*n+j]
	lOld   []int // d[i][i] at processor i's last balancing operation
	localT []int // balancing operations processor i participated in

	metrics Metrics

	candBuf []int
	setBuf  []int
	oldL    []int
	newL    []int
	newBTot []int
}

func newDenseSystem(n int, p Params, sel topology.Selector, r *rng.RNG) *denseSystem {
	m := p.Delta + 2
	return &denseSystem{
		n:       n,
		params:  p,
		sel:     sel,
		rng:     r,
		d:       make([]int, n*n),
		b:       make([]int, n*n),
		l:       make([]int, n),
		bTot:    make([]int, n),
		lOld:    make([]int, n),
		localT:  make([]int, n),
		candBuf: make([]int, 0, p.Delta),
		setBuf:  make([]int, 0, m),
		oldL:    make([]int, m),
		newL:    make([]int, m),
		newBTot: make([]int, m),
	}
}

func (s *denseSystem) Generate(i int) {
	if s.bTot[i] > 0 {
		j := s.randClass(i, func(idx int) bool { return s.b[idx] > 0 })
		s.b[i*s.n+j]--
		s.bTot[i]--
		s.d[i*s.n+j]++
	} else {
		s.d[i*s.n+i]++
	}
	s.l[i]++
	s.metrics.Generated++
	s.maybeBalance(i)
}

func (s *denseSystem) Consume(i int) bool {
	if s.l[i] == 0 {
		s.metrics.ConsumeNoLoad++
		return false
	}
	if s.d[i*s.n+i] > 0 {
		s.d[i*s.n+i]--
		s.l[i]--
		s.metrics.Consumed++
		s.maybeBalance(i)
		return true
	}
	for attempt := 0; attempt <= s.params.C+2; attempt++ {
		if s.l[i] == 0 {
			s.metrics.ConsumeNoLoad++
			return false
		}
		if s.d[i*s.n+i] > 0 {
			s.d[i*s.n+i]--
			s.l[i]--
			s.metrics.Consumed++
			s.maybeBalance(i)
			return true
		}
		if s.bTot[i] < s.params.C {
			j := s.randClass(i, func(idx int) bool { return s.d[idx] > 0 && s.b[idx] == 0 })
			if j >= 0 {
				s.b[i*s.n+j]++
				s.bTot[i]++
				s.d[i*s.n+j]--
				s.l[i]--
				s.metrics.TotalBorrow++
				s.metrics.Consumed++
				return true
			}
		}
		j := s.randClass(i, func(idx int) bool { return s.b[idx] > 0 })
		if j < 0 {
			break
		}
		s.settle(i, j)
	}
	s.metrics.ConsumeNoLoad++
	return false
}

func (s *denseSystem) randClass(i int, pred func(idx int) bool) int {
	base := i * s.n
	pick := -1
	count := 0
	for j := 0; j < s.n; j++ {
		if pred(base + j) {
			count++
			if s.rng.Intn(count) == 0 {
				pick = j
			}
		}
	}
	return pick
}

func (s *denseSystem) maybeBalance(i int) {
	d := s.d[i*s.n+i]
	old := s.lOld[i]
	f := s.params.F
	if d > old && float64(d) >= f*float64(old) {
		s.balance(i)
		return
	}
	if d < old && float64(d)*f <= float64(old) {
		s.balance(i)
	}
}

func (s *denseSystem) balance(init int) {
	s.candBuf = s.sel.Select(init, s.params.Delta, s.rng, s.candBuf)
	s.setBuf = append(s.setBuf[:0], init)
	s.setBuf = append(s.setBuf, s.candBuf...)
	set := s.setBuf
	s.metrics.BalanceOps++
	s.redistribute(set)
	for _, p := range set {
		if !s.params.InitiatorOnlyReset || p == init {
			s.lOld[p] = s.d[p*s.n+p]
		}
		s.localT[p]++
	}
	for _, p := range set {
		if own := s.b[p*s.n+p]; own > 0 {
			s.bTot[p] -= own
			s.b[p*s.n+p] = 0
			s.metrics.DecreaseSim++
		}
	}
}

func (s *denseSystem) redistribute(set []int) {
	m := len(set)
	oldL := s.oldL[:m]
	newL := s.newL[:m]
	newBTot := s.newBTot[:m]
	for k, p := range set {
		oldL[k] = s.l[p]
		newL[k] = 0
		newBTot[k] = 0
	}
	cur := newSnakeCursor(m, s.rng.Intn(m))
	for j := 0; j < s.n; j++ {
		total := 0
		for _, p := range set {
			total += s.d[p*s.n+j]
		}
		if total == 0 {
			continue
		}
		cur.distribute(total, func(k, cnt int) {
			s.d[set[k]*s.n+j] = cnt
			newL[k] += cnt
		})
	}
	for j := 0; j < s.n; j++ {
		total := 0
		for _, p := range set {
			total += s.b[p*s.n+j]
		}
		if total == 0 {
			continue
		}
		cur.distribute(total, func(k, cnt int) {
			s.b[set[k]*s.n+j] = cnt
			newBTot[k] += cnt
		})
	}
	for k, p := range set {
		s.l[p] = newL[k]
		s.bTot[p] = newBTot[k]
		if recv := newL[k] - oldL[k]; recv > 0 {
			s.metrics.Migrations += int64(recv)
		}
	}
}

func (s *denseSystem) settle(i, j int) {
	if j == i {
		s.bTot[i] -= s.b[i*s.n+i]
		s.b[i*s.n+i] = 0
		s.metrics.DecreaseSim++
		return
	}
	if s.d[j*s.n+j] > 0 {
		s.exchange(i, j)
		return
	}
	s.metrics.BorrowFail++
	s.classBalance(j, i)
	if s.b[i*s.n+j] == 0 {
		return
	}
	if s.d[j*s.n+j] > 0 {
		s.exchange(i, j)
		return
	}
	s.b[i*s.n+j]--
	s.bTot[i]--
	s.metrics.ForcedSettle++
	s.metrics.DecreaseSim++
}

func (s *denseSystem) exchange(i, j int) {
	s.d[j*s.n+j]--
	s.l[j]--
	s.d[i*s.n+j]++
	s.l[i]++
	s.b[i*s.n+j]--
	s.bTot[i]--
	s.metrics.RemoteBorrow++
	s.metrics.DecreaseSim++
	s.maybeBalance(j)
}

func (s *denseSystem) classBalance(owner, extra int) {
	cls := owner
	s.metrics.ClassBalanceOps++
	s.candBuf = s.sel.Select(owner, s.params.Delta, s.rng, s.candBuf)
	s.setBuf = append(s.setBuf[:0], owner)
	for _, c := range s.candBuf {
		if c != extra {
			s.setBuf = append(s.setBuf, c)
		}
	}
	if extra != owner {
		s.setBuf = append(s.setBuf, extra)
	}
	set := s.setBuf
	m := len(set)

	totalD, totalB := 0, 0
	for _, p := range set {
		totalD += s.d[p*s.n+cls]
		totalB += s.b[p*s.n+cls]
	}
	cur := newSnakeCursor(m, s.rng.Intn(m))
	cur.distribute(totalD, func(k, cnt int) {
		p := set[k]
		delta := cnt - s.d[p*s.n+cls]
		s.d[p*s.n+cls] = cnt
		s.l[p] += delta
		if delta > 0 {
			s.metrics.Migrations += int64(delta)
		}
	})
	cur.distribute(totalB, func(k, cnt int) {
		p := set[k]
		delta := cnt - s.b[p*s.n+cls]
		s.b[p*s.n+cls] = cnt
		s.bTot[p] += delta
	})
	if own := s.b[owner*s.n+cls]; own > 0 {
		s.bTot[owner] -= own
		s.b[owner*s.n+cls] = 0
		s.metrics.DecreaseSim++
	}
}
