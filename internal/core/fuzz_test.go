package core

import (
	"testing"

	"lmbalance/internal/rng"
	"lmbalance/internal/topology"
)

// FuzzOpSequence drives a System with an arbitrary byte-encoded sequence
// of operations and checks every structural invariant afterwards. Each
// byte encodes (processor, op): op = b&1 (generate/consume), processor =
// (b>>1) % n. Parameters derive from the first three bytes.
func FuzzOpSequence(f *testing.F) {
	f.Add([]byte{0x10, 0x20, 0x30, 0x01, 0x02, 0x03, 0xff, 0x80})
	f.Add([]byte{0x00, 0x00, 0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0x00, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		n := 2 + int(data[0])%14
		delta := 1 + int(data[1])%3
		if delta > n-1 {
			delta = n - 1
		}
		fv := 1.0 + float64(data[2]%90)/100.0 // 1.00..1.89
		if fv >= float64(delta)+1 {
			fv = float64(delta) + 0.9
		}
		c := 1 + int(data[3])%6
		s, err := NewSystem(n, Params{F: fv, Delta: delta, C: c}, topology.NewGlobal(n), rng.New(uint64(len(data))))
		if err != nil {
			t.Fatalf("construction failed for derived params: %v", err)
		}
		for _, b := range data[4:] {
			p := (int(b) >> 1) % n
			if b&1 == 0 {
				s.Generate(p)
			} else {
				s.Consume(p)
			}
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		// Loads are consistent with the snapshot API.
		loads := s.Loads(nil)
		total := 0
		for i, v := range loads {
			if v != s.Load(i) {
				t.Fatalf("snapshot mismatch at %d", i)
			}
			total += v
		}
		if total != s.TotalLoad() {
			t.Fatal("TotalLoad mismatch")
		}
	})
}

// FuzzSnakeDistribute checks the balanced-remainder distribution on
// arbitrary class sequences: conservation, non-negativity, per-class ±1,
// per-participant grand totals ±1.
func FuzzSnakeDistribute(f *testing.F) {
	f.Add([]byte{3, 1, 10, 20, 0, 7})
	f.Add([]byte{8, 0, 255, 255, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		m := 1 + int(data[0])%9
		start := int(data[1])
		cur := newSnakeCursor(m, start)
		perProc := make([]int, m)
		for _, b := range data[2:] {
			total := int(b)
			sum := 0
			assigned := make([]int, m)
			cur.distribute(total, func(p, cnt int) {
				if cnt < 0 {
					t.Fatalf("negative assignment %d", cnt)
				}
				assigned[p] = cnt
				sum += cnt
			})
			if sum != total {
				t.Fatalf("conservation: distributed %d of %d", sum, total)
			}
			lo, hi := assigned[0], assigned[0]
			for _, v := range assigned {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
				_ = v
			}
			if hi-lo > 1 {
				t.Fatalf("per-class spread %d", hi-lo)
			}
			for p := range perProc {
				perProc[p] += assigned[p]
			}
		}
		lo, hi := perProc[0], perProc[0]
		for _, v := range perProc {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo > 1 {
			t.Fatalf("grand-total spread %d", hi-lo)
		}
	})
}
