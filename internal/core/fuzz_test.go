package core

import (
	"testing"

	"lmbalance/internal/rng"
	"lmbalance/internal/topology"
)

// FuzzOpSequence drives a System with an arbitrary byte-encoded sequence
// of operations and checks every structural invariant — including the
// sparse active-set bookkeeping — as it goes. Each byte encodes
// (processor, op): op = b&1 (generate/consume), processor = (b>>1) % n.
// Parameters derive from the first four bytes. After the scripted
// sequence the whole system is drained through Consume, which hammers the
// borrow/settle/classBalance paths while the active sets compact back
// toward empty.
func FuzzOpSequence(f *testing.F) {
	f.Add([]byte{0x10, 0x20, 0x30, 0x01, 0x02, 0x03, 0xff, 0x80})
	f.Add([]byte{0x00, 0x00, 0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0x00, 0x01, 0x02})
	// Generate-heavy prefix then consume-only tail: forces borrowing,
	// settlement and class recovery on the drained processors.
	f.Add([]byte{0x07, 0x01, 0x05, 0x02, 0x00, 0x04, 0x08, 0x0c, 0x00, 0x04,
		0x01, 0x05, 0x09, 0x0d, 0x01, 0x05, 0x09, 0x0d, 0x01, 0x05})
	// Single-producer, many consumers (hotspot shape).
	f.Add([]byte{0x20, 0x02, 0x10, 0x05, 0x00, 0x00, 0x00, 0x00, 0x03, 0x05,
		0x07, 0x09, 0x0b, 0x0d, 0x0f, 0x11, 0x13, 0x15, 0x17, 0x19})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		n := 2 + int(data[0])%14
		delta := 1 + int(data[1])%3
		if delta > n-1 {
			delta = n - 1
		}
		fv := 1.0 + float64(data[2]%90)/100.0 // 1.00..1.89
		if fv >= float64(delta)+1 {
			fv = float64(delta) + 0.9
		}
		c := 1 + int(data[3])%6
		s, err := NewSystem(n, Params{F: fv, Delta: delta, C: c}, topology.NewGlobal(n), rng.New(uint64(len(data))))
		if err != nil {
			t.Fatalf("construction failed for derived params: %v", err)
		}
		for k, b := range data[4:] {
			p := (int(b) >> 1) % n
			if b&1 == 0 {
				s.Generate(p)
			} else {
				s.Consume(p)
			}
			if k%37 == 0 {
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("after op %d: %v", k, err)
				}
			}
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		// Loads are consistent with the snapshot API.
		loads := s.Loads(nil)
		total := 0
		for i, v := range loads {
			if v != s.Load(i) {
				t.Fatalf("snapshot mismatch at %d", i)
			}
			total += v
		}
		if total != s.TotalLoad() {
			t.Fatal("TotalLoad mismatch")
		}
		// The sparse accessors agree with the row sums and the global NNZ.
		checkSparseAccessors(t, s)
		// Drain everything, exercising borrow, remote settlement and the
		// §4 class recovery while entries compact. A single Consume may
		// fail transiently while load remains (settlement can migrate the
		// last packets away mid-call), so progress is asserted only as a
		// generous overall round bound.
		maxRounds := 16 * (s.TotalLoad() + n + 1)
		for round := 0; s.TotalLoad() > 0; round++ {
			if round > maxRounds {
				t.Fatalf("drain stalled: %d packets left after %d rounds", s.TotalLoad(), round)
			}
			for p := 0; p < n; p++ {
				s.Consume(p)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("drain round %d: %v", round, err)
			}
		}
		checkSparseAccessors(t, s)
	})
}

// checkSparseAccessors cross-checks the public per-cell accessors against
// the per-processor aggregates and active-set counters: Σ_j D(i,j) must
// equal Load(i), Σ_j B(i,j) must equal Borrowed(i), the number of nonzero
// (D,B) cells must equal ActiveClasses(i), and NNZ must be their sum.
func checkSparseAccessors(t *testing.T, s *System) {
	t.Helper()
	n := s.N()
	nnz := 0
	for i := 0; i < n; i++ {
		sumD, sumB, active := 0, 0, 0
		for j := 0; j < n; j++ {
			d, b := s.D(i, j), s.B(i, j)
			sumD += d
			sumB += b
			if d != 0 || b != 0 {
				active++
			}
		}
		if sumD != s.Load(i) {
			t.Fatalf("proc %d: ΣD = %d but Load = %d", i, sumD, s.Load(i))
		}
		if sumB != s.Borrowed(i) {
			t.Fatalf("proc %d: ΣB = %d but Borrowed = %d", i, sumB, s.Borrowed(i))
		}
		if active != s.ActiveClasses(i) {
			t.Fatalf("proc %d: %d nonzero cells but ActiveClasses = %d", i, active, s.ActiveClasses(i))
		}
		nnz += active
	}
	if nnz != s.NNZ() {
		t.Fatalf("summed nonzero cells %d but NNZ() = %d", nnz, s.NNZ())
	}
}

// FuzzSnakeDistribute checks the balanced-remainder distribution on
// arbitrary class sequences: conservation, non-negativity, per-class ±1,
// per-participant grand totals ±1.
func FuzzSnakeDistribute(f *testing.F) {
	f.Add([]byte{3, 1, 10, 20, 0, 7})
	f.Add([]byte{8, 0, 255, 255, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		m := 1 + int(data[0])%9
		start := int(data[1])
		cur := newSnakeCursor(m, start)
		perProc := make([]int, m)
		for _, b := range data[2:] {
			total := int(b)
			sum := 0
			assigned := make([]int, m)
			cur.distribute(total, func(p, cnt int) {
				if cnt < 0 {
					t.Fatalf("negative assignment %d", cnt)
				}
				assigned[p] = cnt
				sum += cnt
			})
			if sum != total {
				t.Fatalf("conservation: distributed %d of %d", sum, total)
			}
			lo, hi := assigned[0], assigned[0]
			for _, v := range assigned {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
				_ = v
			}
			if hi-lo > 1 {
				t.Fatalf("per-class spread %d", hi-lo)
			}
			for p := range perProc {
				perProc[p] += assigned[p]
			}
		}
		lo, hi := perProc[0], perProc[0]
		for _, v := range perProc {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi-lo > 1 {
			t.Fatalf("grand-total spread %d", hi-lo)
		}
	})
}
