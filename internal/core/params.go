package core

import "fmt"

// Params are the three tunables of the load balancing algorithm. The paper
// proves (Theorems 2–4) that they scale every quality/cost tradeoff:
//
//   - F: the trigger factor f. A balancing operation fires when a
//     processor's self-generated load changes by this factor. Smaller F
//     means better balance and more balancing operations.
//   - Delta: the neighborhood size δ — how many partners join each
//     balancing operation. Larger Delta means better balance and more
//     migration per operation.
//   - C: the borrow capacity — how many packets a processor may consume
//     beyond its self-generated load before settling with the owning
//     classes. Larger C loosens the Theorem 4 bound by an additive C but
//     reduces settlement communication (paper Table 1).
type Params struct {
	F     float64
	Delta int
	C     int

	// InitiatorOnlyReset selects the appendix-literal variant in which a
	// balancing operation resets the trigger base l_old only on the
	// initiating processor. The default (false) resets it on every
	// participant, matching the §4 analysis where a balancing operation
	// counts as a local-clock tick for all δ+1 processors involved. The
	// ablation experiments measure the difference.
	InitiatorOnlyReset bool
}

// DefaultParams returns the parameter set the paper's Table 1 experiments
// use: f = 1.1, δ = 1, C = 4.
func DefaultParams() Params {
	return Params{F: 1.1, Delta: 1, C: 4}
}

// Validate checks the theory's preconditions: δ ≥ 1, C ≥ 1 and
// 1 ≤ f < δ+1 (Theorems 1–4 all require the latter; at f ≥ δ+1 the
// fixed-point bound δ/(δ+1−f) diverges and the balancing guarantee is
// lost).
func (p Params) Validate() error {
	if p.Delta < 1 {
		return fmt.Errorf("core: Delta = %d, need Delta >= 1", p.Delta)
	}
	if p.C < 1 {
		return fmt.Errorf("core: C = %d, need C >= 1", p.C)
	}
	if p.F < 1 {
		return fmt.Errorf("core: F = %v, need F >= 1", p.F)
	}
	if p.F >= float64(p.Delta)+1 {
		return fmt.Errorf("core: F = %v violates F < Delta+1 = %d (Theorem 1 precondition)", p.F, p.Delta+1)
	}
	return nil
}

// Metrics counts the activity of the algorithm. The first four fields are
// exactly the rows of the paper's Table 1; the rest support the cost
// analyses of §6 and the ablation experiments.
type Metrics struct {
	// TotalBorrow is the number of initiated borrowing operations
	// (Table 1 row "total borrow").
	TotalBorrow int64
	// RemoteBorrow is the number of operations in which a load packet of
	// another processor was exchanged against a previously borrowed packet
	// (Table 1 row "remote borrow").
	RemoteBorrow int64
	// BorrowFail is the number of initiations of the §4 recovery algorithm
	// for a class whose owner had no real self packets
	// (Table 1 row "borrow fail").
	BorrowFail int64
	// DecreaseSim is the number of initiated simulations of a load
	// decrease to consume borrowed load packets
	// (Table 1 row "decrease sim").
	DecreaseSim int64

	// BalanceOps is the number of balancing operations performed
	// (full δ+1-way redistributions).
	BalanceOps int64
	// ClassBalanceOps is the number of single-class recovery balances.
	ClassBalanceOps int64
	// Migrations is the number of packets that changed processor during
	// balancing operations (counted as packets received).
	Migrations int64
	// Generated and Consumed count successful generate/consume steps.
	Generated int64
	Consumed  int64
	// ConsumeNoLoad counts consume attempts on an empty processor.
	ConsumeNoLoad int64
	// ForcedSettle counts force-cleared markers on the defensive fallback
	// path (never hit under the paper's assumptions; see doc.go).
	ForcedSettle int64
}

// Add accumulates other into m (used when aggregating runs).
func (m *Metrics) Add(other Metrics) {
	m.TotalBorrow += other.TotalBorrow
	m.RemoteBorrow += other.RemoteBorrow
	m.BorrowFail += other.BorrowFail
	m.DecreaseSim += other.DecreaseSim
	m.BalanceOps += other.BalanceOps
	m.ClassBalanceOps += other.ClassBalanceOps
	m.Migrations += other.Migrations
	m.Generated += other.Generated
	m.Consumed += other.Consumed
	m.ConsumeNoLoad += other.ConsumeNoLoad
	m.ForcedSettle += other.ForcedSettle
}

// Scale returns a copy of m with every counter divided by k, as float64s,
// for per-run averages. It panics if k <= 0.
func (m Metrics) Scale(k int) ScaledMetrics {
	if k <= 0 {
		panic("core: Metrics.Scale with k <= 0")
	}
	f := func(v int64) float64 { return float64(v) / float64(k) }
	return ScaledMetrics{
		TotalBorrow:     f(m.TotalBorrow),
		RemoteBorrow:    f(m.RemoteBorrow),
		BorrowFail:      f(m.BorrowFail),
		DecreaseSim:     f(m.DecreaseSim),
		BalanceOps:      f(m.BalanceOps),
		ClassBalanceOps: f(m.ClassBalanceOps),
		Migrations:      f(m.Migrations),
		Generated:       f(m.Generated),
		Consumed:        f(m.Consumed),
		ConsumeNoLoad:   f(m.ConsumeNoLoad),
		ForcedSettle:    f(m.ForcedSettle),
	}
}

// ScaledMetrics are per-run averages of Metrics.
type ScaledMetrics struct {
	TotalBorrow     float64
	RemoteBorrow    float64
	BorrowFail      float64
	DecreaseSim     float64
	BalanceOps      float64
	ClassBalanceOps float64
	Migrations      float64
	Generated       float64
	Consumed        float64
	ConsumeNoLoad   float64
	ForcedSettle    float64
}
