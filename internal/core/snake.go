package core

// snakeDistribute redistributes a sequence of per-class totals over m
// participants so that
//
//   - within each class, any two participants receive counts differing by
//     at most one, and
//   - across all classes processed with the same *offset cursor, the
//     per-participant grand totals also differ by at most one.
//
// It is the "snake like distribution of packets" the paper invokes in §4 to
// make the per-class AND per-processor ±1 constraints simultaneously
// satisfiable.
//
// The mechanism: class totals are split into base = total/m for everyone
// plus rem = total%m single extras. Extras are handed out at consecutive
// circular positions starting at *offset, and *offset advances by rem, so
// over any run of classes the extras visit positions round-robin — after
// processing classes with a combined remainder R, participant p has
// received ⌊R/m⌋ or ⌈R/m⌉ extras.
//
// assign(p, class, count) stores the new count for participant index p.
type snakeCursor struct {
	m      int
	offset int
}

// newSnakeCursor returns a cursor over m participants starting at extra
// position start (start is reduced modulo m). m must be >= 1.
func newSnakeCursor(m, start int) *snakeCursor {
	if m < 1 {
		panic("core: snakeCursor with m < 1")
	}
	return &snakeCursor{m: m, offset: ((start % m) + m) % m}
}

// distribute splits total over the m participants, calling assign(p, cnt)
// with each participant's new count. total must be >= 0.
func (s *snakeCursor) distribute(total int, assign func(p, cnt int)) {
	if total < 0 {
		panic("core: snake distribute with negative total")
	}
	base := total / s.m
	rem := total % s.m
	for p := 0; p < s.m; p++ {
		cnt := base
		// Participant p gets an extra iff p lies within the circular run
		// [offset, offset+rem).
		if rem > 0 {
			rel := p - s.offset
			if rel < 0 {
				rel += s.m
			}
			if rel < rem {
				cnt++
			}
		}
		assign(p, cnt)
	}
	s.offset = (s.offset + rem) % s.m
}
