package core

import (
	"fmt"

	"lmbalance/internal/rng"
)

// Lane is one shard's view of a System: the contiguous processor range
// [lo, hi) with structure-of-arrays sub-slice views of the hot per-
// processor state (l, bTot, lOld, localT) indexed by shard-local offset.
// Lanes over disjoint ranges may be driven concurrently: a Lane's Generate
// and Consume touch only processor lo+li's row and the lane's own scratch
// and metrics, and instead of recursing into balancing or settlement they
// report trigger/settle conditions for the caller to defer into its
// mailbox. The sharded engine resolves those deferred operations at a
// deterministic tick barrier through the batched entry points in batch.go.
type Lane struct {
	sys    *System
	lo, hi int

	// Sub-slice views of the System's SoA state, indexed by local offset.
	l      []int
	bTot   []int
	lOld   []int
	localT []int

	classBuf []int
	metrics  Metrics
}

// NewLane returns the lane over processors [lo, hi).
func (s *System) NewLane(lo, hi int) *Lane {
	if lo < 0 || hi > s.n || lo >= hi {
		panic(fmt.Sprintf("core: invalid lane range [%d, %d) for n=%d", lo, hi, s.n))
	}
	return &Lane{
		sys:    s,
		lo:     lo,
		hi:     hi,
		l:      s.l[lo:hi:hi],
		bTot:   s.bTot[lo:hi:hi],
		lOld:   s.lOld[lo:hi:hi],
		localT: s.localT[lo:hi:hi],
	}
}

// Len returns the number of processors in the lane.
func (ln *Lane) Len() int { return ln.hi - ln.lo }

// Global translates a shard-local offset to the global processor index.
func (ln *Lane) Global(li int) int { return ln.lo + li }

// Load returns the physical load of local processor li.
func (ln *Lane) Load(li int) int { return ln.l[li] }

// Loads returns the lane's load sub-slice (live view; callers must not
// mutate it). The sharded engine folds it into its per-shard LoadPartial.
func (ln *Lane) Loads() []int { return ln.l }

// Metrics returns the lane's accumulated counters. The engine folds them
// into the System with AbsorbMetrics once the lane goes quiet (end of run,
// or before an invariant check).
func (ln *Lane) Metrics() Metrics { return ln.metrics }

// TakeMetrics returns the lane's counters and resets them to zero, so the
// engine can absorb them into the System exactly once.
func (ln *Lane) TakeMetrics() Metrics {
	m := ln.metrics
	ln.metrics = Metrics{}
	return m
}

// Generate adds one self-generated packet to local processor li, repaying
// a borrow marker if one is outstanding — identical to System.Generate
// except that instead of firing a balancing operation it reports whether
// the factor-f trigger condition now holds, for the caller to defer.
func (ln *Lane) Generate(li int, r *rng.RNG) (trigger bool) {
	s := ln.sys
	row := &s.rows[ln.lo+li]
	if ln.bTot[li] > 0 {
		j := ln.randClass(row, func(e *classEntry) bool { return e.b > 0 }, r)
		row.add(j, +1, -1)
		ln.bTot[li]--
	} else {
		row.own().d++
	}
	ln.l[li]++
	ln.metrics.Generated++
	return trigFired(row.own().d, ln.lOld[li], s.params.F)
}

// Consume removes one packet from local processor li if it can do so
// locally: consuming a self packet, or borrowing when a borrow slot and a
// borrowable class are available. Both paths mutate only processor li's
// state. When the sequential algorithm would have to settle a marker first
// (no borrow slot left, or no borrowable class), the lane mutates nothing
// and reports needSettle; the caller defers the consume to the barrier,
// where System.SettleConsume completes it with the full sequential path.
// trigger reports the factor-f condition after a self-packet consume.
func (ln *Lane) Consume(li int, r *rng.RNG) (consumed, trigger, needSettle bool) {
	s := ln.sys
	if ln.l[li] == 0 {
		ln.metrics.ConsumeNoLoad++
		return false, false, false
	}
	row := &s.rows[ln.lo+li]
	if row.own().d > 0 {
		row.own().d--
		ln.l[li]--
		ln.metrics.Consumed++
		return true, trigFired(row.own().d, ln.lOld[li], s.params.F), false
	}
	if ln.bTot[li] < s.params.C {
		j := ln.randClass(row, func(e *classEntry) bool { return e.d > 0 && e.b == 0 }, r)
		if j >= 0 {
			row.add(j, -1, +1)
			ln.bTot[li]++
			ln.l[li]--
			ln.metrics.TotalBorrow++
			ln.metrics.Consumed++
			return true, false, false
		}
	}
	// Settlement required: defer without mutating (the metrics for the
	// completed consume are counted by SettleConsume at the barrier).
	return false, false, true
}

func (ln *Lane) randClass(row *sparseRow, pred func(e *classEntry) bool, r *rng.RNG) int {
	pick, buf := randClassRow(row, pred, r, ln.classBuf)
	ln.classBuf = buf
	return pick
}
