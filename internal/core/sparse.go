package core

// classEntry is one nonzero cell of a processor's per-class state: d real
// packets and b borrow markers of class cls.
type classEntry struct {
	cls int
	d   int
	b   int
}

// sparseRow stores the per-class state of one processor compactly: only
// classes with d > 0 or b > 0 occupy an entry, except the processor's own
// class, which is pinned at entries[0] (even when zero) so the factor-f
// trigger can read d[i][i] without a search.
//
// Invariant: entries[1:] is sorted ascending by class and holds no empty
// entries (removal shifts, insertion binary-searches, and rebuild emits
// the already-sorted union). Keeping the tail sorted is what lets every
// RNG-consuming iteration visit classes in ascending order — identical to
// a dense 0..n-1 scan, the property the dense differential test pins down
// — without sorting per operation: profiles of the mixed workload showed
// a third of total runtime in per-balancing-op sorts once rows grow to
// hundreds of classes. Lookups binary-search the tail; no per-row map is
// worth its constant factor (measured slower on every benchmark workload).
type sparseRow struct {
	self    int
	entries []classEntry
}

// own returns the pinned self-class entry.
func (r *sparseRow) own() *classEntry { return &r.entries[0] }

// search binary-searches the sorted tail for cls, returning the smallest
// index k >= 1 with entries[k].cls >= cls (== len(entries) if none).
func (r *sparseRow) search(cls int) int {
	lo, hi := 1, len(r.entries)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.entries[mid].cls < cls {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// find returns a pointer to the entry of cls, or nil if the row does not
// hold the class. The pointer is invalidated by any row mutation.
func (r *sparseRow) find(cls int) *classEntry {
	if r.entries[0].cls == cls {
		return &r.entries[0]
	}
	if k := r.search(cls); k < len(r.entries) && r.entries[k].cls == cls {
		return &r.entries[k]
	}
	return nil
}

// getD returns the real-packet count of cls (zero if absent).
func (r *sparseRow) getD(cls int) int {
	if e := r.find(cls); e != nil {
		return e.d
	}
	return 0
}

// getB returns the borrow-marker count of cls (zero if absent).
func (r *sparseRow) getB(cls int) int {
	if e := r.find(cls); e != nil {
		return e.b
	}
	return 0
}

// ensure returns the index of cls's entry, creating an empty one at its
// sorted tail position if absent.
func (r *sparseRow) ensure(cls int) int {
	if r.entries[0].cls == cls {
		return 0
	}
	k := r.search(cls)
	if k < len(r.entries) && r.entries[k].cls == cls {
		return k
	}
	r.entries = append(r.entries, classEntry{})
	copy(r.entries[k+1:], r.entries[k:])
	r.entries[k] = classEntry{cls: cls}
	return k
}

// compact shift-removes the entry at idx if both its counts reached zero,
// preserving the sorted-tail invariant. The self entry is never removed.
func (r *sparseRow) compact(idx int) {
	if idx == 0 {
		return
	}
	e := &r.entries[idx]
	if e.d != 0 || e.b != 0 {
		return
	}
	last := len(r.entries) - 1
	copy(r.entries[idx:], r.entries[idx+1:])
	r.entries = r.entries[:last]
}

// add adjusts cls's d and b counts by the given deltas, creating and
// compacting the entry as needed.
func (r *sparseRow) add(cls, dd, db int) {
	idx := r.ensure(cls)
	e := &r.entries[idx]
	e.d += dd
	e.b += db
	r.compact(idx)
}

// setD overwrites cls's real-packet count.
func (r *sparseRow) setD(cls, v int) {
	if v == 0 && r.find(cls) == nil {
		return
	}
	idx := r.ensure(cls)
	r.entries[idx].d = v
	r.compact(idx)
}

// setB overwrites cls's borrow-marker count.
func (r *sparseRow) setB(cls, v int) {
	if v == 0 && r.find(cls) == nil {
		return
	}
	idx := r.ensure(cls)
	r.entries[idx].b = v
	r.compact(idx)
}

// rebuild replaces the row's whole contents after a balancing operation:
// classes[ci] receives the counts dMat[ci*m+k] and bMat[ci*m+k], where k
// is this processor's participant index. Classes with both counts zero
// are skipped, so the row comes out compact; classes is ascending, so the
// tail comes out sorted. classes must cover every class the row held
// before (redistribution guarantees this: it operates on the union of the
// participants' active sets).
func (r *sparseRow) rebuild(classes, dMat, bMat []int, k, m int) {
	r.entries[0].d = 0
	r.entries[0].b = 0
	r.entries = r.entries[:1]
	for ci, cls := range classes {
		d, b := dMat[ci*m+k], bMat[ci*m+k]
		if d == 0 && b == 0 {
			continue
		}
		if cls == r.self {
			r.entries[0].d = d
			r.entries[0].b = b
		} else {
			r.entries = append(r.entries, classEntry{cls: cls, d: d, b: b})
		}
	}
}

// active returns the number of classes the row actually holds (the pinned
// self entry counts only when nonzero).
func (r *sparseRow) active() int {
	cnt := len(r.entries)
	if e := &r.entries[0]; e.d == 0 && e.b == 0 {
		cnt--
	}
	return cnt
}
