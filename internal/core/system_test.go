package core

import (
	"testing"
	"testing/quick"

	"lmbalance/internal/rng"
	"lmbalance/internal/topology"
)

func newTestSystem(t *testing.T, n int, p Params, seed uint64) *System {
	t.Helper()
	s, err := NewSystem(n, p, topology.NewGlobal(n), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	good := DefaultParams()
	if _, err := NewSystem(1, good, topology.NewGlobal(2), rng.New(1)); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := NewSystem(4, Params{F: 0.5, Delta: 1, C: 4}, topology.NewGlobal(4), rng.New(1)); err == nil {
		t.Fatal("F<1 accepted")
	}
	if _, err := NewSystem(4, Params{F: 2.0, Delta: 1, C: 4}, topology.NewGlobal(4), rng.New(1)); err == nil {
		t.Fatal("F >= Delta+1 accepted")
	}
	if _, err := NewSystem(4, Params{F: 1.1, Delta: 0, C: 4}, topology.NewGlobal(4), rng.New(1)); err == nil {
		t.Fatal("Delta=0 accepted")
	}
	if _, err := NewSystem(4, Params{F: 1.1, Delta: 1, C: 0}, topology.NewGlobal(4), rng.New(1)); err == nil {
		t.Fatal("C=0 accepted")
	}
	if _, err := NewSystem(4, good, topology.NewGlobal(8), rng.New(1)); err == nil {
		t.Fatal("selector size mismatch accepted")
	}
	if _, err := NewSystem(4, good, nil, rng.New(1)); err == nil {
		t.Fatal("nil selector accepted")
	}
	s, err := NewSystem(4, good, topology.NewGlobal(4), rng.New(1))
	if err != nil || s == nil {
		t.Fatalf("valid construction failed: %v", err)
	}
	if s.N() != 4 || s.Params() != good {
		t.Fatal("metadata wrong")
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	// f = 1 is allowed by the theory (1 <= f).
	if err := (Params{F: 1, Delta: 1, C: 1}).Validate(); err != nil {
		t.Fatalf("f=1 rejected: %v", err)
	}
	// f = 1.8, δ = 1 is a paper experiment configuration.
	if err := (Params{F: 1.8, Delta: 1, C: 4}).Validate(); err != nil {
		t.Fatalf("paper config rejected: %v", err)
	}
}

func TestGenerateConsumeRoundTrip(t *testing.T) {
	s := newTestSystem(t, 4, DefaultParams(), 7)
	s.Generate(0)
	if s.Load(0)+s.Load(1)+s.Load(2)+s.Load(3) != 1 {
		t.Fatal("one packet expected somewhere")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Consume it from wherever it landed.
	for i := 0; i < 4; i++ {
		if s.Load(i) > 0 {
			if !s.Consume(i) {
				t.Fatal("consume of loaded processor failed")
			}
			break
		}
	}
	if s.TotalLoad() != 0 {
		t.Fatalf("total load %d after one generate + one consume", s.TotalLoad())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConsumeEmptyFails(t *testing.T) {
	s := newTestSystem(t, 4, DefaultParams(), 8)
	if s.Consume(2) {
		t.Fatal("consume on empty processor succeeded")
	}
	if s.Metrics().ConsumeNoLoad != 1 {
		t.Fatal("ConsumeNoLoad not counted")
	}
}

func TestFirstGenerateTriggersBalance(t *testing.T) {
	// With lOld = 0 the first self packet (d=1 > 0 and 1 >= f·0) triggers.
	s := newTestSystem(t, 4, DefaultParams(), 9)
	s.Generate(0)
	if s.Metrics().BalanceOps != 1 {
		t.Fatalf("expected 1 balance op after first generate, got %d", s.Metrics().BalanceOps)
	}
}

func TestTriggerFactorIncrease(t *testing.T) {
	// Pure generation on processor 0 (no borrow markers ever arise), so
	// each Generate increments d[0][0] by exactly one and the trigger
	// predicate is fully observable: it must fire iff the new value d
	// satisfies d > lOld and d >= f·lOld.
	const f = 1.8
	s := newTestSystem(t, 2, Params{F: f, Delta: 1, C: 4}, 10)
	fired := 0
	for k := 0; k < 2000; k++ {
		lOld := s.TriggerBase(0)
		dAtTrigger := s.D(0, 0) + 1
		opsBefore := s.Metrics().BalanceOps
		s.Generate(0)
		gotFire := s.Metrics().BalanceOps > opsBefore
		wantFire := dAtTrigger > lOld && float64(dAtTrigger) >= f*float64(lOld)
		if gotFire != wantFire {
			t.Fatalf("step %d: d=%d lOld=%d fired=%v want=%v", k, dAtTrigger, lOld, gotFire, wantFire)
		}
		if gotFire {
			fired++
		}
	}
	if fired < 2 {
		t.Fatalf("balance fired only %d times in 2000 generates", fired)
	}
}

func TestLoadsSnapshot(t *testing.T) {
	s := newTestSystem(t, 4, DefaultParams(), 11)
	for i := 0; i < 20; i++ {
		s.Generate(i % 4)
	}
	loads := s.Loads(nil)
	if len(loads) != 4 {
		t.Fatal("wrong snapshot length")
	}
	sum := 0
	for i, v := range loads {
		if v != s.Load(i) {
			t.Fatal("snapshot mismatch")
		}
		sum += v
	}
	if sum != s.TotalLoad() || sum != 20 {
		t.Fatalf("sum %d, total %d", sum, s.TotalLoad())
	}
}

// TestOneProducerBalanceQuality runs the §3 one-processor-generator model
// and checks the Theorem 2 bound: the generator's load stays within
// roughly f·δ/(δ+1−f) of any other processor's load (we allow the f slack
// of Theorem 4 because we sample between balancing operations).
func TestOneProducerBalanceQuality(t *testing.T) {
	p := Params{F: 1.3, Delta: 2, C: 4}
	s := newTestSystem(t, 16, p, 12)
	for step := 0; step < 20000; step++ {
		s.Generate(0)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	avgOther := 0.0
	for i := 1; i < 16; i++ {
		avgOther += float64(s.Load(i))
	}
	avgOther /= 15
	bound := p.F * float64(p.Delta) / (float64(p.Delta) + 1 - p.F) // f · δ/(δ+1−f)
	ratio := float64(s.Load(0)) / avgOther
	if ratio > bound*1.5 { // generous: single run, not expectation
		t.Fatalf("generator/other load ratio %.2f far exceeds bound %.2f", ratio, bound)
	}
	// The load must actually have spread: every processor holds packets.
	for i := 0; i < 16; i++ {
		if s.Load(i) == 0 {
			t.Fatalf("processor %d has zero load after 20000 generates", i)
		}
	}
}

// TestRandomOpsInvariants is the core property test: any interleaving of
// generates and consumes on any processor preserves every structural
// invariant and never loses or creates packets.
func TestRandomOpsInvariants(t *testing.T) {
	prop := func(seed uint32, nRaw, fRaw, dRaw, cRaw uint8) bool {
		n := 3 + int(nRaw)%13 // 3..15
		delta := 1 + int(dRaw)%3
		f := 1.05 + float64(fRaw%80)/100.0 // 1.05..1.84
		if f >= float64(delta)+1 {
			f = float64(delta) + 0.9
		}
		c := 1 + int(cRaw)%8
		r := rng.New(uint64(seed))
		s, err := NewSystem(n, Params{F: f, Delta: delta, C: c}, topology.NewGlobal(n), r.Split())
		if err != nil {
			return false
		}
		for op := 0; op < 400; op++ {
			i := r.Intn(n)
			if r.Bernoulli(0.55) {
				s.Generate(i)
			} else {
				s.Consume(i)
			}
		}
		return s.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestConsumeHeavyBorrowing drives a processor that only consumes while a
// neighbor produces, exercising the borrow/settle machinery hard.
func TestConsumeHeavyBorrowing(t *testing.T) {
	s := newTestSystem(t, 6, Params{F: 1.1, Delta: 1, C: 2}, 13)
	consumed := 0
	for step := 0; step < 3000; step++ {
		s.Generate(0)
		if s.Consume(3) {
			consumed++
		}
		if step%97 == 0 {
			if err := s.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if consumed == 0 {
		t.Fatal("processor 3 never managed to consume despite system load")
	}
	m := s.Metrics()
	if m.TotalBorrow == 0 {
		t.Fatal("borrowing never happened despite d[3][3]=0 consumption")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("metrics: %+v", m)
}

// TestBorrowCap ensures a processor never borrows while at capacity:
// settlement must happen first.
func TestBorrowCap(t *testing.T) {
	c := 3
	s := newTestSystem(t, 8, Params{F: 1.1, Delta: 1, C: c}, 14)
	for step := 0; step < 5000; step++ {
		s.Generate(step % 4) // procs 0..3 produce
		s.Consume(5)         // proc 5 only consumes
		if s.Borrowed(5) > c+2 {
			// Snake redistribution can concentrate a marker or two beyond C
			// transiently (documented), but unbounded growth is a bug.
			t.Fatalf("step %d: borrowed %d far exceeds C=%d", step, s.Borrowed(5), c)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestVirtualLoad: virtual = physical + outstanding markers.
func TestVirtualLoad(t *testing.T) {
	s := newTestSystem(t, 4, DefaultParams(), 15)
	for i := 0; i < 50; i++ {
		s.Generate(0)
	}
	for i := 0; i < 5; i++ {
		s.Consume(2)
	}
	for i := 0; i < 4; i++ {
		if s.VirtualLoad(i) != s.Load(i)+s.Borrowed(i) {
			t.Fatal("virtual load identity broken")
		}
	}
}

// TestGenerateRepaysDebt: a generate on a processor with outstanding
// markers must repay a marker, not grow its own class.
func TestGenerateRepaysDebt(t *testing.T) {
	s := newTestSystem(t, 4, DefaultParams(), 16)
	for i := 0; i < 40; i++ {
		s.Generate(0)
	}
	// Drain proc 2's own packets, then force borrows.
	for s.D(2, 2) > 0 {
		s.Consume(2)
	}
	for s.Borrowed(2) == 0 && s.Load(2) > 0 {
		s.Consume(2)
	}
	if s.Borrowed(2) == 0 {
		t.Skip("no borrow occurred with this seed; covered by other tests")
	}
	before := s.Borrowed(2)
	dOwn := s.D(2, 2)
	s.Generate(2)
	if s.Borrowed(2) != before-1 {
		t.Fatalf("generate did not repay debt: borrowed %d -> %d", before, s.Borrowed(2))
	}
	if s.D(2, 2) != dOwn {
		t.Fatal("generate grew own class despite outstanding debt")
	}
}

// TestInitiatorOnlyReset: in the appendix-literal variant only the
// initiator's trigger base resets at a balance, so a participant whose
// self load was redistributed keeps its old base and can re-trigger
// sooner. Verify the mechanical difference directly on n=2 where every
// balance involves both processors.
func TestInitiatorOnlyReset(t *testing.T) {
	run := func(initiatorOnly bool) int64 {
		p := Params{F: 1.1, Delta: 1, C: 4, InitiatorOnlyReset: initiatorOnly}
		s, err := NewSystem(2, p, topology.NewGlobal(2), rng.New(44))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3000; i++ {
			s.Generate(0)
			s.Generate(1)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return s.Metrics().BalanceOps
	}
	both := run(false)
	initOnly := run(true)
	if both == 0 || initOnly == 0 {
		t.Fatal("no balancing happened")
	}
	// The literal variant leaves participants' bases stale, so it fires
	// at least as often as the reset-all default on this workload.
	if initOnly < both {
		t.Fatalf("initiator-only (%d ops) fired less than reset-all (%d ops)", initOnly, both)
	}
	// TriggerBase bookkeeping: after a balance, the non-initiating
	// participant's base equals its self load only in the default mode.
	s, err := NewSystem(2, Params{F: 1.1, Delta: 1, C: 4}, topology.NewGlobal(2), rng.New(45))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Generate(0)
	}
	if s.TriggerBase(1) != s.D(1, 1) {
		t.Fatalf("default mode: participant base %d != self load %d", s.TriggerBase(1), s.D(1, 1))
	}
}

// TestMetricsAccumulate checks Metrics.Add and Scale arithmetic.
func TestMetricsAccumulate(t *testing.T) {
	a := Metrics{TotalBorrow: 3, BalanceOps: 10, Migrations: 100}
	b := Metrics{TotalBorrow: 1, RemoteBorrow: 2, Generated: 7}
	a.Add(b)
	if a.TotalBorrow != 4 || a.RemoteBorrow != 2 || a.BalanceOps != 10 || a.Generated != 7 {
		t.Fatalf("Add wrong: %+v", a)
	}
	sc := a.Scale(2)
	if sc.TotalBorrow != 2 || sc.Migrations != 50 {
		t.Fatalf("Scale wrong: %+v", sc)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(0) did not panic")
		}
	}()
	a.Scale(0)
}

// TestLocalTimeAdvances: every balancing operation ticks all participants'
// local clocks.
func TestLocalTimeAdvances(t *testing.T) {
	s := newTestSystem(t, 2, DefaultParams(), 17)
	for i := 0; i < 100; i++ {
		s.Generate(0)
	}
	if s.LocalTime(0) == 0 {
		t.Fatal("initiator's local clock never ticked")
	}
	// With n=2, δ=1, processor 1 participates in every balance.
	if s.LocalTime(1) != s.LocalTime(0) {
		t.Fatalf("participant clocks diverged: %d vs %d", s.LocalTime(0), s.LocalTime(1))
	}
}

// TestBalanceEqualizesLoads: immediately after a balance with n=2 the two
// loads differ by at most 1.
func TestBalanceEqualizesLoads(t *testing.T) {
	s := newTestSystem(t, 2, Params{F: 1.1, Delta: 1, C: 4}, 18)
	for i := 0; i < 500; i++ {
		opsBefore := s.Metrics().BalanceOps
		s.Generate(0)
		if s.Metrics().BalanceOps > opsBefore {
			if d := s.Load(0) - s.Load(1); d < -1 || d > 1 {
				t.Fatalf("after balance loads differ by %d", d)
			}
		}
	}
}

// TestTable1CountersPresent: a paper-style mixed run produces all four
// Table 1 counters as non-negative and internally consistent.
func TestTable1CountersPresent(t *testing.T) {
	s := newTestSystem(t, 16, DefaultParams(), 19)
	r := rng.New(99)
	for step := 0; step < 8000; step++ {
		for i := 0; i < 16; i++ {
			if r.Bernoulli(0.5) {
				s.Generate(i)
			} else if r.Bernoulli(0.6) {
				s.Consume(i)
			}
		}
	}
	m := s.Metrics()
	if m.TotalBorrow < m.RemoteBorrow {
		t.Fatalf("remote borrows (%d) exceed total borrows (%d)", m.RemoteBorrow, m.TotalBorrow)
	}
	if m.Generated == 0 || m.Consumed == 0 || m.BalanceOps == 0 {
		t.Fatalf("degenerate run: %+v", m)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestForceBalance: the exported benchmark hook performs a real balancing
// operation regardless of the trigger, including on an empty system.
func TestForceBalance(t *testing.T) {
	s := newTestSystem(t, 8, DefaultParams(), 20)
	s.ForceBalance(3)
	if s.Metrics().BalanceOps != 1 {
		t.Fatalf("BalanceOps = %d after ForceBalance on empty system", s.Metrics().BalanceOps)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Generate(i % 8)
	}
	ops := s.Metrics().BalanceOps
	s.ForceBalance(0)
	if s.Metrics().BalanceOps != ops+1 {
		t.Fatal("ForceBalance did not perform a balancing operation")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestActiveSetCompaction: an empty system has no active classes, load
// spreads grow the active sets, and a full drain compacts them back to
// exactly the outstanding borrow markers.
func TestActiveSetCompaction(t *testing.T) {
	const n = 12
	s := newTestSystem(t, n, Params{F: 1.2, Delta: 2, C: 3}, 21)
	if s.NNZ() != 0 {
		t.Fatalf("empty system has NNZ = %d", s.NNZ())
	}
	for i := 0; i < 2000; i++ {
		s.Generate(i % n)
	}
	if s.NNZ() == 0 {
		t.Fatal("no active classes after 2000 generates")
	}
	for i := 0; i < n; i++ {
		if s.ActiveClasses(i) == 0 {
			t.Fatalf("processor %d holds load %d but no active classes", i, s.Load(i))
		}
		if s.ActiveClasses(i) > n {
			t.Fatalf("processor %d claims %d active classes, only %d exist", i, s.ActiveClasses(i), n)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A single Consume may fail transiently while load remains, so bound
	// the drain by rounds rather than per-sweep success.
	for round := 0; s.TotalLoad() > 0; round++ {
		if round > 16*2000 {
			t.Fatalf("drain stalled with %d packets", s.TotalLoad())
		}
		for i := 0; i < n; i++ {
			s.Consume(i)
		}
	}
	// Only borrow-marker cells may survive the drain.
	markers := 0
	for i := 0; i < n; i++ {
		markers += s.Borrowed(i)
	}
	if s.NNZ() > markers {
		t.Fatalf("NNZ %d exceeds outstanding markers %d after full drain", s.NNZ(), markers)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerate(b *testing.B) {
	s, err := NewSystem(64, DefaultParams(), topology.NewGlobal(64), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Generate(i % 64)
	}
}

func BenchmarkGenerateConsumeMixed(b *testing.B) {
	s, err := NewSystem(64, DefaultParams(), topology.NewGlobal(64), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := i % 64
		if r.Bernoulli(0.55) {
			s.Generate(p)
		} else {
			s.Consume(p)
		}
	}
}

func BenchmarkBalanceOp(b *testing.B) {
	// Measure the redistribution cost directly: n=256, δ=4.
	s, err := NewSystem(256, Params{F: 1.1, Delta: 4, C: 4}, topology.NewGlobal(256), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 256*20; i++ {
		s.Generate(i % 256)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.balance(i%256, s.rng, s.sc, &s.metrics)
	}
}
