package core

import (
	"testing"

	"lmbalance/internal/rng"
	"lmbalance/internal/topology"
)

// classVirtualTotal returns Σ_p (d[p][j] + b[p][j]) — the system-wide
// virtual load of class j. Theorem 4's proof requires that this quantity
// changes ONLY through class j's owner: when j generates, consumes, or
// simulates a load decrease. Balancing operations and borrow conversions
// must leave it untouched.
func classVirtualTotal(s *System, j int) int {
	total := 0
	for p := 0; p < s.n; p++ {
		total += s.D(p, j) + s.B(p, j)
	}
	return total
}

// TestClassVirtualLoadOnlyOwnerChanges is the central accounting property:
// drive random operations and verify, op by op, that a class's virtual
// total never changes unless its owner acted (directly or through a
// simulated decrease, which the metrics expose).
func TestClassVirtualLoadOnlyOwnerChanges(t *testing.T) {
	const n = 8
	r := rng.New(77)
	s, err := NewSystem(n, Params{F: 1.2, Delta: 2, C: 3}, topology.NewGlobal(n), r.Split())
	if err != nil {
		t.Fatal(err)
	}
	totals := make([]int, n)
	snapshot := func() {
		for j := 0; j < n; j++ {
			totals[j] = classVirtualTotal(s, j)
		}
	}
	snapshot()
	for op := 0; op < 6000; op++ {
		i := r.Intn(n)
		decBefore := s.Metrics().DecreaseSim + s.Metrics().ForcedSettle
		generated := false
		consumed := false
		if r.Bernoulli(0.55) {
			s.Generate(i)
			generated = true
		} else {
			consumed = s.Consume(i)
		}
		decAfter := s.Metrics().DecreaseSim + s.Metrics().ForcedSettle
		simulatedDecreases := decAfter > decBefore
		for j := 0; j < n; j++ {
			now := classVirtualTotal(s, j)
			delta := now - totals[j]
			totals[j] = now
			if delta == 0 {
				continue
			}
			// A class total may grow only by +1, for class i, when i
			// generated a fresh packet (a generate that repays a borrow
			// marker leaves every total unchanged).
			if delta > 0 {
				if !(j == i && generated && delta == 1) {
					t.Fatalf("op %d: class %d virtual total grew by %d (i=%d generated=%v)", op, j, delta, i, generated)
				}
				continue
			}
			// A class total may shrink by 1 when its owner consumed an own
			// packet, or by any amount through simulated decreases (remote
			// borrow settlement, phantom clearing) in the same call.
			if j == i && consumed && delta == -1 {
				continue
			}
			if !simulatedDecreases {
				t.Fatalf("op %d: class %d virtual total shrank by %d without a simulated decrease (i=%d consumed=%v)", op, j, -delta, i, consumed)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBalanceLeavesClassTotalsInvariant: a balancing operation must
// conserve every class total exactly (both d and b matrices).
func TestBalanceLeavesClassTotalsInvariant(t *testing.T) {
	const n = 10
	r := rng.New(88)
	s, err := NewSystem(n, Params{F: 1.5, Delta: 3, C: 4}, topology.NewGlobal(n), r.Split())
	if err != nil {
		t.Fatal(err)
	}
	// Build an uneven state.
	for op := 0; op < 2000; op++ {
		i := r.Intn(n)
		if r.Bernoulli(0.6) {
			s.Generate(i)
		} else {
			s.Consume(i)
		}
	}
	for trial := 0; trial < 200; trial++ {
		before := make([]int, n)
		beforeB := make([]int, n)
		for j := 0; j < n; j++ {
			for p := 0; p < n; p++ {
				before[j] += s.D(p, j)
				beforeB[j] += s.B(p, j)
			}
		}
		totalB := 0
		for _, v := range beforeB {
			totalB += v
		}
		init := r.Intn(n)
		s.balance(init, s.rng, s.sc, &s.metrics)
		for j := 0; j < n; j++ {
			after, afterB := 0, 0
			for p := 0; p < n; p++ {
				after += s.D(p, j)
				afterB += s.B(p, j)
			}
			if after != before[j] {
				t.Fatalf("trial %d: class %d real total %d -> %d across balance", trial, j, before[j], after)
			}
			// b totals may only shrink for classes whose markers landed on
			// their owner (consumed there); never grow.
			if afterB > beforeB[j] {
				t.Fatalf("trial %d: class %d marker total grew %d -> %d", trial, j, beforeB[j], afterB)
			}
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBalancePostConditions: immediately after any balancing operation,
// the participants' physical loads differ by at most 1 and every class is
// within ±1 across participants. We observe this through n=δ+1 systems
// where all processors participate in every balance.
func TestBalancePostConditions(t *testing.T) {
	const n = 4
	r := rng.New(99)
	s, err := NewSystem(n, Params{F: 1.3, Delta: 3, C: 4}, topology.NewGlobal(n), r.Split())
	if err != nil {
		t.Fatal(err)
	}
	for op := 0; op < 3000; op++ {
		i := r.Intn(n)
		opsBefore := s.Metrics().BalanceOps
		if r.Bernoulli(0.6) {
			s.Generate(i)
		} else {
			s.Consume(i)
		}
		if s.Metrics().BalanceOps == opsBefore {
			continue // no balance this op
		}
		// δ = n−1: every balance includes all processors.
		loads := s.Loads(nil)
		lo, hi := loads[0], loads[0]
		for _, v := range loads {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		// Between the balance and our observation the acting processor
		// may have consumed/generated one packet.
		if hi-lo > 2 {
			t.Fatalf("op %d: post-balance loads %v spread %d", op, loads, hi-lo)
		}
		for j := 0; j < n; j++ {
			cl, ch := s.D(0, j), s.D(0, j)
			for p := 1; p < n; p++ {
				v := s.D(p, j)
				if v < cl {
					cl = v
				}
				if v > ch {
					ch = v
				}
			}
			if ch-cl > 2 {
				t.Fatalf("op %d: class %d spread %d across participants", op, j, ch-cl)
			}
		}
	}
}
