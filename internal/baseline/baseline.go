// Package baseline implements the comparison load balancing strategies the
// paper is positioned against, behind the same driving interface as the
// core algorithm, so they can run under identical workloads:
//
//   - NoBalance: load stays where it is generated — the control.
//   - RandomScatter: §5's strawman ("sends all its packets in each time
//     step to a single random chosen processor"). Its expected loads are
//     equal but its variation is huge; it demonstrates why the paper
//     analyzes variation density, not just expectations.
//   - RSU: the scheme of Rudolph, Slivkin-Allalouf and Upfal (SPAA 1991,
//     the paper's reference [20]) — the only prior fully dynamic algorithm
//     with a theoretical analysis: with probability 1/l a processor
//     compares its load with a random partner and balances pairwise when
//     the difference exceeds a threshold.
//   - Diffusion: classic first-order diffusion on a topology — every k
//     steps each processor averages with its graph neighbors.
//   - Gradient: a simplified Lin–Keller gradient model (the paper's
//     reference [6]) — packets flow from overloaded processors along the
//     estimated direction of the nearest lightly loaded processor.
//
// All baselines operate on plain per-processor packet counts: they do not
// track virtual load classes (that bookkeeping is the core algorithm's
// own machinery).
package baseline

import (
	"fmt"

	"lmbalance/internal/rng"
	"lmbalance/internal/topology"
)

// Algorithm is the driving interface shared with core.System (see
// sim.Balancer): per-step Generate/Consume plus load introspection.
type Algorithm interface {
	Name() string
	N() int
	Generate(i int)
	Consume(i int) bool
	Load(i int) int
	Loads(dst []int) []int
	TotalLoad() int
	// Tick is called once per global time step after all processors have
	// acted; periodic algorithms (diffusion, scatter, gradient) rebalance
	// here. Event-driven algorithms may ignore it.
	Tick(t int)
	// BalanceOps and Migrations report activity for cost comparisons.
	BalanceOps() int64
	Migrations() int64
}

// counts is the shared trivial state: a load vector.
type counts struct {
	l          []int
	balanceOps int64
	migrations int64
}

func newCounts(n int) counts { return counts{l: make([]int, n)} }

func (c *counts) N() int         { return len(c.l) }
func (c *counts) Load(i int) int { return c.l[i] }

func (c *counts) Loads(dst []int) []int { return append(dst[:0], c.l...) }

func (c *counts) TotalLoad() int {
	sum := 0
	for _, v := range c.l {
		sum += v
	}
	return sum
}

func (c *counts) Generate(i int) { c.l[i]++ }

func (c *counts) Consume(i int) bool {
	if c.l[i] == 0 {
		return false
	}
	c.l[i]--
	return true
}

func (c *counts) BalanceOps() int64 { return c.balanceOps }
func (c *counts) Migrations() int64 { return c.migrations }

// NoBalance performs no balancing at all.
type NoBalance struct {
	counts
}

// NewNoBalance returns the no-op control algorithm on n processors.
func NewNoBalance(n int) *NoBalance {
	return &NoBalance{counts: newCounts(n)}
}

// Name implements Algorithm.
func (a *NoBalance) Name() string { return "nobalance" }

// Tick implements Algorithm (no-op).
func (a *NoBalance) Tick(t int) {}

// RandomScatter is the §5 strawman: each step, every processor sends its
// entire load to one uniformly random processor. Expected loads are equal
// across processors, but the variation is enormous.
type RandomScatter struct {
	counts
	r    *rng.RNG
	next []int
}

// NewRandomScatter returns the strawman on n processors.
func NewRandomScatter(n int, r *rng.RNG) *RandomScatter {
	return &RandomScatter{counts: newCounts(n), r: r, next: make([]int, n)}
}

// Name implements Algorithm.
func (a *RandomScatter) Name() string { return "randomscatter" }

// Tick implements Algorithm: all processors scatter simultaneously.
func (a *RandomScatter) Tick(t int) {
	for i := range a.next {
		a.next[i] = 0
	}
	for i, v := range a.l {
		if v == 0 {
			continue
		}
		dst := a.r.Intn(len(a.l))
		a.next[dst] += v
		if dst != i {
			a.migrations += int64(v)
			a.balanceOps++
		}
	}
	copy(a.l, a.next)
}

// RSU is the Rudolph–Slivkin-Allalouf–Upfal SPAA'91 scheme: each step,
// processor i flips a coin with success probability min(1, 1/(l_i+1)); on
// success it selects a uniformly random partner and, if the load
// difference exceeds Threshold, the pair averages its load. (The +1 keeps
// empty processors probing rather than dividing by zero, matching the
// published "with probability proportional to 1/load" intent for idle
// processors.)
type RSU struct {
	counts
	r         *rng.RNG
	Threshold int
}

// NewRSU returns the RSU baseline with the given pairwise threshold
// (the original analysis uses a small constant; 1 reproduces "balance
// whenever unequal beyond one packet").
func NewRSU(n int, threshold int, r *rng.RNG) *RSU {
	return &RSU{counts: newCounts(n), r: r, Threshold: threshold}
}

// Name implements Algorithm.
func (a *RSU) Name() string { return fmt.Sprintf("rsu(th=%d)", a.Threshold) }

// Tick implements Algorithm.
func (a *RSU) Tick(t int) {
	n := len(a.l)
	for i := 0; i < n; i++ {
		p := 1.0 / float64(a.l[i]+1)
		if !a.r.Bernoulli(p) {
			continue
		}
		j := a.r.Intn(n - 1)
		if j >= i {
			j++
		}
		diff := a.l[i] - a.l[j]
		if diff < 0 {
			diff = -diff
		}
		if diff <= a.Threshold {
			continue
		}
		total := a.l[i] + a.l[j]
		ni := total / 2
		nj := total - ni
		moved := a.l[i] - ni
		if moved < 0 {
			moved = -moved
		}
		a.l[i], a.l[j] = ni, nj
		a.migrations += int64(moved)
		a.balanceOps++
	}
}

// Diffusion averages each processor with its graph neighborhood every
// Period steps: i keeps its share of the neighborhood average and sends
// the excess to its most underloaded neighbor(s). This is the standard
// first-order diffusion scheme (FOS) restricted to integer packets.
type Diffusion struct {
	counts
	g      *topology.Graph
	Period int
	alpha  float64
}

// NewDiffusion returns a diffusion balancer on graph g firing every period
// steps with diffusion parameter alpha — the fraction of the pairwise
// difference exchanged per edge. For first-order diffusion to be stable the
// parameter must satisfy alpha <= 1/(maxDegree+1); larger values oscillate.
// Pass alpha <= 0 to use that maximal stable value.
func NewDiffusion(g *topology.Graph, period int, alpha float64) (*Diffusion, error) {
	if period < 1 {
		return nil, fmt.Errorf("baseline: diffusion period %d < 1", period)
	}
	maxDeg := 1
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	limit := 1.0 / float64(maxDeg+1)
	if alpha <= 0 {
		alpha = limit
	}
	if alpha > limit {
		return nil, fmt.Errorf("baseline: diffusion alpha %v exceeds stability limit %v for max degree %d", alpha, limit, maxDeg)
	}
	return &Diffusion{counts: newCounts(g.N()), g: g, Period: period, alpha: alpha}, nil
}

// Name implements Algorithm.
func (a *Diffusion) Name() string {
	return fmt.Sprintf("diffusion(%s,k=%d)", a.g.Name(), a.Period)
}

// Tick implements Algorithm.
func (a *Diffusion) Tick(t int) {
	if (t+1)%a.Period != 0 {
		return
	}
	n := len(a.l)
	delta := make([]int, n)
	for i := 0; i < n; i++ {
		for _, j := range a.g.Neighbors(i) {
			if j <= i {
				continue // each undirected edge once
			}
			d := a.l[i] - a.l[j]
			move := int(a.alpha * float64(d)) // toward the lighter side
			if move > 0 {
				delta[i] -= move
				delta[j] += move
				a.migrations += int64(move)
			} else if move < 0 {
				delta[i] -= move
				delta[j] += move
				a.migrations += int64(-move)
			}
		}
	}
	changed := false
	for i := 0; i < n; i++ {
		if delta[i] != 0 {
			changed = true
		}
		a.l[i] += delta[i]
		if a.l[i] < 0 {
			// Cannot happen: each edge moves at most alpha<=0.5 of the
			// difference, and differences are bounded by the load itself;
			// guard anyway so a modeling bug cannot corrupt the run.
			panic("baseline: diffusion drove load negative")
		}
	}
	if changed {
		a.balanceOps++
	}
}

// Gradient is a simplified Lin–Keller gradient model. Processors with load
// below Low are "lightly loaded". Every Period steps each processor
// computes its proximity = graph distance to the nearest light processor
// (approximated by one relaxation sweep per tick, as in the original
// asynchronous model), and every processor whose load exceeds High sends
// one packet along the neighbor with minimal proximity.
type Gradient struct {
	counts
	g         *topology.Graph
	Low, High int
	Period    int
	prox      []int
}

// NewGradient returns a gradient balancer on g with the given watermarks.
func NewGradient(g *topology.Graph, low, high, period int) (*Gradient, error) {
	if low < 0 || high <= low {
		return nil, fmt.Errorf("baseline: gradient watermarks low=%d high=%d invalid", low, high)
	}
	if period < 1 {
		return nil, fmt.Errorf("baseline: gradient period %d < 1", period)
	}
	n := g.N()
	gr := &Gradient{counts: newCounts(n), g: g, Low: low, High: high, Period: period, prox: make([]int, n)}
	for i := range gr.prox {
		gr.prox[i] = n // "infinity"
	}
	return gr, nil
}

// Name implements Algorithm.
func (a *Gradient) Name() string {
	return fmt.Sprintf("gradient(%s,lo=%d,hi=%d)", a.g.Name(), a.Low, a.High)
}

// Tick implements Algorithm.
func (a *Gradient) Tick(t int) {
	if (t+1)%a.Period != 0 {
		return
	}
	n := len(a.l)
	// One relaxation sweep of the proximity surface (asynchronous gradient
	// model): light processors have proximity 0, others 1 + min neighbor.
	for i := 0; i < n; i++ {
		if a.l[i] <= a.Low {
			a.prox[i] = 0
			continue
		}
		best := n
		for _, j := range a.g.Neighbors(i) {
			if a.prox[j] < best {
				best = a.prox[j]
			}
		}
		if best < n {
			a.prox[i] = best + 1
		} else {
			a.prox[i] = n
		}
	}
	// Overloaded processors push one packet downhill.
	moved := false
	for i := 0; i < n; i++ {
		if a.l[i] <= a.High {
			continue
		}
		bestJ, bestP := -1, a.prox[i]
		for _, j := range a.g.Neighbors(i) {
			if a.prox[j] < bestP {
				bestP, bestJ = a.prox[j], j
			}
		}
		if bestJ >= 0 && a.l[i] > 0 {
			a.l[i]--
			a.l[bestJ]++
			a.migrations++
			moved = true
		}
	}
	if moved {
		a.balanceOps++
	}
}
