package baseline

import (
	"testing"

	"lmbalance/internal/rng"
	"lmbalance/internal/stats"
	"lmbalance/internal/topology"
)

func totalOf(a Algorithm) int { return a.TotalLoad() }

func TestNoBalance(t *testing.T) {
	a := NewNoBalance(4)
	if a.Name() == "" || a.N() != 4 {
		t.Fatal("metadata wrong")
	}
	a.Generate(2)
	a.Generate(2)
	a.Tick(0)
	if a.Load(2) != 2 || a.TotalLoad() != 2 {
		t.Fatal("load not retained locally")
	}
	if !a.Consume(2) || a.Load(2) != 1 {
		t.Fatal("consume failed")
	}
	if a.Consume(0) {
		t.Fatal("consume on empty processor succeeded")
	}
	if a.BalanceOps() != 0 || a.Migrations() != 0 {
		t.Fatal("no-op balancer reported activity")
	}
	loads := a.Loads(nil)
	if len(loads) != 4 || loads[2] != 1 {
		t.Fatalf("snapshot wrong: %v", loads)
	}
}

func TestRandomScatterConservation(t *testing.T) {
	r := rng.New(1)
	a := NewRandomScatter(8, r)
	for i := 0; i < 8; i++ {
		for k := 0; k <= i; k++ {
			a.Generate(i)
		}
	}
	before := totalOf(a)
	for t := 0; t < 100; t++ {
		a.Tick(t)
	}
	if totalOf(a) != before {
		t.Fatalf("scatter lost packets: %d -> %d", before, totalOf(a))
	}
}

func TestRandomScatterHighVariation(t *testing.T) {
	// The §5 strawman: expected loads equal but per-step variation huge —
	// most processors are empty, one holds a pile. Check that after a
	// scatter step the load is much more concentrated than balanced.
	r := rng.New(2)
	a := NewRandomScatter(16, r)
	for i := 0; i < 160; i++ {
		a.Generate(i % 16)
	}
	var spread stats.Accumulator
	for t := 0; t < 200; t++ {
		a.Tick(t)
		spread.Add(float64(stats.SpreadInts(a.Loads(nil))))
	}
	// A balanced system of 160 packets on 16 procs would have spread ≈ 0-1.
	if spread.Mean() < 20 {
		t.Fatalf("scatter spread suspiciously low: %v", spread.Mean())
	}
}

func TestRSUBalances(t *testing.T) {
	r := rng.New(3)
	a := NewRSU(8, 1, r)
	for i := 0; i < 400; i++ {
		a.Generate(0) // hotspot generation
	}
	before := totalOf(a)
	for t := 0; t < 2000; t++ {
		a.Tick(t)
	}
	if totalOf(a) != before {
		t.Fatal("RSU lost packets")
	}
	if got := stats.SpreadInts(a.Loads(nil)); got > 100 {
		t.Fatalf("RSU failed to spread hotspot load: spread %d", got)
	}
	if a.BalanceOps() == 0 || a.Migrations() == 0 {
		t.Fatal("RSU reported no activity")
	}
}

func TestRSUThresholdSuppresses(t *testing.T) {
	r := rng.New(4)
	a := NewRSU(4, 1000, r)
	for i := 0; i < 50; i++ {
		a.Generate(0)
	}
	for t := 0; t < 200; t++ {
		a.Tick(t)
	}
	if a.BalanceOps() != 0 {
		t.Fatal("huge threshold should suppress all balancing")
	}
}

func TestDiffusionValidation(t *testing.T) {
	g := topology.Ring(8)
	if _, err := NewDiffusion(g, 0, 0.3); err == nil {
		t.Fatal("period 0 accepted")
	}
	if _, err := NewDiffusion(g, 1, 0); err != nil {
		t.Fatalf("alpha<=0 should select the stable default, got error: %v", err)
	}
	// Ring has max degree 2 → stability limit 1/3.
	if _, err := NewDiffusion(g, 1, 0.34); err == nil {
		t.Fatal("alpha beyond the stability limit accepted")
	}
	if a, err := NewDiffusion(g, 1, 0.3); err != nil || a == nil {
		t.Fatalf("stable alpha rejected: %v", err)
	}
}

func TestDiffusionConvergesOnRing(t *testing.T) {
	g := topology.Ring(8)
	a, err := NewDiffusion(g, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		a.Generate(0)
	}
	before := totalOf(a)
	for t := 0; t < 500; t++ {
		a.Tick(t)
	}
	if totalOf(a) != before {
		t.Fatal("diffusion lost packets")
	}
	if got := stats.SpreadInts(a.Loads(nil)); got > 12 {
		t.Fatalf("diffusion on ring left spread %d", got)
	}
}

func TestDiffusionPeriod(t *testing.T) {
	g := topology.Ring(4)
	a, err := NewDiffusion(g, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		a.Generate(0)
	}
	// Ticks 0..8 must not balance (fires at (t+1)%10==0, i.e. t=9).
	for t := 0; t < 9; t++ {
		a.Tick(t)
	}
	if a.BalanceOps() != 0 {
		t.Fatal("diffusion fired before its period")
	}
	a.Tick(9)
	if a.BalanceOps() != 1 {
		t.Fatal("diffusion did not fire at its period")
	}
}

func TestGradientValidation(t *testing.T) {
	g := topology.Ring(8)
	if _, err := NewGradient(g, 5, 5, 1); err == nil {
		t.Fatal("high == low accepted")
	}
	if _, err := NewGradient(g, -1, 5, 1); err == nil {
		t.Fatal("negative low accepted")
	}
	if _, err := NewGradient(g, 1, 5, 0); err == nil {
		t.Fatal("period 0 accepted")
	}
}

func TestGradientFlowsDownhill(t *testing.T) {
	g := topology.Ring(16)
	a, err := NewGradient(g, 2, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a.Generate(0)
	}
	before := totalOf(a)
	for t := 0; t < 3000; t++ {
		a.Tick(t)
	}
	if totalOf(a) != before {
		t.Fatal("gradient lost packets")
	}
	if a.Migrations() == 0 {
		t.Fatal("gradient never moved a packet")
	}
	// Load must have flowed away from the hotspot.
	if a.Load(0) == 200 {
		t.Fatal("hotspot load never decreased")
	}
	// Neighbors of the hotspot should have received something over time.
	if a.Load(1)+a.Load(15) == 0 {
		t.Fatal("hotspot neighbors never received load")
	}
}

func TestAllNamesNonEmpty(t *testing.T) {
	r := rng.New(9)
	g := topology.Ring(4)
	diff, _ := NewDiffusion(g, 1, 0)
	grad, _ := NewGradient(g, 1, 3, 1)
	for _, a := range []Algorithm{
		NewNoBalance(4), NewRandomScatter(4, r), NewRSU(4, 1, r), diff, grad,
	} {
		if a.Name() == "" {
			t.Fatalf("%T has empty name", a)
		}
		if a.N() != 4 {
			t.Fatalf("%T reports N=%d", a, a.N())
		}
	}
}

func BenchmarkRSUTick(b *testing.B) {
	r := rng.New(1)
	a := NewRSU(64, 1, r)
	for i := 0; i < 64*10; i++ {
		a.Generate(i % 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Tick(i)
	}
}

func BenchmarkDiffusionTick(b *testing.B) {
	g := topology.Torus2D(8, 8)
	a, err := NewDiffusion(g, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64*10; i++ {
		a.Generate(i % 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Tick(i)
	}
}
