package topology

import (
	"testing"
	"testing/quick"

	"lmbalance/internal/rng"
)

func TestGlobalBasics(t *testing.T) {
	g := NewGlobal(8)
	if g.Name() != "global" || g.N() != 8 {
		t.Fatal("metadata wrong")
	}
	r := rng.New(1)
	for i := 0; i < 500; i++ {
		self := r.Intn(8)
		got := g.Select(self, 3, r, nil)
		if len(got) != 3 {
			t.Fatalf("got %d candidates", len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v == self || v < 0 || v >= 8 || seen[v] {
				t.Fatalf("bad candidate set %v for self=%d", got, self)
			}
			seen[v] = true
		}
	}
}

func TestGlobalDeltaClamped(t *testing.T) {
	g := NewGlobal(4)
	r := rng.New(2)
	got := g.Select(0, 10, r, nil)
	if len(got) != 3 {
		t.Fatalf("expected clamp to n-1=3, got %d", len(got))
	}
}

func TestGlobalPanicsOnTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGlobal(1) did not panic")
		}
	}()
	NewGlobal(1)
}

// TestGlobalUniform verifies each other processor is selected equally often
// — the "chosen at random" premise of every lemma in the paper.
func TestGlobalUniform(t *testing.T) {
	g := NewGlobal(10)
	r := rng.New(3)
	counts := make([]int, 10)
	const trials = 45000
	for i := 0; i < trials; i++ {
		for _, v := range g.Select(0, 2, r, nil) {
			counts[v]++
		}
	}
	if counts[0] != 0 {
		t.Fatal("self was selected")
	}
	expected := float64(trials*2) / 9
	for v := 1; v < 10; v++ {
		dev := float64(counts[v])/expected - 1
		if dev > 0.05 || dev < -0.05 {
			t.Fatalf("candidate %d frequency off by %.1f%%", v, dev*100)
		}
	}
}

func TestRing(t *testing.T) {
	g := Ring(6)
	if g.N() != 6 {
		t.Fatal("wrong size")
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("ring degree at %d = %d", v, g.Degree(v))
		}
	}
	if !g.Connected() {
		t.Fatal("ring disconnected")
	}
	if d := g.Diameter(); d != 3 {
		t.Fatalf("C6 diameter = %d, want 3", d)
	}
}

func TestTorus(t *testing.T) {
	g := Torus2D(4, 4)
	if g.N() != 16 {
		t.Fatal("wrong size")
	}
	for v := 0; v < 16; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus degree at %d = %d", v, g.Degree(v))
		}
	}
	if !g.Connected() {
		t.Fatal("torus disconnected")
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("4x4 torus diameter = %d, want 4", d)
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 {
		t.Fatal("wrong size")
	}
	for v := 0; v < 16; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree at %d = %d", v, g.Degree(v))
		}
		for _, u := range g.Neighbors(v) {
			// Each neighbor differs in exactly one bit.
			x := u ^ v
			if x&(x-1) != 0 || x == 0 {
				t.Fatalf("neighbor %d of %d differs in more than one bit", u, v)
			}
		}
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("Q4 diameter = %d, want 4", d)
	}
}

func TestDeBruijn(t *testing.T) {
	g := DeBruijn(4)
	if g.N() != 16 {
		t.Fatal("wrong size")
	}
	if !g.Connected() {
		t.Fatal("de Bruijn disconnected")
	}
	// Undirected binary de Bruijn has max degree 4.
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > 4 || g.Degree(v) < 1 {
			t.Fatalf("degree at %d = %d", v, g.Degree(v))
		}
	}
	// Shift edges must exist where not self-loops.
	for v := 0; v < g.N(); v++ {
		want := (2 * v) % g.N()
		if want == v {
			continue
		}
		found := false
		for _, u := range g.Neighbors(v) {
			if u == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing shift edge %d-%d", v, want)
		}
	}
}

func TestButterfly(t *testing.T) {
	g := Butterfly(3)
	if g.N() != 3*8 {
		t.Fatalf("BF(3) has %d vertices, want 24", g.N())
	}
	if !g.Connected() {
		t.Fatal("butterfly disconnected")
	}
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d != 4 {
			t.Fatalf("BF(3) degree at %d = %d, want 4", v, d)
		}
	}
	// dim=1: two rows, single level — degenerate but valid.
	g1 := Butterfly(1)
	if g1.N() != 2 || !g1.Connected() {
		t.Fatal("BF(1) wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Butterfly(0) did not panic")
		}
	}()
	Butterfly(0)
}

func TestButterflyDiameterGrowsSlowly(t *testing.T) {
	// Wrapped butterfly diameter is Θ(dim) while n = dim·2^dim — i.e.
	// logarithmic in n.
	d3 := Butterfly(3).Diameter()
	d5 := Butterfly(5).Diameter()
	if d3 <= 0 || d5 <= 0 {
		t.Fatal("invalid diameters")
	}
	if d5 > 3*d3 {
		t.Fatalf("diameter grew too fast: BF(3)=%d BF(5)=%d", d3, d5)
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(5)
	g := RandomRegular(20, 4, r)
	if g.N() != 20 {
		t.Fatal("wrong size")
	}
	for v := 0; v < 20; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree at %d = %d", v, g.Degree(v))
		}
		seen := map[int]bool{}
		for _, u := range g.Neighbors(v) {
			if u == v || seen[u] {
				t.Fatalf("self-loop or multi-edge at %d: %v", v, g.Neighbors(v))
			}
			seen[u] = true
		}
	}
	if !g.Connected() {
		t.Fatal("random regular graph disconnected")
	}
}

func TestRandomRegularInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd n*d did not panic")
		}
	}()
	RandomRegular(5, 3, rng.New(1))
}

func TestNeighborhoodSelector(t *testing.T) {
	g := Ring(8)
	s := NewNeighborhood(g)
	if s.N() != 8 {
		t.Fatal("wrong N")
	}
	r := rng.New(6)
	// delta=1 picks one of the two ring neighbors.
	for i := 0; i < 200; i++ {
		got := s.Select(3, 1, r, nil)
		if len(got) != 1 || (got[0] != 2 && got[0] != 4) {
			t.Fatalf("ring neighborhood pick = %v", got)
		}
	}
	// delta >= degree returns all neighbors.
	got := s.Select(3, 5, r, nil)
	if len(got) != 2 {
		t.Fatalf("oversized delta should return whole neighborhood, got %v", got)
	}
}

// TestNeighborhoodProperties: selections are distinct actual neighbors.
func TestNeighborhoodProperties(t *testing.T) {
	r := rng.New(7)
	g := Torus2D(5, 5)
	s := NewNeighborhood(g)
	prop := func(selfRaw, deltaRaw uint8) bool {
		self := int(selfRaw) % 25
		delta := 1 + int(deltaRaw)%4
		got := s.Select(self, delta, r, nil)
		isNbr := map[int]bool{}
		for _, u := range g.Neighbors(self) {
			isNbr[u] = true
		}
		seen := map[int]bool{}
		for _, v := range got {
			if !isNbr[v] || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(got) == min(delta, g.Degree(self))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop adjacency did not panic")
		}
	}()
	NewGraph("bad", [][]int{{0}})
}

func TestGraphValidationRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range adjacency did not panic")
		}
	}()
	NewGraph("bad", [][]int{{5}, {0}})
}

func TestDisconnectedDiameter(t *testing.T) {
	g := NewGraph("disc", [][]int{{1}, {0}, {3}, {2}})
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if g.Diameter() != -1 {
		t.Fatal("disconnected diameter should be -1")
	}
}

func BenchmarkGlobalSelect(b *testing.B) {
	g := NewGlobal(1024)
	r := rng.New(1)
	buf := make([]int, 0, 8)
	for i := 0; i < b.N; i++ {
		buf = g.Select(i%1024, 4, r, buf)
	}
}

func BenchmarkNeighborhoodSelect(b *testing.B) {
	s := NewNeighborhood(Hypercube(10))
	r := rng.New(1)
	buf := make([]int, 0, 8)
	for i := 0; i < b.N; i++ {
		buf = s.Select(i%1024, 4, r, buf)
	}
}
