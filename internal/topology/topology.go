// Package topology provides candidate-selection strategies for the load
// balancer and the interconnection graphs they are restricted to.
//
// The paper's model (§2) selects the δ balancing partners uniformly at
// random from all processors: "it chooses a subset M ⊆ {1..n}−{p}, |M| = δ
// … at random", independent of how the processors are physically wired —
// the authors argue constant-time balancing is realistic on wormhole-routed
// machines. That strategy is Global here and is the default everywhere.
//
// The paper's closing "further research" item is "taking locality issues on
// specific networks into account"; the remaining selectors implement that
// extension by restricting candidates to graph neighborhoods of classical
// interconnection networks (ring, 2-D torus, hypercube, de Bruijn,
// random-regular). They are exercised by the ablation experiments.
package topology

import (
	"fmt"

	"lmbalance/internal/rng"
)

// Selector chooses δ distinct balancing partners for a processor.
//
// Implementations must be stateless with respect to selection (all
// randomness comes from the supplied RNG) so that simulations are
// reproducible, and must never return the requesting processor itself or a
// duplicate. If the selector is neighborhood-restricted and the
// neighborhood has fewer than δ members, all neighbors are returned.
type Selector interface {
	// Name identifies the selector in experiment output.
	Name() string
	// N returns the number of processors the selector was built for.
	N() int
	// Select appends the chosen candidate ids for processor self to dst
	// and returns it. delta is the requested number of partners.
	Select(self, delta int, r *rng.RNG, dst []int) []int
}

// Global selects candidates uniformly at random from all processors except
// self — the paper's model.
type Global struct {
	n int
}

// NewGlobal returns the paper's uniform selector over n processors.
// It panics if n < 2: with fewer than two processors there is nobody to
// balance with.
func NewGlobal(n int) *Global {
	if n < 2 {
		panic("topology: Global requires n >= 2")
	}
	return &Global{n: n}
}

// Name implements Selector.
func (g *Global) Name() string { return "global" }

// N implements Selector.
func (g *Global) N() int { return g.n }

// Select implements Selector. If delta >= n−1 every other processor is
// selected.
func (g *Global) Select(self, delta int, r *rng.RNG, dst []int) []int {
	if delta > g.n-1 {
		delta = g.n - 1
	}
	return r.SampleDistinct(g.n, delta, self, dst)
}

// Graph is an undirected interconnection network on n vertices given by
// adjacency lists. Vertices are 0-based processor ids.
type Graph struct {
	name string
	adj  [][]int
}

// NewGraph builds a graph from adjacency lists. The lists are retained (not
// copied); callers must not modify them afterwards. NewGraph validates that
// no vertex lists itself and that every listed neighbor is in range,
// panicking otherwise — a malformed network is a programming error, not a
// runtime condition.
func NewGraph(name string, adj [][]int) *Graph {
	for v, ns := range adj {
		for _, u := range ns {
			if u == v {
				panic(fmt.Sprintf("topology: vertex %d lists itself", v))
			}
			if u < 0 || u >= len(adj) {
				panic(fmt.Sprintf("topology: vertex %d lists out-of-range neighbor %d", v, u))
			}
		}
	}
	return &Graph{name: name, adj: adj}
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// Neighbors returns the adjacency list of v. The returned slice must not be
// modified.
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Connected reports whether the graph is connected (true for the empty and
// single-vertex graph).
func (g *Graph) Connected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == n
}

// Diameter returns the graph diameter via BFS from every vertex, or -1 if
// the graph is disconnected. Intended for tests and experiment metadata,
// not hot paths.
func (g *Graph) Diameter() int {
	n := g.N()
	if n == 0 {
		return 0
	}
	diameter := 0
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, u := range g.adj[v] {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diameter {
				diameter = d
			}
		}
	}
	return diameter
}

// Neighborhood is a Selector restricted to a graph: candidates are drawn
// uniformly from the requesting processor's direct neighbors.
type Neighborhood struct {
	g *Graph
}

// NewNeighborhood wraps a graph as a locality-restricted selector.
func NewNeighborhood(g *Graph) *Neighborhood { return &Neighborhood{g: g} }

// Name implements Selector.
func (s *Neighborhood) Name() string { return "nbr:" + s.g.Name() }

// N implements Selector.
func (s *Neighborhood) N() int { return s.g.N() }

// Select implements Selector, sampling delta distinct neighbors of self (or
// all neighbors if the degree is smaller than delta).
func (s *Neighborhood) Select(self, delta int, r *rng.RNG, dst []int) []int {
	ns := s.g.Neighbors(self)
	if delta >= len(ns) {
		return append(dst[:0], ns...)
	}
	idx := r.SampleDistinct(len(ns), delta, -1, nil)
	dst = dst[:0]
	for _, i := range idx {
		dst = append(dst, ns[i])
	}
	return dst
}

// Ring returns the cycle graph C_n. It panics if n < 3.
func Ring(n int) *Graph {
	if n < 3 {
		panic("topology: Ring requires n >= 3")
	}
	adj := make([][]int, n)
	for v := range adj {
		adj[v] = []int{(v + n - 1) % n, (v + 1) % n}
	}
	return NewGraph(fmt.Sprintf("ring%d", n), adj)
}

// Torus2D returns the rows×cols torus (wraparound grid). Each vertex has
// degree 4 (degree 2 when a dimension has length 1 is rejected: both
// dimensions must be >= 3 so that wraparound edges are distinct).
func Torus2D(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic("topology: Torus2D requires both dimensions >= 3")
	}
	n := rows * cols
	adj := make([][]int, n)
	id := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			adj[v] = []int{id(r-1, c), id(r+1, c), id(r, c-1), id(r, c+1)}
		}
	}
	return NewGraph(fmt.Sprintf("torus%dx%d", rows, cols), adj)
}

// Hypercube returns the dim-dimensional hypercube on 2^dim vertices.
// It panics if dim < 1 or dim > 20.
func Hypercube(dim int) *Graph {
	if dim < 1 || dim > 20 {
		panic("topology: Hypercube dimension out of range [1,20]")
	}
	n := 1 << dim
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		ns := make([]int, dim)
		for b := 0; b < dim; b++ {
			ns[b] = v ^ (1 << b)
		}
		adj[v] = ns
	}
	return NewGraph(fmt.Sprintf("hypercube%d", dim), adj)
}

// DeBruijn returns the undirected version of the binary de Bruijn graph on
// 2^dim vertices: v is adjacent to (2v mod n), (2v+1 mod n) and the vertices
// that map to v, with self-loops and duplicates removed. De Bruijn networks
// were the topology of the Paderborn transputer systems the authors worked
// with (cited [13]).
func DeBruijn(dim int) *Graph {
	if dim < 2 || dim > 20 {
		panic("topology: DeBruijn dimension out of range [2,20]")
	}
	n := 1 << dim
	sets := make([]map[int]struct{}, n)
	for v := 0; v < n; v++ {
		sets[v] = make(map[int]struct{}, 4)
	}
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		sets[a][b] = struct{}{}
		sets[b][a] = struct{}{}
	}
	for v := 0; v < n; v++ {
		addEdge(v, (2*v)%n)
		addEdge(v, (2*v+1)%n)
	}
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		ns := make([]int, 0, len(sets[v]))
		for u := range sets[v] {
			ns = append(ns, u)
		}
		// Sort for determinism (map iteration order is random).
		for i := 1; i < len(ns); i++ {
			for j := i; j > 0 && ns[j] < ns[j-1]; j-- {
				ns[j], ns[j-1] = ns[j-1], ns[j]
			}
		}
		adj[v] = ns
	}
	return NewGraph(fmt.Sprintf("debruijn%d", dim), adj)
}

// Butterfly returns the wrapped butterfly network BF(dim): dim·2^dim
// vertices arranged in dim levels of 2^dim rows; vertex (l, r) connects to
// (l+1 mod dim, r) and (l+1 mod dim, r XOR 2^l), plus the reverse edges —
// every vertex has degree 4 (2 for dim = 1). Butterflies appear in the
// paper's related work on dynamic tree embedding ([5], [19]).
func Butterfly(dim int) *Graph {
	if dim < 1 || dim > 16 {
		panic("topology: Butterfly dimension out of range [1,16]")
	}
	rows := 1 << dim
	n := dim * rows
	id := func(level, row int) int {
		return ((level%dim)+dim)%dim*rows + (row & (rows - 1))
	}
	sets := make([]map[int]struct{}, n)
	for v := range sets {
		sets[v] = make(map[int]struct{}, 4)
	}
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		sets[a][b] = struct{}{}
		sets[b][a] = struct{}{}
	}
	for l := 0; l < dim; l++ {
		for r := 0; r < rows; r++ {
			v := id(l, r)
			addEdge(v, id(l+1, r))
			addEdge(v, id(l+1, r^(1<<l)))
		}
	}
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		ns := make([]int, 0, len(sets[v]))
		for u := range sets[v] {
			ns = append(ns, u)
		}
		for i := 1; i < len(ns); i++ {
			for j := i; j > 0 && ns[j] < ns[j-1]; j-- {
				ns[j], ns[j-1] = ns[j-1], ns[j]
			}
		}
		adj[v] = ns
	}
	return NewGraph(fmt.Sprintf("butterfly%d", dim), adj)
}

// RandomRegular returns a connected random d-regular multigraph-free graph
// on n vertices, built by repeated pairing with retry. n*d must be even,
// d < n, and n >= 2. The construction retries until the pairing is simple
// and connected, which for the small d used in experiments terminates
// quickly with overwhelming probability.
func RandomRegular(n, d int, r *rng.RNG) *Graph {
	if n < 2 || d < 1 || d >= n || (n*d)%2 != 0 {
		panic("topology: invalid RandomRegular parameters")
	}
	for attempt := 0; ; attempt++ {
		if attempt > 10000 {
			panic("topology: RandomRegular failed to converge")
		}
		// Stub pairing model: each vertex has d stubs; shuffle and pair.
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for k := 0; k < d; k++ {
				stubs = append(stubs, v)
			}
		}
		r.ShuffleInts(stubs)
		ok := true
		seen := make(map[[2]int]bool, n*d/2)
		adj := make([][]int, n)
		for i := 0; i < len(stubs); i += 2 {
			a, b := stubs[i], stubs[i+1]
			if a == b {
				ok = false
				break
			}
			key := [2]int{min(a, b), max(a, b)}
			if seen[key] {
				ok = false
				break
			}
			seen[key] = true
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
		if !ok {
			continue
		}
		g := NewGraph(fmt.Sprintf("rr%d_%d", n, d), adj)
		if g.Connected() {
			return g
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
