package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lmbalance/internal/obs"
	"lmbalance/internal/wire"
)

// Defaults for Options fields left zero.
const (
	// DefaultMaxBytes bounds the whole segment ring on disk.
	DefaultMaxBytes = 8 << 20
	// DefaultBuffer is the hot-path channel depth: how many records may
	// be in flight to the writer before new ones are dropped (and the
	// drop journaled) rather than blocking the protocol.
	DefaultBuffer = 1024
	// minSegBytes floors the per-segment size so rotation stays rare.
	minSegBytes = 4096
)

// Options configures a Recorder.
type Options struct {
	// Dir is the recording directory (created if missing). One node per
	// directory; multi-node recordings use one subdirectory per node
	// (see LoadTree).
	Dir string
	// Node is the recording node's cluster id.
	Node int
	// MaxBytes bounds the segment ring (0 = DefaultMaxBytes). Snapshots
	// are preserved copies and do not count against it.
	MaxBytes int64
	// SegBytes is the rotation threshold per segment (0 = MaxBytes/8,
	// floored at minSegBytes).
	SegBytes int64
	// Buffer is the writer channel depth (0 = DefaultBuffer).
	Buffer int
}

// Recorder is one node's flight recorder. All recording methods are
// safe for concurrent use, never block on I/O (a full buffer drops the
// record and journals the gap), and are no-ops on a nil receiver — a
// nil *Recorder is the disabled path, like a nil *obs.Registry.
type Recorder struct {
	opts Options

	ch   chan pending
	stop chan struct{}
	done chan struct{}
	snap chan snapReq

	closed  atomic.Bool
	pool    sync.Pool
	nowNS   func() int64 // test hook; time.Now().UnixNano() by default
	lastErr atomic.Pointer[error]

	records   obs.Counter
	bytes     obs.Counter
	dropped   obs.Counter
	sealed    obs.Counter
	snapshots obs.Counter

	// writer-goroutine state (never touched from other goroutines)
	w         *segWriter
	segSeq    uint64
	lastWall  int64
	lastDrops int64
	scratch   []byte
	live      []liveSeg
	liveBytes int64
	snapSeq   int
}

// pending is one record in flight to the writer goroutine.
type pending struct {
	wall int64
	dir  Dir
	tail []byte // pooled; returned by the writer
}

type snapReq struct {
	reason string
	reply  chan snapResult
}

type snapResult struct {
	dir string
	err error
}

// liveSeg is one on-disk segment of the ring.
type liveSeg struct {
	seq   uint64
	path  string
	bytes int64
}

// segWriter is the open, current segment.
type segWriter struct {
	f       *os.File
	bw      *bufio.Writer
	path    string
	seq     uint64
	bytes   int64
	records int64
	first   int64
	last    int64
}

// Open creates (or resumes) a recording directory and starts the
// writer. Existing segments in the directory are kept, counted against
// the ring budget, and extended — a restarted daemon appends to its
// ring rather than clobbering the incident evidence it just wrote.
func Open(o Options) (*Recorder, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("flight: Options.Dir is required")
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	if o.SegBytes <= 0 {
		o.SegBytes = o.MaxBytes / 8
	}
	if o.SegBytes < minSegBytes {
		o.SegBytes = minSegBytes
	}
	if o.Buffer <= 0 {
		o.Buffer = DefaultBuffer
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	r := &Recorder{
		opts:  o,
		ch:    make(chan pending, o.Buffer),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		snap:  make(chan snapReq),
		nowNS: func() int64 { return time.Now().UnixNano() },
	}
	r.pool.New = func() any { b := make([]byte, 0, 512); return &b }
	// Resume: adopt segments already in the ring.
	segs, err := listSegments(o.Dir)
	if err != nil {
		return nil, err
	}
	for _, s := range segs {
		r.live = append(r.live, s)
		r.liveBytes += s.bytes
		if s.seq >= r.segSeq {
			r.segSeq = s.seq + 1
		}
	}
	go r.run()
	return r, nil
}

// Dir returns the recording directory ("" on a nil recorder).
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.opts.Dir
}

// Err returns the first write error the writer hit (nil if none): the
// recorder keeps running after an I/O error — recording must never
// take the cluster down — but the failure is not silent.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	if p := r.lastErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Register attaches the recorder's counters to an obs registry under
// the flight_* namespace, labeled with the node id.
func (r *Recorder) Register(reg *obs.Registry) {
	if r == nil || reg == nil {
		return
	}
	n := fmt.Sprintf("node=\"%d\"", r.opts.Node)
	reg.Attach(fmt.Sprintf("flight_records_total{%s}", n), &r.records)
	reg.Attach(fmt.Sprintf("flight_bytes_total{%s}", n), &r.bytes)
	reg.Attach(fmt.Sprintf("flight_dropped_total{%s}", n), &r.dropped)
	reg.Attach(fmt.Sprintf("flight_segments_sealed_total{%s}", n), &r.sealed)
	reg.Attach(fmt.Sprintf("flight_snapshots_total{%s}", n), &r.snapshots)
}

// Dropped returns the number of records dropped because the writer
// buffer was full.
func (r *Recorder) Dropped() int64 { return r.dropped.Value() }

// Records returns the number of records accepted for writing.
func (r *Recorder) Records() int64 { return r.records.Value() }

// put hands one record to the writer, dropping (and counting) when the
// buffer is full or the recorder is closed.
func (r *Recorder) put(dir Dir, tail *[]byte) {
	if r.closed.Load() {
		r.pool.Put(tail)
		return
	}
	p := pending{wall: r.nowNS(), dir: dir, tail: *tail}
	select {
	case r.ch <- p:
		r.records.Add(1)
	default:
		r.dropped.Add(1)
		r.pool.Put(tail)
	}
}

func (r *Recorder) buf() *[]byte {
	b := r.pool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// RecordSend records one frame this node sent to peer `to`.
func (r *Recorder) RecordSend(to int, m wire.Msg) {
	if r == nil {
		return
	}
	b := r.buf()
	*b = appendTailSend(*b, to, m)
	r.put(DirSend, b)
}

// RecordRecv records one frame delivered to this node.
func (r *Recorder) RecordRecv(m wire.Msg) {
	if r == nil {
		return
	}
	b := r.buf()
	*b = wire.AppendMsg(*b, m)
	r.put(DirRecv, b)
}

// Local records one local protocol decision.
func (r *Recorder) Local(kind LocalKind, op uint64, args ...int64) {
	if r == nil {
		return
	}
	b := r.buf()
	*b = appendTailLocal(*b, kind, op, args)
	r.put(DirLocal, b)
}

// Initiate records the start of a balancing protocol.
func (r *Recorder) Initiate(op, seq uint64, load, partners int) {
	r.Local(LocalInitiate, op, int64(seq), int64(load), int64(partners))
}

// Abort records a protocol abort with the cluster's reason label.
func (r *Recorder) Abort(op, seq uint64, load int, reason string) {
	r.Local(LocalAbort, op, int64(seq), int64(load), AbortCode(reason))
}

// FreezeExpired records a frozen partner releasing itself.
func (r *Recorder) FreezeExpired(op uint64, by int) {
	r.Local(LocalFreezeExpired, op, int64(by))
}

// PaceBackoff records an adaptive-pacer gap increase.
func (r *Recorder) PaceBackoff(gap time.Duration) {
	r.Local(LocalPaceBackoff, 0, int64(gap/time.Microsecond))
}

// Resolve records a successful collect: the initiator's post-balance
// load, just before its transfers go out.
func (r *Recorder) Resolve(op, seq uint64, loadAfter, partners int) {
	r.Local(LocalResolve, op, int64(seq), int64(loadAfter), int64(partners))
}

// Complete records one finished serving unit of a job that originated
// on this node.
func (r *Recorder) Complete(op, job uint64, hops int, sojournNS, transferNS int64) {
	r.Local(LocalComplete, op, int64(job), int64(hops), sojournNS, transferNS)
}

// Final records the node's end-of-run accounting — the recording-side
// copy of the conservation audit's inputs.
func (r *Recorder) Final(load int, generated, consumed, ingested, unitsDone, recordsHeld int64) {
	r.Local(LocalFinal, 0, int64(load), generated, consumed, ingested, unitsDone, recordsHeld)
}

// Snapshot seals the current segment and copies the live ring into
// snapshots/snap-NNN-<reason>/ inside the recording directory,
// returning the snapshot path. Safe while recording continues (the
// writer pauses between records) and after Close (the ring is sealed).
func (r *Recorder) Snapshot(reason string) (string, error) {
	if r == nil {
		return "", fmt.Errorf("flight: nil recorder")
	}
	req := snapReq{reason: reason, reply: make(chan snapResult, 1)}
	select {
	case r.snap <- req:
		res := <-req.reply
		return res.dir, res.err
	case <-r.done:
		// Writer gone: everything on disk is sealed; copy directly.
		dir, err := r.takeSnapshot(reason)
		return dir, err
	}
}

// Close stops the writer, flushing buffered records and sealing the
// current segment. Records arriving after Close are dropped silently.
// Close is idempotent.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	if r.closed.CompareAndSwap(false, true) {
		close(r.stop)
	}
	<-r.done
	return r.Err()
}

// run is the writer goroutine: all file I/O happens here.
func (r *Recorder) run() {
	defer close(r.done)
	for {
		select {
		case p := <-r.ch:
			r.write(p)
		case req := <-r.snap:
			// Drain queued records first: everything recorded before the
			// snapshot request must be in it (select order is random).
			for draining := true; draining; {
				select {
				case p := <-r.ch:
					r.write(p)
				default:
					draining = false
				}
			}
			dir, err := r.sealAndSnapshot(req.reason)
			req.reply <- snapResult{dir: dir, err: err}
		case <-r.stop:
			for {
				select {
				case p := <-r.ch:
					r.write(p)
				default:
					// Journal a trailing gap (drops with no record after
					// them) before sealing, so the stream accounts for
					// every record offered to it.
					if d := r.dropped.Value(); d > r.lastDrops {
						gap := d - r.lastDrops
						r.lastDrops = d
						tail := appendTailLocal(nil, LocalDrops, 0, []int64{gap})
						r.writeRecord(pending{wall: r.nowNS(), dir: DirLocal, tail: tail})
					}
					r.seal()
					return
				}
			}
		}
	}
}

// fail records a writer error without stopping the recorder.
func (r *Recorder) fail(err error) {
	if err == nil {
		return
	}
	r.lastErr.CompareAndSwap(nil, &err)
}

// write appends one record to the current segment, journaling any
// drop gap first and rotating at the segment boundary.
func (r *Recorder) write(p pending) {
	defer func() {
		b := p.tail
		r.pool.Put(&b)
	}()
	if d := r.dropped.Value(); d > r.lastDrops {
		gap := d - r.lastDrops
		r.lastDrops = d
		tail := appendTailLocal(nil, LocalDrops, 0, []int64{gap})
		r.writeRecord(pending{wall: p.wall, dir: DirLocal, tail: tail})
	}
	r.writeRecord(p)
}

func (r *Recorder) writeRecord(p pending) {
	if r.w == nil {
		if err := r.openSegment(p.wall); err != nil {
			r.fail(err)
			return
		}
	}
	prev := r.lastWall
	r.scratch = appendRecord(r.scratch[:0], p.dir, p.wall-prev, p.tail)
	if _, err := r.w.bw.Write(r.scratch); err != nil {
		r.fail(err)
		return
	}
	r.lastWall = p.wall
	n := int64(len(r.scratch))
	r.w.bytes += n
	r.w.records++
	r.w.last = p.wall
	r.bytes.Add(n)
	if r.w.bytes >= r.opts.SegBytes {
		r.seal()
	}
}

// openSegment starts the next segment file; its header reference stamp
// resets the wall-delta chain.
func (r *Recorder) openSegment(wall int64) error {
	path := filepath.Join(r.opts.Dir, segName(r.segSeq))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := &segWriter{
		f: f, bw: bufio.NewWriterSize(f, 32<<10),
		path: path, seq: r.segSeq, first: wall, last: wall,
	}
	hdr := appendHeader(nil, segHeader{node: r.opts.Node, seq: r.segSeq, wallRefNS: wall, codec: wire.Version})
	if _, err := w.bw.Write(hdr); err != nil {
		f.Close()
		return err
	}
	w.bytes = int64(len(hdr))
	r.w = w
	r.segSeq++
	r.lastWall = wall
	return nil
}

// seal flushes and closes the current segment, appends its index line,
// and trims the ring to the byte budget.
func (r *Recorder) seal() {
	w := r.w
	if w == nil {
		return
	}
	r.w = nil
	if err := w.bw.Flush(); err != nil {
		r.fail(err)
	}
	if err := w.f.Close(); err != nil {
		r.fail(err)
	}
	r.sealed.Add(1)
	r.live = append(r.live, liveSeg{seq: w.seq, path: w.path, bytes: w.bytes})
	r.liveBytes += w.bytes
	r.appendIndex(w)
	for len(r.live) > 1 && r.liveBytes > r.opts.MaxBytes {
		old := r.live[0]
		r.live = r.live[1:]
		r.liveBytes -= old.bytes
		if err := os.Remove(old.path); err != nil && !os.IsNotExist(err) {
			r.fail(err)
		}
	}
}

// appendIndex adds one sealed segment's metadata to the append-only
// index.jsonl. The index is a cache: replay scans the directory, so a
// missing or stale index (crash, trimmed segments) costs nothing.
func (r *Recorder) appendIndex(w *segWriter) {
	f, err := os.OpenFile(filepath.Join(r.opts.Dir, "index.jsonl"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		r.fail(err)
		return
	}
	defer f.Close()
	line, _ := json.Marshal(map[string]any{
		"seg": w.seq, "file": filepath.Base(w.path),
		"records": w.records, "bytes": w.bytes,
		"first_wall_ns": w.first, "last_wall_ns": w.last,
	})
	if _, err := f.Write(append(line, '\n')); err != nil {
		r.fail(err)
	}
}

// sealAndSnapshot (writer goroutine) seals the open segment so the
// snapshot captures everything recorded so far, then copies the ring.
func (r *Recorder) sealAndSnapshot(reason string) (string, error) {
	r.seal()
	return r.takeSnapshot(reason)
}

// takeSnapshot copies the sealed ring into a fresh snapshot directory
// with a manifest.
func (r *Recorder) takeSnapshot(reason string) (string, error) {
	r.snapSeq++
	dir := filepath.Join(r.opts.Dir, "snapshots",
		fmt.Sprintf("snap-%03d-%s", r.snapSeq, sanitizeReason(reason)))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	segs, err := listSegments(r.opts.Dir)
	if err != nil {
		return "", err
	}
	var copied []string
	var total int64
	for _, s := range segs {
		n, err := copyFile(filepath.Join(dir, filepath.Base(s.path)), s.path)
		if err != nil {
			return "", err
		}
		copied = append(copied, filepath.Base(s.path))
		total += n
	}
	man, _ := json.MarshalIndent(map[string]any{
		"node": r.opts.Node, "reason": reason, "at_ns": r.nowNS(),
		"segments": copied, "bytes": total,
	}, "", "  ")
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), append(man, '\n'), 0o644); err != nil {
		return "", err
	}
	r.snapshots.Add(1)
	return dir, nil
}

func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	out := make([]byte, 0, len(reason))
	for i := 0; i < len(reason) && len(out) < 32; i++ {
		c := reason[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func copyFile(dst, src string) (int64, error) {
	in, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(out, in)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// segName formats a segment file name; the zero-padded sequence keeps
// lexical and numeric order identical.
func segName(seq uint64) string { return fmt.Sprintf("seg-%08d.lbfr", seq) }

// listSegments returns the directory's segment files in sequence
// order.
func listSegments(dir string) ([]liveSeg, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []liveSeg
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".lbfr") {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, "seg-%d.lbfr", &seq); err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, liveSeg{seq: seq, path: filepath.Join(dir, name), bytes: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}
