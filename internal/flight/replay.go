package flight

import (
	"fmt"
	"math"
	"sort"

	"lmbalance/internal/wire"
)

// Violation is one illegal protocol step found by replay, anchored to
// the exact record that broke the rule.
type Violation struct {
	Node   int
	Index  int // position in the node's event stream
	WallNS int64
	Op     uint64
	Rule   string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("node %d event %d op=%d: %s (%s)", v.Node, v.Index, v.Op, v.Rule, v.Detail)
}

// Final is one node's end-of-run accounting from its LocalFinal record.
type Final struct {
	Load        int
	Generated   int64
	Consumed    int64
	Ingested    int64
	UnitsDone   int64
	RecordsHeld int64
}

// NodeAudit is the shadow machine's verdict on one node's stream.
type NodeAudit struct {
	Node          int
	Events        int
	MsgsSent      int64
	MsgsRecv      int64
	Initiated     int64
	Resolved      int64
	Aborted       int64
	FreezeExpired int64
	Completes     int64
	Drops         int64 // records the recorder had to discard (journaled gaps)
	Torn          bool
	Final         *Final
	Violations    []Violation
}

// VDPoint is one point of the re-derived variation-density trajectory.
type VDPoint struct {
	TNS  int64 // nanos since the recording's first event
	VD   float64
	Mean float64
}

// AuditResult is the whole-recording verdict.
type AuditResult struct {
	Nodes      []*NodeAudit
	Violations []Violation // all, ordered by (wall, node, index)
	First      *Violation  // the first illegal step, or nil

	// Conservation re-derived from the LocalFinal records. Valid (and
	// comparable bit-for-bit against the live run's audit) only when
	// every node's stream carries its final accounting.
	FinalsSeen  int
	TotalLoad   int64
	Generated   int64
	Consumed    int64
	Ingested    int64
	UnitsDone   int64
	RecordsHeld int64

	// VD is the offline variation-density trajectory (paper §5),
	// re-derived purely from load anchors in the recording.
	VD []VDPoint

	// SojournNS holds every replayed completion's sojourn, sorted —
	// per-unit latency reconstructed with no debug endpoint.
	SojournNS []int64
}

// Conserved reports offline packet conservation: Σload == Σgen − Σcon
// over the recorded finals.
func (a *AuditResult) Conserved() bool { return a.TotalLoad == a.Generated-a.Consumed }

// JobsConserved reports offline work conservation over the recorded
// finals: every ingested unit completed or still held.
func (a *AuditResult) JobsConserved() bool {
	return a.Ingested == a.UnitsDone+a.RecordsHeld
}

// SojournQuantile returns the q-quantile (0..1) of replayed sojourns.
func (a *AuditResult) SojournQuantile(q float64) int64 {
	if len(a.SojournNS) == 0 {
		return 0
	}
	i := int(q * float64(len(a.SojournNS)-1))
	return a.SojournNS[i]
}

// shadow is the per-node shadow protocol state machine. It re-derives
// the node's freeze/initiate state purely from the node's own actions
// (sends and local decisions, which are recorded in execution order)
// and uses received frames only for partner bookkeeping and lazy
// freeze clears.
//
// Lazy clears: the tap's receive pump records a frame before the node
// processes it, so a Recv Release/Transfer record can precede node
// actions taken while the node still considered itself frozen. A
// matching clear therefore only sets pendingClear; the freeze stays in
// force for legality until the node itself acts as unfrozen (sends a
// FreezeAck or initiates), at which point the pending clear is applied.
type shadow struct {
	audit *NodeAudit

	lastSeq uint64

	inflight bool
	op       uint64
	seq      uint64
	partners int
	frzSent  int
	acked    map[int]int // peer -> load it acked with

	resolving   bool
	resolveOp   uint64
	resolveLoad int
	expect      int
	shares      []int
	sent        map[int]bool

	frozen       bool
	pendingClear bool
	frozenBy     int
	frozenSeq    uint64
	frozenOp     uint64

	load      int64 // last known load anchor
	loadKnown bool

	byeLoad  int
	byeSent  bool
	finalsAt int
}

func newShadow(node int) *shadow {
	return &shadow{
		audit: &NodeAudit{Node: node},
		acked: map[int]int{},
		sent:  map[int]bool{},
	}
}

func (s *shadow) flag(ev Event, rule, format string, args ...any) {
	s.audit.Violations = append(s.audit.Violations, Violation{
		Node: ev.Node, Index: ev.Seq, WallNS: ev.WallNS,
		Op: eventOp(ev), Rule: rule, Detail: fmt.Sprintf(format, args...),
	})
}

// eventOp returns the balancing-op id an event belongs to.
func eventOp(ev Event) uint64 {
	if ev.Dir == DirLocal {
		return ev.Op
	}
	return ev.Msg.Op
}

// anchor records a known-load observation for the VD trajectory.
func (s *shadow) anchor(load int64) {
	s.load = load
	s.loadKnown = true
}

// clearFreeze applies a pending or direct freeze clear.
func (s *shadow) clearFreeze() {
	s.frozen = false
	s.pendingClear = false
}

type loadSample struct {
	wall int64
	node int
	load int64
}

func (s *shadow) step(ev Event, samples *[]loadSample) {
	s.audit.Events++
	switch ev.Dir {
	case DirLocal:
		s.local(ev, samples)
	case DirSend:
		s.audit.MsgsSent++
		s.sendMsg(ev, samples)
	case DirRecv:
		s.audit.MsgsRecv++
		s.recvMsg(ev, samples)
	}
}

func (s *shadow) local(ev Event, samples *[]loadSample) {
	switch ev.Kind {
	case LocalInitiate:
		seq, load, partners := uint64(ev.Arg(0)), ev.Arg(1), int(ev.Arg(2))
		s.audit.Initiated++
		if s.inflight {
			s.flag(ev, "initiate_while_inflight", "op %d still in flight", s.op)
		}
		if s.frozen {
			if s.pendingClear {
				s.clearFreeze()
			} else {
				s.flag(ev, "initiate_while_frozen", "frozen by %d", s.frozenBy)
			}
		}
		if seq <= s.lastSeq {
			s.flag(ev, "seq_regressed", "seq %d after %d", seq, s.lastSeq)
		}
		s.lastSeq = seq
		s.inflight, s.op, s.seq, s.partners = true, ev.Op, seq, partners
		s.frzSent = 0
		s.acked = map[int]int{}
		s.resolving = false
		s.anchor(load)
		*samples = append(*samples, loadSample{ev.WallNS, ev.Node, load})

	case LocalAbort:
		seq, load := uint64(ev.Arg(0)), ev.Arg(1)
		s.audit.Aborted++
		if !s.inflight || ev.Op != s.op {
			s.flag(ev, "abort_without_protocol", "abort op %d, in flight %d", ev.Op, s.op)
		}
		if seq > s.lastSeq {
			s.lastSeq = seq
		}
		s.inflight = false
		s.anchor(load)
		*samples = append(*samples, loadSample{ev.WallNS, ev.Node, load})

	case LocalResolve:
		seq, load, partners := uint64(ev.Arg(0)), ev.Arg(1), int(ev.Arg(2))
		s.audit.Resolved++
		if !s.inflight || ev.Op != s.op {
			s.flag(ev, "resolve_without_protocol", "resolve op %d, in flight %d", ev.Op, s.op)
		} else if len(s.acked) != partners {
			s.flag(ev, "resolve_partner_mismatch", "%d acks recorded, resolve says %d", len(s.acked), partners)
		}
		if seq > s.lastSeq {
			s.lastSeq = seq
		}
		s.inflight = false
		s.resolving, s.resolveOp, s.resolveLoad = true, ev.Op, int(load)
		s.expect = partners
		s.shares = append(s.shares[:0], int(load))
		s.sent = map[int]bool{}
		s.anchor(load)
		*samples = append(*samples, loadSample{ev.WallNS, ev.Node, load})

	case LocalFreezeExpired:
		s.audit.FreezeExpired++
		if !s.frozen {
			s.flag(ev, "freeze_expiry_while_free", "expiry for freezer %d", ev.Arg(0))
		}
		s.clearFreeze()

	case LocalComplete:
		s.audit.Completes++

	case LocalFinal:
		s.audit.Final = &Final{
			Load:        int(ev.Arg(0)),
			Generated:   ev.Arg(1),
			Consumed:    ev.Arg(2),
			Ingested:    ev.Arg(3),
			UnitsDone:   ev.Arg(4),
			RecordsHeld: ev.Arg(5),
		}
		s.anchor(ev.Arg(0))
		*samples = append(*samples, loadSample{ev.WallNS, ev.Node, ev.Arg(0)})

	case LocalDrops:
		s.audit.Drops += ev.Arg(0)

	case LocalPaceBackoff:
		// informational only
	}
}

func (s *shadow) sendMsg(ev Event, samples *[]loadSample) {
	m := ev.Msg
	switch m.Kind {
	case wire.FreezeReq:
		if !s.inflight || m.Op != s.op || m.Seq != s.seq {
			s.flag(ev, "freeze_req_outside_protocol", "req op=%d seq=%d, in flight op=%d seq=%d", m.Op, m.Seq, s.op, s.seq)
			return
		}
		s.frzSent++
		if s.frzSent > s.partners {
			s.flag(ev, "freeze_req_excess", "request %d of %d partners", s.frzSent, s.partners)
		}

	case wire.FreezeAck:
		if s.inflight {
			s.flag(ev, "ack_while_inflight", "acked %d during own op %d", ev.Peer, s.op)
		}
		if s.frozen {
			if s.pendingClear {
				s.clearFreeze()
			} else {
				s.flag(ev, "ack_while_frozen", "already frozen by %d seq %d", s.frozenBy, s.frozenSeq)
			}
		}
		s.frozen, s.pendingClear = true, false
		s.frozenBy, s.frozenSeq, s.frozenOp = ev.Peer, m.Seq, m.Op
		s.anchor(int64(m.Load))
		*samples = append(*samples, loadSample{ev.WallNS, ev.Node, int64(m.Load)})

	case wire.FreezeBusy:
		if !s.inflight && !s.frozen {
			s.flag(ev, "busy_while_free", "busy to %d with no protocol and no freeze", ev.Peer)
		}

	case wire.Transfer:
		if !s.resolving || m.Op != s.resolveOp {
			s.flag(ev, "transfer_outside_op", "transfer op %d, resolving %d", m.Op, s.resolveOp)
			return
		}
		ackLoad, ok := s.acked[ev.Peer]
		if !ok {
			s.flag(ev, "transfer_to_unacked", "peer %d never acked op %d", ev.Peer, m.Op)
			return
		}
		if s.sent[ev.Peer] {
			s.flag(ev, "transfer_duplicate", "second transfer to %d in op %d", ev.Peer, m.Op)
			return
		}
		s.sent[ev.Peer] = true
		s.shares = append(s.shares, ackLoad+m.Amount)
		if len(s.shares) == s.expect+1 {
			lo, hi := s.shares[0], s.shares[0]
			for _, v := range s.shares[1:] {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if hi-lo > 1 {
				s.flag(ev, "imbalance_violation", "post-balance shares %v spread %d > 1", s.shares, hi-lo)
			}
			s.resolving = false
		}

	case wire.Bye:
		s.byeSent = true
		s.byeLoad = m.Load

	case wire.Release, wire.TransferAck, wire.Idle, wire.Quit, wire.JobMove, wire.JobDone:
		// Always legal: releases may target stale epochs by design, the
		// rest carry no freeze/balance state.
	}
}

func (s *shadow) recvMsg(ev Event, samples *[]loadSample) {
	m := ev.Msg
	switch m.Kind {
	case wire.FreezeAck:
		if s.inflight && m.Seq == s.seq && m.Op == s.op {
			s.acked[m.From] = m.Load
		}

	case wire.Transfer:
		if s.loadKnown {
			s.anchor(s.load + int64(m.Amount))
			*samples = append(*samples, loadSample{ev.WallNS, ev.Node, s.load})
		}
		if s.frozen && m.From == s.frozenBy && m.Seq == s.frozenSeq {
			s.pendingClear = true
		}

	case wire.Release:
		if s.frozen && m.From == s.frozenBy && m.Seq == s.frozenSeq {
			s.pendingClear = true
		}
	}
}

// finish runs the end-of-stream checks.
func (s *shadow) finish(lastWall int64) {
	if s.byeSent && s.audit.Final != nil && s.byeLoad != s.audit.Final.Load {
		s.audit.Violations = append(s.audit.Violations, Violation{
			Node: s.audit.Node, Index: s.audit.Events - 1, WallNS: lastWall,
			Rule:   "bye_mismatch",
			Detail: fmt.Sprintf("Bye reported load %d, final accounting says %d", s.byeLoad, s.audit.Final.Load),
		})
	}
}

// vdBuckets is the resolution of the re-derived VD trajectory.
const vdBuckets = 32

// Audit replays a recording through per-node shadow state machines and
// returns the combined verdict: legality violations (first one
// flagged), offline conservation, the VD trajectory, and sojourns.
func Audit(rec *Recording) *AuditResult {
	res := &AuditResult{}
	var samples []loadSample
	for _, nr := range rec.Nodes {
		s := newShadow(nr.Node)
		s.audit.Torn = nr.Torn
		var lastWall int64
		for _, ev := range nr.Events {
			s.step(ev, &samples)
			lastWall = ev.WallNS
			if ev.Dir == DirLocal && ev.Kind == LocalComplete {
				res.SojournNS = append(res.SojournNS, ev.Arg(2))
			}
		}
		s.finish(lastWall)
		if s.audit.Final != nil {
			res.FinalsSeen++
			res.TotalLoad += int64(s.audit.Final.Load)
			res.Generated += s.audit.Final.Generated
			res.Consumed += s.audit.Final.Consumed
			res.Ingested += s.audit.Final.Ingested
			res.UnitsDone += s.audit.Final.UnitsDone
			res.RecordsHeld += s.audit.Final.RecordsHeld
		}
		res.Nodes = append(res.Nodes, s.audit)
		res.Violations = append(res.Violations, s.audit.Violations...)
	}
	sort.Slice(res.Violations, func(i, j int) bool {
		a, b := res.Violations[i], res.Violations[j]
		if a.WallNS != b.WallNS {
			return a.WallNS < b.WallNS
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Index < b.Index
	})
	if len(res.Violations) > 0 {
		res.First = &res.Violations[0]
	}
	res.VD = vdTrajectory(samples, len(rec.Nodes))
	sort.Slice(res.SojournNS, func(i, j int) bool { return res.SojournNS[i] < res.SojournNS[j] })
	return res
}

// vdTrajectory re-derives the variation-density curve (std/mean over
// node loads, paper §5) from the recording's load anchors: each
// bucket's value is computed from every node's last known load at the
// bucket boundary, starting once all nodes have reported one.
func vdTrajectory(samples []loadSample, nodes int) []VDPoint {
	if len(samples) == 0 || nodes == 0 {
		return nil
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].wall < samples[j].wall })
	t0, t1 := samples[0].wall, samples[len(samples)-1].wall
	if t1 == t0 {
		t1 = t0 + 1
	}
	span := t1 - t0
	last := map[int]int64{}
	var out []VDPoint
	i := 0
	for b := 1; b <= vdBuckets; b++ {
		edge := t0 + span*int64(b)/vdBuckets
		for i < len(samples) && samples[i].wall <= edge {
			last[samples[i].node] = samples[i].load
			i++
		}
		if len(last) < nodes {
			continue // not every node has anchored yet
		}
		var sum, sumSq float64
		for _, l := range last {
			sum += float64(l)
			sumSq += float64(l) * float64(l)
		}
		n := float64(len(last))
		mean := sum / n
		variance := sumSq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		vd := 0.0
		if mean != 0 {
			vd = math.Sqrt(variance) / mean
		}
		out = append(out, VDPoint{TNS: edge - t0, VD: vd, Mean: mean})
	}
	return out
}

// Timeline returns every event of one balancing op across all nodes,
// in merged order — the per-op reconstruction that previously needed a
// live /trace endpoint.
func (r *Recording) Timeline(op uint64) []Event {
	var out []Event
	for _, ev := range r.Merge() {
		if op != 0 && eventOp(ev) == op {
			out = append(out, ev)
		}
	}
	return out
}

// Ops returns the distinct balancing-op ids in the recording, ordered
// by first appearance in the merged stream.
func (r *Recording) Ops() []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, ev := range r.Merge() {
		if op := eventOp(ev); op != 0 && !seen[op] {
			seen[op] = true
			out = append(out, op)
		}
	}
	return out
}

// DiffRow is one field where two recordings disagree.
type DiffRow struct {
	Field string
	A, B  string
}

// Diff compares two audits field-by-field — the "paced vs free-running"
// or "before vs after" comparison — returning only the disagreements.
func Diff(a, b *AuditResult) []DiffRow {
	var rows []DiffRow
	add := func(field string, av, bv any) {
		as, bs := fmt.Sprint(av), fmt.Sprint(bv)
		if as != bs {
			rows = append(rows, DiffRow{Field: field, A: as, B: bs})
		}
	}
	add("nodes", len(a.Nodes), len(b.Nodes))
	add("violations", len(a.Violations), len(b.Violations))
	var ai, ar, ab, bi, br, bb int64
	var am, bm int64
	for _, n := range a.Nodes {
		ai += n.Initiated
		ar += n.Resolved
		ab += n.Aborted
		am += n.MsgsSent
	}
	for _, n := range b.Nodes {
		bi += n.Initiated
		br += n.Resolved
		bb += n.Aborted
		bm += n.MsgsSent
	}
	add("initiated", ai, bi)
	add("resolved", ar, br)
	add("aborted", ab, bb)
	add("msgs_sent", am, bm)
	add("total_load", a.TotalLoad, b.TotalLoad)
	add("conserved", a.Conserved(), b.Conserved())
	add("jobs_conserved", a.JobsConserved(), b.JobsConserved())
	if len(a.VD) > 0 && len(b.VD) > 0 {
		add("vd_final", fmt.Sprintf("%.4f", a.VD[len(a.VD)-1].VD), fmt.Sprintf("%.4f", b.VD[len(b.VD)-1].VD))
	}
	add("completes", int64(len(a.SojournNS)), int64(len(b.SojournNS)))
	return rows
}
