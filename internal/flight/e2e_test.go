package flight_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"lmbalance/internal/cluster"
	"lmbalance/internal/flight"
	"lmbalance/internal/wire"
)

// TestReplayReproducesLiveRun is the acceptance check for the flight
// recorder: record a whole loopback cluster run through transport taps
// and protocol hooks, then replay the recording offline and require the
// shadow audit to reproduce the live run's accounting bit for bit —
// conservation, per-node protocol counts, final loads — with zero
// legality violations.
func TestReplayReproducesLiveRun(t *testing.T) {
	const n = 4
	root := t.TempDir()
	lnet := wire.NewLoopback(n)
	recs := make([]*flight.Recorder, n)
	transports := make([]wire.Transport, n)
	for i := 0; i < n; i++ {
		rec, err := flight.Open(flight.Options{
			Dir:  filepath.Join(root, fmt.Sprintf("node-%d", i)),
			Node: i,
		})
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = rec
		transports[i] = rec.Tap(lnet.Transport(i))
	}

	res, err := cluster.RunCluster(cluster.ClusterConfig{
		N: n, Delta: 2, F: 2, Steps: 400, Seed: 42,
		Flight: recs,
	}, transports)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conserved() {
		t.Fatal("live run itself failed conservation")
	}
	for _, rec := range recs {
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
		if rec.Dropped() != 0 {
			t.Fatalf("recorder dropped %d records; identity needs a complete stream", rec.Dropped())
		}
	}

	recording, err := flight.LoadTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(recording.Nodes) != n {
		t.Fatalf("loaded %d node streams, want %d", len(recording.Nodes), n)
	}
	audit := flight.Audit(recording)

	if audit.First != nil {
		t.Fatalf("clean run flagged: %v (of %d violations)", *audit.First, len(audit.Violations))
	}
	if audit.FinalsSeen != n {
		t.Fatalf("finals from %d of %d nodes", audit.FinalsSeen, n)
	}

	// Bit-identity against the live result, per node and cluster-wide.
	for i, na := range audit.Nodes {
		live := res.Nodes[i]
		if na.Node != i {
			t.Fatalf("node stream %d claims id %d", i, na.Node)
		}
		if na.Initiated != live.Initiated {
			t.Errorf("node %d initiated: replay %d live %d", i, na.Initiated, live.Initiated)
		}
		if na.Resolved != live.Completed {
			t.Errorf("node %d completed: replay %d live %d", i, na.Resolved, live.Completed)
		}
		if na.Aborted != live.Aborted {
			t.Errorf("node %d aborted: replay %d live %d", i, na.Aborted, live.Aborted)
		}
		if na.FreezeExpired != live.FreezeExpired {
			t.Errorf("node %d freeze expiries: replay %d live %d", i, na.FreezeExpired, live.FreezeExpired)
		}
		if na.Final == nil || na.Final.Load != live.FinalLoad {
			t.Errorf("node %d final load: replay %+v live %d", i, na.Final, live.FinalLoad)
		}
		if na.Final.Generated != live.Generated || na.Final.Consumed != live.Consumed {
			t.Errorf("node %d gen/con: replay %d/%d live %d/%d",
				i, na.Final.Generated, na.Final.Consumed, live.Generated, live.Consumed)
		}
		if na.MsgsSent != live.MsgsSent {
			t.Errorf("node %d frames sent: replay %d live %d", i, na.MsgsSent, live.MsgsSent)
		}
		// Receives recorded ≤ transport count: frames still queued in the
		// inner inbox at close were counted by the transport but never
		// delivered, so the node could not have acted on them.
		if na.MsgsRecv > live.MsgsRecv {
			t.Errorf("node %d frames recv: replay %d > live %d", i, na.MsgsRecv, live.MsgsRecv)
		}
	}
	if audit.TotalLoad != res.TotalLoad() {
		t.Errorf("total load: replay %d live %d", audit.TotalLoad, res.TotalLoad())
	}
	if audit.Conserved() != res.Conserved() {
		t.Errorf("conservation verdicts disagree: replay %v live %v", audit.Conserved(), res.Conserved())
	}

	// Per-op timelines reconstruct offline: every resolved op's timeline
	// holds its initiate, the freeze round trip, and its transfers.
	ops := recording.Ops()
	if len(ops) == 0 {
		t.Fatal("no ops in recording")
	}
	checked := 0
	for _, op := range ops {
		tl := recording.Timeline(op)
		var hasInit, hasResolve bool
		for _, ev := range tl {
			if ev.Dir == flight.DirLocal && ev.Kind == flight.LocalInitiate {
				hasInit = true
			}
			if ev.Dir == flight.DirLocal && ev.Kind == flight.LocalResolve {
				hasResolve = true
			}
		}
		if !hasInit {
			t.Fatalf("op %d timeline has no initiate (%d events)", op, len(tl))
		}
		if hasResolve {
			checked++
		}
	}
	if int64(checked) != res.Completed() {
		t.Errorf("timelines with a resolve: %d, live completed ops: %d", checked, res.Completed())
	}

	// The VD trajectory re-derives offline.
	if len(audit.VD) == 0 {
		t.Error("no VD trajectory from a full recording")
	}
}

// TestReplayFlagsDoubleBalance tamper-checks the end-to-end pipeline
// from a real recording: rewriting one node's history so a transfer is
// duplicated must produce a verdict naming that exact record.
func TestReplayFlagsDoubleBalance(t *testing.T) {
	const n = 3
	root := t.TempDir()
	lnet := wire.NewLoopback(n)
	recs := make([]*flight.Recorder, n)
	transports := make([]wire.Transport, n)
	for i := 0; i < n; i++ {
		rec, err := flight.Open(flight.Options{
			Dir:  filepath.Join(root, fmt.Sprintf("node-%d", i)),
			Node: i,
		})
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = rec
		transports[i] = rec.Tap(lnet.Transport(i))
	}
	if _, err := cluster.RunCluster(cluster.ClusterConfig{
		N: n, Delta: 1, F: 2, Steps: 300, Seed: 7,
		Flight: recs,
	}, transports); err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		rec.Close()
	}

	// Find a node whose stream has a transfer to tamper with.
	victim := -1
	for i := 0; i < n; i++ {
		nr, err := flight.LoadDir(filepath.Join(root, fmt.Sprintf("node-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range nr.Events {
			if ev.Dir == flight.DirSend && ev.Msg.Kind == wire.Transfer {
				victim = i
			}
		}
		if victim >= 0 {
			break
		}
	}
	if victim < 0 {
		t.Skip("run completed no transfers to tamper with")
	}
	dst := t.TempDir()
	err := flight.Rewrite(filepath.Join(root, fmt.Sprintf("node-%d", victim)), dst,
		func(ev flight.Event) flight.Event {
			if ev.Dir == flight.DirSend && ev.Msg.Kind == wire.Transfer {
				ev.Msg.Amount += 5 // steal five packets in transit
			}
			return ev
		})
	if err != nil {
		t.Fatal(err)
	}
	nr, err := flight.LoadDir(dst)
	if err != nil {
		t.Fatal(err)
	}
	verdict := flight.Audit(&flight.Recording{Nodes: []*flight.NodeRecording{nr}})
	if verdict.First == nil {
		t.Fatal("tampered history passed the audit")
	}
	if verdict.First.Rule != "imbalance_violation" {
		t.Fatalf("flagged %q, want imbalance_violation", verdict.First.Rule)
	}
}
