// Package flight is the cluster's black-box flight recorder and its
// offline replay auditor.
//
// The live observability layers (internal/obs: metrics, op tracing,
// journey stamps, burn-rate alerts) answer "what is happening now" —
// but when an alert fires, the evidence behind it is already gone: the
// trace ring has wrapped and the monitor deliberately scrapes metrics
// only, because full trace scrapes perturb the watched cluster. This
// package closes the forensic gap. A Recorder taps every frame a node
// sends or receives (as wire.Transport middleware) plus the node's own
// protocol decisions (initiate, resolve, abort, freeze expiry, pace
// backoff, serving completions, final accounting) into a bounded
// on-disk ring of binary segments. Replay loads those segments —
// possibly long after the process died — merges the per-node streams
// on their wall stamps, and drives a shadow protocol state machine per
// node that re-checks the paper's invariants offline: freeze/ack/
// transfer legality, the ±1 post-balance share bound, epoch
// monotonicity, packet and job conservation, and the VD trajectory —
// flagging the first illegal step with its position in the recording.
//
// # Segment format
//
// A recording is a directory of segment files (seg-NNNNNNNN.lbfr)
// forming a size-bounded ring: the writer rotates at SegBytes and
// deletes the oldest segment when the directory exceeds MaxBytes.
// Each segment is
//
//	header  := "LBFR" format(1B) uvarint(node) uvarint(segseq)
//	           uvarint(zig(wallRefNS)) codec(1B)
//	record  := uvarint(len(body)) body
//	body    := dir(1B) uvarint(zig(dWallNS)) tail
//
// where dWallNS is delta-coded against the previous record's stamp
// (the header reference for the first record) and tail depends on dir:
//
//	DirSend  uvarint(zig(peer)) wire-payload     frame this node sent
//	DirRecv  wire-payload                        frame delivered to it
//	DirLocal kind(1B) uvarint(op) uvarint(n) n×uvarint(zig(arg))
//
// Wire payloads reuse the existing length-prefixed codec verbatim
// (wire.AppendMsg / wire.DecodeMsg), so a recording decodes with the
// same strictness as the wire itself and old recordings carrying v1/v2
// payloads replay under a v3 reader. Local events are a forward-
// compatible kind + arg-count encoding: a reader that knows fewer args
// than the writer wrote still decodes the record.
//
// Writes are lock-free on the hot path: the caller encodes into a
// pooled buffer and hands it to a buffered channel; a single writer
// goroutine does all file I/O. When the channel is full the record is
// dropped and counted — the writer then journals the gap into the
// stream as a LocalDrops record, so the auditor can see (and degrade
// around) missing evidence instead of silently trusting a hole.
// index.jsonl is an append-only cache of sealed-segment metadata;
// replay never requires it (the reader scans the directory), so a
// crash that loses the index loses nothing.
//
// # Snapshots
//
// Snapshot seals the current segment and copies the live ring into
// snapshots/snap-NNN-<reason>/ with a manifest — the incident
// artifact. obs.Monitor's OnAlert hook calls it on every burn-rate
// alert transition, so a firing /health leaves a replayable recording
// behind (see cmd/lbnode).
package flight

import "fmt"

// Dir says which way a recorded frame moved (or that the record is a
// local decision, not a frame).
type Dir uint8

const (
	// DirSend is a frame this node put on the wire.
	DirSend Dir = 1
	// DirRecv is a frame delivered to this node.
	DirRecv Dir = 2
	// DirLocal is a local protocol decision (no frame).
	DirLocal Dir = 3
)

func (d Dir) String() string {
	switch d {
	case DirSend:
		return "send"
	case DirRecv:
		return "recv"
	case DirLocal:
		return "local"
	}
	return fmt.Sprintf("Dir(%d)", uint8(d))
}

// LocalKind discriminates local (non-frame) records.
type LocalKind uint8

// The local record kinds and their argument layouts (see Args):
//
//	LocalInitiate      op; args = seq, load, partners
//	LocalAbort         op; args = seq, load, reason code
//	LocalFreezeExpired op; args = freezer id
//	LocalPaceBackoff   args = gap µs
//	LocalResolve       op; args = seq, load after, partners
//	LocalComplete      op; args = job id, hops, sojourn ns, transfer ns
//	LocalFinal         args = load, generated, consumed, ingested,
//	                          units done, records held
//	LocalDrops         args = records dropped since the last record
const (
	LocalInitiate LocalKind = 1 + iota
	LocalAbort
	LocalFreezeExpired
	LocalPaceBackoff
	LocalResolve
	LocalComplete
	LocalFinal
	LocalDrops
)

var localNames = [...]string{
	LocalInitiate:      "initiate",
	LocalAbort:         "abort",
	LocalFreezeExpired: "freeze_expired",
	LocalPaceBackoff:   "pace_backoff",
	LocalResolve:       "resolve",
	LocalComplete:      "complete",
	LocalFinal:         "final",
	LocalDrops:         "drops",
}

func (k LocalKind) String() string {
	if int(k) < len(localNames) && localNames[k] != "" {
		return localNames[k]
	}
	return fmt.Sprintf("LocalKind(%d)", uint8(k))
}

// Abort reason codes, the compact on-disk form of the cluster's abort
// reason labels. Codes are stable; AbortCode maps an unknown label to
// 0 and AbortReason maps an unknown code to "unknown", so recordings
// survive new reasons in either direction.
const (
	abortUnknown    = 0
	abortPeerFrozen = 1
	abortTimeout    = 2
	abortStaleEpoch = 3
	abortLinkDown   = 4
)

var abortLabels = map[string]int64{
	"peer_frozen": abortPeerFrozen,
	"timeout":     abortTimeout,
	"stale_epoch": abortStaleEpoch,
	"link_down":   abortLinkDown,
}

// AbortCode returns the on-disk code for an abort reason label.
func AbortCode(reason string) int64 { return abortLabels[reason] }

// AbortReason returns the label for an on-disk abort code.
func AbortReason(code int64) string {
	for label, c := range abortLabels {
		if c == code {
			return label
		}
	}
	return "unknown"
}
