package flight

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lmbalance/internal/obs"
	"lmbalance/internal/wire"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := segHeader{node: 7, seq: 42, wallRefNS: 1_700_000_000_123_456_789, codec: wire.Version}
	buf := appendHeader(nil, h)
	got, n, err := decodeHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d header bytes", n, len(buf))
	}
	if got != h {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
}

func TestHeaderRejectsGarbage(t *testing.T) {
	if _, _, err := decodeHeader([]byte("NOPEnope")); err == nil {
		t.Fatal("bad magic accepted")
	}
	buf := appendHeader(nil, segHeader{node: 1, seq: 0, wallRefNS: 5, codec: 3})
	buf[4] = 99 // unknown container version
	if _, _, err := decodeHeader(buf); err == nil {
		t.Fatal("unknown format version accepted")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	msg := wire.Msg{Kind: wire.FreezeAck, From: 3, Seq: 9, Op: 77, Load: 12}
	cases := []struct {
		name string
		dir  Dir
		tail []byte
	}{
		{"send", DirSend, appendTailSend(nil, 5, msg)},
		{"recv", DirRecv, wire.AppendMsg(nil, msg)},
		{"local", DirLocal, appendTailLocal(nil, LocalAbort, 77, []int64{9, 12, abortTimeout})},
	}
	prev := int64(1000)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := appendRecord(nil, tc.dir, 250, tc.tail)
			// Strip the length prefix the segment reader consumes.
			_, n := uvarint(buf)
			var ev Event
			if err := decodeRecord(buf[n:], prev, &ev); err != nil {
				t.Fatal(err)
			}
			if ev.Dir != tc.dir || ev.WallNS != prev+250 {
				t.Fatalf("dir=%v wall=%d", ev.Dir, ev.WallNS)
			}
			switch tc.dir {
			case DirSend:
				if ev.Peer != 5 || !ev.Msg.Equal(msg) {
					t.Fatalf("send decoded to peer=%d msg=%+v", ev.Peer, ev.Msg)
				}
			case DirRecv:
				if ev.Peer != msg.From || !ev.Msg.Equal(msg) {
					t.Fatalf("recv decoded to peer=%d msg=%+v", ev.Peer, ev.Msg)
				}
			case DirLocal:
				if ev.Kind != LocalAbort || ev.Op != 77 || ev.Arg(2) != abortTimeout {
					t.Fatalf("local decoded to %v op=%d args=%v", ev.Kind, ev.Op, ev.Args)
				}
				if ev.Arg(10) != 0 {
					t.Fatal("absent arg must read as 0")
				}
			}
		})
	}
}

func uvarint(p []byte) (uint64, int) {
	var v uint64
	var s uint
	for i, b := range p {
		if b < 0x80 {
			return v | uint64(b)<<s, i + 1
		}
		v |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, 0
}

func TestAbortCodes(t *testing.T) {
	for _, reason := range []string{"peer_frozen", "timeout", "stale_epoch", "link_down"} {
		if got := AbortReason(AbortCode(reason)); got != reason {
			t.Errorf("%s round-tripped to %s", reason, got)
		}
	}
	if AbortCode("never_heard_of_it") != abortUnknown {
		t.Error("unknown reason must map to code 0")
	}
	if AbortReason(999) != "unknown" {
		t.Error("unknown code must map to \"unknown\"")
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rec, err := Open(Options{Dir: dir, Node: 2})
	if err != nil {
		t.Fatal(err)
	}
	msg := wire.Msg{Kind: wire.Transfer, From: 2, Seq: 4, Op: 11, Amount: -3}
	rec.RecordSend(0, msg)
	rec.RecordRecv(wire.Msg{Kind: wire.Release, From: 0, Seq: 4, Op: 11})
	rec.Initiate(11, 4, 9, 2)
	rec.Final(5, 100, 95, 0, 0, 0)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	nr, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if nr.Node != 2 || nr.Torn || len(nr.Events) != 4 {
		t.Fatalf("node=%d torn=%v events=%d", nr.Node, nr.Torn, len(nr.Events))
	}
	if nr.Events[0].Dir != DirSend || !nr.Events[0].Msg.Equal(msg) || nr.Events[0].Peer != 0 {
		t.Fatalf("event 0: %+v", nr.Events[0])
	}
	if nr.Events[2].Kind != LocalInitiate || nr.Events[2].Op != 11 || nr.Events[2].Arg(1) != 9 {
		t.Fatalf("event 2: %+v", nr.Events[2])
	}
	for i := 1; i < len(nr.Events); i++ {
		if nr.Events[i].WallNS < nr.Events[i-1].WallNS {
			t.Fatalf("wall stamps regressed at %d", i)
		}
	}
	// Nil recorder: every method is a no-op.
	var nilRec *Recorder
	nilRec.RecordSend(0, msg)
	nilRec.Initiate(1, 1, 1, 1)
	if nilRec.Tap(nil) != nil {
		t.Fatal("nil recorder Tap must pass the transport through")
	}
	if err := nilRec.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderRotationAndRingTrim(t *testing.T) {
	dir := t.TempDir()
	// Tiny ring: force many rotations and ring eviction. The buffer
	// holds the whole flood so the eviction arithmetic is deterministic.
	rec, err := Open(Options{Dir: dir, Node: 0, MaxBytes: 16 * minSegBytes, SegBytes: minSegBytes, Buffer: 20000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		rec.Local(LocalPaceBackoff, 0, int64(i))
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() > 0 {
		t.Fatalf("dropped %d with a buffer sized for the whole flood", rec.Dropped())
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	var total int64
	for _, s := range segs {
		total += s.bytes
	}
	// The open segment can exceed the budget transiently; the sealed
	// ring must be near it (one segment of slack).
	if total > 16*minSegBytes+minSegBytes {
		t.Fatalf("ring holds %d bytes, budget %d", total, 16*minSegBytes)
	}
	if segs[0].seq == 0 {
		t.Fatal("oldest segment should have been evicted")
	}
	nr, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The surviving events must be a contiguous suffix of what was put.
	var prev int64 = -1
	for _, ev := range nr.Events {
		if ev.Kind != LocalPaceBackoff {
			continue
		}
		if prev >= 0 && ev.Arg(0) != prev+1 {
			t.Fatalf("gap in surviving stream: %d after %d", ev.Arg(0), prev)
		}
		prev = ev.Arg(0)
	}
	if prev != 19999 {
		t.Fatalf("last surviving event is %d, want 19999", prev)
	}
	// index.jsonl exists and has one line per sealed segment (minus
	// evicted ones — it is append-only, so at least the sealed count).
	idx, err := os.ReadFile(filepath.Join(dir, "index.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(idx), "\n"); int64(lines) != rec.sealed.Value() {
		t.Fatalf("index has %d lines, sealed %d segments", lines, rec.sealed.Value())
	}
}

func TestRecorderResume(t *testing.T) {
	dir := t.TempDir()
	rec, err := Open(Options{Dir: dir, Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec.Local(LocalPaceBackoff, 0, 1)
	rec.Close()
	rec2, err := Open(Options{Dir: dir, Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec2.Local(LocalPaceBackoff, 0, 2)
	rec2.Close()
	nr, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(nr.Events) != 2 || nr.Events[0].Arg(0) != 1 || nr.Events[1].Arg(0) != 2 {
		t.Fatalf("resume lost events: %+v", nr.Events)
	}
	if nr.Segments != 2 {
		t.Fatalf("expected 2 segments after resume, got %d", nr.Segments)
	}
}

func TestTornFinalSegmentRecovers(t *testing.T) {
	dir := t.TempDir()
	rec, err := Open(Options{Dir: dir, Node: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		rec.Local(LocalPaceBackoff, 0, int64(i))
	}
	rec.Close()
	segs, _ := listSegments(dir)
	last := segs[len(segs)-1].path
	p, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record mid-body, as a crash mid-write would.
	if err := os.WriteFile(last, p[:len(p)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	nr, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("torn tail must not poison replay: %v", err)
	}
	if !nr.Torn {
		t.Fatal("Torn not reported")
	}
	if len(nr.Events) != 99 {
		t.Fatalf("recovered %d events, want 99", len(nr.Events))
	}
	// The same corruption mid-stream (not the final segment) is an
	// error: evidence silently missing from the middle is not a tear.
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte("LBFRjunk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatal("mid-recording corruption must error")
	}
}

func TestCrossVersionReplay(t *testing.T) {
	// Frames recorded by an older node (codec v1/v2 payloads) must
	// replay under the current reader.
	for _, codec := range []byte{wire.VersionV1, wire.VersionV2} {
		dir := t.TempDir()
		events := []Event{
			{WallNS: 1000, Dir: DirLocal, Kind: LocalInitiate, Op: opAt(codec, 5), Args: []int64{1, 10, 1}},
			{WallNS: 1001, Dir: DirSend, Peer: 1, Msg: wire.Msg{Kind: wire.FreezeReq, From: 0, Seq: 1, Op: opAt(codec, 5)}},
			{WallNS: 1002, Dir: DirRecv, Msg: wire.Msg{Kind: wire.FreezeAck, From: 1, Seq: 1, Op: opAt(codec, 5), Load: 4}},
			{WallNS: 1003, Dir: DirLocal, Kind: LocalResolve, Op: opAt(codec, 5), Args: []int64{1, 7, 1}},
			{WallNS: 1004, Dir: DirSend, Peer: 1, Msg: wire.Msg{Kind: wire.Transfer, From: 0, Seq: 1, Op: opAt(codec, 5), Amount: 3}},
			{WallNS: 1005, Dir: DirLocal, Kind: LocalFinal, Args: []int64{7, 7, 0, 0, 0, 0}},
		}
		if err := WriteDir(dir, 0, codec, events); err != nil {
			t.Fatalf("codec v%d: %v", codec, err)
		}
		nr, err := LoadDir(dir)
		if err != nil {
			t.Fatalf("codec v%d: %v", codec, err)
		}
		if nr.CodecVersion != codec || len(nr.Events) != len(events) {
			t.Fatalf("codec v%d: version=%d events=%d", codec, nr.CodecVersion, len(nr.Events))
		}
		// v1 cannot carry op ids; the reader must still see the frames.
		if got := nr.Events[1].Msg.Kind; got != wire.FreezeReq {
			t.Fatalf("codec v%d: frame kind %v", codec, got)
		}
		res := Audit(&Recording{Nodes: []*NodeRecording{nr}})
		if codec >= wire.VersionV2 && len(res.Violations) != 0 {
			t.Fatalf("codec v%d: unexpected violations %v", codec, res.Violations)
		}
		if res.TotalLoad != 7 || !res.Conserved() {
			t.Fatalf("codec v%d: load=%d conserved=%v", codec, res.TotalLoad, res.Conserved())
		}
	}
}

// opAt zeroes op ids for codec versions that cannot carry them, so the
// fixture's local records agree with what its frames can encode.
func opAt(codec byte, op uint64) uint64 {
	if codec < wire.VersionV2 {
		return 0
	}
	return op
}

func TestSnapshot(t *testing.T) {
	dir := t.TempDir()
	rec, err := Open(Options{Dir: dir, Node: 4})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rec.Register(reg)
	rec.Initiate(9, 1, 3, 1)
	snap, err := rec.Snapshot("slo alert: p99 burn")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(snap, "snap-001-slo_alert") {
		t.Fatalf("snapshot path %q", snap)
	}
	if _, err := os.Stat(filepath.Join(snap, "manifest.json")); err != nil {
		t.Fatal(err)
	}
	// Recording continues after a snapshot, and the snapshot itself
	// replays standalone.
	rec.Final(3, 3, 0, 0, 0, 0)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTree(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != 1 || len(got.Nodes[0].Events) != 1 {
		t.Fatalf("snapshot replayed %d nodes", len(got.Nodes))
	}
	full, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Events) != 2 {
		t.Fatalf("live ring has %d events, want 2", len(full.Events))
	}
	// Post-Close snapshots capture the sealed ring (the daemon's
	// shutdown path can still preserve evidence).
	snap2, err := rec.Snapshot("after close")
	if err != nil {
		t.Fatal(err)
	}
	got2, err := LoadTree(snap2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2.Nodes[0].Events) != 2 {
		t.Fatalf("post-close snapshot has %d events", len(got2.Nodes[0].Events))
	}
}

func TestTamperedRecordingIsFlagged(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	events := []Event{
		{WallNS: 10, Dir: DirLocal, Kind: LocalInitiate, Op: 5, Args: []int64{1, 10, 1}},
		{WallNS: 11, Dir: DirSend, Peer: 1, Msg: wire.Msg{Kind: wire.FreezeReq, From: 0, Seq: 1, Op: 5}},
		{WallNS: 12, Dir: DirRecv, Msg: wire.Msg{Kind: wire.FreezeAck, From: 1, Seq: 1, Op: 5, Load: 4}},
		{WallNS: 13, Dir: DirLocal, Kind: LocalResolve, Op: 5, Args: []int64{1, 7, 1}},
		{WallNS: 14, Dir: DirSend, Peer: 1, Msg: wire.Msg{Kind: wire.Transfer, From: 0, Seq: 1, Op: 5, Amount: 3}},
	}
	if err := WriteDir(src, 0, wire.Version, events); err != nil {
		t.Fatal(err)
	}
	clean := Audit(&Recording{Nodes: mustLoad(t, src)})
	if len(clean.Violations) != 0 {
		t.Fatalf("clean recording flagged: %v", clean.Violations)
	}
	// Tamper: inflate the transfer amount. Shares become {7, 4+9=13}.
	err := Rewrite(src, dst, func(ev Event) Event {
		if ev.Dir == DirSend && ev.Msg.Kind == wire.Transfer {
			ev.Msg.Amount = 9
		}
		return ev
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := Audit(&Recording{Nodes: mustLoad(t, dst)})
	if bad.First == nil || bad.First.Rule != "imbalance_violation" {
		t.Fatalf("tampered transfer not flagged: %+v", bad.First)
	}
	if bad.First.Index != 4 {
		t.Fatalf("flagged event %d, want the transfer at 4", bad.First.Index)
	}
	if diff := Diff(clean, bad); len(diff) == 0 {
		t.Fatal("Diff found no disagreement between clean and tampered")
	}
}

func mustLoad(t *testing.T, dir string) []*NodeRecording {
	t.Helper()
	nr, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return []*NodeRecording{nr}
}

func TestShadowMachineRules(t *testing.T) {
	cases := []struct {
		name string
		rule string
		evs  []Event
	}{
		{"busy while free", "busy_while_free", []Event{
			{WallNS: 1, Dir: DirSend, Peer: 1, Msg: wire.Msg{Kind: wire.FreezeBusy, From: 0, Seq: 3, Op: 9}},
		}},
		{"ack while frozen", "ack_while_frozen", []Event{
			{WallNS: 1, Dir: DirSend, Peer: 1, Msg: wire.Msg{Kind: wire.FreezeAck, From: 0, Seq: 3, Op: 9, Load: 2}},
			{WallNS: 2, Dir: DirSend, Peer: 2, Msg: wire.Msg{Kind: wire.FreezeAck, From: 0, Seq: 8, Op: 10, Load: 2}},
		}},
		{"transfer to unacked peer", "transfer_to_unacked", []Event{
			{WallNS: 1, Dir: DirLocal, Kind: LocalInitiate, Op: 9, Args: []int64{1, 6, 1}},
			{WallNS: 2, Dir: DirRecv, Msg: wire.Msg{Kind: wire.FreezeAck, From: 1, Seq: 1, Op: 9, Load: 2}},
			{WallNS: 3, Dir: DirLocal, Kind: LocalResolve, Op: 9, Args: []int64{1, 4, 1}},
			{WallNS: 4, Dir: DirSend, Peer: 2, Msg: wire.Msg{Kind: wire.Transfer, From: 0, Seq: 1, Op: 9, Amount: 2}},
		}},
		{"seq regression", "seq_regressed", []Event{
			{WallNS: 1, Dir: DirLocal, Kind: LocalInitiate, Op: 9, Args: []int64{5, 6, 1}},
			{WallNS: 2, Dir: DirLocal, Kind: LocalAbort, Op: 9, Args: []int64{5, 6, abortTimeout}},
			{WallNS: 3, Dir: DirLocal, Kind: LocalInitiate, Op: 10, Args: []int64{4, 6, 1}},
		}},
		{"initiate while inflight", "initiate_while_inflight", []Event{
			{WallNS: 1, Dir: DirLocal, Kind: LocalInitiate, Op: 9, Args: []int64{1, 6, 1}},
			{WallNS: 2, Dir: DirLocal, Kind: LocalInitiate, Op: 10, Args: []int64{2, 6, 1}},
		}},
		{"freeze expiry while free", "freeze_expiry_while_free", []Event{
			{WallNS: 1, Dir: DirLocal, Kind: LocalFreezeExpired, Op: 9, Args: []int64{1}},
		}},
		{"bye contradicts final", "bye_mismatch", []Event{
			{WallNS: 1, Dir: DirSend, Peer: 0, Msg: wire.Msg{Kind: wire.Bye, From: 1, Load: 5}},
			{WallNS: 2, Dir: DirLocal, Kind: LocalFinal, Args: []int64{6, 6, 0, 0, 0, 0}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := WriteDir(dir, 0, wire.Version, tc.evs); err != nil {
				t.Fatal(err)
			}
			res := Audit(&Recording{Nodes: mustLoad(t, dir)})
			found := false
			for _, v := range res.Violations {
				if v.Rule == tc.rule {
					found = true
				}
			}
			if !found {
				t.Fatalf("rule %s not flagged; got %v", tc.rule, res.Violations)
			}
		})
	}
}

func TestPendingClearToleratesRecvSkew(t *testing.T) {
	// The tap's pump records a Release before the node processes it, so
	// node actions taken while still frozen may follow the Release in
	// the stream. None of these is a violation.
	evs := []Event{
		// Frozen by node 2.
		{WallNS: 1, Dir: DirSend, Peer: 2, Msg: wire.Msg{Kind: wire.FreezeAck, From: 0, Seq: 7, Op: 9, Load: 3}},
		// Release recorded early by the pump...
		{WallNS: 2, Dir: DirRecv, Msg: wire.Msg{Kind: wire.Release, From: 2, Seq: 7, Op: 9}},
		// ...while the node, not yet aware, still answers busy.
		{WallNS: 3, Dir: DirSend, Peer: 1, Msg: wire.Msg{Kind: wire.FreezeBusy, From: 0, Seq: 4, Op: 11}},
		// Node finally processes the release, freezes for the next
		// requester — the pending clear applies here.
		{WallNS: 4, Dir: DirSend, Peer: 1, Msg: wire.Msg{Kind: wire.FreezeAck, From: 0, Seq: 4, Op: 11, Load: 3}},
	}
	dir := t.TempDir()
	if err := WriteDir(dir, 0, wire.Version, evs); err != nil {
		t.Fatal(err)
	}
	res := Audit(&Recording{Nodes: mustLoad(t, dir)})
	if len(res.Violations) != 0 {
		t.Fatalf("recv skew flagged as violations: %v", res.Violations)
	}
}

func TestDropsAreJournaled(t *testing.T) {
	dir := t.TempDir()
	// Buffer of 1: flooding from the test goroutine while the writer
	// contends guarantees drops.
	rec, err := Open(Options{Dir: dir, Node: 0, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50000; i++ {
		rec.Local(LocalPaceBackoff, 0, int64(i))
	}
	rec.Close()
	if rec.Dropped() == 0 {
		t.Skip("no drops under this scheduler; nothing to verify")
	}
	nr, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if nr.Dropped == 0 {
		t.Fatal("drops happened but none journaled in the stream")
	}
	if nr.Dropped+int64(len(nr.Events))-countKind(nr, LocalDrops) != 50000 {
		t.Fatalf("journal doesn't account for the gap: dropped=%d events=%d", nr.Dropped, len(nr.Events))
	}
}

func countKind(nr *NodeRecording, k LocalKind) int64 {
	var n int64
	for _, ev := range nr.Events {
		if ev.Dir == DirLocal && ev.Kind == k {
			n++
		}
	}
	return n
}
