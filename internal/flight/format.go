package flight

import (
	"encoding/binary"
	"fmt"

	"lmbalance/internal/wire"
)

// FormatVersion is the segment container version. It versions the
// header and record framing only; the embedded wire payloads carry
// their own codec version byte, so a container at one version can hold
// frames recorded from peers at any codec version the wire decoder
// accepts.
const FormatVersion = 1

// magic leads every segment file.
var magic = [4]byte{'L', 'B', 'F', 'R'}

// maxRecordBody caps one record's encoded body: a wire payload at its
// own maximum plus the record envelope. A length prefix beyond this is
// treated as corruption (or a torn write), never allocated.
const maxRecordBody = wire.MaxPayload + 64

// Event is one decoded flight record: a frame this node sent or
// received, or a local protocol decision. Node and Seq are assigned by
// the reader (Seq is the record's position in the node's stream, in
// recording order across segments); WallNS is the recorder's wall
// clock at record time.
type Event struct {
	Node   int
	Seq    int
	WallNS int64
	Dir    Dir

	// Peer is the destination of a DirSend (the source of a DirRecv is
	// Msg.From); -1 for local records.
	Peer int
	// Msg is the frame (DirSend / DirRecv only).
	Msg wire.Msg

	// Local decision (DirLocal only).
	Kind LocalKind
	Op   uint64
	Args []int64
}

// Arg returns Args[i], or 0 when the record carries fewer arguments —
// the forward-compatibility contract: readers index optimistically,
// older recordings answer zero.
func (e *Event) Arg(i int) int64 {
	if i < len(e.Args) {
		return e.Args[i]
	}
	return 0
}

func zig(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzig(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// segHeader is a segment file's decoded header.
type segHeader struct {
	node      int
	seq       uint64
	wallRefNS int64
	codec     byte
}

// appendHeader encodes a segment header.
func appendHeader(buf []byte, h segHeader) []byte {
	buf = append(buf, magic[:]...)
	buf = append(buf, FormatVersion)
	buf = binary.AppendUvarint(buf, zig(int64(h.node)))
	buf = binary.AppendUvarint(buf, h.seq)
	buf = binary.AppendUvarint(buf, zig(h.wallRefNS))
	return append(buf, h.codec)
}

// decodeHeader parses a segment header, returning the header and the
// number of bytes it consumed.
func decodeHeader(p []byte) (segHeader, int, error) {
	var h segHeader
	if len(p) < len(magic)+2 {
		return h, 0, fmt.Errorf("flight: segment shorter than its header")
	}
	if [4]byte(p[:4]) != magic {
		return h, 0, fmt.Errorf("flight: bad segment magic %q", p[:4])
	}
	if p[4] != FormatVersion {
		return h, 0, fmt.Errorf("flight: unknown segment format %d", p[4])
	}
	off := 5
	next := func() (uint64, error) {
		v, n := binary.Uvarint(p[off:])
		if n <= 0 {
			return 0, fmt.Errorf("flight: truncated segment header")
		}
		off += n
		return v, nil
	}
	v, err := next()
	if err != nil {
		return h, 0, err
	}
	h.node = int(unzig(v))
	if h.seq, err = next(); err != nil {
		return h, 0, err
	}
	if v, err = next(); err != nil {
		return h, 0, err
	}
	h.wallRefNS = unzig(v)
	if off >= len(p) {
		return h, 0, fmt.Errorf("flight: truncated segment header")
	}
	h.codec = p[off]
	off++
	return h, off, nil
}

// appendTailSend encodes a DirSend tail: destination peer + payload.
func appendTailSend(buf []byte, to int, m wire.Msg) []byte {
	buf = binary.AppendUvarint(buf, zig(int64(to)))
	return wire.AppendMsg(buf, m)
}

// appendTailLocal encodes a DirLocal tail.
func appendTailLocal(buf []byte, kind LocalKind, op uint64, args []int64) []byte {
	buf = append(buf, byte(kind))
	buf = binary.AppendUvarint(buf, op)
	buf = binary.AppendUvarint(buf, uint64(len(args)))
	for _, a := range args {
		buf = binary.AppendUvarint(buf, zig(a))
	}
	return buf
}

// appendRecord frames one record body (dir + wall delta + tail) with
// its length prefix.
func appendRecord(buf []byte, dir Dir, dWallNS int64, tail []byte) []byte {
	var hdr [12]byte
	n := 1
	hdr[0] = byte(dir)
	n += binary.PutUvarint(hdr[n:], zig(dWallNS))
	buf = binary.AppendUvarint(buf, uint64(n+len(tail)))
	buf = append(buf, hdr[:n]...)
	return append(buf, tail...)
}

// decodeRecord parses one record body into ev (Node/Seq left to the
// caller). prevWall is the previous record's stamp for delta decoding.
func decodeRecord(body []byte, prevWall int64, ev *Event) error {
	if len(body) < 2 {
		return fmt.Errorf("flight: record body truncated (%d bytes)", len(body))
	}
	ev.Dir = Dir(body[0])
	rest := body[1:]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("flight: truncated varint in record")
		}
		rest = rest[n:]
		return v, nil
	}
	v, err := next()
	if err != nil {
		return err
	}
	ev.WallNS = prevWall + unzig(v)
	ev.Peer = -1
	switch ev.Dir {
	case DirSend:
		if v, err = next(); err != nil {
			return err
		}
		ev.Peer = int(unzig(v))
		if ev.Msg, err = wire.DecodeMsg(rest); err != nil {
			return fmt.Errorf("flight: send payload: %w", err)
		}
	case DirRecv:
		if ev.Msg, err = wire.DecodeMsg(rest); err != nil {
			return fmt.Errorf("flight: recv payload: %w", err)
		}
		ev.Peer = ev.Msg.From
	case DirLocal:
		if len(rest) < 1 {
			return fmt.Errorf("flight: local record truncated")
		}
		ev.Kind = LocalKind(rest[0])
		rest = rest[1:]
		if ev.Op, err = next(); err != nil {
			return err
		}
		var count uint64
		if count, err = next(); err != nil {
			return err
		}
		if count > 64 {
			return fmt.Errorf("flight: local record with %d args", count)
		}
		ev.Args = make([]int64, count)
		for i := range ev.Args {
			if v, err = next(); err != nil {
				return err
			}
			ev.Args[i] = unzig(v)
		}
		if len(rest) != 0 {
			return fmt.Errorf("flight: %d trailing bytes in local record", len(rest))
		}
	default:
		return fmt.Errorf("flight: unknown record dir %d", body[0])
	}
	return nil
}
