package flight

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"lmbalance/internal/wire"
)

// NodeRecording is one node's decoded event stream.
type NodeRecording struct {
	Node int
	// CodecVersion is the wire codec version the *last* segment was
	// recorded under (segments may mix versions across restarts; each
	// frame still carries its own version byte).
	CodecVersion byte
	Events       []Event
	Segments     int
	Bytes        int64
	// Torn reports that the final segment ended mid-record — the
	// recorder was killed between buffered writes. Everything before
	// the tear decoded cleanly.
	Torn bool
	// Dropped is the total of LocalDrops gaps journaled in the stream:
	// records the recorder had to discard under backpressure.
	Dropped int64
}

// Recording is a set of node streams loaded from one directory tree.
type Recording struct {
	Dir   string
	Nodes []*NodeRecording
}

// LoadDir decodes all segments of a single-node recording directory,
// in segment order. A truncated tail is tolerated only on the last
// segment (the one a crash could tear); corruption anywhere else is an
// error.
func LoadDir(dir string) (*NodeRecording, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("flight: no segments in %s", dir)
	}
	nr := &NodeRecording{Node: -1}
	for i, s := range segs {
		last := i == len(segs)-1
		if err := nr.loadSegment(s.path, last); err != nil {
			return nil, err
		}
		nr.Segments++
		nr.Bytes += s.bytes
	}
	for i := range nr.Events {
		nr.Events[i].Seq = i
		if nr.Events[i].Dir == DirLocal && nr.Events[i].Kind == LocalDrops {
			nr.Dropped += nr.Events[i].Arg(0)
		}
	}
	return nr, nil
}

// loadSegment appends one segment's events to nr. tolerateTear allows
// a truncated record at the very end of the byte stream.
func (nr *NodeRecording) loadSegment(path string, tolerateTear bool) error {
	p, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	h, off, err := decodeHeader(p)
	if err != nil {
		return fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	if nr.Node == -1 {
		nr.Node = h.node
	} else if nr.Node != h.node {
		return fmt.Errorf("%s: segment for node %d in node %d's recording",
			filepath.Base(path), h.node, nr.Node)
	}
	nr.CodecVersion = h.codec
	prevWall := h.wallRefNS
	for off < len(p) {
		ln, n := binary.Uvarint(p[off:])
		if n <= 0 || ln > maxRecordBody || off+n+int(ln) > len(p) {
			if tolerateTear {
				nr.Torn = true
				return nil
			}
			return fmt.Errorf("%s: truncated record at offset %d", filepath.Base(path), off)
		}
		body := p[off+n : off+n+int(ln)]
		var ev Event
		if err := decodeRecord(body, prevWall, &ev); err != nil {
			if tolerateTear {
				nr.Torn = true
				return nil
			}
			return fmt.Errorf("%s: offset %d: %w", filepath.Base(path), off, err)
		}
		ev.Node = nr.Node
		prevWall = ev.WallNS
		nr.Events = append(nr.Events, ev)
		off += n + int(ln)
	}
	return nil
}

// LoadTree loads a recording that is either a single node directory, a
// parent of per-node directories (node-0, node-1, ... as lbnode lays
// them out), or a snapshot directory. Any subdirectory containing
// segment files is loaded as one node; the root itself counts if it
// holds segments directly.
func LoadTree(root string) (*Recording, error) {
	rec := &Recording{Dir: root}
	var dirs []string
	if segs, err := listSegments(root); err != nil {
		return nil, err
	} else if len(segs) > 0 {
		dirs = append(dirs, root)
	}
	ents, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if !e.IsDir() || e.Name() == "snapshots" {
			continue
		}
		sub := filepath.Join(root, e.Name())
		segs, err := listSegments(sub)
		if err != nil {
			return nil, err
		}
		if len(segs) > 0 {
			dirs = append(dirs, sub)
		}
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("flight: no segments under %s", root)
	}
	sort.Strings(dirs)
	for _, d := range dirs {
		nr, err := LoadDir(d)
		if err != nil {
			return nil, err
		}
		rec.Nodes = append(rec.Nodes, nr)
	}
	sort.Slice(rec.Nodes, func(i, j int) bool { return rec.Nodes[i].Node < rec.Nodes[j].Node })
	return rec, nil
}

// Merge interleaves every node's events into one globally ordered
// stream on (wall stamp, node, per-node seq). Wall clocks across real
// machines are not perfectly synchronized; the shadow auditor
// therefore never relies on cross-node order for legality — merge
// order is for human timelines.
func (r *Recording) Merge() []Event {
	var total int
	for _, nr := range r.Nodes {
		total += len(nr.Events)
	}
	all := make([]Event, 0, total)
	for _, nr := range r.Nodes {
		all = append(all, nr.Events...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].WallNS != all[j].WallNS {
			return all[i].WallNS < all[j].WallNS
		}
		if all[i].Node != all[j].Node {
			return all[i].Node < all[j].Node
		}
		return all[i].Seq < all[j].Seq
	})
	return all
}

// Node returns the stream for one node id, or nil.
func (r *Recording) Node(id int) *NodeRecording {
	for _, nr := range r.Nodes {
		if nr.Node == id {
			return nr
		}
	}
	return nil
}

// WriteDir writes a synthetic single-segment recording — test fixtures
// and tamper demos. Events must already carry monotone WallNS stamps.
func WriteDir(dir string, node int, codec byte, events []Event) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var wallRef int64
	if len(events) > 0 {
		wallRef = events[0].WallNS
	}
	buf := appendHeader(nil, segHeader{node: node, seq: 0, wallRefNS: wallRef, codec: codec})
	prev := wallRef
	for _, ev := range events {
		var tail []byte
		switch ev.Dir {
		case DirSend:
			tail = binary.AppendUvarint(nil, zig(int64(ev.Peer)))
			tail = wire.AppendMsgVersion(tail, ev.Msg, codec)
		case DirRecv:
			tail = wire.AppendMsgVersion(nil, ev.Msg, codec)
		case DirLocal:
			tail = appendTailLocal(nil, ev.Kind, ev.Op, ev.Args)
		default:
			return fmt.Errorf("flight: event %d has dir %d", ev.Seq, ev.Dir)
		}
		buf = appendRecord(buf, ev.Dir, ev.WallNS-prev, tail)
		prev = ev.WallNS
	}
	return os.WriteFile(filepath.Join(dir, segName(0)), buf, 0o644)
}

// Rewrite copies a single-node recording through fn — the tamper tool:
// load, mutate selected events, write the altered history, and let the
// auditor catch it.
func Rewrite(src, dst string, fn func(Event) Event) error {
	nr, err := LoadDir(src)
	if err != nil {
		return err
	}
	out := make([]Event, len(nr.Events))
	for i, ev := range nr.Events {
		out[i] = fn(ev)
	}
	return WriteDir(dst, nr.Node, nr.CodecVersion, out)
}
