package flight

import (
	"lmbalance/internal/wire"
)

// Tap wraps a transport so every frame through it is recorded. Sends
// are recorded synchronously before hitting the inner transport;
// receives are recorded by a pump goroutine that re-delivers through
// an unbuffered channel, so a frame's record always exists before the
// node can act on it — causes precede effects in the recording even
// though the pump runs concurrently with the node. A nil recorder
// returns the inner transport unchanged.
func (r *Recorder) Tap(inner wire.Transport) wire.Transport {
	if r == nil {
		return inner
	}
	t := &tap{inner: inner, rec: r, out: make(chan wire.Msg), stop: make(chan struct{})}
	go t.pump()
	if _, ok := inner.(wire.PeerStatser); ok {
		return &tapPeer{tap: t}
	}
	return t
}

type tap struct {
	inner wire.Transport
	rec   *Recorder
	out   chan wire.Msg
	stop  chan struct{}
}

func (t *tap) Send(to int, m wire.Msg) error {
	t.rec.RecordSend(to, m)
	return t.inner.Send(to, m)
}

func (t *tap) Inbox() <-chan wire.Msg { return t.out }

func (t *tap) Stats() wire.Stats { return t.inner.Stats() }

func (t *tap) Close() error {
	err := t.inner.Close()
	close(t.stop)
	return err
}

// pump moves frames from the inner inbox to the tap's unbuffered out
// channel, recording each one before the handoff.
func (t *tap) pump() {
	for {
		select {
		case <-t.stop:
			return
		case m, ok := <-t.inner.Inbox():
			if !ok {
				return
			}
			t.rec.RecordRecv(m)
			select {
			case t.out <- m:
			case <-t.stop:
				return
			}
		}
	}
}

// tapPeer additionally forwards the inner transport's per-peer stats,
// so the cluster's link_down attribution keeps working under a tap.
type tapPeer struct {
	*tap
}

func (t *tapPeer) PeerStats(id int) wire.Stats {
	return t.inner.(wire.PeerStatser).PeerStats(id)
}
