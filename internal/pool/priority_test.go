package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPriorityValidation(t *testing.T) {
	if _, err := NewPriority(Config{Workers: 1, F: 1.5, Delta: 1}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestPriorityAllTasksExecuteExactlyOnce(t *testing.T) {
	p, err := NewPriority(Config{Workers: 4, F: 1.5, Delta: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const n = 3000
	executions := make([]atomic.Int32, n)
	for i := 0; i < n; i++ {
		i := i
		p.Submit(PriorityTask{
			Priority: int64(i % 17),
			Run:      func(w *PriorityWorker) { executions[i].Add(1) },
		})
	}
	p.Wait()
	for i := range executions {
		if got := executions[i].Load(); got != 1 {
			t.Fatalf("task %d executed %d times", i, got)
		}
	}
	s := p.Stats()
	if s.Submitted != n {
		t.Fatalf("submitted %d", s.Submitted)
	}
}

func TestPriorityNilRunPanics(t *testing.T) {
	p, err := NewPriority(Config{Workers: 2, F: 1.5, Delta: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("nil Run accepted")
		}
	}()
	p.Submit(PriorityTask{Priority: 1})
}

// TestPriorityOrderLocal: a single worker's heap must execute in priority
// order when tasks are pre-loaded. We pin execution order by using one
// worker's local Submit and recording the order.
func TestPriorityOrderLocal(t *testing.T) {
	p, err := NewPriority(Config{Workers: 2, F: 1.9, Delta: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var mu sync.Mutex
	var order []int64
	var wg sync.WaitGroup
	wg.Add(1)
	// A carrier task enqueues children with descending priorities on its
	// own worker; the worker must then run them ascending.
	p.Submit(PriorityTask{Priority: 0, Run: func(w *PriorityWorker) {
		for _, pr := range []int64{50, 10, 40, 20, 30} {
			pr := pr
			p.pending.Add(0) // no-op; children use w.Submit below
			w.Submit(PriorityTask{Priority: pr, Run: func(w *PriorityWorker) {
				mu.Lock()
				order = append(order, pr)
				mu.Unlock()
			}})
		}
		wg.Done()
	}})
	wg.Wait()
	p.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 5 {
		t.Fatalf("executed %d children", len(order))
	}
	// Balancing may migrate children to the other worker, so global order
	// is only approximately sorted; check that the first executed is the
	// best and the last is the worst when no migration happened, else
	// just verify the multiset.
	seen := map[int64]bool{}
	for _, v := range order {
		seen[v] = true
	}
	for _, pr := range []int64{10, 20, 30, 40, 50} {
		if !seen[pr] {
			t.Fatalf("priority %d never executed; order=%v", pr, order)
		}
	}
}

// TestPriorityBalanceDealsQualityEvenly: after a balance, every
// participant should hold both good and bad tasks (round-robin deal).
func TestPriorityBalanceDealsQualityEvenly(t *testing.T) {
	p, err := NewPriority(Config{Workers: 2, F: 1.9, Delta: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	w0, w1 := p.workers[0], p.workers[1]
	// Load worker 0 with 3 good and 3 bad tasks directly (locked path),
	// bypassing triggers by not using Submit.
	w0.mu.Lock()
	for _, pr := range []int64{1, 2, 3, 100, 200, 300} {
		w0.queue = append(w0.queue, PriorityTask{Priority: pr, Run: func(w *PriorityWorker) {}})
	}
	w0.mu.Unlock()
	p.balance(w0)
	w0.mu.Lock()
	l0 := len(w0.queue)
	best0 := int64(-1)
	if l0 > 0 {
		best0 = w0.queue[0].Priority
	}
	w0.mu.Unlock()
	w1.mu.Lock()
	l1 := len(w1.queue)
	best1 := int64(-1)
	if l1 > 0 {
		best1 = w1.queue[0].Priority
	}
	w1.mu.Unlock()
	if l0 != 3 || l1 != 3 {
		t.Fatalf("counts after balance: %d/%d", l0, l1)
	}
	// Round-robin deal: bests are 1 and 2 (in some order).
	if !((best0 == 1 && best1 == 2) || (best0 == 2 && best1 == 1)) {
		t.Fatalf("quality not dealt evenly: bests %d/%d", best0, best1)
	}
	// Drain the manually injected tasks so Close has a clean pool.
	w0.mu.Lock()
	w0.queue = w0.queue[:0]
	w0.mu.Unlock()
	w1.mu.Lock()
	w1.queue = w1.queue[:0]
	w1.mu.Unlock()
}

func TestPriorityRecursiveSpread(t *testing.T) {
	p, err := NewPriority(Config{Workers: 4, F: 1.3, Delta: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var counter atomic.Int64
	var spawn func(depth int, prio int64) PriorityTask
	spawn = func(depth int, prio int64) PriorityTask {
		return PriorityTask{Priority: prio, Run: func(w *PriorityWorker) {
			busyWork(150)
			runtime.Gosched() // single-CPU interleaving; see pool_test.go
			counter.Add(1)
			if depth > 0 {
				w.Submit(spawn(depth-1, prio+1))
				w.Submit(spawn(depth-1, prio+2))
			}
		}}
	}
	p.Submit(spawn(11, 0))
	p.Wait()
	want := int64(1<<12 - 1)
	if counter.Load() != want {
		t.Fatalf("executed %d, want %d", counter.Load(), want)
	}
	s := p.Stats()
	if s.Balances == 0 {
		t.Fatal("no balances")
	}
	for i, e := range s.Executed {
		if e == 0 {
			t.Fatalf("worker %d executed nothing: %v", i, s.Executed)
		}
	}
}

func TestBestPriority(t *testing.T) {
	p, err := NewPriority(Config{Workers: 2, F: 1.9, Delta: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, ok := p.BestPriority(); ok {
		t.Fatal("empty pool reported a best priority")
	}
	// Inject without running: block the workers first via held locks is
	// racy; instead test through the public API with tasks that block on
	// a channel, ensuring the queue is non-empty when probed.
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	p.Submit(PriorityTask{Priority: 5, Run: func(w *PriorityWorker) {
		wg.Done()
		<-release
	}})
	wg.Wait() // first task is now executing and will hold its worker
	p.Submit(PriorityTask{Priority: 7, Run: func(w *PriorityWorker) { <-release }})
	p.Submit(PriorityTask{Priority: 3, Run: func(w *PriorityWorker) { <-release }})
	// At least one of the two queued tasks is still queued on the busy
	// worker's heap or another's; BestPriority sees the minimum of queued
	// ones. We can only assert it returns something sane when found.
	if v, ok := p.BestPriority(); ok && (v < 3 || v > 7) {
		t.Fatalf("best priority %d out of range", v)
	}
	close(release)
	p.Wait()
}

func BenchmarkPriorityPoolThroughput(b *testing.B) {
	p, err := NewPriority(Config{Workers: 8, F: 1.3, Delta: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Submit(PriorityTask{Priority: int64(i & 255), Run: func(w *PriorityWorker) { busyWork(50) }})
	}
	p.Wait()
}
