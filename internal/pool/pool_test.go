package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Workers: 1, F: 1.5, Delta: 1},
		{Workers: 4, F: 1.0, Delta: 1},
		{Workers: 4, F: 1.5, Delta: 0},
		{Workers: 4, F: 1.5, Delta: 4},
	}
	for i, c := range cases {
		if _, err := New(c); err == nil {
			t.Fatalf("case %d accepted: %+v", i, c)
		}
	}
}

func TestAllTasksExecuteExactlyOnce(t *testing.T) {
	p, err := New(Config{Workers: 4, F: 1.5, Delta: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const n = 5000
	var counter atomic.Int64
	executions := make([]atomic.Int32, n)
	for i := 0; i < n; i++ {
		i := i
		p.Submit(func(w *Worker) {
			executions[i].Add(1)
			counter.Add(1)
		})
	}
	p.Wait()
	if counter.Load() != n {
		t.Fatalf("executed %d of %d", counter.Load(), n)
	}
	for i := range executions {
		if got := executions[i].Load(); got != 1 {
			t.Fatalf("task %d executed %d times", i, got)
		}
	}
	s := p.Stats()
	if s.Submitted != n {
		t.Fatalf("submitted %d", s.Submitted)
	}
	var sum int64
	for _, e := range s.Executed {
		sum += e
	}
	if sum != n {
		t.Fatalf("per-worker executed sums to %d", sum)
	}
}

func TestRecursiveGeneration(t *testing.T) {
	// A binary task tree of depth 12 spawned from one root: 2^13 − 1 tasks.
	p, err := New(Config{Workers: 8, F: 1.3, Delta: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var counter atomic.Int64
	var spawn func(depth int) Task
	spawn = func(depth int) Task {
		return func(w *Worker) {
			counter.Add(1)
			if depth > 0 {
				w.Submit(spawn(depth - 1))
				w.Submit(spawn(depth - 1))
			}
		}
	}
	p.Submit(spawn(12))
	p.Wait()
	want := int64(1<<13 - 1)
	if counter.Load() != want {
		t.Fatalf("executed %d, want %d", counter.Load(), want)
	}
}

func TestBalancingSpreadsWork(t *testing.T) {
	// All tasks enter at worker 0 (hotspot); with balancing, every worker
	// must end up executing a substantial share.
	p, err := New(Config{Workers: 4, F: 1.2, Delta: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const n = 4000
	var counter atomic.Int64
	for i := 0; i < n; i++ {
		p.workers[0].Submit(func(w *Worker) {
			// Simulate real work so balancing has time to act. The
			// explicit yield matters on single-CPU machines: without it
			// one worker can drain the whole (sub-millisecond) workload
			// inside a single scheduler timeslice before the others ever
			// run, which says nothing about the balancing logic.
			busyWork(200)
			runtime.Gosched()
			counter.Add(1)
		})
	}
	p.Wait()
	if counter.Load() != n {
		t.Fatalf("executed %d", counter.Load())
	}
	s := p.Stats()
	if s.Balances == 0 {
		t.Fatal("no balancing operations happened")
	}
	for i, e := range s.Executed {
		if e < n/20 {
			t.Fatalf("worker %d executed only %d of %d (stats %v)", i, e, n, s.Executed)
		}
	}
}

// busyWork burns deterministic CPU time without allocating.
func busyWork(iters int) uint64 {
	var x uint64 = 88172645463325252
	for i := 0; i < iters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

func TestWaitWithNoTasks(t *testing.T) {
	p, err := New(Config{Workers: 2, F: 1.5, Delta: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	p.Wait() // must not hang
	p.Close()
}

func TestPoolCloseIdempotentWorkers(t *testing.T) {
	p, err := New(Config{Workers: 3, F: 1.5, Delta: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung")
	}
}

func TestStatsSpread(t *testing.T) {
	s := Stats{Executed: []int64{5, 9, 7}}
	if s.Spread() != 4 {
		t.Fatalf("spread = %d", s.Spread())
	}
	if (Stats{}).Spread() != 0 {
		t.Fatal("empty spread should be 0")
	}
}

func TestTriggerPredicate(t *testing.T) {
	// Growth: fires at qlen >= f·lOld with strict growth.
	if !trigger(2, 1, 1.5) {
		t.Fatal("2 vs 1 at f=1.5 should fire")
	}
	if trigger(1, 1, 1.5) {
		t.Fatal("no change should not fire")
	}
	if trigger(2, 2, 1.5) {
		t.Fatal("equal should not fire")
	}
	// Shrink: fires at qlen·f <= lOld with strict shrink.
	if !trigger(2, 3, 1.5) {
		t.Fatal("2 vs 3 at f=1.5 should fire (2*1.5=3<=3)")
	}
	if trigger(3, 4, 1.5) {
		t.Fatal("3 vs 4 at f=1.5 should not fire (4.5 > 4)")
	}
	// From zero.
	if !trigger(1, 0, 1.5) {
		t.Fatal("first task should fire")
	}
	if trigger(0, 0, 1.5) {
		t.Fatal("empty vs empty should not fire")
	}
	if !trigger(0, 1, 1.5) {
		t.Fatal("drain to zero should fire")
	}
}

func TestWorkerAccessors(t *testing.T) {
	p, err := New(Config{Workers: 2, F: 1.5, Delta: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var gotID int32 = -1
	var gotPool atomic.Pointer[Pool]
	p.Submit(func(w *Worker) {
		atomic.StoreInt32(&gotID, int32(w.ID()))
		gotPool.Store(w.Pool())
	})
	p.Wait()
	if id := atomic.LoadInt32(&gotID); id < 0 || id > 1 {
		t.Fatalf("worker id %d", id)
	}
	if gotPool.Load() != p {
		t.Fatal("Pool() returned wrong pool")
	}
	if p.Workers() != 2 {
		t.Fatal("Workers() wrong")
	}
}

// TestBalanceRemainderRotates drives balance directly (workers stopped,
// so no goroutine races) and checks that the total%m surplus tasks land
// on each participant near-uniformly — the regression for low-id workers
// deterministically pocketing the remainder on every operation.
func TestBalanceRemainderRotates(t *testing.T) {
	p, err := New(Config{Workers: 4, F: 1.5, Delta: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	p.Close() // stop the workers; we call balance by hand below
	nop := func(w *Worker) {}
	const trials = 2000
	extras := make([]int, len(p.workers))
	for trial := 0; trial < trials; trial++ {
		// Hotspot: 41 tasks at worker 0 → base 10, one extra.
		for _, w := range p.workers {
			w.queue = w.queue[:0]
		}
		for i := 0; i < 41; i++ {
			p.workers[0].queue = append(p.workers[0].queue, nop)
		}
		p.balance(p.workers[0])
		holders := 0
		for i, w := range p.workers {
			switch len(w.queue) {
			case 11:
				extras[i]++
				holders++
			case 10:
			default:
				t.Fatalf("worker %d holds %d tasks, want 10 or 11", i, len(w.queue))
			}
		}
		if holders != 1 {
			t.Fatalf("%d workers hold the extra, want 1", holders)
		}
	}
	// Uniform over 4 workers: 500 expected each, ±5σ ≈ ±97.
	for i, e := range extras {
		if e < 380 || e > 620 {
			t.Fatalf("worker %d got the extra %d/%d times (want ≈500): %v",
				i, e, trials, extras)
		}
	}
}

// TestIdleBackoffStillAcceptsWork: after the dry workers have backed off
// to their maximum sleep, newly submitted work must still execute
// promptly and drain the queued counter back to zero — the regression
// guarding the global-emptiness fast path against lost wakeups.
func TestIdleBackoffStillAcceptsWork(t *testing.T) {
	p, err := New(Config{Workers: 4, F: 1.3, Delta: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for round := 0; round < 3; round++ {
		// Let every worker reach maximum backoff (32 × 50µs = 1.6ms).
		time.Sleep(20 * time.Millisecond)
		const n = 200
		var counter atomic.Int64
		for i := 0; i < n; i++ {
			p.Submit(func(w *Worker) { counter.Add(1) })
		}
		done := make(chan struct{})
		go func() {
			p.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("round %d: pool wedged after going idle", round)
		}
		if counter.Load() != n {
			t.Fatalf("round %d: executed %d of %d", round, counter.Load(), n)
		}
		if q := p.queued.Value(); q != 0 {
			t.Fatalf("round %d: queued counter = %d after Wait, want 0", round, q)
		}
	}
}

func TestStealingValidation(t *testing.T) {
	if _, err := NewStealing(1, 1, 0); err == nil {
		t.Fatal("workers=1 accepted")
	}
}

func TestStealingAllTasksExecute(t *testing.T) {
	p, err := NewStealing(4, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const n = 5000
	var counter atomic.Int64
	for i := 0; i < n; i++ {
		p.Submit(func(r *StealWorkerRef) {
			counter.Add(1)
		})
	}
	p.Wait()
	if counter.Load() != n {
		t.Fatalf("executed %d of %d", counter.Load(), n)
	}
}

func TestStealingRecursiveAndSpread(t *testing.T) {
	p, err := NewStealing(4, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var counter atomic.Int64
	var spawn func(depth int) StealTask
	spawn = func(depth int) StealTask {
		return func(r *StealWorkerRef) {
			busyWork(100)
			runtime.Gosched() // see TestBalancingSpreadsWork
			counter.Add(1)
			if depth > 0 {
				r.Submit(spawn(depth - 1))
				r.Submit(spawn(depth - 1))
			}
		}
	}
	// Root enters at one worker; stealing must spread the tree.
	p.workers[0].submit(spawn(12))
	p.Wait()
	want := int64(1<<13 - 1)
	if counter.Load() != want {
		t.Fatalf("executed %d, want %d", counter.Load(), want)
	}
	s := p.Stats()
	if s.Balances == 0 {
		t.Fatal("no steals happened")
	}
	for i, e := range s.Executed {
		if e == 0 {
			t.Fatalf("worker %d executed nothing: %v", i, s.Executed)
		}
	}
}

func TestStealingWorkerRefID(t *testing.T) {
	p, err := NewStealing(2, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var id atomic.Int32
	id.Store(-1)
	p.Submit(func(r *StealWorkerRef) { id.Store(int32(r.ID())) })
	p.Wait()
	if v := id.Load(); v < 0 || v > 1 {
		t.Fatalf("ref id %d", v)
	}
}

func BenchmarkLMPoolThroughput(b *testing.B) {
	p, err := New(Config{Workers: 8, F: 1.3, Delta: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Submit(func(w *Worker) { busyWork(50) })
	}
	p.Wait()
}

func BenchmarkStealingPoolThroughput(b *testing.B) {
	p, err := NewStealing(8, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Submit(func(r *StealWorkerRef) { busyWork(50) })
	}
	p.Wait()
}
