package pool

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lmbalance/internal/rng"
)

// StealingPool is the classic random work-stealing pool (the strategy of
// Cilk-style runtimes): workers execute from their own queue LIFO and, when
// dry, steal the oldest half of a uniformly random victim's queue. It
// serves as the practical baseline against the Lüling–Monien pool in the
// benchmark harness.
type StealingPool struct {
	workers []*stealWorker

	pending   sync.WaitGroup
	submitted atomic.Int64
	steals    atomic.Int64
	migrated  atomic.Int64

	quit      chan struct{}
	done      sync.WaitGroup
	ext       atomic.Uint64
	idleSleep time.Duration
}

type stealWorker struct {
	id   int
	pool *StealingPool
	rng  *rng.RNG

	mu    sync.Mutex
	queue []StealTask

	executed atomic.Int64
}

// StealTask is a unit of work for the stealing pool.
type StealTask func(w *StealWorkerRef)

// StealWorkerRef is the execution context handed to tasks, allowing local
// submission of subtasks.
type StealWorkerRef struct {
	w *stealWorker
}

// ID returns the executing worker's index.
func (r *StealWorkerRef) ID() int { return r.w.id }

// Submit enqueues a subtask on the executing worker's queue.
func (r *StealWorkerRef) Submit(t StealTask) { r.w.submit(t) }

// NewStealing creates and starts a work-stealing pool with the given
// number of workers.
func NewStealing(workers int, seed uint64, idleSleep time.Duration) (*StealingPool, error) {
	if workers < 2 {
		return nil, fmt.Errorf("pool: stealing pool needs >= 2 workers, got %d", workers)
	}
	if idleSleep == 0 {
		idleSleep = 50 * time.Microsecond
	}
	p := &StealingPool{quit: make(chan struct{}), idleSleep: idleSleep}
	master := rng.New(seed)
	p.workers = make([]*stealWorker, workers)
	for i := range p.workers {
		p.workers[i] = &stealWorker{id: i, pool: p, rng: master.Split()}
	}
	for _, w := range p.workers {
		p.done.Add(1)
		go p.run(w)
	}
	return p, nil
}

func (w *stealWorker) submit(t StealTask) {
	w.pool.pending.Add(1)
	w.pool.submitted.Add(1)
	w.mu.Lock()
	w.queue = append(w.queue, t)
	w.mu.Unlock()
}

func (w *stealWorker) pop() StealTask {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.queue)
	if n == 0 {
		return nil
	}
	t := w.queue[n-1]
	w.queue[n-1] = nil
	w.queue = w.queue[:n-1]
	return t
}

// Submit enqueues a task from outside, round-robin across workers.
func (p *StealingPool) Submit(t StealTask) {
	i := int(p.ext.Add(1)-1) % len(p.workers)
	p.workers[i].submit(t)
}

// Wait blocks until all tasks (including spawned subtasks) finished.
func (p *StealingPool) Wait() { p.pending.Wait() }

// Close stops the workers; call only after Wait.
func (p *StealingPool) Close() {
	close(p.quit)
	p.done.Wait()
}

// Stats returns a snapshot of activity counters (Balances counts steals).
func (p *StealingPool) Stats() Stats {
	s := Stats{
		Executed:  make([]int64, len(p.workers)),
		Balances:  p.steals.Load(),
		Migrated:  p.migrated.Load(),
		Submitted: p.submitted.Load(),
	}
	for i, w := range p.workers {
		s.Executed[i] = w.executed.Load()
	}
	return s
}

// Workers returns the number of workers.
func (p *StealingPool) Workers() int { return len(p.workers) }

func (p *StealingPool) run(w *stealWorker) {
	defer p.done.Done()
	ref := &StealWorkerRef{w: w}
	for {
		t := w.pop()
		if t == nil {
			select {
			case <-p.quit:
				return
			default:
			}
			if !p.steal(w) {
				time.Sleep(p.idleSleep)
				continue
			}
			if t = w.pop(); t == nil {
				continue
			}
		}
		t(ref)
		w.executed.Add(1)
		p.pending.Done()
	}
}

// steal moves the oldest half of a random victim's queue to w. It reports
// whether anything was stolen.
func (p *StealingPool) steal(w *stealWorker) bool {
	victimID := w.rng.Intn(len(p.workers) - 1)
	if victimID >= w.id {
		victimID++
	}
	victim := p.workers[victimID]
	// Lock ordering by id prevents deadlock between concurrent steals.
	first, second := w, victim
	if victim.id < w.id {
		first, second = victim, w
	}
	first.mu.Lock()
	second.mu.Lock()
	defer second.mu.Unlock()
	defer first.mu.Unlock()
	n := len(victim.queue)
	if n == 0 {
		return false
	}
	k := (n + 1) / 2
	w.queue = append(w.queue, victim.queue[:k]...)
	rest := copy(victim.queue, victim.queue[k:])
	for i := rest; i < n; i++ {
		victim.queue[i] = nil
	}
	victim.queue = victim.queue[:rest]
	p.steals.Add(1)
	p.migrated.Add(int64(k))
	return true
}
