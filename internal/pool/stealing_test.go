package pool

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestStealTakesOldestHalf drives steal directly on a stopped pool and
// checks the steal-half contract: the thief receives the oldest ⌈n/2⌉
// tasks, the victim keeps the newest, and order is preserved on both
// sides.
func TestStealTakesOldestHalf(t *testing.T) {
	p, err := NewStealing(2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Close() // stop the workers; we call steal by hand below
	for _, tc := range []struct {
		victimLen, wantStolen int
	}{
		{0, 0}, {1, 1}, {2, 1}, {5, 3}, {8, 4},
	} {
		thief, victim := p.workers[0], p.workers[1]
		thief.queue = nil
		victim.queue = nil
		marks := make([]int, tc.victimLen)
		for i := 0; i < tc.victimLen; i++ {
			i := i
			victim.queue = append(victim.queue, func(r *StealWorkerRef) { marks[i]++ })
		}
		got := p.steal(thief)
		if want := tc.wantStolen > 0; got != want {
			t.Fatalf("victimLen %d: steal reported %v", tc.victimLen, got)
		}
		if len(thief.queue) != tc.wantStolen {
			t.Fatalf("victimLen %d: thief holds %d tasks, want %d",
				tc.victimLen, len(thief.queue), tc.wantStolen)
		}
		if len(victim.queue) != tc.victimLen-tc.wantStolen {
			t.Fatalf("victimLen %d: victim keeps %d tasks, want %d",
				tc.victimLen, len(victim.queue), tc.victimLen-tc.wantStolen)
		}
		// The thief got the oldest tasks in order, the victim the rest.
		ref := &StealWorkerRef{w: thief}
		for _, task := range thief.queue {
			task(ref)
		}
		for i := 0; i < tc.wantStolen; i++ {
			if marks[i] != 1 {
				t.Fatalf("victimLen %d: oldest task %d not stolen: %v", tc.victimLen, i, marks)
			}
		}
		for i := tc.wantStolen; i < tc.victimLen; i++ {
			if marks[i] != 0 {
				t.Fatalf("victimLen %d: newest task %d left the victim: %v", tc.victimLen, i, marks)
			}
		}
	}
}

// TestStealNeverTargetsSelf: with the skip-self victim draw, a thief can
// never deadlock trying to lock its own queue twice.
func TestStealNeverTargetsSelf(t *testing.T) {
	p, err := NewStealing(3, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	thief := p.workers[1]
	// Empty pool: every draw must visit some other queue and return false;
	// a self-steal would self-deadlock long before 200 iterations.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 200; i++ {
			if p.steal(thief) {
				t.Error("stole from an empty pool")
			}
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("steal deadlocked (self-lock?)")
	}
}

// TestStealingStatsCounters: Balances counts steals and Migrated counts
// moved tasks, exactly.
func TestStealingStatsCounters(t *testing.T) {
	p, err := NewStealing(2, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	nop := func(r *StealWorkerRef) {}
	for i := 0; i < 6; i++ {
		p.workers[1].queue = append(p.workers[1].queue, nop)
	}
	p.steal(p.workers[0]) // moves 3 of 6
	p.steal(p.workers[0]) // moves 2 of the remaining 3
	s := p.Stats()
	if s.Balances != 2 {
		t.Fatalf("Balances = %d, want 2", s.Balances)
	}
	if s.Migrated != 5 {
		t.Fatalf("Migrated = %d, want 5", s.Migrated)
	}
	// Failed steals count nothing.
	p.workers[0].queue = nil
	p.workers[1].queue = nil
	p.steal(p.workers[0])
	if s := p.Stats(); s.Balances != 2 || s.Migrated != 5 {
		t.Fatalf("failed steal changed counters: %+v", s)
	}
}

// TestStealingCloseAfterWait: the documented lifecycle — Wait for
// quiescence, then Close — must terminate promptly even when the workers
// went through many dry/steal cycles first.
func TestStealingCloseAfterWait(t *testing.T) {
	p, err := NewStealing(4, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	var counter atomic.Int64
	for round := 0; round < 3; round++ {
		for i := 0; i < 500; i++ {
			p.workers[0].submit(func(r *StealWorkerRef) { counter.Add(1) })
		}
		p.Wait()
	}
	if counter.Load() != 1500 {
		t.Fatalf("executed %d of 1500", counter.Load())
	}
	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close after Wait hung")
	}
}
