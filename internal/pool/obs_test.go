package pool

import (
	"sync/atomic"
	"testing"

	"lmbalance/internal/obs"
)

// TestRegisterMetrics checks that the registry sees the same live
// counters Stats snapshots.
func TestRegisterMetrics(t *testing.T) {
	p, err := New(Config{Workers: 4, F: 1.5, Delta: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	p.RegisterMetrics(reg)

	var ran atomic.Int64
	for i := 0; i < 200; i++ {
		p.Submit(func(w *Worker) { ran.Add(1) })
	}
	p.Wait()
	defer p.Close()

	st := p.Stats()
	if got := reg.Counter("pool_tasks_submitted_total").Value(); got != st.Submitted {
		t.Fatalf("pool_tasks_submitted_total = %d, want %d", got, st.Submitted)
	}
	if got := reg.Counter("pool_balances_total").Value(); got != st.Balances {
		t.Fatalf("pool_balances_total = %d, want %d", got, st.Balances)
	}
	if got := reg.Counter("pool_tasks_migrated_total").Value(); got != st.Migrated {
		t.Fatalf("pool_tasks_migrated_total = %d, want %d", got, st.Migrated)
	}
	if got := reg.Gauge("pool_tasks_queued").Value(); got != 0 {
		t.Fatalf("pool_tasks_queued = %d after Wait, want 0", got)
	}
	if ran.Load() != 200 {
		t.Fatalf("ran %d tasks, want 200", ran.Load())
	}
	// Registering into a nil registry must be a no-op, not a panic.
	p.RegisterMetrics(nil)
}
