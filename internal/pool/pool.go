// Package pool is the concurrent realization of the Lüling–Monien load
// balancing algorithm: a dynamic task pool in which every worker goroutine
// plays the role of one processor, tasks are the load packets, and the
// factor-f trigger drives real δ+1-way balancing operations between
// workers. This is the "downstream user" API of the repository — the same
// algorithmic principle the authors deployed for branch & bound, Prolog
// and graphics workloads.
//
// A classic random work-stealing pool (StealingPool) is provided as the
// practical baseline for the benchmark harness.
//
// # Mapping from the paper
//
// The paper's model balances on changes of the self-generated load per
// class; a real task pool cannot afford per-class bookkeeping per packet,
// so — like the authors' own application systems [7,8] — the concurrent
// variant triggers on the factor-f change of the local queue length and
// balances whole queues (the ±1 snake split over δ+1 participants).
// Workers that run dry initiate a balancing operation themselves, which is
// the "workload decrease" trigger of the model. The simulator in
// internal/core keeps the exact per-class algorithm; this package keeps
// its balancing geometry and trigger discipline.
//
// Deadlock freedom: a balancing operation locks the participating workers'
// queues in ascending id order, and no lock is held while a task executes.
package pool

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lmbalance/internal/obs"
	"lmbalance/internal/rng"
)

// Task is one unit of work. Tasks may submit further tasks through the
// worker they run on (dynamic workload generation).
type Task func(w *Worker)

// Config parameterizes a Pool.
type Config struct {
	// Workers is the number of worker goroutines (processors). >= 2.
	Workers int
	// F is the balancing trigger factor (> 1): a worker initiates a
	// balancing operation when its queue length has grown or shrunk by
	// this factor since its last balancing operation.
	F float64
	// Delta is the number of partners per balancing operation (>= 1,
	// < Workers).
	Delta int
	// Seed drives the per-worker candidate selection streams.
	Seed uint64
	// IdleSleep is how long a dry worker sleeps between balance attempts;
	// 0 selects a sensible default (50µs).
	IdleSleep time.Duration
}

func (c *Config) validate() error {
	if c.Workers < 2 {
		return fmt.Errorf("pool: Workers = %d, need >= 2", c.Workers)
	}
	if c.F <= 1 {
		return fmt.Errorf("pool: F = %v, need > 1", c.F)
	}
	if c.Delta < 1 || c.Delta >= c.Workers {
		return fmt.Errorf("pool: Delta = %d, need 1 <= Delta < Workers", c.Delta)
	}
	return nil
}

// Stats is a snapshot of pool activity.
type Stats struct {
	// Executed[i] is the number of tasks worker i completed.
	Executed []int64
	// Balances is the number of balancing operations performed.
	Balances int64
	// Migrated is the number of tasks that changed workers during
	// balancing.
	Migrated int64
	// Submitted is the total number of tasks submitted.
	Submitted int64
}

// Spread returns max−min of Executed — the work-distribution quality.
func (s Stats) Spread() int64 {
	if len(s.Executed) == 0 {
		return 0
	}
	lo, hi := s.Executed[0], s.Executed[0]
	for _, v := range s.Executed[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}

// Worker is one processor of the pool. Tasks receive their worker so that
// dynamically generated subtasks enter the local queue, as in the model.
type Worker struct {
	id   int
	pool *Pool

	mu    sync.Mutex
	queue []Task
	lOld  int // queue length at the last balancing operation

	executed atomic.Int64
}

// ID returns the worker's index in [0, Workers).
func (w *Worker) ID() int { return w.id }

// Pool returns the owning pool.
func (w *Worker) Pool() *Pool { return w.pool }

// Submit enqueues a task on this worker's own queue (local generation).
func (w *Worker) Submit(t Task) {
	w.pool.pending.Add(1)
	w.pool.submitted.Inc()
	// Publish the queued task before it becomes visible in the queue so
	// the dry-worker fast path can never observe "pool empty" while a
	// queued task exists.
	w.pool.queued.Add(1)
	w.mu.Lock()
	w.queue = append(w.queue, t)
	qlen := len(w.queue)
	lOld := w.lOld
	w.mu.Unlock()
	if trigger(qlen, lOld, w.pool.cfg.F) {
		w.pool.balance(w)
	}
}

// pop removes and returns the newest local task (LIFO: depth-first for
// tree-shaped computations, the branch & bound regime), or nil.
func (w *Worker) pop() Task {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.queue)
	if n == 0 {
		return nil
	}
	t := w.queue[n-1]
	w.queue[n-1] = nil
	w.queue = w.queue[:n-1]
	w.pool.queued.Add(-1)
	return t
}

// Pool runs tasks over a fixed set of workers with Lüling–Monien
// balancing. Create with New, feed with Submit, then Wait and Close.
type Pool struct {
	cfg     Config
	workers []*Worker

	pending sync.WaitGroup // outstanding tasks
	// Activity counters are obs metrics so RegisterMetrics can publish
	// the live values without a parallel bookkeeping path; they count
	// whether or not a registry is attached (zero values are ready).
	submitted obs.Counter
	balances  obs.Counter
	migrated  obs.Counter
	// queued counts tasks currently sitting in worker queues (not yet
	// popped). Dry workers consult it before a balance attempt: when the
	// whole pool is empty there is nothing to steal, so they back off
	// without touching the shared RNG or any queue locks.
	queued obs.Gauge

	quit chan struct{}
	done sync.WaitGroup // worker goroutines
	ext  atomic.Uint64  // round-robin cursor for external submits

	// rng drives candidate selection for balancing operations; it is
	// shared because a balance can be initiated from any goroutine that
	// submits (external callers included), so per-worker streams would
	// race.
	rngMu sync.Mutex
	rng   *rng.RNG
}

// New creates and starts a pool.
func New(cfg Config) (*Pool, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.IdleSleep == 0 {
		cfg.IdleSleep = 50 * time.Microsecond
	}
	p := &Pool{cfg: cfg, quit: make(chan struct{}), rng: rng.New(cfg.Seed)}
	p.workers = make([]*Worker, cfg.Workers)
	for i := range p.workers {
		p.workers[i] = &Worker{id: i, pool: p}
	}
	for _, w := range p.workers {
		p.done.Add(1)
		go p.run(w)
	}
	return p, nil
}

// Submit enqueues a task from outside the pool; tasks are spread
// round-robin across workers (arrival at arbitrary processors).
func (p *Pool) Submit(t Task) {
	i := int(p.ext.Add(1)-1) % len(p.workers)
	p.workers[i].Submit(t)
}

// Wait blocks until every submitted task (including recursively generated
// ones) has finished executing.
func (p *Pool) Wait() { p.pending.Wait() }

// Close stops the workers. It must not be called while tasks are still
// outstanding (Wait first); remaining queued tasks would be lost.
func (p *Pool) Close() {
	close(p.quit)
	p.done.Wait()
}

// Stats returns a snapshot of activity counters.
func (p *Pool) Stats() Stats {
	s := Stats{
		Executed:  make([]int64, len(p.workers)),
		Balances:  p.balances.Value(),
		Migrated:  p.migrated.Value(),
		Submitted: p.submitted.Value(),
	}
	for i, w := range p.workers {
		s.Executed[i] = w.executed.Load()
	}
	return s
}

// Workers returns the number of workers.
func (p *Pool) Workers() int { return len(p.workers) }

// RegisterMetrics attaches the pool's live activity counters and the
// current queued-task gauge to an obs registry (nil no-ops). The
// counters are the same objects Stats snapshots, so a /metrics scrape
// and Stats always agree.
func (p *Pool) RegisterMetrics(reg *obs.Registry) {
	reg.Attach("pool_tasks_submitted_total", &p.submitted)
	reg.Attach("pool_balances_total", &p.balances)
	reg.Attach("pool_tasks_migrated_total", &p.migrated)
	reg.Attach("pool_tasks_queued", &p.queued)
}

// trigger is the factor-f condition on queue lengths, with the same
// strict-change guard as the simulator (see core/doc.go).
func trigger(qlen, lOld int, f float64) bool {
	if qlen > lOld && float64(qlen) >= f*float64(lOld) {
		return true
	}
	return qlen < lOld && float64(qlen)*f <= float64(lOld)
}

// run is the worker main loop.
func (p *Pool) run(w *Worker) {
	defer p.done.Done()
	idleSpins := 0
	for {
		t := w.pop()
		if t == nil {
			select {
			case <-p.quit:
				return
			default:
			}
			// Fast path: the whole pool is empty, so a balancing
			// operation cannot acquire anything — skip the shared RNG
			// and the δ+1 queue locks entirely and back off (doubling up
			// to 32× IdleSleep) so a quiescent pool stops contending.
			// Work can still reach our queue meanwhile: a submitting
			// worker's trigger pushes tasks here via its own balance.
			if p.queued.Value() == 0 {
				sleep := p.cfg.IdleSleep << min(idleSpins, 5)
				if idleSpins < 5 {
					idleSpins++
				}
				time.Sleep(sleep)
				continue
			}
			idleSpins = 0
			// Dry worker: a shrink trigger (qlen 0 vs lOld > 0) or plain
			// starvation; initiate a balancing operation to acquire work.
			p.balance(w)
			if t = w.pop(); t == nil {
				time.Sleep(p.cfg.IdleSleep)
				continue
			}
		}
		idleSpins = 0
		t(w)
		w.executed.Add(1)
		p.pending.Done()
		w.mu.Lock()
		qlen := len(w.queue)
		lOld := w.lOld
		w.mu.Unlock()
		if trigger(qlen, lOld, p.cfg.F) {
			p.balance(w)
		}
	}
}

// balance performs one δ+1-way balancing operation initiated by w:
// participants' queues are concatenated and re-split into ±1 equal parts.
func (p *Pool) balance(init *Worker) {
	p.rngMu.Lock()
	ids := p.rng.SampleDistinct(len(p.workers), p.cfg.Delta, init.id, nil)
	// Draw the remainder offset now, while the RNG is locked; whether it
	// is needed depends on totals we only know once the queues are
	// locked.
	off := p.rng.Intn(p.cfg.Delta + 1)
	p.rngMu.Unlock()
	ids = append(ids, init.id)
	sort.Ints(ids)
	parts := make([]*Worker, len(ids))
	for i, id := range ids {
		parts[i] = p.workers[id]
		parts[i].mu.Lock()
	}
	defer func() {
		for _, w := range parts {
			w.mu.Unlock()
		}
	}()
	total := 0
	for _, w := range parts {
		total += len(w.queue)
	}
	m := len(parts)
	base, rem := total/m, total%m
	// The rem extra tasks go to the circular run [off, off+rem) of the
	// sorted participant list — the core package's snake discipline with
	// a randomized start. A fixed start (extras to i < rem) would hand
	// low-id workers the surplus task on every operation.
	want := func(i int) int {
		if rel := i - off; (rel%m+m)%m < rem {
			return base + 1
		}
		return base
	}
	// Short-circuit: nothing to move if every queue is already within ±1
	// of the mean (any rotation of the extras counts — re-splitting to
	// shift which worker holds an extra would be pure churn).
	balanced := true
	for _, w := range parts {
		if l := len(w.queue); l != base && l != base+1 {
			balanced = false
			break
		}
	}
	if balanced {
		for _, w := range parts {
			w.lOld = len(w.queue)
		}
		return
	}
	all := make([]Task, 0, total)
	for _, w := range parts {
		all = append(all, w.queue...)
	}
	p.balances.Inc()
	pos := 0
	for i, w := range parts {
		cnt := want(i)
		if grown := cnt - len(w.queue); grown > 0 {
			p.migrated.Add(int64(grown))
		}
		w.queue = append(w.queue[:0], all[pos:pos+cnt]...)
		w.lOld = cnt
		pos += cnt
	}
}
