package pool

import (
	"container/heap"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lmbalance/internal/rng"
)

// PriorityPool is the best-first variant of the Lüling–Monien task pool:
// every worker keeps its tasks in a min-heap ordered by priority (lower =
// more promising, e.g. a branch & bound lower bound), executes the most
// promising task first, and balancing operations deal the merged tasks
// out round-robin in priority order — so after a balance every
// participant holds an equally good mix of promising and unpromising
// work. This mirrors the authors' distributed best-first branch & bound
// systems ([7], [8]), where it is not enough for every processor to have
// *some* work: they must all work on *good* subproblems, or speedup
// collapses from searching parts of the tree the sequential algorithm
// would prune.
type PriorityPool struct {
	cfg     Config
	workers []*PriorityWorker

	pending   sync.WaitGroup
	submitted atomic.Int64
	balances  atomic.Int64
	migrated  atomic.Int64

	quit chan struct{}
	done sync.WaitGroup
	ext  atomic.Uint64

	rngMu sync.Mutex
	rng   *rng.RNG
}

// PriorityTask is one unit of work with a priority (lower runs first).
type PriorityTask struct {
	Priority int64
	Run      func(w *PriorityWorker)
}

// taskHeap is a min-heap of PriorityTask.
type taskHeap []PriorityTask

func (h taskHeap) Len() int           { return len(h) }
func (h taskHeap) Less(i, j int) bool { return h[i].Priority < h[j].Priority }
func (h taskHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)        { *h = append(*h, x.(PriorityTask)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = PriorityTask{}
	*h = old[:n-1]
	return t
}

// PriorityWorker is one processor of the priority pool.
type PriorityWorker struct {
	id   int
	pool *PriorityPool

	mu    sync.Mutex
	queue taskHeap
	lOld  int

	executed atomic.Int64
}

// ID returns the worker's index.
func (w *PriorityWorker) ID() int { return w.id }

// Pool returns the owning pool.
func (w *PriorityWorker) Pool() *PriorityPool { return w.pool }

// Submit enqueues a task on this worker's own heap (local generation).
func (w *PriorityWorker) Submit(t PriorityTask) {
	if t.Run == nil {
		panic("pool: PriorityTask with nil Run")
	}
	w.pool.pending.Add(1)
	w.pool.submitted.Add(1)
	w.mu.Lock()
	heap.Push(&w.queue, t)
	qlen := len(w.queue)
	lOld := w.lOld
	w.mu.Unlock()
	if trigger(qlen, lOld, w.pool.cfg.F) {
		w.pool.balance(w)
	}
}

// pop removes and returns the most promising local task, or ok=false.
func (w *PriorityWorker) pop() (PriorityTask, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.queue) == 0 {
		return PriorityTask{}, false
	}
	return heap.Pop(&w.queue).(PriorityTask), true
}

// NewPriority creates and starts a best-first pool.
func NewPriority(cfg Config) (*PriorityPool, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.IdleSleep == 0 {
		cfg.IdleSleep = 50 * time.Microsecond
	}
	p := &PriorityPool{cfg: cfg, quit: make(chan struct{}), rng: rng.New(cfg.Seed)}
	p.workers = make([]*PriorityWorker, cfg.Workers)
	for i := range p.workers {
		p.workers[i] = &PriorityWorker{id: i, pool: p}
	}
	for _, w := range p.workers {
		p.done.Add(1)
		go p.run(w)
	}
	return p, nil
}

// Submit enqueues a task from outside, round-robin across workers.
func (p *PriorityPool) Submit(t PriorityTask) {
	i := int(p.ext.Add(1)-1) % len(p.workers)
	p.workers[i].Submit(t)
}

// Wait blocks until every submitted task has finished executing.
func (p *PriorityPool) Wait() { p.pending.Wait() }

// Close stops the workers; call only after Wait.
func (p *PriorityPool) Close() {
	close(p.quit)
	p.done.Wait()
}

// Workers returns the number of workers.
func (p *PriorityPool) Workers() int { return len(p.workers) }

// Stats returns a snapshot of activity counters.
func (p *PriorityPool) Stats() Stats {
	s := Stats{
		Executed:  make([]int64, len(p.workers)),
		Balances:  p.balances.Load(),
		Migrated:  p.migrated.Load(),
		Submitted: p.submitted.Load(),
	}
	for i, w := range p.workers {
		s.Executed[i] = w.executed.Load()
	}
	return s
}

// run is the worker main loop.
func (p *PriorityPool) run(w *PriorityWorker) {
	defer p.done.Done()
	for {
		t, ok := w.pop()
		if !ok {
			select {
			case <-p.quit:
				return
			default:
			}
			p.balance(w)
			if t, ok = w.pop(); !ok {
				time.Sleep(p.cfg.IdleSleep)
				continue
			}
		}
		t.Run(w)
		w.executed.Add(1)
		p.pending.Done()
		w.mu.Lock()
		qlen := len(w.queue)
		lOld := w.lOld
		w.mu.Unlock()
		if trigger(qlen, lOld, p.cfg.F) {
			p.balance(w)
		}
	}
}

// balance merges the participants' heaps and deals the tasks back out
// round-robin in priority order, so counts are ±1 equal AND the quality
// mix is even.
func (p *PriorityPool) balance(init *PriorityWorker) {
	p.rngMu.Lock()
	ids := p.rng.SampleDistinct(len(p.workers), p.cfg.Delta, init.id, nil)
	p.rngMu.Unlock()
	ids = append(ids, init.id)
	sort.Ints(ids)
	parts := make([]*PriorityWorker, len(ids))
	for i, id := range ids {
		parts[i] = p.workers[id]
		parts[i].mu.Lock()
	}
	defer func() {
		for _, w := range parts {
			w.mu.Unlock()
		}
	}()
	total := 0
	for _, w := range parts {
		total += len(w.queue)
	}
	m := len(parts)
	base, rem := total/m, total%m
	balanced := true
	for i, w := range parts {
		want := base
		if i < rem {
			want++
		}
		if len(w.queue) != want {
			balanced = false
			break
		}
	}
	if balanced {
		for _, w := range parts {
			w.lOld = len(w.queue)
		}
		return
	}
	all := make([]PriorityTask, 0, total)
	for _, w := range parts {
		all = append(all, w.queue...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Priority < all[j].Priority })
	p.balances.Add(1)
	for i, w := range parts {
		before := len(w.queue)
		w.queue = w.queue[:0]
		// Deal round-robin: participant i receives tasks i, i+m, i+2m, …
		// — everyone gets the same spectrum of priorities.
		for k := i; k < total; k += m {
			w.queue = append(w.queue, all[k])
		}
		heap.Init(&w.queue)
		w.lOld = len(w.queue)
		if grown := len(w.queue) - before; grown > 0 {
			p.migrated.Add(int64(grown))
		}
	}
}

// BestPriority returns the most promising queued priority across all
// workers, or ok=false if every queue is empty. For monitoring.
func (p *PriorityPool) BestPriority() (int64, bool) {
	best := int64(0)
	found := false
	for _, w := range p.workers {
		w.mu.Lock()
		if len(w.queue) > 0 {
			if v := w.queue[0].Priority; !found || v < best {
				best, found = v, true
			}
		}
		w.mu.Unlock()
	}
	return best, found
}
