package netsim

import (
	"testing"
	"time"

	"lmbalance/internal/rng"
	"lmbalance/internal/trace"
)

func TestFaultValidation(t *testing.T) {
	base := Config{N: 8, Delta: 1, F: 1.2, Steps: 100}
	cases := []Faults{
		{DropP: -0.1},
		{DropP: 1.5},
		{DelayMax: -1},
		{TimeoutTicks: -1},
		{FreezeTicks: -2},
		{Tick: -1},
		{Crashes: []Crash{{Node: 8}}},
		{Crashes: []Crash{{Node: -1}}},
		{Crashes: []Crash{{Node: 0, AtStep: -5}}},
		{Crashes: []Crash{{Node: 0, DownTicks: -5}}},
	}
	for i, f := range cases {
		cfg := base
		cfg.Faults = f
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d accepted: %+v", i, f)
		}
	}
}

func TestFaultsDisabledLeavesCountersZero(t *testing.T) {
	res := runWithTimeout(t, Config{
		N: 8, Delta: 1, F: 1.2, Steps: 1000,
		GenP: []float64{0.5}, ConP: []float64{0.4}, Seed: 11,
	})
	for i, n := range res.Nodes {
		if n.Dropped != 0 || n.LostAtCrash != 0 || n.Delayed != 0 ||
			n.Timeouts != 0 || n.FreezeExpired != 0 || n.Crashes != 0 {
			t.Fatalf("node %d has fault counters without faults: %+v", i, n)
		}
	}
}

// TestConservationUnderDrops: even with half the control messages lost,
// every generated-minus-consumed packet is accounted for, and dropped
// acks cannot wedge the protocol — the run terminates via timeouts.
func TestConservationUnderDrops(t *testing.T) {
	rec := trace.NewRecorder(64)
	res := runWithTimeout(t, Config{
		N: 16, Delta: 2, F: 1.1, Steps: 800,
		GenP: []float64{0.6}, ConP: []float64{0.3}, Seed: 21,
		Faults: Faults{DropP: 0.5, Seed: 7, Trace: rec,
			TimeoutTicks: 25, Tick: 50 * time.Microsecond},
	})
	if !res.Conserved() {
		t.Fatalf("conservation violated under drops: %+v", res.Nodes)
	}
	var dropped, timeouts, initiated int64
	for _, n := range res.Nodes {
		dropped += n.Dropped
		timeouts += n.Timeouts
		initiated += n.Initiated
	}
	if initiated == 0 {
		t.Fatal("no protocols ran")
	}
	if dropped == 0 {
		t.Fatal("DropP=0.5 dropped nothing")
	}
	if timeouts == 0 {
		t.Fatal("dropped replies never triggered an initiator timeout")
	}
	if rec.CountKind(trace.EvDrop) == 0 {
		t.Fatal("no drop events traced")
	}
	if rec.CountKind(trace.EvTimeout) == 0 {
		t.Fatal("no timeout events traced")
	}
}

// TestConservationUnderDelays: pure delay (no loss) must not break
// conservation or liveness; transfers parked in delay buffers at shutdown
// are applied by the final drain.
func TestConservationUnderDelays(t *testing.T) {
	res := runWithTimeout(t, Config{
		N: 16, Delta: 2, F: 1.1, Steps: 1500,
		GenP: []float64{0.6}, ConP: []float64{0.3}, Seed: 22,
		Faults: Faults{DelayMax: 6, Seed: 9},
	})
	if !res.Conserved() {
		t.Fatalf("conservation violated under delays: %+v", res.Nodes)
	}
	var delayed, completed int64
	for _, n := range res.Nodes {
		delayed += n.Delayed
		completed += n.Completed
	}
	if delayed == 0 {
		t.Fatal("DelayMax=6 delayed nothing")
	}
	if completed == 0 {
		t.Fatal("no protocol completed under delay — the layer is too disruptive")
	}
}

// TestConservationUnderCrashes: fail-stop windows (load in stable
// storage) conserve packets exactly, and the crashed nodes come back and
// finish their steps.
func TestConservationUnderCrashes(t *testing.T) {
	rec := trace.NewRecorder(64)
	res := runWithTimeout(t, Config{
		N: 16, Delta: 2, F: 1.1, Steps: 1500,
		GenP: []float64{0.6}, ConP: []float64{0.3}, Seed: 23,
		Faults: Faults{
			Seed: 13, DropP: 0.05, Trace: rec,
			TimeoutTicks: 25, Tick: 50 * time.Microsecond,
			Crashes: []Crash{
				{Node: 1, AtStep: 200}, {Node: 5, AtStep: 400},
				{Node: 9, AtStep: 600}, {Node: 13, AtStep: 800, DownTicks: 200},
			},
		},
	})
	if !res.Conserved() {
		t.Fatalf("conservation violated under crashes: %+v", res.Nodes)
	}
	for _, id := range []int{1, 5, 9, 13} {
		if res.Nodes[id].Crashes != 1 {
			t.Fatalf("node %d recorded %d crashes, want 1", id, res.Nodes[id].Crashes)
		}
		if got := res.Nodes[id].Generated; got == 0 {
			t.Fatalf("node %d generated nothing — did it resume stepping after recovery?", id)
		}
	}
	if rec.CountKind(trace.EvCrash) != 4 {
		t.Fatalf("traced %d crash events, want 4", rec.CountKind(trace.EvCrash))
	}
}

// TestFrozenPeersReleasedByTimeout: with releases being dropped and
// initiators crashing, partners must rescue themselves via the
// freeze-expiry timeout instead of leaking frozen (which would deadlock
// the run — runWithTimeout would trip).
func TestFrozenPeersReleasedByTimeout(t *testing.T) {
	crashes := make([]Crash, 0, 8)
	for i := 0; i < 8; i++ {
		crashes = append(crashes, Crash{Node: i * 2, AtStep: 100 + 50*i, DownTicks: 300})
	}
	res := runWithTimeout(t, Config{
		N: 16, Delta: 3, F: 1.05, Steps: 800,
		GenP: []float64{0.7}, ConP: []float64{0.3}, Seed: 24,
		Faults: Faults{DropP: 0.6, Seed: 17, Crashes: crashes, FreezeTicks: 60,
			TimeoutTicks: 25, Tick: 50 * time.Microsecond},
	})
	if !res.Conserved() {
		t.Fatalf("conservation violated: %+v", res.Nodes)
	}
	var expired int64
	for _, n := range res.Nodes {
		expired += n.FreezeExpired
	}
	if expired == 0 {
		t.Fatal("no freeze ever expired despite 60% control loss — self-release path untested")
	}
}

// TestCountersConsistentUnderFaults: every initiated protocol ends as
// completed or aborted (timeout aborts included), except the ones wiped
// by a crash mid-flight.
func TestCountersConsistentUnderFaults(t *testing.T) {
	res := runWithTimeout(t, Config{
		N: 16, Delta: 2, F: 1.1, Steps: 800,
		GenP: []float64{0.6}, ConP: []float64{0.3}, Seed: 25,
		Faults: Faults{DropP: 0.3, DelayMax: 3, Seed: 19,
			TimeoutTicks: 25, Tick: 50 * time.Microsecond,
			Crashes: []Crash{{Node: 3, AtStep: 300}, {Node: 7, AtStep: 500}}},
	})
	var initiated, completed, aborted, timeouts, crashed int64
	for _, n := range res.Nodes {
		initiated += n.Initiated
		completed += n.Completed
		aborted += n.Aborted
		timeouts += n.Timeouts
		crashed += n.Crashes
	}
	if completed+aborted > initiated {
		t.Fatalf("completed %d + aborted %d exceeds initiated %d", completed, aborted, initiated)
	}
	// A crash can abandon at most one in-flight protocol without counting
	// an abort.
	if initiated-(completed+aborted) > crashed {
		t.Fatalf("%d protocols unaccounted for, only %d crashes", initiated-(completed+aborted), crashed)
	}
	if timeouts > aborted {
		t.Fatalf("timeouts %d exceed aborts %d — timeout aborts must count as aborts", timeouts, aborted)
	}
	if completed == 0 {
		t.Fatal("nothing completed under moderate faults")
	}
}

// TestResolveRemainderUnbiased drives resolve directly and checks that
// the remainder packet lands on each participant (initiator included)
// near-uniformly — the regression for the initiator always taking
// share(0) and with it the first extra packet.
func TestResolveRemainderUnbiased(t *testing.T) {
	const trials = 4000
	const m = 4 // initiator + 3 partners
	cfg := Config{N: m, Delta: m - 1, F: 1.2, Steps: 1}
	inboxes := make([]chan message, m)
	for i := range inboxes {
		inboxes[i] = make(chan message, 4)
	}
	n := &node{id: 0, cfg: &cfg, rng: rng.New(99), peers: inboxes}
	extras := make([]int, m)
	for trial := 0; trial < trials; trial++ {
		n.load = 6 // total 21 over 4 participants: base 5, rem 1
		n.inflight = true
		n.ackedFrom = []int{1, 2, 3}
		n.ackedLoads = []int{5, 5, 5}
		n.resolve()
		if n.load == 6 {
			extras[0]++
		} else if n.load != 5 {
			t.Fatalf("initiator share %d, want 5 or 6", n.load)
		}
		for i := 1; i < m; i++ {
			tr := <-inboxes[i]
			if tr.kind != transfer {
				t.Fatalf("partner %d got %v, want transfer", i, tr.kind)
			}
			switch got := 5 + tr.amount; got {
			case 6:
				extras[i]++
			case 5:
			default:
				t.Fatalf("partner %d share %d, want 5 or 6", i, got)
			}
		}
	}
	// One extra per trial, uniform over 4 participants: 1000 expected,
	// ±5σ ≈ ±137.
	for i, e := range extras {
		if e < 800 || e > 1200 {
			t.Fatalf("participant %d captured the extra %d/%d times (want ≈1000): %v",
				i, e, trials, extras)
		}
	}
}

// TestInitiatorMeanLoadMatchesPartners: node 0 is the only node whose
// load ever changes by itself, hence the only initiator. Its long-run
// mean final load must match its partners' — under the old share(0) rule
// it systematically kept the first remainder packet of every operation.
func TestInitiatorMeanLoadMatchesPartners(t *testing.T) {
	const runs = 150
	var diff float64
	for run := 0; run < runs; run++ {
		res := runWithTimeout(t, Config{
			N: 4, Delta: 2, F: 1.1, Steps: 300,
			GenP: []float64{0.6, 0, 0, 0}, ConP: []float64{0.6, 0, 0, 0},
			Seed: 1000 + uint64(run),
		})
		var partners float64
		for _, n := range res.Nodes[1:] {
			partners += float64(n.FinalLoad)
		}
		diff += float64(res.Nodes[0].FinalLoad) - partners/3
	}
	diff /= runs
	// The biased rule gives ≈ +0.5 here; the rotated snake gives ≈ 0.
	if diff > 0.35 || diff < -0.35 {
		t.Fatalf("initiator mean final load deviates from partners by %+.3f", diff)
	}
}
