package netsim

import (
	"testing"
	"time"

	"lmbalance/internal/topology"
)

// runWithTimeout guards against protocol deadlocks: the whole point of
// the message-passing realization is that it quiesces by itself.
func runWithTimeout(t *testing.T, cfg Config) *Result {
	t.Helper()
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := Run(cfg)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			t.Fatal(o.err)
		}
		return o.res
	case <-time.After(60 * time.Second):
		t.Fatal("netsim.Run deadlocked")
		return nil
	}
}

func TestValidation(t *testing.T) {
	cases := []Config{
		{N: 1, Delta: 1, F: 1.5, Steps: 10},
		{N: 4, Delta: 0, F: 1.5, Steps: 10},
		{N: 4, Delta: 4, F: 1.5, Steps: 10},
		{N: 4, Delta: 1, F: 1.0, Steps: 10},
		{N: 4, Delta: 1, F: 1.5, Steps: 0},
		{N: 4, Delta: 1, F: 1.5, Steps: 10, GenP: []float64{0.5, 0.5}},
		{N: 4, Delta: 1, F: 1.5, Steps: 10, GenP: []float64{1.5}},
	}
	for i, c := range cases {
		if _, err := Run(c); err == nil {
			t.Fatalf("case %d accepted: %+v", i, c)
		}
	}
}

func TestConservation(t *testing.T) {
	res := runWithTimeout(t, Config{
		N: 8, Delta: 1, F: 1.2, Steps: 2000,
		GenP: []float64{0.5}, ConP: []float64{0.4}, Seed: 1,
	})
	var gen, con int64
	for _, n := range res.Nodes {
		gen += n.Generated
		con += n.Consumed
	}
	if int64(res.TotalLoad()) != gen-con {
		t.Fatalf("conservation violated: %d final vs %d generated − %d consumed",
			res.TotalLoad(), gen, con)
	}
}

func TestProtocolCountersConsistent(t *testing.T) {
	res := runWithTimeout(t, Config{
		N: 16, Delta: 2, F: 1.1, Steps: 1000,
		GenP: []float64{0.6}, ConP: []float64{0.3}, Seed: 2,
	})
	var initiated, completed, aborted int64
	for _, n := range res.Nodes {
		initiated += n.Initiated
		completed += n.Completed
		aborted += n.Aborted
	}
	if initiated == 0 {
		t.Fatal("no balancing protocols ran")
	}
	if completed+aborted != initiated {
		t.Fatalf("initiated %d != completed %d + aborted %d", initiated, completed, aborted)
	}
	if completed == 0 {
		t.Fatal("every protocol aborted — freeze conflicts are not resolving")
	}
	if res.Messages() == 0 {
		t.Fatal("no messages counted")
	}
}

// TestHotspotSpreads: a single producing node; balancing must spread the
// load across the network despite pure message passing.
func TestHotspotSpreads(t *testing.T) {
	gen := make([]float64, 16)
	gen[0] = 0.9
	res := runWithTimeout(t, Config{
		N: 16, Delta: 1, F: 1.2, Steps: 3000,
		GenP: gen, ConP: []float64{0}, Seed: 3,
	})
	total := res.TotalLoad()
	if total < 2000 {
		t.Fatalf("implausibly low total %d", total)
	}
	// Node 0 must not hold more than a few multiples of the fair share.
	fair := total / 16
	if res.Nodes[0].FinalLoad > fair*3 {
		t.Fatalf("hotspot kept %d of %d (fair share %d)", res.Nodes[0].FinalLoad, total, fair)
	}
	// Everybody got something.
	for i, n := range res.Nodes {
		if n.FinalLoad == 0 {
			t.Fatalf("node %d ended with zero load; loads=%v", i, res.Nodes)
		}
	}
}

// TestSpreadBeatsUnbalanced: with balancing, the final spread under a
// heterogeneous workload is far below the no-balancing expectation.
func TestSpreadBeatsUnbalanced(t *testing.T) {
	gen := make([]float64, 8)
	con := make([]float64, 8)
	for i := range gen {
		if i < 4 {
			gen[i], con[i] = 0.8, 0.1
		} else {
			gen[i], con[i] = 0.1, 0.3
		}
	}
	res := runWithTimeout(t, Config{
		N: 8, Delta: 2, F: 1.1, Steps: 4000,
		GenP: gen, ConP: con, Seed: 4,
	})
	// Without balancing, producers would hold ≈ 0.7·4000 = 2800 and
	// consumers ≈ 0; spread ≈ 2800. With balancing it must collapse.
	if s := res.Spread(); s > 500 {
		t.Fatalf("spread %d too large; loads: %+v", s, res.Nodes)
	}
}

// TestManyNodesNoDeadlock stresses freeze-conflict resolution: many nodes,
// large δ, frequent triggers.
func TestManyNodesNoDeadlock(t *testing.T) {
	res := runWithTimeout(t, Config{
		N: 64, Delta: 4, F: 1.05, Steps: 500,
		GenP: []float64{0.7}, ConP: []float64{0.5}, Seed: 5,
	})
	var aborted, initiated int64
	for _, n := range res.Nodes {
		aborted += n.Aborted
		initiated += n.Initiated
	}
	t.Logf("64 nodes: %d initiated, %d aborted (%.1f%%), %d messages",
		initiated, aborted, 100*float64(aborted)/float64(initiated+1), res.Messages())
}

// TestDelta1MinimalConfig: the smallest network.
func TestDelta1MinimalConfig(t *testing.T) {
	res := runWithTimeout(t, Config{
		N: 2, Delta: 1, F: 1.5, Steps: 500,
		GenP: []float64{0.5, 0}, ConP: []float64{0}, Seed: 6,
	})
	if d := res.Nodes[0].FinalLoad - res.Nodes[1].FinalLoad; d < -300 || d > 300 {
		t.Fatalf("two-node balance failed: loads %d vs %d",
			res.Nodes[0].FinalLoad, res.Nodes[1].FinalLoad)
	}
}

// TestMessageCostScalesWithDelta: each completed protocol exchanges
// 2δ+transfer messages; larger δ costs proportionally more.
func TestMessageCostScalesWithDelta(t *testing.T) {
	run := func(delta int) (perOp float64) {
		res := runWithTimeout(t, Config{
			N: 32, Delta: delta, F: 1.2, Steps: 1500,
			GenP: []float64{0.6}, ConP: []float64{0.4}, Seed: 7,
		})
		var completed int64
		for _, n := range res.Nodes {
			completed += n.Completed
		}
		if completed == 0 {
			t.Fatal("no completed protocols")
		}
		return float64(res.Messages()) / float64(completed)
	}
	m1, m4 := run(1), run(4)
	if m4 <= m1 {
		t.Fatalf("messages per op should grow with δ: δ=1→%.1f δ=4→%.1f", m1, m4)
	}
}

func TestGraphValidationNetsim(t *testing.T) {
	g := topology.Ring(8)
	if _, err := Run(Config{N: 16, Delta: 1, F: 1.2, Steps: 10, GenP: []float64{0.5}, ConP: []float64{0.1}, Graph: g}); err == nil {
		t.Fatal("graph size mismatch accepted")
	}
}

// TestGraphRestrictedBalancing: with a torus topology, balancing still
// spreads a hotspot's load across the whole network. Light consumption
// everywhere matters: a transfer resets the receiver's trigger base, so
// forwarding beyond one hop is driven by the *decrease* trigger of
// consuming receivers — without consumers, locality-restricted balancing
// legitimately stalls at the hotspot's neighborhood (the global model
// does not have this issue because everyone eventually balances with the
// hotspot directly).
func TestGraphRestrictedBalancing(t *testing.T) {
	g := topology.Torus2D(4, 4)
	gen := make([]float64, 16)
	gen[0] = 0.9
	con := make([]float64, 16)
	for i := range con {
		con[i] = 0.05
	}
	res := runWithTimeout(t, Config{
		N: 16, Delta: 2, F: 1.2, Steps: 5000,
		GenP: gen, ConP: con, Seed: 9, Graph: g,
	})
	var gensum, consum int64
	for _, n := range res.Nodes {
		gensum += n.Generated
		consum += n.Consumed
	}
	if int64(res.TotalLoad()) != gensum-consum {
		t.Fatalf("conservation violated: %d vs %d−%d", res.TotalLoad(), gensum, consum)
	}
	// Work must have reached every node: everyone consumed something.
	for i, n := range res.Nodes {
		if i != 0 && n.Consumed == 0 {
			t.Fatalf("node %d never consumed anything; loads %+v", i, res.Nodes)
		}
	}
	// The hotspot must not hoard.
	if res.Nodes[0].FinalLoad > res.TotalLoad()*3/4 {
		t.Fatalf("hotspot kept %d of %d under torus balancing", res.Nodes[0].FinalLoad, res.TotalLoad())
	}
}

func BenchmarkNetsimRun(b *testing.B) {
	cfg := Config{
		N: 32, Delta: 1, F: 1.2, Steps: 1000,
		GenP: []float64{0.5}, ConP: []float64{0.4},
	}
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i)
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
