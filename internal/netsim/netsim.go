// Package netsim is the share-nothing, message-passing realization of the
// Lüling–Monien algorithm: every processor is a goroutine owning its load
// counter, and balancing operations are a small request/reply protocol
// over channels — no shared memory, mirroring the distributed-memory
// transputer systems the paper targets (its [13]).
//
// # Protocol
//
// A processor whose load has changed by the factor f since its last
// balancing operation initiates:
//
//  1. it sends freezeReq to δ random partners and stops doing workload
//     steps (it keeps serving its inbox);
//  2. a partner that is not engaged freezes (stops workload steps) and
//     replies freezeAck carrying its load; an engaged partner replies
//     freezeBusy;
//  3. when all δ replies are in: if any was busy the initiator releases
//     the frozen partners and aborts (the trigger stays armed, so it
//     retries on the next load change); otherwise it computes the ±1
//     equal shares and sends each partner a transfer with the difference,
//     unfreezing it.
//
// Deadlock freedom: nobody ever blocks on a send while refusing to drain
// its inbox — every node's event loop keeps receiving while frozen or
// mid-protocol, and freeze conflicts are resolved by abort-and-retry
// rather than waiting. Shutdown is two-phase: nodes first finish their
// workload steps and drain to a quiet state (serving, refusing new
// freezes), and the coordinator closes quit only after every node has
// reported idle, so no message is ever sent to a terminated node.
//
// # Fault injection
//
// Config.Faults arms an adversarial network layer: control messages
// (freezeReq/freezeAck/freezeBusy/release) can be dropped, every message
// can be held in a per-node delay buffer, and nodes can fail-stop and
// recover on a schedule. Transfers are always delivered (and applied even
// at crashed nodes — load lives in stable storage), so total packet count
// is conserved exactly under any fault pattern. The protocol stays live
// through two timeouts: an initiator that misses replies aborts with
// randomized backoff and releases the partners it heard from, and a
// frozen partner whose release was lost (or whose initiator crashed)
// unfreezes itself. Every protocol carries a sequence number so replies
// and releases from an abandoned protocol are recognized as stale instead
// of corrupting a newer one. With the zero Faults value none of this
// machinery runs and behavior is identical to the fault-free protocol.
//
// The packet counters model fungible load units; the full per-class
// virtual-load machinery (borrowing etc.) lives in internal/core — this
// package demonstrates the balancing geometry and trigger discipline
// under true message passing and measures its communication cost.
package netsim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"lmbalance/internal/obs"
	"lmbalance/internal/rng"
	"lmbalance/internal/topology"
	"lmbalance/internal/trace"
)

type msgKind uint8

const (
	freezeReq msgKind = iota
	freezeAck
	freezeBusy
	transfer
	releaseMsg
)

// message is the only thing nodes exchange.
type message struct {
	kind   msgKind
	from   int
	load   int    // freezeAck: sender's current load
	amount int    // transfer: delta to apply (may be negative)
	seq    uint64 // initiator's protocol epoch; replies and releases echo it
}

// Config parameterizes a run.
type Config struct {
	// N is the number of processor goroutines (>= 2).
	N int
	// Delta and F are the algorithm parameters (1 <= Delta < N, F > 1).
	Delta int
	F     float64
	// Steps is the number of workload steps each node performs.
	Steps int
	// GenP[i] and ConP[i] are node i's per-step generate/consume
	// probabilities (both may fire in one step, as in the paper's §7
	// model). Length N, or length 1 to apply to all nodes.
	GenP, ConP []float64
	// Seed drives all randomness.
	Seed uint64
	// Graph, if non-nil, restricts balancing partners to each node's
	// graph neighborhood (the paper's locality extension); it must have N
	// vertices and every node needs at least one neighbor. Nil selects
	// partners uniformly from all nodes (the paper's model).
	Graph *topology.Graph
	// Faults configures the fault-injection layer (see Faults). The zero
	// value disables it.
	Faults Faults
	// Obs, if non-nil, receives the run's aggregate totals (netsim_*
	// counters) and the final load distribution when Run returns. The
	// totals are published once at the end — per-event instrumentation
	// would put shared atomics in the simulator's hot loop.
	Obs *obs.Registry
}

func (c *Config) validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("netsim: N = %d, need >= 2", c.N)
	case c.Delta < 1 || c.Delta >= c.N:
		return fmt.Errorf("netsim: Delta = %d, need 1 <= Delta < N", c.Delta)
	case c.F <= 1:
		return fmt.Errorf("netsim: F = %v, need > 1", c.F)
	case c.Steps < 1:
		return fmt.Errorf("netsim: Steps = %d, need >= 1", c.Steps)
	}
	for _, ps := range [][]float64{c.GenP, c.ConP} {
		if len(ps) != 1 && len(ps) != c.N {
			return fmt.Errorf("netsim: probability slice length %d, need 1 or %d", len(ps), c.N)
		}
		for _, p := range ps {
			if p < 0 || p > 1 {
				return fmt.Errorf("netsim: probability %v outside [0,1]", p)
			}
		}
	}
	if err := c.Faults.validate(c.N); err != nil {
		return err
	}
	if c.Graph != nil {
		if c.Graph.N() != c.N {
			return fmt.Errorf("netsim: graph has %d vertices, config says %d", c.Graph.N(), c.N)
		}
		for v := 0; v < c.N; v++ {
			if c.Graph.Degree(v) == 0 {
				return fmt.Errorf("netsim: node %d has no neighbors to balance with", v)
			}
		}
	}
	return nil
}

func probAt(ps []float64, i int) float64 {
	if len(ps) == 1 {
		return ps[0]
	}
	return ps[i]
}

// NodeStats is one node's activity summary.
type NodeStats struct {
	FinalLoad    int
	Generated    int64
	Consumed     int64
	Initiated    int64 // balancing protocols started
	Completed    int64 // balancing protocols that transferred load
	Aborted      int64 // protocols aborted due to a busy partner
	MessagesSent int64

	// Fault counters (all zero when faults are disabled).
	Dropped       int64 // control messages lost in transit to this node
	LostAtCrash   int64 // control messages lost because this node was down
	Delayed       int64 // messages that sat in this node's delay buffer
	Timeouts      int64 // initiator protocols aborted by reply timeout
	FreezeExpired int64 // freezes this node released by its own timeout
	Crashes       int64 // fail-stop windows this node entered
}

// Result is the outcome of a Run.
type Result struct {
	Nodes []NodeStats
}

// TotalLoad returns the sum of final loads.
func (r *Result) TotalLoad() int {
	sum := 0
	for _, n := range r.Nodes {
		sum += n.FinalLoad
	}
	return sum
}

// Spread returns max−min of final loads.
func (r *Result) Spread() int {
	lo, hi := r.Nodes[0].FinalLoad, r.Nodes[0].FinalLoad
	for _, n := range r.Nodes[1:] {
		if n.FinalLoad < lo {
			lo = n.FinalLoad
		}
		if n.FinalLoad > hi {
			hi = n.FinalLoad
		}
	}
	return hi - lo
}

// Messages returns the total number of messages exchanged.
func (r *Result) Messages() int64 {
	var sum int64
	for _, n := range r.Nodes {
		sum += n.MessagesSent
	}
	return sum
}

// Conserved reports whether the final total load equals generated minus
// consumed packets — exact packet conservation, which must hold under any
// fault pattern because transfers are reliable.
func (r *Result) Conserved() bool {
	var gen, con int64
	for _, n := range r.Nodes {
		gen += n.Generated
		con += n.Consumed
	}
	return int64(r.TotalLoad()) == gen-con
}

// node is the per-goroutine state; only its own goroutine touches it.
type node struct {
	id    int
	cfg   *Config
	rng   *rng.RNG
	inbox chan message
	peers []chan message
	idle  *sync.WaitGroup // signaled once when first quiet after stepping
	quit  chan struct{}

	load int
	lOld int

	// initiator-side protocol state
	inflight   bool
	seq        uint64 // protocol epoch; bumped per initiate and per abandon
	awaiting   int    // replies still expected
	sawBusy    bool
	ackedFrom  []int // partners that froze for us
	ackedLoads []int

	// partner-side state
	frozen    bool
	frozenBy  int
	frozenSeq uint64 // epoch of the freeze we acked

	stepsDone int
	signaled  bool
	backoff   int // steps to skip initiating after an aborted protocol
	stats     NodeStats
	candBuf   []int

	// fault-layer state (unused when faults are disabled)
	faultsOn   bool
	frng       *rng.RNG         // fault randomness; nil when disabled
	tickC      <-chan time.Time // nil when disabled: select case never fires
	now        int64            // local tick counter
	protoAt    int64            // tick the in-flight protocol started
	frozeAt    int64            // tick this node froze
	delayQ     []delayed        // messages awaiting delayed delivery
	crashed    bool
	crashUntil int64 // tick at which a crashed node recovers
	crashIdx   int   // next entry of crashPlan to fire
	crashPlan  []Crash
	rec        *lockedRecorder
}

// Run executes the distributed simulation and returns per-node statistics.
// It blocks until every node finished its steps and the network is quiet.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(cfg.GenP) == 0 {
		cfg.GenP = []float64{0.5}
	}
	if len(cfg.ConP) == 0 {
		cfg.ConP = []float64{0.4}
	}
	master := rng.New(cfg.Seed)
	inboxes := make([]chan message, cfg.N)
	for i := range inboxes {
		// Generous buffering: a node can be the target of at most N-1
		// concurrent freeze requests plus protocol traffic.
		inboxes[i] = make(chan message, 4*cfg.N)
	}
	faultsOn := cfg.Faults.enabled()
	var fmaster *rng.RNG
	var rec *lockedRecorder
	crashPlans := make([][]Crash, cfg.N)
	if faultsOn {
		// Fault randomness derives from its own seed so the workload and
		// partner-selection streams stay byte-identical to a fault-free
		// run of the same Config.Seed.
		fmaster = rng.New(cfg.Faults.Seed ^ 0xfa17fa17fa17fa17)
		if cfg.Faults.Trace != nil {
			rec = &lockedRecorder{rec: cfg.Faults.Trace}
		}
		for _, c := range cfg.Faults.Crashes {
			crashPlans[c.Node] = append(crashPlans[c.Node], c)
		}
		for _, plan := range crashPlans {
			sort.Slice(plan, func(i, j int) bool { return plan[i].AtStep < plan[j].AtStep })
		}
	}
	var idle sync.WaitGroup
	var done sync.WaitGroup
	quit := make(chan struct{})
	nodes := make([]*node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nodes[i] = &node{
			id:    i,
			cfg:   &cfg,
			rng:   master.Split(),
			inbox: inboxes[i],
			peers: inboxes,
			idle:  &idle,
			quit:  quit,
		}
		if faultsOn {
			nodes[i].faultsOn = true
			nodes[i].frng = fmaster.Split()
			nodes[i].crashPlan = crashPlans[i]
			nodes[i].rec = rec
		}
		idle.Add(1)
		done.Add(1)
	}
	for _, n := range nodes {
		go func(n *node) {
			defer done.Done()
			n.run()
		}(n)
	}
	idle.Wait() // every node finished stepping and is quiet
	close(quit) // release the serving loops
	done.Wait()

	res := &Result{Nodes: make([]NodeStats, cfg.N)}
	for i, n := range nodes {
		n.stats.FinalLoad = n.load
		res.Nodes[i] = n.stats
	}
	publishObs(cfg.Obs, res)
	return res, nil
}

// publishObs aggregates a finished run's per-node totals into an obs
// registry: activity and fault counters under netsim_* names, plus the
// final load distribution (whose online moments give the variation
// density). Counters add, so repeated runs against one registry
// accumulate like repeated scrape intervals.
func publishObs(reg *obs.Registry, res *Result) {
	if reg == nil {
		return
	}
	loads := reg.Histogram("netsim_final_load", obs.LoadBuckets)
	var s NodeStats
	for _, n := range res.Nodes {
		loads.Observe(float64(n.FinalLoad))
		s.Generated += n.Generated
		s.Consumed += n.Consumed
		s.Initiated += n.Initiated
		s.Completed += n.Completed
		s.Aborted += n.Aborted
		s.MessagesSent += n.MessagesSent
		s.Dropped += n.Dropped
		s.LostAtCrash += n.LostAtCrash
		s.Delayed += n.Delayed
		s.Timeouts += n.Timeouts
		s.FreezeExpired += n.FreezeExpired
		s.Crashes += n.Crashes
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"netsim_generated_total", s.Generated},
		{"netsim_consumed_total", s.Consumed},
		{"netsim_protocols_initiated_total", s.Initiated},
		{"netsim_protocols_completed_total", s.Completed},
		{"netsim_aborts_total", s.Aborted},
		{"netsim_msgs_total", s.MessagesSent},
		{"netsim_dropped_total", s.Dropped},
		{"netsim_lost_at_crash_total", s.LostAtCrash},
		{"netsim_delayed_total", s.Delayed},
		{"netsim_timeouts_total", s.Timeouts},
		{"netsim_freeze_expired_total", s.FreezeExpired},
		{"netsim_crashes_total", s.Crashes},
	} {
		reg.Counter(c.name).Add(c.v)
	}
}

// send delivers m to peer id (counted).
func (n *node) send(to int, m message) {
	m.from = n.id
	n.stats.MessagesSent++
	n.peers[to] <- m
}

// run is the node's event loop.
func (n *node) run() {
	defer n.finalDrain()
	if n.faultsOn {
		ticker := time.NewTicker(n.cfg.Faults.tick())
		defer ticker.Stop()
		n.tickC = ticker.C
	}
	for {
		if n.faultsOn {
			n.tick()
		}
		// Serve everything already queued.
		for {
			select {
			case m := <-n.inbox:
				n.deliver(m)
				continue
			default:
			}
			break
		}
		switch {
		case n.crashed:
			// Fail-stopped: no workload progress, no protocol. The
			// goroutine keeps draining its inbox so senders never block
			// on a dead node; deliver routes everything through the
			// crashed-node rules (control lost, transfers banked).
			select {
			case m := <-n.inbox:
				n.deliver(m)
			case <-n.tickC: // advance recovery while silent
			case <-n.quit:
				return
			}
		case n.inflight || n.frozen:
			// Mid-protocol: block on the inbox (no workload progress),
			// still draining so nobody deadlocks on a send to us. The
			// tick case (armed only under faults) keeps timeouts and
			// delayed deliveries advancing while the network is silent.
			select {
			case m := <-n.inbox:
				n.deliver(m)
			case <-n.tickC:
			case <-n.quit:
				return
			}
		case n.stepsDone < n.cfg.Steps:
			n.step()
			// Yield so nodes interleave even on a single CPU; without
			// this a node could burn through all its steps inside one
			// scheduler timeslice and starve the protocol of partners.
			runtime.Gosched()
		default:
			// Drain mode: report idle once, then keep serving as a
			// balancing partner until quit.
			if !n.signaled {
				n.signaled = true
				n.idle.Done()
			}
			select {
			case m := <-n.inbox:
				n.deliver(m)
			case <-n.tickC:
			case <-n.quit:
				return
			}
		}
	}
}

// deliver passes one message pulled off the inbox through the fault
// layer: it may be dropped (control messages only), delayed, or handed to
// the protocol. Without faults it is a direct call to handle.
func (n *node) deliver(m message) {
	if n.faultsOn {
		if m.kind != transfer && n.frng.Bernoulli(n.cfg.Faults.DropP) {
			n.stats.Dropped++
			n.rec.record(trace.Event{Step: n.stepsDone, Proc: n.id, Kind: trace.EvDrop, Arg: m.from})
			return
		}
		if dm := n.cfg.Faults.DelayMax; dm > 0 {
			if d := n.frng.Intn(dm + 1); d > 0 {
				n.stats.Delayed++
				n.delayQ = append(n.delayQ, delayed{due: n.now + int64(d), m: m})
				return
			}
		}
	}
	n.dispatch(m)
}

// dispatch routes a due message to the live or crashed handler.
func (n *node) dispatch(m message) {
	if n.crashed {
		n.crashedHandle(m)
		return
	}
	n.handle(m)
}

// crashedHandle is the dead node's network interface: control messages
// are lost (a crashed node answers nothing), but transfers are applied to
// the persistent load counter so packet conservation survives the crash.
func (n *node) crashedHandle(m message) {
	if m.kind == transfer {
		n.load += m.amount
		return
	}
	n.stats.LostAtCrash++
	n.rec.record(trace.Event{Step: n.stepsDone, Proc: n.id, Kind: trace.EvDrop, Arg: m.from})
}

// tick advances the node's local fault clock: delayed deliveries come
// due, crash windows open and close, and the two protocol timeouts fire.
// Called once per event-loop iteration (and, via the wall-clock ticker,
// while the node is blocked waiting for messages).
func (n *node) tick() {
	n.now++
	// Deliver due delayed messages (the buffer is small; linear scan).
	for i := 0; i < len(n.delayQ); {
		if n.delayQ[i].due <= n.now {
			m := n.delayQ[i].m
			n.delayQ[i] = n.delayQ[len(n.delayQ)-1]
			n.delayQ = n.delayQ[:len(n.delayQ)-1]
			n.dispatch(m)
			continue
		}
		i++
	}
	if n.crashed {
		if n.now >= n.crashUntil {
			n.recoverNode()
		}
		return
	}
	if n.crashIdx < len(n.crashPlan) && n.stepsDone >= n.crashPlan[n.crashIdx].AtStep {
		n.crash(n.crashPlan[n.crashIdx])
		n.crashIdx++
		return
	}
	if n.inflight && n.now-n.protoAt > n.cfg.Faults.timeoutTicks() {
		// Reply timeout: a request or reply was dropped, or a partner
		// crashed. Abandon the protocol, release everyone who froze for
		// us, and re-arm with randomized backoff.
		n.stats.Timeouts++
		n.rec.record(trace.Event{Step: n.stepsDone, Proc: n.id, Kind: trace.EvTimeout, Arg: n.awaiting})
		n.abandon()
	}
	if n.frozen && n.now-n.frozeAt > n.cfg.Faults.freezeTicks() {
		// Our release (or our initiator) is gone. Unfreeze unilaterally
		// rather than leak the freeze; a late transfer still applies.
		n.stats.FreezeExpired++
		n.rec.record(trace.Event{Step: n.stepsDone, Proc: n.id, Kind: trace.EvTimeout, Arg: n.frozenBy})
		n.frozen = false
	}
}

// crash opens a fail-stop window: all protocol state vanishes with the
// node. An initiator's frozen partners are NOT released — they must
// rescue themselves via the freeze-expiry timeout.
func (n *node) crash(c Crash) {
	n.crashed = true
	down := int64(c.DownTicks)
	if down == 0 {
		down = defaultDownTicks
	}
	n.crashUntil = n.now + down
	n.stats.Crashes++
	n.rec.record(trace.Event{Step: n.stepsDone, Proc: n.id, Kind: trace.EvCrash, Arg: int(down)})
	n.inflight = false
	n.seq++ // replies to the abandoned protocol become stale
	n.awaiting = 0
	n.sawBusy = false
	n.frozen = false
	n.backoff = 0
}

// recoverNode closes the fail-stop window; the load counter survived in
// stable storage and the trigger base re-arms on the recovered value.
func (n *node) recoverNode() {
	n.crashed = false
	n.lOld = n.load
}

// finalDrain applies any messages still buffered at shutdown. The only
// messages that can be in flight once every node reported idle are
// transfers and releases from a just-resolved protocol (plus, under
// faults, stragglers from abandoned protocols and delayed deliveries
// still sitting in the delay buffer); applying the transfers keeps packet
// conservation exact. (A freezeReq cannot be pending in the fault-free
// protocol — a pending request implies an initiator that has not reported
// idle.)
func (n *node) finalDrain() {
	for {
		select {
		case m := <-n.inbox:
			switch m.kind {
			case transfer:
				n.load += m.amount
				n.frozen = false
			case releaseMsg:
				n.frozen = false
			}
		default:
			for _, d := range n.delayQ {
				if d.m.kind == transfer {
					n.load += d.m.amount
				}
			}
			n.delayQ = nil
			return
		}
	}
}

// step performs one workload step and fires the trigger if needed.
func (n *node) step() {
	n.stepsDone++
	if n.rng.Bernoulli(probAt(n.cfg.GenP, n.id)) {
		n.load++
		n.stats.Generated++
	}
	if n.rng.Bernoulli(probAt(n.cfg.ConP, n.id)) && n.load > 0 {
		n.load--
		n.stats.Consumed++
	}
	if n.backoff > 0 {
		n.backoff--
		return
	}
	if n.trigger() {
		n.initiate()
	}
}

// trigger is the factor-f condition with the strict-change guard.
func (n *node) trigger() bool {
	if n.load > n.lOld && float64(n.load) >= n.cfg.F*float64(n.lOld) {
		return true
	}
	return n.load < n.lOld && float64(n.load)*n.cfg.F <= float64(n.lOld)
}

// initiate starts a balancing protocol with δ random partners (drawn
// from the whole network, or from the node's graph neighborhood when a
// topology is configured).
func (n *node) initiate() {
	if g := n.cfg.Graph; g != nil {
		ns := g.Neighbors(n.id)
		if n.cfg.Delta >= len(ns) {
			n.candBuf = append(n.candBuf[:0], ns...)
		} else {
			idx := n.rng.SampleDistinct(len(ns), n.cfg.Delta, -1, nil)
			n.candBuf = n.candBuf[:0]
			for _, i := range idx {
				n.candBuf = append(n.candBuf, ns[i])
			}
		}
	} else {
		n.candBuf = n.rng.SampleDistinct(n.cfg.N, n.cfg.Delta, n.id, n.candBuf)
	}
	n.inflight = true
	n.seq++
	n.protoAt = n.now
	n.awaiting = len(n.candBuf)
	n.sawBusy = false
	n.ackedFrom = n.ackedFrom[:0]
	n.ackedLoads = n.ackedLoads[:0]
	n.stats.Initiated++
	for _, c := range n.candBuf {
		n.send(c, message{kind: freezeReq, seq: n.seq})
	}
}

// abandon gives up on the in-flight protocol after a reply timeout:
// partners that froze for us are released, outstanding replies become
// stale (the epoch bumps), and the trigger re-arms with the same
// randomized backoff as a busy abort.
func (n *node) abandon() {
	n.inflight = false
	for _, p := range n.ackedFrom {
		n.send(p, message{kind: releaseMsg, seq: n.seq})
	}
	n.seq++
	n.awaiting = 0
	n.sawBusy = false
	n.stats.Aborted++
	n.backoff = 1 + n.rng.Intn(8)
}

// handle processes one incoming message.
func (n *node) handle(m message) {
	switch m.kind {
	case freezeReq:
		// Refuse while engaged in any role. Nodes that finished their
		// steps still participate as partners — only initiators drive the
		// shutdown, so the network quiesces once all steppers are done.
		if n.inflight || n.frozen {
			n.send(m.from, message{kind: freezeBusy, seq: m.seq})
			return
		}
		n.frozen = true
		n.frozenBy = m.from
		n.frozenSeq = m.seq
		n.frozeAt = n.now
		n.send(m.from, message{kind: freezeAck, load: n.load, seq: m.seq})

	case freezeAck:
		if !n.inflight || m.seq != n.seq {
			// Stale ack from a protocol we already resolved, abandoned on
			// timeout, or lost to a crash: release the partner
			// immediately so it does not sit frozen until its own
			// timeout. (Cannot happen in the fault-free protocol, which
			// resolves only when all replies are in.)
			n.send(m.from, message{kind: releaseMsg, seq: m.seq})
			return
		}
		n.awaiting--
		n.ackedFrom = append(n.ackedFrom, m.from)
		n.ackedLoads = append(n.ackedLoads, m.load)
		if n.awaiting == 0 {
			n.resolve()
		}

	case freezeBusy:
		if !n.inflight || m.seq != n.seq {
			return
		}
		n.awaiting--
		n.sawBusy = true
		if n.awaiting == 0 {
			n.resolve()
		}

	case transfer:
		// The load delta always applies — transfers are reliable and
		// conservation depends on it — but the freeze clears only if this
		// transfer ends the freeze we are actually in; under faults a
		// late transfer from an expired freeze must not terminate a newer
		// protocol's freeze.
		n.load += m.amount
		if !n.frozen || (n.frozenBy == m.from && n.frozenSeq == m.seq) {
			n.lOld = n.load
			n.frozen = false
		}

	case releaseMsg:
		if n.frozen && n.frozenBy == m.from && n.frozenSeq == m.seq {
			n.frozen = false
		}
	}
}

// resolve finishes the initiator's protocol once all replies are in.
func (n *node) resolve() {
	n.inflight = false
	if n.sawBusy {
		for _, p := range n.ackedFrom {
			n.send(p, message{kind: releaseMsg, seq: n.seq})
		}
		n.stats.Aborted++
		// Randomized backoff: retrying on the very next step while every
		// neighbor is also retrying leads to an abort storm.
		n.backoff = 1 + n.rng.Intn(8)
		return
	}
	total := n.load
	for _, l := range n.ackedLoads {
		total += l
	}
	m := len(n.ackedFrom) + 1
	base, rem := total/m, total%m
	// Rotate the start of the remainder run uniformly (the core package's
	// snake discipline, randomized): handing the extras to a fixed
	// participant index would let the initiator — index 0 — capture one
	// surplus packet on every operation with a remainder.
	off := 0
	if rem > 0 {
		off = n.rng.Intn(m)
	}
	share := func(idx int) int {
		if rel := idx - off; (rel%m+m)%m < rem {
			return base + 1
		}
		return base
	}
	n.load = share(0)
	n.lOld = n.load
	for i, p := range n.ackedFrom {
		// Partners froze under the current epoch (acks echo the
		// request's seq), so transfers carry it too.
		n.send(p, message{kind: transfer, amount: share(i+1) - n.ackedLoads[i], seq: n.seq})
	}
	n.stats.Completed++
}
