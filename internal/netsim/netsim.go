// Package netsim is the share-nothing, message-passing realization of the
// Lüling–Monien algorithm: every processor is a goroutine owning its load
// counter, and balancing operations are a small request/reply protocol
// over channels — no shared memory, mirroring the distributed-memory
// transputer systems the paper targets (its [13]).
//
// # Protocol
//
// A processor whose load has changed by the factor f since its last
// balancing operation initiates:
//
//  1. it sends freezeReq to δ random partners and stops doing workload
//     steps (it keeps serving its inbox);
//  2. a partner that is not engaged freezes (stops workload steps) and
//     replies freezeAck carrying its load; an engaged partner replies
//     freezeBusy;
//  3. when all δ replies are in: if any was busy the initiator releases
//     the frozen partners and aborts (the trigger stays armed, so it
//     retries on the next load change); otherwise it computes the ±1
//     equal shares and sends each partner a transfer with the difference,
//     unfreezing it.
//
// Deadlock freedom: nobody ever blocks on a send while refusing to drain
// its inbox — every node's event loop keeps receiving while frozen or
// mid-protocol, and freeze conflicts are resolved by abort-and-retry
// rather than waiting. Shutdown is two-phase: nodes first finish their
// workload steps and drain to a quiet state (serving, refusing new
// freezes), and the coordinator closes quit only after every node has
// reported idle, so no message is ever sent to a terminated node.
//
// The packet counters model fungible load units; the full per-class
// virtual-load machinery (borrowing etc.) lives in internal/core — this
// package demonstrates the balancing geometry and trigger discipline
// under true message passing and measures its communication cost.
package netsim

import (
	"fmt"
	"runtime"
	"sync"

	"lmbalance/internal/rng"
	"lmbalance/internal/topology"
)

type msgKind uint8

const (
	freezeReq msgKind = iota
	freezeAck
	freezeBusy
	transfer
	releaseMsg
)

// message is the only thing nodes exchange.
type message struct {
	kind   msgKind
	from   int
	load   int // freezeAck: sender's current load
	amount int // transfer: delta to apply (may be negative)
}

// Config parameterizes a run.
type Config struct {
	// N is the number of processor goroutines (>= 2).
	N int
	// Delta and F are the algorithm parameters (1 <= Delta < N, F > 1).
	Delta int
	F     float64
	// Steps is the number of workload steps each node performs.
	Steps int
	// GenP[i] and ConP[i] are node i's per-step generate/consume
	// probabilities (both may fire in one step, as in the paper's §7
	// model). Length N, or length 1 to apply to all nodes.
	GenP, ConP []float64
	// Seed drives all randomness.
	Seed uint64
	// Graph, if non-nil, restricts balancing partners to each node's
	// graph neighborhood (the paper's locality extension); it must have N
	// vertices and every node needs at least one neighbor. Nil selects
	// partners uniformly from all nodes (the paper's model).
	Graph *topology.Graph
}

func (c *Config) validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("netsim: N = %d, need >= 2", c.N)
	case c.Delta < 1 || c.Delta >= c.N:
		return fmt.Errorf("netsim: Delta = %d, need 1 <= Delta < N", c.Delta)
	case c.F <= 1:
		return fmt.Errorf("netsim: F = %v, need > 1", c.F)
	case c.Steps < 1:
		return fmt.Errorf("netsim: Steps = %d, need >= 1", c.Steps)
	}
	for _, ps := range [][]float64{c.GenP, c.ConP} {
		if len(ps) != 1 && len(ps) != c.N {
			return fmt.Errorf("netsim: probability slice length %d, need 1 or %d", len(ps), c.N)
		}
		for _, p := range ps {
			if p < 0 || p > 1 {
				return fmt.Errorf("netsim: probability %v outside [0,1]", p)
			}
		}
	}
	if c.Graph != nil {
		if c.Graph.N() != c.N {
			return fmt.Errorf("netsim: graph has %d vertices, config says %d", c.Graph.N(), c.N)
		}
		for v := 0; v < c.N; v++ {
			if c.Graph.Degree(v) == 0 {
				return fmt.Errorf("netsim: node %d has no neighbors to balance with", v)
			}
		}
	}
	return nil
}

func probAt(ps []float64, i int) float64 {
	if len(ps) == 1 {
		return ps[0]
	}
	return ps[i]
}

// NodeStats is one node's activity summary.
type NodeStats struct {
	FinalLoad    int
	Generated    int64
	Consumed     int64
	Initiated    int64 // balancing protocols started
	Completed    int64 // balancing protocols that transferred load
	Aborted      int64 // protocols aborted due to a busy partner
	MessagesSent int64
}

// Result is the outcome of a Run.
type Result struct {
	Nodes []NodeStats
}

// TotalLoad returns the sum of final loads.
func (r *Result) TotalLoad() int {
	sum := 0
	for _, n := range r.Nodes {
		sum += n.FinalLoad
	}
	return sum
}

// Spread returns max−min of final loads.
func (r *Result) Spread() int {
	lo, hi := r.Nodes[0].FinalLoad, r.Nodes[0].FinalLoad
	for _, n := range r.Nodes[1:] {
		if n.FinalLoad < lo {
			lo = n.FinalLoad
		}
		if n.FinalLoad > hi {
			hi = n.FinalLoad
		}
	}
	return hi - lo
}

// Messages returns the total number of messages exchanged.
func (r *Result) Messages() int64 {
	var sum int64
	for _, n := range r.Nodes {
		sum += n.MessagesSent
	}
	return sum
}

// node is the per-goroutine state; only its own goroutine touches it.
type node struct {
	id    int
	cfg   *Config
	rng   *rng.RNG
	inbox chan message
	peers []chan message
	idle  *sync.WaitGroup // signaled once when first quiet after stepping
	quit  chan struct{}

	load int
	lOld int

	// initiator-side protocol state
	inflight   bool
	awaiting   int // replies still expected
	sawBusy    bool
	ackedFrom  []int // partners that froze for us
	ackedLoads []int

	// partner-side state
	frozen   bool
	frozenBy int

	stepsDone int
	signaled  bool
	backoff   int // steps to skip initiating after an aborted protocol
	stats     NodeStats
	candBuf   []int
}

// Run executes the distributed simulation and returns per-node statistics.
// It blocks until every node finished its steps and the network is quiet.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(cfg.GenP) == 0 {
		cfg.GenP = []float64{0.5}
	}
	if len(cfg.ConP) == 0 {
		cfg.ConP = []float64{0.4}
	}
	master := rng.New(cfg.Seed)
	inboxes := make([]chan message, cfg.N)
	for i := range inboxes {
		// Generous buffering: a node can be the target of at most N-1
		// concurrent freeze requests plus protocol traffic.
		inboxes[i] = make(chan message, 4*cfg.N)
	}
	var idle sync.WaitGroup
	var done sync.WaitGroup
	quit := make(chan struct{})
	nodes := make([]*node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nodes[i] = &node{
			id:    i,
			cfg:   &cfg,
			rng:   master.Split(),
			inbox: inboxes[i],
			peers: inboxes,
			idle:  &idle,
			quit:  quit,
		}
		idle.Add(1)
		done.Add(1)
	}
	for _, n := range nodes {
		go func(n *node) {
			defer done.Done()
			n.run()
		}(n)
	}
	idle.Wait() // every node finished stepping and is quiet
	close(quit) // release the serving loops
	done.Wait()

	res := &Result{Nodes: make([]NodeStats, cfg.N)}
	for i, n := range nodes {
		n.stats.FinalLoad = n.load
		res.Nodes[i] = n.stats
	}
	return res, nil
}

// send delivers m to peer id (counted).
func (n *node) send(to int, m message) {
	m.from = n.id
	n.stats.MessagesSent++
	n.peers[to] <- m
}

// run is the node's event loop.
func (n *node) run() {
	defer n.finalDrain()
	for {
		// Serve everything already queued.
		for {
			select {
			case m := <-n.inbox:
				n.handle(m)
				continue
			default:
			}
			break
		}
		switch {
		case n.inflight || n.frozen:
			// Mid-protocol: block on the inbox (no workload progress),
			// still draining so nobody deadlocks on a send to us.
			select {
			case m := <-n.inbox:
				n.handle(m)
			case <-n.quit:
				return
			}
		case n.stepsDone < n.cfg.Steps:
			n.step()
			// Yield so nodes interleave even on a single CPU; without
			// this a node could burn through all its steps inside one
			// scheduler timeslice and starve the protocol of partners.
			runtime.Gosched()
		default:
			// Drain mode: report idle once, then keep serving as a
			// balancing partner until quit.
			if !n.signaled {
				n.signaled = true
				n.idle.Done()
			}
			select {
			case m := <-n.inbox:
				n.handle(m)
			case <-n.quit:
				return
			}
		}
	}
}

// finalDrain applies any messages still buffered at shutdown. The only
// messages that can be in flight once every node reported idle are
// transfers and releases from a just-resolved protocol; applying them
// keeps packet conservation exact. (A freezeReq cannot be pending — a
// pending request implies an initiator that has not reported idle.)
func (n *node) finalDrain() {
	for {
		select {
		case m := <-n.inbox:
			switch m.kind {
			case transfer:
				n.load += m.amount
				n.frozen = false
			case releaseMsg:
				n.frozen = false
			}
		default:
			return
		}
	}
}

// step performs one workload step and fires the trigger if needed.
func (n *node) step() {
	n.stepsDone++
	if n.rng.Bernoulli(probAt(n.cfg.GenP, n.id)) {
		n.load++
		n.stats.Generated++
	}
	if n.rng.Bernoulli(probAt(n.cfg.ConP, n.id)) && n.load > 0 {
		n.load--
		n.stats.Consumed++
	}
	if n.backoff > 0 {
		n.backoff--
		return
	}
	if n.trigger() {
		n.initiate()
	}
}

// trigger is the factor-f condition with the strict-change guard.
func (n *node) trigger() bool {
	if n.load > n.lOld && float64(n.load) >= n.cfg.F*float64(n.lOld) {
		return true
	}
	return n.load < n.lOld && float64(n.load)*n.cfg.F <= float64(n.lOld)
}

// initiate starts a balancing protocol with δ random partners (drawn
// from the whole network, or from the node's graph neighborhood when a
// topology is configured).
func (n *node) initiate() {
	if g := n.cfg.Graph; g != nil {
		ns := g.Neighbors(n.id)
		if n.cfg.Delta >= len(ns) {
			n.candBuf = append(n.candBuf[:0], ns...)
		} else {
			idx := n.rng.SampleDistinct(len(ns), n.cfg.Delta, -1, nil)
			n.candBuf = n.candBuf[:0]
			for _, i := range idx {
				n.candBuf = append(n.candBuf, ns[i])
			}
		}
	} else {
		n.candBuf = n.rng.SampleDistinct(n.cfg.N, n.cfg.Delta, n.id, n.candBuf)
	}
	n.inflight = true
	n.awaiting = len(n.candBuf)
	n.sawBusy = false
	n.ackedFrom = n.ackedFrom[:0]
	n.ackedLoads = n.ackedLoads[:0]
	n.stats.Initiated++
	for _, c := range n.candBuf {
		n.send(c, message{kind: freezeReq})
	}
}

// handle processes one incoming message.
func (n *node) handle(m message) {
	switch m.kind {
	case freezeReq:
		// Refuse while engaged in any role. Nodes that finished their
		// steps still participate as partners — only initiators drive the
		// shutdown, so the network quiesces once all steppers are done.
		if n.inflight || n.frozen {
			n.send(m.from, message{kind: freezeBusy})
			return
		}
		n.frozen = true
		n.frozenBy = m.from
		n.send(m.from, message{kind: freezeAck, load: n.load})

	case freezeAck:
		if !n.inflight {
			// Stale ack after an abort we already resolved: release the
			// partner immediately. (Cannot happen with the current
			// resolve-only-when-all-replies-in rule, but keep the node
			// robust.)
			n.send(m.from, message{kind: releaseMsg})
			return
		}
		n.awaiting--
		n.ackedFrom = append(n.ackedFrom, m.from)
		n.ackedLoads = append(n.ackedLoads, m.load)
		if n.awaiting == 0 {
			n.resolve()
		}

	case freezeBusy:
		if !n.inflight {
			return
		}
		n.awaiting--
		n.sawBusy = true
		if n.awaiting == 0 {
			n.resolve()
		}

	case transfer:
		n.load += m.amount
		n.lOld = n.load
		n.frozen = false

	case releaseMsg:
		n.frozen = false
	}
}

// resolve finishes the initiator's protocol once all replies are in.
func (n *node) resolve() {
	n.inflight = false
	if n.sawBusy {
		for _, p := range n.ackedFrom {
			n.send(p, message{kind: releaseMsg})
		}
		n.stats.Aborted++
		// Randomized backoff: retrying on the very next step while every
		// neighbor is also retrying leads to an abort storm.
		n.backoff = 1 + n.rng.Intn(8)
		return
	}
	total := n.load
	for _, l := range n.ackedLoads {
		total += l
	}
	m := len(n.ackedFrom) + 1
	base, rem := total/m, total%m
	// The initiator takes the first share; extras go to the first rem
	// participants (the partner order is already random).
	share := func(idx int) int {
		if idx < rem {
			return base + 1
		}
		return base
	}
	n.load = share(0)
	n.lOld = n.load
	for i, p := range n.ackedFrom {
		n.send(p, message{kind: transfer, amount: share(i+1) - n.ackedLoads[i]})
	}
	n.stats.Completed++
}
