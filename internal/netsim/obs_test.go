package netsim

import (
	"testing"

	"lmbalance/internal/obs"
)

// TestRunPublishesObs checks that a run with a registry attached
// publishes totals that agree with the Result it returns.
func TestRunPublishesObs(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{N: 8, Delta: 2, F: 1.5, Steps: 400, Seed: 11, Obs: reg,
		GenP: []float64{0.5}, ConP: []float64{0.4}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var gen, ini int64
	for _, n := range res.Nodes {
		gen += n.Generated
		ini += n.Initiated
	}
	if got := reg.Counter("netsim_generated_total").Value(); got != gen {
		t.Fatalf("netsim_generated_total = %d, want %d", got, gen)
	}
	if got := reg.Counter("netsim_protocols_initiated_total").Value(); got != ini {
		t.Fatalf("netsim_protocols_initiated_total = %d, want %d", got, ini)
	}
	if got := reg.Counter("netsim_msgs_total").Value(); got != res.Messages() {
		t.Fatalf("netsim_msgs_total = %d, want %d", got, res.Messages())
	}
	lh := reg.Histogram("netsim_final_load", obs.LoadBuckets)
	if got := lh.Count(); got != int64(cfg.N) {
		t.Fatalf("final load histogram has %d samples, want %d", got, cfg.N)
	}
	if int64(lh.Sum()) != int64(res.TotalLoad()) {
		t.Fatalf("final load histogram sum %v, want %d", lh.Sum(), res.TotalLoad())
	}
}
