package netsim

import (
	"fmt"
	"sync"
	"time"

	"lmbalance/internal/trace"
)

// Faults configures the fault-injection layer of the network. The zero
// value disables it entirely: with no drops, no delays and no crashes the
// simulation takes exactly the code paths of the fault-free protocol and
// every node's RNG stream is untouched.
//
// Fault randomness draws from its own seeded stream (Seed), independent
// of Config.Seed, so enabling faults never perturbs the workload or the
// partner-selection streams.
//
// # Time base
//
// Nodes are asynchronous goroutines, so fault timing is expressed in a
// node's local "ticks": a tick elapses on every event-loop iteration
// (a handled message, a workload step) and — while the node is blocked
// waiting for messages — on every expiry of a wall-clock timer (Tick,
// default 200µs). Delays, timeouts and crash durations all count ticks.
type Faults struct {
	// DropP is the probability that a control message (freezeReq,
	// freezeAck, freezeBusy, release) is lost in transit. Transfer
	// messages are always delivered reliably, so packet conservation
	// stays exact under any drop rate.
	DropP float64
	// DelayMax, if positive, holds each delivered message back a uniform
	// 0..DelayMax ticks in the receiver's delay buffer instead of
	// handing it to the protocol immediately.
	DelayMax int
	// Crashes schedules fail-stop crash/recover windows. A crashed node
	// performs no workload steps and answers no control messages (they
	// are lost at the dead node); incoming transfers are applied to its
	// persistent load — load units live in stable storage, mirroring the
	// fail-stop model of Gilbert–Meir–Paz style dynamic-network analyses.
	Crashes []Crash
	// TimeoutTicks is how many ticks an initiator waits for outstanding
	// freeze replies before it aborts the protocol (releasing the
	// partners it heard from) and re-arms with randomized backoff.
	// 0 selects the default (50).
	TimeoutTicks int
	// FreezeTicks is how long a frozen partner waits for its release or
	// transfer before unfreezing itself — the escape hatch that keeps a
	// crashed initiator's peers from leaking frozen. 0 selects the
	// default (4 × TimeoutTicks).
	FreezeTicks int
	// Seed drives all fault randomness (drop and delay draws).
	Seed uint64
	// Tick is the wall-clock interval that advances a blocked node's
	// local clock. 0 selects the default (200µs).
	Tick time.Duration
	// Trace, if non-nil, records EvDrop/EvTimeout/EvCrash events
	// (Step = the node's local workload step, Proc = the node). The
	// recorder is guarded internally, so a single recorder may be shared
	// across the whole run.
	Trace *trace.Recorder
}

// Crash is one scheduled fail-stop window.
type Crash struct {
	// Node is the processor that crashes.
	Node int
	// AtStep triggers the crash once the node has completed this many
	// workload steps (the crash may strike mid-protocol: an initiator
	// abandons its partners without releasing them, a frozen partner
	// silently forgets its freeze).
	AtStep int
	// DownTicks is how long the node stays dead before recovering.
	// 0 selects the default (400).
	DownTicks int
}

// Default fault-layer parameters (see the field docs on Faults).
const (
	defaultTimeoutTicks = 50
	defaultDownTicks    = 400
	defaultTick         = 200 * time.Microsecond
)

// enabled reports whether any fault mechanism is active. The timeout
// machinery is armed only when it is — a fault-free network cannot wedge,
// so the fault-free protocol runs without timers.
func (f *Faults) enabled() bool {
	return f.DropP > 0 || f.DelayMax > 0 || len(f.Crashes) > 0
}

// validate checks the fault section against the node count.
func (f *Faults) validate(n int) error {
	if f.DropP < 0 || f.DropP > 1 {
		return fmt.Errorf("netsim: fault DropP = %v outside [0,1]", f.DropP)
	}
	if f.DelayMax < 0 {
		return fmt.Errorf("netsim: fault DelayMax = %d, need >= 0", f.DelayMax)
	}
	if f.TimeoutTicks < 0 || f.FreezeTicks < 0 {
		return fmt.Errorf("netsim: fault timeouts must be >= 0")
	}
	if f.Tick < 0 {
		return fmt.Errorf("netsim: fault Tick must be >= 0")
	}
	for _, c := range f.Crashes {
		if c.Node < 0 || c.Node >= n {
			return fmt.Errorf("netsim: crash schedules node %d, have %d nodes", c.Node, n)
		}
		if c.AtStep < 0 || c.DownTicks < 0 {
			return fmt.Errorf("netsim: crash window %+v has negative timing", c)
		}
	}
	return nil
}

// timeoutTicks returns the initiator reply timeout with defaults applied.
func (f *Faults) timeoutTicks() int64 {
	if f.TimeoutTicks > 0 {
		return int64(f.TimeoutTicks)
	}
	return defaultTimeoutTicks
}

// freezeTicks returns the frozen-partner self-release timeout with
// defaults applied. It is deliberately several initiator timeouts long so
// that in the common case the initiator's own timeout (and its explicit
// release) wins; self-release is the last resort for a crashed initiator.
func (f *Faults) freezeTicks() int64 {
	if f.FreezeTicks > 0 {
		return int64(f.FreezeTicks)
	}
	return 4 * f.timeoutTicks()
}

// tick returns the wall-clock tick interval with defaults applied.
func (f *Faults) tick() time.Duration {
	if f.Tick > 0 {
		return f.Tick
	}
	return defaultTick
}

// lockedRecorder serializes trace recording across node goroutines.
// Fault events are rare relative to message traffic, so a single mutex
// does not become a bottleneck.
type lockedRecorder struct {
	mu  sync.Mutex
	rec *trace.Recorder
}

func (l *lockedRecorder) record(e trace.Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.rec.Record(e)
	l.mu.Unlock()
}

// delayed is one message held back in a node's delay buffer.
type delayed struct {
	due int64 // local tick at which to deliver
	m   message
}
