package stats

import (
	"testing"

	"lmbalance/internal/rng"
)

func TestLoadPartialBasic(t *testing.T) {
	var p LoadPartial
	if p.Mean() != 0 {
		t.Fatal("empty partial mean should be 0")
	}
	p.ObserveSlice([]int{3, -1, 4, 1, 5})
	if p.Sum != 12 || p.Min != -1 || p.Max != 5 || p.Count != 5 {
		t.Fatalf("partial = %+v", p)
	}
	if got := p.Mean(); got != 12.0/5 {
		t.Fatalf("mean = %v", got)
	}
}

func TestLoadPartialMergeIdentity(t *testing.T) {
	var a, b LoadPartial
	b.ObserveSlice([]int{2, 7})
	a.Merge(LoadPartial{}) // empty right identity
	if a.Count != 0 {
		t.Fatal("merging empty into empty changed state")
	}
	a.Merge(b)
	if a != b {
		t.Fatalf("empty left identity broken: %+v vs %+v", a, b)
	}
	a.Merge(LoadPartial{})
	if a != b {
		t.Fatal("empty right identity broken")
	}
}

// TestLoadPartialMergeOrderIndependence is the property the sharded
// engine's tree reduction relies on: any merge order over disjoint shard
// partials yields the same result as the direct global scan.
func TestLoadPartialMergeOrderIndependence(t *testing.T) {
	r := rng.New(42)
	loads := make([]int, 1000)
	for i := range loads {
		loads[i] = r.Intn(100) - 20
	}
	var direct LoadPartial
	direct.ObserveSlice(loads)

	for trial := 0; trial < 50; trial++ {
		// Random partition into 1..16 contiguous shards.
		nShards := 1 + r.Intn(16)
		cuts := append([]int{0}, r.SampleDistinct(len(loads)-1, nShards-1, -1, nil)...)
		for i := range cuts[1:] {
			cuts[i+1]++ // interior cut points in [1, len)
		}
		cuts = append(cuts, len(loads))
		sortInts(cuts)
		parts := make([]LoadPartial, 0, nShards)
		for s := 0; s+1 < len(cuts); s++ {
			var p LoadPartial
			p.ObserveSlice(loads[cuts[s]:cuts[s+1]])
			parts = append(parts, p)
		}
		// Shuffle the partials: merge order must not matter.
		r.Shuffle(len(parts), func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
		if got := ReduceLoadPartials(parts); got != direct {
			t.Fatalf("trial %d: reduced %+v, direct %+v", trial, got, direct)
		}
	}
}

func TestReduceLoadPartialsShapes(t *testing.T) {
	if got := ReduceLoadPartials(nil); got != (LoadPartial{}) {
		t.Fatal("empty reduce should be zero partial")
	}
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 31} {
		parts := make([]LoadPartial, n)
		var want LoadPartial
		for i := range parts {
			parts[i].Observe(i * i)
			want.Observe(i * i)
		}
		if got := ReduceLoadPartials(parts); got != want {
			t.Fatalf("n=%d: got %+v want %+v", n, got, want)
		}
	}
}

// TestAccumulatorMergeOrderIndependence checks the statistics the engine
// reports (n, mean, min, max — and variance within floating-point slack)
// are independent of the order per-run accumulators merge in.
func TestAccumulatorMergeOrderIndependence(t *testing.T) {
	r := rng.New(7)
	const groups = 9
	samples := make([][]float64, groups)
	for g := range samples {
		for k := 0; k < 20+r.Intn(30); k++ {
			samples[g] = append(samples[g], r.Float64()*100-50)
		}
	}
	merged := func(order []int) Accumulator {
		var acc Accumulator
		for _, g := range order {
			var part Accumulator
			for _, x := range samples[g] {
				part.Add(x)
			}
			acc.Merge(&part)
		}
		return acc
	}
	order := make([]int, groups)
	for i := range order {
		order[i] = i
	}
	ref := merged(order)
	for trial := 0; trial < 30; trial++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		got := merged(order)
		if got.N() != ref.N() || got.Min() != ref.Min() || got.Max() != ref.Max() {
			t.Fatalf("trial %d: counts/extrema differ: %v vs %v", trial, got, ref)
		}
		if d := got.Mean() - ref.Mean(); d > 1e-9 || d < -1e-9 {
			t.Fatalf("trial %d: mean %v vs %v", trial, got.Mean(), ref.Mean())
		}
		if d := got.Var() - ref.Var(); d > 1e-6 || d < -1e-6 {
			t.Fatalf("trial %d: var %v vs %v", trial, got.Var(), ref.Var())
		}
	}
}

// TestSeriesMergeOrderIndependence extends the property to whole Series,
// including strided ones.
func TestSeriesMergeOrderIndependence(t *testing.T) {
	r := rng.New(11)
	const steps, stride, runs = 40, 4, 6
	runData := make([][]float64, runs)
	for run := range runData {
		runData[run] = make([]float64, steps)
		for tt := range runData[run] {
			runData[run][tt] = r.Float64() * 10
		}
	}
	build := func(order []int) *Series {
		total := NewSeriesStride(steps, stride)
		for _, run := range order {
			s := NewSeriesStride(steps, stride)
			for tt := 0; tt < steps; tt++ {
				if s.Sampled(tt) {
					s.Add(tt, runData[run][tt])
				}
			}
			total.Merge(s)
		}
		return total
	}
	order := []int{0, 1, 2, 3, 4, 5}
	ref := build(order)
	for trial := 0; trial < 20; trial++ {
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		got := build(order)
		for tt := 0; tt < steps; tt++ {
			if !got.Sampled(tt) {
				continue
			}
			if got.At(tt).Min() != ref.At(tt).Min() || got.At(tt).Max() != ref.At(tt).Max() {
				t.Fatalf("trial %d step %d: extrema differ", trial, tt)
			}
			if d := got.At(tt).Mean() - ref.At(tt).Mean(); d > 1e-9 || d < -1e-9 {
				t.Fatalf("trial %d step %d: mean %v vs %v", trial, tt, got.At(tt).Mean(), ref.At(tt).Mean())
			}
		}
	}
}

func TestSeriesStride(t *testing.T) {
	s := NewSeriesStride(10, 3)
	if s.Len() != 10 || s.Stride() != 3 {
		t.Fatalf("len %d stride %d", s.Len(), s.Stride())
	}
	// Sampled steps: (t+1)%3 == 0 → t = 2, 5, 8.
	want := map[int]bool{2: true, 5: true, 8: true}
	for tt := 0; tt < 10; tt++ {
		if s.Sampled(tt) != want[tt] {
			t.Fatalf("Sampled(%d) = %v", tt, s.Sampled(tt))
		}
	}
	s.Add(2, 1.0)
	s.Add(5, 2.0)
	s.Add(8, 3.0)
	if s.At(2).Mean() != 1 || s.At(5).Mean() != 2 || s.At(8).Mean() != 3 {
		t.Fatal("strided slots mis-addressed")
	}
	// Mismatched shapes must panic on merge.
	defer func() {
		if recover() == nil {
			t.Fatal("merging different strides did not panic")
		}
	}()
	s.Merge(NewSeriesStride(10, 5))
}

// sortInts is a tiny insertion sort to avoid importing sort for one call.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
