package stats

// LoadPartial is one shard's contribution to a per-tick load scan: the sum,
// minimum and maximum over the shard's processors. Partials from disjoint
// shards merge exactly (integer arithmetic throughout), so the sharded
// engine can replace the global O(n) min/max/avg scan with per-shard scans
// plus an S-way reduction whose result is independent of merge order.
type LoadPartial struct {
	Sum      int64
	Min, Max int
	Count    int
}

// Observe folds one processor load into the partial.
func (p *LoadPartial) Observe(v int) {
	if p.Count == 0 {
		p.Min, p.Max = v, v
	} else {
		if v < p.Min {
			p.Min = v
		}
		if v > p.Max {
			p.Max = v
		}
	}
	p.Sum += int64(v)
	p.Count++
}

// ObserveSlice folds a whole load slice into the partial.
func (p *LoadPartial) ObserveSlice(loads []int) {
	for _, v := range loads {
		p.Observe(v)
	}
}

// Merge combines another partial into p. Empty partials are identities.
func (p *LoadPartial) Merge(q LoadPartial) {
	if q.Count == 0 {
		return
	}
	if p.Count == 0 {
		*p = q
		return
	}
	if q.Min < p.Min {
		p.Min = q.Min
	}
	if q.Max > p.Max {
		p.Max = q.Max
	}
	p.Sum += q.Sum
	p.Count += q.Count
}

// Mean returns the average load, or 0 for an empty partial.
func (p LoadPartial) Mean() float64 {
	if p.Count == 0 {
		return 0
	}
	return float64(p.Sum) / float64(p.Count)
}

// ReduceLoadPartials merges a slice of partials with a fixed-shape binary
// tree (stride doubling: 1, 2, 4, …) and returns the root. The tree shape
// depends only on len(ps), never on which goroutine produced which partial,
// so the reduction is deterministic; and because LoadPartial merging is
// exact integer arithmetic the result equals any other merge order — the
// tree is the canonical order the sharded engine commits to. ps is used as
// scratch (partials are merged in place).
func ReduceLoadPartials(ps []LoadPartial) LoadPartial {
	if len(ps) == 0 {
		return LoadPartial{}
	}
	for stride := 1; stride < len(ps); stride *= 2 {
		for i := 0; i+stride < len(ps); i += 2 * stride {
			ps[i].Merge(ps[i+stride])
		}
	}
	return ps[0]
}
