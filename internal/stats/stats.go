// Package stats provides the small statistical toolkit used by the
// simulator and the experiment harnesses: streaming accumulators (Welford),
// mergeable across parallel simulation runs; per-time-step series; integer
// histograms; and quantile helpers.
//
// The experiments in the paper report, for each configuration, the average,
// minimum and maximum load observed over 100 independent runs, plus the
// variation density VD(X) = sqrt(Var X)/E X (paper §5). Everything here is
// written so those aggregates can be computed in one pass and combined from
// per-run partial results without storing raw samples.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator is a streaming mean/variance/min/max accumulator using
// Welford's algorithm. The zero value is an empty accumulator ready to use.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64 // sum of squared deviations from the running mean
	min  float64
	max  float64
}

// Add incorporates one observation.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddN incorporates the same observation x, n times (n >= 0).
func (a *Accumulator) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	var other Accumulator
	other.n = n
	other.mean = x
	other.min, other.max = x, x
	a.Merge(&other)
}

// Merge combines another accumulator into a (parallel-runs reduction) using
// Chan et al.'s pairwise update. After Merge, a summarizes the union of both
// sample sets; b is unchanged.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	delta := b.mean - a.mean
	total := a.n + b.n
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(total)
	a.mean += delta * float64(b.n) / float64(total)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = total
}

// N returns the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean, or 0 for an empty accumulator.
func (a *Accumulator) Mean() float64 { return a.mean }

// Var returns the population variance (dividing by n), or 0 when n < 1.
func (a *Accumulator) Var() float64 {
	if a.n < 1 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// SampleVar returns the unbiased sample variance (dividing by n-1), or 0
// when n < 2.
func (a *Accumulator) SampleVar() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the population standard deviation.
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Var()) }

// Min returns the smallest observation, or 0 for an empty accumulator.
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return 0
	}
	return a.min
}

// Max returns the largest observation, or 0 for an empty accumulator.
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return 0
	}
	return a.max
}

// VariationDensity returns Std/Mean, the paper's §5 quality measure, or 0
// when the mean is 0.
func (a *Accumulator) VariationDensity() float64 {
	if a.mean == 0 {
		return 0
	}
	return a.Std() / a.mean
}

// String formats the accumulator for logs and experiment tables.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.4f std=%.4f min=%.4f max=%.4f",
		a.n, a.Mean(), a.Std(), a.Min(), a.Max())
}

// Series is a fixed-length vector of accumulators indexed by time step,
// aggregating one observation per step per run. It is the backbone of the
// Fig. 7/8 reproduction (average/min/max load per global time step over 100
// runs).
//
// A Series may be strided: with stride k > 1 only steps t with
// (t+1) % k == 0 own an accumulator, and the backing vector holds
// ⌈steps/k⌉ slots instead of steps. Strided series keep the memory of
// multi-million-step simulations bounded (a per-step series over 8·10⁶
// steps would cost >1 GB across the four observables) while the caller
// still addresses accumulators by global time step.
type Series struct {
	acc    []Accumulator
	steps  int
	stride int
}

// NewSeries returns a per-step Series with the given number of time steps.
func NewSeries(steps int) *Series {
	return NewSeriesStride(steps, 1)
}

// NewSeriesStride returns a Series over steps time steps that records only
// every stride-th step (those t with (t+1) % stride == 0). stride < 1 is
// treated as 1.
func NewSeriesStride(steps, stride int) *Series {
	if stride < 1 {
		stride = 1
	}
	slots := steps / stride
	if steps%stride != 0 {
		slots++
	}
	return &Series{acc: make([]Accumulator, slots), steps: steps, stride: stride}
}

// Len returns the number of time steps (not slots).
func (s *Series) Len() int { return s.steps }

// Stride returns the sampling stride (1 for a per-step series).
func (s *Series) Stride() int { return s.stride }

// Sampled reports whether time step t owns an accumulator.
func (s *Series) Sampled(t int) bool { return (t+1)%s.stride == 0 }

// Add incorporates observation x at time step t. For a strided series t
// must be a sampled step.
func (s *Series) Add(t int, x float64) { s.acc[t/s.stride].Add(x) }

// At returns the accumulator for time step t. For a strided series,
// non-sampled steps map to the slot of the nearest sampled step at or
// before t+stride-1; callers should consult Sampled when exactness
// matters.
func (s *Series) At(t int) *Accumulator { return &s.acc[t/s.stride] }

// Merge combines another series of the same length and stride into s.
// It panics if the shapes differ.
func (s *Series) Merge(o *Series) {
	if len(s.acc) != len(o.acc) || s.stride != o.stride {
		panic("stats: merging series of different shapes")
	}
	for i := range s.acc {
		s.acc[i].Merge(&o.acc[i])
	}
}

// Means returns the per-step means as a slice.
func (s *Series) Means() []float64 {
	out := make([]float64, len(s.acc))
	for i := range s.acc {
		out[i] = s.acc[i].Mean()
	}
	return out
}

// Mins returns the per-step minima.
func (s *Series) Mins() []float64 {
	out := make([]float64, len(s.acc))
	for i := range s.acc {
		out[i] = s.acc[i].Min()
	}
	return out
}

// Maxs returns the per-step maxima.
func (s *Series) Maxs() []float64 {
	out := make([]float64, len(s.acc))
	for i := range s.acc {
		out[i] = s.acc[i].Max()
	}
	return out
}

// Histogram counts integer-valued observations. Buckets are the integers
// themselves; out-of-range values extend the histogram.
type Histogram struct {
	counts map[int]int64
	total  int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int64)}
}

// Add counts one observation of value v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// Count returns the number of observations of value v.
func (h *Histogram) Count(v int) int64 { return h.counts[v] }

// Total returns the total number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Support returns the sorted list of observed values.
func (h *Histogram) Support() []int {
	vals := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	return vals
}

// Mean returns the mean of the histogram, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// Quantile returns the q-quantile (0 <= q <= 1) of the histogram using the
// nearest-rank method, or 0 if the histogram is empty.
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, v := range h.Support() {
		cum += h.counts[v]
		if cum >= rank {
			return v
		}
	}
	// Unreachable: cum reaches total.
	s := h.Support()
	return s[len(s)-1]
}

// Quantile returns the q-quantile of the float64 slice xs (0<=q<=1) by
// linear interpolation between closest ranks. It returns 0 for empty input.
// The input slice is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MeanOf returns the mean of xs, or 0 for empty input.
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MinMaxInts returns the minimum and maximum of xs. It panics on empty
// input.
func MinMaxInts(xs []int) (min, max int) {
	if len(xs) == 0 {
		panic("stats: MinMaxInts of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// SpreadInts returns max-min of xs — the load imbalance measure used in the
// balancing-quality plots. It panics on empty input.
func SpreadInts(xs []int) int {
	min, max := MinMaxInts(xs)
	return max - min
}
