package stats

import (
	"math"
	"testing"
	"testing/quick"

	"lmbalance/internal/rng"
)

func almostEqual(a, b, eps float64) bool {
	if math.Abs(a-b) <= eps {
		return true
	}
	// relative comparison for large magnitudes
	return math.Abs(a-b) <= eps*math.Max(math.Abs(a), math.Abs(b))
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Var() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Fatalf("empty accumulator not all-zero: %v", a.String())
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.N() != 1 || a.Mean() != 3.5 || a.Var() != 0 || a.Min() != 3.5 || a.Max() != 3.5 {
		t.Fatalf("single-sample accumulator wrong: %v", a.String())
	}
	if a.SampleVar() != 0 {
		t.Fatal("SampleVar of single sample should be 0")
	}
}

func TestAccumulatorKnown(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", a.Mean())
	}
	if a.Var() != 4 {
		t.Fatalf("population variance = %v, want 4", a.Var())
	}
	if a.Std() != 2 {
		t.Fatalf("std = %v, want 2", a.Std())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
	if vd := a.VariationDensity(); vd != 0.4 {
		t.Fatalf("variation density = %v, want 0.4", vd)
	}
}

// TestWelfordMatchesNaive cross-checks the streaming implementation against
// the two-pass textbook formulas on random data.
func TestWelfordMatchesNaive(t *testing.T) {
	r := rng.New(101)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(200)
		xs := make([]float64, n)
		var a Accumulator
		for i := range xs {
			xs[i] = r.FloatRange(-100, 100)
			a.Add(xs[i])
		}
		mean := MeanOf(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		if !almostEqual(a.Mean(), mean, 1e-9) {
			t.Fatalf("trial %d: mean %v vs %v", trial, a.Mean(), mean)
		}
		if !almostEqual(a.Var(), ss/float64(n), 1e-9) {
			t.Fatalf("trial %d: var %v vs %v", trial, a.Var(), ss/float64(n))
		}
	}
}

// TestMergeEquivalence is the key property for parallel runs: splitting a
// sample set arbitrarily, accumulating the parts, and merging must give the
// same result as accumulating the whole.
func TestMergeEquivalence(t *testing.T) {
	r := rng.New(202)
	prop := func(seed uint32, splitRaw uint8) bool {
		rr := rng.New(uint64(seed))
		n := 2 + rr.Intn(100)
		split := 1 + int(splitRaw)%(n-1)
		var whole, left, right Accumulator
		for i := 0; i < n; i++ {
			x := rr.FloatRange(-50, 50)
			whole.Add(x)
			if i < split {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Merge(&right)
		return almostEqual(whole.Mean(), left.Mean(), 1e-9) &&
			almostEqual(whole.Var(), left.Var(), 1e-9) &&
			whole.Min() == left.Min() && whole.Max() == left.Max() &&
			whole.N() == left.N()
	}
	_ = r
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeWithEmpty(t *testing.T) {
	var a, empty Accumulator
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(&empty)
	if a != before {
		t.Fatal("merging empty changed accumulator")
	}
	empty.Merge(&a)
	if empty.Mean() != 2 || empty.N() != 2 {
		t.Fatal("merging into empty lost data")
	}
}

func TestAddN(t *testing.T) {
	var a, b Accumulator
	for i := 0; i < 5; i++ {
		a.Add(7)
	}
	a.Add(3)
	b.AddN(7, 5)
	b.AddN(3, 1)
	b.AddN(99, 0) // no-op
	if !almostEqual(a.Mean(), b.Mean(), 1e-12) || !almostEqual(a.Var(), b.Var(), 1e-9) {
		t.Fatalf("AddN mismatch: %v vs %v", a.String(), b.String())
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(3)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	// run 1
	s.Add(0, 1)
	s.Add(1, 2)
	s.Add(2, 3)
	// run 2
	s.Add(0, 3)
	s.Add(1, 2)
	s.Add(2, 1)
	means := s.Means()
	if means[0] != 2 || means[1] != 2 || means[2] != 2 {
		t.Fatalf("means = %v", means)
	}
	if mins := s.Mins(); mins[0] != 1 || mins[2] != 1 {
		t.Fatalf("mins = %v", mins)
	}
	if maxs := s.Maxs(); maxs[0] != 3 || maxs[2] != 3 {
		t.Fatalf("maxs = %v", maxs)
	}
}

func TestSeriesMerge(t *testing.T) {
	a, b := NewSeries(2), NewSeries(2)
	a.Add(0, 1)
	a.Add(1, 5)
	b.Add(0, 3)
	b.Add(1, 7)
	a.Merge(b)
	if a.At(0).Mean() != 2 || a.At(1).Mean() != 6 {
		t.Fatalf("merged means wrong: %v %v", a.At(0).Mean(), a.At(1).Mean())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched lengths did not panic")
		}
	}()
	a.Merge(NewSeries(3))
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 2, 2, 3, 3, 3} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Count(2) != 2 || h.Count(3) != 3 || h.Count(99) != 0 {
		t.Fatal("counts wrong")
	}
	if got := h.Support(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("support = %v", got)
	}
	if !almostEqual(h.Mean(), 14.0/6.0, 1e-12) {
		t.Fatalf("mean = %v", h.Mean())
	}
	// Nearest-rank median of [1,2,2,3,3,3]: rank ceil(0.5*6)=3 → value 2.
	if h.Quantile(0.5) != 2 {
		t.Fatalf("median = %d, want 2", h.Quantile(0.5))
	}
	if h.Quantile(0.75) != 3 {
		t.Fatalf("q75 = %d, want 3", h.Quantile(0.75))
	}
	if h.Quantile(0) != 1 {
		t.Fatalf("q0 = %d", h.Quantile(0))
	}
	if h.Quantile(1) != 3 {
		t.Fatalf("q1 = %d", h.Quantile(1))
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Total() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
}

func TestQuantileSlice(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("endpoint quantiles wrong")
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q25 = %v", q)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	// input must not be modified
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatal("Quantile modified its input")
	}
}

func TestMinMaxSpread(t *testing.T) {
	min, max := MinMaxInts([]int{5, -2, 9, 0})
	if min != -2 || max != 9 {
		t.Fatalf("min/max = %d/%d", min, max)
	}
	if SpreadInts([]int{5, -2, 9, 0}) != 11 {
		t.Fatal("spread wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MinMaxInts(empty) did not panic")
		}
	}()
	MinMaxInts(nil)
}

func TestVariationDensityZeroMean(t *testing.T) {
	var a Accumulator
	a.Add(-1)
	a.Add(1)
	if a.VariationDensity() != 0 {
		t.Fatal("VD with zero mean should be defined as 0")
	}
}

func BenchmarkAccumulatorAdd(b *testing.B) {
	var a Accumulator
	for i := 0; i < b.N; i++ {
		a.Add(float64(i & 1023))
	}
}

func BenchmarkSeriesAdd(b *testing.B) {
	s := NewSeries(500)
	for i := 0; i < b.N; i++ {
		s.Add(i%500, float64(i&255))
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries(0)
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	if len(s.Means()) != 0 || len(s.Mins()) != 0 || len(s.Maxs()) != 0 {
		t.Fatal("empty series produced non-empty slices")
	}
	s.Merge(NewSeries(0)) // must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("merging series of different lengths should panic")
		}
	}()
	s.Merge(NewSeries(1))
}

func TestSeriesSingleStep(t *testing.T) {
	s := NewSeries(1)
	s.Add(0, 2.5)
	if got := s.At(0).Mean(); got != 2.5 {
		t.Fatalf("mean = %v", got)
	}
	if s.Means()[0] != 2.5 || s.Mins()[0] != 2.5 || s.Maxs()[0] != 2.5 {
		t.Fatal("single-step projections wrong")
	}
}

func TestHistogramSingle(t *testing.T) {
	h := NewHistogram()
	h.Add(7)
	if h.Total() != 1 || h.Mean() != 7 {
		t.Fatalf("single-sample histogram: total=%d mean=%v", h.Total(), h.Mean())
	}
	// Every quantile of one sample is that sample, including clamped
	// out-of-range q.
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 7 {
			t.Fatalf("Quantile(%v) = %d, want 7", q, got)
		}
	}
	if s := h.Support(); len(s) != 1 || s[0] != 7 {
		t.Fatalf("support = %v", s)
	}
}

func TestQuantileSliceSingle(t *testing.T) {
	xs := []float64{4.25}
	for _, q := range []float64{-0.5, 0, 0.5, 1, 1.5} {
		if got := Quantile(xs, q); got != 4.25 {
			t.Fatalf("Quantile(%v) = %v, want 4.25", q, got)
		}
	}
}

func TestMeanOfEdge(t *testing.T) {
	if MeanOf(nil) != 0 {
		t.Fatal("MeanOf(nil) should be 0")
	}
	if MeanOf([]float64{3}) != 3 {
		t.Fatal("MeanOf of one element should be that element")
	}
}
