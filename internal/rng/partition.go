package rng

// Partition derives independent, deterministic RNG streams from a single
// master seed, keyed by a (kind, index) pair rather than by derivation
// order. Split produces streams that depend on how many times the parent
// was split before — fine inside one goroutine, but useless for a sharded
// engine where S shards must each obtain their stream without coordinating.
// A Partition stream depends only on (master, kind, index), so shard s can
// construct its streams locally and the result is identical for any worker
// count or scheduling of the shards. This is the subsystem/instance
// partitioned-RNG idiom: one keyed stream per subsystem (kind) and per
// shard (index).
//
// Two distinct keys yield (with overwhelming probability) uncorrelated
// xoshiro256** streams: the key is folded through two full splitmix64
// rounds per word, the same construction New uses for its state expansion.
type Partition struct {
	master uint64
}

// StreamKind labels the subsystem a derived stream feeds. The numeric
// values are part of the determinism contract: changing them reshuffles
// every sharded simulation.
type StreamKind uint64

const (
	// StreamPattern seeds workload-pattern construction (one per run).
	StreamPattern StreamKind = iota + 1
	// StreamBalancer seeds balancer construction (one per run).
	StreamBalancer
	// StreamOrder seeds a shard's per-tick processor-order shuffles.
	StreamOrder
	// StreamStep seeds a shard's per-processor step randomness: workload
	// action draws and processor-local balancer choices.
	StreamStep
	// StreamOp seeds one deferred balancing operation. The index is a hash
	// of (tick, operation rank), so every operation owns a private stream
	// regardless of which worker resolves it.
	StreamOp
	// StreamSettle seeds the serial settlement pass at the tick barrier.
	StreamSettle
)

// NewPartition returns a Partition over the given master seed.
func NewPartition(master uint64) Partition {
	return Partition{master: master}
}

// Seed returns the derived seed word for (kind, index).
func (p Partition) Seed(kind StreamKind, index uint64) uint64 {
	return Mix64(Mix64(p.master, uint64(kind)), index)
}

// Stream returns a fresh generator for (kind, index). Repeated calls with
// the same key return generators with identical state.
func (p Partition) Stream(kind StreamKind, index uint64) *RNG {
	return New(p.Seed(kind, index))
}

// OpStream returns the private stream of one deferred balancing operation:
// operation rank k at tick t. The two coordinates are hashed separately so
// (t, k) pairs cannot alias across ticks with different operation counts.
func (p Partition) OpStream(tick, k uint64) *RNG {
	return New(Mix64(p.Seed(StreamOp, tick), k))
}
