package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitmix64KnownVectors(t *testing.T) {
	// Canonical test vectors for splitmix64 with seed 0 (Vigna's reference
	// implementation / PractRand): the first three outputs are fixed
	// constants. If these change, every experiment seed in the repo changes
	// meaning.
	state := uint64(0)
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	for i, w := range want {
		if g := splitmix64(&state); g != w {
			t.Fatalf("splitmix64 output %d = %#x, want %#x", i, g, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with distinct seeds collided %d/1000 times", same)
	}
}

func TestMix64Deterministic(t *testing.T) {
	if Mix64(3, 5) != Mix64(3, 5) {
		t.Fatal("Mix64 not deterministic")
	}
	if Mix64(3, 5) == Mix64(5, 3) {
		t.Fatal("Mix64 should not be symmetric in its arguments")
	}
}

// TestMix64BreaksAdditiveAliasing: the derivation Mix64 replaced was
// Seed + run·0x9e3779b97f4a7c15, under which (S, r+1) and (S+stride, r)
// collide for every S and r. Mix64 must separate exactly those pairs.
func TestMix64BreaksAdditiveAliasing(t *testing.T) {
	const stride = 0x9e3779b97f4a7c15
	for seed := uint64(0); seed < 64; seed++ {
		for run := uint64(0); run < 16; run++ {
			if Mix64(seed, run+1) == Mix64(seed+stride, run) {
				t.Fatalf("Mix64(%d,%d) aliases Mix64(%d,%d)", seed, run+1, seed+stride, run)
			}
		}
	}
}

func TestMix64Spreads(t *testing.T) {
	// Consecutive (seed, run) pairs must land far apart: check all outputs
	// over a small grid are distinct.
	seen := make(map[uint64]bool)
	for a := uint64(0); a < 32; a++ {
		for b := uint64(0); b < 32; b++ {
			v := Mix64(a, b)
			if seen[v] {
				t.Fatalf("collision at Mix64(%d,%d)", a, b)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("successive Split children produced identical first outputs")
	}
}

func TestSplitDeterministic(t *testing.T) {
	p1, p2 := New(7), New(7)
	c1, c2 := p1.Split(), p2.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split children of equal parents diverged at %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for n := 1; n < 40; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square smoke test over 10 buckets.
	r := New(99)
	const buckets, samples = 10, 100000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; 99.9th percentile ≈ 27.88.
	if chi2 > 27.88 {
		t.Fatalf("chi-square %.2f exceeds 27.88; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(12)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %.4f too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %.4f too far from 1", variance)
	}
}

func TestPerm(t *testing.T) {
	r := New(5)
	for n := 0; n < 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(18)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %.4f", rate)
	}
}

func TestIntRange(t *testing.T) {
	r := New(19)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) = %d", v)
		}
	}
	if v := r.IntRange(4, 4); v != 4 {
		t.Fatalf("IntRange(4,4) = %d", v)
	}
}

func TestFloatRange(t *testing.T) {
	r := New(20)
	for i := 0; i < 1000; i++ {
		v := r.FloatRange(1.5, 2.5)
		if v < 1.5 || v >= 2.5 {
			t.Fatalf("FloatRange(1.5,2.5) = %v", v)
		}
	}
}

// TestSampleDistinctProperties checks, via testing/quick, that SampleDistinct
// always returns k distinct in-range values that never include the excluded
// index — the invariant the balancer's candidate selection relies on.
func TestSampleDistinctProperties(t *testing.T) {
	r := New(21)
	prop := func(nRaw, kRaw, skipRaw uint8) bool {
		n := int(nRaw%50) + 2    // 2..51
		skip := int(skipRaw) % n // valid index
		k := int(kRaw) % n       // 0..n-1 <= available (n-1)
		dst := r.SampleDistinct(n, k, skip, nil)
		if len(dst) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range dst {
			if v < 0 || v >= n || v == skip || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinctFullPopulation(t *testing.T) {
	r := New(22)
	// k == n-1 with a skip must return every other element exactly once.
	n := 10
	dst := r.SampleDistinct(n, n-1, 3, nil)
	seen := map[int]bool{}
	for _, v := range dst {
		seen[v] = true
	}
	if len(seen) != n-1 || seen[3] {
		t.Fatalf("full-population sample wrong: %v", dst)
	}
}

func TestSampleDistinctNoSkip(t *testing.T) {
	r := New(23)
	dst := r.SampleDistinct(5, 5, -1, nil)
	seen := map[int]bool{}
	for _, v := range dst {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("sample without skip not a permutation: %v", dst)
	}
}

func TestSampleDistinctPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > population")
		}
	}()
	New(1).SampleDistinct(3, 3, 0, nil)
}

func TestSampleDistinctUniform(t *testing.T) {
	// Each element of [0,10)\{0} should be chosen with equal frequency when
	// sampling k=3 of 9 available.
	r := New(24)
	counts := make([]int, 10)
	const trials = 30000
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleDistinct(10, 3, 0, nil) {
			counts[v]++
		}
	}
	if counts[0] != 0 {
		t.Fatalf("excluded index was sampled %d times", counts[0])
	}
	expected := float64(trials*3) / 9
	for v := 1; v < 10; v++ {
		if math.Abs(float64(counts[v])-expected)/expected > 0.05 {
			t.Fatalf("index %d frequency %d deviates from %f", v, counts[v], expected)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}

func BenchmarkSampleDistinct(b *testing.B) {
	r := New(1)
	buf := make([]int, 0, 8)
	for i := 0; i < b.N; i++ {
		buf = r.SampleDistinct(1024, 4, 17, buf)
	}
}
