package rng

import "testing"

// TestPartitionKeyedNotOrdered is the property Split cannot give: the
// stream for a key is the same no matter how many or in which order other
// streams were derived first.
func TestPartitionKeyedNotOrdered(t *testing.T) {
	p := NewPartition(42)
	a1 := p.Stream(StreamOrder, 3).Uint64()
	// Derive a pile of unrelated streams in between.
	for i := uint64(0); i < 10; i++ {
		_ = p.Stream(StreamStep, i).Uint64()
		_ = p.OpStream(i, i).Uint64()
	}
	a2 := p.Stream(StreamOrder, 3).Uint64()
	if a1 != a2 {
		t.Fatal("stream for a fixed key changed after deriving other streams")
	}
	q := NewPartition(42)
	if q.Stream(StreamOrder, 3).Uint64() != a1 {
		t.Fatal("fresh Partition over the same master gives a different stream")
	}
}

func TestPartitionKeysDistinct(t *testing.T) {
	p := NewPartition(7)
	seen := map[uint64][2]uint64{}
	kinds := []StreamKind{StreamPattern, StreamBalancer, StreamOrder, StreamStep, StreamOp, StreamSettle}
	for _, k := range kinds {
		for idx := uint64(0); idx < 64; idx++ {
			s := p.Seed(k, idx)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d)", prev[0], prev[1], uint64(k), idx)
			}
			seen[s] = [2]uint64{uint64(k), idx}
		}
	}
}

func TestPartitionMastersDiverge(t *testing.T) {
	a := NewPartition(1).Stream(StreamOrder, 0)
	b := NewPartition(2).Stream(StreamOrder, 0)
	same := 0
	for i := 0; i < 16; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/16 values collide across masters", same)
	}
}

// TestOpStreamNoCrossTickAliasing: op k of tick t must not replay op k' of
// tick t' even when tick and rank values swap.
func TestOpStreamNoCrossTickAliasing(t *testing.T) {
	p := NewPartition(9)
	a := p.OpStream(3, 5).Uint64()
	b := p.OpStream(5, 3).Uint64()
	if a == b {
		t.Fatal("OpStream(3,5) aliases OpStream(5,3)")
	}
	if p.OpStream(3, 5).Uint64() != a {
		t.Fatal("OpStream not deterministic")
	}
}

// TestSampleDistinctSmallLargeAgree pins the small-k linear-scan path to
// the map path: both must consume the identical Intn sequence and produce
// identical picks (the small-k path sits on the balancer's hot path; the
// stream contract must not depend on which path runs).
func TestSampleDistinctSmallLargeAgree(t *testing.T) {
	// k = 16 uses the array path, k = 17 the map path; drive both from
	// identical streams and compare against an independent reference
	// implementation of Floyd's algorithm.
	for _, k := range []int{1, 2, 15, 16, 17, 40} {
		r1 := New(77)
		r2 := New(77)
		got := r1.SampleDistinct(100, k, 4, nil)
		want := refFloyd(r2, 100, k, 4)
		if len(got) != len(want) {
			t.Fatalf("k=%d: len %d vs %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d: pick %d: %d vs %d", k, i, got[i], want[i])
			}
		}
		// Streams must be in identical positions afterwards.
		if r1.Uint64() != r2.Uint64() {
			t.Fatalf("k=%d: stream positions diverge", k)
		}
	}
}

// refFloyd is a straightforward map-based Floyd's sampler used as the
// reference for both SampleDistinct code paths.
func refFloyd(r *RNG, n, k, skip int) []int {
	avail := n
	if skip >= 0 && skip < n {
		avail--
	}
	translate := func(v int) int {
		if skip >= 0 && v >= skip {
			return v + 1
		}
		return v
	}
	seen := make(map[int]struct{}, k)
	var out []int
	for j := avail - k; j < avail; j++ {
		t := r.Intn(j + 1)
		if _, dup := seen[t]; dup {
			t = j
		}
		seen[t] = struct{}{}
		out = append(out, translate(t))
	}
	return out
}
