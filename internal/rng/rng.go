// Package rng provides a small, fast, deterministic pseudo-random number
// generator for the simulator and the experiment harnesses.
//
// Every experiment in this repository must be exactly reproducible from a
// single 64-bit seed, across platforms and Go releases. The standard
// library's math/rand source does not guarantee a stable stream across
// releases (and math/rand/v2 seeds globally), so the simulator carries its
// own generator: xoshiro256** seeded via splitmix64, the combination
// recommended by the xoshiro authors. The generator additionally supports
// deterministic stream splitting so that concurrent simulation runs draw
// from independent, reproducible streams.
//
// None of the code in this package is safe for concurrent use of a single
// *RNG; callers split one stream per goroutine instead.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct with New.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the 64-bit splitmix state and returns the next value.
// It is used to expand a single seed word into the xoshiro state and to
// derive child stream seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically derived from seed.
// Distinct seeds yield (with overwhelming probability) uncorrelated streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro requires a nonzero state; splitmix64 output is zero for all
	// four words only with negligible probability, but guard anyway so the
	// generator cannot lock up.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Mix64 hashes two 64-bit words into one seed word. Use it wherever a
// stream must be derived from a (base seed, index) pair: the naive
// `seed + index*const` derivation makes the pair (S, i+1) collide with
// (S+const, i) — run i+1 of one experiment replays run i of another
// whose seed differs by the constant. Mixing each word through a full
// splitmix64 round breaks that additive structure.
func Mix64(a, b uint64) uint64 {
	x := a
	h := splitmix64(&x)
	x = h ^ b
	return splitmix64(&x)
}

// Split derives a new, statistically independent generator from r.
// The child stream is a deterministic function of r's current state, and
// deriving it advances r, so successive Split calls yield distinct streams.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd2b74407b1ce6e93)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the xoshiro256** stream.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation with rejection to
	// remove modulo bias.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normally distributed float64 using the
// polar (Marsaglia) method. Used only by synthetic workload generators.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// ShuffleInts permutes s in place.
func (r *RNG) ShuffleInts(s []int) {
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

// Shuffle pseudo-randomizes the order of n elements using the swap callback,
// matching the contract of math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli reports true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// IntRange returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// FloatRange returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (r *RNG) FloatRange(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: FloatRange with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// SampleDistinct fills dst with k distinct integers drawn uniformly from
// [0, n) excluding the value skip (pass skip < 0 to exclude nothing), and
// returns dst[:k]. It panics if k exceeds the number of available values.
//
// This is the candidate-selection primitive of the load balancer: a
// processor chooses δ distinct partners from {0..n-1} − {itself}.
// The implementation is Floyd's algorithm, O(k) expected time and O(k)
// space, so selection stays cheap even for large n.
func (r *RNG) SampleDistinct(n, k, skip int, dst []int) []int {
	avail := n
	if skip >= 0 && skip < n {
		avail--
	}
	if k > avail {
		panic("rng: SampleDistinct k exceeds population")
	}
	dst = dst[:0]
	// Floyd's algorithm over the population [0, avail) with a translation
	// that skips the excluded value.
	translate := func(v int) int {
		if skip >= 0 && v >= skip {
			return v + 1
		}
		return v
	}
	// Duplicate detection: for the small k of the balancer's δ-selection a
	// linear scan over the picks so far beats a map and allocates nothing —
	// SampleDistinct sits on the hot path of every balancing operation. The
	// map path serves large k. Both consume the identical Intn sequence and
	// produce identical picks, so the choice is invisible to the stream.
	if k <= 16 {
		var picks [16]int
		for j := avail - k; j < avail; j++ {
			t := r.Intn(j + 1)
			np := len(dst)
			for i := 0; i < np; i++ {
				if picks[i] == t {
					t = j
					break
				}
			}
			picks[np] = t
			dst = append(dst, translate(t))
		}
		return dst
	}
	seen := make(map[int]struct{}, k)
	for j := avail - k; j < avail; j++ {
		t := r.Intn(j + 1)
		if _, dup := seen[t]; dup {
			t = j
		}
		seen[t] = struct{}{}
		dst = append(dst, translate(t))
	}
	return dst
}
