package experiments

import (
	"fmt"
	"io"

	"lmbalance/internal/baseline"
	"lmbalance/internal/core"
	"lmbalance/internal/rng"
	"lmbalance/internal/sim"
	"lmbalance/internal/topology"
	"lmbalance/internal/trace"
	"lmbalance/internal/workload"
)

// BaselineRow is the end-of-run quality/cost summary of one algorithm.
type BaselineRow struct {
	Name string
	// MeanSpreadTail is the mean (max−min) load over the last quarter of
	// the run — balance quality (lower is better).
	MeanSpreadTail float64
	// FinalVD is the variation density of final loads pooled over runs.
	FinalVD float64
	// BalanceOps and Migrations are per-run averages — cost.
	BalanceOps float64
	Migrations float64
}

// BaselineComparisonResult compares the Lüling–Monien algorithm against
// the baselines of internal/baseline under the paper's §7 workload — the
// extension experiment XBASE of DESIGN.md. It demonstrates, among other
// things, the §5 claim that the random-scatter strawman has equal expected
// loads but enormous variation.
type BaselineComparisonResult struct {
	Rows  []BaselineRow
	N     int
	Steps int
	Runs  int
}

// BaselineComparison runs every algorithm under identical workloads.
func BaselineComparison(scale Scale, seed uint64) (*BaselineComparisonResult, error) {
	out := &BaselineComparisonResult{N: PaperN, Steps: PaperSteps, Runs: scale.runs()}
	newPattern := func(run int, r *rng.RNG) (workload.Pattern, error) {
		return workload.NewPhases(PaperN, PaperWorkload(), r)
	}
	type algo struct {
		name string
		mk   func(r *rng.RNG) (sim.Balancer, error)
	}
	torus := topology.Torus2D(8, 8)
	algos := []algo{
		{"LM(f=1.1,δ=1)", func(r *rng.RNG) (sim.Balancer, error) {
			return core.NewSystem(PaperN, PaperParams(1.1, 1), topology.NewGlobal(PaperN), r)
		}},
		{"LM(f=1.1,δ=4)", func(r *rng.RNG) (sim.Balancer, error) {
			return core.NewSystem(PaperN, PaperParams(1.1, 4), topology.NewGlobal(PaperN), r)
		}},
		{"nobalance", func(r *rng.RNG) (sim.Balancer, error) {
			return baseline.NewNoBalance(PaperN), nil
		}},
		{"randomscatter", func(r *rng.RNG) (sim.Balancer, error) {
			return baseline.NewRandomScatter(PaperN, r), nil
		}},
		{"rsu", func(r *rng.RNG) (sim.Balancer, error) {
			return baseline.NewRSU(PaperN, 1, r), nil
		}},
		{"diffusion(torus)", func(r *rng.RNG) (sim.Balancer, error) {
			return baseline.NewDiffusion(torus, 1, 0)
		}},
		{"gradient(torus)", func(r *rng.RNG) (sim.Balancer, error) {
			return baseline.NewGradient(torus, 2, 8, 1)
		}},
	}
	for i, a := range algos {
		a := a
		cfg := sim.Config{
			N: PaperN, Steps: PaperSteps, Runs: out.Runs, Seed: seed + uint64(i),
			NewBalancer: func(run int, r *rng.RNG) (sim.Balancer, error) { return a.mk(r) },
			NewPattern:  newPattern,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("baseline %s: %w", a.name, err)
		}
		row := BaselineRow{Name: a.name, FinalVD: res.FinalLoadVD}
		start := PaperSteps * 3 / 4
		for s := start; s < PaperSteps; s++ {
			row.MeanSpreadTail += res.Spread.At(s).Mean()
		}
		row.MeanSpreadTail /= float64(PaperSteps - start)
		if a.name[:2] == "LM" {
			m := res.CoreMetrics.Scale(out.Runs)
			row.BalanceOps, row.Migrations = m.BalanceOps, m.Migrations
		} else {
			// Baselines report through their own counters; re-run one
			// instance to fetch them cheaply is wasteful, so expose them
			// via a second pass over a single run.
			ops, mig, err := baselineCosts(a.mk, newPattern, seed+uint64(i))
			if err != nil {
				return nil, err
			}
			row.BalanceOps, row.Migrations = ops, mig
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// baselineCosts runs one run and reads the baseline.Algorithm counters.
func baselineCosts(mk func(r *rng.RNG) (sim.Balancer, error), newPattern func(int, *rng.RNG) (workload.Pattern, error), seed uint64) (ops, mig float64, err error) {
	master := rng.New(seed)
	patternRNG := master.Split()
	balancerRNG := master.Split()
	stepRNG := master.Split()
	bal, err := mk(balancerRNG)
	if err != nil {
		return 0, 0, err
	}
	pat, err := newPattern(0, patternRNG)
	if err != nil {
		return 0, 0, err
	}
	for t := 0; t < PaperSteps; t++ {
		for i := 0; i < PaperN; i++ {
			switch pat.Step(i, t, stepRNG) {
			case workload.Generate:
				bal.Generate(i)
			case workload.Consume:
				bal.Consume(i)
			case workload.GenerateAndConsume:
				bal.Generate(i)
				bal.Consume(i)
			}
		}
		if tk, ok := bal.(sim.Ticker); ok {
			tk.Tick(t)
		}
	}
	if a, ok := bal.(baseline.Algorithm); ok {
		return float64(a.BalanceOps()), float64(a.Migrations()), nil
	}
	return 0, 0, nil
}

// Render writes the comparison table.
func (r *BaselineComparisonResult) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf("Extension: algorithm comparison under the §7 workload (%d procs, %d steps, %d runs)", r.N, r.Steps, r.Runs)); err != nil {
		return err
	}
	tb := trace.NewTable("balance quality vs cost",
		"algorithm", "spread(tail)", "final VD", "balance ops/run", "migrations/run")
	for _, row := range r.Rows {
		tb.AddRow(row.Name, row.MeanSpreadTail, row.FinalVD, row.BalanceOps, row.Migrations)
	}
	return tb.WriteText(w)
}
