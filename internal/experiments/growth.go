package experiments

import (
	"fmt"
	"io"

	"lmbalance/internal/theory"
	"lmbalance/internal/trace"
)

// GrowthCase is one configuration of the §6 distribution-cost benchmark
// ("only one processor generates load and distributes it evenly").
type GrowthCase struct {
	N     int
	Delta int
	F     float64
	M     float64 // packets to generate and distribute
}

// GrowthCases sweep f (strong effect), δ and n.
var GrowthCases = []GrowthCase{
	{64, 1, 1.1, 5000},
	{64, 1, 1.2, 5000},
	{64, 1, 1.4, 5000},
	{64, 1, 1.8, 5000},
	{64, 2, 1.1, 5000},
	{64, 4, 1.1, 5000},
	{16, 1, 1.1, 5000},
	{256, 1, 1.1, 5000},
}

// GrowthRow compares the reconstructed Lemma 4 closed form against the
// simulated process.
type GrowthRow struct {
	Case      GrowthCase
	Predicted int     // OpsToGenerate closed form
	SimMean   float64 // simulated balancing operations
	SimStd    float64
}

// GrowthCostResult is the distribution-cost reproduction (the paper's
// Lemma 4, whose statement is damaged in the proceedings scan; DESIGN.md
// documents the reconstruction).
type GrowthCostResult struct {
	Rows []GrowthRow
	Runs int
}

// GrowthCost runs the growth benchmark for every case.
func GrowthCost(scale Scale, seed uint64) *GrowthCostResult {
	out := &GrowthCostResult{Runs: scale.runs() * 5}
	for i, c := range GrowthCases {
		mean, std := theory.GrowthProcess(c.N, c.Delta, c.F, c.M, out.Runs, seed+uint64(i))
		out.Rows = append(out.Rows, GrowthRow{
			Case:      c,
			Predicted: theory.OpsToGenerate(c.N, c.Delta, c.F, float64(c.N), c.M),
			SimMean:   mean,
			SimStd:    std,
		})
	}
	return out
}

// Render writes the closed-form-vs-simulation table.
func (r *GrowthCostResult) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf("§6 growth cost (Lemma 4 reconstruction): balancing ops to distribute m packets (%d runs)", r.Runs)); err != nil {
		return err
	}
	tb := trace.NewTable("one-processor-generator distribution cost",
		"n", "δ", "f", "m", "closed form", "simulated")
	for _, row := range r.Rows {
		tb.AddRow(row.Case.N, row.Case.Delta, row.Case.F, row.Case.M,
			row.Predicted, fmt.Sprintf("%.1f±%.1f", row.SimMean, row.SimStd))
	}
	return tb.WriteText(w)
}
