package experiments

import (
	"fmt"
	"io"

	"lmbalance/internal/theory"
	"lmbalance/internal/trace"
)

// DecreaseCase is one configuration of the §6 decrease-cost study.
type DecreaseCase struct {
	N     int
	Delta int
	F     float64
	X, C  int
}

// DecreaseCases sweep the parameters the paper discusses: f (strong
// effect), δ and n (weak effect), and c/x scaling.
var DecreaseCases = []DecreaseCase{
	{64, 1, 1.1, 1000, 500},
	{64, 1, 1.2, 1000, 500},
	{64, 1, 1.4, 1000, 500},
	{64, 1, 1.8, 1000, 500},
	{64, 2, 1.1, 1000, 500},
	{64, 4, 1.1, 1000, 500},
	{16, 1, 1.1, 1000, 500},
	{256, 1, 1.1, 1000, 500},
	{64, 1, 1.1, 2000, 1000}, // same c/x as the first row
	{64, 1, 1.1, 1000, 200},
}

// DecreaseRow is the bounds-vs-simulation comparison for one case.
type DecreaseRow struct {
	Case     DecreaseCase
	Lower    int     // Lemma 5 lower bound
	Upper    int     // Lemma 5 upper bound
	UpperOK  bool    // Lemma 5 upper bound precondition held
	Improved int     // Lemma 6 improved upper bound (-1: n/a)
	SimMean  float64 // measured balancing operations
	SimStd   float64
}

// DecreaseCostResult is the §6 reproduction: "we simulated the algorithm
// and measured the number of iterations to reduce the load … and compared
// it with the lower and the two upper bounds."
type DecreaseCostResult struct {
	Rows []DecreaseRow
	Runs int
}

// DecreaseCost runs the decrease benchmark for every case.
func DecreaseCost(scale Scale, seed uint64) *DecreaseCostResult {
	out := &DecreaseCostResult{Runs: scale.runs() * 5}
	for i, c := range DecreaseCases {
		upper, ok := theory.Lemma5Upper(c.N, c.Delta, c.F, c.X, c.C)
		mean, std := theory.DecreaseProcess(c.N, c.Delta, c.F, float64(c.X), float64(c.C), out.Runs, seed+uint64(i))
		out.Rows = append(out.Rows, DecreaseRow{
			Case:     c,
			Lower:    theory.Lemma5Lower(c.N, c.Delta, c.F, c.X, c.C),
			Upper:    upper,
			UpperOK:  ok,
			Improved: theory.Lemma6Upper(c.N, c.Delta, c.F, c.X, c.C, 1_000_000),
			SimMean:  mean,
			SimStd:   std,
		})
	}
	return out
}

// Render writes the bounds-vs-measurement table.
func (r *DecreaseCostResult) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf("§6 decrease cost: Lemma 5/6 bounds vs simulation (%d runs)", r.Runs)); err != nil {
		return err
	}
	tb := trace.NewTable("balancing operations to simulate a decrease of c packets from x",
		"n", "δ", "f", "x", "c", "lower(L5)", "upper(L5)", "improved(L6)", "simulated")
	for _, row := range r.Rows {
		upper := "-"
		if row.UpperOK {
			upper = fmt.Sprintf("%d", row.Upper)
		}
		improved := "-"
		if row.Improved >= 0 {
			improved = fmt.Sprintf("%d", row.Improved)
		}
		tb.AddRow(row.Case.N, row.Case.Delta, row.Case.F, row.Case.X, row.Case.C,
			row.Lower, upper, improved, fmt.Sprintf("%.2f±%.2f", row.SimMean, row.SimStd))
	}
	return tb.WriteText(w)
}
