package experiments

import (
	"bytes"
	"strings"
	"testing"

	"lmbalance/internal/obs"
	"lmbalance/internal/serve"
)

func TestSojournAnatomyQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real TCP serving clusters under a health monitor")
	}
	res, err := SojournAnatomy(ScaleQuick, 1993)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 2 {
		t.Fatalf("expected 2 arms, got %d", len(res.Arms))
	}
	steady, spike := res.armFor("steady"), res.armFor("spike")
	if steady == nil || spike == nil {
		t.Fatal("missing arms")
	}
	for _, a := range res.Arms {
		if a.Completed != a.Submitted {
			t.Errorf("%s: completed %d of %d", a.Mode, a.Completed, a.Submitted)
		}
		if len(a.Components) != len(anatomyComponents) {
			t.Fatalf("%s: %d components", a.Mode, len(a.Components))
		}
		// The decomposition must account for the unit sojourn: the
		// journey components sum to it up to stamp-clamping slack.
		if a.ComponentVsUnitErr > 0.05 {
			t.Errorf("%s: decomposition off by %.2f%%", a.Mode, a.ComponentVsUnitErr*100)
		}
		// Service time is a physical floor — every completed unit was
		// served, so the service component must dominate zero.
		if svc := a.Components[3]; svc.Name != "service" || svc.MeanMS <= 0 {
			t.Errorf("%s: service component %+v", a.Mode, svc)
		}
		if a.UnitMeanMS <= 0 || a.UnitP99MS < a.UnitMeanMS {
			t.Errorf("%s: unit sojourn mean %.3fms p99 %.3fms", a.Mode, a.UnitMeanMS, a.UnitP99MS)
		}
		if len(a.Polls) < 3 {
			t.Errorf("%s: only %d monitor polls", a.Mode, len(a.Polls))
		}
	}
	// The experiment's whole point, already gated inside SojournAnatomy
	// but asserted here for the record: the injected spike trips the
	// burn-rate alert, the steady control does not.
	if spike.Alerts == 0 || spike.FirstAlertMS < 0 {
		t.Errorf("spike arm never alerted: %+v", spike)
	}
	if steady.Alerts != 0 {
		t.Errorf("steady arm alerted %d times", steady.Alerts)
	}
	// Early warning: the alert lands before the run's whole error
	// budget is spent.
	if spike.BudgetAtAlert >= 1 {
		t.Errorf("spike alert only fired after budget exhaustion (%.0f%% spent)",
			spike.BudgetAtAlert*100)
	}
	// The spike's pain is queueing delay: its queue component share must
	// exceed the steady arm's. (Hot vs cold p99 is NOT gated — with
	// balancing on, the overload spreads and the tails equalize, which
	// is the protocol working, not a test failure.)
	if spike.Components[1].Share <= steady.Components[1].Share {
		t.Errorf("spike queue share %.1f%% not above steady %.1f%%",
			spike.Components[1].Share*100, steady.Components[1].Share*100)
	}

	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Sojourn anatomy", "ingest_wait", "queue", "transfer", "service",
		"burn-rate alert", "stayed healthy"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMergedQuantile(t *testing.T) {
	reg := obs.NewRegistry()
	name := func(node int) string { return serve.UnitSojournMetric(node) }
	// Node 0 holds fast observations, node 1 slow ones; the merged p99
	// must land in the slow mass, and a single-node merge must agree
	// with the histogram's own quantile up to bucket resolution.
	h0 := reg.Histogram(name(0), obs.SojournBuckets)
	h1 := reg.Histogram(name(1), obs.SojournBuckets)
	for i := 0; i < 95; i++ {
		h0.Observe(0.002)
	}
	for i := 0; i < 5; i++ {
		h1.Observe(0.5)
	}

	solo := mergedQuantile(reg, []int{0}, name, 0.5)
	if own := h0.Quantile(0.5); solo <= 0 || solo > own*4 || own > solo*4 {
		t.Errorf("single-node merge p50 %.4fs vs own %.4fs", solo, own)
	}
	merged := mergedQuantile(reg, []int{0, 1}, name, 0.99)
	if merged < 0.1 || merged > 1.0 {
		t.Errorf("merged p99 %.4fs, want the slow observation's bucket", merged)
	}
	if p50 := mergedQuantile(reg, []int{0, 1}, name, 0.5); p50 > 0.01 {
		t.Errorf("merged p50 %.4fs, want the fast mass", p50)
	}
}
