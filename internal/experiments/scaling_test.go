package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestScalingQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep is slow")
	}
	res, err := Scaling(ScaleQuick, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(ScalingNs) {
		t.Fatal("missing rows")
	}
	for _, row := range res.Rows {
		// Theorem 2: the measured ratio respects f·FIX (with MC slack)
		// and FIX respects the n-independent limit.
		if row.RatioOneProducer > 1.1*row.Fix*1.25 {
			t.Fatalf("n=%d: ratio %v above bound", row.N, row.RatioOneProducer)
		}
		if row.Fix > row.Limit+1e-9 {
			t.Fatalf("n=%d: FIX %v above limit %v", row.N, row.Fix, row.Limit)
		}
	}
	// Size independence: the ratio at n=1024 is not materially worse than
	// at n=16.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.RatioOneProducer > first.RatioOneProducer*1.3 {
		t.Fatalf("ratio degraded with n: %v -> %v", first.RatioOneProducer, last.RatioOneProducer)
	}
	// Per-node balancing cost stays flat (within 2x across 64x size).
	if last.BalanceOpsPerProcStep > first.BalanceOpsPerProcStep*2 {
		t.Fatalf("per-node cost grew with n: %v -> %v",
			first.BalanceOpsPerProcStep, last.BalanceOpsPerProcStep)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Theorem 2 scaling") {
		t.Fatal("render missing title")
	}
}

func TestGrowthCostQuick(t *testing.T) {
	res := GrowthCost(ScaleQuick, 12)
	if len(res.Rows) != len(GrowthCases) {
		t.Fatal("missing rows")
	}
	for _, row := range res.Rows {
		// Closed form within 25% of simulation.
		lo, hi := row.SimMean*0.75, row.SimMean*1.25+5
		if float64(row.Predicted) < lo || float64(row.Predicted) > hi {
			t.Fatalf("%+v: closed form %d vs simulated %.1f", row.Case, row.Predicted, row.SimMean)
		}
	}
	// f-sensitivity.
	if !(res.Rows[3].SimMean < res.Rows[0].SimMean/5) {
		t.Fatalf("f=1.8 (%v) should be much cheaper than f=1.1 (%v)",
			res.Rows[3].SimMean, res.Rows[0].SimMean)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
}
