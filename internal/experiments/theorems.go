package experiments

import (
	"fmt"
	"io"

	"lmbalance/internal/core"
	"lmbalance/internal/rng"
	"lmbalance/internal/sim"
	"lmbalance/internal/theory"
	"lmbalance/internal/topology"
	"lmbalance/internal/trace"
	"lmbalance/internal/workload"
)

// TheoremCase is one (n, δ, f) configuration of the §3 validation.
type TheoremCase struct {
	N     int
	Delta int
	F     float64
}

// TheoremCases are the configurations checked against Theorems 1–3.
var TheoremCases = []TheoremCase{
	{16, 1, 1.1}, {64, 1, 1.1}, {64, 1, 1.8},
	{64, 2, 1.2}, {64, 4, 1.1}, {64, 4, 1.8}, {256, 2, 1.5},
}

// TheoremRow is the measured vs. predicted ratio for one case.
type TheoremRow struct {
	Case TheoremCase
	// MeasuredRatio is E(l₁)/E(lᵢ) from the packet-level simulation of
	// the one-processor-generator model (sampled at the final step, i.e.
	// between balancing operations).
	MeasuredRatio float64
	// Fix is FIX(n,δ,f) — the Theorem 1 bound at balancing instants.
	Fix float64
	// Limit is δ/(δ+1−f) — the Theorem 2 network-size-independent bound.
	Limit float64
	// SampledBound is f·FIX: between balancing operations the generator's
	// load exceeds its post-balance value by at most the factor f.
	SampledBound float64
}

// TheoremCheckResult validates Theorems 1–3 end to end: the packet-level
// simulator running the real algorithm must respect the closed-form
// bounds.
type TheoremCheckResult struct {
	Rows  []TheoremRow
	Steps int
	Runs  int
}

// TheoremCheck runs the one-processor-generator model on the real
// (packet-level) algorithm and compares the measured expected-load ratio
// against FIX(n,δ,f), its n→∞ limit, and the between-balances bound f·FIX.
func TheoremCheck(scale Scale, seed uint64) (*TheoremCheckResult, error) {
	out := &TheoremCheckResult{Steps: 4000, Runs: scale.runs()}
	for i, tc := range TheoremCases {
		cfg := sim.Config{
			N: tc.N, Steps: out.Steps, Runs: out.Runs, Seed: seed + uint64(i),
			SnapshotAt: []int{out.Steps - 1},
			NewBalancer: func(run int, r *rng.RNG) (sim.Balancer, error) {
				return core.NewSystem(tc.N, core.Params{F: tc.F, Delta: tc.Delta, C: 4}, topology.NewGlobal(tc.N), r)
			},
			NewPattern: func(run int, r *rng.RNG) (workload.Pattern, error) {
				return workload.OneProducer{}, nil
			},
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("theoremcheck n=%d δ=%d f=%g: %w", tc.N, tc.Delta, tc.F, err)
		}
		accs := res.Snapshots[out.Steps-1]
		gen := accs[0].Mean()
		others := 0.0
		for _, a := range accs[1:] {
			others += a.Mean()
		}
		others /= float64(tc.N - 1)
		row := TheoremRow{
			Case:          tc,
			MeasuredRatio: gen / others,
			Fix:           theory.FIX(tc.N, tc.Delta, tc.F),
			Limit:         theory.FixLimit(tc.Delta, tc.F),
			SampledBound:  tc.F * theory.FIX(tc.N, tc.Delta, tc.F),
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render writes the comparison table.
func (r *TheoremCheckResult) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf("Theorems 1-3 validation: one-processor-generator model, %d steps, %d runs", r.Steps, r.Runs)); err != nil {
		return err
	}
	tb := trace.NewTable("measured E(l1)/E(li) vs closed forms",
		"n", "δ", "f", "measured", "FIX(n,δ,f)", "f·FIX (bound)", "δ/(δ+1−f) (n→∞)")
	for _, row := range r.Rows {
		tb.AddRow(row.Case.N, row.Case.Delta, row.Case.F,
			row.MeasuredRatio, row.Fix, row.SampledBound, row.Limit)
	}
	return tb.WriteText(w)
}
