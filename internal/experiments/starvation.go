package experiments

import (
	"fmt"
	"io"

	"lmbalance/internal/baseline"
	"lmbalance/internal/core"
	"lmbalance/internal/rng"
	"lmbalance/internal/sim"
	"lmbalance/internal/topology"
	"lmbalance/internal/trace"
	"lmbalance/internal/workload"
)

// StarvationRow is one algorithm's starvation measurement.
type StarvationRow struct {
	Name string
	// ZeroFraction is the fraction of processor-steps with zero load —
	// the failure metric for the paper's first application class ("for
	// some applications it is sufficient to balance the workload in a way
	// that every processor has some load at any time", §1).
	ZeroFraction float64
	// WorstProcessor is the highest per-processor zero fraction.
	WorstProcessor float64
}

// StarvationResult measures processor starvation under a bursty hotspot
// workload, where work exists somewhere in the system most of the time
// but enters it unevenly — exactly the situation in which an unbalanced
// system starves workers.
type StarvationResult struct {
	Rows  []StarvationRow
	N     int
	Steps int
	Runs  int
}

// Starvation runs the starvation comparison.
func Starvation(scale Scale, seed uint64) (*StarvationResult, error) {
	const n = 32
	const steps = 400
	out := &StarvationResult{N: n, Steps: steps, Runs: scale.runs()}
	// 4 hot producers generate ≈3.6 packets/step; 32 consumers drain at
	// most 3.2/step — work is plentiful system-wide but enters at four
	// processors only, so starvation measures balancing, not scarcity.
	pattern := workload.Hotspot{Hot: 4, GenP: 0.9, ConP: 0.1}
	type algo struct {
		name string
		mk   func(r *rng.RNG) (sim.Balancer, error)
	}
	algos := []algo{
		{"LM(f=1.1,δ=1)", func(r *rng.RNG) (sim.Balancer, error) {
			return core.NewSystem(n, core.Params{F: 1.1, Delta: 1, C: 4}, topology.NewGlobal(n), r)
		}},
		{"LM(f=1.1,δ=4)", func(r *rng.RNG) (sim.Balancer, error) {
			return core.NewSystem(n, core.Params{F: 1.1, Delta: 4, C: 4}, topology.NewGlobal(n), r)
		}},
		{"nobalance", func(r *rng.RNG) (sim.Balancer, error) {
			return baseline.NewNoBalance(n), nil
		}},
		{"rsu", func(r *rng.RNG) (sim.Balancer, error) {
			return baseline.NewRSU(n, 1, r), nil
		}},
	}
	for i, a := range algos {
		a := a
		// zeros[run][proc] counts zero-load observations; each run only
		// touches its own slot, so parallel runs do not race.
		zeros := make([][]int64, out.Runs)
		for run := range zeros {
			zeros[run] = make([]int64, n)
		}
		loadBuf := make([][]int, out.Runs)
		cfg := sim.Config{
			N: n, Steps: steps, Runs: out.Runs, Seed: seed + uint64(i),
			NewBalancer: func(run int, r *rng.RNG) (sim.Balancer, error) { return a.mk(r) },
			NewPattern: func(run int, r *rng.RNG) (workload.Pattern, error) {
				return pattern, nil
			},
			Observe: func(run, t int, bal sim.Balancer) {
				loadBuf[run] = bal.Loads(loadBuf[run])
				for p, v := range loadBuf[run] {
					if v == 0 {
						zeros[run][p]++
					}
				}
			},
		}
		if _, err := sim.Run(cfg); err != nil {
			return nil, fmt.Errorf("starvation %s: %w", a.name, err)
		}
		perProc := make([]int64, n)
		var total int64
		for run := range zeros {
			for p, z := range zeros[run] {
				perProc[p] += z
				total += z
			}
		}
		row := StarvationRow{Name: a.name}
		row.ZeroFraction = float64(total) / float64(int64(n)*int64(steps)*int64(out.Runs))
		for _, z := range perProc {
			f := float64(z) / float64(int64(steps)*int64(out.Runs))
			if f > row.WorstProcessor {
				row.WorstProcessor = f
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render writes the starvation table.
func (r *StarvationResult) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf("Extension: processor starvation under a hotspot workload (%d procs, %d steps, %d runs)", r.N, r.Steps, r.Runs)); err != nil {
		return err
	}
	tb := trace.NewTable("fraction of processor-steps with zero load",
		"algorithm", "overall", "worst processor")
	for _, row := range r.Rows {
		tb.AddRow(row.Name, row.ZeroFraction, row.WorstProcessor)
	}
	return tb.WriteText(w)
}
