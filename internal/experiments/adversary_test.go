package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAdversaryQuick(t *testing.T) {
	res, err := Adversary(ScaleQuick, 14)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("expected 8 workloads, got %d", len(res.Rows))
	}
	if res.Bound < 1.3 || res.Bound > 1.4 {
		t.Fatalf("bound %v not f²δ/(δ+1−f) for defaults", res.Bound)
	}
	// The headline assertion: no random workload breaks Theorem 4 (small
	// Monte Carlo slack for 10-run expectations).
	if worst := res.Worst(); worst > res.Bound*1.1 {
		t.Fatalf("a workload broke the Theorem 4 bound: %v > %v", worst, res.Bound)
	}
	for _, row := range res.Rows {
		if row.WorstRatio <= 0 {
			t.Fatalf("%s: degenerate ratio %v", row.Workload, row.WorstRatio)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Theorem 4") {
		t.Fatal("render missing title")
	}
}
