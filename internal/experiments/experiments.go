// Package experiments contains one harness per table and figure of the
// paper's evaluation, plus the validation tables for the theorems and the
// extension/ablation studies listed in DESIGN.md. Each harness returns
// structured data and can render itself as a text table; cmd/paperfigs
// runs them all and EXPERIMENTS.md records paper-vs-measured.
//
// Every harness takes a Scale so the same code serves the full paper
// reproduction (ScaleFull — 100 runs, as in §7) and fast CI/bench runs
// (ScaleQuick).
package experiments

import (
	"fmt"
	"io"

	"lmbalance/internal/core"
	"lmbalance/internal/workload"
)

// Scale selects the statistical effort of a harness.
type Scale int

const (
	// ScaleQuick uses few runs — for tests and benchmarks.
	ScaleQuick Scale = iota
	// ScaleFull uses the paper's effort (100 runs, full sweeps).
	ScaleFull
)

// runs returns the number of repetitions for the scale; full is the
// paper's 100.
func (s Scale) runs() int {
	if s == ScaleFull {
		return 100
	}
	return 10
}

// vdRuns returns Monte Carlo repetitions for variation density curves.
func (s Scale) vdRuns() int {
	if s == ScaleFull {
		return 50000
	}
	return 5000
}

// Renderer is implemented by every experiment result.
type Renderer interface {
	// Render writes the result as human-readable tables.
	Render(w io.Writer) error
}

// PaperN is the processor count of the §7 experiments.
const PaperN = 64

// PaperSteps is the time-step count of the §7 experiments.
const PaperSteps = 500

// PaperParams returns the §7 configuration for a given f and δ (C = 4).
func PaperParams(f float64, delta int) core.Params {
	return core.Params{F: f, Delta: delta, C: 4}
}

// PaperWorkload returns the §7 workload bounds.
func PaperWorkload() workload.PhaseBounds { return workload.PaperBounds() }

// header prints a section banner.
func header(w io.Writer, title string) error {
	_, err := fmt.Fprintf(w, "\n================ %s ================\n\n", title)
	return err
}
