package experiments

import (
	"fmt"
	"io"

	"lmbalance/internal/core"
	"lmbalance/internal/rng"
	"lmbalance/internal/sim"
	"lmbalance/internal/topology"
	"lmbalance/internal/trace"
	"lmbalance/internal/workload"
)

// AblationRow is the quality/cost summary of one variant.
type AblationRow struct {
	Name           string
	MeanSpreadTail float64
	BalanceOps     float64
	Migrations     float64
}

// CSweepRow is one borrow-capacity measurement.
type CSweepRow struct {
	C              int
	MeanSpreadTail float64
	RemoteBorrow   float64 // per processor per run
	DecreaseSim    float64 // per processor per run
}

// AblationsResult collects the design-choice studies of DESIGN.md §6:
// the (δ, f) tradeoff sweep, locality-restricted candidate selection,
// the initiator-only trigger-reset variant, and the borrow-capacity
// sweep isolating the §7 claim that "a larger parameter C increases the
// load imbalance … but decreases the number of operations to borrow load
// from remote processors".
type AblationsResult struct {
	ParamSweep []AblationRow
	Topology   []AblationRow
	Reset      []AblationRow
	CSweep     []CSweepRow
	Runs       int
}

// Ablations runs all ablation studies under the paper's §7 workload.
func Ablations(scale Scale, seed uint64) (*AblationsResult, error) {
	out := &AblationsResult{Runs: scale.runs()}

	run := func(name string, params core.Params, sel func() topology.Selector, seed uint64) (AblationRow, error) {
		cfg := sim.Config{
			N: PaperN, Steps: PaperSteps, Runs: out.Runs, Seed: seed,
			NewBalancer: func(run int, r *rng.RNG) (sim.Balancer, error) {
				return core.NewSystem(PaperN, params, sel(), r)
			},
			NewPattern: func(run int, r *rng.RNG) (workload.Pattern, error) {
				return workload.NewPhases(PaperN, PaperWorkload(), r)
			},
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return AblationRow{}, fmt.Errorf("ablation %s: %w", name, err)
		}
		row := AblationRow{Name: name}
		start := PaperSteps * 3 / 4
		for s := start; s < PaperSteps; s++ {
			row.MeanSpreadTail += res.Spread.At(s).Mean()
		}
		row.MeanSpreadTail /= float64(PaperSteps - start)
		m := res.CoreMetrics.Scale(out.Runs)
		row.BalanceOps, row.Migrations = m.BalanceOps, m.Migrations
		return row, nil
	}
	global := func() topology.Selector { return topology.NewGlobal(PaperN) }

	// 1. The central (δ, f) tradeoff sweep.
	seedOff := seed
	for _, delta := range []int{1, 2, 4, 8} {
		for _, f := range []float64{1.1, 1.2, 1.4, 1.8} {
			p := core.Params{F: f, Delta: delta, C: 4}
			if p.Validate() != nil {
				continue
			}
			row, err := run(fmt.Sprintf("δ=%d f=%g", delta, f), p, global, seedOff)
			if err != nil {
				return nil, err
			}
			out.ParamSweep = append(out.ParamSweep, row)
			seedOff++
		}
	}

	// 2. Locality-restricted candidate selection (the paper's "further
	// research" item): δ=4 so each neighborhood offers enough candidates.
	p4 := core.Params{F: 1.1, Delta: 4, C: 4}
	topos := []struct {
		name string
		mk   func() topology.Selector
	}{
		{"global (paper)", global},
		{"ring64", func() topology.Selector { return topology.NewNeighborhood(topology.Ring(PaperN)) }},
		{"torus8x8", func() topology.Selector { return topology.NewNeighborhood(topology.Torus2D(8, 8)) }},
		{"hypercube6", func() topology.Selector { return topology.NewNeighborhood(topology.Hypercube(6)) }},
		{"debruijn6", func() topology.Selector { return topology.NewNeighborhood(topology.DeBruijn(6)) }},
	}
	for _, tp := range topos {
		row, err := run(tp.name, p4, tp.mk, seedOff)
		if err != nil {
			return nil, err
		}
		out.Topology = append(out.Topology, row)
		seedOff++
	}

	// 3. Borrow capacity sweep (wider than Table 1, adding the quality
	// side of the tradeoff).
	for _, c := range []int{1, 2, 4, 8, 16, 32, 64} {
		params := core.Params{F: 1.1, Delta: 1, C: c}
		cfg := sim.Config{
			N: PaperN, Steps: PaperSteps, Runs: out.Runs, Seed: seedOff,
			NewBalancer: func(run int, r *rng.RNG) (sim.Balancer, error) {
				return core.NewSystem(PaperN, params, topology.NewGlobal(PaperN), r)
			},
			NewPattern: func(run int, r *rng.RNG) (workload.Pattern, error) {
				return workload.NewPhases(PaperN, PaperWorkload(), r)
			},
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("ablation C=%d: %w", c, err)
		}
		row := CSweepRow{C: c}
		start := PaperSteps * 3 / 4
		for s := start; s < PaperSteps; s++ {
			row.MeanSpreadTail += res.Spread.At(s).Mean()
		}
		row.MeanSpreadTail /= float64(PaperSteps - start)
		m := res.CoreMetrics.Scale(out.Runs * PaperN)
		row.RemoteBorrow, row.DecreaseSim = m.RemoteBorrow, m.DecreaseSim
		out.CSweep = append(out.CSweep, row)
		seedOff++
	}

	// 4. Trigger-base reset discipline.
	for _, v := range []struct {
		name string
		p    core.Params
	}{
		{"reset all participants (default)", core.Params{F: 1.1, Delta: 1, C: 4}},
		{"reset initiator only (appendix literal)", core.Params{F: 1.1, Delta: 1, C: 4, InitiatorOnlyReset: true}},
	} {
		row, err := run(v.name, v.p, global, seedOff)
		if err != nil {
			return nil, err
		}
		out.Reset = append(out.Reset, row)
		seedOff++
	}
	return out, nil
}

// Render writes the three ablation tables.
func (r *AblationsResult) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf("Ablations (§7 workload, %d runs)", r.Runs)); err != nil {
		return err
	}
	emit := func(title string, rows []AblationRow) error {
		tb := trace.NewTable(title, "variant", "spread(tail)", "balance ops/run", "migrations/run")
		for _, row := range rows {
			tb.AddRow(row.Name, row.MeanSpreadTail, row.BalanceOps, row.Migrations)
		}
		if err := tb.WriteText(w); err != nil {
			return err
		}
		_, err := fmt.Fprintln(w)
		return err
	}
	if err := emit("quality/cost tradeoff over (δ, f)", r.ParamSweep); err != nil {
		return err
	}
	if err := emit("candidate selection locality (δ=4, f=1.1)", r.Topology); err != nil {
		return err
	}
	if err := emit("trigger-base reset discipline (δ=1, f=1.1)", r.Reset); err != nil {
		return err
	}
	ct := trace.NewTable("borrow capacity C: quality vs settlement communication (f=1.1, δ=1; per-processor per-run)",
		"C", "spread(tail)", "remote borrow", "decrease sim")
	for _, row := range r.CSweep {
		ct.AddRow(row.C, row.MeanSpreadTail, row.RemoteBorrow, row.DecreaseSim)
	}
	return ct.WriteText(w)
}
