package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestVDTrajectoryQuickShape(t *testing.T) {
	res, err := VDTrajectory(ScaleQuick, 1993)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != len(vdTrajSettings) {
		t.Fatalf("expected %d runs, got %d", len(vdTrajSettings), len(res.Runs))
	}
	for _, run := range res.Runs {
		if len(run.Points) < 8 {
			t.Fatalf("f=%g δ=%d: only %d trajectory samples", run.F, run.Delta, len(run.Points))
		}
		if run.PeakVD <= 0 {
			t.Fatalf("f=%g δ=%d: flat trajectory (peak %v): the hot quarter never imbalanced the cluster",
				run.F, run.Delta, run.PeakVD)
		}
		if run.LateVD < 0 || run.EarlyVD < 0 {
			t.Fatalf("f=%g δ=%d: negative VD", run.F, run.Delta)
		}
	}
	// The §5 claim: wall-clock sampling wobbles, but at least 3 of the
	// settings must show the convergent early-high/late-low shape.
	if c := res.ConvergedCount(); c < 3 {
		t.Fatalf("only %d/%d settings converged: %+v", c, len(res.Runs), res.Runs)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Variation density trajectory", "late VD", "converges in t"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, buf.String())
		}
	}
}
