package experiments

import (
	"fmt"
	"io"

	"lmbalance/internal/core"
	"lmbalance/internal/rng"
	"lmbalance/internal/sim"
	"lmbalance/internal/theory"
	"lmbalance/internal/topology"
	"lmbalance/internal/trace"
	"lmbalance/internal/workload"
)

// AdversaryRow is one candidate workload's outcome.
type AdversaryRow struct {
	Workload string
	// WorstRatio is max over processor pairs (i,j) of
	// E(l_i) / (E(l_j) + C) at the final step — the quantity Theorem 4
	// bounds by f²·δ/(δ+1−f).
	WorstRatio float64
}

// AdversaryResult is a randomized search for workloads that violate the
// Theorem 4 guarantee: many random phase/hotspot/burst workloads are
// thrown at the algorithm and the worst observed pairwise expected-load
// ratio is compared against the bound. The paper claims the guarantee is
// workload-independent; this harness tries to falsify that.
type AdversaryResult struct {
	Rows  []AdversaryRow
	Bound float64
	N     int
	Steps int
	Runs  int
}

// Worst returns the largest ratio found across all workloads.
func (r *AdversaryResult) Worst() float64 {
	worst := 0.0
	for _, row := range r.Rows {
		if row.WorstRatio > worst {
			worst = row.WorstRatio
		}
	}
	return worst
}

// Adversary runs the search with the default parameters (f=1.1, δ=1,
// C=4); the bound is f²·δ/(δ+1−f) ≈ 1.344.
func Adversary(scale Scale, seed uint64) (*AdversaryResult, error) {
	const n = 32
	const steps = 300
	params := core.DefaultParams()
	out := &AdversaryResult{
		Bound: theory.Theorem4Bound(params.Delta, params.F),
		N:     n, Steps: steps, Runs: scale.runs(),
	}
	candidates := 8
	if scale == ScaleFull {
		candidates = 24
	}
	master := rng.New(seed)
	for k := 0; k < candidates; k++ {
		name, mk := randomWorkload(n, steps, master)
		cfg := sim.Config{
			N: n, Steps: steps, Runs: out.Runs, Seed: seed + uint64(1000+k),
			SnapshotAt: []int{steps - 1},
			NewBalancer: func(run int, r *rng.RNG) (sim.Balancer, error) {
				return core.NewSystem(n, params, topology.NewGlobal(n), r)
			},
			NewPattern: mk,
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("adversary %s: %w", name, err)
		}
		accs := res.Snapshots[steps-1]
		maxE, minE := accs[0].Mean(), accs[0].Mean()
		for _, a := range accs[1:] {
			m := a.Mean()
			if m > maxE {
				maxE = m
			}
			if m < minE {
				minE = m
			}
		}
		out.Rows = append(out.Rows, AdversaryRow{
			Workload:   name,
			WorstRatio: maxE / (minE + float64(params.C)),
		})
	}
	return out, nil
}

// randomWorkload draws one adversarial workload family with random
// parameters.
func randomWorkload(n, steps int, r *rng.RNG) (string, func(int, *rng.RNG) (workload.Pattern, error)) {
	switch r.Intn(4) {
	case 0:
		hot := 1 + r.Intn(n/4)
		g := r.FloatRange(0.5, 1.0)
		c := r.FloatRange(0.0, 0.5)
		p := workload.Hotspot{Hot: hot, GenP: g, ConP: c}
		return p.Name(), func(int, *rng.RNG) (workload.Pattern, error) { return p, nil }
	case 1:
		b := workload.Burst{
			BurstLen: 5 + r.Intn(60), DrainLen: 5 + r.Intn(60),
			HighG: r.FloatRange(0.5, 1), HighC: r.FloatRange(0.5, 1),
		}
		return b.Name(), func(int, *rng.RNG) (workload.Pattern, error) { return b, nil }
	case 2:
		bounds := workload.PhaseBounds{
			GLow: r.FloatRange(0, 0.4), GHigh: r.FloatRange(0.6, 1),
			CLow: r.FloatRange(0, 0.3), CHigh: r.FloatRange(0.4, 0.9),
			LenLow: 10 + r.Intn(40), LenHigh: 60 + r.Intn(steps),
			Horizon: steps,
		}
		name := fmt.Sprintf("phases(g<%0.2f,c<%0.2f,len<%d)", bounds.GHigh, bounds.CHigh, bounds.LenHigh)
		return name, func(run int, rr *rng.RNG) (workload.Pattern, error) {
			return workload.NewPhases(n, bounds, rr)
		}
	default:
		u := workload.Uniform{GenP: r.FloatRange(0.3, 0.9), ConP: r.FloatRange(0.1, 0.7)}
		return u.Name(), func(int, *rng.RNG) (workload.Pattern, error) { return u, nil }
	}
}

// Render writes the adversary table.
func (r *AdversaryResult) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf("Adversarial search against Theorem 4 (%d workloads, %d runs each, bound %.3f)", len(r.Rows), r.Runs, r.Bound)); err != nil {
		return err
	}
	tb := trace.NewTable("worst pairwise E(l_i)/(E(l_j)+C) per workload",
		"workload", "worst ratio", "bound holds")
	for _, row := range r.Rows {
		tb.AddRow(row.Workload, row.WorstRatio, row.WorstRatio <= r.Bound)
	}
	if err := tb.WriteText(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nworst over all workloads: %.4f (bound %.4f)\n", r.Worst(), r.Bound)
	return err
}
