package experiments

import (
	"fmt"
	"io"

	"lmbalance/internal/sim"
	"lmbalance/internal/trace"
)

// Fig78Config is one panel of the paper's Figures 7 and 8: the balancing
// quality over 500 time steps on 64 processors under the §7 synthetic
// workload, for one (δ, f) pair.
type Fig78Config struct {
	Delta int
	F     float64
}

// Fig7Configs are Figure 7's panels (δ=1, f ∈ {1.1, 1.8}).
var Fig7Configs = []Fig78Config{{1, 1.1}, {1, 1.8}}

// Fig8Configs are Figure 8's panels (δ=4, f ∈ {1.1, 1.8}).
var Fig8Configs = []Fig78Config{{4, 1.1}, {4, 1.8}}

// Fig78Panel is the measured data of one panel.
type Fig78Panel struct {
	Config Fig78Config
	Result *sim.Result
}

// Fig78Result aggregates the panels of one figure.
type Fig78Result struct {
	Figure string // "7" or "8"
	Panels []Fig78Panel
	N      int
	Steps  int
	Runs   int
}

// Fig78 reproduces Figure 7 (δ=1) or Figure 8 (δ=4): avg/min/max processor
// load per global time step, over the paper's workload, averaged over the
// runs dictated by scale.
func Fig78(configs []Fig78Config, figure string, scale Scale, seed uint64) (*Fig78Result, error) {
	out := &Fig78Result{Figure: figure, N: PaperN, Steps: PaperSteps, Runs: scale.runs()}
	for i, c := range configs {
		cfg := sim.LMConfig(PaperN, PaperSteps, out.Runs, PaperParams(c.F, c.Delta), PaperWorkload(), seed+uint64(i))
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig%s δ=%d f=%g: %w", figure, c.Delta, c.F, err)
		}
		out.Panels = append(out.Panels, Fig78Panel{Config: c, Result: res})
	}
	return out, nil
}

// Render writes one table per panel, sampling the series every 25 steps.
func (r *Fig78Result) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf("Figure %s: balancing quality, %d processors, %d runs", r.Figure, r.N, r.Runs)); err != nil {
		return err
	}
	for _, p := range r.Panels {
		tb := trace.NewTable(
			fmt.Sprintf("δ=%d f=%g C=4: load per time step (mean over runs; min/max ever observed)", p.Config.Delta, p.Config.F),
			"step", "avg", "min", "max", "spread")
		for step := 24; step < r.Steps; step += 25 {
			tb.AddRow(step+1,
				p.Result.Avg.At(step).Mean(),
				p.Result.Min.At(step).Min(),
				p.Result.Max.At(step).Max(),
				p.Result.Spread.At(step).Mean(),
			)
		}
		if err := tb.WriteText(w); err != nil {
			return err
		}
		const width = 60
		if _, err := fmt.Fprintf(w, "avg    %s\nspread %s\n\n",
			trace.Sparkline(trace.Downsample(p.Result.Avg.Means(), width)),
			trace.Sparkline(trace.Downsample(p.Result.Spread.Means(), width))); err != nil {
			return err
		}
	}
	return nil
}

// MeanSpreadTail returns the average load spread over the last quarter of
// the run for panel i — the scalar quality number the ablations compare.
func (r *Fig78Result) MeanSpreadTail(i int) float64 {
	start := r.Steps * 3 / 4
	sum, cnt := 0.0, 0
	for s := start; s < r.Steps; s++ {
		sum += r.Panels[i].Result.Spread.At(s).Mean()
		cnt++
	}
	return sum / float64(cnt)
}
