package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"lmbalance/internal/cluster"
	"lmbalance/internal/obs"
	"lmbalance/internal/trace"
	"lmbalance/internal/wire"
)

// VDTrajectoryRun is one (f, δ) setting's empirical variation-density
// trajectory, read back off the node's /series endpoint exactly the way
// an operator (or the aggregator) would.
type VDTrajectoryRun struct {
	F     float64
	Delta int
	// Points is the instantaneous cross-node VD (std/mean of the
	// per-node load gauges) per recorder sample, oldest first.
	Points []float64
	// PeakVD is the trajectory's maximum; EarlyVD and LateVD are the
	// means over the first tenth and the last quarter of the samples.
	PeakVD, EarlyVD, LateVD float64
	// Converged reports the §5 shape: the late plateau sits below the
	// early transient.
	Converged bool
}

// VDTrajectoryResult is the §5 convergence check run empirically: the
// paper proves the variation density VD = sqrt(E(l²)−E(l)²)/E(l)
// converges in t; a histogram only ever shows the endpoint, so this
// harness records the whole trajectory through the time-series
// recorder. A 16-node loopback cluster starts maximally imbalanced — a
// hot producer quarter, everyone else consuming — and the recorder
// samples the cross-node VD while balancing runs. For every setting the
// trajectory must decay from its early transient to a lower, stable
// plateau: convergence in t, not just a good final value.
type VDTrajectoryResult struct {
	N      int
	Steps  int
	Period time.Duration
	Runs   []VDTrajectoryRun
}

// vdTrajSettings are the (f, δ) points the trajectory is recorded at —
// the paper's baseline (1.2, 2), a laxer trigger, and a wider
// neighborhood for each trigger.
var vdTrajSettings = []struct {
	F     float64
	Delta int
}{
	{1.2, 2},
	{1.5, 2},
	{1.2, 4},
	{1.5, 4},
}

// VDTrajectory records the VD-vs-t trajectory for every setting.
func VDTrajectory(scale Scale, seed uint64) (*VDTrajectoryResult, error) {
	const n = 16
	steps := 8000
	if scale == ScaleFull {
		steps = 40000
	}
	out := &VDTrajectoryResult{N: n, Steps: steps, Period: 500 * time.Microsecond}
	gen := make([]float64, n)
	con := make([]float64, n)
	for i := range gen {
		if i < n/4 {
			gen[i], con[i] = 0.9, 0.1
		} else {
			gen[i], con[i] = 0.1, 0.3
		}
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	for _, s := range vdTrajSettings {
		reg := obs.NewRegistry()
		lnet := wire.NewLoopback(n)
		transports := make([]wire.Transport, n)
		for j := range transports {
			transports[j] = lnet.Transport(j)
		}
		rec := cluster.NewRecorder(reg, ids, 4096)
		// Serve the registry so the trajectory is consumed through the
		// real /series export, not a private shortcut.
		srv, err := obs.ServeDebug("127.0.0.1:0", reg)
		if err != nil {
			return nil, fmt.Errorf("vdtraj: %w", err)
		}
		rec.Start(out.Period)
		res, err := cluster.RunCluster(cluster.ClusterConfig{
			N: n, Delta: s.Delta, F: s.F, Steps: steps,
			GenP: gen, ConP: con, Seed: seed, Obs: reg,
		}, transports)
		rec.Stop()
		if err != nil {
			srv.Close()
			return nil, fmt.Errorf("vdtraj (f=%g δ=%d): %w", s.F, s.Delta, err)
		}
		if !res.Conserved() {
			srv.Close()
			return nil, fmt.Errorf("vdtraj (f=%g δ=%d): packet conservation violated", s.F, s.Delta)
		}
		data, err := fetchSeries(srv.URL())
		srv.Close()
		if err != nil {
			return nil, fmt.Errorf("vdtraj (f=%g δ=%d): %w", s.F, s.Delta, err)
		}
		run, err := vdTrajFromSeries(s.F, s.Delta, data)
		if err != nil {
			return nil, fmt.Errorf("vdtraj (f=%g δ=%d): %w", s.F, s.Delta, err)
		}
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}

// fetchSeries scrapes one /series document.
func fetchSeries(baseURL string) (obs.SeriesData, error) {
	var data obs.SeriesData
	resp, err := http.Get(baseURL + "/series")
	if err != nil {
		return data, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return data, fmt.Errorf("GET /series: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&data); err != nil {
		return data, fmt.Errorf("GET /series: %w", err)
	}
	return data, nil
}

// vdTrajFromSeries extracts the nodes_vd trajectory from a /series
// document and classifies its shape.
func vdTrajFromSeries(f float64, delta int, data obs.SeriesData) (VDTrajectoryRun, error) {
	run := VDTrajectoryRun{F: f, Delta: delta}
	vdIdx := -1
	for i, c := range data.Columns {
		if c == "nodes_vd" {
			vdIdx = i
		}
	}
	if vdIdx < 0 {
		return run, fmt.Errorf("/series has no nodes_vd column (columns %v)", data.Columns)
	}
	for _, smp := range data.Samples {
		if vdIdx < len(smp.V) {
			run.Points = append(run.Points, smp.V[vdIdx])
		}
	}
	if len(run.Points) < 8 {
		return run, fmt.Errorf("only %d trajectory samples; run too short to judge convergence", len(run.Points))
	}
	for _, v := range run.Points {
		if v > run.PeakVD {
			run.PeakVD = v
		}
	}
	early := run.Points[:len(run.Points)/10+1]
	late := run.Points[len(run.Points)*3/4:]
	run.EarlyVD = meanOf(early)
	run.LateVD = meanOf(late)
	run.Converged = run.LateVD < run.EarlyVD
	return run, nil
}

func meanOf(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// ConvergedCount returns how many settings show the convergent shape.
func (r *VDTrajectoryResult) ConvergedCount() int {
	c := 0
	for _, run := range r.Runs {
		if run.Converged {
			c++
		}
	}
	return c
}

// Render writes the trajectory table and one sparkline per setting.
func (r *VDTrajectoryResult) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf(
		"Variation density trajectory (n=%d, %d steps, hot quarter): §5 convergence in t",
		r.N, r.Steps)); err != nil {
		return err
	}
	tb := trace.NewTable(fmt.Sprintf("empirical VD over time via /series (sampled every %v)", r.Period),
		"f", "δ", "samples", "peak VD", "early VD", "late VD", "converged")
	for _, run := range r.Runs {
		tb.AddRow(run.F, run.Delta, len(run.Points),
			run.PeakVD, run.EarlyVD, run.LateVD, run.Converged)
	}
	if err := tb.WriteText(w); err != nil {
		return err
	}
	for _, run := range r.Runs {
		if _, err := fmt.Fprintf(w, "f=%-4g δ=%d  %s\n", run.F, run.Delta,
			trace.Sparkline(run.Points)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%d/%d settings decay from their early transient to a lower late plateau:\nthe variation density converges in t, as §5 proves — visible only as a\ntrajectory, never as a point-in-time scrape.\n",
		r.ConvergedCount(), len(r.Runs))
	return err
}
