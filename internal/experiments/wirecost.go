package experiments

import (
	"fmt"
	"io"

	"lmbalance/internal/cluster"
	"lmbalance/internal/trace"
	"lmbalance/internal/wire"
)

// WireCostRow is one (transport, δ) configuration's measurement.
type WireCostRow struct {
	Name        string
	Spread      int
	Ops         int64   // completed balancing operations
	MsgsPerOp   float64 // wire messages per completed operation
	BytesPerOp  float64 // wire bytes per completed operation
	BytesPerMsg float64 // mean message size on the wire
	AbortedFrac float64
}

// WireCostResult measures what the balancing protocol costs in real
// bytes: the same cluster runtime and workload over the in-memory
// loopback transport (bytes = codec payloads) and over real loopback
// TCP sockets (bytes = frames as written to the kernel). The inproc/TCP
// gap in bytes-per-message is pure framing overhead; the gap in
// messages-per-op is the protocol reacting to real scheduling and
// socket latency (more freeze collisions → more aborts and retries).
type WireCostResult struct {
	Rows  []WireCostRow
	N     int
	Steps int
}

// WireCost runs the sweep: δ ∈ {1, 2, 4} over both transports, with the
// netcost experiment's producer/consumer split (a hot quarter).
func WireCost(scale Scale, seed uint64) (*WireCostResult, error) {
	const n = 16
	steps := 800
	if scale == ScaleFull {
		steps = 4000
	}
	out := &WireCostResult{N: n, Steps: steps}
	gen := make([]float64, n)
	con := make([]float64, n)
	for i := range gen {
		if i < n/4 {
			gen[i], con[i] = 0.9, 0.1
		} else {
			gen[i], con[i] = 0.1, 0.3
		}
	}
	type cfg struct {
		name      string
		transport string
		delta     int
	}
	var configs []cfg
	for _, tr := range []string{"inproc", "tcp"} {
		for _, d := range []int{1, 2, 4} {
			configs = append(configs, cfg{fmt.Sprintf("%s δ=%d", tr, d), tr, d})
		}
	}
	for i, c := range configs {
		transports := make([]wire.Transport, n)
		switch c.transport {
		case "inproc":
			lnet := wire.NewLoopback(n)
			for j := range transports {
				transports[j] = lnet.Transport(j)
			}
		case "tcp":
			ts, err := wire.NewLocalCluster(n)
			if err != nil {
				return nil, fmt.Errorf("wirecost %s: %w", c.name, err)
			}
			for j, t := range ts {
				transports[j] = t
			}
		}
		res, err := cluster.RunCluster(cluster.ClusterConfig{
			N: n, Delta: c.delta, F: 1.2, Steps: steps,
			GenP: gen, ConP: con, Seed: seed + uint64(i),
		}, transports)
		if err != nil {
			return nil, fmt.Errorf("wirecost %s: %w", c.name, err)
		}
		if !res.Conserved() {
			return nil, fmt.Errorf("wirecost %s: packet conservation violated", c.name)
		}
		row := WireCostRow{Name: c.name, Spread: res.Spread(), Ops: res.Completed()}
		msgs, bytes := res.Messages(), res.Bytes()
		if row.Ops > 0 {
			row.MsgsPerOp = float64(msgs) / float64(row.Ops)
			row.BytesPerOp = float64(bytes) / float64(row.Ops)
		}
		if msgs > 0 {
			row.BytesPerMsg = float64(bytes) / float64(msgs)
		}
		if init := res.Initiated(); init > 0 {
			row.AbortedFrac = float64(init-res.Completed()) / float64(init)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render writes the wire-cost table.
func (r *WireCostResult) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf("Wire-level cluster cost (%d nodes, %d steps): inproc payloads vs TCP frames", r.N, r.Steps)); err != nil {
		return err
	}
	tb := trace.NewTable("bytes on the wire per balancing operation",
		"configuration", "final spread", "ops", "msgs per op", "bytes per op", "bytes per msg", "abort fraction")
	for _, row := range r.Rows {
		tb.AddRow(row.Name, row.Spread, row.Ops, row.MsgsPerOp, row.BytesPerOp, row.BytesPerMsg, row.AbortedFrac)
	}
	if err := tb.WriteText(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "inproc counts codec payload bytes; tcp counts full frames (payload + length prefix)\nas written to the socket, so the bytes-per-msg gap is the framing overhead.\n")
	return err
}
