package experiments

import (
	"fmt"
	"io"
	"time"

	"lmbalance/internal/cluster"
	"lmbalance/internal/trace"
	"lmbalance/internal/wire"
)

// PacerSweepCell is one (transport, n, pace-mode) run of the sweep.
type PacerSweepCell struct {
	Transport string
	N         int
	Mode      cluster.PaceMode
	Initiated int64
	Completed int64
	// Rate is the completion rate Completed/Initiated (1 if nothing was
	// initiated — an idle cluster has no abort pathology).
	Rate     float64
	Messages int64
	// MsgsPerOp is protocol traffic per completed balancing operation —
	// the cost of the abort storms (aborted attempts still burn wire).
	MsgsPerOp float64
	// Episodes/DeferredSteps: deferral episodes and raw deferred trigger
	// firings (see cluster.Stats.RateLimited/RateLimitedSteps).
	Episodes, DeferredSteps int64
	// Backoffs/Recovers are the adaptive controller's gap transitions.
	Backoffs, Recovers int64
	// MeanGap is the mean end-of-run initiation gap across nodes.
	MeanGap time.Duration
	Spread  int
	Elapsed time.Duration
}

// PacerSweepResult compares initiation-pacing policies — off, the fixed
// MinInitGap valve, and the adaptive AIMD controller — across cluster
// sizes and transports on the hot-quarter workload. It is the closing
// measurement of the TCP abort pathology: abortanatomy attributed the
// ≥95% abort fraction at n=16 over sockets to peer_frozen collisions
// (a pacing problem), and this sweep measures what each pacing policy
// buys back, in completion rate and in wire traffic per completed op.
type PacerSweepResult struct {
	Ns       []int
	Steps    int
	Delta    int
	FixedGap time.Duration
	Cells    []PacerSweepCell
}

// pacerModes lists the swept policies in render order.
var pacerModes = []cluster.PaceMode{cluster.PaceOff, cluster.PaceFixed, cluster.PaceAdaptive}

// PacerSweep runs the off/fixed/adaptive × inproc/tcp × n sweep.
//
// The TCP cells need wall-clock runway: the adaptive controller pays a
// first discovery storm (every node's opening trigger collides, that is
// how it measures the collision window) and then amortizes it over the
// paced attempts that follow, so the full-scale step count is sized to
// let the steady state dominate. All cells of one n share the same
// workload (same seed, same step count) — only the pacing policy moves.
func PacerSweep(scale Scale, seed uint64) (*PacerSweepResult, error) {
	out := &PacerSweepResult{
		Ns:       []int{4, 8, 16},
		Steps:    8000,
		Delta:    2,
		FixedGap: time.Millisecond,
	}
	if scale == ScaleFull {
		out.Steps = 250000
	}
	for _, n := range out.Ns {
		// The netcost/wirecost/abortanatomy workload: a hot producer
		// quarter feeding a consuming majority.
		gen := make([]float64, n)
		con := make([]float64, n)
		for i := range gen {
			if i < n/4 {
				gen[i], con[i] = 0.9, 0.1
			} else {
				gen[i], con[i] = 0.1, 0.3
			}
		}
		for _, tr := range []string{"inproc", "tcp"} {
			for _, mode := range pacerModes {
				transports := make([]wire.Transport, n)
				switch tr {
				case "inproc":
					lnet := wire.NewLoopback(n)
					for j := range transports {
						transports[j] = lnet.Transport(j)
					}
				case "tcp":
					ts, err := wire.NewLocalCluster(n)
					if err != nil {
						return nil, fmt.Errorf("pacer %s n=%d: %w", tr, n, err)
					}
					for j, t := range ts {
						transports[j] = t
					}
				}
				cfg := cluster.ClusterConfig{
					N: n, Delta: out.Delta, F: 1.2, Steps: out.Steps,
					GenP: gen, ConP: con, Seed: seed,
					Pace: mode,
				}
				if mode == cluster.PaceFixed {
					cfg.MinInitGap = out.FixedGap
				}
				res, err := cluster.RunCluster(cfg, transports)
				if err != nil {
					return nil, fmt.Errorf("pacer %s n=%d %s: %w", tr, n, mode, err)
				}
				if !res.Conserved() {
					return nil, fmt.Errorf("pacer %s n=%d %s: packet conservation violated", tr, n, mode)
				}
				cell := PacerSweepCell{
					Transport: tr, N: n, Mode: mode,
					Initiated: res.Initiated(), Completed: res.Completed(),
					Messages: res.Messages(),
					MeanGap:  res.MeanPaceGap(),
					Spread:   res.Spread(),
					Elapsed:  res.Elapsed,
					Rate:     1,
				}
				cell.Episodes, cell.DeferredSteps = res.RateLimited()
				for _, s := range res.Nodes {
					cell.Backoffs += s.PaceBackoffs
					cell.Recovers += s.PaceRecovers
				}
				if cell.Initiated > 0 {
					cell.Rate = float64(cell.Completed) / float64(cell.Initiated)
				}
				if cell.Completed > 0 {
					cell.MsgsPerOp = float64(cell.Messages) / float64(cell.Completed)
				}
				out.Cells = append(out.Cells, cell)
			}
		}
	}
	return out, nil
}

// cell returns the sweep cell for one (transport, n, mode), nil if absent.
func (r *PacerSweepResult) cell(tr string, n int, mode cluster.PaceMode) *PacerSweepCell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Transport == tr && c.N == n && c.Mode == mode {
			return c
		}
	}
	return nil
}

// Render writes the sweep tables and the n=16 verdict: whether adaptive
// pacing closes the TCP completion-rate gap without the traffic cost.
func (r *PacerSweepResult) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf(
		"Initiation pacing sweep (%d steps, δ=%d, fixed gap %v): off vs fixed vs adaptive",
		r.Steps, r.Delta, r.FixedGap)); err != nil {
		return err
	}
	tb := trace.NewTable("protocol outcomes by pacing policy",
		"transport", "n", "pace", "initiated", "completed", "rate",
		"messages", "msgs/op", "deferrals", "backoffs", "recovers",
		"mean gap", "spread")
	for _, c := range r.Cells {
		tb.AddRow(c.Transport, c.N, c.Mode.String(), c.Initiated, c.Completed,
			c.Rate, c.Messages, c.MsgsPerOp, c.Episodes, c.Backoffs,
			c.Recovers, c.MeanGap.String(), c.Spread)
	}
	if err := tb.WriteText(w); err != nil {
		return err
	}
	inproc := r.cell("inproc", 16, cluster.PaceOff)
	free := r.cell("tcp", 16, cluster.PaceOff)
	adapt := r.cell("tcp", 16, cluster.PaceAdaptive)
	if inproc == nil || free == nil || adapt == nil {
		return nil
	}
	if _, err := fmt.Fprintf(w,
		"n=16 completion rate: inproc free-running %.3f, tcp free-running %.3f, tcp adaptive %.3f (%.1f× the free-running rate, inproc/%.1f)\n",
		inproc.Rate, free.Rate, adapt.Rate, ratio(adapt.Rate, free.Rate), ratio(inproc.Rate, adapt.Rate)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w,
		"n=16 tcp traffic per completed op: free-running %.0f msgs, adaptive %.0f msgs (%.1f× cheaper)\n",
		free.MsgsPerOp, adapt.MsgsPerOp, ratio(free.MsgsPerOp, adapt.MsgsPerOp)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "the adaptive controller pays one discovery storm (every opening trigger\ncollides — that is how it measures the collision window), then holds the\nattempt rate where collisions are rare; the fixed valve defers blindly and\nthe free-running cluster burns its wire on aborted attempts.\n")
	return err
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
