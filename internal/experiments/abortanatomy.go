package experiments

import (
	"fmt"
	"io"

	"lmbalance/internal/cluster"
	"lmbalance/internal/obs"
	"lmbalance/internal/trace"
	"lmbalance/internal/wire"
)

// AbortAnatomyRow is one transport's decomposition of protocol
// outcomes at n=16, measured through the obs registry the cluster
// publishes into while it runs.
type AbortAnatomyRow struct {
	Transport string
	Initiated int64
	Completed int64
	AbortFrac float64
	// Aborts maps each cluster.Abort* reason to its count.
	Aborts map[string]int64
	// Dominant is the reason with the highest count ("" if no aborts).
	Dominant string
	// ReplyP50/P95, CollectP50/P95, FrozenP95 are protocol phase
	// latency quantiles in seconds (from the cluster_phase_seconds
	// histograms).
	ReplyP50, ReplyP95     float64
	CollectP50, CollectP95 float64
	FrozenP95              float64
}

// AbortAnatomyResult attributes the wire-level abort fraction — the
// ROADMAP open item of ≥0.95 at n=16 over TCP — to its cause. The same
// cluster and workload run over the in-memory loopback transport and
// over real TCP sockets; the per-reason abort counters say *what* kills
// the protocols and the phase histograms say *where the time goes*:
// if collect (initiate → all replies) is orders of magnitude wider on
// TCP while aborts stay peer_frozen rather than timeout, the freeze
// window has become socket-latency wide and free-running initiators
// collide with already-frozen partners — a pacing problem, not a
// reliability problem.
type AbortAnatomyResult struct {
	N     int
	Steps int
	Delta int
	Rows  []AbortAnatomyRow
}

// AbortReasons lists every abort label in render order.
var abortReasons = []string{
	cluster.AbortPeerFrozen, cluster.AbortTimeout,
	cluster.AbortStaleEpoch, cluster.AbortLinkDown,
}

// AbortAnatomy runs the n=16 anatomy over both transports.
func AbortAnatomy(scale Scale, seed uint64) (*AbortAnatomyResult, error) {
	const n = 16
	steps := 800
	if scale == ScaleFull {
		steps = 4000
	}
	out := &AbortAnatomyResult{N: n, Steps: steps, Delta: 2}
	// The netcost/wirecost workload: a hot producer quarter.
	gen := make([]float64, n)
	con := make([]float64, n)
	for i := range gen {
		if i < n/4 {
			gen[i], con[i] = 0.9, 0.1
		} else {
			gen[i], con[i] = 0.1, 0.3
		}
	}
	for _, tr := range []string{"inproc", "tcp"} {
		reg := obs.NewRegistry()
		transports := make([]wire.Transport, n)
		switch tr {
		case "inproc":
			lnet := wire.NewLoopback(n)
			for j := range transports {
				transports[j] = lnet.Transport(j)
			}
		case "tcp":
			ts, err := wire.NewLocalCluster(n)
			if err != nil {
				return nil, fmt.Errorf("abortanatomy %s: %w", tr, err)
			}
			for j, t := range ts {
				transports[j] = t
			}
		}
		res, err := cluster.RunCluster(cluster.ClusterConfig{
			N: n, Delta: out.Delta, F: 1.2, Steps: steps,
			GenP: gen, ConP: con, Seed: seed, Obs: reg,
		}, transports)
		if err != nil {
			return nil, fmt.Errorf("abortanatomy %s: %w", tr, err)
		}
		if !res.Conserved() {
			return nil, fmt.Errorf("abortanatomy %s: packet conservation violated", tr)
		}
		row := AbortAnatomyRow{
			Transport: tr,
			Initiated: res.Initiated(),
			Completed: res.Completed(),
			Aborts:    make(map[string]int64, len(abortReasons)),
		}
		if row.Initiated > 0 {
			row.AbortFrac = float64(row.Initiated-row.Completed) / float64(row.Initiated)
		}
		var best int64
		for _, reason := range abortReasons {
			c := reg.Counter(cluster.AbortMetric(reason)).Value()
			row.Aborts[reason] = c
			if c > best {
				best, row.Dominant = c, reason
			}
		}
		reply := reg.Histogram(`cluster_phase_seconds{phase="reply"}`, obs.LatencyBuckets)
		collect := reg.Histogram(`cluster_phase_seconds{phase="collect"}`, obs.LatencyBuckets)
		frozen := reg.Histogram(`cluster_phase_seconds{phase="frozen"}`, obs.LatencyBuckets)
		row.ReplyP50, row.ReplyP95 = reply.Quantile(0.5), reply.Quantile(0.95)
		row.CollectP50, row.CollectP95 = collect.Quantile(0.5), collect.Quantile(0.95)
		row.FrozenP95 = frozen.Quantile(0.95)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render writes the abort-anatomy tables and names the dominant cause.
func (r *AbortAnatomyResult) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf(
		"Abort anatomy (%d nodes, %d steps, δ=%d): what kills wire-level protocols",
		r.N, r.Steps, r.Delta)); err != nil {
		return err
	}
	tb := trace.NewTable("protocol outcomes by abort reason",
		"transport", "initiated", "completed", "abort frac",
		"peer_frozen", "timeout", "stale_epoch", "link_down")
	for _, row := range r.Rows {
		tb.AddRow(row.Transport, row.Initiated, row.Completed, row.AbortFrac,
			row.Aborts[cluster.AbortPeerFrozen], row.Aborts[cluster.AbortTimeout],
			row.Aborts[cluster.AbortStaleEpoch], row.Aborts[cluster.AbortLinkDown])
	}
	if err := tb.WriteText(w); err != nil {
		return err
	}
	pt := trace.NewTable("protocol phase latency quantiles (µs)",
		"transport", "reply p50", "reply p95", "collect p50", "collect p95", "frozen p95")
	for _, row := range r.Rows {
		pt.AddRow(row.Transport,
			row.ReplyP50*1e6, row.ReplyP95*1e6,
			row.CollectP50*1e6, row.CollectP95*1e6,
			row.FrozenP95*1e6)
	}
	if err := pt.WriteText(w); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if row.Transport != "tcp" {
			continue
		}
		total := int64(0)
		for _, c := range row.Aborts {
			total += c
		}
		share := 0.0
		if total > 0 {
			share = float64(row.Aborts[row.Dominant]) / float64(total)
		}
		if _, err := fmt.Fprintf(w,
			"dominant abort cause at n=%d over tcp: %s (%.0f%% of %d aborts)\n",
			r.N, row.Dominant, share*100, total); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "peer_frozen aborts with a socket-latency-wide collect phase mean free-running\ninitiators collide with already-frozen partners: the fix is pacing/batching\ninitiations (see ROADMAP), not transport reliability.\n")
	return err
}
