package experiments

import (
	"fmt"
	"io"

	"lmbalance/internal/netsim"
	"lmbalance/internal/topology"
	"lmbalance/internal/trace"
)

// NetCostRow is one configuration's communication measurement.
type NetCostRow struct {
	Name        string
	Spread      int
	MsgsPerOp   float64
	AbortedFrac float64
}

// NetCostResult measures the real communication cost of the
// message-passing realization: messages per completed balancing
// operation and the abort rate of the freeze protocol, across δ and
// partner topologies. The paper argues balancing cost is dominated by
// organization, not data volume — this harness counts the organization.
type NetCostResult struct {
	Rows  []NetCostRow
	N     int
	Steps int
}

// NetCost runs the sweep. Scale controls nothing here (single runs; the
// protocol counters are high-volume already), but is accepted for
// interface uniformity.
func NetCost(scale Scale, seed uint64) (*NetCostResult, error) {
	const n = 64
	const steps = 3000
	out := &NetCostResult{N: n, Steps: steps}
	gen := make([]float64, n)
	con := make([]float64, n)
	for i := range gen {
		if i < n/4 {
			gen[i], con[i] = 0.9, 0.1
		} else {
			gen[i], con[i] = 0.1, 0.3
		}
	}
	type cfg struct {
		name  string
		delta int
		graph *topology.Graph
	}
	configs := []cfg{
		{"global δ=1", 1, nil},
		{"global δ=2", 2, nil},
		{"global δ=4", 4, nil},
		{"torus8x8 δ=2", 2, topology.Torus2D(8, 8)},
		{"hypercube6 δ=2", 2, topology.Hypercube(6)},
		{"debruijn6 δ=2", 2, topology.DeBruijn(6)},
	}
	for i, c := range configs {
		res, err := netsim.Run(netsim.Config{
			N: n, Delta: c.delta, F: 1.2, Steps: steps,
			GenP: gen, ConP: con, Seed: seed + uint64(i), Graph: c.graph,
		})
		if err != nil {
			return nil, fmt.Errorf("netcost %s: %w", c.name, err)
		}
		var initiated, completed int64
		for _, nd := range res.Nodes {
			initiated += nd.Initiated
			completed += nd.Completed
		}
		row := NetCostRow{Name: c.name, Spread: res.Spread()}
		if completed > 0 {
			row.MsgsPerOp = float64(res.Messages()) / float64(completed)
		}
		if initiated > 0 {
			row.AbortedFrac = float64(initiated-completed) / float64(initiated)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render writes the communication-cost table.
func (r *NetCostResult) Render(w io.Writer) error {
	if err := header(w, fmt.Sprintf("Message-passing communication cost (%d nodes, %d steps)", r.N, r.Steps)); err != nil {
		return err
	}
	tb := trace.NewTable("freeze/ack/transfer protocol costs",
		"configuration", "final spread", "msgs per completed op", "abort fraction")
	for _, row := range r.Rows {
		tb.AddRow(row.Name, row.Spread, row.MsgsPerOp, row.AbortedFrac)
	}
	return tb.WriteText(w)
}
