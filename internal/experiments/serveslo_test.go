package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestServeSLOQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("drives a real TCP serving cluster")
	}
	res, err := ServeSLO(ScaleQuick, 1993)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 3 {
		t.Fatalf("expected 3 arms, got %d", len(res.Arms))
	}
	for _, a := range res.Arms {
		if a.Completed != a.Submitted {
			t.Errorf("%s: completed %d of %d", a.Mode, a.Completed, a.Submitted)
		}
		if a.P50 < 0 || a.P50 > a.P99 {
			t.Errorf("%s: quantiles out of order: p50 %v p99 %v", a.Mode, a.P50, a.P99)
		}
		if a.Throughput <= 0 {
			t.Errorf("%s: throughput %v", a.Mode, a.Throughput)
		}
	}
	none, bal := res.arm("none"), res.arm("balanced")
	if none == nil || bal == nil {
		t.Fatal("missing arms")
	}
	if none.Ops != 0 {
		t.Errorf("no-balancing arm completed %d balancing ops", none.Ops)
	}
	if bal.Ops == 0 {
		t.Error("balanced arm completed no balancing ops under a hot-node workload")
	}
	// The experiment's whole point: balancing improves the tail. Quick
	// scale is noisy, so the gate is generous — the bench enforces the
	// strict version.
	if bal.P99 >= none.P99*1.5 {
		t.Errorf("balanced p99 %.2fms not better than no-balancing %.2fms",
			bal.P99*1e3, none.P99*1e3)
	}

	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Serving SLO", "balanced+adaptive", "balancing vs none", "pacing under open-loop serving"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
