package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestWireCostQuickShape(t *testing.T) {
	res, err := WireCost(ScaleQuick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("expected 6 rows (2 transports × 3 δ), got %d", len(res.Rows))
	}
	byName := map[string]WireCostRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
		// Over TCP at δ=4 almost every protocol collides (the freeze
		// window is socket-latency wide), so completed ops can be tiny
		// at quick scale — only require completions on inproc rows.
		if row.Ops == 0 && strings.HasPrefix(row.Name, "inproc") {
			t.Fatalf("%s: no balancing operation completed", row.Name)
		}
		if row.BytesPerMsg <= 0 {
			t.Fatalf("%s: no bytes accounted", row.Name)
		}
		if row.AbortedFrac < 0 || row.AbortedFrac > 1 {
			t.Fatalf("%s: abort fraction %v outside [0,1]", row.Name, row.AbortedFrac)
		}
	}
	// TCP frames carry a length prefix on top of the payload, so the
	// mean wire message must be strictly larger than inproc's at the
	// same δ — that gap is the honesty the experiment exists for.
	for _, d := range []string{"δ=1", "δ=2", "δ=4"} {
		in, tc := byName["inproc "+d], byName["tcp "+d]
		if tc.BytesPerMsg <= in.BytesPerMsg {
			t.Fatalf("%s: tcp bytes/msg %v not above inproc %v", d, tc.BytesPerMsg, in.BytesPerMsg)
		}
		// Framing adds exactly one prefix byte for our tiny payloads.
		if tc.BytesPerMsg > in.BytesPerMsg+2 {
			t.Fatalf("%s: tcp framing overhead %v bytes/msg implausibly high",
				d, tc.BytesPerMsg-in.BytesPerMsg)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Wire-level cluster cost", "bytes per op", "framing overhead"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, buf.String())
		}
	}
}
